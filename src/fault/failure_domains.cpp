#include "src/fault/failure_domains.h"

#include <algorithm>
#include <numeric>

#include "src/util/status.h"

namespace aspen::fault {

const char* to_cstring(DomainKind kind) {
  switch (kind) {
    case DomainKind::kLink: return "link";
    case DomainKind::kRack: return "rack";
    case DomainKind::kPowerFeed: return "power_feed";
    case DomainKind::kLinecard: return "linecard";
  }
  return "?";
}

namespace {

/// All inter-switch links incident on `s`, ascending by id.  `upward`
/// selects the up-facing or down-facing ports.
std::vector<LinkId> switch_links(const Topology& topo, SwitchId s,
                                 bool upward) {
  std::vector<LinkId> links;
  for (const Topology::Neighbor& nb :
       upward ? topo.up_neighbors(s) : topo.down_neighbors(s)) {
    if (!topo.is_switch_node(nb.node)) continue;  // skip host links
    links.push_back(nb.link);
  }
  std::sort(links.begin(), links.end(),
            [](LinkId a, LinkId b) { return a.value() < b.value(); });
  return links;
}

void finish_domain(FailureDomain domain, std::vector<FailureDomain>& out) {
  if (domain.links.empty()) return;
  std::sort(domain.links.begin(), domain.links.end(),
            [](LinkId a, LinkId b) { return a.value() < b.value(); });
  domain.links.erase(std::unique(domain.links.begin(), domain.links.end()),
                     domain.links.end());
  out.push_back(std::move(domain));
}

}  // namespace

FailureDomainModel FailureDomainModel::independent(const Topology& topo) {
  FailureDomainModel model;
  for (Level level = 2; level <= topo.levels(); ++level) {
    for (const LinkId link : topo.links_at_level(level)) {
      FailureDomain domain;
      domain.kind = DomainKind::kLink;
      domain.links = {link};
      domain.name = "link:" + std::to_string(link.value());
      model.domains_.push_back(std::move(domain));
    }
  }
  ASPEN_REQUIRE(!model.domains_.empty(),
                "topology has no inter-switch links");
  return model;
}

FailureDomainModel FailureDomainModel::racks(const Topology& topo) {
  FailureDomainModel model;
  for (std::uint64_t e = 0; e < topo.num_switches(); ++e) {
    const SwitchId s{static_cast<std::uint32_t>(e)};
    if (topo.level_of(s) != 1) continue;
    FailureDomain domain;
    domain.kind = DomainKind::kRack;
    domain.links = switch_links(topo, s, /*upward=*/true);
    domain.name = "rack:" + to_string(s);
    finish_domain(std::move(domain), model.domains_);
  }
  ASPEN_REQUIRE(!model.domains_.empty(), "topology has no racks");
  return model;
}

FailureDomainModel FailureDomainModel::power_feeds(const Topology& topo) {
  FailureDomainModel model;
  ASPEN_REQUIRE(topo.levels() >= 2, "power feeds need an L2");
  const std::uint64_t feeds = topo.pods_at_level(2);
  for (std::uint64_t feed = 0; feed < feeds; ++feed) {
    FailureDomain domain;
    domain.kind = DomainKind::kPowerFeed;
    domain.name = "feed:L2p" + std::to_string(feed);
    for (const SwitchId s :
         topo.pod_members(2, PodId{static_cast<std::uint32_t>(feed)})) {
      for (const LinkId link : switch_links(topo, s, /*upward=*/true)) {
        domain.links.push_back(link);
      }
    }
    finish_domain(std::move(domain), model.domains_);
  }
  ASPEN_REQUIRE(!model.domains_.empty(), "topology has no L2 pods");
  return model;
}

FailureDomainModel FailureDomainModel::linecards(const Topology& topo,
                                                 std::uint32_t ports_per_card) {
  ASPEN_REQUIRE(ports_per_card > 0, "ports_per_card must be positive");
  FailureDomainModel model;
  for (std::uint32_t sw = 0; sw < topo.num_switches(); ++sw) {
    const SwitchId s{sw};
    for (const bool upward : {false, true}) {
      const std::vector<LinkId> ports = switch_links(topo, s, upward);
      for (std::size_t first = 0; first < ports.size();
           first += ports_per_card) {
        FailureDomain domain;
        domain.kind = DomainKind::kLinecard;
        const std::size_t last = std::min<std::size_t>(
            first + ports_per_card, ports.size());
        domain.links.assign(ports.begin() + static_cast<std::ptrdiff_t>(first),
                            ports.begin() + static_cast<std::ptrdiff_t>(last));
        domain.name = "card:" + to_string(s) + (upward ? ":up" : ":down") +
                      std::to_string(first / ports_per_card);
        finish_domain(std::move(domain), model.domains_);
      }
    }
  }
  ASPEN_REQUIRE(!model.domains_.empty(), "topology has no linecards");
  return model;
}

FailureDomainModel FailureDomainModel::parse(const Topology& topo,
                                             const std::string& spec) {
  if (spec == "independent" || spec == "link") return independent(topo);
  if (spec == "rack" || spec == "racks") return racks(topo);
  if (spec == "feed" || spec == "power" || spec == "power_feed") {
    return power_feeds(topo);
  }
  constexpr const char* kCard = "linecard";
  if (spec.rfind(kCard, 0) == 0) {
    std::uint32_t ports = 2;
    const std::size_t colon = spec.find(':');
    if (colon != std::string::npos) {
      ports = static_cast<std::uint32_t>(std::stoul(spec.substr(colon + 1)));
    }
    return linecards(topo, ports);
  }
  throw PreconditionError("unknown failure-domain spec: " + spec);
}

FailureDomainModel FailureDomainModel::from_domains(
    std::vector<FailureDomain> domains) {
  FailureDomainModel model;
  model.domains_ = std::move(domains);
  return model;
}

std::uint64_t FailureDomainModel::total_links() const {
  return std::accumulate(domains_.begin(), domains_.end(), std::uint64_t{0},
                         [](std::uint64_t sum, const FailureDomain& d) {
                           return sum + d.links.size();
                         });
}

std::size_t FailureDomainModel::max_domain_links() const {
  std::size_t most = 0;
  for (const FailureDomain& d : domains_) most = std::max(most, d.links.size());
  return most;
}

std::vector<std::uint32_t> FailureDomainModel::draw_order(Rng& rng) const {
  std::vector<std::uint32_t> order(domains_.size());
  std::iota(order.begin(), order.end(), 0u);
  rng.shuffle(order);
  return order;
}

void FailureDomainModel::merge(const FailureDomainModel& other) {
  domains_.insert(domains_.end(), other.domains_.begin(),
                  other.domains_.end());
}

std::vector<std::string> FailureDomainModel::check(
    const Topology& topo) const {
  std::vector<std::string> problems;
  for (const FailureDomain& domain : domains_) {
    if (domain.links.empty()) {
      problems.push_back(domain.name + ": empty domain");
      continue;
    }
    LinkId prev = LinkId::invalid();
    for (const LinkId link : domain.links) {
      if (link.value() >= topo.num_links()) {
        problems.push_back(domain.name + ": link out of range");
        continue;
      }
      const Topology::LinkRec& rec = topo.link(link);
      if (!topo.is_switch_node(rec.lower)) {
        problems.push_back(domain.name + ": host link " +
                           std::to_string(link.value()));
      }
      if (prev != LinkId::invalid() && prev.value() >= link.value()) {
        problems.push_back(domain.name + ": links unsorted or duplicated");
      }
      prev = link;
    }
  }
  return problems;
}

}  // namespace aspen::fault
