#include "src/fault/detector.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <utility>

#include "src/obs/obs.h"
#include "src/util/status.h"

namespace aspen::fault {

namespace {

// Floating-point slack for penalty comparisons after long decay chains.
constexpr double kPenaltyTolerance = 1e-6;

}  // namespace

const char* to_cstring(DetectionKind kind) {
  switch (kind) {
    case DetectionKind::kSuspected: return "suspected";
    case DetectionKind::kConfirmedDown: return "confirmed-down";
    case DetectionKind::kConfirmedUp: return "confirmed-up";
    case DetectionKind::kSuppressed: return "suppressed";
    case DetectionKind::kReused: return "reused";
    case DetectionKind::kNotified: return "notified";
  }
  return "?";
}

FailureDetector::FailureDetector(const Topology& topo,
                                 const LinkStateOverlay& overlay,
                                 Simulator& sim, DetectorOptions options)
    : topo_(&topo),
      overlay_(&overlay),
      sim_(&sim),
      options_(options),
      rng_(options.seed) {
  ASPEN_REQUIRE(options_.probe_interval_ms > 0.0,
                "probe interval must be positive");
  ASPEN_REQUIRE(options_.window >= 1, "window must hold at least one probe");
  ASPEN_REQUIRE(options_.loss_threshold >= 1 &&
                    options_.loss_threshold <= options_.window,
                "loss threshold must fit the window");
  ASPEN_REQUIRE(options_.suspect_threshold >= 1 &&
                    options_.suspect_threshold <= options_.loss_threshold,
                "suspect threshold cannot exceed the confirm threshold");
  ASPEN_REQUIRE(options_.recovery_threshold >= 1,
                "recovery threshold must be positive");
  if (options_.damping.enabled) {
    const DampingOptions& d = options_.damping;
    ASPEN_REQUIRE(d.penalty > 0.0 && d.half_life_ms > 0.0 &&
                      d.hold_down_ms >= 0.0,
                  "damping penalty/half-life must be positive");
    ASPEN_REQUIRE(d.reuse_threshold > 0.0 &&
                      d.reuse_threshold < d.suppress_threshold,
                  "reuse threshold must sit below suppress");
  }
}

void FailureDetector::monitor(LinkId link) {
  ASPEN_REQUIRE(link.valid() &&
                    link.value() < topo_->num_links(),
                "monitor() needs a real link");
  if (watches_.count(link.value()) > 0) return;  // already monitored
  watches_[link.value()] = LinkWatch{};
  const Topology::LinkRec& rec = topo_->link(link);
  start_session(link, topo_->switch_of(rec.upper));
  if (topo_->is_switch_node(rec.lower)) {
    start_session(link, topo_->switch_of(rec.lower));
  }
}

void FailureDetector::monitor_all() {
  for (std::uint32_t id = 0; id < topo_->num_links(); ++id) {
    const LinkId link{id};
    if (topo_->is_switch_node(topo_->link(link).lower)) monitor(link);
  }
}

void FailureDetector::start_session(LinkId link, SwitchId observer) {
  Session s;
  s.link = link;
  s.observer = observer;
  s.window.assign(static_cast<std::size_t>(options_.window), 0);
  sessions_.push_back(std::move(s));
  // BFD endpoints free-run: stagger the first probe uniformly inside one
  // interval so the two ends of a link never probe in lockstep.
  const SimTime offset = rng_.real() * options_.probe_interval_ms;
  schedule_probe(sessions_.size() - 1, offset);
}

void FailureDetector::schedule_probe(std::size_t session_index,
                                     SimTime delay) {
  if (sim_->now() + delay > horizon_ms_) return;
  sim_->schedule(delay, [this, session_index] { probe(session_index); });
}

void FailureDetector::probe(std::size_t session_index) {
  Session& s = sessions_[session_index];
  ++stats_.probes_sent;
  obs::count("detector.probes_sent");
  const double loss = overlay_->loss_now(s.link, sim_->now());
  const bool lost = loss >= 1.0 || (loss > 0.0 && rng_.chance(loss));
  if (lost) {
    ++stats_.probes_lost;
    obs::count("detector.probes_lost");
  }

  // Slide the N-of-M window.
  const std::size_t pos = static_cast<std::size_t>(s.window_pos);
  if (s.window_fill == options_.window) {
    s.losses_in_window -= s.window[pos];
  } else {
    ++s.window_fill;
  }
  s.window[pos] = lost ? 1 : 0;
  if (lost) ++s.losses_in_window;
  s.window_pos = (s.window_pos + 1) % options_.window;
  s.consecutive_ok = lost ? 0 : s.consecutive_ok + 1;

  if (!s.down) {
    if (s.losses_in_window >= options_.loss_threshold) {
      session_transition(s, /*down=*/true);
    } else if (!s.suspected &&
               s.losses_in_window >= options_.suspect_threshold) {
      s.suspected = true;
      ++stats_.suspects;
      record(s.link, s.observer, DetectionKind::kSuspected);
    } else if (s.suspected && s.losses_in_window == 0) {
      s.suspected = false;  // episode drained out of the window
    }
  } else if (s.consecutive_ok >= options_.recovery_threshold) {
    session_transition(s, /*down=*/false);
  }

  schedule_probe(session_index, options_.probe_interval_ms);
}

void FailureDetector::session_transition(Session& session, bool down) {
  session.down = down;
  session.suspected = false;
  session.window.assign(session.window.size(), 0);
  session.window_fill = 0;
  session.window_pos = 0;
  session.losses_in_window = 0;
  session.consecutive_ok = 0;
  on_confirm(session.link, down);
}

void FailureDetector::on_confirm(LinkId link, bool down) {
  LinkWatch& watch = watches_.at(link.value());
  // Two sessions watch most links; the first to flip the verdict wins and
  // the second's agreement is not a new transition.
  if (watch.confirmed_down == down) return;
  watch.confirmed_down = down;
  if (down) {
    ++stats_.confirms_down;
    if (overlay_->health(link).health == LinkHealth::kUp) {
      ++stats_.false_confirms;
    }
  } else {
    ++stats_.confirms_up;
  }
  record(link, SwitchId::invalid(),
         down ? DetectionKind::kConfirmedDown : DetectionKind::kConfirmedUp);

  const DampingOptions& damping = options_.damping;
  if (!damping.enabled) {
    maybe_notify(link, watch);
    return;
  }
  decay(watch);
  watch.penalty += damping.penalty;
  if (!watch.suppressed && watch.penalty >= damping.suppress_threshold) {
    watch.suppressed = true;
    ++watch.suppression_cycles;
    record(link, SwitchId::invalid(), DetectionKind::kSuppressed);
    schedule_reuse_check(link);
  }
  if (watch.suppressed) {
    ++stats_.suppressed_transitions;
    return;
  }
  maybe_notify(link, watch);
}

void FailureDetector::maybe_notify(LinkId link, LinkWatch& watch) {
  if (watch.reported_down == watch.confirmed_down) return;
  const DampingOptions& damping = options_.damping;
  if (damping.enabled && watch.ever_notified) {
    const SimTime earliest = watch.last_notify_ms + damping.hold_down_ms;
    if (sim_->now() < earliest) {
      // Hold-down: coalesce into one deferred report.  Re-evaluated at
      // fire time — transitions that cancel out report nothing at all.
      if (watch.notify_pending) return;
      watch.notify_pending = true;
      sim_->schedule_at(earliest, [this, link] {
        LinkWatch& later = watches_.at(link.value());
        later.notify_pending = false;
        if (later.suppressed) return;
        if (later.reported_down != later.confirmed_down) {
          notify(link, later);
        }
      });
      return;
    }
  }
  notify(link, watch);
}

void FailureDetector::notify(LinkId link, LinkWatch& watch) {
  if (watch.ever_notified) {
    watch.min_notify_gap_ms = std::min(
        watch.min_notify_gap_ms, sim_->now() - watch.last_notify_ms);
  }
  watch.reported_down = watch.confirmed_down;
  watch.last_notify_ms = sim_->now();
  watch.ever_notified = true;
  ++watch.notifications;
  ++stats_.notifications;
  record(link, SwitchId::invalid(), DetectionKind::kNotified);
  if (sink_) sink_(link, watch.reported_down, sim_->now());
}

void FailureDetector::decay(LinkWatch& watch) const {
  const SimTime now = sim_->now();
  if (now > watch.penalty_at && watch.penalty > 0.0) {
    watch.penalty *= std::exp2(-(now - watch.penalty_at) /
                               options_.damping.half_life_ms);
  }
  watch.penalty_at = now;
}

void FailureDetector::schedule_reuse_check(LinkId link) {
  LinkWatch& watch = watches_.at(link.value());
  if (watch.reuse_check_pending) return;
  decay(watch);
  const DampingOptions& damping = options_.damping;
  SimTime wait = 0.0;
  if (watch.penalty > damping.reuse_threshold) {
    wait = damping.half_life_ms *
           std::log2(watch.penalty / damping.reuse_threshold);
  }
  watch.reuse_check_pending = true;
  sim_->schedule(wait + kPenaltyTolerance, [this, link] {
    LinkWatch& later = watches_.at(link.value());
    later.reuse_check_pending = false;
    if (!later.suppressed) return;
    decay(later);
    if (later.penalty <= options_.damping.reuse_threshold +
                             kPenaltyTolerance) {
      later.suppressed = false;
      record(link, SwitchId::invalid(), DetectionKind::kReused);
      // Reconcile: if transitions happened while we were suppressed, the
      // sink's picture is stale — bring it back in line.
      maybe_notify(link, later);
    } else {
      // Fresh transitions pushed the penalty back up while suppressed;
      // keep waiting for the (re-computed) decay crossing.
      schedule_reuse_check(link);
    }
  });
}

void FailureDetector::record(LinkId link, SwitchId observer,
                             DetectionKind kind) {
  obs::count("detector.events");
  obs::trace_event(sim_->now(), obs::TraceKind::kDetect, link.value(),
                   observer.valid() ? observer.value() : 0,
                   static_cast<std::uint64_t>(kind), to_cstring(kind));
  events_.push_back(DetectionEvent{sim_->now(), link, observer, kind});
}

SimTime FailureDetector::first_confirm_down(LinkId link) const {
  for (const DetectionEvent& e : events_) {
    if (e.link == link && e.kind == DetectionKind::kConfirmedDown) {
      return e.at_ms;
    }
  }
  return -1.0;
}

SimTime FailureDetector::first_suspect(LinkId link) const {
  for (const DetectionEvent& e : events_) {
    if (e.link == link && e.kind == DetectionKind::kSuspected) return e.at_ms;
  }
  return -1.0;
}

FailureDetector::LinkDampingView FailureDetector::damping_view(
    LinkId link) const {
  const auto it = watches_.find(link.value());
  ASPEN_REQUIRE(it != watches_.end(), "link is not monitored");
  const LinkWatch& watch = it->second;
  LinkDampingView view;
  view.penalty = watch.penalty;
  if (sim_->now() > watch.penalty_at && watch.penalty > 0.0) {
    view.penalty *= std::exp2(-(sim_->now() - watch.penalty_at) /
                              options_.damping.half_life_ms);
  }
  view.suppressed = watch.suppressed;
  view.confirmed_down = watch.confirmed_down;
  view.reported_down = watch.reported_down;
  view.notifications = watch.notifications;
  view.suppression_cycles = watch.suppression_cycles;
  view.notify_pending = watch.notify_pending;
  view.min_notify_gap_ms = watch.min_notify_gap_ms;
  return view;
}

std::vector<LinkId> FailureDetector::monitored_links() const {
  std::vector<LinkId> links;
  links.reserve(watches_.size());
  for (const auto& [id, watch] : watches_) links.push_back(LinkId{id});
  return links;
}

int FailureDetector::notification_bound(LinkId link) const {
  const auto it = watches_.find(link.value());
  ASPEN_REQUIRE(it != watches_.end(), "link is not monitored");
  return (it->second.suppression_cycles + 1) *
         options_.damping.max_notifications_per_cycle();
}

AuditReport audit_detector(const FailureDetector& detector) {
  AuditReport report;
  const DampingOptions& damping = detector.options().damping;
  for (const LinkId link : detector.monitored_links()) {
    const FailureDetector::LinkDampingView view = detector.damping_view(link);
    if (damping.enabled) {
      if (view.suppressed &&
          view.penalty < damping.reuse_threshold - kPenaltyTolerance) {
        std::ostringstream os;
        os << "link " << link.value() << " suppressed with penalty "
           << view.penalty << " below reuse threshold "
           << damping.reuse_threshold;
        report.add(AuditCode::kDetectorSuppression, os.str());
      }
      if (!view.suppressed &&
          view.penalty >= damping.suppress_threshold + kPenaltyTolerance) {
        std::ostringstream os;
        os << "link " << link.value() << " unsuppressed with penalty "
           << view.penalty << " beyond suppress threshold "
           << damping.suppress_threshold;
        report.add(AuditCode::kDetectorSuppression, os.str());
      }
      // The rate bound damping must guarantee unconditionally: no two
      // reports for one link closer than the hold-down window.
      if (view.notifications >= 2 &&
          view.min_notify_gap_ms < damping.hold_down_ms - kPenaltyTolerance) {
        std::ostringstream os;
        os << "link " << link.value() << " reported twice within "
           << view.min_notify_gap_ms << " ms (hold-down "
           << damping.hold_down_ms << " ms)";
        report.add(AuditCode::kDetectorOscillation, os.str());
      }
    }
    if (!view.suppressed && !view.notify_pending &&
        view.reported_down != view.confirmed_down) {
      std::ostringstream os;
      os << "link " << link.value() << " reported "
         << (view.reported_down ? "down" : "up") << " but confirmed "
         << (view.confirmed_down ? "down" : "up")
         << " with no suppression or pending report to explain it";
      report.add(AuditCode::kDetectorSession, os.str());
    }
  }
  return report;
}

void DetectorAuditPeer::corrupt_suppression(FailureDetector& d, LinkId link) {
  FailureDetector::LinkWatch& watch = d.watches_.at(link.value());
  watch.suppressed = true;
  watch.penalty = 0.0;
  watch.penalty_at = d.sim_->now();
}

void DetectorAuditPeer::corrupt_notification_count(FailureDetector& d,
                                                   LinkId link) {
  FailureDetector::LinkWatch& watch = d.watches_.at(link.value());
  watch.notifications = std::max(watch.notifications, 2);
  watch.min_notify_gap_ms = d.options_.damping.hold_down_ms * 0.25;
}

void DetectorAuditPeer::corrupt_reported_state(FailureDetector& d,
                                               LinkId link) {
  FailureDetector::LinkWatch& watch = d.watches_.at(link.value());
  watch.suppressed = false;
  watch.notify_pending = false;
  watch.reported_down = !watch.confirmed_down;
}

// ---- Drivers ----------------------------------------------------------

DetectionOutcome measure_detection(const Topology& topo, LinkId link,
                                   const LinkHealthState& fault,
                                   const DetectorOptions& options,
                                   SimTime horizon_ms) {
  Simulator sim;
  LinkStateOverlay overlay(topo);
  switch (fault.health) {
    case LinkHealth::kUp:
      break;  // clean watch: measures the false-alarm horizon
    case LinkHealth::kGray:
      overlay.set_gray(link, fault.loss_rate);
      break;
    case LinkHealth::kFlapping:
      overlay.set_flapping(link, fault.period_ms, fault.duty);
      break;
    case LinkHealth::kDown:
      overlay.fail(link);
      break;
  }
  FailureDetector detector(topo, overlay, sim, options);
  detector.set_horizon(horizon_ms);
  detector.monitor(link);
  DetectionOutcome outcome;
  outcome.events = sim.run();
  outcome.confirm_latency_ms = detector.first_confirm_down(link);
  outcome.suspect_latency_ms = detector.first_suspect(link);
  outcome.stats = detector.stats();
  if (outcome.confirmed()) {
    obs::observe("detector.confirm_ms", outcome.confirm_latency_ms);
  }
  return outcome;
}

DetectedFailureResult run_detected_failure(ProtocolKind kind,
                                           const Topology& topo, LinkId link,
                                           const LinkHealthState& fault,
                                           const DetectorOptions& options,
                                           DelayModel delays,
                                           AnpOptions anp_options,
                                           SimTime horizon_ms) {
  DetectedFailureResult result;
  result.detection =
      measure_detection(topo, link, fault, options, horizon_ms);
  ASPEN_REQUIRE(result.detection.confirmed(),
                "detector never confirmed the fault within the horizon");
  // The measured confirm latency becomes the protocol's detection delay:
  // every reaction and table change is now timed from the *fault* instant.
  delays.detection = result.detection.confirm_latency_ms;
  result.proto = make_protocol(kind, topo, delays, anp_options);
  result.before = result.proto->tables();
  result.reaction = result.proto->simulate_link_failure(link);
  return result;
}

FlapScenarioResult run_flap_scenario(ProtocolKind kind, const Topology& topo,
                                     LinkId link, SimTime period_ms,
                                     double duty, int cycles,
                                     const DetectorOptions& options,
                                     DelayModel delays,
                                     AnpOptions anp_options) {
  ASPEN_REQUIRE(cycles >= 1, "a flap scenario needs at least one cycle");
  auto proto = make_protocol(kind, topo, delays, anp_options);
  const RoutingState start = proto->tables();

  Simulator sim;
  LinkStateOverlay physical(topo);
  physical.set_flapping(link, period_ms, duty);

  FailureDetector detector(topo, physical, sim, options);
  FlapScenarioResult result;
  detector.set_reaction_sink(
      [&](LinkId reported, bool down, SimTime /*at_ms*/) {
        const FailureReport report =
            down ? proto->simulate_link_failure(reported)
                 : proto->simulate_link_recovery(reported);
        result.table_changes += report.switches_reacted;
        result.messages += report.messages_sent;
        result.reaction_time_ms += report.convergence_time_ms;
      });

  const SimTime flap_end = period_ms * cycles;
  // Probe long enough past the heal for the recovery confirm to land.
  detector.set_horizon(
      flap_end + static_cast<SimTime>(options.recovery_threshold +
                                      options.window + 2) *
                     options.probe_interval_ms);
  sim.schedule_at(flap_end, [&physical, link] {
    (void)physical.clear_degradation(link);
  });
  detector.monitor(link);
  (void)sim.run();

  // Reconciliation-on-reuse should leave the protocol's overlay healed; a
  // pathological damping config gets one defensive repair so the scenario
  // always hands back a consistent fabric.
  if (!proto->overlay().is_up(link)) {
    const FailureReport report = proto->simulate_link_recovery(link);
    result.table_changes += report.switches_reacted;
    result.messages += report.messages_sent;
  }

  const DetectorStats& stats = detector.stats();
  result.confirmed_transitions = stats.confirms_down + stats.confirms_up;
  result.notifications = stats.notifications;
  result.suppressed_transitions = stats.suppressed_transitions;
  result.notification_bound = detector.notification_bound(link);
  result.audit = audit_detector(detector);

  const RoutingState& end = proto->tables();
  result.tables_restored = true;
  for (std::size_t s = 0; s < end.tables.size(); ++s) {
    if (!(end.tables[s] == start.tables[s])) {
      result.tables_restored = false;
      break;
    }
  }
  return result;
}

}  // namespace aspen::fault
