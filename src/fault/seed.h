// Deterministic derivation of independent RNG stream seeds.
//
// Every stochastic subsystem (chaos schedules, consistency-check flow
// sampling, detector probe watches, survivability samples) must draw from
// its own stream so that adding draws to one never perturbs another — the
// property all the byte-identity guarantees (legacy chaos schedules,
// resume-from-checkpoint, thread-count independence) rest on.  Before this
// header each call site XORed its own magic constant onto the base seed;
// derive_stream_seed is the one place that mixing now lives, so stream
// independence is an invariant of the helper instead of a convention.
#pragma once

#include <cstdint>

namespace aspen::fault {

/// Well-known stream tags.  Any 64-bit value works as a tag (per-link
/// streams pass the link id); these names exist so two subsystems never
/// collide on an ad-hoc constant.
enum : std::uint64_t {
  kStreamChaosFlows = 0x101,     ///< consistency-check flow sampling
  kStreamChaosHealth = 0x102,    ///< degraded re-walk gray-drop hashing
  kStreamChannel = 0x103,        ///< lossy control-channel fate draws
  kStreamDetectorWatch = 0x104,  ///< side-channel detector watches (+ link)
  kStreamSurvivability = 0x105,  ///< survivability sample streams (+ index)
  kStreamServeChaos = 0x106,     ///< serve driver's live chaos schedule
  kStreamServeQueries = 0x107,   ///< serve driver's query generator
  kStreamServeClient = 0x108,    ///< per-client retry jitter (+ client id)
  kStreamServeChannel = 0x109,   ///< per-client lossy channel (+ client id)
  kStreamFlowEcmp = 0x10A,       ///< flow-plane per-flow ECMP seeds (+ flow)
  kStreamFlowAdmit = 0x10B,      ///< flow-plane admission pattern generator
};

/// Derives the seed for stream `tag` of a campaign keyed by `base`.
/// SplitMix64 finalization over the (base, tag) pair: distinct tags yield
/// statistically independent streams even for adjacent base seeds, and the
/// map is bijective in `base` for a fixed tag so no two campaigns share a
/// stream.  Pure function — safe to call from worker threads.
[[nodiscard]] constexpr std::uint64_t derive_stream_seed(std::uint64_t base,
                                                         std::uint64_t tag) {
  std::uint64_t z = base + 0x9E3779B97F4A7C15ull * (tag + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

}  // namespace aspen::fault
