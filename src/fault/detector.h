// BFD-style failure detection and flap damping — the front half of the
// reaction pipeline (detection → damping → notification → repair).
//
// The paper's §9.2 evaluation assumes detection is local and instantaneous:
// the measured window of vulnerability starts at the instant a link dies.
// Deployed fabrics are not so lucky — most loss comes from *gray* links
// that drop a fraction of packets while reporting up, and from *flapping*
// links that thrash the control plane.  This module supplies the missing
// stage:
//
//   * FailureDetector — one BFD-style session per (link, endpoint switch):
//     periodic probes ride the link's instantaneous health
//     (LinkStateOverlay::loss_now), an N-of-M loss threshold confirms a
//     failure, and consecutive successes confirm recovery.  Sessions emit
//     Suspected / ConfirmedDown / ConfirmedUp events with real latency.
//   * Flap damping — per-link exponential penalty (BGP route-flap style):
//     each confirmed transition adds a penalty that decays with a half
//     life; above the suppress threshold the link's transitions stop being
//     reported until the penalty decays below the reuse threshold, and a
//     hold-down timer coalesces reports that arrive back to back.  A
//     flapping link therefore triggers a *bounded* number of ANP/LSP
//     reactions instead of oscillating the tables.
//   * fault::audit_detector — invariant checks that the suppression state
//     is coherent with its penalty and that notifications never exceed the
//     damping bound.
//
// Drivers at the bottom connect the detector to the protocols: measure a
// confirm latency, charge it as DelayModel::detection, and the existing
// convergence / vulnerability-window machinery reports true loss-inducing
// time instead of reaction time alone.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "src/proto/experiment.h"
#include "src/proto/protocol.h"
#include "src/sim/simulator.h"
#include "src/topo/link_state.h"
#include "src/topo/topology.h"
#include "src/util/contracts.h"
#include "src/util/rng.h"

namespace aspen::fault {

/// BGP-style flap damping knobs, applied per link after session
/// aggregation.
struct DampingOptions {
  bool enabled = true;
  /// Penalty added per confirmed up/down transition.
  double penalty = 1000.0;
  /// Suppress reporting once the decayed penalty reaches this.
  double suppress_threshold = 3000.0;
  /// Resume reporting once the decayed penalty falls back to this.
  double reuse_threshold = 800.0;
  /// Exponential-decay half life of the penalty.
  double half_life_ms = 60'000.0;
  /// Minimum spacing between two reports for the same link; transitions
  /// inside the window are coalesced into one deferred report.
  SimTime hold_down_ms = 20.0;

  /// Max reports one suppression cycle can emit: the transitions it takes
  /// to climb from zero penalty past the suppress threshold, plus the
  /// reconciliation report when the link is reused.
  [[nodiscard]] int max_notifications_per_cycle() const {
    return static_cast<int>(suppress_threshold / penalty) + 1;
  }
};

struct DetectorOptions {
  SimTime probe_interval_ms = 10.0;  ///< BFD transmit interval
  int window = 5;                    ///< M: probes remembered per session
  int loss_threshold = 3;            ///< N: losses in window → confirmed
  int suspect_threshold = 1;         ///< losses in window → suspected
  int recovery_threshold = 3;        ///< consecutive successes → confirmed up
  std::uint64_t seed = 0xBFDull;     ///< probe-loss sampling on gray links
  DampingOptions damping;

  /// Worst-case confirm latency for a hard-down link: N lost probes plus
  /// up to one interval of phase offset before the first probe.
  [[nodiscard]] SimTime confirm_bound_ms() const {
    return static_cast<SimTime>(loss_threshold + 1) * probe_interval_ms;
  }
};

enum class DetectionKind : std::uint8_t {
  kSuspected,      ///< session crossed the suspect threshold
  kConfirmedDown,  ///< link-level verdict flipped to down
  kConfirmedUp,    ///< link-level verdict flipped back to up
  kSuppressed,     ///< damping entered suppression for the link
  kReused,         ///< penalty decayed below reuse; reporting resumed
  kNotified,       ///< a transition was reported to the reaction sink
};

[[nodiscard]] const char* to_cstring(DetectionKind kind);

struct DetectionEvent {
  SimTime at_ms = 0.0;
  LinkId link = LinkId::invalid();
  /// Session-scoped events carry the probing switch; link-scoped events
  /// (confirm / damping) carry SwitchId::invalid().
  SwitchId observer = SwitchId::invalid();
  DetectionKind kind = DetectionKind::kSuspected;
};

struct DetectorStats {
  std::uint64_t probes_sent = 0;
  std::uint64_t probes_lost = 0;
  std::uint64_t suspects = 0;        ///< suspect episodes across sessions
  std::uint64_t confirms_down = 0;   ///< link-level down verdicts
  std::uint64_t confirms_up = 0;     ///< link-level up verdicts
  std::uint64_t notifications = 0;   ///< transitions reported to the sink
  std::uint64_t suppressed_transitions = 0;  ///< eaten by damping
  /// Down verdicts issued while the link's health was clean kUp — a true
  /// false positive (impossible unless probes share a lossy channel).
  std::uint64_t false_confirms = 0;
};

/// Periodic-probe failure detector over one overlay's link health.
///
/// Schedule-driven: construct it against a Simulator, monitor() the links
/// of interest, then run the simulator; probes, confirms and damped
/// notifications all happen as events.  Deterministic given
/// DetectorOptions::seed and the overlay's (possibly time-varying) health.
class FailureDetector {
 public:
  /// Reaction sink: called for each *reported* transition (post-damping).
  /// `down` strictly alternates per link, starting with true, so sinks can
  /// drive ProtocolSimulation::simulate_link_failure/_recovery directly.
  using ReactionFn = std::function<void(LinkId, bool down, SimTime at_ms)>;

  FailureDetector(const Topology& topo, const LinkStateOverlay& overlay,
                  Simulator& sim, DetectorOptions options = {});

  /// Stops scheduling probes past this instant (damping timers still run
  /// to quiescence).  Must be set before monitor().
  void set_horizon(SimTime horizon_ms) { horizon_ms_ = horizon_ms; }

  void set_reaction_sink(ReactionFn sink) { sink_ = std::move(sink); }

  /// Starts one BFD session per switch endpoint of `link` (a host link
  /// gets a single session at its edge switch).
  void monitor(LinkId link);
  /// Monitors every inter-switch link of the topology.
  void monitor_all();

  [[nodiscard]] const DetectorStats& stats() const { return stats_; }
  [[nodiscard]] const std::vector<DetectionEvent>& events() const {
    return events_;
  }
  [[nodiscard]] const DetectorOptions& options() const { return options_; }

  /// First ConfirmedDown instant for `link`, or -1 if never confirmed.
  [[nodiscard]] SimTime first_confirm_down(LinkId link) const;
  /// First Suspected instant for `link`, or -1 if never suspected.
  [[nodiscard]] SimTime first_suspect(LinkId link) const;

  /// Damping introspection for audits, benches and tests.
  struct LinkDampingView {
    double penalty = 0.0;       ///< decayed to the simulator's now()
    bool suppressed = false;
    bool confirmed_down = false;  ///< current link-level verdict
    bool reported_down = false;   ///< last state told to the sink
    int notifications = 0;
    int suppression_cycles = 0;
    bool notify_pending = false;  ///< a hold-down deferred report is queued
    /// Smallest spacing between two consecutive reports (∞ until two
    /// happen); damping guarantees it never undercuts hold_down_ms.
    SimTime min_notify_gap_ms = 1e18;
  };
  [[nodiscard]] LinkDampingView damping_view(LinkId link) const;
  [[nodiscard]] std::vector<LinkId> monitored_links() const;

  /// Analytic cap on reports for this link given the suppression cycles
  /// observed so far: (cycles + 1) · DampingOptions
  /// ::max_notifications_per_cycle().  Exact in the fast-flap regime the
  /// damping targets (flap period ≪ penalty half life, where decay between
  /// burst transitions is negligible); a slow flapper that legitimately
  /// never accumulates penalty is instead rate-bounded by hold_down_ms,
  /// which audit_detector enforces unconditionally.
  [[nodiscard]] int notification_bound(LinkId link) const;

 private:
  friend struct DetectorAuditPeer;

  struct Session {
    LinkId link = LinkId::invalid();
    SwitchId observer = SwitchId::invalid();
    std::vector<char> window;  ///< ring of recent probe outcomes (1 = lost)
    int window_fill = 0;
    int window_pos = 0;
    int losses_in_window = 0;
    int consecutive_ok = 0;
    bool down = false;       ///< this session's verdict
    bool suspected = false;  ///< inside a suspect episode
  };

  struct LinkWatch {
    bool confirmed_down = false;
    bool reported_down = false;
    double penalty = 0.0;
    SimTime penalty_at = 0.0;  ///< instant `penalty` was last decayed to
    bool suppressed = false;
    int notifications = 0;
    int suppression_cycles = 0;
    SimTime last_notify_ms = 0.0;
    SimTime min_notify_gap_ms = 1e18;
    bool ever_notified = false;
    bool notify_pending = false;
    bool reuse_check_pending = false;
  };

  void start_session(LinkId link, SwitchId observer);
  void schedule_probe(std::size_t session_index, SimTime delay);
  void probe(std::size_t session_index);
  void session_transition(Session& session, bool down);
  void on_confirm(LinkId link, bool down);
  void maybe_notify(LinkId link, LinkWatch& watch);
  void notify(LinkId link, LinkWatch& watch);
  void decay(LinkWatch& watch) const;
  void schedule_reuse_check(LinkId link);
  void record(LinkId link, SwitchId observer, DetectionKind kind);

  const Topology* topo_;
  const LinkStateOverlay* overlay_;
  Simulator* sim_;
  DetectorOptions options_;
  Rng rng_;
  SimTime horizon_ms_ = 1e18;
  ReactionFn sink_;
  std::vector<Session> sessions_;
  std::map<std::uint32_t, LinkWatch> watches_;
  DetectorStats stats_;
  std::vector<DetectionEvent> events_;
};

/// Invariant checks over a quiesced detector (run the simulator dry
/// first):
///   * kDetectorSuppression — suppression flag incoherent with the decayed
///     penalty (suppressed below reuse, or unsuppressed far above
///     suppress).
///   * kDetectorOscillation — reports exceed the per-link damping bound.
///   * kDetectorSession — reported state diverges from the confirmed
///     verdict with no suppression or pending hold-down to explain it.
[[nodiscard]] AuditReport audit_detector(const FailureDetector& detector);

/// Test-only corruption hooks (mirrors proto::AnpAuditPeer): each plants an
/// inconsistency audit_detector must flag.
struct DetectorAuditPeer {
  static void corrupt_suppression(FailureDetector& d, LinkId link);
  static void corrupt_notification_count(FailureDetector& d, LinkId link);
  static void corrupt_reported_state(FailureDetector& d, LinkId link);
};

// ---- Drivers: detector → protocol pipeline ----------------------------

/// Outcome of watching one faulty link in isolation.
struct DetectionOutcome {
  SimTime confirm_latency_ms = -1.0;  ///< fault → ConfirmedDown; -1 = never
  SimTime suspect_latency_ms = -1.0;  ///< fault → first Suspected
  DetectorStats stats;
  std::uint64_t events = 0;  ///< simulator events the watch consumed

  [[nodiscard]] bool confirmed() const { return confirm_latency_ms >= 0.0; }
};

/// Injects `fault` health on `link` at t = 0 of a private overlay, probes
/// until `horizon_ms`, and reports how long confirmation took.
[[nodiscard]] DetectionOutcome measure_detection(const Topology& topo,
                                                 LinkId link,
                                                 const LinkHealthState& fault,
                                                 const DetectorOptions& options,
                                                 SimTime horizon_ms = 60'000.0);

/// A failure reaction whose clock starts at the *fault*, not the
/// detection: the measured confirm latency is charged as
/// DelayModel::detection, so reaction.convergence_time_ms and every
/// table-change instant include it.
struct DetectedFailureResult {
  DetectionOutcome detection;
  FailureReport reaction;
  /// Tables before the failure, for vulnerability-window walks.
  RoutingState before;
  /// The protocol, post-reaction (overlay still holds the failed link).
  std::unique_ptr<ProtocolSimulation> proto;
};

/// Runs the full pipeline for one link: detect `fault` (anything with
/// loss — Down, Gray, Flapping), then let `kind` react to the confirmed
/// failure.  REQUIREs that the detector actually confirms within
/// `horizon_ms`.
[[nodiscard]] DetectedFailureResult run_detected_failure(
    ProtocolKind kind, const Topology& topo, LinkId link,
    const LinkHealthState& fault, const DetectorOptions& options,
    DelayModel delays = {}, AnpOptions anp_options = {},
    SimTime horizon_ms = 60'000.0);

/// Outcome of driving a protocol from a flapping link's detector events.
struct FlapScenarioResult {
  std::uint64_t confirmed_transitions = 0;  ///< detector verdict flips
  std::uint64_t notifications = 0;          ///< reports after damping
  std::uint64_t suppressed_transitions = 0;
  std::uint64_t table_changes = 0;   ///< switch-table updates across reports
  std::uint64_t messages = 0;        ///< protocol messages across reports
  SimTime reaction_time_ms = 0.0;    ///< summed convergence of all reports
  int notification_bound = 0;        ///< damping bound for the flapped link
  AuditReport audit;                 ///< audit_detector at quiescence
  bool tables_restored = false;      ///< end state matches the start state
};

/// Flaps `link` (period/duty) for `cycles` full periods on a private
/// overlay, feeding every post-damping report into a fresh `kind`
/// protocol: reported-down → simulate_link_failure, reported-up →
/// simulate_link_recovery.  After the flapping stops the link heals and
/// the detector reconciles, so the protocol ends on restored tables.
[[nodiscard]] FlapScenarioResult run_flap_scenario(
    ProtocolKind kind, const Topology& topo, LinkId link, SimTime period_ms,
    double duty, int cycles, const DetectorOptions& options,
    DelayModel delays = {}, AnpOptions anp_options = {});

}  // namespace aspen::fault
