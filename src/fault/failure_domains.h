// Correlated-failure domains: shared-risk link groups (SRLGs).
//
// The paper (and our analytic FTV machinery) treats link failures as
// independent events, but measured data-center failure processes are
// dominated by *correlated* faults: a rack losing power takes every link on
// its top-of-rack switch, a blown power feed takes a whole group of pods,
// and a linecard failure takes a contiguous block of one switch's ports
// (Gill et al.; Couto et al., PAPERS.md).  A FailureDomainModel partitions
// — or, for composite models, covers — the inter-switch links of one
// topology with named blast radii; drawing a fault then means drawing a
// *domain* and failing every link in it at once.
//
// The model is the one correlated-injection currency shared by every fault
// consumer: the Monte Carlo survivability engine samples domains per trial
// (src/analysis/survivability.h), and ChaosCampaign accepts a model so its
// link-cut actions become domain cuts (ChaosOptions::domains).
//
// Determinism: domains are stored in a canonical order (construction order;
// builders iterate the topology in id order), every domain's link list is
// sorted, and all sampling goes through the caller's Rng — the model itself
// holds no random state.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/topo/topology.h"
#include "src/util/ids.h"
#include "src/util/rng.h"

namespace aspen::fault {

/// What physical failure a domain models.
enum class DomainKind : std::uint8_t {
  kLink,       ///< a single link — the independent-failure baseline
  kRack,       ///< an edge (L_1) switch's uplinks: top-of-rack power loss
  kPowerFeed,  ///< every uplink of one L_2 pod: a shared power feed
  kLinecard,   ///< a contiguous block of one switch's same-direction ports
};

[[nodiscard]] const char* to_cstring(DomainKind kind);

/// One shared-risk link group.
struct FailureDomain {
  DomainKind kind = DomainKind::kLink;
  std::vector<LinkId> links;  ///< sorted by id, unique, non-empty
  std::string name;           ///< stable diagnostic label, e.g. "rack:L1.3"
};

/// An immutable catalog of failure domains over one topology.
class FailureDomainModel {
 public:
  /// The independence baseline: one kLink domain per inter-switch link.
  /// Sampling this model reproduces uncorrelated link failures exactly.
  [[nodiscard]] static FailureDomainModel independent(const Topology& topo);

  /// Rack blast radii: for every L_1 switch, one domain holding all of its
  /// uplinks (host links stay out — routing-invisible under kEdge tables).
  [[nodiscard]] static FailureDomainModel racks(const Topology& topo);

  /// Power-feed blast radii: for every L_2 pod, one domain holding every
  /// uplink of the pod's switches — the links a shared feed failure kills.
  [[nodiscard]] static FailureDomainModel power_feeds(const Topology& topo);

  /// Linecard blast radii: each switch's up-facing and down-facing
  /// inter-switch ports are split into contiguous cards of
  /// `ports_per_card` links; each card is one domain.
  [[nodiscard]] static FailureDomainModel linecards(const Topology& topo,
                                                    std::uint32_t ports_per_card);

  /// Parses "independent" / "rack" / "feed" / "linecard[:ports]" (CLI and
  /// bench front ends).  Throws PreconditionError on anything else.
  [[nodiscard]] static FailureDomainModel parse(const Topology& topo,
                                                const std::string& spec);

  /// Wraps an explicit domain catalog — SRLGs imported from outside the
  /// builders above (e.g. measured blast radii).  The caller owns
  /// coherence; run `check()` against the target topology before sampling.
  [[nodiscard]] static FailureDomainModel from_domains(
      std::vector<FailureDomain> domains);

  [[nodiscard]] const std::vector<FailureDomain>& domains() const {
    return domains_;
  }
  [[nodiscard]] std::size_t size() const { return domains_.size(); }
  [[nodiscard]] const FailureDomain& domain(std::size_t i) const {
    return domains_.at(i);
  }

  /// Total links across all domains (with multiplicity, for composites).
  [[nodiscard]] std::uint64_t total_links() const;

  /// Largest single blast radius, in links.
  [[nodiscard]] std::size_t max_domain_links() const;

  /// Draws a uniformly random domain index.
  [[nodiscard]] std::size_t draw(Rng& rng) const {
    return rng.index(domains_.size());
  }

  /// A seeded uniform permutation of all domain indices — the progressive
  /// failure order one survivability sample walks (Couto et al.'s
  /// progressive-random-failure campaign, generalized to SRLGs).
  [[nodiscard]] std::vector<std::uint32_t> draw_order(Rng& rng) const;

  /// Appends another model's domains (e.g. racks + linecards composite).
  void merge(const FailureDomainModel& other);

  /// Structural sanity: every domain non-empty, links sorted and unique,
  /// every link a valid inter-switch link of `topo`.  Returns a list of
  /// problems, empty when coherent.
  [[nodiscard]] std::vector<std::string> check(const Topology& topo) const;

 private:
  std::vector<FailureDomain> domains_;
};

}  // namespace aspen::fault
