#include "src/fault/chaos.h"

#include <algorithm>
#include <array>
#include <vector>

#include "src/fault/seed.h"
#include "src/obs/obs.h"
#include "src/routing/audit.h"
#include "src/routing/packet_walk.h"
#include "src/routing/reachability.h"
#include "src/topo/audit.h"
#include "src/util/contracts.h"
#include "src/util/rng.h"
#include "src/util/status.h"

namespace aspen {

namespace {

void absorb(ChaosOutcome& outcome, const FailureReport& report) {
  outcome.messages += report.messages_sent;
  outcome.retransmits += report.retransmits;
  outcome.acks += report.acks_sent;
  outcome.duplicates_dropped += report.duplicates_dropped;
  outcome.channel_dropped += report.channel_dropped;
  outcome.health_dropped += report.health_dropped;
  outcome.channel_duplicated += report.channel_duplicated;
  outcome.gave_up += report.gave_up;
  outcome.stale_switches += report.stale_switches;
  outcome.all_quiesced = outcome.all_quiesced && report.quiesced;
  outcome.convergence_ms.add(report.convergence_time_ms);
}

/// Ground-truth routes for the current overlay, maintained incrementally
/// across a campaign.  Each consistency check used to recompute the truth
/// tables from scratch; instead the cache diffs the overlay's up/down bits
/// against the snapshot its tables were computed for and patches only the
/// rows those links dirty.  Health changes (gray, flapping) are deliberately
/// invisible here: routing consults only is_up().
struct TruthCache {
  RoutingState truth;
  std::vector<char> up;  ///< is_up() snapshot `truth` reflects
  bool valid = false;
};

/// Brings `cache.truth` in sync with `overlay`, computing from scratch on
/// first use and incrementally afterwards.
void sync_truth(const Topology& topo, const LinkStateOverlay& overlay,
                DestGranularity granularity, TruthCache& cache) {
  const std::uint64_t links = topo.num_links();
  if (!cache.valid) {
    cache.truth = compute_updown_routes(topo, overlay, granularity);
    cache.up.resize(links);
    for (std::uint64_t l = 0; l < links; ++l) {
      cache.up[l] =
          overlay.is_up(LinkId{static_cast<std::uint32_t>(l)}) ? 1 : 0;
    }
    cache.valid = true;
    return;
  }
  std::vector<LinkId> changed;
  for (std::uint64_t l = 0; l < links; ++l) {
    const LinkId link{static_cast<std::uint32_t>(l)};
    const char now = overlay.is_up(link) ? 1 : 0;
    if (cache.up[l] == now) continue;
    cache.up[l] = now;
    changed.push_back(link);
  }
  if (!changed.empty()) {
    recompute_updown_routes(topo, overlay, cache.truth, changed);
  }
}

/// Invariant (a): walk sampled flows with the protocol's tables over the
/// actual network, and with ground-truth tables computed *from* the actual
/// network.  The protocol may fall short of physics, never beat it.
///
/// The invariant walks disable link health: gray loss is probabilistic
/// noise that could otherwise "refute" a topologically sound route.  When
/// degraded links exist, flows that both table sets deliver are re-walked
/// with health applied to count degradation pain (degraded_drops).
void check_consistency(const Topology& topo, const ProtocolSimulation& proto,
                       const ChaosOptions& options, Rng& rng,
                       TruthCache& cache, ChaosOutcome& outcome) {
  const std::uint64_t flows = options.check_flows;
  if (flows == 0 || topo.num_hosts() < 2) return;
  sync_truth(topo, proto.overlay(), options.granularity, cache);
  const TableRouter truth_router(cache.truth);
  const TableRouter proto_router(proto.tables());
  ++outcome.checks;
  obs::count("chaos.checks");
  const std::uint64_t violations_before =
      outcome.ground_truth_violations + outcome.protocol_shortfall;
  WalkOptions pure;
  pure.apply_health = false;
  // Degraded re-walks: seed the per-flow gray hash off the campaign seed
  // and give the flap phase a pseudo-instant that varies across checks.
  WalkOptions degraded;
  degraded.apply_health = true;
  degraded.health_seed =
      fault::derive_stream_seed(options.seed, fault::kStreamChaosHealth);
  degraded.at_time_ms = static_cast<double>(outcome.checks) * 137.0;
  const bool any_degraded = proto.overlay().num_degraded() > 0;
  for (std::uint64_t f = 0; f < flows; ++f) {
    const HostId src{static_cast<std::uint32_t>(rng.index(
        static_cast<std::size_t>(topo.num_hosts())))};
    HostId dst{static_cast<std::uint32_t>(
        rng.index(static_cast<std::size_t>(topo.num_hosts())))};
    if (dst == src) {
      dst = HostId{static_cast<std::uint32_t>((dst.value() + 1) %
                                              topo.num_hosts())};
    }
    ++outcome.checked_flows;
    const WalkResult via_proto =
        walk_packet(topo, proto_router, proto.overlay(), src, dst, pure);
    const WalkResult via_truth =
        walk_packet(topo, truth_router, proto.overlay(), src, dst, pure);
    if (via_proto.delivered() && !via_truth.delivered()) {
      ++outcome.ground_truth_violations;
    } else if (!via_proto.delivered() && via_truth.delivered()) {
      ++outcome.protocol_shortfall;
    } else if (any_degraded && via_proto.delivered()) {
      degraded.flow_seed = f;
      const WalkResult lossy =
          walk_packet(topo, proto_router, proto.overlay(), src, dst, degraded);
      if (!lossy.delivered()) ++outcome.degraded_drops;
    }
  }
  const bool clean = outcome.ground_truth_violations +
                         outcome.protocol_shortfall ==
                     violations_before;
  obs::trace_event(0.0, obs::TraceKind::kChaosCheck,
                   static_cast<std::uint32_t>(flows), 0, clean ? 1 : 0,
                   "consistency");
}

/// Folds one auditor pass into the outcome, retaining the first few
/// violation messages for the caller's diagnostics.
void record_audit(ChaosOutcome& outcome, const AuditReport& report) {
  constexpr std::size_t kMaxRetainedMessages = 8;
  ++outcome.audit_checks;
  outcome.audit_violations += report.findings.size();
  for (const AuditFinding& f : report.findings) {
    if (outcome.audit_messages.size() >= kMaxRetainedMessages) break;
    outcome.audit_messages.push_back(std::string(to_cstring(f.code)) + ": " +
                                     f.message);
  }
}

}  // namespace

namespace fault {

/// All campaign state.  Members carry the exact names the single-call loop
/// used as locals so the action logic below is a verbatim transplant — the
/// byte-identity of RNG draws and trace records rests on not touching it.
struct ChaosCampaign::Impl {
  const Topology* topo_;
  ChaosOptions options;
  std::unique_ptr<ProtocolSimulation> proto;
  RoutingState initial;
  Rng rng;
  Rng flow_rng;
  ChaosOutcome outcome;
  TruthCache truth_cache;

  // Campaign-owned outstanding faults.  Links a crash takes down belong to
  // the protocol's crash bookkeeping, not to these lists; a campaign link
  // that is recovered while an endpoint is crashed silently transfers to
  // that crash (the protocol applies the custody rule), so it leaves
  // `down_links` either way.
  std::vector<LinkId> down_links;
  std::vector<SwitchId> crashed;
  // Links currently degraded (gray or flapping) by this campaign.  A
  // degraded link can still be cut or lose an endpoint to a crash — the
  // overlay erases its degradation on fail(), so the list is re-pruned
  // against the overlay after every action.
  std::vector<LinkId> degraded;

  bool paranoid = false;
  int action = 0;
  bool done = false;

  Impl(ProtocolKind kind, const Topology& t, const ChaosOptions& opts)
      : topo_(&t),
        options(opts),
        proto(make_protocol(kind, t, opts.delays, opts.anp, opts.granularity)),
        initial(proto->tables()),
        rng(opts.seed),
        flow_rng(derive_stream_seed(opts.seed, kStreamChaosFlows)) {
    outcome.seed = options.seed;
    obs::count("chaos.campaigns");
    obs::trace_event(0.0, obs::TraceKind::kChaosPhase, 0, 0,
                     static_cast<std::uint64_t>(options.num_events),
                     "campaign_start");
    paranoid = contracts::effective_audit_level(options.delays.audit_level) >=
               contracts::AuditLevel::kParanoid;
    if (paranoid) {
      record_audit(outcome, topo::audit_tree(*topo_));
    }
  }

  void prune_degraded() {
    std::erase_if(degraded, [&](LinkId l) {
      const LinkHealth h = proto->overlay().health(l).health;
      return h != LinkHealth::kGray && h != LinkHealth::kFlapping;
    });
  }

  // One auditor pass over the forwarding state and protocol bookkeeping.
  // Checks that only hold in settled states — table walks, dead-next-hop
  // scans, the protocols' withdrawal/custody self-audits — are gated: a
  // crashed switch legitimately strands custody links its revived peer
  // still points at, abandoned conversations (gave_up) and stale LSP
  // switches legitimately leave tables behind the physical truth, and an
  // unquiesced run still has detections queued.
  void run_audits(bool unwound) {
    if (!paranoid) return;
    const Topology& topo = *topo_;
    AuditReport report;
    // Health-eaten notifications (gray links under an unreliable channel)
    // can leave tables legitimately stale, so they also unsettle.
    const bool settled = crashed.empty() && outcome.gave_up == 0 &&
                         outcome.stale_switches == 0 && outcome.all_quiesced &&
                         outcome.health_dropped == 0;
    std::vector<char> alive(topo.num_switches(), 1);
    for (std::uint32_t s = 0; s < topo.num_switches(); ++s) {
      alive[s] = proto->is_alive(SwitchId{s}) ? 1 : 0;
    }
    routing::TableAuditOptions table_options;
    table_options.check_walks = settled;
    table_options.check_dead_next_hops = settled;
    table_options.expect_full_reachability =
        unwound && outcome.tables_restored;
    table_options.alive = &alive;
    report.merge(routing::audit_tables(topo, proto->tables(),
                                       proto->overlay(), table_options));
    // The ground-truth cache is itself incrementally maintained state:
    // prove it (tables and digests) against a from-scratch computation.
    sync_truth(topo, proto->overlay(), options.granularity, truth_cache);
    report.merge(routing::audit_incremental(topo, proto->overlay(),
                                            truth_cache.truth));
    if (outcome.all_quiesced) report.merge(proto->audit());
    record_audit(outcome, report);
  }

  [[nodiscard]] std::vector<LinkId> up_candidates() const {
    const Topology& topo = *topo_;
    std::vector<LinkId> up;
    for (Level level = 2; level <= topo.levels(); ++level) {
      for (const LinkId link : topo.links_at_level(level)) {
        if (proto->overlay().is_up(link)) up.push_back(link);
      }
    }
    return up;
  }

  [[nodiscard]] std::vector<SwitchId> alive_candidates() const {
    const Topology& topo = *topo_;
    std::vector<SwitchId> alive;
    for (std::uint32_t s = 0; s < topo.num_switches(); ++s) {
      if (proto->is_alive(SwitchId{s})) alive.push_back(SwitchId{s});
    }
    return alive;
  }

  /// One action-loop iteration.  Early returns mirror the loop's `continue`
  /// statements exactly: they skip the prune + periodic check epilogue.
  void step() {
    const Topology& topo = *topo_;
    const std::size_t outstanding =
        down_links.size() + crashed.size() + degraded.size();
    const bool want_recover =
        outstanding > 0 &&
        (rng.chance(options.p_recover) ||
         (down_links.size() >= options.max_concurrent_link_faults &&
          crashed.size() >= options.max_concurrent_switch_crashes &&
          (options.p_degrade <= 0 ||
           degraded.size() >= options.max_concurrent_degraded)));

    if (want_recover) {
      const std::size_t pick = rng.index(outstanding);
      if (pick < down_links.size()) {
        const LinkId link = down_links[pick];
        down_links.erase(down_links.begin() +
                         static_cast<std::ptrdiff_t>(pick));
        absorb(outcome, proto->simulate_link_recovery(link));
        ++outcome.link_recoveries;
      } else if (pick < down_links.size() + crashed.size()) {
        const std::size_t at = pick - down_links.size();
        const SwitchId victim = crashed[at];
        crashed.erase(crashed.begin() + static_cast<std::ptrdiff_t>(at));
        absorb(outcome, proto->simulate_switch_recovery(victim));
        ++outcome.switch_recoveries;
      } else {
        // Heal a degradation: routing never reacted to it (gray is
        // invisible, flapping is a physics waveform), so no protocol run —
        // the link simply stops misbehaving.
        const std::size_t at = pick - down_links.size() - crashed.size();
        const LinkId link = degraded[at];
        degraded.erase(degraded.begin() + static_cast<std::ptrdiff_t>(at));
        if (proto->overlay_mut().clear_degradation(link)) {
          ++outcome.degradations_cleared;
          obs::count("chaos.degradations_cleared");
          obs::trace_event(0.0, obs::TraceKind::kLinkRestore, link.value(), 0,
                           static_cast<std::uint64_t>(action), "heal");
        }
      }
    } else if (options.p_degrade > 0 &&
               degraded.size() < options.max_concurrent_degraded &&
               rng.chance(options.p_degrade)) {
      std::vector<LinkId> up = up_candidates();
      std::erase_if(up, [&](LinkId l) {
        return proto->overlay().health(l).health != LinkHealth::kUp;
      });
      if (up.empty()) return;
      const LinkId link = up[rng.index(up.size())];
      if (rng.chance(options.p_degrade_flap)) {
        proto->overlay_mut().set_flapping(link, options.flap_period_ms,
                                          options.flap_duty);
        ++outcome.flaps_injected;
        obs::count("chaos.flaps_injected");
        obs::trace_event(0.0, obs::TraceKind::kLinkDegrade, link.value(), 0,
                         static_cast<std::uint64_t>(action), "flap");
      } else {
        const double loss =
            options.gray_loss_min +
            rng.real() * (options.gray_loss_max - options.gray_loss_min);
        proto->overlay_mut().set_gray(link, loss);
        ++outcome.gray_injected;
        obs::count("chaos.gray_injected");
        obs::trace_event(0.0, obs::TraceKind::kLinkDegrade, link.value(), 0,
                         static_cast<std::uint64_t>(action), "gray");
        if (options.measure_detection_latency) {
          // Side-channel watch on a private overlay: how long would a
          // detector take to confirm this gray link?  Seed varies per link
          // so campaigns do not replay one probe schedule.
          fault::DetectorOptions watch = options.detector;
          watch.seed = fault::derive_stream_seed(
              fault::derive_stream_seed(options.detector.seed,
                                        fault::kStreamDetectorWatch),
              link.value());
          LinkHealthState fault_state;
          fault_state.health = LinkHealth::kGray;
          fault_state.loss_rate = loss;
          const fault::DetectionOutcome det =
              fault::measure_detection(topo, link, fault_state, watch);
          if (det.confirmed()) {
            outcome.detection_ms.add(det.confirm_latency_ms);
          } else {
            ++outcome.undetected_grays;
          }
        }
      }
      degraded.push_back(link);
    } else if (crashed.size() < options.max_concurrent_switch_crashes &&
               rng.chance(options.p_switch_crash)) {
      const std::vector<SwitchId> alive = alive_candidates();
      if (alive.empty()) return;
      const SwitchId victim = alive[rng.index(alive.size())];
      if (rng.chance(options.p_crash_mid_reaction) &&
          down_links.size() < options.max_concurrent_link_faults) {
        // Crash-while-reacting: a link dies, and a few milliseconds into
        // the protocol's reaction the switch goes with it, discarding its
        // queued work mid-flight.
        std::vector<LinkId> up = up_candidates();
        std::erase_if(up, [&](LinkId l) {
          const Topology::LinkRec& rec = topo.link(l);
          return rec.upper == topo.node_of(victim) ||
                 rec.lower == topo.node_of(victim);
        });
        if (!up.empty()) {
          const LinkId link = up[rng.index(up.size())];
          const SimTime crash_at = 1.0 + rng.real() * 29.0;  // 1–30 ms in
          const std::array<TimedFault, 2> schedule{
              TimedFault::link_fail(link),
              TimedFault::switch_fail(victim, crash_at)};
          absorb(outcome, proto->simulate_timed_events(schedule));
          down_links.push_back(link);
          ++outcome.link_failures;
          ++outcome.compound_runs;
        } else {
          absorb(outcome, proto->simulate_switch_failure(victim));
        }
      } else {
        absorb(outcome, proto->simulate_switch_failure(victim));
      }
      crashed.push_back(victim);
      ++outcome.switch_crashes;
    } else if (down_links.size() < options.max_concurrent_link_faults) {
      if (options.domains != nullptr && rng.chance(options.p_domain_cut)) {
        // Correlated cut: one blast radius, every still-up link in it
        // failed as a single timed event so the protocol reacts to the
        // correlated loss at once.  The concurrency cap admits the whole
        // domain — blast radii are atomic — so it may overshoot by the
        // domain size; recovery later is per-link like any other fault.
        const fault::FailureDomain& domain =
            options.domains->domain(options.domains->draw(rng));
        std::vector<TimedFault> schedule;
        for (const LinkId link : domain.links) {
          if (proto->overlay().is_up(link)) {
            schedule.push_back(TimedFault::link_fail(link));
          }
        }
        if (schedule.empty()) return;
        absorb(outcome, proto->simulate_timed_events(schedule));
        for (const TimedFault& fault : schedule) {
          down_links.push_back(fault.link);
        }
        outcome.link_failures += schedule.size();
        outcome.domain_links_cut += schedule.size();
        ++outcome.domain_cuts;
        obs::count("chaos.domain_cuts");
        obs::count("chaos.domain_links_cut", schedule.size());
      } else {
        const std::vector<LinkId> up = up_candidates();
        if (up.empty()) return;
        const LinkId link = up[rng.index(up.size())];
        absorb(outcome, proto->simulate_link_failure(link));
        down_links.push_back(link);
        ++outcome.link_failures;
      }
    }

    prune_degraded();
    if (options.check_every > 0 && (action + 1) % options.check_every == 0) {
      check_consistency(topo, *proto, options, flow_rng, truth_cache, outcome);
      run_audits(/*unwound=*/false);
    }
  }

  void finish_impl() {
    if (done) return;
    done = true;
    const Topology& topo = *topo_;

    // One last degraded-state check before unwinding.
    check_consistency(topo, *proto, options, flow_rng, truth_cache, outcome);
    run_audits(/*unwound=*/false);

    // ---- Unwind: clear degradations, revive every switch, then raise every
    // campaign link.  Degradations go first so the restoration check runs on
    // clean physics.  Order is otherwise deliberately arbitrary relative to
    // the failure order — restoration must not depend on LIFO unwinding.
    obs::trace_event(0.0, obs::TraceKind::kChaosPhase, 0, 0,
                     down_links.size() + crashed.size() + degraded.size(),
                     "unwind");
    for (const LinkId link : degraded) {
      if (proto->overlay_mut().clear_degradation(link)) {
        ++outcome.degradations_cleared;
        obs::count("chaos.degradations_cleared");
        obs::trace_event(0.0, obs::TraceKind::kLinkRestore, link.value(), 0, 0,
                         "unwind");
      }
    }
    degraded.clear();
    for (const SwitchId victim : crashed) {
      absorb(outcome, proto->simulate_switch_recovery(victim));
      ++outcome.switch_recoveries;
    }
    crashed.clear();
    for (const LinkId link : down_links) {
      if (proto->overlay().is_up(link)) continue;  // came back with a crash
      absorb(outcome, proto->simulate_link_recovery(link));
      ++outcome.link_recoveries;
    }
    down_links.clear();

    // Invariant (b) via digests: O(switches) word compares instead of deep
    // table comparison.  A digest mismatch proves the tables differ;
    // equality is probabilistic (2^-64 per table), so paranoid mode cross-
    // checks the verdict byte-for-byte and flags any disagreement as drift —
    // that would mean some mutation bypassed digest maintenance.
    const RoutingState& final_tables = proto->tables();
    if (initial.has_digests() && final_tables.has_digests()) {
      outcome.tables_restored = tables_match_by_digest(initial, final_tables);
      if (paranoid) {
        const bool deep_match = initial.tables == final_tables.tables;
        if (deep_match != outcome.tables_restored) {
          AuditReport drift;
          drift.add(AuditCode::kIncrementalDrift,
                    "restoration digest verdict disagrees with byte-for-byte "
                    "table comparison");
          record_audit(outcome, drift);
          outcome.tables_restored = deep_match;
        }
      }
    } else {
      outcome.tables_restored =
          switches_with_changed_tables(initial, final_tables) == 0;
    }
    run_audits(/*unwound=*/true);
    obs::trace_event(0.0, obs::TraceKind::kChaosPhase, 0, 0,
                     outcome.tables_restored ? 1u : 0u, "campaign_end");
  }
};

ChaosCampaign::ChaosCampaign(ProtocolKind kind, const Topology& topo,
                             const ChaosOptions& options) {
  ASPEN_REQUIRE(options.num_events >= 0, "negative event count");
  impl_ = std::make_unique<Impl>(kind, topo, options);
}

ChaosCampaign::~ChaosCampaign() = default;
ChaosCampaign::ChaosCampaign(ChaosCampaign&&) noexcept = default;
ChaosCampaign& ChaosCampaign::operator=(ChaosCampaign&&) noexcept = default;

bool ChaosCampaign::advance() {
  if (impl_->done || impl_->action >= impl_->options.num_events) return false;
  impl_->step();
  ++impl_->action;
  return true;
}

void ChaosCampaign::finish() { impl_->finish_impl(); }

const ChaosOutcome& ChaosCampaign::outcome() const { return impl_->outcome; }

const ProtocolSimulation& ChaosCampaign::protocol() const {
  return *impl_->proto;
}

const LinkStateOverlay& ChaosCampaign::overlay() const {
  return impl_->proto->overlay();
}

int ChaosCampaign::actions_taken() const { return impl_->action; }

bool ChaosCampaign::finished() const { return impl_->done; }

}  // namespace fault

ChaosOutcome run_chaos_campaign(ProtocolKind kind, const Topology& topo,
                                const ChaosOptions& options) {
  fault::ChaosCampaign campaign(kind, topo, options);
  while (campaign.advance()) {
  }
  campaign.finish();
  return campaign.outcome();
}

}  // namespace aspen
