// Failure scenarios, including the §8.3 compound-failure cases.
//
// "In most cases, our techniques apply seamlessly to multiple simultaneous
//  link failures.  In fact, failures far enough apart in a tree have no
//  effect on one another … It is possible that in some pathological cases,
//  compound failures can lead to violations of the striping policy of §7,
//  ultimately causing packet loss."
//
// Scenario generators produce interesting link sets; the driver applies
// them to a protocol simulation, measures delivery over the degraded
// network, then rolls everything back and verifies restoration.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "src/proto/experiment.h"
#include "src/proto/protocol.h"
#include "src/routing/reachability.h"
#include "src/topo/topology.h"
#include "src/util/rng.h"

namespace aspen {

struct MultiFailureOutcome {
  std::vector<FailureReport> failure_reports;   ///< one per failed link
  std::vector<FailureReport> recovery_reports;  ///< reverse order
  /// Delivery measured with the protocol's patched tables while all links
  /// in the scenario were down.
  ReachabilityStats degraded_delivery;
  /// True when fail-all-then-recover-all restored the initial tables.
  bool tables_restored = false;
};

struct MultiFailureOptions {
  DelayModel delays;
  AnpOptions anp;  ///< used only for ANP runs
  /// Table keying: kHost makes host-link failures visible to the tables.
  DestGranularity granularity = DestGranularity::kEdge;
  /// 0 = all ordered host pairs; otherwise sample this many flows.
  std::uint64_t sample_flows = 0;
  std::uint64_t seed = 7;
};

/// Fails every link in `links` (in order), measures delivery, recovers in
/// reverse order, and checks table restoration.
[[nodiscard]] MultiFailureOutcome run_multi_failure(
    ProtocolKind kind, const Topology& topo, std::span<const LinkId> links,
    const MultiFailureOptions& options = {});

// ---- Scenario generators ------------------------------------------------

/// `count` distinct random inter-switch links (levels >= 2).
[[nodiscard]] std::vector<LinkId> random_inter_switch_links(
    const Topology& topo, std::size_t count, Rng& rng);

/// Two failures "far apart": links at the same level whose upper endpoints
/// sit in different top-level subtrees wherever possible.
[[nodiscard]] std::vector<LinkId> far_apart_pair(const Topology& topo,
                                                 Level level, Rng& rng);

/// Two failures close together: distinct downlinks of the same switch.
[[nodiscard]] std::vector<LinkId> same_switch_pair(const Topology& topo,
                                                   SwitchId upper);

/// The §8.3 pathological pattern for a fault-tolerant level: *all* of a
/// switch's links into one child pod, defeating that level's redundancy.
[[nodiscard]] std::vector<LinkId> kill_pod_connectivity(const Topology& topo,
                                                        SwitchId upper,
                                                        PodId child_pod);

}  // namespace aspen
