#include "src/fault/scenarios.h"

#include <algorithm>

#include "src/routing/packet_walk.h"
#include "src/routing/updown.h"
#include "src/util/contracts.h"
#include "src/util/status.h"

namespace aspen {

MultiFailureOutcome run_multi_failure(ProtocolKind kind, const Topology& topo,
                                      std::span<const LinkId> links,
                                      const MultiFailureOptions& options) {
  ASPEN_REQUIRE(!links.empty(), "scenario needs at least one link");

  auto proto = make_protocol(kind, topo, options.delays, options.anp,
                             options.granularity);
  const RoutingState initial = proto->tables();

  MultiFailureOutcome outcome;
  for (const LinkId link : links) {
    outcome.failure_reports.push_back(proto->simulate_link_failure(link));
  }

  const TableRouter router(proto->tables());
  if (options.sample_flows == 0) {
    outcome.degraded_delivery =
        measure_all_pairs(topo, router, proto->overlay());
  } else {
    Rng rng(options.seed);
    outcome.degraded_delivery = measure_sampled(
        topo, router, proto->overlay(), options.sample_flows, rng);
  }

  for (auto it = links.rbegin(); it != links.rend(); ++it) {
    outcome.recovery_reports.push_back(proto->simulate_link_recovery(*it));
  }
  outcome.tables_restored =
      switches_with_changed_tables(initial, proto->tables()) == 0;
  return outcome;
}

std::vector<LinkId> random_inter_switch_links(const Topology& topo,
                                              std::size_t count, Rng& rng) {
  std::vector<LinkId> pool;
  for (Level i = 2; i <= topo.levels(); ++i) {
    const std::span<const LinkId> at_level = topo.links_at_level(i);
    pool.insert(pool.end(), at_level.begin(), at_level.end());
  }
  ASPEN_REQUIRE(count <= pool.size(), "asked for ", count, " links, only ",
                pool.size(), " inter-switch links exist");
  ASPEN_ASSERT(pool.size() == topo.params().inter_switch_links(),
               "link pool misses inter-switch links");
  rng.shuffle(pool);
  pool.resize(count);
  std::ranges::sort(pool);
  return pool;
}

std::vector<LinkId> far_apart_pair(const Topology& topo, Level level,
                                   Rng& rng) {
  ASPEN_REQUIRE(level >= 2 && level <= topo.levels(), "level out of range");
  const std::span<const LinkId> at_level = topo.links_at_level(level);
  ASPEN_REQUIRE(at_level.size() >= 2, "level has fewer than two links");

  const LinkId first = at_level[rng.index(at_level.size())];
  const SwitchId first_upper = topo.switch_of(topo.link(first).upper);

  // Prefer a second link whose upper endpoint lies in a different pod (and
  // is a different switch); fall back to any other link.
  std::vector<LinkId> preferred;
  for (const LinkId cand : at_level) {
    if (cand == first) continue;
    const SwitchId upper = topo.switch_of(topo.link(cand).upper);
    if (upper == first_upper) continue;
    if (topo.pod_of(upper) != topo.pod_of(first_upper)) {
      preferred.push_back(cand);
    }
  }
  if (preferred.empty()) {
    for (const LinkId cand : at_level) {
      if (cand != first) preferred.push_back(cand);
    }
  }
  ASPEN_ASSERT(!preferred.empty(),
               "a level with two links always yields a candidate pair");
  const LinkId second = preferred[rng.index(preferred.size())];
  std::vector<LinkId> pair{first, second};
  std::ranges::sort(pair);
  return pair;
}

std::vector<LinkId> same_switch_pair(const Topology& topo, SwitchId upper) {
  const auto downs = topo.down_neighbors(upper);
  ASPEN_REQUIRE(downs.size() >= 2, "switch has fewer than two downlinks");
  return {downs[0].link, downs[1].link};
}

std::vector<LinkId> kill_pod_connectivity(const Topology& topo,
                                          SwitchId upper, PodId child_pod) {
  const Level level = topo.level_of(upper);
  ASPEN_REQUIRE(level >= 2, "upper must be above L1");
  std::vector<LinkId> links;
  for (const Topology::Neighbor& nb : topo.down_neighbors(upper)) {
    if (!topo.is_switch_node(nb.node)) continue;
    if (topo.pod_of(topo.switch_of(nb.node)) == child_pod) {
      links.push_back(nb.link);
    }
  }
  ASPEN_REQUIRE(!links.empty(), "switch has no links into that child pod");
  return links;
}

}  // namespace aspen
