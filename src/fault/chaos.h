// Chaos campaigns: long, randomized fault schedules against one protocol.
//
// A campaign composes the fault-plane primitives — link failures, switch
// crashes (possibly mid-reaction, discarding the victim's queued work),
// recoveries — over a seeded schedule, with the control plane optionally
// riding a lossy channel (DelayModel::channel) and the protocols' own
// ack/retransmit machinery (channel.reliable).  Two invariants are checked:
//
//   (a) *Physics consistency* while degraded: any flow the protocol's
//       patched tables deliver over the actual (faulted) network must also
//       be deliverable by ground-truth routes computed from that network.
//       The protocol may do worse than physics (stale tables black-hole —
//       counted as `protocol_shortfall`) but never better; a violation
//       means the simulation delivered a packet across a dead region.
//   (b) *Restoration*: after every outstanding fault is recovered, each
//       switch's forwarding table is byte-identical to its pre-campaign
//       table.
//
// Campaigns drive both protocols through the common ProtocolSimulation
// interface; for ANP they enable adjacency_resync by default, because
// faults recover in arbitrary (non-LIFO) order — see docs/CHAOS.md.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/fault/detector.h"
#include "src/fault/failure_domains.h"
#include "src/proto/experiment.h"
#include "src/proto/protocol.h"
#include "src/routing/updown.h"
#include "src/sim/simulator.h"
#include "src/sim/stats.h"
#include "src/topo/topology.h"

namespace aspen {

struct ChaosOptions {
  /// Timing plus the channel/retransmit knobs for the whole campaign.
  DelayModel delays;
  /// ANP-only options.  Resync is on: chaos recoveries are not LIFO.
  AnpOptions anp{.notify_children = false, .adjacency_resync = true};
  DestGranularity granularity = DestGranularity::kEdge;
  std::uint64_t seed = 1;
  /// Fault-plane actions before the final unwind.
  int num_events = 50;
  /// P(next action recovers an outstanding fault), given one exists.
  double p_recover = 0.45;
  /// P(next non-recovery action is a switch crash rather than a link cut).
  double p_switch_crash = 0.25;
  /// P(a switch crash is compounded: it lands a few ms into the reaction
  /// to a simultaneous link failure, discarding the victim's queued work).
  double p_crash_mid_reaction = 0.4;
  /// Random (src, dst) flows walked per consistency check.
  std::uint64_t check_flows = 256;
  /// Run invariant (a) after every this-many actions (0 = only at the end
  /// of the faulted phase).
  int check_every = 5;
  std::size_t max_concurrent_switch_crashes = 2;
  std::size_t max_concurrent_link_faults = 6;

  // ---- Gray / flapping degradations -----------------------------------
  /// P(next non-recovery action degrades a healthy link instead of cutting
  /// it).  0 (the default) keeps the action schedule byte-identical to
  /// campaigns that predate link health: the degrade branch then consumes
  /// no RNG draws at all.
  double p_degrade = 0.0;
  /// P(a degradation flaps rather than going gray).
  double p_degrade_flap = 0.35;
  /// Gray loss rate is drawn uniformly from [min, max].
  double gray_loss_min = 0.1;
  double gray_loss_max = 0.5;
  /// Flapping-link waveform.
  SimTime flap_period_ms = 400.0;
  double flap_duty = 0.5;
  std::size_t max_concurrent_degraded = 4;
  /// For each injected gray link, run a side-channel FailureDetector watch
  /// (private overlay, same loss rate) and fold the confirm latency into
  /// ChaosOutcome::detection_ms.
  bool measure_detection_latency = true;
  fault::DetectorOptions detector;

  // ---- Correlated-failure domains --------------------------------------
  /// Optional shared-risk model (not owned; must outlive the campaign).
  /// When set, each link-cut action may instead cut a whole blast radius:
  /// one domain drawn uniformly, every still-up link in it failed in a
  /// single timed schedule (the protocol reacts to the links as one
  /// correlated event).  Recovery stays per-link — repairs are not
  /// correlated.  nullptr (the default) adds no RNG draws, keeping legacy
  /// campaign schedules byte-identical.
  const fault::FailureDomainModel* domains = nullptr;
  /// P(a link-cut action becomes a domain cut), given `domains` is set.
  double p_domain_cut = 0.5;
};

struct ChaosOutcome {
  /// Echo of ChaosOptions::seed, so every report names its schedule.
  std::uint64_t seed = 0;

  // ---- What the schedule did ------------------------------------------
  std::uint64_t link_failures = 0;
  std::uint64_t link_recoveries = 0;
  std::uint64_t switch_crashes = 0;
  std::uint64_t switch_recoveries = 0;
  std::uint64_t compound_runs = 0;   ///< crash-mid-reaction composites
  std::uint64_t gray_injected = 0;   ///< links degraded to Gray{loss}
  std::uint64_t flaps_injected = 0;  ///< links degraded to Flapping
  std::uint64_t degradations_cleared = 0;
  std::uint64_t domain_cuts = 0;        ///< correlated blast-radius cuts
  std::uint64_t domain_links_cut = 0;   ///< links those cuts took down
                                        ///< (also counted in link_failures)

  // ---- Aggregated protocol accounting ---------------------------------
  std::uint64_t messages = 0;
  std::uint64_t retransmits = 0;
  std::uint64_t acks = 0;
  std::uint64_t duplicates_dropped = 0;
  std::uint64_t channel_dropped = 0;
  /// Of channel_dropped, copies eaten by degraded link health.
  std::uint64_t health_dropped = 0;
  std::uint64_t channel_duplicated = 0;
  std::uint64_t gave_up = 0;
  std::uint64_t stale_switches = 0;  ///< summed over runs (LSP only)
  Summary convergence_ms;            ///< per-run convergence times
  bool all_quiesced = true;          ///< no run hit the event budget

  // ---- Invariant results ----------------------------------------------
  std::uint64_t checks = 0;
  std::uint64_t checked_flows = 0;
  /// Invariant (a) breaches: protocol delivered where ground truth cannot.
  std::uint64_t ground_truth_violations = 0;
  /// Flows physics could deliver but the protocol's tables did not.
  std::uint64_t protocol_shortfall = 0;
  /// Flows both table sets deliver topologically but a gray/flapping link
  /// eats in flight — degradation pain, not an invariant breach (invariant
  /// (a) walks ignore health so gray noise cannot fake a violation).
  std::uint64_t degraded_drops = 0;
  /// Detector confirm latencies for injected gray links (side-channel
  /// watches; see ChaosOptions::measure_detection_latency).
  Summary detection_ms;
  /// Gray injections the side-channel detector failed to confirm.
  std::uint64_t undetected_grays = 0;
  /// Invariant (b): tables byte-identical to pre-campaign after unwind.
  bool tables_restored = false;

  // ---- Invariant audits (paranoid mode only) --------------------------
  // Run when contracts::effective_audit_level(delays.audit_level) reaches
  // kParanoid: the topology is audited once up front, forwarding state and
  // protocol bookkeeping at every consistency-check cadence, and the whole
  // stack again after the unwind.  Expensive checks that only hold in
  // settled states (table walks, dead-next-hop scans) are gated on the
  // campaign being crash-free, fully quiesced, and loss-clean so far.
  std::uint64_t audit_checks = 0;      ///< auditor passes executed
  std::uint64_t audit_violations = 0;  ///< findings across every pass
  /// First few violations, as "<code>: <message>" lines.
  std::vector<std::string> audit_messages;
};

namespace fault {

/// A chaos campaign exposed one action at a time, so an external driver
/// (the serve loop, a debugger, a replay harness) can interleave its own
/// events between fault-plane actions without forking the campaign logic.
///
/// Construction performs everything run_chaos_campaign did before its
/// action loop (fresh converged protocol, RNG streams, campaign_start
/// trace, the paranoid up-front topology audit); each advance() performs
/// exactly one loop iteration (one action plus the periodic consistency
/// check); finish() performs the final check, the unwind, and the
/// restoration verdict.  The RNG draw sequence, trace records, and outcome
/// are byte-identical to the legacy single-call loop — run_chaos_campaign
/// is now construct + drain + finish.
class ChaosCampaign {
 public:
  ChaosCampaign(ProtocolKind kind, const Topology& topo,
                const ChaosOptions& options = {});
  ~ChaosCampaign();
  ChaosCampaign(ChaosCampaign&&) noexcept;
  ChaosCampaign& operator=(ChaosCampaign&&) noexcept;

  /// Executes the next fault-plane action (and, on the configured cadence,
  /// the consistency check + audits that follow it).  Returns false — doing
  /// nothing — once every scheduled action has run or finish() was called.
  bool advance();

  /// Final degraded-state check, unwind of every outstanding fault, and
  /// the restoration verdict.  Idempotent; outcome() is final after this.
  void finish();

  /// Campaign accounting so far; final once finish() has run.
  [[nodiscard]] const ChaosOutcome& outcome() const;

  /// The live protocol under test — external drivers read its overlay and
  /// tables to track what the campaign has done to the fabric.
  [[nodiscard]] const ProtocolSimulation& protocol() const;
  [[nodiscard]] const LinkStateOverlay& overlay() const;

  /// Actions executed so far (0 ≤ n ≤ options.num_events).
  [[nodiscard]] int actions_taken() const;
  [[nodiscard]] bool finished() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace fault

/// Runs one seeded campaign of `options.num_events` actions plus a full
/// unwind against a fresh protocol instance on `topo`.
[[nodiscard]] ChaosOutcome run_chaos_campaign(ProtocolKind kind,
                                              const Topology& topo,
                                              const ChaosOptions& options = {});

}  // namespace aspen
