// Chaos campaigns: long, randomized fault schedules against one protocol.
//
// A campaign composes the fault-plane primitives — link failures, switch
// crashes (possibly mid-reaction, discarding the victim's queued work),
// recoveries — over a seeded schedule, with the control plane optionally
// riding a lossy channel (DelayModel::channel) and the protocols' own
// ack/retransmit machinery (channel.reliable).  Two invariants are checked:
//
//   (a) *Physics consistency* while degraded: any flow the protocol's
//       patched tables deliver over the actual (faulted) network must also
//       be deliverable by ground-truth routes computed from that network.
//       The protocol may do worse than physics (stale tables black-hole —
//       counted as `protocol_shortfall`) but never better; a violation
//       means the simulation delivered a packet across a dead region.
//   (b) *Restoration*: after every outstanding fault is recovered, each
//       switch's forwarding table is byte-identical to its pre-campaign
//       table.
//
// Campaigns drive both protocols through the common ProtocolSimulation
// interface; for ANP they enable adjacency_resync by default, because
// faults recover in arbitrary (non-LIFO) order — see docs/CHAOS.md.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/proto/experiment.h"
#include "src/proto/protocol.h"
#include "src/routing/updown.h"
#include "src/sim/simulator.h"
#include "src/sim/stats.h"
#include "src/topo/topology.h"

namespace aspen {

struct ChaosOptions {
  /// Timing plus the channel/retransmit knobs for the whole campaign.
  DelayModel delays;
  /// ANP-only options.  Resync is on: chaos recoveries are not LIFO.
  AnpOptions anp{.notify_children = false, .adjacency_resync = true};
  DestGranularity granularity = DestGranularity::kEdge;
  std::uint64_t seed = 1;
  /// Fault-plane actions before the final unwind.
  int num_events = 50;
  /// P(next action recovers an outstanding fault), given one exists.
  double p_recover = 0.45;
  /// P(next non-recovery action is a switch crash rather than a link cut).
  double p_switch_crash = 0.25;
  /// P(a switch crash is compounded: it lands a few ms into the reaction
  /// to a simultaneous link failure, discarding the victim's queued work).
  double p_crash_mid_reaction = 0.4;
  /// Random (src, dst) flows walked per consistency check.
  std::uint64_t check_flows = 256;
  /// Run invariant (a) after every this-many actions (0 = only at the end
  /// of the faulted phase).
  int check_every = 5;
  std::size_t max_concurrent_switch_crashes = 2;
  std::size_t max_concurrent_link_faults = 6;
};

struct ChaosOutcome {
  // ---- What the schedule did ------------------------------------------
  std::uint64_t link_failures = 0;
  std::uint64_t link_recoveries = 0;
  std::uint64_t switch_crashes = 0;
  std::uint64_t switch_recoveries = 0;
  std::uint64_t compound_runs = 0;  ///< crash-mid-reaction composites

  // ---- Aggregated protocol accounting ---------------------------------
  std::uint64_t messages = 0;
  std::uint64_t retransmits = 0;
  std::uint64_t acks = 0;
  std::uint64_t duplicates_dropped = 0;
  std::uint64_t channel_dropped = 0;
  std::uint64_t channel_duplicated = 0;
  std::uint64_t gave_up = 0;
  std::uint64_t stale_switches = 0;  ///< summed over runs (LSP only)
  Summary convergence_ms;            ///< per-run convergence times
  bool all_quiesced = true;          ///< no run hit the event budget

  // ---- Invariant results ----------------------------------------------
  std::uint64_t checks = 0;
  std::uint64_t checked_flows = 0;
  /// Invariant (a) breaches: protocol delivered where ground truth cannot.
  std::uint64_t ground_truth_violations = 0;
  /// Flows physics could deliver but the protocol's tables did not.
  std::uint64_t protocol_shortfall = 0;
  /// Invariant (b): tables byte-identical to pre-campaign after unwind.
  bool tables_restored = false;

  // ---- Invariant audits (paranoid mode only) --------------------------
  // Run when contracts::effective_audit_level(delays.audit_level) reaches
  // kParanoid: the topology is audited once up front, forwarding state and
  // protocol bookkeeping at every consistency-check cadence, and the whole
  // stack again after the unwind.  Expensive checks that only hold in
  // settled states (table walks, dead-next-hop scans) are gated on the
  // campaign being crash-free, fully quiesced, and loss-clean so far.
  std::uint64_t audit_checks = 0;      ///< auditor passes executed
  std::uint64_t audit_violations = 0;  ///< findings across every pass
  /// First few violations, as "<code>: <message>" lines.
  std::vector<std::string> audit_messages;
};

/// Runs one seeded campaign of `options.num_events` actions plus a full
/// unwind against a fresh protocol instance on `topo`.
[[nodiscard]] ChaosOutcome run_chaos_campaign(ProtocolKind kind,
                                              const Topology& topo,
                                              const ChaosOptions& options = {});

}  // namespace aspen
