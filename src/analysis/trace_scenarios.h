// Canonical traced scenarios: the fixed (protocol × scenario) runs that the
// CLI's `aspen trace` subcommand replays and tests/golden/ snapshots.
//
// Both consumers must produce byte-identical traces for the same
// (topology, protocol, scenario, seed), so the scenario definitions live
// here, once, instead of being duplicated between tools/ and tests/.
#pragma once

#include <cstdint>
#include <string>

#include "src/proto/protocol.h"
#include "src/topo/topology.h"

namespace aspen {

enum class TraceScenario {
  kSingleFault,     ///< fail the first L2 link, react, recover it
  kChaosCampaign,   ///< short seeded chaos campaign over a lossy channel
};

[[nodiscard]] constexpr const char* to_cstring(TraceScenario scenario) {
  switch (scenario) {
    case TraceScenario::kSingleFault:
      return "single_fault";
    case TraceScenario::kChaosCampaign:
      return "chaos_campaign";
  }
  return "unknown";
}

/// Parses "single" / "single_fault" / "chaos" / "chaos_campaign"; throws
/// PreconditionError otherwise.
[[nodiscard]] TraceScenario parse_trace_scenario(const std::string& name);

struct TraceScenarioOptions {
  TraceScenario scenario = TraceScenario::kSingleFault;
  std::uint64_t seed = 1;
  std::size_t trace_capacity = 1u << 16;
  /// Campaign length before the unwind (chaos scenario only).  Small by
  /// default so golden files stay reviewable.
  int chaos_events = 12;
};

struct TraceScenarioResult {
  std::string jsonl;         ///< the full trace as JSON Lines
  std::string binary;        ///< the same trace, compact-binary encoded
  std::string metrics_json;  ///< metrics registry snapshot (2-space indent)
  std::uint64_t records = 0;  ///< records retained in the ring
  std::uint64_t dropped = 0;  ///< records evicted (0 unless capacity is tiny)
};

/// Runs the scenario with observability scoped on (previous ObsConfig is
/// restored on return) and snapshots the trace in both export formats plus
/// the metrics registry.  Deterministic per (topo, kind, options) at every
/// thread count.
[[nodiscard]] TraceScenarioResult run_traced_scenario(
    ProtocolKind kind, const Topology& topo,
    const TraceScenarioOptions& options = {});

}  // namespace aspen
