#include "src/analysis/react.h"

#include <algorithm>

#include "src/util/status.h"

namespace aspen {

namespace {

// Σ_{j=start..stop} min((k/2)^{j-origin}, m_j): the notified-ancestor count
// of a wave that starts at `origin` and is absorbed at `stop`.
std::uint64_t ancestor_wave(const TreeParams& tree, Level origin, Level stop) {
  const auto half_k = static_cast<std::uint64_t>(tree.k) / 2;
  std::uint64_t total = 0;
  std::uint64_t spread = 1;
  for (Level j = origin + 1; j <= stop; ++j) {
    // Saturate instead of overflowing: spread is only compared to m_j.
    const std::uint64_t mj = tree.m[static_cast<std::size_t>(j)];
    spread = spread > mj ? mj : spread * half_k;
    total += std::min(spread, mj);
  }
  return total;
}

}  // namespace

std::uint64_t anp_reacting_switches(const TreeParams& tree,
                                    Level failure_level) {
  const int n = tree.n;
  ASPEN_REQUIRE(failure_level >= 1 && failure_level <= n,
                "failure level ", failure_level, " out of range [1,", n, "]");

  if (failure_level == 1) {
    // Host link: the edge switch reacts and — having no alternate path to a
    // single-homed host — notifies all the way to the roots.
    return 1 + ancestor_wave(tree, 1, n);
  }

  const FaultToleranceVector ftv = tree.ftv();
  const Level f = ftv.nearest_fault_tolerant_level_at_or_above(failure_level);
  const Level stop = (f != 0) ? f : n;
  // Both endpoints react locally; the wave is empty when c_i > 1
  // (stop == failure_level).
  return 2 + ancestor_wave(tree, failure_level, stop);
}

double anp_average_reacting_switches(const TreeParams& tree,
                                     bool include_host_links) {
  const Level first = include_host_links ? 1 : 2;
  double total = 0.0;
  for (Level i = first; i <= tree.n; ++i) {
    total += static_cast<double>(anp_reacting_switches(tree, i));
  }
  return total / static_cast<double>(tree.n - first + 1);
}

std::uint64_t lsp_reacting_switches(const TreeParams& tree) {
  return tree.total_switches();
}

}  // namespace aspen
