#include "src/analysis/trace_scenarios.h"

#include "src/fault/chaos.h"
#include "src/fault/seed.h"
#include "src/obs/obs.h"
#include "src/proto/experiment.h"
#include "src/util/contracts.h"
#include "src/util/status.h"

namespace aspen {

TraceScenario parse_trace_scenario(const std::string& name) {
  if (name == "single" || name == "single_fault") {
    return TraceScenario::kSingleFault;
  }
  if (name == "chaos" || name == "chaos_campaign") {
    return TraceScenario::kChaosCampaign;
  }
  throw PreconditionError("unknown trace scenario: " + name);
}

TraceScenarioResult run_traced_scenario(ProtocolKind kind,
                                        const Topology& topo,
                                        const TraceScenarioOptions& options) {
  obs::ObsConfig config;
  config.metrics = true;
  config.trace = true;
  config.trace_capacity = options.trace_capacity;
  const obs::ScopedObs scoped(config);

  obs::trace_event(0.0, obs::TraceKind::kRun,
                   static_cast<std::uint32_t>(kind), 0, options.seed,
                   to_cstring(options.scenario));

  switch (options.scenario) {
    case TraceScenario::kSingleFault: {
      const auto proto = make_protocol(kind, topo);
      ExperimentOptions experiment;
      experiment.seed = options.seed;
      experiment.connectivity_flows = 64;
      const LinkId link = topo.links_at_level(2)[0];
      (void)run_single_failure(*proto, link, experiment);
      break;
    }
    case TraceScenario::kChaosCampaign: {
      ChaosOptions chaos;
      chaos.seed = options.seed;
      chaos.num_events = options.chaos_events;
      chaos.check_flows = 64;
      // A mildly lossy, reliable channel so the drop / duplicate /
      // retransmit / ack record kinds all appear in the golden stream.
      chaos.delays.channel.drop_rate = 0.05;
      chaos.delays.channel.duplicate_rate = 0.0125;
      chaos.delays.channel.reliable = true;
      chaos.delays.channel.seed =
          fault::derive_stream_seed(options.seed, fault::kStreamChannel);
      (void)run_chaos_campaign(kind, topo, chaos);
      break;
    }
  }

  obs::trace_event(0.0, obs::TraceKind::kRun,
                   static_cast<std::uint32_t>(kind), 0, options.seed,
                   "finish");

  TraceScenarioResult result;
  const obs::Tracer& tracer = obs::tracer();
  result.jsonl = tracer.to_jsonl();
  result.binary = tracer.to_binary();
  result.metrics_json = obs::metrics().to_json(2);
  result.records = tracer.size();
  result.dropped = tracer.dropped();
  return result;
}

}  // namespace aspen
