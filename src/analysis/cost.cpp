#include "src/analysis/cost.h"

#include "src/analysis/convergence.h"
#include "src/aspen/generator.h"
#include "src/util/status.h"

namespace aspen {

ConvergenceCost convergence_cost(const TreeParams& tree) {
  ConvergenceCost result;
  result.average_hops = average_update_propagation(tree.ftv());
  result.links = tree.total_links();
  result.cost = result.average_hops * static_cast<double>(result.links);
  return result;
}

ConvergenceCost fat_tree_cost(int n, int k) {
  return convergence_cost(fat_tree(n, k));
}

ConvergenceCost aspen_fixed_host_cost(int n_fat, int k, int extra_levels,
                                      RedundancyPlacement placement) {
  return convergence_cost(
      design_fixed_host_tree(n_fat, k, extra_levels, placement));
}

double fat_vs_aspen_cost_ratio(int n_fat, int extra_levels,
                               RedundancyPlacement placement) {
  ASPEN_REQUIRE(n_fat >= 2 && extra_levels >= 1,
                "need n_fat >= 2 and extra_levels >= 1");
  // The ratio is k-independent: with hosts fixed, S cancels from the link
  // counts and the propagation model only reads zero/non-zero FTV entries.
  // k = 4 is the smallest switch size for which fixed-host designs exist.
  const int k = 4;
  const double fat_avg =
      average_update_propagation(FaultToleranceVector::fat_tree(n_fat));
  const double aspen_avg = average_update_propagation(
      fixed_host_ftv(n_fat, k, extra_levels, placement));
  const double fat_cost = fat_avg * static_cast<double>(n_fat);
  const double aspen_cost =
      aspen_avg * static_cast<double>(n_fat + extra_levels);
  ASPEN_CHECK(aspen_cost > 0.0, "aspen tree with zero convergence cost");
  return fat_cost / aspen_cost;
}

}  // namespace aspen
