// Analytical convergence-distance models (§9.1, §9.2).
//
// Two distance models appear in the paper's evaluation:
//
// 1. The §9.1 *update propagation distance* behind Figures 8 and 9: a
//    failure between L_i and L_{i-1} is absorbed by the nearest level
//    f >= i with non-zero fault tolerance after f − i hops; if no such
//    level exists the tree falls back to global re-convergence and updates
//    must reach the farthest switches, (n − i) + (n − 1) hops.  First-hop
//    (host-link) failures are excluded (footnote 10).
//
// 2. The Figure 10(b)/(d) *message travel* models: LSP floods to the whole
//    tree on any failure including host links (avg 1.5·(n−1) hops over
//    levels 1..n), while ANP notifications climb to the absorbing level —
//    or to the roots when nothing can absorb (host links, fat trees).
//
// Both are validated against the paper's published values in
// tests/test_analysis_convergence.cpp.
#pragma once

#include "src/aspen/ftv.h"
#include "src/proto/protocol.h"
#include "src/sim/simulator.h"

namespace aspen {

// ---- Model 1: §9.1 update propagation distance (Figs. 8, 9) ------------

/// Hops updates travel for a failure at L_i (2 <= i <= n).
[[nodiscard]] int update_propagation_distance(const FaultToleranceVector& ftv,
                                              Level failure_level);

/// Mean over failure levels 2..n ("we express the average convergence time
/// for a tree as the average of this propagation distance across failures
/// at all levels", host links excluded).
[[nodiscard]] double average_update_propagation(
    const FaultToleranceVector& ftv);

/// Global re-convergence distance for a failure at L_i in an n-level tree:
/// up to the roots, then down to the farthest L_1 switches.
[[nodiscard]] int global_update_distance(int n, Level failure_level);

/// The worst case: a failure at L_2 of a tree with no fault tolerance —
/// (n−2) + (n−1).  This is the "Max Hops" normalizer of Figs. 8/9.
[[nodiscard]] int max_update_distance(int n);

// ---- Model 2: Fig. 10 message-travel distances --------------------------

/// Hops an ANP notification chain travels for a failure at L_i (1 <= i <=
/// n).  Host links (i = 1) have no alternate path anywhere, so notices
/// climb to the roots (n − 1 hops); otherwise they stop at the nearest
/// fault-tolerant level, or at the roots when none exists.
[[nodiscard]] int anp_notification_distance(const FaultToleranceVector& ftv,
                                            Level failure_level);

/// Mean over failure levels 1..n; for the paper's <x,0,…,0> trees this is
/// (n−1)/2 — the 1.5/2/2.5-hop labels of Fig. 10(b)/(d).
[[nodiscard]] double anp_average_notification_distance(
    const FaultToleranceVector& ftv);

/// LSP floods globally on any failure: (n − i) + (n − 1) hops.
[[nodiscard]] int lsp_flood_distance(int n, Level failure_level);

/// Mean over failure levels 1..n = 1.5·(n−1) — the 3/4.5/6-hop labels of
/// Fig. 10(d).
[[nodiscard]] double lsp_average_flood_distance(int n);

// ---- Hop-to-time conversion (§9.2 constants) ----------------------------

/// convergence time ≈ hops × (per-update processing + propagation).
[[nodiscard]] SimTime estimate_convergence_ms(double hops, ProtocolKind kind,
                                              const DelayModel& delays = {});

}  // namespace aspen
