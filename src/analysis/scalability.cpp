#include "src/analysis/scalability.h"

#include <algorithm>

#include "src/analysis/convergence.h"
#include "src/aspen/enumerate.h"
#include "src/aspen/generator.h"

namespace aspen {

std::vector<TradeoffPoint> scalability_tradeoff(int n, int k) {
  const std::uint64_t max_hosts = fat_tree(n, k).num_hosts();
  std::vector<TradeoffPoint> points;
  for (const TreeParams& tree : enumerate_trees(n, k)) {
    TradeoffPoint point;
    point.ftv = tree.ftv();
    point.hosts = tree.num_hosts();
    point.hosts_removed = max_hosts - point.hosts;
    point.average_convergence_hops = average_update_propagation(point.ftv);
    point.total_switches = tree.total_switches();
    point.overall_aggregation = tree.overall_aggregation();
    points.push_back(std::move(point));
  }
  return points;
}

std::vector<TradeoffPoint> collapse_duplicates(
    std::vector<TradeoffPoint> points) {
  sort_for_display(points);
  std::vector<TradeoffPoint> unique;
  for (auto& point : points) {
    if (!unique.empty() && unique.back().hosts == point.hosts &&
        unique.back().average_convergence_hops ==
            point.average_convergence_hops) {
      continue;
    }
    unique.push_back(std::move(point));
  }
  return unique;
}

void sort_for_display(std::vector<TradeoffPoint>& points) {
  std::ranges::stable_sort(points, [](const TradeoffPoint& a,
                                      const TradeoffPoint& b) {
    if (a.hosts_removed != b.hosts_removed) {
      return a.hosts_removed < b.hosts_removed;
    }
    return a.average_convergence_hops > b.average_convergence_hops;
  });
}

}  // namespace aspen
