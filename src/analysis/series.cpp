#include "src/analysis/series.h"

#include <sstream>

#include "src/analysis/convergence.h"
#include "src/analysis/react.h"
#include "src/aspen/fixed_hosts.h"
#include "src/aspen/generator.h"

namespace aspen {

std::string PairPoint::label() const {
  std::ostringstream os;
  os << hosts << ":k=" << k << ",n=" << n_fat << "," << (n_fat + 1);
  return os.str();
}

PairPoint analyze_pair(int k, int n_fat, const DelayModel& delays) {
  PairPoint p;
  p.k = k;
  p.n_fat = n_fat;
  p.fat = fat_tree(n_fat, k);
  p.aspen = design_fixed_host_tree(n_fat, k, /*extra_levels=*/1);
  p.hosts = p.fat.num_hosts();

  p.fat_switches = p.fat.total_switches();
  p.aspen_switches = p.aspen.total_switches();
  p.fat_switch_host_ratio =
      static_cast<double>(p.fat_switches) / static_cast<double>(p.hosts);
  p.aspen_switch_host_ratio =
      static_cast<double>(p.aspen_switches) / static_cast<double>(p.hosts);

  p.lsp_react = static_cast<double>(lsp_reacting_switches(p.fat));
  p.anp_react =
      anp_average_reacting_switches(p.aspen, /*include_host_links=*/true);
  p.lsp_react_host_ratio = p.lsp_react / static_cast<double>(p.hosts);
  p.anp_react_host_ratio = p.anp_react / static_cast<double>(p.hosts);

  p.lsp_avg_hops = lsp_average_flood_distance(n_fat);
  p.anp_avg_hops = anp_average_notification_distance(p.aspen.ftv());
  p.lsp_avg_ms =
      estimate_convergence_ms(p.lsp_avg_hops, ProtocolKind::kLsp, delays);
  p.anp_avg_ms =
      estimate_convergence_ms(p.anp_avg_hops, ProtocolKind::kAnp, delays);
  return p;
}

std::vector<PairPoint> figure10_small_series(const DelayModel& delays) {
  std::vector<PairPoint> series;
  series.push_back(analyze_pair(4, 3, delays));
  series.push_back(analyze_pair(6, 3, delays));
  series.push_back(analyze_pair(8, 3, delays));
  series.push_back(analyze_pair(4, 4, delays));
  return series;
}

std::vector<PairPoint> figure10_large_series(const DelayModel& delays) {
  std::vector<PairPoint> series;
  for (const int k : {4, 6, 8, 16, 32, 64, 128}) {
    series.push_back(analyze_pair(k, 3, delays));
  }
  for (const int k : {4, 6, 8, 16, 32}) {
    series.push_back(analyze_pair(k, 4, delays));
  }
  for (const int k : {4, 6, 8, 16}) {
    series.push_back(analyze_pair(k, 5, delays));
  }
  return series;
}

}  // namespace aspen
