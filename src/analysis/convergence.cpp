#include "src/analysis/convergence.h"

#include "src/util/status.h"

namespace aspen {

int update_propagation_distance(const FaultToleranceVector& ftv,
                                Level failure_level) {
  const int n = ftv.levels();
  ASPEN_REQUIRE(failure_level >= 2 && failure_level <= n,
                "failure level ", failure_level, " out of range [2,", n, "]");
  const Level f = ftv.nearest_fault_tolerant_level_at_or_above(failure_level);
  if (f != 0) return f - failure_level;
  return global_update_distance(n, failure_level);
}

double average_update_propagation(const FaultToleranceVector& ftv) {
  const int n = ftv.levels();
  double total = 0.0;
  for (Level i = 2; i <= n; ++i) {
    total += update_propagation_distance(ftv, i);
  }
  return total / static_cast<double>(n - 1);
}

int global_update_distance(int n, Level failure_level) {
  ASPEN_REQUIRE(failure_level >= 1 && failure_level <= n,
                "failure level out of range");
  return (n - failure_level) + (n - 1);
}

int max_update_distance(int n) { return global_update_distance(n, 2); }

int anp_notification_distance(const FaultToleranceVector& ftv,
                              Level failure_level) {
  const int n = ftv.levels();
  ASPEN_REQUIRE(failure_level >= 1 && failure_level <= n,
                "failure level ", failure_level, " out of range [1,", n, "]");
  if (failure_level == 1) return n - 1;  // single-homed host: climb to roots
  const Level f = ftv.nearest_fault_tolerant_level_at_or_above(failure_level);
  return (f != 0 ? f : n) - failure_level;
}

double anp_average_notification_distance(const FaultToleranceVector& ftv) {
  const int n = ftv.levels();
  double total = 0.0;
  for (Level i = 1; i <= n; ++i) {
    total += anp_notification_distance(ftv, i);
  }
  return total / static_cast<double>(n);
}

int lsp_flood_distance(int n, Level failure_level) {
  return global_update_distance(n, failure_level);
}

double lsp_average_flood_distance(int n) {
  double total = 0.0;
  for (Level i = 1; i <= n; ++i) {
    total += lsp_flood_distance(n, i);
  }
  return total / static_cast<double>(n);
}

SimTime estimate_convergence_ms(double hops, ProtocolKind kind,
                                const DelayModel& delays) {
  const SimTime per_hop = (kind == ProtocolKind::kLsp
                               ? delays.lsa_processing
                               : delays.anp_processing) +
                          delays.propagation;
  return hops * per_hop;
}

}  // namespace aspen
