// Availability accounting (§1).
//
// "An expectation of 5 nines (99.999%) availability corresponds to about 5
//  minutes of downtime per year, or 30 failures, each with a 10 second
//  re-convergence time."
//
// The paper's accounting is event-based: every link failure opens a window
// of packet loss equal to the fabric's re-convergence time, and annual
// downtime is the sum of those windows.  Given a per-link annual failure
// rate, a topology's link count, and a protocol's average reaction time,
// this module computes expected downtime and the resulting "nines" — the
// quantitative version of the paper's argument that shrinking the window
// beats trying to prevent failures.
#pragma once

#include <cstdint>
#include <vector>

#include "src/aspen/tree_params.h"
#include "src/proto/protocol.h"
#include "src/sim/simulator.h"

namespace aspen {

constexpr double kSecondsPerYear = 365.25 * 24 * 3600;

/// Availability from annual downtime, e.g. 315.6 s/yr → 0.99999.
[[nodiscard]] double availability_from_downtime(double downtime_s_per_year);

/// Annual downtime budget for a given availability, e.g. 0.99999 → ~315 s.
[[nodiscard]] double downtime_budget_s(double availability);

/// Number of nines: 0.99999 → 5.0; clamped for availability >= 1.
[[nodiscard]] double nines(double availability);

/// The §1 example: failures affordable per year at `availability` if each
/// failure costs `reaction_s` seconds (5 nines, 10 s → ≈31).
[[nodiscard]] double affordable_failures_per_year(double availability,
                                                  double reaction_s);

struct AvailabilityEstimate {
  double failures_per_year = 0.0;     ///< links × per-link rate
  double reaction_s = 0.0;            ///< per-failure window (seconds)
  double downtime_s_per_year = 0.0;   ///< failures × reaction
  double availability = 0.0;
  double nines = 0.0;
};

/// Event-based estimate for a tree under a protocol: the reaction window is
/// the tree's average §9.1 propagation distance converted to time with the
/// §9.2 constants (ANP rates when the FTV covers the failure, LSP rates
/// when global re-convergence is forced).
[[nodiscard]] AvailabilityEstimate estimate_availability(
    const TreeParams& tree, double link_failures_per_year_per_link,
    const DelayModel& delays = {});

/// Same accounting with an externally measured reaction time (e.g. a DES
/// sweep's mean convergence), for apples-to-apples protocol comparisons.
[[nodiscard]] AvailabilityEstimate estimate_availability_with_reaction(
    const TreeParams& tree, double link_failures_per_year_per_link,
    double reaction_ms);

/// Level-weighted accounting, for the Gill et al. finding the paper leans
/// on in §10: "links in the core of the network have the highest
/// probability of failure and benefit most from network redundancy."
/// `per_level_rates[i]` is the annual failure rate of links whose upper
/// endpoint sits at level i (index 1..n; index 0 unused); each level
/// contributes links(level) × rate(level) × window(level).
[[nodiscard]] AvailabilityEstimate estimate_availability_per_level(
    const TreeParams& tree, const std::vector<double>& per_level_rates,
    const DelayModel& delays = {});

}  // namespace aspen
