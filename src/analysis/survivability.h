// Monte Carlo survivability engine: availability curves over the FTV
// design space under progressive (possibly correlated) random failure.
//
// The paper trades fault tolerance against scale and cost analytically per
// FTV; Couto et al. (PAPERS.md) argue the operational question is different
// — how much of the fabric still talks after *many* concurrent failures —
// and answer it with progressive-random-failure campaigns.  This engine
// runs those campaigns at production speed:
//
//   * A campaign draws `samples` independent trials.  Each trial walks a
//     seeded uniform permutation of a FailureDomainModel's blast radii
//     (src/fault/failure_domains.h) — single links for the independence
//     baseline, racks / power feeds / linecards for correlated failures —
//     failing one domain per step until the fabric logically disconnects
//     (some ordered edge-switch pair loses every up*/down* path) or the
//     step cap is hit.
//   * Per-step routing is *incremental*: each worker owns a warm
//     routing::DeltaSession; a step patches only the rows its links dirty,
//     and the trial's unwind is digest-verified against the baseline —
//     never a full rebuild on the happy path.
//   * Robustness is built in rather than asserted: on a configurable
//     subsample (and always under AuditLevel::kParanoid on that subsample)
//     the faulted state is audited against a from-scratch computation; a
//     trial that trips an invariant is quarantined — excluded from the
//     accumulators, counted, reported — and the worker rebuilds its warm
//     state, so a campaign degrades gracefully instead of aborting.
//   * Campaigns checkpoint (seed, next sample, accumulators) every
//     `checkpoint_every` samples and resume byte-identically: every trial's
//     RNG stream is derived from (seed, sample index) alone, and all
//     accumulators are integer sums, so results are also byte-identical
//     across thread counts.
//
// Estimates come with Wilson-score confidence intervals, and the curve
// converts to an availability figure under a steady-state failure model
// (see docs/SURVIVABILITY.md for the math and its assumptions).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "src/fault/failure_domains.h"
#include "src/topo/topology.h"

namespace aspen {

struct SurvivabilityOptions {
  std::uint64_t seed = 1;
  /// Trials to draw (10^4–10^6 are the intended campaign sizes).
  std::uint64_t samples = 10'000;
  /// Cap on progressive failure steps per trial; trials still connected
  /// after this many domain failures are censored (counted as surviving).
  std::uint32_t max_steps = 32;
  /// Worker threads for campaign sharding (0 = auto); results are
  /// byte-identical at every thread count.
  int threads = 1;
  /// Audit the faulted state against a from-scratch computation every
  /// `audit_subsample`-th trial (0 disables).  Under
  /// contracts::AuditLevel::kParanoid the audit also cross-checks digests.
  std::uint64_t audit_subsample = 1024;
  /// Emit a checkpoint after every this-many samples (0 = only at the
  /// end).  Checkpoints are also the parallel chunk size.
  std::uint64_t checkpoint_every = 0;
  /// Called with each checkpoint as it is cut (orchestrator thread).
  std::function<void(const struct SurvivabilityCheckpoint&)> on_checkpoint;
  /// Test hook: deliberately corrupt the warm state inside this trial so
  /// the quarantine path has something to catch (kNoSample = never).
  static constexpr std::uint64_t kNoSample = ~std::uint64_t{0};
  std::uint64_t corrupt_sample = kNoSample;
};

/// Per-failure-step integer accumulators.  Step j (1-based) aggregates
/// trials that entered the step, i.e. were still fully connected after
/// j−1 domain failures.
struct SurvivabilityStep {
  std::uint64_t samples = 0;          ///< trials that executed step j
  std::uint64_t disconnects = 0;      ///< trials first disconnected here
  std::uint64_t reachable_pairs = 0;  ///< Σ ordered edge pairs still routed
  std::uint64_t failed_links = 0;     ///< Σ cumulative links down at step j

  friend bool operator==(const SurvivabilityStep&,
                         const SurvivabilityStep&) = default;
};

/// The campaign's complete integer state — everything a checkpoint needs.
struct SurvivabilityAccumulators {
  std::vector<SurvivabilityStep> steps;    ///< index 0 ⇒ step 1
  std::uint64_t committed_samples = 0;     ///< trials in the estimates
  std::uint64_t quarantined = 0;           ///< trials excluded by audit
  std::vector<std::uint64_t> quarantined_indices;  ///< first few, ascending
  std::uint64_t audits_run = 0;
  std::uint64_t rollback_rebuilds = 0;  ///< digest drift caught at unwind
  std::uint64_t disconnected_samples = 0;
  std::uint64_t censored_samples = 0;   ///< survived max_steps
  std::uint64_t sum_steps = 0;          ///< total failure steps executed
  std::uint64_t sum_links_to_disconnect = 0;  ///< over disconnected trials
  std::uint64_t sum_domains_to_disconnect = 0;
  std::uint64_t incremental_full_rows = 0;    ///< engine row accounting
  std::uint64_t incremental_patched_switches = 0;

  /// Order-independent 64-bit digest of every counter — the byte-identity
  /// currency of the resume / thread-count / kill-and-restart checks.
  [[nodiscard]] std::uint64_t fingerprint() const;

  /// Element-wise addition (merging a shard or a resumed segment).
  void merge(const SurvivabilityAccumulators& other);

  friend bool operator==(const SurvivabilityAccumulators&,
                         const SurvivabilityAccumulators&) = default;
};

/// Resume token: a campaign interrupted after cutting this checkpoint
/// continues at `next_sample` and reproduces the uninterrupted campaign's
/// accumulators byte-for-byte.
struct SurvivabilityCheckpoint {
  std::uint64_t seed = 0;
  std::uint64_t total_samples = 0;  ///< the campaign's planned size
  std::uint64_t next_sample = 0;    ///< first index not yet accumulated
  SurvivabilityAccumulators acc;

  /// Line-oriented text format ("ASPNSURV1"), fingerprint-sealed.
  [[nodiscard]] std::string serialize() const;
  /// Parses serialize() output; throws PreconditionError on malformed
  /// input or a fingerprint mismatch.
  [[nodiscard]] static SurvivabilityCheckpoint parse(const std::string& text);
};

/// Wilson score interval for a binomial proportion.
struct WilsonInterval {
  double center = 0.0;  ///< point estimate successes/trials
  double lo = 0.0;
  double hi = 1.0;

  [[nodiscard]] bool contains(double p) const { return p >= lo && p <= hi; }
};

[[nodiscard]] WilsonInterval wilson_interval(std::uint64_t successes,
                                             std::uint64_t trials,
                                             double z = 1.959964);

/// One point of the survivability curve, after j domain failures.
struct SurvivabilityCurvePoint {
  std::uint32_t step = 0;              ///< j
  double mean_failed_links = 0.0;      ///< links down when step j completed
  double p_connected = 0.0;            ///< P(fully connected after j)
  WilsonInterval ci;                   ///< Wilson interval around it
  double mean_reachable_fraction = 0.0;  ///< over trials that executed j
};

struct SurvivabilityResult {
  std::uint64_t seed = 0;
  std::uint64_t samples = 0;  ///< trials processed (committed + quarantined)
  std::uint64_t edge_switches = 0;
  std::uint64_t ordered_pairs = 0;  ///< edge_switches · (edge_switches − 1)
  std::uint64_t domain_count = 0;
  SurvivabilityAccumulators acc;

  /// P(connected after j failures) for j = 1..max walked step, with CIs.
  [[nodiscard]] std::vector<SurvivabilityCurvePoint> curve() const;
  /// Mean links failed at first disconnection (trials that disconnected).
  [[nodiscard]] double mean_links_to_disconnect() const;
  [[nodiscard]] double mean_domains_to_disconnect() const;
  /// Fraction of committed trials that disconnected within max_steps.
  [[nodiscard]] double p_disconnect() const;
};

/// Runs (or, given `resume`, continues) one seeded campaign.  `resume`
/// must carry the same seed and planned sample count as `options`.
[[nodiscard]] SurvivabilityResult run_survivability(
    const Topology& topo, const fault::FailureDomainModel& domains,
    const SurvivabilityOptions& options,
    const SurvivabilityCheckpoint* resume = nullptr);

/// Independence-baseline convenience overload.
[[nodiscard]] SurvivabilityResult run_survivability(
    const Topology& topo, const SurvivabilityOptions& options);

// ---- Exact small-tree oracle -------------------------------------------

/// Exhaustive ground truth for estimator-convergence tests: enumerates
/// every `num_failures`-subset of inter-switch links and reports the exact
/// probability that the fabric stays fully edge-connected.  Cost is
/// C(links, num_failures) incremental recomputes — Fig. 3-scale trees and
/// num_failures ≤ 2 only.
struct ExactSurvivability {
  std::uint64_t fault_sets = 0;
  std::uint64_t connected_sets = 0;

  [[nodiscard]] double p_connected() const {
    return fault_sets == 0
               ? 1.0
               : static_cast<double>(connected_sets) /
                     static_cast<double>(fault_sets);
  }
};

[[nodiscard]] ExactSurvivability exact_connected_probability(
    const Topology& topo, int num_failures);

// ---- Steady-state availability ----------------------------------------

/// Folds the survivability curve into an expected availability under a
/// steady-state failure model: domains fail independently with MTBF
/// `domain_mtbf_hours` and repair in `mttr_hours`, so the number of
/// concurrently failed domains is ≈ Poisson(D·ρ) with per-domain
/// unavailability ρ = mttr/(mtbf+mttr); availability is Σ_j P(j failed) ·
/// P(connected | j failed), taking the curve's Monte Carlo estimates for
/// the conditional and 0 beyond the measured depth (pessimistic tail).
[[nodiscard]] double availability_from_survivability(
    const SurvivabilityResult& result, double domain_mtbf_hours,
    double mttr_hours);

}  // namespace aspen
