// Convergence-cost model (§8.2, Figure 7).
//
// "We first calculate the number of links added to turn a fat tree into a
//  corresponding Aspen tree with non-zero fault tolerance and an identical
//  number of hosts.  We then calculate the average convergence time of each
//  tree across failures at all levels.  Finally, for each tree, we multiply
//  this average convergence time by the number of links in the tree to
//  determine the tree's convergence cost."
//
// Convergence cost = (average §9.1 propagation distance) × (total links,
// host links included).  For a fixed host count the fat and Aspen trees
// have identical S, so the fat:Aspen cost ratio reduces to
//     (avg_fat × n) / (avg_aspen × (n + x)),
// independent of k — which is why Figure 7 plots one curve per x.
#pragma once

#include <cstdint>

#include "src/aspen/fixed_hosts.h"
#include "src/aspen/tree_params.h"

namespace aspen {

struct ConvergenceCost {
  double average_hops = 0.0;     ///< §9.1 model, failure levels 2..n
  std::uint64_t links = 0;       ///< total links including host links
  double cost = 0.0;             ///< average_hops × links
};

/// Convergence cost of an arbitrary Aspen tree.
[[nodiscard]] ConvergenceCost convergence_cost(const TreeParams& tree);

/// Cost of the n-level, k-port fat tree.
[[nodiscard]] ConvergenceCost fat_tree_cost(int n, int k);

/// Cost of the fixed-host Aspen tree built from an n-level, k-port fat
/// tree by adding `extra_levels` fault-tolerant levels.
[[nodiscard]] ConvergenceCost aspen_fixed_host_cost(
    int n_fat, int k, int extra_levels,
    RedundancyPlacement placement = RedundancyPlacement::kTop);

/// The Figure 7 curve value: fat-tree cost divided by Aspen-tree cost for
/// base depth `n_fat` and `extra_levels` added levels.  Values above 1 mean
/// the Aspen tree wins despite its extra links.  k-independent.
[[nodiscard]] double fat_vs_aspen_cost_ratio(
    int n_fat, int extra_levels,
    RedundancyPlacement placement = RedundancyPlacement::kTop);

}  // namespace aspen
