// Analytic model of how many switches react to a failure under ANP.
//
// Used for the mega-data-center points of Figure 10(c), where — as in the
// paper — simulation does not scale and "we use additional analysis".
//
// For a failure of the link from L_i switch s down to t (standard striping):
//   * both endpoints react locally (2 switches; 1 for host links);
//   * if s has no remaining link to t's pod (c_i = 1), a notification wave
//     climbs: the ancestors of s at level j number (k/2)^{j−i}, capped by
//     the size m_j of s's ancestor pod at that level, and the wave stops at
//     the nearest fault-tolerant level f (or at the roots).
// Validated against the DES on small trees in tests/test_react_model.cpp.
#pragma once

#include <cstdint>

#include "src/aspen/tree_params.h"

namespace aspen {

/// Switches reacting to a failure at L_i (1 <= i <= n; i = 1 is a host
/// link, whose loss notice climbs to the roots).
[[nodiscard]] std::uint64_t anp_reacting_switches(const TreeParams& tree,
                                                  Level failure_level);

/// Mean over failure levels; `include_host_links` selects averaging over
/// i = 1..n (Fig. 10's "every link" sweeps) or i = 2..n (§9.1 convention).
[[nodiscard]] double anp_average_reacting_switches(const TreeParams& tree,
                                                   bool include_host_links);

/// LSP informs every switch in the tree on any failure (flooding); the
/// Fig. 10(c) "LSP React" curve.
[[nodiscard]] std::uint64_t lsp_reacting_switches(const TreeParams& tree);

}  // namespace aspen
