#include "src/analysis/availability.h"

#include <algorithm>
#include <cmath>

#include "src/analysis/convergence.h"
#include "src/util/contracts.h"
#include "src/util/status.h"

namespace aspen {

double availability_from_downtime(double downtime_s_per_year) {
  ASPEN_REQUIRE(downtime_s_per_year >= 0.0, "downtime must be non-negative");
  return std::max(0.0, 1.0 - downtime_s_per_year / kSecondsPerYear);
}

double downtime_budget_s(double availability) {
  ASPEN_REQUIRE(availability >= 0.0 && availability <= 1.0,
                "availability must be in [0,1]");
  return (1.0 - availability) * kSecondsPerYear;
}

double nines(double availability) {
  ASPEN_REQUIRE(availability >= 0.0 && availability <= 1.0,
                "availability must be in [0,1]");
  if (availability >= 1.0) return 12.0;  // better than any fabric measures
  return -std::log10(1.0 - availability);
}

double affordable_failures_per_year(double availability, double reaction_s) {
  ASPEN_REQUIRE(reaction_s > 0.0, "reaction time must be positive");
  return downtime_budget_s(availability) / reaction_s;
}

namespace {

// Mean per-failure window over failure levels 2..n: covered levels react at
// ANP rates, uncovered ones at global (LSA) rates.
double mean_reaction_ms(const TreeParams& tree, const DelayModel& delays) {
  const FaultToleranceVector ftv = tree.ftv();
  double total = 0.0;
  for (Level i = 2; i <= tree.n; ++i) {
    const bool covered =
        ftv.nearest_fault_tolerant_level_at_or_above(i) != 0;
    const double hops = update_propagation_distance(ftv, i);
    total += estimate_convergence_ms(
        hops, covered ? ProtocolKind::kAnp : ProtocolKind::kLsp, delays);
  }
  ASPEN_ASSERT(total >= 0.0, "reaction windows are non-negative");
  return total / static_cast<double>(tree.n - 1);
}

}  // namespace

AvailabilityEstimate estimate_availability(
    const TreeParams& tree, double link_failures_per_year_per_link,
    const DelayModel& delays) {
  return estimate_availability_with_reaction(
      tree, link_failures_per_year_per_link, mean_reaction_ms(tree, delays));
}

AvailabilityEstimate estimate_availability_per_level(
    const TreeParams& tree, const std::vector<double>& per_level_rates,
    const DelayModel& delays) {
  ASPEN_REQUIRE(per_level_rates.size() ==
                    static_cast<std::size_t>(tree.n) + 1,
                "need one rate per level, 1..n (index 0 unused)");
  const FaultToleranceVector ftv = tree.ftv();
  const double links_per_level =
      static_cast<double>(tree.S) * tree.k / 2.0;  // every level, hosts too

  AvailabilityEstimate estimate;
  double weighted_window_s = 0.0;
  for (Level i = 1; i <= tree.n; ++i) {
    const double rate = per_level_rates[static_cast<std::size_t>(i)];
    ASPEN_REQUIRE(rate >= 0.0, "rates must be non-negative");
    const double failures = links_per_level * rate;
    double window_ms = 0.0;
    if (i == 1) {
      // Host links: notifications climb to the roots (host granularity).
      window_ms = estimate_convergence_ms(
          anp_notification_distance(ftv, 1), ProtocolKind::kAnp, delays);
    } else {
      const bool covered =
          ftv.nearest_fault_tolerant_level_at_or_above(i) != 0;
      window_ms = estimate_convergence_ms(
          update_propagation_distance(ftv, i),
          covered ? ProtocolKind::kAnp : ProtocolKind::kLsp, delays);
    }
    estimate.failures_per_year += failures;
    weighted_window_s += failures * window_ms / 1000.0;
  }
  estimate.downtime_s_per_year = weighted_window_s;
  estimate.reaction_s =
      estimate.failures_per_year > 0
          ? weighted_window_s / estimate.failures_per_year
          : 0.0;
  estimate.availability =
      availability_from_downtime(estimate.downtime_s_per_year);
  estimate.nines = aspen::nines(estimate.availability);
  return estimate;
}

AvailabilityEstimate estimate_availability_with_reaction(
    const TreeParams& tree, double link_failures_per_year_per_link,
    double reaction_ms) {
  ASPEN_REQUIRE(link_failures_per_year_per_link >= 0.0,
                "failure rate must be non-negative");
  ASPEN_REQUIRE(reaction_ms >= 0.0, "reaction time must be non-negative");
  AvailabilityEstimate estimate;
  estimate.failures_per_year =
      static_cast<double>(tree.total_links()) *
      link_failures_per_year_per_link;
  estimate.reaction_s = reaction_ms / 1000.0;
  estimate.downtime_s_per_year =
      estimate.failures_per_year * estimate.reaction_s;
  estimate.availability =
      availability_from_downtime(estimate.downtime_s_per_year);
  estimate.nines = aspen::nines(estimate.availability);
  ASPEN_ASSERT(estimate.availability >= 0.0 && estimate.availability <= 1.0,
               "availability must land in [0,1]");
  return estimate;
}

}  // namespace aspen
