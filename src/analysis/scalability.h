// Convergence-versus-scalability tradeoff series (§9.1, Figures 8 and 9).
//
// For every valid (n, k) Aspen tree: its average §9.1 convergence distance
// and the number of hosts *removed* relative to the traditional fat tree of
// the same depth and switch size ("we elect to consider hosts removed,
// rather than hosts remaining, so that the compared measurements are both
// minimal in the ideal case").
#pragma once

#include <cstdint>
#include <vector>

#include "src/aspen/ftv.h"
#include "src/aspen/tree_params.h"

namespace aspen {

struct TradeoffPoint {
  FaultToleranceVector ftv;
  std::uint64_t hosts = 0;
  std::uint64_t hosts_removed = 0;      ///< vs the fat tree of same (n, k)
  double average_convergence_hops = 0.0;
  std::uint64_t total_switches = 0;
  double overall_aggregation = 0.0;

  /// Normalizers for percent-of-maximum plots.
  [[nodiscard]] double convergence_percent(int max_hops) const {
    return 100.0 * average_convergence_hops / static_cast<double>(max_hops);
  }
  [[nodiscard]] double removed_percent(std::uint64_t max_hosts) const {
    return 100.0 * static_cast<double>(hosts_removed) /
           static_cast<double>(max_hosts);
  }
};

/// One point per valid (n, k) Aspen tree, in enumeration (FTV) order; the
/// fat tree <0,…,0> is first.
[[nodiscard]] std::vector<TradeoffPoint> scalability_tradeoff(int n, int k);

/// Collapses points with identical [host count, convergence time] pairs —
/// the paper's Fig. 9 treatment ("we collapsed all such duplicates into
/// single entries").  Output is sorted by (hosts_removed, convergence).
[[nodiscard]] std::vector<TradeoffPoint> collapse_duplicates(
    std::vector<TradeoffPoint> points);

/// Sorts points the way Figs. 8/9 are laid out: by hosts removed
/// ascending, then by convergence time descending within a host count.
void sort_for_display(std::vector<TradeoffPoint>& points);

}  // namespace aspen
