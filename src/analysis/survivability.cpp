#include "src/analysis/survivability.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <sstream>

#include "src/fault/seed.h"
#include "src/obs/obs.h"
#include "src/routing/audit.h"
#include "src/routing/delta.h"
#include "src/routing/updown.h"
#include "src/util/contracts.h"
#include "src/util/parallel.h"
#include "src/util/rng.h"

namespace aspen {

namespace {

/// Quarantined sample indices retained per campaign (smallest first); the
/// count is always exact, the index list is a bounded diagnostic.
constexpr std::size_t kMaxQuarantineIndices = 64;

/// Chain-hash step for fingerprints: reuses the seed-mixing finalizer so
/// one splitmix-quality bijection serves both purposes.
std::uint64_t mix(std::uint64_t h, std::uint64_t v) {
  return fault::derive_stream_seed(h, v);
}

/// Number of L_1 (edge) switches — they occupy the lowest switch ids.
std::uint64_t count_edge_switches(const Topology& topo) {
  std::uint64_t edges = 0;
  while (edges < topo.num_switches() &&
         topo.level_of(SwitchId{static_cast<std::uint32_t>(edges)}) == 1) {
    ++edges;
  }
  return edges;
}

/// Ordered reachable edge pairs under the current tables.  The self entry
/// carries cost 0 with no next hops, so reachable_count() already excludes
/// it; a fully connected fabric scores edges·(edges−1).
std::uint64_t count_reachable_pairs(const RoutingState& state,
                                    std::uint64_t edges) {
  std::uint64_t pairs = 0;
  for (std::uint64_t e = 0; e < edges; ++e) {
    pairs += state.tables[e].reachable_count();
  }
  return pairs;
}

void normalize_quarantine_indices(std::vector<std::uint64_t>& indices) {
  std::sort(indices.begin(), indices.end());
  indices.erase(std::unique(indices.begin(), indices.end()), indices.end());
  if (indices.size() > kMaxQuarantineIndices) {
    indices.resize(kMaxQuarantineIndices);
  }
}

}  // namespace

std::uint64_t SurvivabilityAccumulators::fingerprint() const {
  std::uint64_t h = 0xA59E1B5u;
  h = mix(h, committed_samples);
  h = mix(h, quarantined);
  h = mix(h, audits_run);
  h = mix(h, rollback_rebuilds);
  h = mix(h, disconnected_samples);
  h = mix(h, censored_samples);
  h = mix(h, sum_steps);
  h = mix(h, sum_links_to_disconnect);
  h = mix(h, sum_domains_to_disconnect);
  h = mix(h, incremental_full_rows);
  h = mix(h, incremental_patched_switches);
  h = mix(h, steps.size());
  for (const SurvivabilityStep& step : steps) {
    h = mix(h, step.samples);
    h = mix(h, step.disconnects);
    h = mix(h, step.reachable_pairs);
    h = mix(h, step.failed_links);
  }
  h = mix(h, quarantined_indices.size());
  for (const std::uint64_t index : quarantined_indices) h = mix(h, index);
  return h;
}

void SurvivabilityAccumulators::merge(const SurvivabilityAccumulators& other) {
  if (steps.size() < other.steps.size()) steps.resize(other.steps.size());
  for (std::size_t i = 0; i < other.steps.size(); ++i) {
    steps[i].samples += other.steps[i].samples;
    steps[i].disconnects += other.steps[i].disconnects;
    steps[i].reachable_pairs += other.steps[i].reachable_pairs;
    steps[i].failed_links += other.steps[i].failed_links;
  }
  committed_samples += other.committed_samples;
  quarantined += other.quarantined;
  quarantined_indices.insert(quarantined_indices.end(),
                             other.quarantined_indices.begin(),
                             other.quarantined_indices.end());
  normalize_quarantine_indices(quarantined_indices);
  audits_run += other.audits_run;
  rollback_rebuilds += other.rollback_rebuilds;
  disconnected_samples += other.disconnected_samples;
  censored_samples += other.censored_samples;
  sum_steps += other.sum_steps;
  sum_links_to_disconnect += other.sum_links_to_disconnect;
  sum_domains_to_disconnect += other.sum_domains_to_disconnect;
  incremental_full_rows += other.incremental_full_rows;
  incremental_patched_switches += other.incremental_patched_switches;
}

// ---- Checkpoints -------------------------------------------------------

std::string SurvivabilityCheckpoint::serialize() const {
  std::ostringstream os;
  os << "ASPNSURV1\n";
  os << "seed " << seed << "\n";
  os << "total " << total_samples << "\n";
  os << "next " << next_sample << "\n";
  os << "committed " << acc.committed_samples << "\n";
  os << "quarantined " << acc.quarantined << "\n";
  os << "audits " << acc.audits_run << "\n";
  os << "rollback_rebuilds " << acc.rollback_rebuilds << "\n";
  os << "disconnected " << acc.disconnected_samples << "\n";
  os << "censored " << acc.censored_samples << "\n";
  os << "sum_steps " << acc.sum_steps << "\n";
  os << "sum_links " << acc.sum_links_to_disconnect << "\n";
  os << "sum_domains " << acc.sum_domains_to_disconnect << "\n";
  os << "inc_full_rows " << acc.incremental_full_rows << "\n";
  os << "inc_patched " << acc.incremental_patched_switches << "\n";
  os << "steps " << acc.steps.size() << "\n";
  for (const SurvivabilityStep& step : acc.steps) {
    os << "step " << step.samples << " " << step.disconnects << " "
       << step.reachable_pairs << " " << step.failed_links << "\n";
  }
  os << "qidx " << acc.quarantined_indices.size();
  for (const std::uint64_t index : acc.quarantined_indices) os << " " << index;
  os << "\n";
  os << "fingerprint " << acc.fingerprint() << "\n";
  return os.str();
}

namespace {

std::uint64_t parse_field(std::istringstream& is, const char* key) {
  std::string word;
  std::uint64_t value = 0;
  if (!(is >> word) || word != key || !(is >> value)) {
    throw PreconditionError(std::string("survivability checkpoint: expected ") +
                            key);
  }
  return value;
}

}  // namespace

SurvivabilityCheckpoint SurvivabilityCheckpoint::parse(
    const std::string& text) {
  std::istringstream is(text);
  std::string word;
  if (!(is >> word) || word != "ASPNSURV1") {
    throw PreconditionError("survivability checkpoint: bad magic");
  }
  SurvivabilityCheckpoint cp;
  cp.seed = parse_field(is, "seed");
  cp.total_samples = parse_field(is, "total");
  cp.next_sample = parse_field(is, "next");
  cp.acc.committed_samples = parse_field(is, "committed");
  cp.acc.quarantined = parse_field(is, "quarantined");
  cp.acc.audits_run = parse_field(is, "audits");
  cp.acc.rollback_rebuilds = parse_field(is, "rollback_rebuilds");
  cp.acc.disconnected_samples = parse_field(is, "disconnected");
  cp.acc.censored_samples = parse_field(is, "censored");
  cp.acc.sum_steps = parse_field(is, "sum_steps");
  cp.acc.sum_links_to_disconnect = parse_field(is, "sum_links");
  cp.acc.sum_domains_to_disconnect = parse_field(is, "sum_domains");
  cp.acc.incremental_full_rows = parse_field(is, "inc_full_rows");
  cp.acc.incremental_patched_switches = parse_field(is, "inc_patched");
  const std::uint64_t num_steps = parse_field(is, "steps");
  cp.acc.steps.resize(num_steps);
  for (SurvivabilityStep& step : cp.acc.steps) {
    if (!(is >> word) || word != "step" || !(is >> step.samples) ||
        !(is >> step.disconnects) || !(is >> step.reachable_pairs) ||
        !(is >> step.failed_links)) {
      throw PreconditionError("survivability checkpoint: bad step record");
    }
  }
  const std::uint64_t num_indices = parse_field(is, "qidx");
  cp.acc.quarantined_indices.resize(num_indices);
  for (std::uint64_t& index : cp.acc.quarantined_indices) {
    if (!(is >> index)) {
      throw PreconditionError("survivability checkpoint: bad quarantine list");
    }
  }
  const std::uint64_t fp = parse_field(is, "fingerprint");
  if (fp != cp.acc.fingerprint()) {
    throw PreconditionError(
        "survivability checkpoint: fingerprint mismatch (corrupt or "
        "truncated checkpoint)");
  }
  return cp;
}

// ---- Wilson interval ---------------------------------------------------

WilsonInterval wilson_interval(std::uint64_t successes, std::uint64_t trials,
                               double z) {
  WilsonInterval interval;
  if (trials == 0) return interval;  // vacuous: [0, 1]
  ASPEN_REQUIRE(successes <= trials, "wilson_interval: successes > trials");
  const double n = static_cast<double>(trials);
  const double p = static_cast<double>(successes) / n;
  const double z2 = z * z;
  const double denom = 1.0 + z2 / n;
  const double center = (p + z2 / (2.0 * n)) / denom;
  const double half =
      z * std::sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n)) / denom;
  interval.center = p;
  interval.lo = std::max(0.0, center - half);
  interval.hi = std::min(1.0, center + half);
  return interval;
}

// ---- Result views ------------------------------------------------------

std::vector<SurvivabilityCurvePoint> SurvivabilityResult::curve() const {
  std::vector<SurvivabilityCurvePoint> points;
  points.reserve(acc.steps.size());
  std::uint64_t cumulative_disconnects = 0;
  for (std::size_t i = 0; i < acc.steps.size(); ++i) {
    const SurvivabilityStep& step = acc.steps[i];
    cumulative_disconnects += step.disconnects;
    SurvivabilityCurvePoint point;
    point.step = static_cast<std::uint32_t>(i + 1);
    if (step.samples > 0) {
      point.mean_failed_links = static_cast<double>(step.failed_links) /
                                static_cast<double>(step.samples);
      point.mean_reachable_fraction =
          static_cast<double>(step.reachable_pairs) /
          (static_cast<double>(step.samples) *
           static_cast<double>(ordered_pairs));
    }
    const std::uint64_t connected =
        acc.committed_samples - cumulative_disconnects;
    point.ci = wilson_interval(connected, acc.committed_samples);
    point.p_connected = point.ci.center;
    points.push_back(point);
  }
  return points;
}

double SurvivabilityResult::mean_links_to_disconnect() const {
  return acc.disconnected_samples == 0
             ? 0.0
             : static_cast<double>(acc.sum_links_to_disconnect) /
                   static_cast<double>(acc.disconnected_samples);
}

double SurvivabilityResult::mean_domains_to_disconnect() const {
  return acc.disconnected_samples == 0
             ? 0.0
             : static_cast<double>(acc.sum_domains_to_disconnect) /
                   static_cast<double>(acc.disconnected_samples);
}

double SurvivabilityResult::p_disconnect() const {
  return acc.committed_samples == 0
             ? 0.0
             : static_cast<double>(acc.disconnected_samples) /
                   static_cast<double>(acc.committed_samples);
}

// ---- Campaign engine ---------------------------------------------------

namespace {

/// Per-worker campaign state: a warm DeltaSession plus reusable trial
/// scratch, created lazily in the worker's first block.
struct WorkerState {
  std::unique_ptr<routing::DeltaSession> session;
  std::vector<SurvivabilityStep> trial_steps;  ///< scratch, reused per trial
};

/// Runs one trial (sample `index`) on `worker`, committing into `out`
/// unless the trial is quarantined.
void run_trial(const Topology& topo, const fault::FailureDomainModel& domains,
               const SurvivabilityOptions& options, std::uint64_t stream_seed,
               std::uint64_t index, std::uint64_t edges,
               std::uint64_t ordered_pairs, WorkerState& worker,
               SurvivabilityAccumulators& out) {
  routing::DeltaSession& session = *worker.session;
  Rng rng(fault::derive_stream_seed(stream_seed, index));
  const std::vector<std::uint32_t> order = domains.draw_order(rng);
  const std::size_t limit =
      std::min<std::size_t>(order.size(), options.max_steps);

  const RecomputeStats before = session.cumulative_stats();
  std::vector<SurvivabilityStep>& trial = worker.trial_steps;
  trial.clear();
  bool disconnected = false;
  std::uint64_t links_at_disconnect = 0;
  std::uint64_t domains_at_disconnect = 0;

  for (std::size_t j = 0; j < limit; ++j) {
    session.apply(domains.domain(order[j]).links);
    const std::uint64_t failed = session.overlay().num_failed();
    const std::uint64_t pairs =
        count_reachable_pairs(session.state(), edges);
    SurvivabilityStep step;
    step.samples = 1;
    step.reachable_pairs = pairs;
    step.failed_links = failed;
    if (pairs < ordered_pairs) {
      step.disconnects = 1;
      disconnected = true;
      links_at_disconnect = failed;
      domains_at_disconnect = j + 1;
    }
    trial.push_back(step);
    if (disconnected) break;
  }

  if (index == options.corrupt_sample) session.corrupt_for_test();

  // Paranoid-level audit on the subsample (and always on the deliberately
  // corrupted sample): the faulted state is checked against a from-scratch
  // computation, digests included, before any of this trial commits.
  bool quarantine = false;
  const bool audit_due =
      index == options.corrupt_sample ||
      (options.audit_subsample > 0 && index % options.audit_subsample == 0);
  if (audit_due) {
    ++out.audits_run;
    const AuditReport report = routing::audit_incremental(
        topo, session.overlay(), session.state(), /*threads=*/1);
    quarantine = !report.ok();
  }

  if (quarantine) {
    ++out.quarantined;
    if (out.quarantined_indices.size() < kMaxQuarantineIndices) {
      out.quarantined_indices.push_back(index);
    }
    session.rebuild();  // discard the tainted warm state entirely
    return;
  }

  if (out.steps.size() < trial.size()) out.steps.resize(trial.size());
  for (std::size_t j = 0; j < trial.size(); ++j) {
    out.steps[j].samples += trial[j].samples;
    out.steps[j].disconnects += trial[j].disconnects;
    out.steps[j].reachable_pairs += trial[j].reachable_pairs;
    out.steps[j].failed_links += trial[j].failed_links;
  }
  ++out.committed_samples;
  out.sum_steps += trial.size();
  if (disconnected) {
    ++out.disconnected_samples;
    out.sum_links_to_disconnect += links_at_disconnect;
    out.sum_domains_to_disconnect += domains_at_disconnect;
  } else {
    ++out.censored_samples;
  }

  const std::uint64_t rebuilds_before = session.rebuilds();
  session.rollback();
  out.rollback_rebuilds += session.rebuilds() - rebuilds_before;

  const RecomputeStats& after = session.cumulative_stats();
  out.incremental_full_rows += after.full_rows - before.full_rows;
  out.incremental_patched_switches +=
      after.patched_switches - before.patched_switches;
}

}  // namespace

SurvivabilityResult run_survivability(const Topology& topo,
                                      const fault::FailureDomainModel& domains,
                                      const SurvivabilityOptions& options,
                                      const SurvivabilityCheckpoint* resume) {
  ASPEN_REQUIRE(options.samples > 0, "survivability: samples must be > 0");
  ASPEN_REQUIRE(options.max_steps > 0, "survivability: max_steps must be > 0");
  ASPEN_REQUIRE(domains.size() > 0, "survivability: empty domain model");
  {
    const std::vector<std::string> problems = domains.check(topo);
    ASPEN_REQUIRE(problems.empty(), "survivability: incoherent domain model: ",
                  problems.front());
  }

  const std::uint64_t edges = count_edge_switches(topo);
  ASPEN_REQUIRE(edges >= 2, "survivability needs at least two edge switches");
  const std::uint64_t ordered_pairs = edges * (edges - 1);
  const std::uint64_t stream_seed =
      fault::derive_stream_seed(options.seed, fault::kStreamSurvivability);

  SurvivabilityAccumulators acc;
  std::uint64_t next = 0;
  if (resume != nullptr) {
    ASPEN_REQUIRE(resume->seed == options.seed,
                  "survivability resume: seed mismatch");
    ASPEN_REQUIRE(resume->total_samples == options.samples,
                  "survivability resume: sample-count mismatch");
    ASPEN_REQUIRE(resume->next_sample <= options.samples,
                  "survivability resume: next_sample out of range");
    acc = resume->acc;
    next = resume->next_sample;
  }

  const int threads = parallel::effective_num_threads(options.threads);
  std::vector<WorkerState> workers(static_cast<std::size_t>(threads));
  const std::uint64_t chunk_size = options.checkpoint_every > 0
                                       ? options.checkpoint_every
                                       : options.samples;

  while (next < options.samples) {
    const std::uint64_t chunk =
        std::min<std::uint64_t>(chunk_size, options.samples - next);
    std::vector<SurvivabilityAccumulators> partials(
        static_cast<std::size_t>(threads));
    const SurvivabilityAccumulators chunk_before = acc;
    {
      // Workers must never emit obs (orchestrator-only thread model); the
      // routing engine underneath is instrumented, so silence it for the
      // sharded region and emit aggregates after the join.
      obs::PauseObs pause;
      parallel::parallel_for_blocks(
          chunk, threads,
          [&](std::uint64_t begin, std::uint64_t end, int worker_index) {
            WorkerState& worker =
                workers[static_cast<std::size_t>(worker_index)];
            if (worker.session == nullptr) {
              worker.session = std::make_unique<routing::DeltaSession>(
                  topo, DestGranularity::kEdge, /*threads=*/1);
            }
            for (std::uint64_t i = begin; i < end; ++i) {
              run_trial(topo, domains, options, stream_seed, next + i, edges,
                        ordered_pairs, worker,
                        partials[static_cast<std::size_t>(worker_index)]);
            }
          });
    }
    for (const SurvivabilityAccumulators& partial : partials) {
      acc.merge(partial);
    }
    next += chunk;

    obs::count("survive.samples", chunk);
    obs::count("survive.disconnects",
               acc.disconnected_samples - chunk_before.disconnected_samples);
    obs::count("survive.audits", acc.audits_run - chunk_before.audits_run);
    obs::count("survive.quarantined",
               acc.quarantined - chunk_before.quarantined);
    obs::count("survive.rollback_rebuilds",
               acc.rollback_rebuilds - chunk_before.rollback_rebuilds);
    obs::count("survive.steps", acc.sum_steps - chunk_before.sum_steps);
    obs::trace_event(0.0, obs::TraceKind::kSurviveChunk,
                     static_cast<std::uint32_t>(next >> 32),
                     static_cast<std::uint32_t>(next), chunk);

    const bool cut_checkpoint =
        options.checkpoint_every > 0 || next >= options.samples;
    if (cut_checkpoint && options.on_checkpoint) {
      SurvivabilityCheckpoint checkpoint;
      checkpoint.seed = options.seed;
      checkpoint.total_samples = options.samples;
      checkpoint.next_sample = next;
      checkpoint.acc = acc;
      obs::count("survive.checkpoints");
      obs::trace_event(0.0, obs::TraceKind::kSurviveCheckpoint, 0, 0, next);
      options.on_checkpoint(checkpoint);
    }
  }

  SurvivabilityResult result;
  result.seed = options.seed;
  result.samples = acc.committed_samples + acc.quarantined;
  result.edge_switches = edges;
  result.ordered_pairs = ordered_pairs;
  result.domain_count = domains.size();
  result.acc = std::move(acc);
  return result;
}

SurvivabilityResult run_survivability(const Topology& topo,
                                      const SurvivabilityOptions& options) {
  return run_survivability(topo, fault::FailureDomainModel::independent(topo),
                           options);
}

// ---- Exact small-tree oracle -------------------------------------------

ExactSurvivability exact_connected_probability(const Topology& topo,
                                               int num_failures) {
  ASPEN_REQUIRE(num_failures >= 1, "exact oracle: need >= 1 failure");
  std::vector<LinkId> links;
  for (Level level = 2; level <= topo.levels(); ++level) {
    for (const LinkId link : topo.links_at_level(level)) {
      links.push_back(link);
    }
  }
  ASPEN_REQUIRE(static_cast<std::size_t>(num_failures) <= links.size(),
                "exact oracle: more failures than links");

  const std::uint64_t edges = count_edge_switches(topo);
  const std::uint64_t ordered_pairs = edges * (edges - 1);
  routing::DeltaSession session(topo, DestGranularity::kEdge, /*threads=*/1);

  ExactSurvivability exact;
  const std::size_t f = static_cast<std::size_t>(num_failures);
  std::vector<std::size_t> pick(f);
  for (std::size_t i = 0; i < f; ++i) pick[i] = i;
  std::vector<LinkId> fault_set(f);
  while (true) {
    for (std::size_t i = 0; i < f; ++i) fault_set[i] = links[pick[i]];
    session.apply(fault_set);
    ++exact.fault_sets;
    if (count_reachable_pairs(session.state(), edges) == ordered_pairs) {
      ++exact.connected_sets;
    }
    session.rollback();

    // Advance to the next f-combination of [0, links.size()).
    std::size_t slot = f;
    while (slot > 0) {
      --slot;
      if (pick[slot] + (f - slot) < links.size()) break;
      if (slot == 0) return exact;
    }
    if (pick[slot] + (f - slot) >= links.size()) return exact;
    ++pick[slot];
    for (std::size_t i = slot + 1; i < f; ++i) pick[i] = pick[i - 1] + 1;
  }
}

// ---- Steady-state availability ----------------------------------------

double availability_from_survivability(const SurvivabilityResult& result,
                                       double domain_mtbf_hours,
                                       double mttr_hours) {
  ASPEN_REQUIRE(domain_mtbf_hours > 0.0 && mttr_hours > 0.0,
                "availability: MTBF and MTTR must be positive");
  const double rho = mttr_hours / (domain_mtbf_hours + mttr_hours);
  const double lambda = static_cast<double>(result.domain_count) * rho;

  const std::vector<SurvivabilityCurvePoint> curve = result.curve();
  // Poisson(lambda) over concurrently failed domains; P(connected | 0) = 1,
  // j in [1, measured depth] from the curve, 0 beyond it (pessimistic).
  double availability = std::exp(-lambda);
  double p_j = std::exp(-lambda);  // P(J = j), updated iteratively
  for (std::size_t j = 1; j <= curve.size(); ++j) {
    p_j *= lambda / static_cast<double>(j);
    // aspen-lint: allow(float-accum) -- report-time Poisson series over the finished curve, evaluated single-threaded in fixed j order; not a cross-chunk accumulator
    availability += p_j * curve[j - 1].p_connected;
  }
  return availability;
}

}  // namespace aspen
