// The Figure 10 comparison series: corresponding fat/Aspen tree pairs.
//
// Each pair is an n-level, k-port fat tree and the (n+1)-level Aspen tree
// with FTV <k/2−1, 0, …, 0> supporting the same hosts (§9.2).  The small
// pairs are simulated with the DES (bench_fig10_simulation); the large
// pairs use the analytic models here, exactly as the paper's Figs. 10(c)/(d)
// do ("since the model checker scales to at most a few hundred switches, we
// use additional analysis for mega data center sized networks").
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/aspen/tree_params.h"
#include "src/sim/simulator.h"

namespace aspen {

/// One fat/Aspen pair with all the Fig. 10(c)/(d) metrics.
struct PairPoint {
  int k = 0;
  int n_fat = 0;                ///< fat depth; Aspen depth is n_fat + 1
  std::uint64_t hosts = 0;

  TreeParams fat;
  TreeParams aspen;

  std::uint64_t fat_switches = 0;
  std::uint64_t aspen_switches = 0;
  double fat_switch_host_ratio = 0.0;
  double aspen_switch_host_ratio = 0.0;

  /// Switches reacting per failure, averaged over all links (Fig. 10(c)).
  double lsp_react = 0.0;             ///< = all switches in the fat tree
  double anp_react = 0.0;             ///< analytic wave model
  double lsp_react_host_ratio = 0.0;
  double anp_react_host_ratio = 0.0;

  /// Average convergence (Fig. 10(d)): hops and the ms estimate from the
  /// §9.2 constants, averaged over failures at levels 1..n.
  double lsp_avg_hops = 0.0;
  double anp_avg_hops = 0.0;
  SimTime lsp_avg_ms = 0.0;
  SimTime anp_avg_ms = 0.0;

  /// "hosts:k=#,n=#,#" — the x-axis label style of Fig. 10(c)/(d).
  [[nodiscard]] std::string label() const;
};

/// Builds the pair and fills every metric analytically.
[[nodiscard]] PairPoint analyze_pair(int k, int n_fat,
                                     const DelayModel& delays = {});

/// The small simulated configurations of Figs. 10(a)/(b):
/// (k=4,n=3), (k=6,n=3), (k=8,n=3), (k=4,n=4).
[[nodiscard]] std::vector<PairPoint> figure10_small_series(
    const DelayModel& delays = {});

/// The sixteen large configurations of Figs. 10(c)/(d).
[[nodiscard]] std::vector<PairPoint> figure10_large_series(
    const DelayModel& delays = {});

}  // namespace aspen
