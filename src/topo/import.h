// Topology import: rebuild a Topology from an explicit link list.
//
// Round-trips the CSV produced by export.h and, more importantly, admits
// *arbitrary* wirings — including ones our generator would never produce,
// like the disconnected striping of Fig. 6(c).  That is exactly what the
// §7 validator exists to catch, so import + validate is the supported path
// for auditing externally-designed fabrics.
#pragma once

#include <string>
#include <vector>

#include "src/aspen/tree_params.h"
#include "src/topo/topology.h"

namespace aspen {

/// One link of a custom wiring: the upper endpoint is always a switch; the
/// lower endpoint is a switch one level down, or a host for L1 links.
struct LinkSpec {
  SwitchId upper;
  /// Lower endpoint: a switch id, or a host id when `lower_is_host`.
  std::uint32_t lower = 0;
  bool lower_is_host = false;
};

/// Builds a topology with the given explicit link list instead of a
/// striping policy.  Level structure, pod arithmetic and node numbering
/// follow `params`; the link list must have exactly params.total_links()
/// entries, connect adjacent levels only, and respect every port budget.
/// Wirings that violate the paper's *structural* constraints (pods,
/// coverage, §7) are accepted here and flagged by validate_topology().
[[nodiscard]] Topology build_custom_topology(
    const TreeParams& params, const std::vector<LinkSpec>& links);

/// Parses the CSV format emitted by to_csv() back into a link list.
[[nodiscard]] std::vector<LinkSpec> parse_links_csv(const std::string& csv);

/// Convenience: to_csv → parse → build.
[[nodiscard]] Topology import_topology_csv(const TreeParams& params,
                                           const std::string& csv);

}  // namespace aspen
