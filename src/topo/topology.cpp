#include "src/topo/topology.h"

#include <limits>
#include <sstream>

#include "src/util/contracts.h"
#include "src/util/status.h"

namespace aspen {

Topology Topology::build(const TreeParams& params,
                         const StripingConfig& striping) {
  params.validate();
  const Striper striper(params, striping);

  Topology t;
  t.params_ = params;
  t.striping_ = striping;
  t.num_switches_ = params.total_switches();
  t.num_hosts_ = params.num_hosts();

  // Bottom-up level offsets: L_1 switches first.
  t.level_offset_.assign(static_cast<std::size_t>(params.n) + 1, 0);
  std::uint64_t offset = 0;
  for (Level i = 1; i <= params.n; ++i) {
    t.level_offset_[static_cast<std::size_t>(i)] = offset;
    offset += params.switches_at_level(i);
  }
  ASPEN_CHECK(offset == t.num_switches_, "switch count mismatch");

  t.switch_level_.resize(t.num_switches_);
  for (Level i = 1; i <= params.n; ++i) {
    const std::uint64_t base = t.level_offset_[static_cast<std::size_t>(i)];
    for (std::uint64_t j = 0; j < params.switches_at_level(i); ++j) {
      t.switch_level_[base + j] = i;
    }
  }

  t.link_upper_.reserve(params.total_links());
  t.link_lower_.reserve(params.total_links());
  t.link_level_.reserve(params.total_links());

  // Host links: k/2 hosts per L_1 switch, contiguous host ids.
  const auto half_k = static_cast<std::uint64_t>(params.k) / 2;
  for (std::uint64_t e = 0; e < params.S; ++e) {
    const SwitchId edge = t.switch_at(1, e);
    for (std::uint64_t j = 0; j < half_k; ++j) {
      const HostId h{static_cast<std::uint32_t>(e * half_k + j)};
      t.add_link(t.node_of(edge), t.node_of(h), 1);
    }
  }

  ASPEN_ASSERT(t.num_links() == t.num_hosts_,
               "built ", t.num_links(), " host links for ", t.num_hosts_,
               " hosts");

  // Inter-switch links, level by level (L_2→L_1 upward).  Pods at L_{i-1}
  // partition among L_i pods: child pod id = parent_pod · r_i + ordinal.
  for (Level i = 2; i <= params.n; ++i) {
    const auto ui = static_cast<std::size_t>(i);
    const std::uint64_t pi = params.p[ui];
    const std::uint64_t mi = params.m[ui];
    const std::uint64_t ri = params.r[ui];
    const std::uint64_t ci = params.c[ui];
    const std::uint64_t m_below = params.m[ui - 1];
    for (std::uint64_t pod = 0; pod < pi; ++pod) {
      for (std::uint64_t a = 0; a < mi; ++a) {
        const SwitchId upper = t.switch_at(i, pod * mi + a);
        for (std::uint64_t b = 0; b < ri; ++b) {
          const std::uint64_t child_pod = pod * ri + b;
          for (std::uint64_t z = 0; z < ci; ++z) {
            const std::uint64_t member =
                striper.child_member(i, pod, b, a, z);
            ASPEN_ASSERT(member < m_below, "striper picked member ", member,
                         " in a pod of ", m_below, " switches");
            const SwitchId lower =
                t.switch_at(i - 1, child_pod * m_below + member);
            t.add_link(t.node_of(upper), t.node_of(lower), i);
          }
        }
      }
    }
  }

  ASPEN_CHECK(t.num_links() == params.total_links(),
              "built ", t.num_links(), " links, expected ",
              params.total_links());
  t.finalize_adjacency();
  return t;
}

LinkId Topology::add_link(NodeId upper, NodeId lower, Level upper_level) {
  const LinkId id{static_cast<std::uint32_t>(link_upper_.size())};
  link_upper_.push_back(upper);
  link_lower_.push_back(lower);
  link_level_.push_back(static_cast<std::uint8_t>(upper_level));
  return id;
}

void Topology::finalize_adjacency() {
  const std::uint64_t num_links = link_upper_.size();
  host_up_.assign(num_hosts_, Neighbor{});

  // Pass 1 — per-switch degree counts.  A link at upper_level 1 hangs a
  // host below an L_1 switch (down slot only); higher links take a down
  // slot on `upper` and an up slot on `lower`.
  std::vector<std::uint32_t> up_deg(num_switches_, 0);
  std::vector<std::uint32_t> down_deg(num_switches_, 0);
  for (std::uint64_t l = 0; l < num_links; ++l) {
    ++down_deg[link_upper_[l].value()];
    if (link_level_[l] > 1) ++up_deg[link_lower_[l].value()];
  }

  // Prefix sums: [begin, split) up, [split, next begin) down.
  adj_begin_.assign(num_switches_ + 1, 0);
  adj_split_.assign(num_switches_, 0);
  std::uint64_t offset = 0;
  for (std::uint64_t s = 0; s < num_switches_; ++s) {
    adj_begin_[s] = static_cast<std::uint32_t>(offset);
    adj_split_[s] = static_cast<std::uint32_t>(offset + up_deg[s]);
    offset += up_deg[s] + down_deg[s];
  }
  ASPEN_CHECK(offset <= std::numeric_limits<std::uint32_t>::max(),
              "adjacency pool exceeds 32-bit offsets");
  adj_begin_[num_switches_] = static_cast<std::uint32_t>(offset);
  adj_.assign(offset, Neighbor{});

  // Pass 2 — fill, in link-id order, which reproduces the push order of
  // the per-switch vectors this layout replaced.
  std::vector<std::uint32_t> up_cursor(adj_begin_.begin(),
                                       adj_begin_.end() - 1);
  std::vector<std::uint32_t> down_cursor(adj_split_);
  for (std::uint64_t l = 0; l < num_links; ++l) {
    const LinkId id{static_cast<std::uint32_t>(l)};
    const NodeId upper = link_upper_[l];
    const NodeId lower = link_lower_[l];
    adj_[down_cursor[upper.value()]++] = Neighbor{lower, id};
    if (link_level_[l] > 1) {
      adj_[up_cursor[lower.value()]++] = Neighbor{upper, id};
    } else {
      host_up_[host_of(lower).value()] = Neighbor{upper, id};
    }
  }

  // Per-level link pool, link-id order within each level.
  const auto num_levels = static_cast<std::size_t>(params_.n);
  std::vector<std::uint32_t> level_count(num_levels + 1, 0);
  for (std::uint64_t l = 0; l < num_links; ++l) ++level_count[link_level_[l]];
  level_links_begin_.assign(num_levels + 2, 0);
  std::uint32_t level_offset = 0;
  for (std::size_t i = 1; i <= num_levels; ++i) {
    level_links_begin_[i] = level_offset;
    level_offset += level_count[i];
  }
  level_links_begin_[num_levels + 1] = level_offset;
  level_links_.assign(num_links, LinkId{});
  std::vector<std::uint32_t> level_cursor(level_links_begin_.begin(),
                                          level_links_begin_.end() - 1);
  for (std::uint64_t l = 0; l < num_links; ++l) {
    level_links_[level_cursor[link_level_[l]]++] =
        LinkId{static_cast<std::uint32_t>(l)};
  }
}

NodeId Topology::node_of(SwitchId s) const {
  ASPEN_REQUIRE(s.value() < num_switches_, "switch id out of range");
  return NodeId{s.value()};
}

NodeId Topology::node_of(HostId h) const {
  ASPEN_REQUIRE(h.value() < num_hosts_, "host id out of range");
  return NodeId{static_cast<std::uint32_t>(num_switches_ + h.value())};
}

bool Topology::is_switch_node(NodeId node) const {
  return node.value() < num_switches_;
}

SwitchId Topology::switch_of(NodeId node) const {
  ASPEN_REQUIRE(is_switch_node(node), "node ", node.value(),
                " is not a switch");
  return SwitchId{node.value()};
}

HostId Topology::host_of(NodeId node) const {
  ASPEN_REQUIRE(!is_switch_node(node) && node.value() < num_nodes(),
                "node is not a host");
  return HostId{static_cast<std::uint32_t>(node.value() - num_switches_)};
}

SwitchId Topology::switch_at(Level level, std::uint64_t index) const {
  ASPEN_REQUIRE(level >= 1 && level <= params_.n, "level out of range");
  ASPEN_REQUIRE(index < params_.switches_at_level(level),
                "switch index out of range at level ", level);
  return SwitchId{static_cast<std::uint32_t>(
      level_offset_[static_cast<std::size_t>(level)] + index)};
}

Level Topology::level_of(SwitchId s) const {
  ASPEN_REQUIRE(s.value() < num_switches_, "switch id out of range");
  return switch_level_[s.value()];
}

std::uint64_t Topology::index_in_level(SwitchId s) const {
  const Level level = level_of(s);
  return s.value() - level_offset_[static_cast<std::size_t>(level)];
}

std::uint64_t Topology::pods_at_level(Level level) const {
  ASPEN_REQUIRE(level >= 1 && level <= params_.n, "level out of range");
  return params_.p[static_cast<std::size_t>(level)];
}

PodId Topology::pod_of(SwitchId s) const {
  const Level level = level_of(s);
  const std::uint64_t m = params_.m[static_cast<std::size_t>(level)];
  const auto pod = PodId{static_cast<std::uint32_t>(index_in_level(s) / m)};
  ASPEN_ASSERT(pod.value() < pods_at_level(level), "switch ", s.value(),
               " maps to pod ", pod.value(), " of ", pods_at_level(level));
  return pod;
}

std::uint64_t Topology::member_index(SwitchId s) const {
  const Level level = level_of(s);
  const std::uint64_t m = params_.m[static_cast<std::size_t>(level)];
  return index_in_level(s) % m;
}

SwitchRange Topology::pod_members(Level level, PodId pod) const {
  ASPEN_REQUIRE(pod.value() < pods_at_level(level), "pod out of range");
  const std::uint64_t m = params_.m[static_cast<std::size_t>(level)];
  return {switch_at(level, pod.value() * m).value(), m};
}

PodId Topology::parent_pod(Level level, PodId pod) const {
  ASPEN_REQUIRE(level >= 1 && level < params_.n,
                "parent_pod: level must be below the top");
  ASPEN_REQUIRE(pod.value() < pods_at_level(level), "pod out of range");
  const std::uint64_t r = params_.r[static_cast<std::size_t>(level) + 1];
  const auto parent = PodId{static_cast<std::uint32_t>(pod.value() / r)};
  ASPEN_ASSERT(parent.value() < pods_at_level(level + 1),
               "parent pod ", parent.value(), " out of range at level ",
               level + 1);
  return parent;
}

PodRange Topology::child_pods(Level level, PodId pod) const {
  ASPEN_REQUIRE(level >= 2 && level <= params_.n,
                "child_pods: level must be >= 2");
  ASPEN_REQUIRE(pod.value() < pods_at_level(level), "pod out of range");
  const std::uint64_t r = params_.r[static_cast<std::size_t>(level)];
  return {static_cast<std::uint64_t>(pod.value()) * r, r};
}

SwitchId Topology::edge_switch_of(HostId h) const {
  ASPEN_REQUIRE(h.value() < num_hosts_, "host id out of range");
  const auto half_k = static_cast<std::uint64_t>(params_.k) / 2;
  return switch_at(1, h.value() / half_k);
}

HostRange Topology::hosts_of_edge(SwitchId s) const {
  ASPEN_REQUIRE(level_of(s) == 1, "hosts attach only to L1 switches");
  const auto half_k = static_cast<std::uint64_t>(params_.k) / 2;
  return {index_in_level(s) * half_k, half_k};
}

std::span<const Topology::Neighbor> Topology::up_neighbors(SwitchId s) const {
  ASPEN_REQUIRE(s.value() < num_switches_, "switch id out of range");
  return {adj_.data() + adj_begin_[s.value()],
          adj_split_[s.value()] - adj_begin_[s.value()]};
}

std::span<const Topology::Neighbor> Topology::down_neighbors(
    SwitchId s) const {
  ASPEN_REQUIRE(s.value() < num_switches_, "switch id out of range");
  return {adj_.data() + adj_split_[s.value()],
          adj_begin_[s.value() + 1] - adj_split_[s.value()]};
}

Topology::Neighbor Topology::host_uplink(HostId h) const {
  ASPEN_REQUIRE(h.value() < num_hosts_, "host id out of range");
  return host_up_[h.value()];
}

Topology::LinkRec Topology::link(LinkId id) const {
  ASPEN_REQUIRE(id.value() < num_links(), "link id out of range");
  return LinkRec{link_upper_[id.value()], link_lower_[id.value()],
                 static_cast<Level>(link_level_[id.value()])};
}

void Topology::links_between(SwitchId upper, SwitchId lower,
                             std::vector<LinkId>& out) const {
  out.clear();
  const NodeId lower_node = node_of(lower);
  for (const Neighbor& nb : down_neighbors(upper)) {
    if (nb.node == lower_node) out.push_back(nb.link);
  }
}

LinkId Topology::find_link(SwitchId upper, SwitchId lower) const {
  const NodeId lower_node = node_of(lower);
  for (const Neighbor& nb : down_neighbors(upper)) {
    if (nb.node == lower_node) return nb.link;
  }
  return LinkId::invalid();
}

std::span<const LinkId> Topology::links_at_level(Level level) const {
  ASPEN_REQUIRE(level >= 1 && level <= params_.n, "level out of range");
  const auto i = static_cast<std::size_t>(level);
  return {level_links_.data() + level_links_begin_[i],
          level_links_begin_[i + 1] - level_links_begin_[i]};
}

std::string Topology::describe() const {
  std::ostringstream os;
  os << params_.to_string() << " striping=" << striping_.to_string()
     << " switches=" << num_switches_ << " hosts=" << num_hosts_
     << " links=" << num_links();
  return os.str();
}

}  // namespace aspen
