#include "src/topo/topology.h"

#include <sstream>

#include "src/util/contracts.h"
#include "src/util/status.h"

namespace aspen {

Topology Topology::build(const TreeParams& params,
                         const StripingConfig& striping) {
  params.validate();
  const Striper striper(params, striping);

  Topology t;
  t.params_ = params;
  t.striping_ = striping;
  t.num_switches_ = params.total_switches();
  t.num_hosts_ = params.num_hosts();

  // Bottom-up level offsets: L_1 switches first.
  t.level_offset_.assign(static_cast<std::size_t>(params.n) + 1, 0);
  std::uint64_t offset = 0;
  for (Level i = 1; i <= params.n; ++i) {
    t.level_offset_[static_cast<std::size_t>(i)] = offset;
    offset += params.switches_at_level(i);
  }
  ASPEN_CHECK(offset == t.num_switches_, "switch count mismatch");

  t.switch_level_.resize(t.num_switches_);
  for (Level i = 1; i <= params.n; ++i) {
    const std::uint64_t base = t.level_offset_[static_cast<std::size_t>(i)];
    for (std::uint64_t j = 0; j < params.switches_at_level(i); ++j) {
      t.switch_level_[base + j] = i;
    }
  }

  t.up_.resize(t.num_switches_);
  t.down_.resize(t.num_switches_);
  t.host_up_.resize(t.num_hosts_);

  const auto add_link = [&t](NodeId upper, NodeId lower, Level upper_level) {
    const LinkId id{static_cast<std::uint32_t>(t.links_.size())};
    t.links_.push_back(LinkRec{upper, lower, upper_level});
    return id;
  };

  // Host links: k/2 hosts per L_1 switch, contiguous host ids.
  const auto half_k = static_cast<std::uint64_t>(params.k) / 2;
  for (std::uint64_t e = 0; e < params.S; ++e) {
    const SwitchId edge = t.switch_at(1, e);
    for (std::uint64_t j = 0; j < half_k; ++j) {
      const HostId h{static_cast<std::uint32_t>(e * half_k + j)};
      const LinkId id = add_link(t.node_of(edge), t.node_of(h), 1);
      t.down_[edge.value()].push_back(Neighbor{t.node_of(h), id});
      t.host_up_[h.value()] = Neighbor{t.node_of(edge), id};
    }
  }

  ASPEN_ASSERT(t.links_.size() == t.num_hosts_,
               "built ", t.links_.size(), " host links for ", t.num_hosts_,
               " hosts");

  // Inter-switch links, level by level (L_2→L_1 upward).  Pods at L_{i-1}
  // partition among L_i pods: child pod id = parent_pod · r_i + ordinal.
  for (Level i = 2; i <= params.n; ++i) {
    const auto ui = static_cast<std::size_t>(i);
    const std::uint64_t pi = params.p[ui];
    const std::uint64_t mi = params.m[ui];
    const std::uint64_t ri = params.r[ui];
    const std::uint64_t ci = params.c[ui];
    const std::uint64_t m_below = params.m[ui - 1];
    for (std::uint64_t pod = 0; pod < pi; ++pod) {
      for (std::uint64_t a = 0; a < mi; ++a) {
        const SwitchId upper = t.switch_at(i, pod * mi + a);
        for (std::uint64_t b = 0; b < ri; ++b) {
          const std::uint64_t child_pod = pod * ri + b;
          for (std::uint64_t z = 0; z < ci; ++z) {
            const std::uint64_t member =
                striper.child_member(i, pod, b, a, z);
            ASPEN_ASSERT(member < m_below, "striper picked member ", member,
                         " in a pod of ", m_below, " switches");
            const SwitchId lower =
                t.switch_at(i - 1, child_pod * m_below + member);
            const LinkId id = add_link(t.node_of(upper), t.node_of(lower), i);
            t.down_[upper.value()].push_back(
                Neighbor{t.node_of(lower), id});
            t.up_[lower.value()].push_back(Neighbor{t.node_of(upper), id});
          }
        }
      }
    }
  }

  ASPEN_CHECK(t.links_.size() == params.total_links(),
              "built ", t.links_.size(), " links, expected ",
              params.total_links());
  return t;
}

NodeId Topology::node_of(SwitchId s) const {
  ASPEN_REQUIRE(s.value() < num_switches_, "switch id out of range");
  return NodeId{s.value()};
}

NodeId Topology::node_of(HostId h) const {
  ASPEN_REQUIRE(h.value() < num_hosts_, "host id out of range");
  return NodeId{static_cast<std::uint32_t>(num_switches_ + h.value())};
}

bool Topology::is_switch_node(NodeId node) const {
  return node.value() < num_switches_;
}

SwitchId Topology::switch_of(NodeId node) const {
  ASPEN_REQUIRE(is_switch_node(node), "node ", node.value(),
                " is not a switch");
  return SwitchId{node.value()};
}

HostId Topology::host_of(NodeId node) const {
  ASPEN_REQUIRE(!is_switch_node(node) && node.value() < num_nodes(),
                "node is not a host");
  return HostId{static_cast<std::uint32_t>(node.value() - num_switches_)};
}

SwitchId Topology::switch_at(Level level, std::uint64_t index) const {
  ASPEN_REQUIRE(level >= 1 && level <= params_.n, "level out of range");
  ASPEN_REQUIRE(index < params_.switches_at_level(level),
                "switch index out of range at level ", level);
  return SwitchId{static_cast<std::uint32_t>(
      level_offset_[static_cast<std::size_t>(level)] + index)};
}

Level Topology::level_of(SwitchId s) const {
  ASPEN_REQUIRE(s.value() < num_switches_, "switch id out of range");
  return switch_level_[s.value()];
}

std::uint64_t Topology::index_in_level(SwitchId s) const {
  const Level level = level_of(s);
  return s.value() - level_offset_[static_cast<std::size_t>(level)];
}

std::uint64_t Topology::pods_at_level(Level level) const {
  ASPEN_REQUIRE(level >= 1 && level <= params_.n, "level out of range");
  return params_.p[static_cast<std::size_t>(level)];
}

PodId Topology::pod_of(SwitchId s) const {
  const Level level = level_of(s);
  const std::uint64_t m = params_.m[static_cast<std::size_t>(level)];
  const auto pod = PodId{static_cast<std::uint32_t>(index_in_level(s) / m)};
  ASPEN_ASSERT(pod.value() < pods_at_level(level), "switch ", s.value(),
               " maps to pod ", pod.value(), " of ", pods_at_level(level));
  return pod;
}

std::uint64_t Topology::member_index(SwitchId s) const {
  const Level level = level_of(s);
  const std::uint64_t m = params_.m[static_cast<std::size_t>(level)];
  return index_in_level(s) % m;
}

std::vector<SwitchId> Topology::pod_members(Level level, PodId pod) const {
  ASPEN_REQUIRE(pod.value() < pods_at_level(level), "pod out of range");
  const std::uint64_t m = params_.m[static_cast<std::size_t>(level)];
  std::vector<SwitchId> members;
  members.reserve(m);
  for (std::uint64_t j = 0; j < m; ++j) {
    members.push_back(switch_at(level, pod.value() * m + j));
  }
  return members;
}

PodId Topology::parent_pod(Level level, PodId pod) const {
  ASPEN_REQUIRE(level >= 1 && level < params_.n,
                "parent_pod: level must be below the top");
  ASPEN_REQUIRE(pod.value() < pods_at_level(level), "pod out of range");
  const std::uint64_t r = params_.r[static_cast<std::size_t>(level) + 1];
  const auto parent = PodId{static_cast<std::uint32_t>(pod.value() / r)};
  ASPEN_ASSERT(parent.value() < pods_at_level(level + 1),
               "parent pod ", parent.value(), " out of range at level ",
               level + 1);
  return parent;
}

std::vector<PodId> Topology::child_pods(Level level, PodId pod) const {
  ASPEN_REQUIRE(level >= 2 && level <= params_.n,
                "child_pods: level must be >= 2");
  ASPEN_REQUIRE(pod.value() < pods_at_level(level), "pod out of range");
  const std::uint64_t r = params_.r[static_cast<std::size_t>(level)];
  std::vector<PodId> children;
  children.reserve(r);
  for (std::uint64_t b = 0; b < r; ++b) {
    children.push_back(
        PodId{static_cast<std::uint32_t>(pod.value() * r + b)});
  }
  return children;
}

SwitchId Topology::edge_switch_of(HostId h) const {
  ASPEN_REQUIRE(h.value() < num_hosts_, "host id out of range");
  const auto half_k = static_cast<std::uint64_t>(params_.k) / 2;
  return switch_at(1, h.value() / half_k);
}

std::vector<HostId> Topology::hosts_of_edge(SwitchId s) const {
  ASPEN_REQUIRE(level_of(s) == 1, "hosts attach only to L1 switches");
  const auto half_k = static_cast<std::uint64_t>(params_.k) / 2;
  const std::uint64_t base = index_in_level(s) * half_k;
  std::vector<HostId> hosts;
  hosts.reserve(half_k);
  for (std::uint64_t j = 0; j < half_k; ++j) {
    hosts.push_back(HostId{static_cast<std::uint32_t>(base + j)});
  }
  return hosts;
}

std::span<const Topology::Neighbor> Topology::up_neighbors(SwitchId s) const {
  ASPEN_REQUIRE(s.value() < num_switches_, "switch id out of range");
  return up_[s.value()];
}

std::span<const Topology::Neighbor> Topology::down_neighbors(
    SwitchId s) const {
  ASPEN_REQUIRE(s.value() < num_switches_, "switch id out of range");
  return down_[s.value()];
}

Topology::Neighbor Topology::host_uplink(HostId h) const {
  ASPEN_REQUIRE(h.value() < num_hosts_, "host id out of range");
  return host_up_[h.value()];
}

const Topology::LinkRec& Topology::link(LinkId id) const {
  ASPEN_REQUIRE(id.value() < links_.size(), "link id out of range");
  return links_[id.value()];
}

std::vector<LinkId> Topology::links_between(SwitchId upper,
                                            SwitchId lower) const {
  std::vector<LinkId> result;
  const NodeId lower_node = node_of(lower);
  for (const Neighbor& nb : down_neighbors(upper)) {
    if (nb.node == lower_node) result.push_back(nb.link);
  }
  return result;
}

LinkId Topology::find_link(SwitchId upper, SwitchId lower) const {
  const NodeId lower_node = node_of(lower);
  for (const Neighbor& nb : down_neighbors(upper)) {
    if (nb.node == lower_node) return nb.link;
  }
  return LinkId::invalid();
}

std::vector<LinkId> Topology::links_at_level(Level level) const {
  ASPEN_REQUIRE(level >= 1 && level <= params_.n, "level out of range");
  std::vector<LinkId> result;
  for (std::uint32_t id = 0; id < links_.size(); ++id) {
    if (links_[id].upper_level == level) result.push_back(LinkId{id});
  }
  return result;
}

std::string Topology::describe() const {
  std::ostringstream os;
  os << params_.to_string() << " striping=" << striping_.to_string()
     << " switches=" << num_switches_ << " hosts=" << num_hosts_
     << " links=" << num_links();
  return os.str();
}

}  // namespace aspen
