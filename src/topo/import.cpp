#include "src/topo/import.h"

#include <sstream>

#include "src/util/contracts.h"
#include "src/util/status.h"

namespace aspen {

Topology build_custom_topology(const TreeParams& params,
                               const std::vector<LinkSpec>& links) {
  params.validate();
  ASPEN_REQUIRE(links.size() == params.total_links(), "expected ",
                params.total_links(), " links, got ", links.size());

  Topology t;
  t.params_ = params;
  t.striping_ = StripingConfig{};  // label only; wiring is explicit
  t.num_switches_ = params.total_switches();
  t.num_hosts_ = params.num_hosts();

  t.level_offset_.assign(static_cast<std::size_t>(params.n) + 1, 0);
  std::uint64_t offset = 0;
  for (Level i = 1; i <= params.n; ++i) {
    t.level_offset_[static_cast<std::size_t>(i)] = offset;
    offset += params.switches_at_level(i);
  }
  t.switch_level_.resize(t.num_switches_);
  for (Level i = 1; i <= params.n; ++i) {
    const std::uint64_t base = t.level_offset_[static_cast<std::size_t>(i)];
    for (std::uint64_t j = 0; j < params.switches_at_level(i); ++j) {
      t.switch_level_[base + j] = i;
    }
  }

  std::vector<char> host_wired(t.num_hosts_, 0);
  for (const LinkSpec& spec : links) {
    ASPEN_REQUIRE(spec.upper.value() < t.num_switches_,
                  "upper switch out of range");
    const Level upper_level = t.switch_level_[spec.upper.value()];
    const NodeId upper_node = t.node_of(spec.upper);

    if (spec.lower_is_host) {
      ASPEN_REQUIRE(upper_level == 1, "hosts attach only to L1 switches");
      const HostId host{spec.lower};
      ASPEN_REQUIRE(host.value() < t.num_hosts_, "host out of range");
      ASPEN_REQUIRE(!host_wired[host.value()], "host ", host.value(),
                    " wired twice");
      ASPEN_REQUIRE(t.edge_switch_of(host) == spec.upper,
                    "host ", host.value(),
                    " must attach to its numbering edge switch");
      host_wired[host.value()] = 1;
      t.add_link(upper_node, t.node_of(host), 1);
      continue;
    }

    const SwitchId lower{spec.lower};
    ASPEN_REQUIRE(lower.value() < t.num_switches_,
                  "lower switch out of range");
    ASPEN_REQUIRE(t.switch_level_[lower.value()] == upper_level - 1,
                  "links must connect adjacent levels (", upper_level,
                  " vs ", t.switch_level_[lower.value()], ")");
    t.add_link(upper_node, t.node_of(lower), upper_level);
  }

  for (std::uint32_t h = 0; h < t.num_hosts_; ++h) {
    ASPEN_REQUIRE(host_wired[h], "host ", h, " is not wired");
  }
  ASPEN_ASSERT(t.num_links() == params.total_links(),
               "imported link count diverged from the spec count");
  t.finalize_adjacency();

  // Port budgets: every switch must use exactly k ports, every host one.
  for (std::uint32_t v = 0; v < t.num_switches_; ++v) {
    const SwitchId s{v};
    const std::uint64_t used =
        t.up_neighbors(s).size() + t.down_neighbors(s).size();
    ASPEN_REQUIRE(used == static_cast<std::uint64_t>(params.k),
                  "switch ", v, " uses ", used, " ports, expected ",
                  params.k);
  }
  return t;
}

std::vector<LinkSpec> parse_links_csv(const std::string& csv) {
  std::vector<LinkSpec> links;
  std::istringstream is(csv);
  std::string line;
  bool first = true;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    if (first) {
      first = false;
      ASPEN_REQUIRE(line.rfind("link_id,", 0) == 0,
                    "missing CSV header: '", line, "'");
      continue;
    }
    // Format: link_id,upper,lower,level — endpoints like "s12" / "h3".
    std::istringstream cells(line);
    std::string id_cell;
    std::string upper_cell;
    std::string lower_cell;
    std::string level_cell;
    ASPEN_REQUIRE(std::getline(cells, id_cell, ',') &&
                      std::getline(cells, upper_cell, ',') &&
                      std::getline(cells, lower_cell, ',') &&
                      std::getline(cells, level_cell, ','),
                  "malformed CSV row: '", line, "'");
    ASPEN_REQUIRE(!upper_cell.empty() && upper_cell[0] == 's',
                  "upper endpoint must be a switch: '", upper_cell, "'");
    ASPEN_REQUIRE(!lower_cell.empty() &&
                      (lower_cell[0] == 's' || lower_cell[0] == 'h'),
                  "bad lower endpoint: '", lower_cell, "'");
    LinkSpec spec;
    spec.upper = SwitchId{static_cast<std::uint32_t>(
        std::stoul(upper_cell.substr(1)))};
    spec.lower =
        static_cast<std::uint32_t>(std::stoul(lower_cell.substr(1)));
    spec.lower_is_host = lower_cell[0] == 'h';
    links.push_back(spec);
  }
  return links;
}

Topology import_topology_csv(const TreeParams& params,
                             const std::string& csv) {
  return build_custom_topology(params, parse_links_csv(csv));
}

}  // namespace aspen
