#include "src/topo/export.h"

#include <sstream>

namespace aspen {

namespace {

std::string node_name(const Topology& topo, NodeId node) {
  return topo.is_switch_node(node) ? to_string(topo.switch_of(node))
                                   : to_string(topo.host_of(node));
}

}  // namespace

std::string to_dot(const Topology& topo, const DotOptions& options) {
  std::ostringstream os;
  os << "graph aspen {\n";
  os << "  // " << topo.describe() << "\n";
  os << "  node [shape=box];\n";

  if (options.rank_by_level) {
    for (Level i = topo.levels(); i >= 1; --i) {
      os << "  { rank=same; ";
      for (std::uint64_t idx = 0;
           idx < topo.params().switches_at_level(i); ++idx) {
        os << to_string(topo.switch_at(i, idx)) << "; ";
      }
      os << "}\n";
    }
    if (options.include_hosts) {
      os << "  { rank=same; ";
      for (std::uint32_t h = 0; h < topo.num_hosts(); ++h) {
        os << to_string(HostId{h}) << "; ";
      }
      os << "}\n";
    }
  }
  if (options.include_hosts) {
    for (std::uint32_t h = 0; h < topo.num_hosts(); ++h) {
      os << "  " << to_string(HostId{h}) << " [shape=ellipse];\n";
    }
  }

  for (std::uint32_t id = 0; id < topo.num_links(); ++id) {
    const Topology::LinkRec& link = topo.link(LinkId{id});
    const bool host_link = !topo.is_switch_node(link.lower);
    if (host_link && !options.include_hosts) continue;
    os << "  " << node_name(topo, link.upper) << " -- "
       << node_name(topo, link.lower) << ";\n";
  }
  os << "}\n";
  return os.str();
}

std::string to_csv(const Topology& topo) {
  std::ostringstream os;
  os << "link_id,upper,lower,level\n";
  for (std::uint32_t id = 0; id < topo.num_links(); ++id) {
    const Topology::LinkRec& link = topo.link(LinkId{id});
    os << id << ',' << node_name(topo, link.upper) << ','
       << node_name(topo, link.lower) << ',' << link.upper_level << '\n';
  }
  return os.str();
}

}  // namespace aspen
