#include "src/topo/striping.h"

#include <vector>

#include "src/util/contracts.h"
#include "src/util/rng.h"
#include "src/util/status.h"

namespace aspen {

std::string to_string(StripingKind kind) {
  switch (kind) {
    case StripingKind::kStandard: return "standard";
    case StripingKind::kRotated: return "rotated";
    case StripingKind::kRandom: return "random";
    case StripingKind::kParallelHeavy: return "parallel-heavy";
  }
  return "unknown";
}

std::string StripingConfig::to_string() const {
  std::string s = aspen::to_string(kind);
  if (kind == StripingKind::kRandom) s += "(seed=" + std::to_string(seed) + ")";
  return s;
}

Striper::Striper(const TreeParams& params, StripingConfig config)
    : params_(params), config_(config) {
  params_.validate();
}

std::uint64_t Striper::child_member(Level i, std::uint64_t parent_pod,
                                    std::uint64_t child_ordinal,
                                    std::uint64_t parent_member,
                                    std::uint64_t z) const {
  const auto ui = static_cast<std::size_t>(i);
  ASPEN_REQUIRE(i >= 2 && i <= params_.n, "striping level ", i,
                " out of range");
  const std::uint64_t ci = params_.c[ui];
  const std::uint64_t mi = params_.m[ui];
  const std::uint64_t m_below = params_.m[ui - 1];
  ASPEN_REQUIRE(parent_pod < params_.p[ui], "parent pod out of range");
  ASPEN_REQUIRE(child_ordinal < params_.r[ui], "child ordinal out of range");
  ASPEN_REQUIRE(parent_member < mi, "parent member out of range");
  ASPEN_REQUIRE(z < ci, "link ordinal out of range");

  switch (config_.kind) {
    case StripingKind::kStandard:
      return (parent_member * ci + z) % m_below;
    case StripingKind::kRotated:
      return (parent_member * ci + z + child_ordinal) % m_below;
    case StripingKind::kParallelHeavy:
      return parent_member % m_below;
    case StripingKind::kRandom:
      return random_member(i, parent_pod, child_ordinal, parent_member, z);
  }
  ASPEN_CHECK(false, "unreachable striping kind");
}

std::uint64_t Striper::random_member(Level i, std::uint64_t parent_pod,
                                     std::uint64_t child_ordinal,
                                     std::uint64_t parent_member,
                                     std::uint64_t z) const {
  const auto ui = static_cast<std::size_t>(i);
  const std::uint64_t ci = params_.c[ui];
  const std::uint64_t mi = params_.m[ui];
  const std::uint64_t m_below = params_.m[ui - 1];
  const std::uint64_t uplinks_per_child =
      mi * ci / m_below;  // = k/2, the child's full uplink budget

  // Deterministic per-(level, parent pod, child pod) deal: each child member
  // appears exactly `uplinks_per_child` times in a shuffled deck; parent
  // member a takes slots [a·c_i, (a+1)·c_i).
  const std::uint64_t pair_key =
      (static_cast<std::uint64_t>(i) << 48) ^ (parent_pod << 24) ^
      child_ordinal;
  // aspen-lint: allow(seed-arith) -- per-(parent,child-pod) wiring stream predating derive_stream_seed; changing the mixing would re-wire every random striping for a given seed
  Rng rng(config_.seed * 0x9E3779B97F4A7C15ULL + pair_key);
  std::vector<std::uint64_t> deck;
  deck.reserve(mi * ci);
  for (std::uint64_t member = 0; member < m_below; ++member) {
    for (std::uint64_t rep = 0; rep < uplinks_per_child; ++rep) {
      deck.push_back(member);
    }
  }
  rng.shuffle(deck);
  // Eq. 2: the deck holds each child member exactly k/2 times, so every
  // parent member's c_i-slot window is in bounds.
  ASPEN_ASSERT(deck.size() == mi * ci, "random striping deck covers ",
               deck.size(), " slots, expected ", mi * ci);
  ASPEN_ASSERT(parent_member * ci + z < deck.size(),
               "random striping slot out of range");
  return deck[parent_member * ci + z];
}

}  // namespace aspen
