// Topology and striping validation (§3, §7, §8.4).
//
// Checks that a built graph actually is the Aspen tree its parameters claim:
// port budgets, pod uniformity, the §4 constraint that every L_n switch
// covers every L_{n-1} pod, the §7 ANP striping requirement, and the §8.4
// bottleneck-pod pathology.  Used by tests on every enumerated tree and by
// the striping-lab example to show which wirings ANP can live with.
//
// Results are structured: every violated constraint becomes an AuditFinding
// (code + subject + expected/actual values), so callers can branch on *what*
// failed rather than parsing prose.  `problems` keeps the human-readable
// strings.  `aspen validate` prints both.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/topo/topology.h"
#include "src/util/contracts.h"

namespace aspen {

struct ValidationReport {
  /// Every switch uses exactly k ports and every host exactly 1.
  bool ports_ok = false;
  /// Every switch at L_i has exactly c_i links to each of its r_i child
  /// pods (§3's uniform-fault-tolerance requirement).
  bool uniform_fault_tolerance = false;
  /// Every L_n switch connects at least once to every L_{n-1} pod (§4);
  /// Fig. 6(c) violates this.
  bool top_level_coverage = false;
  /// §7: for every level L_i with c_i = 1 whose nearest fault-tolerant
  /// level above is L_f, each L_i switch shares an L_f ancestor with
  /// another member of its pod.  Vacuously true when no level above has
  /// fault tolerance.  Fig. 6(d)-style pure parallel wiring violates this.
  bool anp_striping_ok = false;
  /// Number of unordered switch pairs joined by more than one parallel
  /// link (informational; forced when c_i > m_{i-1}).
  std::uint64_t parallel_link_pairs = 0;
  /// §8.4: pods of size 1 at levels above L_1 ("bottleneck pods") —
  /// informational, as redundancy above them cannot mask failures below.
  std::vector<Level> bottleneck_pod_levels;

  /// One structured entry per violated constraint, with the offending
  /// switch/level and the expected vs. actual values.
  std::vector<AuditFinding> findings;
  /// Human-readable explanations for every failed check (parallel to
  /// `findings`, same order).
  std::vector<std::string> problems;

  [[nodiscard]] bool all_ok() const {
    return ports_ok && uniform_fault_tolerance && top_level_coverage &&
           anp_striping_ok;
  }

  /// Records one violation under both views.
  void add(AuditCode code, const std::string& message) {
    findings.push_back(AuditFinding{code, message});
    problems.push_back(message);
  }
};

/// Runs all structural checks against the topology.
[[nodiscard]] ValidationReport validate_topology(const Topology& topo);

}  // namespace aspen
