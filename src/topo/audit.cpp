#include "src/topo/audit.h"

#include <cstddef>
#include <sstream>

#include "src/topo/validate.h"

namespace aspen::topo {

namespace {

void check_eq1(const TreeParams& params, AuditReport& report) {
  for (Level i = 1; i <= params.n; ++i) {
    const auto idx = static_cast<std::size_t>(i);
    const std::uint64_t expected = (i == params.n) ? params.S / 2 : params.S;
    const std::uint64_t actual = params.p[idx] * params.m[idx];
    if (actual != expected) {
      std::ostringstream os;
      os << "Eq. 1 violated at L" << i << ": p_" << i << "*m_" << i << " = "
         << params.p[idx] << "*" << params.m[idx] << " = " << actual
         << ", expected " << expected << (i == params.n ? " (S/2)" : " (S)");
      report.add(AuditCode::kEq1Conservation, os.str());
    }
  }
}

void check_eq2(const TreeParams& params, AuditReport& report) {
  const auto k = static_cast<std::uint64_t>(params.k);
  for (Level i = 2; i <= params.n; ++i) {
    const auto idx = static_cast<std::size_t>(i);
    const std::uint64_t expected = (i == params.n) ? k : k / 2;
    const std::uint64_t actual = params.r[idx] * params.c[idx];
    if (actual != expected) {
      std::ostringstream os;
      os << "Eq. 2 violated at L" << i << ": r_" << i << "*c_" << i << " = "
         << params.r[idx] << "*" << params.c[idx] << " = " << actual
         << ", expected " << expected << (i == params.n ? " (k)" : " (k/2)");
      report.add(AuditCode::kEq2PortBudget, os.str());
    }
  }
}

void check_eq3(const TreeParams& params, AuditReport& report) {
  if (params.p[static_cast<std::size_t>(params.n)] != 1) {
    std::ostringstream os;
    os << "Eq. 3 boundary violated: p_n = "
       << params.p[static_cast<std::size_t>(params.n)] << ", expected 1";
    report.add(AuditCode::kEq3PodNesting, os.str());
  }
  for (Level i = 2; i <= params.n; ++i) {
    const auto idx = static_cast<std::size_t>(i);
    const std::uint64_t expected = params.p[idx - 1];
    const std::uint64_t actual = params.p[idx] * params.r[idx];
    if (actual != expected) {
      std::ostringstream os;
      os << "Eq. 3 violated at L" << i << ": p_" << i << "*r_" << i << " = "
         << params.p[idx] << "*" << params.r[idx] << " = " << actual
         << ", expected p_" << (i - 1) << " = " << expected;
      report.add(AuditCode::kEq3PodNesting, os.str());
    }
  }
}

void check_dcc(const TreeParams& params, AuditReport& report) {
  // Eq. 6 (§5.2): hosts = k^n / (2^{n-1}·DCC), i.e. hosts·DCC·2^{n-1} = k^n.
  // This ties S (through num_hosts) to the c vector, so a corrupted S or c
  // breaks it even when each equation's local form still multiplies out.
  const auto k = static_cast<std::uint64_t>(params.k);
  std::uint64_t k_pow_n = 1;
  for (int j = 0; j < params.n; ++j) k_pow_n *= k;
  const std::uint64_t actual =
      params.num_hosts() * params.dcc() * (1ULL << (params.n - 1));
  if (actual != k_pow_n) {
    std::ostringstream os;
    os << "DCC inconsistency (Eq. 6): hosts*DCC*2^(n-1) = "
       << params.num_hosts() << "*" << params.dcc() << "*"
       << (1ULL << (params.n - 1)) << " = " << actual << ", expected k^n = "
       << k_pow_n;
    report.add(AuditCode::kDccConsistency, os.str());
  }
}

std::string node_name(const Topology& topo, NodeId node) {
  return topo.is_switch_node(node) ? to_string(topo.switch_of(node))
                                   : to_string(topo.host_of(node));
}

void check_link_records(const Topology& topo, AuditReport& report) {
  // Every link record must have `upper` one level above `lower`, with
  // `upper_level` matching, and appear exactly once in each endpoint's
  // adjacency list (down for the upper node, up for the lower).
  std::vector<std::uint64_t> up_seen(topo.num_switches(), 0);
  std::vector<std::uint64_t> down_seen(topo.num_switches(), 0);
  std::vector<std::uint64_t> host_seen(topo.num_hosts(), 0);
  for (std::uint64_t raw = 0; raw < topo.num_links(); ++raw) {
    const LinkId id{static_cast<std::uint32_t>(raw)};
    const Topology::LinkRec& rec = topo.link(id);
    if (!topo.is_switch_node(rec.upper)) {
      std::ostringstream os;
      os << to_string(id) << ": upper endpoint " << node_name(topo, rec.upper)
         << " is a host";
      report.add(AuditCode::kLinkRecord, os.str());
      continue;
    }
    const SwitchId upper = topo.switch_of(rec.upper);
    const Level upper_level = topo.level_of(upper);
    if (upper_level != rec.upper_level) {
      std::ostringstream os;
      os << to_string(id) << ": upper_level says " << rec.upper_level
         << " but " << to_string(upper) << " sits at L" << upper_level;
      report.add(AuditCode::kLinkRecord, os.str());
    }
    if (topo.is_switch_node(rec.lower)) {
      const SwitchId lower = topo.switch_of(rec.lower);
      const Level lower_level = topo.level_of(lower);
      if (lower_level + 1 != upper_level) {
        std::ostringstream os;
        os << to_string(id) << ": endpoints " << to_string(upper) << " (L"
           << upper_level << ") and " << to_string(lower) << " (L"
           << lower_level << ") are not at adjacent levels";
        report.add(AuditCode::kLinkRecord, os.str());
      }
      ++up_seen[lower.value()];
    } else {
      if (upper_level != 1) {
        std::ostringstream os;
        os << to_string(id) << ": host link hangs off L" << upper_level
           << " switch " << to_string(upper) << ", expected L1";
        report.add(AuditCode::kLinkRecord, os.str());
      }
      ++host_seen[topo.host_of(rec.lower).value()];
    }
    ++down_seen[upper.value()];
  }
  // Adjacency lists must agree with the per-endpoint tallies, and each
  // adjacency entry must point back at a link record naming this node.
  for (std::uint32_t v = 0; v < topo.num_switches(); ++v) {
    const SwitchId s{v};
    if (topo.up_neighbors(s).size() != up_seen[v] ||
        topo.down_neighbors(s).size() != down_seen[v]) {
      std::ostringstream os;
      os << to_string(s) << ": adjacency lists record "
         << topo.up_neighbors(s).size() << " up / "
         << topo.down_neighbors(s).size() << " down entries but link table has "
         << up_seen[v] << " / " << down_seen[v];
      report.add(AuditCode::kLinkRecord, os.str());
    }
    for (const Topology::Neighbor& nb : topo.up_neighbors(s)) {
      const Topology::LinkRec& rec = topo.link(nb.link);
      if (rec.lower != topo.node_of(s) || rec.upper != nb.node) {
        std::ostringstream os;
        os << to_string(s) << ": up entry names " << node_name(topo, nb.node)
           << " via " << to_string(nb.link)
           << " but the link record disagrees";
        report.add(AuditCode::kLinkRecord, os.str());
      }
    }
    for (const Topology::Neighbor& nb : topo.down_neighbors(s)) {
      const Topology::LinkRec& rec = topo.link(nb.link);
      if (rec.upper != topo.node_of(s) || rec.lower != nb.node) {
        std::ostringstream os;
        os << to_string(s) << ": down entry names " << node_name(topo, nb.node)
           << " via " << to_string(nb.link)
           << " but the link record disagrees";
        report.add(AuditCode::kLinkRecord, os.str());
      }
    }
  }
  for (std::uint32_t h = 0; h < topo.num_hosts(); ++h) {
    const HostId host{h};
    const Topology::Neighbor nb = topo.host_uplink(host);
    const Topology::LinkRec& rec = topo.link(nb.link);
    if (host_seen[h] != 1 || rec.lower != topo.node_of(host) ||
        rec.upper != nb.node) {
      std::ostringstream os;
      os << to_string(host) << ": expected exactly one host link agreeing "
         << "with host_uplink(), saw " << host_seen[h];
      report.add(AuditCode::kLinkRecord, os.str());
    }
  }
}

}  // namespace

AuditReport audit_params(const TreeParams& params) {
  AuditReport report;
  const auto n = static_cast<std::size_t>(params.n);
  if (params.n < 2 || params.k < 2 || params.k % 2 != 0 || params.S == 0 ||
      params.p.size() != n + 1 || params.m.size() != n + 1 ||
      params.r.size() != n + 1 || params.c.size() != n + 1) {
    std::ostringstream os;
    os << "malformed TreeParams: n=" << params.n << " k=" << params.k
       << " S=" << params.S << " |p|=" << params.p.size()
       << " |m|=" << params.m.size() << " |r|=" << params.r.size()
       << " |c|=" << params.c.size() << " (vectors must have n+1 entries)";
    report.add(AuditCode::kEq1Conservation, os.str());
    return report;  // the equation checks below would index out of range
  }
  check_eq1(params, report);
  check_eq2(params, report);
  check_eq3(params, report);
  check_dcc(params, report);
  return report;
}

AuditReport audit_tree(const Topology& topo) {
  AuditReport report = audit_params(topo.params());
  if (!report.ok()) return report;  // structure checks assume sane params
  check_link_records(topo, report);
  const ValidationReport validation = validate_topology(topo);
  for (const AuditFinding& f : validation.findings) {
    report.add(f.code, f.message);
  }
  return report;
}

}  // namespace aspen::topo
