// Topology export: Graphviz DOT and CSV edge lists.
//
// Handy for eyeballing small trees (the paper's Figs. 1–6 are all drawable
// this way) and for feeding external analysis tools.
#pragma once

#include <string>

#include "src/topo/topology.h"

namespace aspen {

struct DotOptions {
  bool include_hosts = true;
  /// Rank switches by level (top level at the top of the drawing).
  bool rank_by_level = true;
};

/// Renders the topology as a Graphviz graph.
[[nodiscard]] std::string to_dot(const Topology& topo,
                                 const DotOptions& options = {});

/// One line per link: "link_id,upper,lower,level".  Host links list the
/// host as "hN"; switch endpoints as "sN".
[[nodiscard]] std::string to_csv(const Topology& topo);

}  // namespace aspen
