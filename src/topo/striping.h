// Striping policies (§7) — the organization of connections between a switch
// and the members of each pod below it.
//
// Pods form a tree (each L_{i-1} pod has exactly one parent L_i pod, from
// Eq. 3), so striping reduces to: for parent-pod member `a` and its z-th of
// c_i links into child pod Q, which of Q's m_{i-1} members does the link
// land on?  Every policy below keeps per-child-member in-degree exactly k/2
// (the child's full uplink budget), which is what makes the wiring port-
// feasible; they differ in *which* members are hit, which is exactly what
// determines whether ANP can find the common ancestors it needs (§7).
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "src/aspen/tree_params.h"
#include "src/util/ids.h"

namespace aspen {

enum class StripingKind {
  /// The fat tree's standard pattern (Fig. 6(a)): member (a·c_i + z) mod
  /// m_{i-1}.  Consecutive links hit distinct members whenever c_i <= m_{i-1}.
  kStandard,
  /// Standard pattern rotated by the child pod's ordinal (Fig. 6(b)) —
  /// topologically equivalent, used to show striping variation is tolerated.
  kRotated,
  /// Randomly dealt (seeded, balanced).  May create avoidable parallel
  /// links; exercises the §7 validator.
  kRandom,
  /// Pathological (Fig. 6(d)): all c_i links from a member land on a single
  /// child member, producing pure parallel links that defeat added fault
  /// tolerance.  Rejected by the ANP striping check whenever c_i > 1.
  kParallelHeavy,
};

[[nodiscard]] std::string to_string(StripingKind kind);

struct StripingConfig {
  StripingKind kind = StripingKind::kStandard;
  std::uint64_t seed = 1;  ///< used only by kRandom

  [[nodiscard]] std::string to_string() const;
};

/// Computes link landing spots for one (n, k, FTV) tree.  Deterministic:
/// the same config always wires the same topology.
class Striper {
 public:
  Striper(const TreeParams& params, StripingConfig config);

  /// Member index (in [0, m_{i-1})) within child pod that receives the z-th
  /// (z in [0, c_i)) link from parent member `a` (in [0, m_i)) of the parent
  /// pod `parent_pod` at level `i`, into its `child_ordinal`-th child pod
  /// (in [0, r_i)).
  [[nodiscard]] std::uint64_t child_member(Level i, std::uint64_t parent_pod,
                                           std::uint64_t child_ordinal,
                                           std::uint64_t parent_member,
                                           std::uint64_t z) const;

  [[nodiscard]] const StripingConfig& config() const { return config_; }

 private:
  [[nodiscard]] std::uint64_t random_member(Level i, std::uint64_t parent_pod,
                                            std::uint64_t child_ordinal,
                                            std::uint64_t parent_member,
                                            std::uint64_t z) const;

  TreeParams params_;
  StripingConfig config_;
};

}  // namespace aspen
