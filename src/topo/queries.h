// Structural queries over a Topology: ancestry, descendants, common
// ancestors.  ANP's correctness argument (§6, §7) is phrased in terms of
// these relations, so both the protocol implementation and the striping
// validator build on this module.
#pragma once

#include <cstdint>
#include <vector>

#include "src/topo/topology.h"
#include "src/util/ids.h"

namespace aspen {

/// Switches at `level` with a downward path to `s` (level > level_of(s)).
/// Sorted ascending, deduplicated.
[[nodiscard]] std::vector<SwitchId> ancestors_at_level(const Topology& topo,
                                                       SwitchId s,
                                                       Level level);

/// Switches at `level` reachable downward from `s` (level < level_of(s)).
/// Sorted ascending, deduplicated.
[[nodiscard]] std::vector<SwitchId> descendants_at_level(const Topology& topo,
                                                         SwitchId s,
                                                         Level level);

/// All hosts reachable downward from switch `s`, sorted ascending.
[[nodiscard]] std::vector<HostId> descendant_hosts(const Topology& topo,
                                                   SwitchId s);

/// Ancestors of `s` at `level` that are also ancestors of some *other*
/// member of `s`'s pod — exactly the switches ANP's striping requirement
/// (§7) demands exist.  Sorted ascending.
[[nodiscard]] std::vector<SwitchId> shared_pod_ancestors(const Topology& topo,
                                                         SwitchId s,
                                                         Level level);

/// The apex level of a flow between two hosts: the lowest level j such
/// that both hosts live under the same L_j pod.  1 for same-edge flows;
/// a shortest up*/down* path climbs exactly to this level.
[[nodiscard]] Level apex_level(const Topology& topo, HostId a, HostId b);

/// True iff the two sorted id vectors intersect.
[[nodiscard]] bool intersects(const std::vector<SwitchId>& a,
                              const std::vector<SwitchId>& b);

}  // namespace aspen
