// Concrete Aspen tree topology: switches, hosts, links and pods (§3).
//
// A Topology is an immutable graph instantiated from TreeParams plus a
// striping policy.  Switches at each level L_i are grouped into p_i pods of
// m_i members; global ordering is bottom-up by level, then pod-major within
// a level, so pod membership is index arithmetic rather than stored state.
// Hosts hang off L_1 switches, k/2 per switch.
//
// The Topology itself is purely structural: link up/down state during
// failure experiments is an overlay (see src/fault and src/sim), which keeps
// a single built topology shareable across experiments.
//
// Storage is CSR (compressed sparse row): one contiguous Neighbor pool for
// the whole graph with per-switch [up_begin, up_end) / [down_begin,
// down_end) offset ranges, and struct-of-arrays link records.  At n=5/6,
// k=48/64 scale (10^5 switches, 10^6 links) the per-switch
// vector-of-vectors layout this replaced cost one pointer chase plus one
// allocation per switch per direction; the CSR pool is a single
// allocation the routing engine streams through.  See DESIGN.md "memory
// layout".
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "src/aspen/tree_params.h"
#include "src/topo/striping.h"
#include "src/util/ids.h"

namespace aspen {

struct LinkSpec;  // custom wirings, see import.h

class Topology {
 public:
  /// A directed view of an adjacency entry: the node on the other side of
  /// `link`.
  struct Neighbor {
    NodeId node;
    LinkId link;

    friend bool operator==(const Neighbor&, const Neighbor&) = default;
  };

  /// A physical link.  `upper` is always the endpoint at the higher level;
  /// for host links, `upper` is the L_1 switch and `lower` the host.
  /// Materialized on demand from struct-of-arrays storage (link()).
  struct LinkRec {
    NodeId upper;
    NodeId lower;
    Level upper_level = 0;  ///< level of `upper`; 1 for host links

    friend bool operator==(const LinkRec&, const LinkRec&) = default;
  };

  /// Raw CSR pointers for the routing engine's hot loops: the up slice of
  /// switch s is adj[begin[s]..split[s]), the down slice adj[split[s]..
  /// begin[s+1]).  Valid as long as the Topology is alive.
  struct AdjacencyView {
    const Neighbor* adj = nullptr;
    const std::uint32_t* begin = nullptr;  ///< size num_switches()+1
    const std::uint32_t* split = nullptr;  ///< size num_switches()
  };

  /// Builds the topology for `params` wired with `striping`.
  static Topology build(const TreeParams& params,
                        const StripingConfig& striping = {});

  // ---- Shape ---------------------------------------------------------

  [[nodiscard]] const TreeParams& params() const { return params_; }
  [[nodiscard]] const StripingConfig& striping() const { return striping_; }
  [[nodiscard]] int levels() const { return params_.n; }
  [[nodiscard]] int ports() const { return params_.k; }

  [[nodiscard]] std::uint64_t num_switches() const { return num_switches_; }
  [[nodiscard]] std::uint64_t num_hosts() const { return num_hosts_; }
  [[nodiscard]] std::uint64_t num_links() const { return link_upper_.size(); }
  [[nodiscard]] std::uint64_t num_nodes() const {
    return num_switches_ + num_hosts_;
  }

  // ---- Id mapping ----------------------------------------------------

  /// Nodes are numbered with all switches first, then all hosts.
  [[nodiscard]] NodeId node_of(SwitchId s) const;
  [[nodiscard]] NodeId node_of(HostId h) const;
  [[nodiscard]] bool is_switch_node(NodeId node) const;
  [[nodiscard]] SwitchId switch_of(NodeId node) const;
  [[nodiscard]] HostId host_of(NodeId node) const;

  /// Global id of the `index`-th switch (pod-major order) at `level`.
  [[nodiscard]] SwitchId switch_at(Level level, std::uint64_t index) const;
  [[nodiscard]] Level level_of(SwitchId s) const;
  /// Index of `s` within its level (pod-major).
  [[nodiscard]] std::uint64_t index_in_level(SwitchId s) const;

  // ---- Pods ----------------------------------------------------------

  [[nodiscard]] std::uint64_t pods_at_level(Level level) const;
  [[nodiscard]] PodId pod_of(SwitchId s) const;
  /// Index of `s` within its pod, in [0, m_i).
  [[nodiscard]] std::uint64_t member_index(SwitchId s) const;
  /// All switches of the given pod (contiguous, m_i of them).  Pod-major
  /// ordering makes this an index range, not a materialized vector.
  [[nodiscard]] SwitchRange pod_members(Level level, PodId pod) const;
  /// Parent pod (at level+1) of the given pod; pods form a tree (Eq. 3).
  [[nodiscard]] PodId parent_pod(Level level, PodId pod) const;
  /// Child pods (at level−1) of the given pod, r_i of them, in order.
  [[nodiscard]] PodRange child_pods(Level level, PodId pod) const;

  // ---- Hosts ---------------------------------------------------------

  /// The L_1 switch the host is attached to.
  [[nodiscard]] SwitchId edge_switch_of(HostId h) const;
  /// Hosts attached to an L_1 switch (k/2 of them, contiguous ids).
  [[nodiscard]] HostRange hosts_of_edge(SwitchId s) const;

  // ---- Adjacency -----------------------------------------------------

  /// Upward neighbors of a switch (empty for L_n switches).
  [[nodiscard]] std::span<const Neighbor> up_neighbors(SwitchId s) const;
  /// Downward neighbors of a switch: switches below, or hosts for L_1.
  [[nodiscard]] std::span<const Neighbor> down_neighbors(SwitchId s) const;
  /// Raw CSR pointers for hot loops that cannot afford the per-call bounds
  /// checks of the span accessors above.
  [[nodiscard]] AdjacencyView adjacency_view() const {
    return {adj_.data(), adj_begin_.data(), adj_split_.data()};
  }
  /// The single switch neighbor of a host.
  [[nodiscard]] Neighbor host_uplink(HostId h) const;

  /// Materialized view of one link's struct-of-arrays record.
  [[nodiscard]] LinkRec link(LinkId id) const;
  /// Appends every link incident on `upper` going down to switch `lower`
  /// to `out` (parallel links are possible under some stripings).  Caller
  /// owns (and typically reuses) the buffer; `out` is cleared first.
  void links_between(SwitchId upper, SwitchId lower,
                     std::vector<LinkId>& out) const;
  /// First link between the two switches, or LinkId::invalid().
  [[nodiscard]] LinkId find_link(SwitchId upper, SwitchId lower) const;

  /// All links whose upper endpoint sits at `level`, in link-id order,
  /// as a view into a pool built once at construction.  For level >= 2
  /// these are the L_level → L_{level−1} links; for level 1 they are host
  /// links.
  [[nodiscard]] std::span<const LinkId> links_at_level(Level level) const;

  /// Human-readable structural summary.
  [[nodiscard]] std::string describe() const;

 private:
  friend Topology build_custom_topology(const TreeParams& params,
                                        const std::vector<LinkSpec>& links);

  Topology() = default;

  /// Appends one link record (SoA) and returns its id.
  LinkId add_link(NodeId upper, NodeId lower, Level upper_level);
  /// Builds the CSR adjacency pool, host uplinks, and the per-level link
  /// pool from the link records.  Called once, after every add_link.
  void finalize_adjacency();

  TreeParams params_;
  StripingConfig striping_;
  std::uint64_t num_switches_ = 0;
  std::uint64_t num_hosts_ = 0;
  std::vector<std::uint64_t> level_offset_;  // [1..n] -> first switch id
  std::vector<Level> switch_level_;          // per switch

  // Links, struct-of-arrays: three parallel flat vectors instead of an
  // array-of-structs, so scans that touch one field stream one array.
  std::vector<NodeId> link_upper_;
  std::vector<NodeId> link_lower_;
  std::vector<std::uint8_t> link_level_;  // upper_level; levels fit a byte

  // CSR adjacency: per switch, adj_[adj_begin_[s]..adj_split_[s]) are the
  // up neighbors and adj_[adj_split_[s]..adj_begin_[s+1]) the down
  // neighbors, both in link-id order (the order the per-switch vectors
  // were pushed in before this layout).
  std::vector<Neighbor> adj_;
  std::vector<std::uint32_t> adj_begin_;  // num_switches_+1
  std::vector<std::uint32_t> adj_split_;  // num_switches_
  std::vector<Neighbor> host_up_;         // per host

  // Per-level link-id pool (CSR over levels 1..n, link-id order within a
  // level), so links_at_level is a span, not a fresh vector per call.
  std::vector<LinkId> level_links_;
  std::vector<std::uint32_t> level_links_begin_;  // levels()+2
};

}  // namespace aspen
