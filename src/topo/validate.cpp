#include "src/topo/validate.h"

#include <algorithm>
#include <map>
#include <sstream>

#include "src/topo/queries.h"

namespace aspen {

namespace {

void check_ports(const Topology& topo, ValidationReport& report) {
  const auto k = static_cast<std::uint64_t>(topo.ports());
  report.ports_ok = true;
  for (std::uint32_t v = 0; v < topo.num_switches(); ++v) {
    const SwitchId s{v};
    const std::uint64_t used =
        topo.up_neighbors(s).size() + topo.down_neighbors(s).size();
    if (used != k) {
      report.ports_ok = false;
      std::ostringstream os;
      os << to_string(s) << " at L" << topo.level_of(s) << " uses " << used
         << " ports, expected " << k;
      report.add(AuditCode::kPortCount, os.str());
    }
  }
}

void check_uniform_fault_tolerance(const Topology& topo,
                                   ValidationReport& report) {
  const TreeParams& params = topo.params();
  report.uniform_fault_tolerance = true;
  for (Level i = 2; i <= params.n; ++i) {
    const std::uint64_t expected_c = params.c[static_cast<std::size_t>(i)];
    const std::uint64_t expected_r = params.r[static_cast<std::size_t>(i)];
    for (std::uint64_t idx = 0; idx < params.switches_at_level(i); ++idx) {
      const SwitchId s = topo.switch_at(i, idx);
      // Count links per child pod.
      std::map<std::uint32_t, std::uint64_t> per_pod;
      for (const Topology::Neighbor& nb : topo.down_neighbors(s)) {
        const SwitchId below = topo.switch_of(nb.node);
        ++per_pod[topo.pod_of(below).value()];
      }
      bool ok = per_pod.size() == expected_r;
      for (const auto& [pod, count] : per_pod) {
        if (count != expected_c) ok = false;
      }
      if (!ok) {
        report.uniform_fault_tolerance = false;
        std::ostringstream os;
        os << to_string(s) << " at L" << i << " connects to "
           << per_pod.size() << " pods (expected " << expected_r
           << ") with non-uniform link counts (expected " << expected_c
           << " per pod)";
        report.add(AuditCode::kStripingRegularity, os.str());
      }
    }
  }
}

void check_top_level_coverage(const Topology& topo,
                              ValidationReport& report) {
  const TreeParams& params = topo.params();
  const Level n = params.n;
  if (n < 2) {
    report.top_level_coverage = true;
    return;
  }
  const std::uint64_t pods_below = topo.pods_at_level(n - 1);
  report.top_level_coverage = true;
  for (std::uint64_t idx = 0; idx < params.switches_at_level(n); ++idx) {
    const SwitchId s = topo.switch_at(n, idx);
    std::vector<bool> covered(pods_below, false);
    for (const Topology::Neighbor& nb : topo.down_neighbors(s)) {
      covered[topo.pod_of(topo.switch_of(nb.node)).value()] = true;
    }
    if (!std::ranges::all_of(covered, [](bool b) { return b; })) {
      report.top_level_coverage = false;
      std::ostringstream os;
      os << "top-level " << to_string(s)
         << " does not reach every L" << (n - 1) << " pod";
      report.add(AuditCode::kTopLevelCoverage, os.str());
    }
  }
}

void check_anp_striping(const Topology& topo, ValidationReport& report) {
  const TreeParams& params = topo.params();
  const FaultToleranceVector ftv = params.ftv();
  report.anp_striping_ok = true;
  for (Level i = 2; i < params.n; ++i) {  // L_n has nothing above
    if (params.c[static_cast<std::size_t>(i)] != 1) continue;
    const Level f = ftv.nearest_fault_tolerant_level_at_or_above(i + 1);
    if (f == 0) continue;  // no fault tolerance above: requirement is vacuous
    // Pods at L_i with more than one member must share L_f ancestors.
    if (params.m[static_cast<std::size_t>(i)] < 2) continue;
    for (std::uint64_t idx = 0; idx < params.switches_at_level(i); ++idx) {
      const SwitchId s = topo.switch_at(i, idx);
      if (shared_pod_ancestors(topo, s, f).empty()) {
        report.anp_striping_ok = false;
        std::ostringstream os;
        os << to_string(s) << " at L" << i
           << " shares no L" << f
           << " ancestor with any other member of its pod (ANP cannot "
              "route around failures below it)";
        report.add(AuditCode::kAnpStriping, os.str());
      }
    }
  }
}

void count_parallel_links(const Topology& topo, ValidationReport& report) {
  report.parallel_link_pairs = 0;
  for (std::uint32_t v = 0; v < topo.num_switches(); ++v) {
    const SwitchId s{v};
    std::map<std::uint32_t, std::uint64_t> per_neighbor;
    for (const Topology::Neighbor& nb : topo.down_neighbors(s)) {
      if (!topo.is_switch_node(nb.node)) continue;
      ++per_neighbor[nb.node.value()];
    }
    for (const auto& [node, count] : per_neighbor) {
      if (count > 1) ++report.parallel_link_pairs;
    }
  }
}

void find_bottleneck_pods(const Topology& topo, ValidationReport& report) {
  const TreeParams& params = topo.params();
  for (Level i = 2; i <= params.n; ++i) {
    if (params.m[static_cast<std::size_t>(i)] == 1) {
      report.bottleneck_pod_levels.push_back(i);
    }
  }
}

}  // namespace

ValidationReport validate_topology(const Topology& topo) {
  ValidationReport report;
  check_ports(topo, report);
  check_uniform_fault_tolerance(topo, report);
  check_top_level_coverage(topo, report);
  check_anp_striping(topo, report);
  count_parallel_links(topo, report);
  find_bottleneck_pods(topo, report);
  ASPEN_ASSERT(report.findings.size() == report.problems.size(),
               "structured and prose views of the report diverged");
  return report;
}

}  // namespace aspen
