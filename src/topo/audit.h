// Structural invariant auditor for Aspen trees (Eq. 1–3, §3–§5).
//
// Where validate_topology() asks "is this wiring a legal Aspen tree?",
// audit_tree() asks the stronger question paranoid runs need: "is every
// structural invariant the rest of the stack leans on still true of this
// object?" — parameter conservation (Eq. 1–3), DCC consistency (§5.2),
// link-record coherence (endpoints at adjacent levels, adjacency lists and
// link table agreeing), plus everything validate_topology() checks.
//
// Auditors never throw; they return an AuditReport whose findings name the
// violated invariant by AuditCode.  contracts::enforce() routes a failed
// report through the active ViolationPolicy when a caller wants teeth.
#pragma once

#include "src/aspen/tree_params.h"
#include "src/topo/topology.h"
#include "src/util/contracts.h"

namespace aspen::topo {

/// Checks the paper's conservation equations on bare parameters:
///   Eq. 1  p_i·m_i = S  (S/2 at L_n)
///   Eq. 2  r_i·c_i = k/2  (k at L_n)
///   Eq. 3  p_i·r_i = p_{i-1}  (p_n = 1)
/// plus DCC = Π c_i (§5.2) and basic vector shape.
[[nodiscard]] AuditReport audit_params(const TreeParams& params);

/// Full structural audit of a built topology: audit_params() on its
/// TreeParams, link-record coherence, host attachment, and every
/// validate_topology() check (port budgets, striping regularity, §4
/// coverage, §7 ANP striping).
[[nodiscard]] AuditReport audit_tree(const Topology& topo);

}  // namespace aspen::topo
