#include "src/topo/queries.h"

#include <algorithm>

#include "src/util/contracts.h"
#include "src/util/status.h"

namespace aspen {

namespace {

// Walks up or down from `s` to `target_level`, collecting the frontier.
std::vector<SwitchId> walk(const Topology& topo, SwitchId s,
                           Level target_level, bool upward) {
  const Level start = topo.level_of(s);
  ASPEN_REQUIRE(upward ? target_level > start : target_level < start,
                "walk target level ", target_level,
                " not strictly ", upward ? "above" : "below", " level ",
                start);
  ASPEN_REQUIRE(target_level >= 1 && target_level <= topo.levels(),
                "target level out of range");

  std::vector<SwitchId> frontier{s};
  for (Level lvl = start; lvl != target_level; upward ? ++lvl : --lvl) {
    std::vector<SwitchId> next;
    for (SwitchId cur : frontier) {
      const auto neighbors =
          upward ? topo.up_neighbors(cur) : topo.down_neighbors(cur);
      for (const Topology::Neighbor& nb : neighbors) {
        if (!topo.is_switch_node(nb.node)) continue;  // skip hosts
        next.push_back(topo.switch_of(nb.node));
      }
    }
    std::ranges::sort(next);
    next.erase(std::unique(next.begin(), next.end()), next.end());
    frontier = std::move(next);
    ASPEN_ASSERT(!frontier.empty(),
                 "every switch reaches every level in a connected tree");
  }
  for ([[maybe_unused]] const SwitchId reached : frontier) {
    ASPEN_ASSERT(topo.level_of(reached) == target_level,
                 "walk frontier strayed off level ", target_level);
  }
  return frontier;
}

}  // namespace

std::vector<SwitchId> ancestors_at_level(const Topology& topo, SwitchId s,
                                         Level level) {
  return walk(topo, s, level, /*upward=*/true);
}

std::vector<SwitchId> descendants_at_level(const Topology& topo, SwitchId s,
                                           Level level) {
  return walk(topo, s, level, /*upward=*/false);
}

std::vector<HostId> descendant_hosts(const Topology& topo, SwitchId s) {
  const std::vector<SwitchId> edges =
      topo.level_of(s) == 1 ? std::vector<SwitchId>{s}
                            : descendants_at_level(topo, s, 1);
  std::vector<HostId> hosts;
  for (SwitchId edge : edges) {
    const auto attached = topo.hosts_of_edge(edge);
    hosts.insert(hosts.end(), attached.begin(), attached.end());
  }
  std::ranges::sort(hosts);
  return hosts;
}

std::vector<SwitchId> shared_pod_ancestors(const Topology& topo, SwitchId s,
                                           Level level) {
  const Level my_level = topo.level_of(s);
  const std::vector<SwitchId> mine = ancestors_at_level(topo, s, level);

  std::vector<SwitchId> shared;
  for (SwitchId peer : topo.pod_members(my_level, topo.pod_of(s))) {
    if (peer == s) continue;
    const std::vector<SwitchId> theirs =
        ancestors_at_level(topo, peer, level);
    std::vector<SwitchId> common;
    std::ranges::set_intersection(mine, theirs, std::back_inserter(common));
    shared.insert(shared.end(), common.begin(), common.end());
  }
  std::ranges::sort(shared);
  shared.erase(std::unique(shared.begin(), shared.end()), shared.end());
  return shared;
}

Level apex_level(const Topology& topo, HostId a, HostId b) {
  const TreeParams& params = topo.params();
  const auto half_k = static_cast<std::uint64_t>(params.k) / 2;
  std::uint64_t pod_a = a.value() / half_k;  // L1 pod = edge index
  std::uint64_t pod_b = b.value() / half_k;
  Level level = 1;
  while (pod_a != pod_b) {
    ASPEN_CHECK(level < params.n, "hosts share no pod below the top");
    ++level;
    const std::uint64_t r = params.r[static_cast<std::size_t>(level)];
    pod_a /= r;
    pod_b /= r;
  }
  ASPEN_ASSERT(level <= params.n, "apex above the top level");
  return level;
}

bool intersects(const std::vector<SwitchId>& a,
                const std::vector<SwitchId>& b) {
  auto ia = a.begin();
  auto ib = b.begin();
  while (ia != a.end() && ib != b.end()) {
    if (*ia == *ib) return true;
    if (*ia < *ib) {
      ++ia;
    } else {
      ++ib;
    }
  }
  return false;
}

}  // namespace aspen
