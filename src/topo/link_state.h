// Dynamic link up/down state, layered over an immutable Topology.
//
// "The tree consists of a relatively stable set of deployed physical links,
//  and a subset of these links are up and available at any given time" (§6).
// Keeping liveness separate from structure lets one built topology serve
// many failure experiments, and lets a router's *knowledge* of the network
// (possibly stale) be a different overlay than the network's actual state.
#pragma once

#include <cstdint>
#include <vector>

#include "src/topo/topology.h"
#include "src/util/ids.h"

namespace aspen {

class LinkStateOverlay {
 public:
  /// All links initially up.
  explicit LinkStateOverlay(const Topology& topo)
      : up_(topo.num_links(), true) {}

  [[nodiscard]] bool is_up(LinkId id) const { return up_.at(id.value()); }

  /// Marks a link failed; idempotent. Returns true if state changed.
  bool fail(LinkId id) {
    const bool was_up = up_.at(id.value());
    up_[id.value()] = false;
    return was_up;
  }

  /// Marks a link recovered; idempotent. Returns true if state changed.
  bool recover(LinkId id) {
    const bool was_up = up_.at(id.value());
    up_[id.value()] = true;
    return !was_up;
  }

  /// Restores every link to up.
  void recover_all() { up_.assign(up_.size(), true); }

  [[nodiscard]] std::vector<LinkId> failed_links() const {
    std::vector<LinkId> failed;
    for (std::uint32_t id = 0; id < up_.size(); ++id) {
      if (!up_[id]) failed.push_back(LinkId{id});
    }
    return failed;
  }

  [[nodiscard]] std::uint64_t num_failed() const {
    std::uint64_t count = 0;
    for (bool b : up_) count += b ? 0 : 1;
    return count;
  }

 private:
  std::vector<bool> up_;
};

}  // namespace aspen
