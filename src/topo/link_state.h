// Dynamic link up/down state, layered over an immutable Topology.
//
// "The tree consists of a relatively stable set of deployed physical links,
//  and a subset of these links are up and available at any given time" (§6).
// Keeping liveness separate from structure lets one built topology serve
// many failure experiments, and lets a router's *knowledge* of the network
// (possibly stale) be a different overlay than the network's actual state.
//
// Beyond the paper's binary up/down, the overlay models two degraded health
// states that dominate real data-center failure processes:
//
//   * Gray{loss_rate}        — the link reports up and carries traffic, but
//     silently drops a fraction of packets.  Routing cannot see it; only a
//     probing failure detector (src/fault/detector.h) can.
//   * Flapping{period, duty} — the link oscillates between up (the first
//     duty·period of each period) and down (the rest), thrashing any
//     control plane that reacts to every transition.
//
// Degraded links still answer is_up() == true: gray failures are precisely
// the faults the binary liveness layer does not see, and a flapping link's
// instantaneous phase is a function of time (phase_up / loss_now), not of
// the persistent overlay state.  fail()/recover() clear any degradation —
// an administratively cut or repaired link starts from a clean slate.
//
// Storage is flat (see DESIGN.md "memory layout"): liveness is a word
// bitset the routing engine reads through up_words(), and the degraded set
// is a membership bitset plus a sorted (id, state) pair of parallel
// vectors.  The hot probes — is_up(), "is this link degraded at all" — are
// one word read; only a confirmed-degraded link pays a binary search.
// The std::map this replaced cost a pointer chase per lookup on every
// packet fate decision.
#pragma once

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <span>
#include <vector>

#include "src/topo/topology.h"
#include "src/util/contracts.h"
#include "src/util/ids.h"
#include "src/util/status.h"

namespace aspen {

/// Per-link health. kUp/kDown mirror the binary overlay; kGray and
/// kFlapping are degraded-but-up states visible only to probes and to the
/// data plane's packet fate, never to is_up().
enum class LinkHealth : std::uint8_t { kUp, kGray, kFlapping, kDown };

[[nodiscard]] inline const char* to_cstring(LinkHealth h) {
  switch (h) {
    case LinkHealth::kUp: return "up";
    case LinkHealth::kGray: return "gray";
    case LinkHealth::kFlapping: return "flapping";
    case LinkHealth::kDown: return "down";
  }
  return "?";
}

/// Full health description of one link. Times are milliseconds to match
/// SimTime without depending on the sim layer.
struct LinkHealthState {
  LinkHealth health = LinkHealth::kUp;
  double loss_rate = 0.0;  ///< kGray: P(drop) per packet crossing the link
  double period_ms = 0.0;  ///< kFlapping: full up+down cycle length
  double duty = 1.0;       ///< kFlapping: fraction of each period spent up
};

class LinkStateOverlay {
 public:
  /// All links initially up and healthy.
  explicit LinkStateOverlay(const Topology& topo)
      : num_links_(static_cast<std::uint32_t>(topo.num_links())),
        up_words_(word_count(num_links_), ~std::uint64_t{0}),
        degraded_words_(word_count(num_links_), 0) {}

  [[nodiscard]] bool is_up(LinkId id) const {
    ASPEN_REQUIRE(id.value() < num_links_, "link id out of range");
    return bit_test(up_words_, id.value());
  }

  /// The liveness bitset (bit l set == link l up), for engine hot loops
  /// that cannot afford the per-call bounds check of is_up().
  [[nodiscard]] std::span<const std::uint64_t> up_words() const {
    return up_words_;
  }

  [[nodiscard]] std::uint32_t num_links() const { return num_links_; }

  /// Marks a link failed; idempotent. Returns true if state changed.
  /// Clears any gray/flapping degradation — down dominates.
  bool fail(LinkId id) {
    const bool was_up = is_up(id);
    bit_clear(up_words_, id.value());
    erase_degraded(id.value());
    return was_up;
  }

  /// Marks a link recovered; idempotent. Returns true if state changed.
  /// A repaired link comes back clean (no residual degradation).
  bool recover(LinkId id) {
    const bool was_up = is_up(id);
    bit_set(up_words_, id.value());
    erase_degraded(id.value());
    return !was_up;
  }

  /// Restores every link to up and healthy.
  void recover_all() {
    up_words_.assign(up_words_.size(), ~std::uint64_t{0});
    degraded_words_.assign(degraded_words_.size(), 0);
    degraded_ids_.clear();
    degraded_states_.clear();
  }

  [[nodiscard]] std::vector<LinkId> failed_links() const {
    std::vector<LinkId> failed;
    for (std::uint32_t id = 0; id < num_links_; ++id) {
      if (!bit_test(up_words_, id)) failed.push_back(LinkId{id});
    }
    return failed;
  }

  [[nodiscard]] std::uint64_t num_failed() const {
    std::uint64_t up = 0;
    for (const std::uint64_t w : up_words_) {
      up += static_cast<std::uint64_t>(std::popcount(w));
    }
    // Padding bits past num_links_ stay 1 (they are never failed).
    return num_links_ - (up - (word_count(num_links_) * 64 - num_links_));
  }

  // ---- degraded health (gray / flapping) --------------------------------

  /// Marks an up link gray: it stays up but drops `loss_rate` of packets.
  void set_gray(LinkId id, double loss_rate) {
    ASPEN_REQUIRE(is_up(id), "cannot degrade a down link");
    ASPEN_REQUIRE(loss_rate > 0.0 && loss_rate <= 1.0,
                  "gray loss rate must be in (0, 1]");
    LinkHealthState s;
    s.health = LinkHealth::kGray;
    s.loss_rate = loss_rate;
    upsert_degraded(id.value(), s);
  }

  /// Marks an up link flapping: up for the first duty·period of every
  /// period (phase anchored at t = 0), down for the rest.
  void set_flapping(LinkId id, double period_ms, double duty) {
    ASPEN_REQUIRE(is_up(id), "cannot degrade a down link");
    ASPEN_REQUIRE(period_ms > 0.0, "flap period must be positive");
    ASPEN_REQUIRE(duty > 0.0 && duty < 1.0, "flap duty must be in (0, 1)");
    LinkHealthState s;
    s.health = LinkHealth::kFlapping;
    s.period_ms = period_ms;
    s.duty = duty;
    upsert_degraded(id.value(), s);
  }

  /// Restores a degraded link to clean health (liveness unchanged).
  /// Returns true if the link was degraded.
  bool clear_degradation(LinkId id) {
    ASPEN_REQUIRE(id.value() < num_links_, "link id out of range");
    return erase_degraded(id.value());
  }

  /// Current health of a link; kDown wins over any stale degradation.
  [[nodiscard]] LinkHealthState health(LinkId id) const {
    if (!is_up(id)) {
      LinkHealthState s;
      s.health = LinkHealth::kDown;
      s.loss_rate = 1.0;
      return s;
    }
    if (!bit_test(degraded_words_, id.value())) return LinkHealthState{};
    return degraded_states_[degraded_index(id.value())];
  }

  /// Is a flapping link in its up phase at `now_ms`? Non-flapping links are
  /// always "in phase" (their fate is decided by is_up / loss_rate).
  [[nodiscard]] bool phase_up(LinkId id, double now_ms) const {
    ASPEN_REQUIRE(id.value() < num_links_, "link id out of range");
    if (!bit_test(degraded_words_, id.value())) return true;
    const LinkHealthState& s = degraded_states_[degraded_index(id.value())];
    if (s.health != LinkHealth::kFlapping) return true;
    return std::fmod(now_ms, s.period_ms) < s.duty * s.period_ms;
  }

  /// Instantaneous packet-loss probability on a link at `now_ms`:
  /// down → 1, gray → loss_rate, flapping → 0 or 1 by phase, clean → 0.
  [[nodiscard]] double loss_now(LinkId id, double now_ms) const {
    if (!is_up(id)) return 1.0;
    if (!bit_test(degraded_words_, id.value())) return 0.0;
    const LinkHealthState& s = degraded_states_[degraded_index(id.value())];
    if (s.health == LinkHealth::kGray) return s.loss_rate;
    if (s.health != LinkHealth::kFlapping) return 0.0;
    return std::fmod(now_ms, s.period_ms) < s.duty * s.period_ms ? 0.0 : 1.0;
  }

  [[nodiscard]] std::vector<LinkId> degraded_links() const {
    std::vector<LinkId> out;
    out.reserve(degraded_ids_.size());
    for (const std::uint32_t id : degraded_ids_) out.push_back(LinkId{id});
    return out;
  }

  [[nodiscard]] std::uint64_t num_degraded() const {
    return degraded_ids_.size();
  }

 private:
  [[nodiscard]] static std::uint64_t word_count(std::uint64_t bits) {
    return (bits + 63) / 64;
  }
  [[nodiscard]] static bool bit_test(const std::vector<std::uint64_t>& words,
                                     std::uint32_t i) {
    return (words[i >> 6] >> (i & 63)) & 1u;
  }
  static void bit_set(std::vector<std::uint64_t>& words, std::uint32_t i) {
    words[i >> 6] |= std::uint64_t{1} << (i & 63);
  }
  static void bit_clear(std::vector<std::uint64_t>& words, std::uint32_t i) {
    words[i >> 6] &= ~(std::uint64_t{1} << (i & 63));
  }

  /// Position of a *known-degraded* id in the sorted id vector.
  [[nodiscard]] std::uint64_t degraded_index(std::uint32_t id) const {
    const auto it =
        std::lower_bound(degraded_ids_.begin(), degraded_ids_.end(), id);
    ASPEN_ASSERT(it != degraded_ids_.end() && *it == id,
                 "degraded bitset and id vector out of sync");
    return static_cast<std::uint64_t>(it - degraded_ids_.begin());
  }

  void upsert_degraded(std::uint32_t id, const LinkHealthState& s) {
    if (bit_test(degraded_words_, id)) {
      degraded_states_[degraded_index(id)] = s;
      return;
    }
    bit_set(degraded_words_, id);
    const auto it =
        std::lower_bound(degraded_ids_.begin(), degraded_ids_.end(), id);
    const auto pos = it - degraded_ids_.begin();
    degraded_ids_.insert(it, id);
    degraded_states_.insert(degraded_states_.begin() + pos, s);
  }

  bool erase_degraded(std::uint32_t id) {
    if (!bit_test(degraded_words_, id)) return false;
    bit_clear(degraded_words_, id);
    const std::uint64_t pos = degraded_index(id);
    degraded_ids_.erase(degraded_ids_.begin() + static_cast<long>(pos));
    degraded_states_.erase(degraded_states_.begin() + static_cast<long>(pos));
    return true;
  }

  std::uint32_t num_links_ = 0;
  std::vector<std::uint64_t> up_words_;        // bit l == link l is up
  std::vector<std::uint64_t> degraded_words_;  // bit l == link l degraded
  // Sparse payloads, sorted by link id, parallel to each other: only
  // kGray/kFlapping entries live here, found by binary search after the
  // bitset confirms membership.
  std::vector<std::uint32_t> degraded_ids_;
  std::vector<LinkHealthState> degraded_states_;
};

}  // namespace aspen
