// Dynamic link up/down state, layered over an immutable Topology.
//
// "The tree consists of a relatively stable set of deployed physical links,
//  and a subset of these links are up and available at any given time" (§6).
// Keeping liveness separate from structure lets one built topology serve
// many failure experiments, and lets a router's *knowledge* of the network
// (possibly stale) be a different overlay than the network's actual state.
//
// Beyond the paper's binary up/down, the overlay models two degraded health
// states that dominate real data-center failure processes:
//
//   * Gray{loss_rate}        — the link reports up and carries traffic, but
//     silently drops a fraction of packets.  Routing cannot see it; only a
//     probing failure detector (src/fault/detector.h) can.
//   * Flapping{period, duty} — the link oscillates between up (the first
//     duty·period of each period) and down (the rest), thrashing any
//     control plane that reacts to every transition.
//
// Degraded links still answer is_up() == true: gray failures are precisely
// the faults the binary liveness layer does not see, and a flapping link's
// instantaneous phase is a function of time (phase_up / loss_now), not of
// the persistent overlay state.  fail()/recover() clear any degradation —
// an administratively cut or repaired link starts from a clean slate.
#pragma once

#include <cmath>
#include <cstdint>
#include <map>
#include <vector>

#include "src/topo/topology.h"
#include "src/util/ids.h"
#include "src/util/status.h"

namespace aspen {

/// Per-link health. kUp/kDown mirror the binary overlay; kGray and
/// kFlapping are degraded-but-up states visible only to probes and to the
/// data plane's packet fate, never to is_up().
enum class LinkHealth : std::uint8_t { kUp, kGray, kFlapping, kDown };

[[nodiscard]] inline const char* to_cstring(LinkHealth h) {
  switch (h) {
    case LinkHealth::kUp: return "up";
    case LinkHealth::kGray: return "gray";
    case LinkHealth::kFlapping: return "flapping";
    case LinkHealth::kDown: return "down";
  }
  return "?";
}

/// Full health description of one link. Times are milliseconds to match
/// SimTime without depending on the sim layer.
struct LinkHealthState {
  LinkHealth health = LinkHealth::kUp;
  double loss_rate = 0.0;  ///< kGray: P(drop) per packet crossing the link
  double period_ms = 0.0;  ///< kFlapping: full up+down cycle length
  double duty = 1.0;       ///< kFlapping: fraction of each period spent up
};

class LinkStateOverlay {
 public:
  /// All links initially up and healthy.
  explicit LinkStateOverlay(const Topology& topo)
      : up_(topo.num_links(), true) {}

  [[nodiscard]] bool is_up(LinkId id) const { return up_.at(id.value()); }

  /// Marks a link failed; idempotent. Returns true if state changed.
  /// Clears any gray/flapping degradation — down dominates.
  bool fail(LinkId id) {
    const bool was_up = up_.at(id.value());
    up_[id.value()] = false;
    degraded_.erase(id.value());
    return was_up;
  }

  /// Marks a link recovered; idempotent. Returns true if state changed.
  /// A repaired link comes back clean (no residual degradation).
  bool recover(LinkId id) {
    const bool was_up = up_.at(id.value());
    up_[id.value()] = true;
    degraded_.erase(id.value());
    return !was_up;
  }

  /// Restores every link to up and healthy.
  void recover_all() {
    up_.assign(up_.size(), true);
    degraded_.clear();
  }

  [[nodiscard]] std::vector<LinkId> failed_links() const {
    std::vector<LinkId> failed;
    for (std::uint32_t id = 0; id < up_.size(); ++id) {
      if (!up_[id]) failed.push_back(LinkId{id});
    }
    return failed;
  }

  [[nodiscard]] std::uint64_t num_failed() const {
    std::uint64_t count = 0;
    for (bool b : up_) count += b ? 0 : 1;
    return count;
  }

  // ---- degraded health (gray / flapping) --------------------------------

  /// Marks an up link gray: it stays up but drops `loss_rate` of packets.
  void set_gray(LinkId id, double loss_rate) {
    ASPEN_REQUIRE(is_up(id), "cannot degrade a down link");
    ASPEN_REQUIRE(loss_rate > 0.0 && loss_rate <= 1.0,
                  "gray loss rate must be in (0, 1]");
    LinkHealthState s;
    s.health = LinkHealth::kGray;
    s.loss_rate = loss_rate;
    degraded_[id.value()] = s;
  }

  /// Marks an up link flapping: up for the first duty·period of every
  /// period (phase anchored at t = 0), down for the rest.
  void set_flapping(LinkId id, double period_ms, double duty) {
    ASPEN_REQUIRE(is_up(id), "cannot degrade a down link");
    ASPEN_REQUIRE(period_ms > 0.0, "flap period must be positive");
    ASPEN_REQUIRE(duty > 0.0 && duty < 1.0, "flap duty must be in (0, 1)");
    LinkHealthState s;
    s.health = LinkHealth::kFlapping;
    s.period_ms = period_ms;
    s.duty = duty;
    degraded_[id.value()] = s;
  }

  /// Restores a degraded link to clean health (liveness unchanged).
  /// Returns true if the link was degraded.
  bool clear_degradation(LinkId id) {
    return degraded_.erase(id.value()) > 0;
  }

  /// Current health of a link; kDown wins over any stale degradation.
  [[nodiscard]] LinkHealthState health(LinkId id) const {
    if (!is_up(id)) {
      LinkHealthState s;
      s.health = LinkHealth::kDown;
      s.loss_rate = 1.0;
      return s;
    }
    const auto it = degraded_.find(id.value());
    return it == degraded_.end() ? LinkHealthState{} : it->second;
  }

  /// Is a flapping link in its up phase at `now_ms`? Non-flapping links are
  /// always "in phase" (their fate is decided by is_up / loss_rate).
  [[nodiscard]] bool phase_up(LinkId id, double now_ms) const {
    const auto it = degraded_.find(id.value());
    if (it == degraded_.end() || it->second.health != LinkHealth::kFlapping) {
      return true;
    }
    const LinkHealthState& s = it->second;
    return std::fmod(now_ms, s.period_ms) < s.duty * s.period_ms;
  }

  /// Instantaneous packet-loss probability on a link at `now_ms`:
  /// down → 1, gray → loss_rate, flapping → 0 or 1 by phase, clean → 0.
  [[nodiscard]] double loss_now(LinkId id, double now_ms) const {
    if (!is_up(id)) return 1.0;
    const auto it = degraded_.find(id.value());
    if (it == degraded_.end()) return 0.0;
    const LinkHealthState& s = it->second;
    if (s.health == LinkHealth::kGray) return s.loss_rate;
    return phase_up(id, now_ms) ? 0.0 : 1.0;
  }

  [[nodiscard]] std::vector<LinkId> degraded_links() const {
    std::vector<LinkId> out;
    out.reserve(degraded_.size());
    for (const auto& [id, s] : degraded_) out.push_back(LinkId{id});
    return out;
  }

  [[nodiscard]] std::uint64_t num_degraded() const { return degraded_.size(); }

 private:
  std::vector<bool> up_;
  // Sparse: only kGray/kFlapping entries live here, so the is_up() hot path
  // and the all-links-clean case are untouched.
  std::map<std::uint32_t, LinkHealthState> degraded_;
};

}  // namespace aspen
