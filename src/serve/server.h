// The query server: admission control, deadlines, idempotent execution
// against sealed snapshots, and fingerprint-sealed crash checkpoints.
//
// The server is a virtual-time actor on a Simulator: frames arrive via
// handle_frame (at sim.now()), queries occupy a serializing CpuQueue, and
// replies are issued through a caller-supplied callback — possibly many
// callbacks for one id, because a retried request that finds its original
// still in flight coalesces onto it instead of executing twice.  The
// robustness ladder on the admission path, in order:
//
//   malformed  → immediate error reply (never touches the CPU)
//   duplicate  → completed: replay the stored response bytes, byte-exact;
//                in flight: coalesce this reply onto the pending execution
//   shed       → in-flight depth at the watermark: explicit SHED reply
//   deadline   → projected completion (CPU wait + service) past the
//                request's absolute deadline: reject up front; admitted
//                queries re-assert the budget monotonically at completion
//   admit      → execute at completion time against the *then-current*
//                snapshot, through the digest-keyed result cache
//
// Every reply — rejections included — carries the serving snapshot digest
// and staleness bound, so degraded-mode answers are labeled, never wrong.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "src/serve/cache.h"
#include "src/serve/snapshot.h"
#include "src/serve/wire.h"
#include "src/sim/simulator.h"
#include "src/topo/topology.h"

namespace aspen::serve {

struct ServerOptions {
  /// Admission watermark: a new (non-duplicate) query arriving with this
  /// many already in flight is shed.
  std::size_t inflight_watermark = 64;
  std::size_t cache_capacity = 1024;
  /// Virtual CPU cost per query class (ms); what-if pays for the
  /// incremental recompute it performs.
  double route_service_ms = 0.05;
  double what_if_service_ms = 0.4;
  double loss_service_ms = 0.2;
};

struct ServerStats {
  std::uint64_t received = 0;
  std::uint64_t admitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t shed = 0;
  std::uint64_t deadline_rejected = 0;
  std::uint64_t malformed = 0;
  std::uint64_t duplicate_replays = 0;  ///< completed-id retries replayed
  std::uint64_t coalesced = 0;          ///< in-flight-id retries coalesced
  std::uint64_t resumes = 0;            ///< checkpoints restored into this

  /// Identity fold over everything except `resumes` (a restored server is
  /// byte-identical to the one that checkpointed; the resume count is the
  /// one field that legitimately differs).
  [[nodiscard]] std::uint64_t fingerprint() const;
};

/// Executes one query against a pinned snapshot.  Pure: the result depends
/// only on (topology, snapshot, query content) — the property the result
/// cache and the post-hoc auditor both rest on.
[[nodiscard]] QueryResult execute_query(const Topology& topo,
                                        const routing::PinnedState& snapshot,
                                        const Request& request);

class Server {
 public:
  using Reply = std::function<void(const std::string& frame)>;

  Server(Simulator& sim, const Topology& topo, SnapshotRegistry& registry,
         const ServerOptions& options = {});

  /// Processes one arriving frame at sim.now().  `reply` is invoked (now or
  /// at query completion in virtual time) with the encoded response frame.
  void handle_frame(const std::string& frame, Reply reply);

  [[nodiscard]] const ServerStats& stats() const { return stats_; }
  [[nodiscard]] std::size_t in_flight() const { return in_flight_; }
  [[nodiscard]] ResultCache& cache() { return cache_; }
  [[nodiscard]] const ResultCache& cache() const { return cache_; }

  /// Fold over every reply frame issued, in issue order.  History, not
  /// state: excluded from checkpoints, used by the driver's thread-count
  /// identity checks.
  [[nodiscard]] std::uint64_t reply_stream_hash() const {
    return reply_stream_hash_;
  }

  /// Fingerprint-sealed ASPNSRVE1 checkpoint: stats, snapshot-registry
  /// anchors, the result cache, and the completed-request dedup table.
  /// In-flight queries are deliberately excluded — a crash loses them and
  /// the clients' idempotent retries re-execute them safely.
  [[nodiscard]] std::string checkpoint() const;

  /// Restores a checkpoint into this server: re-derives the sealed snapshot
  /// (registry.restore verifies its fingerprint), repopulates cache and
  /// dedup state, and bumps stats().resumes.  Throws PreconditionError on
  /// magic/fingerprint/shape mismatch.  In-flight state resets.
  void restore(const std::string& checkpoint_text);

 private:
  struct DedupEntry {
    bool completed = false;
    Request request;           ///< retained while in flight
    Response response;         ///< stored once completed
    std::string frame;         ///< encoded `response`, replayed on retries
    std::vector<Reply> waiters;
  };

  void label(Response& response) const;
  void reply_with(const Response& response, const Reply& reply);
  void complete(std::uint64_t id);
  [[nodiscard]] double service_ms(QueryKind kind) const;

  Simulator* sim_;
  const Topology* topo_;
  SnapshotRegistry* registry_;
  ServerOptions options_;
  ResultCache cache_;
  CpuQueue cpu_;
  ServerStats stats_;
  std::size_t in_flight_ = 0;
  std::uint64_t reply_stream_hash_ = 0x5E12E5u;
  std::map<std::uint64_t, DedupEntry> dedup_;
};

}  // namespace aspen::serve
