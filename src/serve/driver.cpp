#include "src/serve/driver.h"

#include <algorithm>
#include <bit>
#include <memory>
#include <sstream>

#include "src/fault/seed.h"
#include "src/obs/obs.h"
#include "src/util/contracts.h"
#include "src/util/rng.h"

namespace aspen::serve {

namespace {

/// Time slack for matching virtual-time instants reconstructed from
/// `seal_time + staleness` against the recorded timeline.
constexpr double kAuditEpsilonMs = 1e-6;

/// Query arrivals sit at this offset past the interarrival grid so they
/// can never tie with a chaos action (actions land on multiples of
/// action_every_ms; every serve delay is a multiple of 0.01 ms plus this).
constexpr double kQueryPhaseMs = 0.31;

[[nodiscard]] std::uint64_t mix(std::uint64_t h, std::uint64_t v) {
  return fault::derive_stream_seed(h, v);
}

[[nodiscard]] std::uint64_t fold_response(std::uint64_t h,
                                          const Response& r) {
  h = mix(h, r.id);
  h = mix(h, static_cast<std::uint64_t>(r.status));
  h = mix(h, r.snapshot_digest);
  h = mix(h, r.staleness_events);
  h = mix(h, std::bit_cast<std::uint64_t>(r.staleness_ms));
  h = mix(h, r.from_cache ? 1u : 0u);
  h = mix(h, r.result.delivered);
  h = mix(h, r.result.hops);
  h = mix(h, r.result.switches_changed);
  h = mix(h, r.result.dests_lost);
  h = mix(h, r.result.flows_delivered);
  h = mix(h, r.result.flows_lost);
  return h;
}

/// One sealed snapshot as the auditor will reconstruct it: the pin is held
/// alive for post-run re-execution.
struct SealRecord {
  std::uint64_t epoch = 0;
  double time_ms = 0.0;
  std::uint64_t digest = 0;
  std::shared_ptr<const routing::PinnedState> pinned;
};

/// Audits one answered query against the recorded ground-truth timeline.
/// Returns an empty string when every label checks out.
[[nodiscard]] std::string audit_outcome(const Topology& topo,
                                        const std::vector<SealRecord>& seals,
                                        const std::vector<double>& action_times,
                                        const Outcome& outcome) {
  const Response& r = outcome.response;
  std::string why = "no seal matches the response's snapshot digest";
  for (const SealRecord& seal : seals) {
    if (seal.digest != r.snapshot_digest) continue;
    const double completion = seal.time_ms + r.staleness_ms;
    if (r.staleness_ms < -kAuditEpsilonMs) {
      why = "negative staleness label";
      continue;
    }
    // The named seal must be the snapshot actually serving at completion
    // time — i.e. no later seal had happened yet.
    bool was_serving = true;
    for (const SealRecord& other : seals) {
      if (other.time_ms > seal.time_ms + kAuditEpsilonMs &&
          other.time_ms <= completion + kAuditEpsilonMs) {
        was_serving = false;
        break;
      }
    }
    if (!was_serving) {
      why = "a newer seal existed at the labeled completion time";
      continue;
    }
    // Staleness-events label: live events between the seal's epoch and the
    // completion instant, reconstructed from the action timeline.
    std::uint64_t events_by_completion = 0;
    for (const double t : action_times) {
      if (t <= completion + kAuditEpsilonMs) ++events_by_completion;
    }
    if (events_by_completion < seal.epoch) {
      why = "completion time predates the seal's own epoch";
      continue;
    }
    if (events_by_completion - seal.epoch != r.staleness_events) {
      why = "staleness-events label disagrees with the action timeline";
      continue;
    }
    if (r.status == ResponseStatus::kOk) {
      const QueryResult expected =
          execute_query(topo, *seal.pinned, outcome.request);
      if (!(expected == r.result)) {
        why = "result differs from re-execution against the named snapshot";
        continue;
      }
    }
    return {};
  }
  std::ostringstream os;
  os << "query id " << outcome.request.id << " ("
     << to_cstring(outcome.request.kind) << ", "
     << to_cstring(r.status) << "): " << why;
  return os.str();
}

}  // namespace

std::uint64_t ServeChaosReport::fingerprint() const {
  std::uint64_t h = 0x5EFD0u;
  h = mix(h, server.fingerprint());
  h = mix(h, clients.submitted);
  h = mix(h, clients.frames_sent);
  h = mix(h, clients.responses);
  h = mix(h, clients.duplicates_ignored);
  h = mix(h, clients.undecodable);
  h = mix(h, clients.retransmits);
  h = mix(h, clients.gave_up);
  h = mix(h, clients.shed_seen);
  h = mix(h, cache_hits);
  h = mix(h, cache_misses);
  h = mix(h, cache_evictions);
  h = mix(h, answered);
  h = mix(h, rejected_deadline);
  h = mix(h, rejected_malformed);
  h = mix(h, gave_up);
  h = mix(h, seals);
  h = mix(h, checkpoints_cut);
  h = mix(h, audited);
  h = mix(h, audit_mismatches);
  h = mix(h, response_stream_hash);
  h = mix(h, reply_stream_hash);
  for (const auto* latencies :
       {&route_latency_ms, &what_if_latency_ms, &loss_latency_ms}) {
    h = mix(h, latencies->size());
    for (const double v : *latencies) {
      h = mix(h, std::bit_cast<std::uint64_t>(v));
    }
  }
  h = mix(h, staleness_event_samples.size());
  for (const std::uint64_t v : staleness_event_samples) h = mix(h, v);
  h = mix(h, staleness_ms.count());
  h = mix(h, std::bit_cast<std::uint64_t>(staleness_ms.total()));
  h = mix(h, chaos.link_failures);
  h = mix(h, chaos.link_recoveries);
  h = mix(h, chaos.switch_crashes);
  h = mix(h, chaos.switch_recoveries);
  h = mix(h, chaos.checks);
  h = mix(h, chaos.ground_truth_violations);
  h = mix(h, chaos.protocol_shortfall);
  h = mix(h, chaos.tables_restored ? 1u : 0u);
  return h;
}

bool ServeChaosReport::passed() const {
  return audit_mismatches == 0 && chaos.ground_truth_violations == 0 &&
         chaos.tables_restored && clients.undecodable == 0 &&
         server.completed == server.admitted && answered > 0;
}

ServeChaosReport run_serve_under_chaos(ProtocolKind kind,
                                       const Topology& topo,
                                       const ServeChaosOptions& options) {
  ASPEN_REQUIRE(options.num_queries >= 0, "num_queries must be >= 0");
  ASPEN_REQUIRE(options.num_clients >= 1, "need at least one client");
  ASPEN_REQUIRE(options.seal_every_actions >= 1,
                "seal cadence must be >= 1 action");
  ASPEN_REQUIRE(options.whatif_permille >= 0 && options.loss_permille >= 0 &&
                    options.whatif_permille + options.loss_permille <= 1000,
                "query-class mix must fit in 1000 permille");

  ServeChaosReport report;
  Simulator sim;
  fault::ChaosCampaign campaign(kind, topo, options.chaos);
  SnapshotRegistry registry(topo, options.chaos.granularity, options.threads);
  Server server(sim, topo, registry, options.server);

  std::vector<std::unique_ptr<Client>> clients;
  clients.reserve(static_cast<std::size_t>(options.num_clients));
  for (int c = 0; c < options.num_clients; ++c) {
    ClientOptions copts = options.client;
    copts.client_id = static_cast<std::uint32_t>(c);
    copts.campaign_seed = options.chaos.seed;
    clients.push_back(std::make_unique<Client>(sim, server, copts));
  }

  // Ground-truth timeline for the post-hoc auditor.
  std::vector<SealRecord> seals;
  std::vector<double> action_times;
  const auto record_seal = [&seals](const Snapshot& snap) {
    seals.push_back(SealRecord{snap.seal_epoch, snap.seal_time_ms,
                               snap.pinned->fingerprint, snap.pinned});
  };
  record_seal(registry.current());

  // Chaos actions on a fixed grid; every seal_every_actions-th action is
  // followed by a seal, so snapshots chase the fabric but always lag it.
  for (int i = 0; i < options.chaos.num_events; ++i) {
    const double when =
        (static_cast<double>(i) + 1.0) * options.action_every_ms;
    sim.schedule_at(when, [&campaign, &registry, &record_seal, &action_times,
                           &sim, &options] {
      if (!campaign.advance()) return;
      registry.note_live_event();
      action_times.push_back(sim.now());
      if (campaign.actions_taken() % options.seal_every_actions == 0) {
        record_seal(registry.seal(campaign.overlay(), sim.now()));
      }
    });
  }

  // Pre-draw every query from its own derived stream, then schedule the
  // submissions.  Drawing up front keeps the stream independent of event
  // interleaving by construction.
  Rng query_rng(
      fault::derive_stream_seed(options.chaos.seed,
                                fault::kStreamServeQueries));
  const std::size_t hosts = static_cast<std::size_t>(topo.num_hosts());
  const std::size_t links = static_cast<std::size_t>(topo.num_links());
  ASPEN_REQUIRE(hosts >= 2, "serve campaign needs at least two hosts");
  std::uint64_t answered_so_far = 0;
  for (int q = 0; q < options.num_queries; ++q) {
    const double arrival =
        (static_cast<double>(q) + 1.0) * options.query_interarrival_ms +
        kQueryPhaseMs;
    Request req;
    const std::size_t roll = query_rng.index(1000);
    if (roll < static_cast<std::size_t>(options.whatif_permille)) {
      req.kind = QueryKind::kWhatIf;
    } else if (roll < static_cast<std::size_t>(options.whatif_permille +
                                               options.loss_permille)) {
      req.kind = QueryKind::kLoss;
    } else {
      req.kind = QueryKind::kRoute;
    }
    req.src = static_cast<std::uint32_t>(query_rng.index(hosts));
    req.dst = static_cast<std::uint32_t>(query_rng.index(hosts));
    if (req.dst == req.src) {
      req.dst = static_cast<std::uint32_t>((req.dst + 1) % hosts);
    }
    req.flow_seed = static_cast<std::uint64_t>(query_rng.index(1u << 30));
    if (req.kind == QueryKind::kWhatIf) {
      const std::size_t cuts = 1 + query_rng.index(3);
      for (std::size_t j = 0; j < cuts; ++j) {
        req.fail_links.push_back(
            static_cast<std::uint32_t>(query_rng.index(links)));
      }
    }
    if (req.kind == QueryKind::kLoss) req.flows = options.loss_flows;
    if (options.deadline_ms > 0.0) {
      req.deadline_ms = arrival + options.deadline_ms;
    }
    Client* client =
        clients[static_cast<std::size_t>(q) % clients.size()].get();
    sim.schedule_at(arrival, [client, req, arrival, &report, &server,
                              &answered_so_far, &options, &sim] {
      client->submit(req, [arrival, kind = req.kind, &report, &server,
                           &answered_so_far, &options,
                           &sim](const Outcome& outcome) {
        if (!outcome.got_response) {
          ++report.gave_up;
          return;
        }
        report.response_stream_hash =
            fold_response(report.response_stream_hash, outcome.response);
        switch (outcome.response.status) {
          case ResponseStatus::kOk: {
            ++report.answered;
            const double latency = sim.now() - arrival;
            switch (kind) {
              case QueryKind::kRoute:
                report.route_latency_ms.push_back(latency);
                break;
              case QueryKind::kWhatIf:
                report.what_if_latency_ms.push_back(latency);
                break;
              case QueryKind::kLoss:
                report.loss_latency_ms.push_back(latency);
                break;
            }
            report.staleness_event_samples.push_back(
                outcome.response.staleness_events);
            report.staleness_ms.add(outcome.response.staleness_ms);
            obs::observe("serve.staleness_events",
                         static_cast<double>(
                             outcome.response.staleness_events));
            ++answered_so_far;
            if (options.checkpoint_every > 0 &&
                answered_so_far %
                        static_cast<std::uint64_t>(
                            options.checkpoint_every) ==
                    0) {
              report.checkpoints.push_back(server.checkpoint());
              ++report.checkpoints_cut;
              obs::count("serve.checkpoints");
              obs::trace_event(
                  sim.now(), obs::TraceKind::kServeCheckpoint,
                  static_cast<std::uint32_t>(report.checkpoints_cut), 0,
                  server.stats().completed, "checkpoint");
            }
            break;
          }
          case ResponseStatus::kDeadlineExceeded:
            ++report.rejected_deadline;
            break;
          case ResponseStatus::kMalformed:
            ++report.rejected_malformed;
            break;
          case ResponseStatus::kShed:
            break;  // unreachable: clients retry through SHED
        }
      });
    });
  }

  sim.run();
  campaign.finish();

  report.chaos = campaign.outcome();
  report.server = server.stats();
  report.reply_stream_hash = server.reply_stream_hash();
  report.cache_hits = server.cache().hits();
  report.cache_misses = server.cache().misses();
  report.cache_evictions = server.cache().evictions();
  report.seals = registry.seals();
  for (const auto& client : clients) {
    const ClientStats& cs = client->stats();
    report.clients.submitted += cs.submitted;
    report.clients.frames_sent += cs.frames_sent;
    report.clients.responses += cs.responses;
    report.clients.duplicates_ignored += cs.duplicates_ignored;
    report.clients.undecodable += cs.undecodable;
    report.clients.retransmits += cs.retransmits;
    report.clients.gave_up += cs.gave_up;
    report.clients.shed_seen += cs.shed_seen;
  }

  // Post-hoc audit: every accepted response is checked against the pinned
  // snapshot its digest names and the recorded event timeline.
  for (const auto& client : clients) {
    for (const Outcome& outcome : client->outcomes()) {
      if (!outcome.got_response) continue;
      ++report.audited;
      std::string finding =
          audit_outcome(topo, seals, action_times, outcome);
      if (!finding.empty()) {
        ++report.audit_mismatches;
        if (report.audit_messages.size() < 8) {
          report.audit_messages.push_back(std::move(finding));
        }
      }
    }
  }
  obs::gauge_set("serve.audit_mismatches",
                 static_cast<double>(report.audit_mismatches));
  return report;
}

}  // namespace aspen::serve
