// The retrying client: the other half of the at-most-once contract.
//
// Each client owns a private lossy ChannelModel (requests and responses
// both ride it) and a retry loop with capped exponential backoff plus
// deterministic jitter.  Retries resend the *same* request id, so the
// server's dedup table — not client restraint — is what guarantees a query
// never executes twice; the client's job is merely to keep asking until an
// answer survives the channel, the retry cap trips, or the query's own
// deadline makes further attempts pointless.  A SHED response is not an
// answer: the client records it and keeps retrying, which is what turns
// load shedding into backpressure instead of data loss.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "src/serve/server.h"
#include "src/serve/wire.h"
#include "src/sim/channel.h"
#include "src/sim/simulator.h"
#include "src/util/rng.h"

namespace aspen::serve {

/// Hard cap on retransmissions per query; every backoff loop in this
/// module bounds itself against it (the serve-bounded-retry lint rule
/// checks exactly this pairing).
inline constexpr int kMaxClientRetries = 5;

struct ClientOptions {
  std::uint32_t client_id = 0;
  /// Campaign base seed; the channel and retry-jitter streams are derived
  /// from it per client via the sanctioned stream tags, so adding a client
  /// never perturbs another client's randomness.
  std::uint64_t campaign_seed = 0xA59E;
  /// Loss model for this client's link to the server; `seed` is
  /// overwritten with the derived per-client stream.
  ChannelOptions channel;
  double net_delay_ms = 0.2;  ///< one-way client↔server propagation
  double rto_ms = 4.0;        ///< initial retry timeout
  double backoff = 2.0;       ///< timeout multiplier per retry
  int max_retries = kMaxClientRetries;
  double retry_jitter_ms = 0.5;  ///< uniform extra wait per armed timer
};

struct ClientStats {
  std::uint64_t submitted = 0;
  std::uint64_t frames_sent = 0;        ///< attempts offered to the channel
  std::uint64_t responses = 0;          ///< decodable responses received
  std::uint64_t duplicates_ignored = 0; ///< responses for finished queries
  std::uint64_t undecodable = 0;        ///< response frames that failed decode
  std::uint64_t retransmits = 0;        ///< timer-driven re-sends
  std::uint64_t gave_up = 0;            ///< cap or deadline ended the query
  std::uint64_t shed_seen = 0;          ///< SHED responses absorbed
};

/// Final fate of one submitted query, for the driver's post-hoc auditor.
struct Outcome {
  Request request;
  Response response;          ///< meaningful iff got_response
  bool got_response = false;  ///< false: retry cap / deadline gave up
};

class Client {
 public:
  using Callback = std::function<void(const Outcome&)>;

  Client(Simulator& sim, Server& server, const ClientOptions& options = {});

  /// Submits one query at sim.now().  The request's `id` is assigned here
  /// ((client_id << 32) | sequence) — retries reuse it verbatim.  Returns
  /// the assigned id.  `callback`, if set, fires once when the query
  /// finishes (answer or give-up).
  std::uint64_t submit(Request request, Callback callback = {});

  [[nodiscard]] const ClientStats& stats() const { return stats_; }
  [[nodiscard]] const std::vector<Outcome>& outcomes() const {
    return outcomes_;
  }
  [[nodiscard]] const ChannelModel& channel() const { return channel_; }
  [[nodiscard]] std::uint32_t client_id() const {
    return options_.client_id;
  }

 private:
  struct PendingQuery {
    Request request;
    Callback callback;
    int attempts = 0;  ///< retransmissions so far (0 = first send only)
    bool done = false;
  };

  void send_attempt(std::uint64_t id);
  void arm_retry(std::uint64_t id);
  void maybe_retry(std::uint64_t id, int armed_attempts);
  /// True once the query's own deadline makes further retries pointless —
  /// the second half (with max_retries) of the bounded-retry contract.
  [[nodiscard]] bool deadline_passed(const Request& request) const;
  void on_response_frame(const std::string& frame);
  void finish(std::uint64_t id, const Response* response);

  Simulator* sim_;
  Server* server_;
  ClientOptions options_;
  ChannelModel channel_;
  Rng retry_rng_;
  ClientStats stats_;
  std::uint32_t next_sequence_ = 0;
  std::map<std::uint64_t, PendingQuery> pending_;
  std::vector<Outcome> outcomes_;
};

}  // namespace aspen::serve
