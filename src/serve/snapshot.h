// Warm snapshot registry: the bridge between the live, chaos-mutated fabric
// and the immutable states queries execute against.
//
// The registry owns a routing::DeltaSession kept warm against the live
// overlay.  seal() syncs the session to the live up/down bits (incremental
// patch, not a recompute) and pins the result as a copy-on-write
// PinnedState; between seals, note_live_event() just bumps an epoch
// counter, which is what makes degraded-mode serving cheap — the server
// keeps answering from the last sealed snapshot and labels every response
// with the pin's fingerprint plus how many live events it is behind.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "src/routing/delta.h"
#include "src/topo/link_state.h"
#include "src/topo/topology.h"

namespace aspen::serve {

/// One sealed serving state plus the labeling anchors every response
/// derived from it carries.
struct Snapshot {
  std::shared_ptr<const routing::PinnedState> pinned;
  std::uint64_t seal_epoch = 0;  ///< live epoch when sealed
  double seal_time_ms = 0.0;     ///< virtual time when sealed
};

class SnapshotRegistry {
 public:
  SnapshotRegistry(const Topology& topo, DestGranularity granularity,
                   int threads = 1);

  /// The live fabric changed (one chaos action landed).  Cheap: bumps the
  /// epoch the staleness bound is computed from; no routing work.
  void note_live_event();

  /// Syncs the warm session to `live` and seals the result as the current
  /// snapshot at `now_ms`.  When nothing changed since the last seal the
  /// pin is shared, not copied.
  const Snapshot& seal(const LinkStateOverlay& live, double now_ms);

  [[nodiscard]] const Snapshot& current() const;
  [[nodiscard]] std::uint64_t live_epoch() const { return live_epoch_; }
  [[nodiscard]] std::uint64_t seals() const { return seals_; }

  /// How many live events the current snapshot is behind.
  [[nodiscard]] std::uint64_t staleness_events() const;

  /// Kill-and-resume path: re-derives the sealed state from its failed-link
  /// list against the intact topology, verifies the recomputed fingerprint
  /// matches the checkpointed one (throws PreconditionError otherwise), and
  /// reinstates the epoch bookkeeping.
  void restore(const std::vector<LinkId>& failed,
               std::uint64_t expected_fingerprint, std::uint64_t seal_epoch,
               double seal_time_ms, std::uint64_t live_epoch,
               std::uint64_t seals);

 private:
  const Topology* topo_;
  routing::DeltaSession session_;
  Snapshot current_;
  std::uint64_t live_epoch_ = 0;
  std::uint64_t seals_ = 0;
};

}  // namespace aspen::serve
