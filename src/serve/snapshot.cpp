#include "src/serve/snapshot.h"

#include "src/obs/obs.h"
#include "src/util/contracts.h"
#include "src/util/status.h"

namespace aspen::serve {

SnapshotRegistry::SnapshotRegistry(const Topology& topo,
                                   DestGranularity granularity, int threads)
    : topo_(&topo), session_(topo, granularity, threads) {
  // Serving starts from the intact fabric: seal epoch 0 at t = 0 so the
  // server never lacks a labeled snapshot, even before the first sync.
  current_.pinned = session_.pin();
  current_.seal_epoch = 0;
  current_.seal_time_ms = 0.0;
  seals_ = 1;
}

void SnapshotRegistry::note_live_event() { ++live_epoch_; }

const Snapshot& SnapshotRegistry::seal(const LinkStateOverlay& live,
                                       double now_ms) {
  session_.sync_to(live);
  current_.pinned = session_.pin();
  current_.seal_epoch = live_epoch_;
  current_.seal_time_ms = now_ms;
  ++seals_;
  obs::count("serve.seals");
  obs::trace_event(now_ms, obs::TraceKind::kServeSeal,
                   static_cast<std::uint32_t>(live_epoch_), 0,
                   current_.pinned->fingerprint, "seal");
  return current_;
}

const Snapshot& SnapshotRegistry::current() const {
  ASPEN_ASSERT(current_.pinned != nullptr, "registry has no sealed snapshot");
  return current_;
}

std::uint64_t SnapshotRegistry::staleness_events() const {
  return live_epoch_ - current_.seal_epoch;
}

void SnapshotRegistry::restore(const std::vector<LinkId>& failed,
                               std::uint64_t expected_fingerprint,
                               std::uint64_t seal_epoch, double seal_time_ms,
                               std::uint64_t live_epoch, std::uint64_t seals) {
  LinkStateOverlay want(*topo_);
  for (const LinkId link : failed) want.fail(link);
  session_.sync_to(want);
  current_.pinned = session_.pin();
  if (current_.pinned->fingerprint != expected_fingerprint) {
    throw PreconditionError(
        "serve checkpoint: recomputed snapshot fingerprint does not match "
        "the sealed digest (corrupt checkpoint or changed topology)");
  }
  current_.seal_epoch = seal_epoch;
  current_.seal_time_ms = seal_time_ms;
  live_epoch_ = live_epoch;
  seals_ = seals;
}

}  // namespace aspen::serve
