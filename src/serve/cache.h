// Digest-keyed result cache for the query service.
//
// Keys are (snapshot fingerprint, query content fingerprint): a QueryResult
// is a pure function of those two, so a hit can be served without touching
// the routing state at all, and sealing a new snapshot naturally invalidates
// nothing — stale entries just stop being asked for and age out of the FIFO.
// Eviction is strict insertion-order FIFO (not LRU) so the cache's contents
// are a deterministic function of the insert sequence alone; that is what
// lets checkpoints serialize the cache and restore it byte-identically.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <utility>
#include <vector>

#include "src/serve/wire.h"

namespace aspen::serve {

class ResultCache {
 public:
  explicit ResultCache(std::size_t capacity);

  /// Looks up a (snapshot digest, query fingerprint) key, bumping the
  /// hit/miss counters.  The pointer is invalidated by the next insert.
  [[nodiscard]] const QueryResult* find(std::uint64_t digest,
                                        std::uint64_t query_fp);

  /// Inserts (or overwrites) an entry, evicting the oldest insertion when
  /// the cache is full.  Re-inserting an existing key does not re-age it.
  void insert(std::uint64_t digest, std::uint64_t query_fp,
              const QueryResult& result);

  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] std::uint64_t hits() const { return hits_; }
  [[nodiscard]] std::uint64_t misses() const { return misses_; }
  [[nodiscard]] std::uint64_t evictions() const { return evictions_; }

  /// Chain fingerprint over entries (in insertion order) and counters, for
  /// checkpoint sealing and kill-and-resume identity checks.
  [[nodiscard]] std::uint64_t fingerprint() const;

  /// Checkpoint body: counters plus every entry in insertion order, as
  /// line-oriented `key value...` text (see docs/SERVE.md).
  void serialize(std::ostream& os) const;

  /// Rebuilds the cache from serialize() output already tokenized by the
  /// server's checkpoint parser: resets contents, then entries must be
  /// re-inserted via restore_entry in serialized order.
  void restore_reset(std::uint64_t hits, std::uint64_t misses,
                     std::uint64_t evictions);
  void restore_entry(std::uint64_t digest, std::uint64_t query_fp,
                     const QueryResult& result);

 private:
  using Key = std::pair<std::uint64_t, std::uint64_t>;

  std::size_t capacity_;
  std::map<Key, QueryResult> entries_;
  std::vector<Key> order_;  ///< insertion order, oldest first
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace aspen::serve
