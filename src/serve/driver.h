// The serve-under-chaos harness plus its post-hoc auditor.
//
// run_serve_under_chaos interleaves three deterministic schedules on one
// virtual-time Simulator: a ChaosCampaign advanced one fault-plane action
// at a time, a SnapshotRegistry that seals the live fabric every few
// actions, and a fleet of retrying clients firing route / what-if / loss
// queries through their lossy channels.  Every answer the server gives is
// labeled with the snapshot digest it was computed from and how stale that
// snapshot was — and after the run, an auditor replays each answered query
// against the *exact* pinned snapshot its digest names and checks the
// result, the digest, and the staleness bound against the recorded ground
// truth timeline.  Zero mismatches is the acceptance bar: degraded-mode
// answers may be stale, but they are never silently wrong.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/fault/chaos.h"
#include "src/serve/client.h"
#include "src/serve/server.h"
#include "src/sim/stats.h"
#include "src/topo/topology.h"

namespace aspen::serve {

struct ServeChaosOptions {
  /// Fault schedule; `chaos.seed` also seeds the query and client streams
  /// (each through its own derived stream tag).
  ChaosOptions chaos;
  int num_queries = 200;
  int num_clients = 4;
  double query_interarrival_ms = 2.0;   ///< arrival spacing across clients
  double action_every_ms = 50.0;        ///< chaos action spacing
  int seal_every_actions = 2;           ///< seal cadence (snapshots lag chaos)
  /// Cut a server checkpoint after every N answered queries (0 = never).
  int checkpoint_every = 0;
  ServerOptions server;
  /// Template for every client; client_id / campaign_seed are overwritten.
  ClientOptions client;
  int threads = 1;  ///< routing recompute threads (result-identical)
  /// Query-class mix, per mille; the remainder is kRoute.
  int whatif_permille = 300;
  int loss_permille = 200;
  std::uint32_t loss_flows = 16;
  /// Per-query budget from arrival (0 = no deadline).
  double deadline_ms = 0.0;
};

struct ServeChaosReport {
  ChaosOutcome chaos;
  ServerStats server;
  ClientStats clients;  ///< summed across the fleet
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_evictions = 0;

  /// Arrival-to-answer latency per class, raw (percentiles are the
  /// caller's job — Summary keeps no order statistics).
  std::vector<double> route_latency_ms;
  std::vector<double> what_if_latency_ms;
  std::vector<double> loss_latency_ms;
  /// Staleness labels across answered (kOk) queries, raw + aggregated.
  std::vector<std::uint64_t> staleness_event_samples;
  Summary staleness_ms;

  std::uint64_t answered = 0;           ///< kOk outcomes
  std::uint64_t rejected_deadline = 0;  ///< kDeadlineExceeded outcomes
  std::uint64_t rejected_malformed = 0; ///< kMalformed outcomes
  std::uint64_t gave_up = 0;            ///< retry cap / deadline give-ups

  std::uint64_t seals = 0;
  std::uint64_t checkpoints_cut = 0;
  /// Every checkpoint cut during the run, in cut order (kill-and-resume
  /// tests restore from each of these).
  std::vector<std::string> checkpoints;

  // ---- Post-hoc audit --------------------------------------------------
  std::uint64_t audited = 0;
  std::uint64_t audit_mismatches = 0;
  std::vector<std::string> audit_messages;  ///< first few, for diagnosis

  /// Fold over every response the clients accepted, in completion order.
  std::uint64_t response_stream_hash = 0;
  /// The server's fold over every reply frame it issued.
  std::uint64_t reply_stream_hash = 0;

  /// Identity fold over the integer/bit content of the report; equal
  /// fingerprints at --threads=1/2/4 is the determinism acceptance check.
  [[nodiscard]] std::uint64_t fingerprint() const;

  /// The acceptance verdict: every label audited clean, chaos invariants
  /// held, and the fabric was restored after the unwind.
  [[nodiscard]] bool passed() const;
};

/// Runs one serve-under-chaos campaign.  Deterministic: the report
/// fingerprint depends only on (kind, topo, options).
[[nodiscard]] ServeChaosReport run_serve_under_chaos(
    ProtocolKind kind, const Topology& topo,
    const ServeChaosOptions& options = {});

}  // namespace aspen::serve
