// Length-prefixed binary wire protocol for the what-if query service.
//
// One frame is a little-endian u32 payload length followed by the payload;
// payloads open with a magic ("ASRV"), a version byte, and a direction tag,
// so a truncated, reordered, or corrupted frame decodes to "malformed"
// instead of a wrong answer.  Requests carry an explicit client-assigned
// id: the id is the service's idempotency key (retries reuse it, the
// server replays the stored response instead of re-applying), while
// query_fingerprint() — which deliberately excludes the id and deadline —
// is the *content* identity the digest-keyed result cache is keyed on.
//
// Doubles cross the wire as IEEE-754 bit patterns, never as decimal text,
// so encode/decode round-trips are byte-exact — the property the
// kill-and-resume and golden-trace suites pin.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace aspen::serve {

inline constexpr std::uint32_t kWireMagic = 0x41535256u;  // "ASRV"
inline constexpr std::uint8_t kWireVersion = 1;

/// The three query classes the service answers.
enum class QueryKind : std::uint8_t {
  kRoute = 0,   ///< can src reach dst right now, and over how many hops?
  kWhatIf = 1,  ///< what breaks if these links die on top of current state?
  kLoss = 2,    ///< expected delivery for a sampled flow set
};

[[nodiscard]] const char* to_cstring(QueryKind kind);

struct Request {
  std::uint64_t id = 0;       ///< idempotency key; retries reuse it
  QueryKind kind = QueryKind::kRoute;
  /// Absolute virtual-time deadline (ms); 0 means none.  The server admits
  /// a query only when its projected completion meets the deadline, and
  /// asserts the monotone budget at completion.
  double deadline_ms = 0.0;
  std::uint32_t src = 0;  ///< source host (kRoute, kWhatIf vantage)
  std::uint32_t dst = 0;  ///< destination host (kRoute)
  std::vector<std::uint32_t> fail_links;  ///< kWhatIf hypothetical cuts
  std::uint32_t flows = 0;                ///< kLoss: flows to sample
  std::uint64_t flow_seed = 0;  ///< ECMP / flow-sampling stream
};

enum class ResponseStatus : std::uint8_t {
  kOk = 0,
  kShed = 1,              ///< admission control refused: over the watermark
  kDeadlineExceeded = 2,  ///< projected completion missed the deadline
  kMalformed = 3,         ///< frame failed to decode
};

[[nodiscard]] const char* to_cstring(ResponseStatus status);

/// The pure query answer — a function of (snapshot, query content) only,
/// which is what makes it cacheable under a (digest, fingerprint) key and
/// re-derivable by the post-hoc auditor.
struct QueryResult {
  std::uint32_t delivered = 0;         ///< kRoute: 1 iff the walk delivered
  std::uint32_t hops = 0;              ///< kRoute: links traversed
  std::uint32_t switches_changed = 0;  ///< kWhatIf: tables that would move
  std::uint32_t dests_lost = 0;  ///< kWhatIf: vantage dests newly lost
  std::uint32_t flows_delivered = 0;  ///< kLoss
  std::uint32_t flows_lost = 0;       ///< kLoss

  friend bool operator==(const QueryResult&, const QueryResult&) = default;
};

/// Every response — including shed and deadline rejections — is labeled
/// with the serving snapshot's digest and a staleness bound (chaos events
/// and virtual ms since that snapshot was sealed), so a client always
/// knows *what* answered, even in degraded mode.
struct Response {
  std::uint64_t id = 0;
  ResponseStatus status = ResponseStatus::kOk;
  std::uint64_t snapshot_digest = 0;
  std::uint32_t staleness_events = 0;  ///< chaos actions since the seal
  double staleness_ms = 0.0;           ///< virtual ms since the seal
  bool from_cache = false;
  QueryResult result;
};

/// Encodes one full frame (length prefix included).
[[nodiscard]] std::string encode_request(const Request& request);
[[nodiscard]] std::string encode_response(const Response& response);

/// Decodes a full frame.  Returns false on any framing error (short frame,
/// bad magic/version/direction, truncated payload, trailing bytes); `out`
/// then holds whatever prefix decoded — possibly the id, for error replies.
[[nodiscard]] bool decode_request(const std::string& frame, Request& out);
[[nodiscard]] bool decode_response(const std::string& frame, Response& out);

/// Content identity of a request: everything that determines the answer
/// (kind, endpoints, hypothetical cuts, flow set) and nothing that does
/// not (id, deadline).  The result cache keys on (snapshot digest, this).
[[nodiscard]] std::uint64_t query_fingerprint(const Request& request);

}  // namespace aspen::serve
