#include "src/serve/client.h"

#include <cmath>
#include <utility>

#include "src/fault/seed.h"
#include "src/util/contracts.h"

namespace aspen::serve {

namespace {

[[nodiscard]] ChannelOptions derive_channel(const ClientOptions& options) {
  ChannelOptions channel = options.channel;
  channel.seed = fault::derive_stream_seed(
      fault::derive_stream_seed(options.campaign_seed,
                                fault::kStreamServeChannel),
      options.client_id);
  return channel;
}

}  // namespace

Client::Client(Simulator& sim, Server& server, const ClientOptions& options)
    : sim_(&sim),
      server_(&server),
      options_(options),
      channel_(derive_channel(options)),
      retry_rng_(fault::derive_stream_seed(
          fault::derive_stream_seed(options.campaign_seed,
                                    fault::kStreamServeClient),
          options.client_id)) {
  ASPEN_REQUIRE(options_.max_retries >= 0 &&
                    options_.max_retries <= kMaxClientRetries,
                "client retry budget must stay within kMaxClientRetries");
  ASPEN_REQUIRE(options_.rto_ms > 0.0 && options_.backoff >= 1.0,
                "retry timeout must be positive and backoff non-shrinking");
}

std::uint64_t Client::submit(Request request, Callback callback) {
  request.id = (static_cast<std::uint64_t>(options_.client_id) << 32) |
               next_sequence_++;
  ++stats_.submitted;
  const std::uint64_t id = request.id;
  PendingQuery& pending = pending_[id];
  pending.request = std::move(request);
  pending.callback = std::move(callback);
  send_attempt(id);
  return id;
}

void Client::send_attempt(std::uint64_t id) {
  const PendingQuery& pending = pending_.at(id);
  ++stats_.frames_sent;
  const std::string frame = encode_request(pending.request);
  // The request rides the lossy channel to the server; the server's reply
  // callback rides the same channel back.  Either leg may drop or
  // duplicate — that is what the retry loop and the server's dedup table
  // are for.
  channel_.transmit(*sim_, options_.net_delay_ms, [this, frame] {
    server_->handle_frame(frame, [this](const std::string& response_frame) {
      channel_.transmit(*sim_, options_.net_delay_ms,
                        [this, response_frame] {
                          on_response_frame(response_frame);
                        });
    });
  });
  arm_retry(id);
}

void Client::arm_retry(std::uint64_t id) {
  const PendingQuery& pending = pending_.at(id);
  // Exponential backoff from the retry count, plus derived-stream jitter so
  // simultaneous clients never synchronize their retry storms.
  const double wait =
      options_.rto_ms *
          std::pow(options_.backoff, static_cast<double>(pending.attempts)) +
      options_.retry_jitter_ms * retry_rng_.real();
  sim_->schedule(wait, [this, id, armed = pending.attempts] {
    maybe_retry(id, armed);
  });
}

bool Client::deadline_passed(const Request& request) const {
  return request.deadline_ms > 0.0 && sim_->now() >= request.deadline_ms;
}

void Client::maybe_retry(std::uint64_t id, int armed_attempts) {
  PendingQuery& pending = pending_.at(id);
  // Stale timer: the query finished, or a later attempt re-armed.
  if (pending.done || pending.attempts != armed_attempts) return;
  const bool cap_exhausted = pending.attempts >= options_.max_retries;
  if (cap_exhausted || deadline_passed(pending.request)) {
    ++stats_.gave_up;
    finish(id, nullptr);
    return;
  }
  ++pending.attempts;
  ++stats_.retransmits;
  send_attempt(id);
}

void Client::on_response_frame(const std::string& frame) {
  Response response;
  if (!decode_response(frame, response)) {
    ++stats_.undecodable;
    return;
  }
  const auto it = pending_.find(response.id);
  if (it == pending_.end() || it->second.done) {
    ++stats_.duplicates_ignored;
    return;
  }
  ++stats_.responses;
  if (response.status == ResponseStatus::kShed) {
    // Not an answer: the server explicitly declined under load.  The armed
    // backoff timer will try again with a longer wait.
    ++stats_.shed_seen;
    return;
  }
  finish(response.id, &response);
}

void Client::finish(std::uint64_t id, const Response* response) {
  PendingQuery& pending = pending_.at(id);
  pending.done = true;
  Outcome outcome;
  outcome.request = pending.request;
  if (response != nullptr) {
    outcome.response = *response;
    outcome.got_response = true;
  }
  outcomes_.push_back(outcome);
  if (pending.callback) pending.callback(outcomes_.back());
  pending.callback = nullptr;
}

}  // namespace aspen::serve
