#include "src/serve/cache.h"

#include <ostream>

#include "src/fault/seed.h"
#include "src/obs/obs.h"
#include "src/util/contracts.h"

namespace aspen::serve {

ResultCache::ResultCache(std::size_t capacity) : capacity_(capacity) {
  ASPEN_REQUIRE(capacity_ > 0, "result cache capacity must be positive");
}

const QueryResult* ResultCache::find(std::uint64_t digest,
                                     std::uint64_t query_fp) {
  const auto it = entries_.find(Key{digest, query_fp});
  if (it == entries_.end()) {
    ++misses_;
    obs::count("serve.cache.miss");
    return nullptr;
  }
  ++hits_;
  obs::count("serve.cache.hit");
  return &it->second;
}

void ResultCache::insert(std::uint64_t digest, std::uint64_t query_fp,
                         const QueryResult& result) {
  const Key key{digest, query_fp};
  const auto [it, inserted] = entries_.insert_or_assign(key, result);
  (void)it;
  if (!inserted) return;  // overwrite keeps the original age
  order_.push_back(key);
  if (entries_.size() > capacity_) {
    const Key oldest = order_.front();
    order_.erase(order_.begin());
    entries_.erase(oldest);
    ++evictions_;
    obs::count("serve.cache.evict");
  }
}

std::uint64_t ResultCache::fingerprint() const {
  std::uint64_t h = 0xCACE1u;
  h = fault::derive_stream_seed(h, hits_);
  h = fault::derive_stream_seed(h, misses_);
  h = fault::derive_stream_seed(h, evictions_);
  h = fault::derive_stream_seed(h, order_.size());
  for (const Key& key : order_) {
    h = fault::derive_stream_seed(h, key.first);
    h = fault::derive_stream_seed(h, key.second);
    const QueryResult& r = entries_.at(key);
    h = fault::derive_stream_seed(h, r.delivered);
    h = fault::derive_stream_seed(h, r.hops);
    h = fault::derive_stream_seed(h, r.switches_changed);
    h = fault::derive_stream_seed(h, r.dests_lost);
    h = fault::derive_stream_seed(h, r.flows_delivered);
    h = fault::derive_stream_seed(h, r.flows_lost);
  }
  return h;
}

void ResultCache::serialize(std::ostream& os) const {
  os << "cache_hits " << hits_ << "\n";
  os << "cache_misses " << misses_ << "\n";
  os << "cache_evictions " << evictions_ << "\n";
  os << "cache_entries " << order_.size() << "\n";
  for (const Key& key : order_) {
    const QueryResult& r = entries_.at(key);
    os << "centry " << key.first << " " << key.second << " " << r.delivered
       << " " << r.hops << " " << r.switches_changed << " " << r.dests_lost
       << " " << r.flows_delivered << " " << r.flows_lost << "\n";
  }
}

void ResultCache::restore_reset(std::uint64_t hits, std::uint64_t misses,
                                std::uint64_t evictions) {
  entries_.clear();
  order_.clear();
  hits_ = hits;
  misses_ = misses;
  evictions_ = evictions;
}

void ResultCache::restore_entry(std::uint64_t digest, std::uint64_t query_fp,
                                const QueryResult& result) {
  const Key key{digest, query_fp};
  ASPEN_REQUIRE(entries_.size() < capacity_,
                "serve checkpoint: more cache entries than capacity");
  const bool inserted = entries_.insert_or_assign(key, result).second;
  ASPEN_REQUIRE(inserted, "serve checkpoint: duplicate cache entry");
  order_.push_back(key);
}

}  // namespace aspen::serve
