#include "src/serve/wire.h"

#include <bit>
#include <cstddef>

#include "src/fault/seed.h"

namespace aspen::serve {

namespace {

constexpr std::uint8_t kDirRequest = 'Q';
constexpr std::uint8_t kDirResponse = 'R';

void put_u8(std::string& out, std::uint8_t v) {
  out.push_back(static_cast<char>(v));
}

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    put_u8(out, static_cast<std::uint8_t>((v >> (8 * i)) & 0xFFu));
  }
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    put_u8(out, static_cast<std::uint8_t>((v >> (8 * i)) & 0xFFu));
  }
}

void put_f64(std::string& out, double v) {
  put_u64(out, std::bit_cast<std::uint64_t>(v));
}

/// Bounds-checked little-endian reader over one frame's payload.
struct Reader {
  const std::string& data;
  std::size_t at;
  bool ok = true;

  std::uint8_t u8() {
    if (at + 1 > data.size()) {
      ok = false;
      return 0;
    }
    return static_cast<std::uint8_t>(data[at++]);
  }
  std::uint32_t u32() {
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(u8()) << (8 * i);
    }
    return v;
  }
  std::uint64_t u64() {
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(u8()) << (8 * i);
    }
    return v;
  }
  double f64() { return std::bit_cast<double>(u64()); }
};

/// Validates the frame envelope (length prefix, magic, version, direction)
/// and positions a reader at the first body byte.
bool open_frame(const std::string& frame, std::uint8_t direction,
                Reader& reader) {
  if (frame.size() < 4) return false;
  Reader prefix{frame, 0};
  const std::uint32_t length = prefix.u32();
  if (static_cast<std::size_t>(length) + 4 != frame.size()) return false;
  reader.at = 4;
  if (reader.u32() != kWireMagic) return false;
  if (reader.u8() != kWireVersion) return false;
  if (reader.u8() != direction) return false;
  return reader.ok;
}

/// Stamps the length prefix once the payload is complete.
void seal_frame(std::string& frame) {
  const std::uint32_t length = static_cast<std::uint32_t>(frame.size() - 4);
  for (int i = 0; i < 4; ++i) {
    frame[static_cast<std::size_t>(i)] =
        static_cast<char>((length >> (8 * i)) & 0xFFu);
  }
}

}  // namespace

const char* to_cstring(QueryKind kind) {
  switch (kind) {
    case QueryKind::kRoute: return "route";
    case QueryKind::kWhatIf: return "what_if";
    case QueryKind::kLoss: return "loss";
  }
  return "?";
}

const char* to_cstring(ResponseStatus status) {
  switch (status) {
    case ResponseStatus::kOk: return "ok";
    case ResponseStatus::kShed: return "shed";
    case ResponseStatus::kDeadlineExceeded: return "deadline_exceeded";
    case ResponseStatus::kMalformed: return "malformed";
  }
  return "?";
}

std::string encode_request(const Request& request) {
  std::string frame(4, '\0');  // length prefix placeholder
  put_u32(frame, kWireMagic);
  put_u8(frame, kWireVersion);
  put_u8(frame, kDirRequest);
  put_u8(frame, static_cast<std::uint8_t>(request.kind));
  put_u64(frame, request.id);
  put_f64(frame, request.deadline_ms);
  put_u32(frame, request.src);
  put_u32(frame, request.dst);
  put_u32(frame, request.flows);
  put_u64(frame, request.flow_seed);
  put_u32(frame, static_cast<std::uint32_t>(request.fail_links.size()));
  for (const std::uint32_t link : request.fail_links) put_u32(frame, link);
  seal_frame(frame);
  return frame;
}

std::string encode_response(const Response& response) {
  std::string frame(4, '\0');
  put_u32(frame, kWireMagic);
  put_u8(frame, kWireVersion);
  put_u8(frame, kDirResponse);
  put_u8(frame, static_cast<std::uint8_t>(response.status));
  put_u64(frame, response.id);
  put_u64(frame, response.snapshot_digest);
  put_u32(frame, response.staleness_events);
  put_f64(frame, response.staleness_ms);
  put_u8(frame, response.from_cache ? 1 : 0);
  put_u32(frame, response.result.delivered);
  put_u32(frame, response.result.hops);
  put_u32(frame, response.result.switches_changed);
  put_u32(frame, response.result.dests_lost);
  put_u32(frame, response.result.flows_delivered);
  put_u32(frame, response.result.flows_lost);
  seal_frame(frame);
  return frame;
}

bool decode_request(const std::string& frame, Request& out) {
  Reader r{frame, 0};
  if (!open_frame(frame, kDirRequest, r)) return false;
  const std::uint8_t kind = r.u8();
  if (kind > static_cast<std::uint8_t>(QueryKind::kLoss)) return false;
  out.kind = static_cast<QueryKind>(kind);
  out.id = r.u64();
  out.deadline_ms = r.f64();
  out.src = r.u32();
  out.dst = r.u32();
  out.flows = r.u32();
  out.flow_seed = r.u64();
  const std::uint32_t num_links = r.u32();
  if (!r.ok) return false;
  // 4 bytes per link id must fit in the remaining payload (guards against
  // a corrupt count requesting a huge allocation).
  if (frame.size() - r.at < static_cast<std::size_t>(num_links) * 4) {
    return false;
  }
  out.fail_links.clear();
  out.fail_links.reserve(num_links);
  for (std::uint32_t i = 0; i < num_links; ++i) {
    out.fail_links.push_back(r.u32());
  }
  return r.ok && r.at == frame.size();
}

bool decode_response(const std::string& frame, Response& out) {
  Reader r{frame, 0};
  if (!open_frame(frame, kDirResponse, r)) return false;
  const std::uint8_t status = r.u8();
  if (status > static_cast<std::uint8_t>(ResponseStatus::kMalformed)) {
    return false;
  }
  out.status = static_cast<ResponseStatus>(status);
  out.id = r.u64();
  out.snapshot_digest = r.u64();
  out.staleness_events = r.u32();
  out.staleness_ms = r.f64();
  out.from_cache = r.u8() != 0;
  out.result.delivered = r.u32();
  out.result.hops = r.u32();
  out.result.switches_changed = r.u32();
  out.result.dests_lost = r.u32();
  out.result.flows_delivered = r.u32();
  out.result.flows_lost = r.u32();
  return r.ok && r.at == frame.size();
}

std::uint64_t query_fingerprint(const Request& request) {
  // Chain the sanctioned mixer over the content fields; id and deadline are
  // deliberately absent so a retried or re-deadlined query hits the cache.
  std::uint64_t h = 0x5EBAE1u;
  h = fault::derive_stream_seed(h, static_cast<std::uint64_t>(request.kind));
  h = fault::derive_stream_seed(h, request.src);
  h = fault::derive_stream_seed(h, request.dst);
  h = fault::derive_stream_seed(h, request.flows);
  h = fault::derive_stream_seed(h, request.flow_seed);
  h = fault::derive_stream_seed(h, request.fail_links.size());
  for (const std::uint32_t link : request.fail_links) {
    h = fault::derive_stream_seed(h, link);
  }
  return h;
}

}  // namespace aspen::serve
