#include "src/serve/server.h"

#include <algorithm>
#include <bit>
#include <sstream>
#include <utility>

#include "src/fault/seed.h"
#include "src/obs/obs.h"
#include "src/routing/packet_walk.h"
#include "src/routing/updown.h"
#include "src/util/contracts.h"
#include "src/util/rng.h"
#include "src/util/status.h"

namespace aspen::serve {

namespace {

constexpr const char* kCheckpointMagic = "ASPNSRVE1";

/// Most flows a single kLoss query may sample — bounds per-query CPU.
constexpr std::uint32_t kMaxLossFlows = 4096;

[[nodiscard]] std::uint32_t lo32(std::uint64_t v) {
  return static_cast<std::uint32_t>(v & 0xFFFFFFFFull);
}

/// Chain-hash step for checkpoint/stream fingerprints (the sanctioned
/// mixer, same idiom as the survivability checkpoints).
[[nodiscard]] std::uint64_t mix(std::uint64_t h, std::uint64_t v) {
  return fault::derive_stream_seed(h, v);
}

/// FNV-1a over raw frame bytes, for the reply-stream identity fold.
[[nodiscard]] std::uint64_t fold_bytes(std::uint64_t h,
                                       const std::string& bytes) {
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001B3ull;
  }
  return h;
}

[[nodiscard]] std::uint64_t fold_response(std::uint64_t h,
                                          const Response& r) {
  h = mix(h, r.id);
  h = mix(h, static_cast<std::uint64_t>(r.status));
  h = mix(h, r.snapshot_digest);
  h = mix(h, r.staleness_events);
  h = mix(h, std::bit_cast<std::uint64_t>(r.staleness_ms));
  h = mix(h, r.from_cache ? 1u : 0u);
  h = mix(h, r.result.delivered);
  h = mix(h, r.result.hops);
  h = mix(h, r.result.switches_changed);
  h = mix(h, r.result.dests_lost);
  h = mix(h, r.result.flows_delivered);
  h = mix(h, r.result.flows_lost);
  return h;
}

std::uint64_t parse_field(std::istringstream& is, const char* key) {
  std::string word;
  std::uint64_t value = 0;
  if (!(is >> word) || word != key || !(is >> value)) {
    throw PreconditionError(std::string("serve checkpoint: expected ") + key);
  }
  return value;
}

}  // namespace

std::uint64_t ServerStats::fingerprint() const {
  std::uint64_t h = 0x5E12E0u;
  h = mix(h, received);
  h = mix(h, admitted);
  h = mix(h, completed);
  h = mix(h, shed);
  h = mix(h, deadline_rejected);
  h = mix(h, malformed);
  h = mix(h, duplicate_replays);
  h = mix(h, coalesced);
  return h;
}

QueryResult execute_query(const Topology& topo,
                          const routing::PinnedState& snapshot,
                          const Request& request) {
  // Re-materialize the snapshot's binary liveness; degraded health never
  // enters a snapshot, so the failed-link list is the whole story.
  LinkStateOverlay actual(topo);
  for (const LinkId link : snapshot.failed) actual.fail(link);

  WalkOptions pure;
  pure.apply_health = false;

  QueryResult result;
  switch (request.kind) {
    case QueryKind::kRoute: {
      const TableRouter router(snapshot.state);
      pure.flow_seed = request.flow_seed;
      const WalkResult walk =
          walk_packet(topo, router, actual, HostId{request.src},
                      HostId{request.dst}, pure);
      result.delivered = walk.delivered() ? 1 : 0;
      result.hops = static_cast<std::uint32_t>(std::max(walk.hops, 0));
      break;
    }
    case QueryKind::kWhatIf: {
      RoutingState hypothetical = snapshot.state;
      std::vector<LinkId> changed;
      for (const std::uint32_t raw : request.fail_links) {
        const LinkId link{raw};
        if (actual.fail(link)) changed.push_back(link);
      }
      if (!changed.empty()) {
        recompute_updown_routes(topo, actual, hypothetical, changed);
      }
      result.switches_changed = static_cast<std::uint32_t>(
          switches_with_changed_tables(snapshot.state, hypothetical));
      const SwitchId vantage = topo.edge_switch_of(HostId{request.src});
      const std::uint64_t before =
          snapshot.state.table(vantage).reachable_count();
      const std::uint64_t after =
          hypothetical.table(vantage).reachable_count();
      result.dests_lost =
          static_cast<std::uint32_t>(before > after ? before - after : 0);
      break;
    }
    case QueryKind::kLoss: {
      const TableRouter router(snapshot.state);
      Rng flow_rng(request.flow_seed);
      const std::uint64_t hosts = topo.num_hosts();
      for (std::uint32_t f = 0; f < request.flows; ++f) {
        const HostId src{static_cast<std::uint32_t>(
            flow_rng.index(static_cast<std::size_t>(hosts)))};
        HostId dst{static_cast<std::uint32_t>(
            flow_rng.index(static_cast<std::size_t>(hosts)))};
        if (dst == src) {
          dst = HostId{static_cast<std::uint32_t>((dst.value() + 1) % hosts)};
        }
        pure.flow_seed = f;
        const WalkResult walk =
            walk_packet(topo, router, actual, src, dst, pure);
        if (walk.delivered()) {
          ++result.flows_delivered;
        } else {
          ++result.flows_lost;
        }
      }
      break;
    }
  }
  return result;
}

Server::Server(Simulator& sim, const Topology& topo,
               SnapshotRegistry& registry, const ServerOptions& options)
    : sim_(&sim),
      topo_(&topo),
      registry_(&registry),
      options_(options),
      cache_(options.cache_capacity) {
  ASPEN_REQUIRE(options_.inflight_watermark > 0,
                "in-flight watermark must be positive");
}

double Server::service_ms(QueryKind kind) const {
  switch (kind) {
    case QueryKind::kRoute: return options_.route_service_ms;
    case QueryKind::kWhatIf: return options_.what_if_service_ms;
    case QueryKind::kLoss: return options_.loss_service_ms;
  }
  return options_.route_service_ms;
}

void Server::label(Response& response) const {
  const Snapshot& snap = registry_->current();
  response.snapshot_digest = snap.pinned->fingerprint;
  response.staleness_events =
      static_cast<std::uint32_t>(registry_->live_epoch() - snap.seal_epoch);
  response.staleness_ms = sim_->now() - snap.seal_time_ms;
}

void Server::reply_with(const Response& response, const Reply& reply) {
  const std::string frame = encode_response(response);
  reply_stream_hash_ = fold_bytes(reply_stream_hash_, frame);
  reply(frame);
}

void Server::handle_frame(const std::string& frame, Reply reply) {
  ++stats_.received;
  obs::count("serve.requests");

  Request req;
  bool shaped = decode_request(frame, req);
  if (shaped) {
    const std::uint64_t hosts = topo_->num_hosts();
    switch (req.kind) {
      case QueryKind::kRoute:
        shaped = req.src < hosts && req.dst < hosts && req.src != req.dst;
        break;
      case QueryKind::kWhatIf:
        shaped = req.src < hosts;
        for (const std::uint32_t link : req.fail_links) {
          shaped = shaped && link < topo_->num_links();
        }
        break;
      case QueryKind::kLoss:
        shaped = req.flows > 0 && req.flows <= kMaxLossFlows && hosts >= 2;
        break;
    }
  }
  if (!shaped) {
    ++stats_.malformed;
    obs::count("serve.malformed");
    obs::trace_event(sim_->now(), obs::TraceKind::kServeRequest, lo32(req.id),
                     static_cast<std::uint32_t>(req.kind), req.id,
                     "malformed");
    Response r;
    r.id = req.id;
    r.status = ResponseStatus::kMalformed;
    label(r);
    reply_with(r, reply);
    return;
  }

  const auto it = dedup_.find(req.id);
  if (it != dedup_.end()) {
    if (it->second.completed) {
      // Idempotent replay: the stored bytes, not a re-execution — a retry
      // of a completed request can never double-apply or relabel.
      ++stats_.duplicate_replays;
      obs::count("serve.duplicate_replays");
      obs::trace_event(sim_->now(), obs::TraceKind::kServeRequest,
                       lo32(req.id), static_cast<std::uint32_t>(req.kind),
                       req.id, "replay");
      reply_stream_hash_ = fold_bytes(reply_stream_hash_, it->second.frame);
      reply(it->second.frame);
      return;
    }
    // Original still executing: this retry coalesces onto it.
    ++stats_.coalesced;
    obs::count("serve.coalesced");
    obs::trace_event(sim_->now(), obs::TraceKind::kServeRequest, lo32(req.id),
                     static_cast<std::uint32_t>(req.kind), req.id,
                     "coalesce");
    it->second.waiters.push_back(std::move(reply));
    return;
  }

  if (in_flight_ >= options_.inflight_watermark) {
    ++stats_.shed;
    obs::count("serve.shed");
    obs::trace_event(sim_->now(), obs::TraceKind::kServeRequest, lo32(req.id),
                     static_cast<std::uint32_t>(req.kind), req.id, "shed");
    Response r;
    r.id = req.id;
    r.status = ResponseStatus::kShed;
    label(r);
    reply_with(r, reply);
    return;
  }

  const double service = service_ms(req.kind);
  const double start = std::max(sim_->now(), cpu_.next_free());
  const double finish = start + service;
  if (req.deadline_ms > 0.0 && finish > req.deadline_ms) {
    ++stats_.deadline_rejected;
    obs::count("serve.deadline_rejected");
    obs::trace_event(sim_->now(), obs::TraceKind::kServeRequest, lo32(req.id),
                     static_cast<std::uint32_t>(req.kind), req.id,
                     "deadline");
    Response r;
    r.id = req.id;
    r.status = ResponseStatus::kDeadlineExceeded;
    label(r);
    reply_with(r, reply);
    return;
  }

  ++stats_.admitted;
  ++in_flight_;
  obs::count("serve.admitted");
  obs::gauge_set("serve.in_flight", static_cast<double>(in_flight_));
  obs::trace_event(sim_->now(), obs::TraceKind::kServeRequest, lo32(req.id),
                   static_cast<std::uint32_t>(req.kind), req.id, "admit");
  DedupEntry& entry = dedup_[req.id];
  entry.request = req;
  entry.waiters.push_back(std::move(reply));
  const double booked = cpu_.occupy(sim_->now(), service);
  ASPEN_ASSERT(booked == finish,
               "CPU booking disagrees with the admission projection");
  sim_->schedule_at(finish, [this, id = req.id] { complete(id); });
}

void Server::complete(std::uint64_t id) {
  DedupEntry& entry = dedup_.at(id);
  const Request req = entry.request;
  // The admission check projected completion inside the budget; virtual
  // time only moves forward, so the budget must still hold here.
  if (req.deadline_ms > 0.0) {
    ASPEN_ASSERT(sim_->now() <= req.deadline_ms,
                 "virtual-time deadline budget violated at completion");
  }

  const Snapshot& snap = registry_->current();
  const std::uint64_t qfp = query_fingerprint(req);
  Response r;
  r.id = id;
  r.status = ResponseStatus::kOk;
  const QueryResult* cached = cache_.find(snap.pinned->fingerprint, qfp);
  if (cached != nullptr) {
    r.result = *cached;
    r.from_cache = true;
  } else {
    r.result = execute_query(*topo_, *snap.pinned, req);
    cache_.insert(snap.pinned->fingerprint, qfp, r.result);
  }
  label(r);

  entry.completed = true;
  entry.response = r;
  entry.frame = encode_response(r);
  entry.request = Request{};  // retained only while in flight
  --in_flight_;
  ++stats_.completed;
  obs::count("serve.completed");
  obs::gauge_set("serve.in_flight", static_cast<double>(in_flight_));
  obs::trace_event(sim_->now(), obs::TraceKind::kServeResponse, lo32(id),
                   r.from_cache ? 1u : 0u, r.snapshot_digest, "ok");

  const std::vector<Reply> waiters = std::move(entry.waiters);
  entry.waiters.clear();
  for (const Reply& waiter : waiters) {
    reply_stream_hash_ = fold_bytes(reply_stream_hash_, entry.frame);
    waiter(entry.frame);
  }
}

std::string Server::checkpoint() const {
  const Snapshot& snap = registry_->current();
  std::ostringstream os;
  os << kCheckpointMagic << "\n";
  os << "received " << stats_.received << "\n";
  os << "admitted " << stats_.admitted << "\n";
  os << "completed " << stats_.completed << "\n";
  os << "shed " << stats_.shed << "\n";
  os << "deadline_rejected " << stats_.deadline_rejected << "\n";
  os << "malformed " << stats_.malformed << "\n";
  os << "duplicate_replays " << stats_.duplicate_replays << "\n";
  os << "coalesced " << stats_.coalesced << "\n";
  os << "live_epoch " << registry_->live_epoch() << "\n";
  os << "seals " << registry_->seals() << "\n";
  os << "seal_epoch " << snap.seal_epoch << "\n";
  os << "seal_time_bits " << std::bit_cast<std::uint64_t>(snap.seal_time_ms)
     << "\n";
  os << "snapshot_fp " << snap.pinned->fingerprint << "\n";
  os << "failed " << snap.pinned->failed.size();
  for (const LinkId link : snap.pinned->failed) os << " " << link.value();
  os << "\n";
  cache_.serialize(os);
  std::uint64_t completed_entries = 0;
  for (const auto& [id, entry] : dedup_) {
    if (entry.completed) ++completed_entries;
  }
  os << "dedup " << completed_entries << "\n";
  std::uint64_t h = 0x5EC4E0u;
  h = mix(h, stats_.fingerprint());
  h = mix(h, registry_->live_epoch());
  h = mix(h, registry_->seals());
  h = mix(h, snap.seal_epoch);
  h = mix(h, std::bit_cast<std::uint64_t>(snap.seal_time_ms));
  h = mix(h, snap.pinned->fingerprint);
  h = mix(h, cache_.fingerprint());
  h = mix(h, completed_entries);
  for (const auto& [id, entry] : dedup_) {
    if (!entry.completed) continue;  // a crash loses in-flight queries
    const Response& r = entry.response;
    os << "dent " << id << " " << static_cast<std::uint32_t>(r.status) << " "
       << r.snapshot_digest << " " << r.staleness_events << " "
       << std::bit_cast<std::uint64_t>(r.staleness_ms) << " "
       << (r.from_cache ? 1 : 0) << " " << r.result.delivered << " "
       << r.result.hops << " " << r.result.switches_changed << " "
       << r.result.dests_lost << " " << r.result.flows_delivered << " "
       << r.result.flows_lost << "\n";
    h = fold_response(h, r);
  }
  os << "fingerprint " << h << "\n";
  return os.str();
}

void Server::restore(const std::string& checkpoint_text) {
  std::istringstream is(checkpoint_text);
  std::string word;
  if (!(is >> word) || word != kCheckpointMagic) {
    throw PreconditionError("serve checkpoint: bad magic");
  }
  ServerStats stats;
  stats.received = parse_field(is, "received");
  stats.admitted = parse_field(is, "admitted");
  stats.completed = parse_field(is, "completed");
  stats.shed = parse_field(is, "shed");
  stats.deadline_rejected = parse_field(is, "deadline_rejected");
  stats.malformed = parse_field(is, "malformed");
  stats.duplicate_replays = parse_field(is, "duplicate_replays");
  stats.coalesced = parse_field(is, "coalesced");
  const std::uint64_t live_epoch = parse_field(is, "live_epoch");
  const std::uint64_t seals = parse_field(is, "seals");
  const std::uint64_t seal_epoch = parse_field(is, "seal_epoch");
  const double seal_time_ms =
      std::bit_cast<double>(parse_field(is, "seal_time_bits"));
  const std::uint64_t snapshot_fp = parse_field(is, "snapshot_fp");
  const std::uint64_t num_failed = parse_field(is, "failed");
  std::vector<LinkId> failed;
  failed.reserve(num_failed);
  for (std::uint64_t i = 0; i < num_failed; ++i) {
    std::uint32_t raw = 0;
    if (!(is >> raw)) {
      throw PreconditionError("serve checkpoint: bad failed-link list");
    }
    failed.push_back(LinkId{raw});
  }
  const std::uint64_t cache_hits = parse_field(is, "cache_hits");
  const std::uint64_t cache_misses = parse_field(is, "cache_misses");
  const std::uint64_t cache_evictions = parse_field(is, "cache_evictions");
  const std::uint64_t cache_entries = parse_field(is, "cache_entries");
  struct CacheLine {
    std::uint64_t digest = 0;
    std::uint64_t query_fp = 0;
    QueryResult result;
  };
  std::vector<CacheLine> cache_lines(cache_entries);
  for (CacheLine& line : cache_lines) {
    if (!(is >> word) || word != "centry" || !(is >> line.digest) ||
        !(is >> line.query_fp) || !(is >> line.result.delivered) ||
        !(is >> line.result.hops) || !(is >> line.result.switches_changed) ||
        !(is >> line.result.dests_lost) ||
        !(is >> line.result.flows_delivered) ||
        !(is >> line.result.flows_lost)) {
      throw PreconditionError("serve checkpoint: bad cache entry");
    }
  }
  const std::uint64_t dedup_entries = parse_field(is, "dedup");
  std::vector<std::pair<std::uint64_t, Response>> dents(dedup_entries);
  for (auto& [id, r] : dents) {
    std::uint32_t status = 0;
    std::uint64_t staleness_bits = 0;
    std::uint32_t from_cache = 0;
    if (!(is >> word) || word != "dent" || !(is >> id) || !(is >> status) ||
        status > static_cast<std::uint32_t>(ResponseStatus::kMalformed) ||
        !(is >> r.snapshot_digest) || !(is >> r.staleness_events) ||
        !(is >> staleness_bits) || !(is >> from_cache) ||
        !(is >> r.result.delivered) || !(is >> r.result.hops) ||
        !(is >> r.result.switches_changed) || !(is >> r.result.dests_lost) ||
        !(is >> r.result.flows_delivered) || !(is >> r.result.flows_lost)) {
      throw PreconditionError("serve checkpoint: bad dedup entry");
    }
    r.id = id;
    r.status = static_cast<ResponseStatus>(status);
    r.staleness_ms = std::bit_cast<double>(staleness_bits);
    r.from_cache = from_cache != 0;
  }
  const std::uint64_t sealed_fp = parse_field(is, "fingerprint");

  // Recompute the seal over the parsed payload before mutating anything.
  std::uint64_t h = 0x5EC4E0u;
  h = mix(h, stats.fingerprint());
  h = mix(h, live_epoch);
  h = mix(h, seals);
  h = mix(h, seal_epoch);
  h = mix(h, std::bit_cast<std::uint64_t>(seal_time_ms));
  h = mix(h, snapshot_fp);
  {
    std::uint64_t ch = 0xCACE1u;
    ch = mix(ch, cache_hits);
    ch = mix(ch, cache_misses);
    ch = mix(ch, cache_evictions);
    ch = mix(ch, cache_lines.size());
    for (const CacheLine& line : cache_lines) {
      ch = mix(ch, line.digest);
      ch = mix(ch, line.query_fp);
      ch = mix(ch, line.result.delivered);
      ch = mix(ch, line.result.hops);
      ch = mix(ch, line.result.switches_changed);
      ch = mix(ch, line.result.dests_lost);
      ch = mix(ch, line.result.flows_delivered);
      ch = mix(ch, line.result.flows_lost);
    }
    h = mix(h, ch);
  }
  h = mix(h, dedup_entries);
  for (const auto& [id, r] : dents) {
    (void)id;
    h = fold_response(h, r);
  }
  if (h != sealed_fp) {
    throw PreconditionError(
        "serve checkpoint: fingerprint mismatch (corrupt or truncated "
        "checkpoint)");
  }

  // The registry verifies the recomputed snapshot against the sealed
  // digest; only then is the rest of the server state installed.
  registry_->restore(failed, snapshot_fp, seal_epoch, seal_time_ms,
                     live_epoch, seals);
  stats.resumes = stats_.resumes + 1;
  stats_ = stats;
  cache_.restore_reset(cache_hits, cache_misses, cache_evictions);
  for (const CacheLine& line : cache_lines) {
    cache_.restore_entry(line.digest, line.query_fp, line.result);
  }
  dedup_.clear();
  for (const auto& [id, r] : dents) {
    DedupEntry entry;
    entry.completed = true;
    entry.response = r;
    entry.frame = encode_response(r);
    dedup_[id] = std::move(entry);
  }
  in_flight_ = 0;
  cpu_.reset();
  obs::count("serve.resumes");
}

}  // namespace aspen::serve
