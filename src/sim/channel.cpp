#include "src/sim/channel.h"

#include <cmath>
#include <utility>

#include "src/obs/obs.h"
#include "src/util/contracts.h"
#include "src/util/status.h"

namespace aspen {

int ChannelModel::transmit(Simulator& sim, SimTime base_delay,
                           std::function<void()> deliver, double link_loss) {
  ++stats_.attempted;
  obs::count("channel.attempted");
  if (options_.perfect() && link_loss <= 0.0) {
    // Fast path: exactly one on-time copy, no Rng draws — lossless runs
    // stay bit-identical to the pre-channel implementation.
    ++stats_.delivered;
    obs::count("channel.sent_total");
    obs::count("channel.delivered");
    sim.schedule(base_delay, std::move(deliver));
    return 1;
  }
  int copies = 1;
  if (link_loss > 0.0 && (link_loss >= 1.0 || rng_.chance(link_loss))) {
    // Eaten by the physical link itself (gray loss or flap-down phase)
    // before the channel's own impairments get a say.  No draw happens on
    // healthy links, so existing seeded streams are unperturbed.
    copies = 0;
    ++stats_.dropped;
    ++stats_.health_dropped;
    obs::count("channel.dropped");
    obs::count("channel.health_dropped");
    obs::trace_event(sim.now(), obs::TraceKind::kMsgDrop, 0, 0,
                     stats_.attempted, "health");
  } else if (rng_.chance(options_.drop_rate)) {
    copies = 0;
    ++stats_.dropped;
    obs::count("channel.dropped");
    obs::trace_event(sim.now(), obs::TraceKind::kMsgDrop, 0, 0,
                     stats_.attempted, "channel");
  } else if (rng_.chance(options_.duplicate_rate)) {
    copies = 2;
    ++stats_.duplicated;
    obs::count("channel.duplicated_extra");
    obs::trace_event(sim.now(), obs::TraceKind::kMsgDup, 0, 0,
                     stats_.attempted, "channel");
  }
  // Per-copy total: one physical copy per attempt, plus one per duplicate —
  // a dropped message still counts as the one copy the wire ate.
  obs::count("channel.sent_total",
             copies == 0 ? 1 : static_cast<std::uint64_t>(copies));
  obs::count("channel.delivered", static_cast<std::uint64_t>(copies));
  for (int c = 0; c < copies; ++c) {
    const SimTime jitter =
        options_.jitter_ms > 0.0 ? rng_.real() * options_.jitter_ms : 0.0;
    ++stats_.delivered;
    if (c + 1 == copies) {
      sim.schedule(base_delay + jitter, std::move(deliver));
    } else {
      sim.schedule(base_delay + jitter, deliver);
    }
  }
  // Conservation (audited later): every attempt lands in delivered or
  // dropped, with duplication adding one extra delivered copy.
  ASPEN_ASSERT(stats_.delivered + stats_.dropped ==
                   stats_.attempted + stats_.duplicated,
               "channel copy conservation violated");
  return copies;
}

void ReliableTransport::send(SimTime propagation,
                             std::function<void()> on_deliver,
                             std::function<bool()> can_transmit,
                             std::function<bool()> can_receive,
                             std::function<double()> link_loss) {
  ASPEN_REQUIRE(on_deliver && can_transmit && can_receive,
                "reliable send needs a payload and viability predicates");
  const std::uint64_t id = next_id_++;
  Pending& p = pending_[id];
  p.propagation = propagation;
  p.on_deliver = std::move(on_deliver);
  p.can_transmit = std::move(can_transmit);
  p.can_receive = std::move(can_receive);
  p.link_loss = std::move(link_loss);
  ++stats_.sends;
  obs::count("transport.sends");
  transmit_copy(id);
  arm_timer(id);
}

void ReliableTransport::transmit_copy(std::uint64_t id) {
  Pending& p = pending_.at(id);
  if (!p.can_transmit()) return;  // link down or sender dead: never wired
  const double loss = p.link_loss ? p.link_loss() : 0.0;
  channel_->transmit(
      *sim_, p.propagation,
      [this, id] {
        Pending& arrived = pending_.at(id);
        if (!arrived.can_receive()) return;  // receiver crashed: copy vanishes
        if (arrived.delivered) {
          // Sequence-number comparison at the line card — no CPU charged.
          ++stats_.duplicates_dropped;
          obs::count("transport.duplicates_dropped");
        } else {
          arrived.delivered = true;
          arrived.on_deliver();
        }
        // (Re-)ack every surviving copy: the original ack may have been
        // lost.  The ack rides the same physical link back, so it faces the
        // link's instantaneous health too.
        ++stats_.acks_sent;
        obs::count("transport.acks_sent");
        obs::trace_event(sim_->now(), obs::TraceKind::kMsgAck, 0, 0, id,
                         "transport");
        const double ack_loss =
            arrived.link_loss ? arrived.link_loss() : 0.0;
        channel_->transmit(
            *sim_, arrived.propagation,
            [this, id] { pending_.at(id).acked = true; }, ack_loss);
      },
      loss);
}

void ReliableTransport::arm_timer(std::uint64_t id) {
  const int attempts = pending_.at(id).attempts;
  const SimTime timeout =
      policy_.rto_ms * std::pow(policy_.backoff, attempts);
  sim_->schedule(timeout, [this, id] {
    Pending& p = pending_.at(id);
    if (p.done) return;
    if (p.acked) {
      p.done = true;
      return;
    }
    if (p.attempts >= policy_.max_retries) {
      p.done = true;
      ++stats_.gave_up;
      obs::count("transport.gave_up");
      obs::trace_event(sim_->now(), obs::TraceKind::kMsgGiveUp, 0, 0, id,
                       "transport");
      ASPEN_ASSERT(stats_.gave_up <= stats_.sends,
                   "more abandoned conversations than sends");
      return;
    }
    ++p.attempts;
    ++stats_.retransmits;
    obs::count("transport.retransmits");
    obs::trace_event(sim_->now(), obs::TraceKind::kMsgRetransmit, 0, 0, id,
                     "transport");
    transmit_copy(id);
    arm_timer(id);
  });
}

std::size_t ReliableTransport::in_flight() const {
  std::size_t count = 0;
  for (const auto& [id, p] : pending_) {
    if (!p.done && !p.acked) ++count;
  }
  return count;
}

}  // namespace aspen
