#include "src/sim/audit.h"

#include <sstream>

namespace aspen::sim {

AuditReport audit_queue(const Simulator& simulator) {
  AuditReport report;
  if (!simulator.queue_.empty() &&
      simulator.queue_.top().time < simulator.now_) {
    std::ostringstream os;
    os << "earliest pending event at t=" << simulator.queue_.top().time
       << " precedes the clock at t=" << simulator.now_;
    report.add(AuditCode::kTimeMonotonicity, os.str());
  }
  const std::uint64_t accounted =
      simulator.events_processed_ + simulator.queue_.size();
  if (simulator.next_seq_ != accounted) {
    std::ostringstream os;
    os << "issued " << simulator.next_seq_ << " event sequence numbers but "
       << simulator.events_processed_ << " processed + "
       << simulator.queue_.size() << " pending = " << accounted;
    report.add(AuditCode::kQueueAccounting, os.str());
  }
  return report;
}

void SimAuditPeer::push_unchecked(Simulator& simulator, SimTime when) {
  simulator.queue_.push(
      Simulator::Event{when, simulator.next_seq_++, [] {}});
}

void SimAuditPeer::set_now(Simulator& simulator, SimTime now) {
  simulator.now_ = now;
}

void SimAuditPeer::set_events_processed(Simulator& simulator,
                                        std::uint64_t n) {
  simulator.events_processed_ = n;
}

}  // namespace aspen::sim
