// Event-queue invariant auditor for the discrete-event core.
//
// audit_queue() checks the two promises the simulator makes to every
// protocol built on it:
//
//   * time monotonicity — no queued event precedes the clock; the earliest
//     pending event (the heap top) is at or after now() (kTimeMonotonicity);
//   * queue accounting — every sequence number ever issued is either an
//     event already processed or one still pending, so
//     next_seq == events_processed + pending (kQueueAccounting).
//
// SimAuditPeer exists solely so tests can corrupt the private queue state
// (schedule_at() rejects past times at the API boundary) and prove the
// auditor catches what the guards cannot.
#pragma once

#include "src/sim/simulator.h"
#include "src/util/contracts.h"

namespace aspen::sim {

[[nodiscard]] AuditReport audit_queue(const Simulator& simulator);

/// Test-only corruption hooks; never used by production code.
struct SimAuditPeer {
  /// Enqueues an event at `when` without the schedule_at() past-time guard.
  static void push_unchecked(Simulator& simulator, SimTime when);
  /// Rewrites the clock without draining the queue.
  static void set_now(Simulator& simulator, SimTime now);
  /// Rewrites the processed-event counter.
  static void set_events_processed(Simulator& simulator, std::uint64_t n);
};

}  // namespace aspen::sim
