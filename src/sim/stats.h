// Aggregation helpers for simulation metrics.
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <vector>

namespace aspen {

/// Running min/max/mean over a stream of samples.
class Summary {
 public:
  void add(double value) {
    ++count_;
    total_ += value;
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] double mean() const {
    return count_ == 0 ? 0.0 : total_ / static_cast<double>(count_);
  }
  [[nodiscard]] double min() const { return count_ == 0 ? 0.0 : min_; }
  [[nodiscard]] double max() const { return count_ == 0 ? 0.0 : max_; }
  [[nodiscard]] double total() const { return total_; }

 private:
  std::uint64_t count_ = 0;
  double total_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace aspen
