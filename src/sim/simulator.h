// Discrete-event simulation core.
//
// A minimal but real DES: a time-ordered event queue with FIFO tie-breaking,
// a per-switch CPU model that serializes message processing (the paper's
// central performance observation is that "embedded CPUs on switches are
// generally under-powered and slow compared to a switch's data plane", §1),
// and a delay model carrying the paper's §9.2 constants.
//
// The protocol implementations in src/proto schedule closures on this
// simulator; there is no virtual "process" hierarchy to fight with.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "src/util/contracts.h"
#include "src/util/status.h"

namespace aspen {

class Simulator;

namespace sim {
/// Declared here so Simulator can befriend it; see src/sim/audit.h.
[[nodiscard]] AuditReport audit_queue(const Simulator& simulator);
struct SimAuditPeer;
}  // namespace sim

/// Simulated time in milliseconds.
using SimTime = double;

/// An imperfect control-plane medium (see src/sim/channel.h for the model
/// that enacts these options).  The default is the paper's idealized
/// perfect channel: nothing dropped, nothing duplicated, no jitter.
struct ChannelOptions {
  double drop_rate = 0.0;       ///< P(a scheduled control message is lost)
  double duplicate_rate = 0.0;  ///< P(an extra copy of a message arrives)
  SimTime jitter_ms = 0.0;      ///< uniform extra delay in [0, jitter_ms]
  std::uint64_t seed = 0xA59E;  ///< seeds the channel's private Rng
  /// Run the protocols' ack/retransmit machinery (ReliableTransport) on
  /// top of the channel.  Off by default so lossless runs keep the seed
  /// repo's exact message counts; chaos campaigns and loss sweeps turn it
  /// on (and must, for convergence under loss).
  bool reliable = false;

  [[nodiscard]] bool perfect() const {
    return drop_rate == 0.0 && duplicate_rate == 0.0 && jitter_ms == 0.0;
  }
};

/// Endpoint behavior over an unreliable channel: how long to wait for an
/// ack, how the wait grows, and when to give up.
struct RetransmitPolicy {
  SimTime rto_ms = 50.0;   ///< initial retransmission timeout
  double backoff = 2.0;    ///< timeout multiplier per retry (exponential)
  int max_retries = 8;     ///< retransmissions before declaring the peer lost
};

/// The paper's §9.2 timing constants (defaults), all in milliseconds:
/// "estimating the propagation delay between switches and the time to
///  process ANP and LSA packets as 1µs, 20ms, and 300 ms, respectively.
///  These estimates are conservatively tuned to favor LSP."
struct DelayModel {
  SimTime propagation = 0.001;      ///< per-link propagation, 1 µs
  SimTime anp_processing = 20.0;    ///< per ANP notification
  SimTime lsa_processing = 300.0;   ///< per *new* LSA (includes SPF)
  /// CPU time to recognize and discard an already-seen LSA copy; duplicate
  /// suppression is a sequence-number comparison, far cheaper than SPF.
  SimTime lsa_duplicate_processing = 1.0;
  /// Local detection latency between a link dying and its endpoints
  /// noticing (loss-of-light / BFD); charged before any local reaction.
  SimTime detection = 0.0;
  /// OSPF-style pacing timers (§1: "settings such as protocol timers can
  /// further compound these delays").  `lsa_generation_delay` throttles
  /// LSA origination at the detecting switch; `spf_delay` is the hold-down
  /// between installing a new LSA and recomputing routes from it.  Both
  /// default to 0 (the paper's idealized, LSP-favoring setting); classic
  /// router defaults are on the order of 500 ms and 5000 ms.
  SimTime lsa_generation_delay = 0.0;
  SimTime spf_delay = 0.0;
  /// Control-plane medium the protocols' messages ride on, plus the
  /// endpoints' ack/retransmit policy when `channel.reliable` is set.
  /// Folding these into DelayModel plumbs lossy channels through every
  /// existing experiment driver without signature churn.
  ChannelOptions channel;
  RetransmitPolicy retransmit;
  /// Per-reaction event budget: a protocol run that exceeds it is reported
  /// as "did not quiesce" (FailureReport::quiesced == false) instead of
  /// aborting the experiment.
  std::uint64_t max_run_events = 50'000'000;
  /// How much runtime invariant auditing a simulation performs at phase
  /// boundaries.  kParanoid makes protocols self-audit (transport/channel
  /// accounting, custody state) at the end of every reaction; the
  /// ASPEN_AUDIT_LEVEL environment variable can promote any run (see
  /// contracts::effective_audit_level).
  contracts::AuditLevel audit_level = contracts::AuditLevel::kBasic;

  /// Classic vendor-default OSPF pacing, for the §1 "re-convergence can be
  /// tens of seconds" experiments.
  [[nodiscard]] static DelayModel classic_ospf_timers() {
    DelayModel delays;
    delays.lsa_generation_delay = 500.0;
    delays.spf_delay = 5000.0;
    return delays;
  }
};

/// Outcome of a bounded simulation run.
struct RunResult {
  std::uint64_t events = 0;  ///< events processed by this call
  bool completed = false;    ///< true when the queue drained (quiescence)
};

class Simulator {
 public:
  [[nodiscard]] SimTime now() const { return now_; }

  /// Schedules `action` to run `delay` ms from now (delay >= 0).
  /// Events at equal times run in scheduling order.
  void schedule(SimTime delay, std::function<void()> action);

  /// Schedules `action` at an absolute time (>= now()).
  void schedule_at(SimTime when, std::function<void()> action);

  /// Runs until the queue drains or `max_events` fire, whichever is first.
  /// Hitting the cap is an *outcome*, not an error: `completed` is false
  /// and the remaining events stay queued, so chaos campaigns can report
  /// "protocol did not quiesce" as a measurement and carry on.
  RunResult run_bounded(std::uint64_t max_events);

  /// Runs events until the queue drains; returns events processed.
  /// Throws if more than `max_events` fire (runaway-protocol guard).
  std::uint64_t run(std::uint64_t max_events = 50'000'000);

  /// Executes the single earliest event; false when the queue is empty.
  bool step();

  [[nodiscard]] std::uint64_t events_processed() const {
    return events_processed_;
  }
  [[nodiscard]] bool idle() const { return queue_.empty(); }

 private:
  friend AuditReport sim::audit_queue(const Simulator&);
  friend struct sim::SimAuditPeer;

  struct Event {
    SimTime time;
    std::uint64_t seq;
    std::function<void()> action;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  SimTime now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t events_processed_ = 0;
};

/// Serializing CPU: one message processed at a time, FIFO by arrival.
class CpuQueue {
 public:
  /// Books `duration` ms of CPU starting no earlier than `arrival`;
  /// returns the completion time.
  SimTime occupy(SimTime arrival, SimTime duration) {
    ASPEN_REQUIRE(duration >= 0.0, "negative CPU occupancy");
    const SimTime start = arrival > next_free_ ? arrival : next_free_;
    next_free_ = start + duration;
    return next_free_;
  }

  [[nodiscard]] SimTime next_free() const { return next_free_; }
  void reset() { next_free_ = 0.0; }

 private:
  SimTime next_free_ = 0.0;
};

}  // namespace aspen
