#include "src/sim/simulator.h"

#include <utility>

#include "src/obs/obs.h"

namespace aspen {

void Simulator::schedule(SimTime delay, std::function<void()> action) {
  ASPEN_REQUIRE(delay >= 0.0, "cannot schedule into the past (delay=", delay,
                ")");
  schedule_at(now_ + delay, std::move(action));
}

void Simulator::schedule_at(SimTime when, std::function<void()> action) {
  ASPEN_REQUIRE(when >= now_, "cannot schedule into the past (when=", when,
                ", now=", now_, ")");
  queue_.push(Event{when, next_seq_++, std::move(action)});
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  // Move the action out before popping so the event can schedule others.
  Event event = queue_.top();
  queue_.pop();
  ASPEN_ASSERT(event.time >= now_,
               "event queue yielded time ", event.time,
               " behind the clock at ", now_);
  now_ = event.time;
  ++events_processed_;
  obs::count("sim.events_dispatched");
  event.action();
  // Sequence numbers are handed out once per push: the processed and the
  // still-queued events always partition them (audited by sim::audit_queue).
  ASPEN_ASSERT(next_seq_ == events_processed_ + queue_.size(),
               "event sequence accounting diverged");
  return true;
}

RunResult Simulator::run_bounded(std::uint64_t max_events) {
  RunResult result;
  while (result.events < max_events && step()) {
    ++result.events;
  }
  result.completed = queue_.empty();
  ASPEN_ASSERT(result.completed || result.events == max_events,
               "run stopped early with events still queued");
  return result;
}

std::uint64_t Simulator::run(std::uint64_t max_events) {
  const RunResult result = run_bounded(max_events);
  ASPEN_CHECK(result.completed, "simulation exceeded ", max_events,
              " events — runaway protocol?");
  return result.events;
}

}  // namespace aspen
