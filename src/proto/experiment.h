// Failure-experiment drivers (§9.2 methodology).
//
// "Using the Mace simulator, we then failed each link in each tree several
//  times and allowed the corresponding recovery protocol … to react and
//  update switches' forwarding tables.  We recorded the minimum, maximum,
//  and average numbers of switches involved and re-convergence times across
//  failures for each tree."
//
// These drivers do the same over our DES: construct a protocol simulation,
// fail every (or a sampled subset of) inter-switch link(s), record the
// FailureReport distributions, optionally verify post-reaction delivery,
// and recover the link before moving on.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>

#include "src/proto/anp.h"
#include "src/proto/lsp.h"
#include "src/proto/protocol.h"
#include "src/routing/reachability.h"
#include "src/sim/stats.h"
#include "src/topo/topology.h"

namespace aspen {

/// Creates a fresh, converged protocol simulation on the intact topology.
/// `anp_options` applies only when kind == kAnp.
[[nodiscard]] std::unique_ptr<ProtocolSimulation> make_protocol(
    ProtocolKind kind, const Topology& topo, DelayModel delays = {},
    AnpOptions anp_options = {},
    DestGranularity granularity = DestGranularity::kEdge);

/// Result of one failure (and its subsequent recovery).
struct SingleFailureResult {
  FailureReport failure;
  FailureReport recovery;
  /// Present when connectivity checking was requested: delivery measured
  /// with the protocol's post-reaction tables over the failed network.
  std::optional<ReachabilityStats> post_failure_delivery;
};

struct ExperimentOptions {
  DelayModel delays;
  AnpOptions anp;  ///< used only for ANP sweeps
  /// Table keying: kHost makes host-link ("1st hop") failures visible.
  DestGranularity granularity = DestGranularity::kEdge;
  /// 0 = skip delivery check; >0 = walk that many sampled flows after the
  /// reaction; UINT64_MAX = walk every ordered host pair.
  std::uint64_t connectivity_flows = 0;
  std::uint64_t seed = 42;  ///< sampling seed
};

/// Fails `link`, lets the protocol react, measures, then recovers it.
[[nodiscard]] SingleFailureResult run_single_failure(
    ProtocolSimulation& proto, LinkId link, const ExperimentOptions& options);

/// Aggregates over a sweep of single-link failures.
struct SweepResult {
  Summary convergence_ms;   ///< per-failure convergence times
  Summary reacted;          ///< per-failure reacting switch counts
  Summary informed;         ///< per-failure switches that processed updates
  Summary messages;         ///< per-failure protocol messages
  Summary hops;             ///< per-failure max update hop distance
  std::uint64_t failures = 0;
  /// Failures after which every checked flow was delivered (only counted
  /// when connectivity checking is on).
  std::uint64_t fully_restored = 0;
  std::uint64_t recovery_mismatches = 0;  ///< tables not restored post-recovery
};

struct SweepOptions : ExperimentOptions {
  /// Only fail links whose upper endpoint is at one of these levels; empty
  /// means all levels >= 2 (host links — "1st hop failures", §9.1 footnote
  /// 10 — are excluded by default, but may be requested explicitly with
  /// level 1, which is only meaningful at kHost granularity).
  std::vector<Level> levels;
  /// Fail at most this many links per level (0 = all); sampling is
  /// deterministic given `seed`.
  std::uint64_t max_links_per_level = 0;
  /// Verify that fail-then-recover restores the pre-failure tables.
  bool verify_recovery_restores_tables = false;
};

[[nodiscard]] SweepResult sweep_link_failures(ProtocolKind kind,
                                              const Topology& topo,
                                              const SweepOptions& options);

}  // namespace aspen
