#include "src/proto/experiment.h"

#include <algorithm>
#include <limits>

#include "src/routing/packet_walk.h"
#include "src/util/contracts.h"
#include "src/util/rng.h"
#include "src/util/status.h"

namespace aspen {

std::unique_ptr<ProtocolSimulation> make_protocol(ProtocolKind kind,
                                                  const Topology& topo,
                                                  DelayModel delays,
                                                  AnpOptions anp_options,
                                                  DestGranularity granularity) {
  if (kind == ProtocolKind::kLsp) {
    return std::make_unique<LspSimulation>(topo, delays, granularity);
  }
  return std::make_unique<AnpSimulation>(topo, delays, anp_options,
                                         granularity);
}

SingleFailureResult run_single_failure(ProtocolSimulation& proto, LinkId link,
                                       const ExperimentOptions& options) {
  SingleFailureResult result;
  result.failure = proto.simulate_link_failure(link);

  if (options.connectivity_flows > 0) {
    const Topology& topo = proto.topology();
    const TableRouter router(proto.tables());
    if (options.connectivity_flows ==
        std::numeric_limits<std::uint64_t>::max()) {
      result.post_failure_delivery =
          measure_all_pairs(topo, router, proto.overlay());
    } else {
      // aspen-lint: allow(seed-arith) -- per-link sampling stream predating derive_stream_seed; the constant is pinned by recorded experiment baselines
      Rng rng(options.seed ^ (0x517CC1B727220A95ULL + link.value()));
      result.post_failure_delivery = measure_sampled(
          topo, router, proto.overlay(), options.connectivity_flows, rng);
    }
  }

  result.recovery = proto.simulate_link_recovery(link);
  return result;
}

SweepResult sweep_link_failures(ProtocolKind kind, const Topology& topo,
                                const SweepOptions& options) {
  // Candidate links: inter-switch only (host-link failures are the "1st
  // hop" failures the paper's convergence metric excludes).
  std::vector<Level> levels = options.levels;
  if (levels.empty()) {
    for (Level i = 2; i <= topo.levels(); ++i) levels.push_back(i);
  }

  Rng rng(options.seed);
  std::vector<LinkId> candidates;
  for (const Level level : levels) {
    ASPEN_REQUIRE(level >= 1 && level <= topo.levels(),
                  "sweep level out of range: ", level);
    const std::span<const LinkId> span = topo.links_at_level(level);
    std::vector<LinkId> at_level(span.begin(), span.end());
    if (options.max_links_per_level > 0 &&
        at_level.size() > options.max_links_per_level) {
      rng.shuffle(at_level);
      at_level.resize(options.max_links_per_level);
      std::ranges::sort(at_level);
    }
    candidates.insert(candidates.end(), at_level.begin(), at_level.end());
  }

  auto proto = make_protocol(kind, topo, options.delays, options.anp,
                             options.granularity);
  const RoutingState initial_tables = proto->tables();

  SweepResult sweep;
  for (const LinkId link : candidates) {
    ASPEN_ASSERT(proto->overlay().is_up(link),
                 "sweep candidates must be live before each failure");
    const SingleFailureResult one = run_single_failure(*proto, link, options);
    sweep.convergence_ms.add(one.failure.convergence_time_ms);
    sweep.reacted.add(static_cast<double>(one.failure.switches_reacted));
    sweep.informed.add(static_cast<double>(one.failure.switches_informed));
    sweep.messages.add(static_cast<double>(one.failure.messages_sent));
    sweep.hops.add(static_cast<double>(one.failure.max_update_hops));
    ASPEN_ASSERT(one.failure.switches_reacted <= one.failure.switches_informed,
                 "reaction without information");
    ++sweep.failures;
    if (one.post_failure_delivery &&
        one.post_failure_delivery->undelivered() == 0) {
      ++sweep.fully_restored;
    }
    if (options.verify_recovery_restores_tables) {
      if (switches_with_changed_tables(initial_tables, proto->tables()) != 0) {
        ++sweep.recovery_mismatches;
      }
    }
  }
  return sweep;
}

}  // namespace aspen
