// ANP — the Aspen Reaction and Notification Protocol (§6).
//
// On the failure of a downward link from L_i switch s to t:
//   * If s retains another live link to t's pod (c_i > 1), s reroutes
//     locally and sends nothing (case 1).
//   * Otherwise s withdraws the dead routes and notifies its parents of the
//     set of destinations it can no longer reach.  An ancestor that still
//     has alternate next hops for those destinations absorbs the
//     notification after patching its table (cases 2 and 3); an ancestor
//     left with none forwards the notification to *its* parents.
// Upward-link failures never generate notifications: the switch below the
// failure prunes the dead uplink and keeps climbing via any other port.
//
// Notifications carry destination sets keyed by edge switch (the same
// prefix granularity as the forwarding tables).  Each switch keeps a
// withdrawal log — which next hops it removed, per link and per notifying
// neighbor, and which destinations it announced lost — so that link
// recovery (§6's "the process is similar for link recovery") replays the
// exact inverse: restore logged entries, then propagate recovery notices
// along the paths the loss notices took.
//
// ## The intra-pod gap, and the extended mode
//
// Reproducing §6 literally exposes a gap the paper does not discuss: with
// upward-only notifications, only the switches at the absorbing level L_f
// learn to steer around the dead region — so a flow is guaranteed only if
// its up*/down* apex reaches L_f.  A flow with a lower apex (intra-pod
// traffic, or traffic whose climb tops out between the failure and L_f)
// can still hash its blind up-choice into a switch whose routes died.
// Global re-convergence (LSP) repairs those flows; upward-only ANP cannot
// (tests/test_section7_property.cpp pins down the exact boundary).
// AnpOptions::notify_children (off by default, to match the paper) extends
// the protocol symmetrically: a switch whose entry for some destinations
// became empty also tells the switches *below* it to stop climbing through
// it.  With the extension, ANP restores all-pairs connectivity whenever the
// FTV covers the failure level; the ablation benchmark quantifies the extra
// messages this costs.
//
// ## The unreliable control plane
//
// The paper assumes every notification is delivered exactly once.  This
// implementation does not: notifications ride a seeded lossy ChannelModel
// (DelayModel::channel), and when `channel.reliable` is set each
// notification gets a sequence id, receiver-side duplicate suppression,
// acks, and timeout-driven retransmission with exponential backoff and a
// retry cap (src/sim/channel.h; docs/CHAOS.md).  Switches can also *crash*
// — all incident links fail atomically, queued work is discarded, and
// in-flight conversations with the dead switch run out their retries —
// possibly mid-reaction (simulate_timed_events composes, e.g., a link
// failure at t=0 with a crash at t=5ms).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <vector>

#include "src/proto/protocol.h"
#include "src/proto/report.h"
#include "src/routing/updown.h"
#include "src/sim/channel.h"
#include "src/sim/simulator.h"
#include "src/topo/link_state.h"
#include "src/topo/topology.h"

namespace aspen {

namespace proto {
struct AnpAuditPeer;  // test-only corruption hooks, src/proto/audit.h
}

struct AnpOptions {
  /// Also send loss/recovery notices downward when a switch's entry for a
  /// destination empties (extension; see header comment).
  bool notify_children = false;
  /// On link recovery each endpoint tells its peer which destinations it
  /// currently considers lost (and implicitly which it does not), so the
  /// peer can repair a withdrawal log that went stale while the adjacency
  /// — or either switch — was down and notices could not be delivered.
  /// Off by default: the paper's ANP has no such exchange, and it costs
  /// extra messages on every recovery.  Chaos campaigns need it: they
  /// recover faults in arbitrary (non-LIFO) order.
  bool adjacency_resync = false;
};

class AnpSimulation final : public ProtocolSimulation {
 public:
  explicit AnpSimulation(const Topology& topo, DelayModel delays = {},
                         AnpOptions options = {},
                         DestGranularity granularity = DestGranularity::kEdge);

  /// Fails the link and runs ANP until quiescent.
  FailureReport simulate_link_failure(LinkId link) override;

  /// Recovers a previously failed link and runs ANP until quiescent.
  FailureReport simulate_link_recovery(LinkId link) override;

  /// Crashes the switch: fails every incident live link atomically; the
  /// dead switch neither processes nor emits protocol messages.
  FailureReport simulate_switch_failure(SwitchId s) override;

  /// Revives a crashed switch, restoring the links its crash took down
  /// (links whose far endpoint is still crashed stay down, custody moving
  /// to that switch).
  FailureReport simulate_switch_recovery(SwitchId s) override;

  /// One reaction over a compound, timed schedule — e.g. a switch dying
  /// 5 ms into the reaction to a link failure, discarding its queued work.
  FailureReport simulate_timed_events(
      std::span<const TimedFault> events) override;

  /// Current forwarding tables, as patched by ANP so far.
  [[nodiscard]] const RoutingState& tables() const override { return tables_; }
  [[nodiscard]] const LinkStateOverlay& overlay() const override {
    return overlay_;
  }
  [[nodiscard]] LinkStateOverlay& overlay_mut() override { return overlay_; }
  [[nodiscard]] const Topology& topology() const override { return *topo_; }
  [[nodiscard]] bool is_alive(SwitchId s) const override {
    return alive_.at(s.value()) != 0;
  }
  [[nodiscard]] const AnpOptions& options() const { return options_; }

  /// Withdrawal-log, announced-lost and crash-custody invariants (see
  /// src/proto/audit.h).  Valid at quiescent phase boundaries.
  [[nodiscard]] AuditReport audit() const override;

 private:
  friend struct proto::AnpAuditPeer;

  using DestIndex = std::uint64_t;

  /// Per-switch protocol state.
  struct SwitchState {
    /// Next hops removed on local detection, per failed link.
    std::map<std::uint32_t, std::map<DestIndex, Topology::Neighbor>>
        removed_by_link;
    /// Next hops removed on notification, per notifying neighbor switch.
    std::map<std::uint32_t,
             std::map<DestIndex, std::vector<Topology::Neighbor>>>
        removed_by_neighbor;
    /// Destinations this switch announced as lost to its neighbors.
    std::vector<char> announced_lost;  // indexed by dest edge
  };

  struct RunContext {
    Simulator sim;
    ChannelModel channel;
    /// Present when DelayModel::channel.reliable; holds pointers into this
    /// struct, so a RunContext must never be moved after init_context().
    std::optional<ReliableTransport> transport;
    std::vector<CpuQueue> cpus;
    std::vector<char> informed;      // per switch: processed an update
    std::vector<char> reacted;       // per switch: table changed this run
    std::vector<SimTime> react_time; // completion time of last change
    std::vector<int> react_hops;     // farthest hops of a change
    FailureReport report;
  };

  void init_context(RunContext& ctx);
  void apply_fault(RunContext& ctx, const TimedFault& ev);
  /// Schedules detect_failure/detect_recovery at each live switch endpoint
  /// of `link`, `detection` ms out (guarded again at fire time — the
  /// endpoint may crash in between).
  void schedule_detections(RunContext& ctx, LinkId link, bool failure);
  void mark_informed(RunContext& ctx, SwitchId s);
  void mark_reaction(RunContext& ctx, SwitchId s, SimTime when, int hops);
  /// Sends {dests, lost} from `from` to every live parent — and, in
  /// notify_children mode, every live switch child — except `exclude`.
  void send_notification(RunContext& ctx, SwitchId from, NodeId exclude,
                         std::vector<DestIndex> dests, bool lost, int hops);
  /// One notification over one adjacency, via the transport when reliable.
  void transmit_notification(RunContext& ctx, SwitchId from,
                             const Topology::Neighbor& nb,
                             const std::vector<DestIndex>& dests, bool lost,
                             int hops);
  /// Adjacency (re-)establishment summary: see AnpOptions::adjacency_resync.
  void send_resync(RunContext& ctx, SwitchId from,
                   const Topology::Neighbor& peer);
  void handle_notification(RunContext& ctx, SwitchId at, SwitchId neighbor,
                           const std::vector<DestIndex>& dests, bool lost,
                           int hops);
  void detect_failure(RunContext& ctx, SwitchId s, LinkId link);
  void detect_recovery(RunContext& ctx, SwitchId s, LinkId link);
  FailureReport finish(RunContext& ctx);

  const Topology* topo_;
  DelayModel delays_;
  AnpOptions options_;
  LinkStateOverlay overlay_;
  RoutingState tables_;
  std::vector<SwitchState> state_;  // per switch
  std::vector<char> alive_;         // per switch; 0 while crashed
  /// Links a crash took down, owed back on that switch's recovery.
  std::map<std::uint32_t, std::vector<LinkId>> crash_links_;
};

}  // namespace aspen
