#include "src/proto/lsp_full.h"

#include <algorithm>

#include "src/obs/obs.h"
#include "src/util/contracts.h"
#include "src/util/status.h"

namespace aspen {

LspLsdbSimulation::LspLsdbSimulation(const Topology& topo, DelayModel delays,
                                     DestGranularity granularity)
    : topo_(&topo),
      delays_(delays),
      granularity_(granularity),
      overlay_(topo) {
  tables_ = compute_updown_routes(topo, overlay_, granularity_);
  state_.assign(topo.num_switches(), SwitchState(topo));
  for (SwitchState& st : state_) st.view = tables_;
  own_seq_.assign(topo.num_switches(), 0);
}

bool LspLsdbSimulation::recompute_row(SwitchId s, LinkId changed) {
  // SPF over this switch's believed overlay.  The believed view differs
  // from its cached SPF result by at most the one link this LSA reported,
  // so the cached state is patched incrementally instead of recomputed
  // (a duplicate-origin LSA that flipped nothing is a no-op for it).
  SwitchState& st = state_[s.value()];
  const LinkId one[] = {changed};
  recompute_updown_routes(*topo_, st.believed, st.view, one);
  // Unequal digests prove the tables differ and skip the deep compare;
  // equal digests are confirmed byte-for-byte, keeping the diff exact.
  const bool digests = tables_.has_digests() && st.view.has_digests();
  const bool differ =
      (digests && tables_.digests[s.value()] != st.view.digests[s.value()]) ||
      !(tables_.tables[s.value()] == st.view.tables[s.value()]);
  if (!differ) return false;
  tables_.tables[s.value()] = st.view.tables[s.value()];
  if (digests) tables_.digests[s.value()] = st.view.digests[s.value()];
  return true;
}

void LspLsdbSimulation::transmit(RunContext& ctx, SwitchId from,
                                 const Lsa& lsa, LinkId arrival_link) {
  const auto forward = [&](const Topology::Neighbor& nb) {
    if (nb.link == arrival_link) return;
    if (!overlay_.is_up(nb.link)) return;
    if (!topo_->is_switch_node(nb.node)) return;
    const SwitchId peer = topo_->switch_of(nb.node);
    ++ctx.report.messages_sent;
    obs::count("lsp_full.msgs_sent");
    obs::trace_event(ctx.sim.now(), obs::TraceKind::kMsgSend, from.value(),
                     peer.value(), lsa.seq, "lsp_full");
    Lsa hopped = lsa;
    hopped.hops = lsa.hops + 1;
    ctx.sim.schedule(delays_.propagation, [this, &ctx, peer, hopped,
                                           via = nb.link] {
      // CPU cost decided on arrival: new LSAs pay full processing (SPF
      // folded in), stale copies only the sequence check.
      SwitchState& st = state_[peer.value()];
      const auto it = st.highest_seq.find(hopped.origin);
      const bool is_new =
          it == st.highest_seq.end() || it->second < hopped.seq;
      const SimTime cost = is_new ? delays_.lsa_processing
                                  : delays_.lsa_duplicate_processing;
      const SimTime done = ctx.cpus[peer.value()].occupy(ctx.sim.now(), cost);
      ctx.sim.schedule_at(done, [this, &ctx, peer, hopped, via] {
        install_and_flood(ctx, peer, hopped, via);
      });
    });
  };
  for (const Topology::Neighbor& nb : topo_->up_neighbors(from)) forward(nb);
  for (const Topology::Neighbor& nb : topo_->down_neighbors(from)) {
    forward(nb);
  }
}

void LspLsdbSimulation::install_and_flood(RunContext& ctx, SwitchId at,
                                          const Lsa& lsa,
                                          LinkId arrival_link) {
  SwitchState& st = state_[at.value()];
  const auto it = st.highest_seq.find(lsa.origin);
  if (it != st.highest_seq.end() && it->second >= lsa.seq) return;  // stale
  ASPEN_ASSERT(lsa.seq >= 1, "LSA sequence numbers start at 1");
  obs::count("lsp_full.lsa_installs");
  obs::trace_event(ctx.sim.now(), obs::TraceKind::kMsgRecv, at.value(),
                   lsa.origin, lsa.seq, "lsp_full");
  st.highest_seq[lsa.origin] = lsa.seq;
  if (!ctx.informed[at.value()]) {
    ctx.informed[at.value()] = 1;
    ++ctx.report.switches_informed;
  }

  // Install the reported link state into this switch's believed overlay
  // and rerun SPF — with the SPF hold-down charged to the install time.
  const LinkId link{lsa.link};
  if (lsa.up) {
    st.believed.recover(link);
  } else {
    st.believed.fail(link);
  }
  if (recompute_row(at, link)) {
    if (!ctx.reacted[at.value()]) {
      ctx.reacted[at.value()] = 1;
      ++ctx.report.switches_reacted;
    }
    ctx.react_time[at.value()] =
        std::max(ctx.react_time[at.value()], ctx.sim.now() + delays_.spf_delay);
    ctx.react_hops[at.value()] =
        std::max(ctx.react_hops[at.value()], lsa.hops);
  }
  transmit(ctx, at, lsa, arrival_link);
}

FailureReport LspLsdbSimulation::simulate_link_event(LinkId link, bool up) {
  RunContext ctx;
  ctx.cpus.resize(topo_->num_switches());
  ctx.informed.assign(topo_->num_switches(), 0);
  ctx.reacted.assign(topo_->num_switches(), 0);
  ctx.react_time.assign(topo_->num_switches(), 0.0);
  ctx.react_hops.assign(topo_->num_switches(), 0);

  const Topology::LinkRec& rec = topo_->link(link);
  for (const NodeId endpoint : {rec.upper, rec.lower}) {
    if (!topo_->is_switch_node(endpoint)) continue;
    const SwitchId origin = topo_->switch_of(endpoint);
    ctx.sim.schedule(
        delays_.detection + delays_.lsa_generation_delay,
        [this, &ctx, origin, link, up] {
          const SimTime done = ctx.cpus[origin.value()].occupy(
              ctx.sim.now(), delays_.lsa_processing);
          ctx.sim.schedule_at(done, [this, &ctx, origin, link, up] {
            Lsa lsa;
            lsa.origin = origin.value();
            lsa.seq = ++own_seq_[origin.value()];
            lsa.link = link.value();
            lsa.up = up;
            lsa.hops = 0;
            install_and_flood(ctx, origin, lsa, LinkId::invalid());
          });
        });
  }

  ctx.report.events = ctx.sim.run();
  ctx.report.table_change_completed.assign(topo_->num_switches(),
                                           FailureReport::kNoChange);
  for (std::uint32_t s = 0; s < topo_->num_switches(); ++s) {
    if (!ctx.reacted[s]) continue;
    ASPEN_ASSERT(ctx.informed[s], "a reacting switch was never informed");
    ctx.report.table_change_completed[s] = ctx.react_time[s];
    ctx.report.convergence_time_ms =
        std::max(ctx.report.convergence_time_ms, ctx.react_time[s]);
    ctx.report.max_update_hops =
        std::max(ctx.report.max_update_hops, ctx.react_hops[s]);
  }
  return ctx.report;
}

FailureReport LspLsdbSimulation::simulate_link_failure(LinkId link) {
  ASPEN_REQUIRE(overlay_.is_up(link), "link ", link.value(),
                " is already down");
  overlay_.fail(link);
  obs::trace_event(0.0, obs::TraceKind::kLinkFail, link.value(), 0, 0,
                   "lsp_full");
  return simulate_link_event(link, /*up=*/false);
}

FailureReport LspLsdbSimulation::simulate_link_recovery(LinkId link) {
  ASPEN_REQUIRE(!overlay_.is_up(link), "link ", link.value(),
                " is already up");
  overlay_.recover(link);
  obs::trace_event(0.0, obs::TraceKind::kLinkRecover, link.value(), 0, 0,
                   "lsp_full");
  return simulate_link_event(link, /*up=*/true);
}

}  // namespace aspen
