#include "src/proto/anp.h"

#include <algorithm>
#include <sstream>
#include <utility>

#include "src/obs/obs.h"
#include "src/proto/audit.h"
#include "src/sim/audit.h"
#include "src/util/contracts.h"
#include "src/util/status.h"

namespace aspen {

namespace {

// Rewrites one forwarding entry while keeping the engine's per-switch
// digest in sync (fwd_table.h): digest ^= old_row_hash ^ new_row_hash.
// Every ANP table mutation goes through here so digest short-circuits
// (switches_with_changed_tables, chaos restoration checks) stay exact.
// `fn` mutates the entry's pool slice through the owning RoutingTables
// (erase_hop_at / insert_hop_by_link / erase_hops_if).
template <typename Fn>
void mutate_entry(RoutingState& state, SwitchId s, std::uint64_t e, Fn&& fn) {
  RoutingTables& tables = state.tables;
  RoutingTables::Entry& entry = tables.entry_at(s.value(), e);
  const bool keep = state.has_digests();
  const std::uint64_t before = keep ? hash_fwd_entry(e, tables, entry) : 0;
  fn(entry);
  if (keep) {
    state.digests[s.value()] ^= before ^ hash_fwd_entry(e, tables, entry);
  }
}

}  // namespace

AnpSimulation::AnpSimulation(const Topology& topo, DelayModel delays,
                             AnpOptions options, DestGranularity granularity)
    : topo_(&topo), delays_(delays), options_(options), overlay_(topo) {
  tables_ = compute_updown_routes(topo, overlay_, granularity);
  state_.resize(topo.num_switches());
  for (auto& s : state_) {
    s.announced_lost.assign(tables_.num_dests(), 0);
  }
  alive_.assign(topo.num_switches(), 1);
}

void AnpSimulation::init_context(RunContext& ctx) {
  ctx.channel = ChannelModel(delays_.channel);
  if (delays_.channel.reliable) {
    ctx.transport.emplace(ctx.sim, ctx.channel, delays_.retransmit);
  }
  ctx.cpus.resize(topo_->num_switches());
  ctx.informed.assign(topo_->num_switches(), 0);
  ctx.reacted.assign(topo_->num_switches(), 0);
  ctx.react_time.assign(topo_->num_switches(), 0.0);
  ctx.react_hops.assign(topo_->num_switches(), 0);
}

void AnpSimulation::mark_informed(RunContext& ctx, SwitchId s) {
  if (!ctx.informed[s.value()]) {
    ctx.informed[s.value()] = 1;
    ++ctx.report.switches_informed;
  }
}

void AnpSimulation::mark_reaction(RunContext& ctx, SwitchId s, SimTime when,
                                  int hops) {
  ASPEN_ASSERT(alive_[s.value()], "a crashed switch cannot react");
  if (!ctx.reacted[s.value()]) {
    ctx.reacted[s.value()] = 1;
    ++ctx.report.switches_reacted;
  }
  ctx.react_time[s.value()] = std::max(ctx.react_time[s.value()], when);
  ctx.react_hops[s.value()] = std::max(ctx.react_hops[s.value()], hops);
}

void AnpSimulation::transmit_notification(RunContext& ctx, SwitchId from,
                                          const Topology::Neighbor& nb,
                                          const std::vector<DestIndex>& dests,
                                          bool lost, int hops) {
  if (!overlay_.is_up(nb.link)) return;
  if (!topo_->is_switch_node(nb.node)) return;  // hosts are mute
  ASPEN_ASSERT(!dests.empty(), "notifications always carry destinations");
  const SwitchId peer = topo_->switch_of(nb.node);
  ++ctx.report.messages_sent;
  obs::count("anp.msgs_sent");
  obs::trace_event(ctx.sim.now(), obs::TraceKind::kMsgSend, from.value(),
                   peer.value(), dests.size(), lost ? "anp_lost" : "anp_ok");
  auto deliver = [this, &ctx, peer, from, dests, lost, hops] {
    const SimTime done =
        ctx.cpus[peer.value()].occupy(ctx.sim.now(), delays_.anp_processing);
    ctx.sim.schedule_at(done, [this, &ctx, peer, from, dests, lost, hops] {
      if (!alive_[peer.value()]) return;  // crashed while queued on its CPU
      handle_notification(ctx, peer, from, dests, lost, hops);
    });
  };
  // Control traffic rides the same physical link as data, so a gray or
  // flapping link eats notifications too (sampled at each copy's transmit
  // time); healthy links return 0 and add no Rng draws.
  if (ctx.transport) {
    ctx.transport->send(
        delays_.propagation, std::move(deliver),
        [this, link = nb.link, from] {
          return overlay_.is_up(link) && alive_[from.value()];
        },
        [this, peer] { return alive_[peer.value()]; },
        [this, &ctx, link = nb.link] {
          return overlay_.loss_now(link, ctx.sim.now());
        });
  } else {
    ctx.channel.transmit(ctx.sim, delays_.propagation,
                         [this, peer, deliver = std::move(deliver)] {
                           if (!alive_[peer.value()]) return;  // died in flight
                           deliver();
                         },
                         overlay_.loss_now(nb.link, ctx.sim.now()));
  }
}

void AnpSimulation::send_notification(RunContext& ctx, SwitchId from,
                                      NodeId exclude,
                                      std::vector<DestIndex> dests, bool lost,
                                      int hops) {
  if (dests.empty()) return;
  if (!alive_[from.value()]) return;  // the dead do not speak

  for (const Topology::Neighbor& nb : topo_->up_neighbors(from)) {
    if (nb.node == exclude) continue;
    transmit_notification(ctx, from, nb, dests, lost, hops);
  }
  if (options_.notify_children) {
    for (const Topology::Neighbor& nb : topo_->down_neighbors(from)) {
      if (nb.node == exclude) continue;
      transmit_notification(ctx, from, nb, dests, lost, hops);
    }
  }
}

void AnpSimulation::send_resync(RunContext& ctx, SwitchId from,
                                const Topology::Neighbor& peer) {
  // A resync must only travel along directions notifications flow; planting
  // withdrawal state the peer can never retract would wedge its table.
  contracts::enforce(
      proto::audit_resync_direction(*this, from, topo_->switch_of(peer.node)),
      "anp send_resync");
  // Which destinations does `from` currently consider lost?  The peer uses
  // the complement to restore withdrawal-log entries whose loss notices
  // were since retracted — retractions it may have missed while this
  // adjacency (or either switch) was down.
  std::vector<DestIndex> lost;
  std::vector<DestIndex> fine;
  const SwitchState& st = state_[from.value()];
  for (DestIndex e = 0; e < tables_.num_dests(); ++e) {
    (st.announced_lost[e] ? lost : fine).push_back(e);
  }
  if (!lost.empty()) {
    transmit_notification(ctx, from, peer, lost, /*lost=*/true, /*hops=*/1);
  }
  if (!fine.empty()) {
    transmit_notification(ctx, from, peer, fine, /*lost=*/false, /*hops=*/1);
  }
}

void AnpSimulation::handle_notification(RunContext& ctx, SwitchId at,
                                        SwitchId neighbor,
                                        const std::vector<DestIndex>& dests,
                                        bool lost, int hops) {
  obs::count("anp.msgs_recv");
  obs::trace_event(ctx.sim.now(), obs::TraceKind::kMsgRecv, at.value(),
                   neighbor.value(), dests.size(),
                   lost ? "anp_lost" : "anp_ok");
  mark_informed(ctx, at);
  SwitchState& st = state_[at.value()];
  const NodeId neighbor_node = topo_->node_of(neighbor);
  bool changed = false;
  std::vector<DestIndex> to_forward;

  if (lost) {
    // The neighbor can no longer reach these destinations: every next hop
    // of ours that goes *through it* is dead for them, regardless of which
    // of our links to it carries the traffic.
    for (const DestIndex e : dests) {
      std::vector<Topology::Neighbor> removed;
      bool now_empty = false;
      mutate_entry(tables_, at, e, [&](RoutingTables::Entry& entry) {
        tables_.tables.erase_hops_if(
            entry, [&](const Topology::Neighbor& nb) {
              if (nb.node != neighbor_node) return false;
              removed.push_back(nb);
              return true;
            });
        now_empty = entry.hop_count == 0;
      });
      if (removed.empty()) continue;
      changed = true;
      auto& log = st.removed_by_neighbor[neighbor.value()][e];
      log.insert(log.end(), removed.begin(), removed.end());
      if (now_empty && !st.announced_lost[e]) {
        st.announced_lost[e] = 1;
        to_forward.push_back(e);
      }
    }
  } else {
    // Recovery: restore exactly what this neighbor's loss notice removed.
    const auto nb_it = st.removed_by_neighbor.find(neighbor.value());
    for (const DestIndex e : dests) {
      if (nb_it == st.removed_by_neighbor.end()) break;
      const auto log_it = nb_it->second.find(e);
      if (log_it == nb_it->second.end()) continue;
      bool was_empty = false;
      mutate_entry(tables_, at, e, [&](RoutingTables::Entry& entry) {
        was_empty = entry.hop_count == 0;
        for (const Topology::Neighbor& nb : log_it->second) {
          tables_.tables.insert_hop_by_link(entry, nb);
        }
        ASPEN_ASSERT(entry.hop_count != 0,
                     "replaying a withdrawal log restores at least one hop");
      });
      nb_it->second.erase(log_it);
      changed = true;
      if (was_empty && st.announced_lost[e]) {
        st.announced_lost[e] = 0;
        to_forward.push_back(e);
      }
    }
    if (nb_it != st.removed_by_neighbor.end() && nb_it->second.empty()) {
      st.removed_by_neighbor.erase(nb_it);
    }
  }

  if (changed) mark_reaction(ctx, at, ctx.sim.now(), hops);
  send_notification(ctx, at, neighbor_node, std::move(to_forward), lost,
                    hops + 1);
}

void AnpSimulation::detect_failure(RunContext& ctx, SwitchId s, LinkId link) {
  mark_informed(ctx, s);
  SwitchState& st = state_[s.value()];
  bool changed = false;
  std::vector<DestIndex> lost;
  for (DestIndex e = 0; e < tables_.num_dests(); ++e) {
    const RoutingTables::Entry& probe = tables_.tables.entry_at(s.value(), e);
    const std::span<const Topology::Neighbor> phops =
        tables_.tables.hops(probe);
    const auto it = std::ranges::find_if(
        phops, [&](const Topology::Neighbor& nb) { return nb.link == link; });
    if (it == phops.end()) continue;
    const auto index = static_cast<std::uint64_t>(it - phops.begin());
    st.removed_by_link[link.value()][e] = *it;
    bool now_empty = false;
    mutate_entry(tables_, s, e, [&](RoutingTables::Entry& entry) {
      tables_.tables.erase_hop_at(entry, index);
      now_empty = entry.hop_count == 0;
    });
    changed = true;
    if (now_empty && !st.announced_lost[e]) {
      st.announced_lost[e] = 1;
      lost.push_back(e);
    }
  }
  ASPEN_ASSERT(changed || lost.empty(),
               "cannot announce losses without removing hops");
  if (changed) mark_reaction(ctx, s, ctx.sim.now(), 0);
  send_notification(ctx, s, NodeId::invalid(), std::move(lost),
                    /*lost=*/true, /*hops=*/1);
}

void AnpSimulation::detect_recovery(RunContext& ctx, SwitchId s, LinkId link) {
  mark_informed(ctx, s);
  SwitchState& st = state_[s.value()];
  const auto link_it = st.removed_by_link.find(link.value());
  if (link_it != st.removed_by_link.end()) {
    bool changed = false;
    std::vector<DestIndex> restored;
    for (const auto& [e, nb] : link_it->second) {
      bool was_empty = false;
      mutate_entry(tables_, s, e, [&](RoutingTables::Entry& entry) {
        was_empty = entry.hop_count == 0;
        tables_.tables.insert_hop_by_link(entry, nb);
      });
      changed = true;
      if (was_empty && st.announced_lost[e]) {
        st.announced_lost[e] = 0;
        restored.push_back(e);
      }
    }
    st.removed_by_link.erase(link_it);
    if (changed) mark_reaction(ctx, s, ctx.sim.now(), 0);
    send_notification(ctx, s, NodeId::invalid(), std::move(restored),
                      /*lost=*/false, /*hops=*/1);
  }

  // With the local log replayed, summarize current state for the peer —
  // but only along directions notifications normally flow (up always, down
  // only with notify_children).  A resync in a direction the protocol never
  // uses would plant withdrawal state the peer has no later notice to
  // retract, permanently wedging its table.
  if (options_.adjacency_resync) {
    const Topology::LinkRec& rec = topo_->link(link);
    const NodeId self = topo_->node_of(s);
    const NodeId other = rec.upper == self ? rec.lower : rec.upper;
    const bool peer_is_parent = other == rec.upper;
    if ((peer_is_parent || options_.notify_children) &&
        topo_->is_switch_node(other) &&
        alive_[topo_->switch_of(other).value()]) {
      send_resync(ctx, s, Topology::Neighbor{other, link});
    }
  }
}

void AnpSimulation::schedule_detections(RunContext& ctx, LinkId link,
                                        bool failure) {
  // Detection is a local, data-plane observation (§6: the switch "simply
  // forwards packets … through h rather than f upon discovering the
  // failure") — it happens at +detection, not after a routing-CPU slot.
  const Topology::LinkRec& rec = topo_->link(link);
  for (const NodeId endpoint : {rec.upper, rec.lower}) {
    if (!topo_->is_switch_node(endpoint)) continue;  // hosts do not react
    const SwitchId s = topo_->switch_of(endpoint);
    if (!alive_[s.value()]) continue;
    ctx.sim.schedule(delays_.detection, [this, &ctx, s, link, failure] {
      if (!alive_[s.value()]) return;  // crashed before detection fired
      if (failure) {
        detect_failure(ctx, s, link);
      } else {
        detect_recovery(ctx, s, link);
      }
    });
  }
}

void AnpSimulation::apply_fault(RunContext& ctx, const TimedFault& ev) {
  switch (ev.kind) {
    case TimedFault::Kind::kLinkFail: {
      if (!overlay_.is_up(ev.link)) return;  // idempotent
      overlay_.fail(ev.link);
      obs::trace_event(ctx.sim.now(), obs::TraceKind::kLinkFail,
                       ev.link.value(), 0, 0, "anp");
      schedule_detections(ctx, ev.link, /*failure=*/true);
      return;
    }

    case TimedFault::Kind::kLinkRecover: {
      if (overlay_.is_up(ev.link)) return;  // idempotent
      const Topology::LinkRec& rec = topo_->link(ev.link);
      // A link to a crashed switch cannot come up; it is owed to that
      // switch's recovery instead.
      for (const NodeId endpoint : {rec.upper, rec.lower}) {
        if (!topo_->is_switch_node(endpoint)) continue;
        const std::uint32_t s = topo_->switch_of(endpoint).value();
        if (alive_[s]) continue;
        auto& owed = crash_links_[s];
        if (std::ranges::find(owed, ev.link) == owed.end()) {
          owed.push_back(ev.link);
        }
        return;
      }
      overlay_.recover(ev.link);
      obs::trace_event(ctx.sim.now(), obs::TraceKind::kLinkRecover,
                       ev.link.value(), 0, 0, "anp");
      schedule_detections(ctx, ev.link, /*failure=*/false);
      return;
    }

    case TimedFault::Kind::kSwitchFail: {
      if (!alive_[ev.sw.value()]) return;  // idempotent
      alive_[ev.sw.value()] = 0;
      obs::trace_event(ctx.sim.now(), obs::TraceKind::kSwitchCrash,
                       ev.sw.value(), 0, 0, "anp");
      // Every incident live link dies atomically.  The dead switch itself
      // detects nothing; any work already queued for it is discarded by
      // the alive guards on the scheduled closures.
      auto& owed = crash_links_[ev.sw.value()];
      const auto take = [&](const Topology::Neighbor& nb) {
        if (!overlay_.is_up(nb.link)) return;  // was already down
        overlay_.fail(nb.link);
        owed.push_back(nb.link);
        if (!topo_->is_switch_node(nb.node)) return;
        const SwitchId peer = topo_->switch_of(nb.node);
        ctx.sim.schedule(delays_.detection,
                         [this, &ctx, peer, link = nb.link] {
                           if (!alive_[peer.value()]) return;
                           detect_failure(ctx, peer, link);
                         });
      };
      for (const Topology::Neighbor& nb : topo_->up_neighbors(ev.sw)) {
        take(nb);
      }
      for (const Topology::Neighbor& nb : topo_->down_neighbors(ev.sw)) {
        take(nb);
      }
      return;
    }

    case TimedFault::Kind::kSwitchRecover: {
      if (alive_[ev.sw.value()]) return;  // idempotent
      alive_[ev.sw.value()] = 1;
      obs::trace_event(ctx.sim.now(), obs::TraceKind::kSwitchRevive,
                       ev.sw.value(), 0, 0, "anp");
      std::vector<LinkId> owed;
      if (const auto it = crash_links_.find(ev.sw.value());
          it != crash_links_.end()) {
        owed = std::move(it->second);
        crash_links_.erase(it);
      }
      const NodeId self = topo_->node_of(ev.sw);
      for (const LinkId link : owed) {
        if (overlay_.is_up(link)) continue;
        const Topology::LinkRec& rec = topo_->link(link);
        const NodeId other = rec.upper == self ? rec.lower : rec.upper;
        if (topo_->is_switch_node(other) &&
            !alive_[topo_->switch_of(other).value()]) {
          // Far endpoint is still down: custody of the link moves to it.
          auto& peer_owed = crash_links_[topo_->switch_of(other).value()];
          if (std::ranges::find(peer_owed, link) == peer_owed.end()) {
            peer_owed.push_back(link);
          }
          continue;
        }
        overlay_.recover(link);
        schedule_detections(ctx, link, /*failure=*/false);
      }
      // Custody transfers move links to *other* crashed switches only; the
      // revived switch must end the event owing nothing.
      ASPEN_ASSERT(crash_links_.find(ev.sw.value()) == crash_links_.end(),
                   "revived switch ", ev.sw.value(), " retains custody");
      return;
    }
  }
}

FailureReport AnpSimulation::simulate_link_failure(LinkId link) {
  ASPEN_REQUIRE(overlay_.is_up(link), "link ", link.value(),
                " is already down");
  const TimedFault ev = TimedFault::link_fail(link);
  return simulate_timed_events({&ev, 1});
}

FailureReport AnpSimulation::simulate_link_recovery(LinkId link) {
  ASPEN_REQUIRE(!overlay_.is_up(link), "link ", link.value(),
                " is already up");
  const TimedFault ev = TimedFault::link_recover(link);
  return simulate_timed_events({&ev, 1});
}

FailureReport AnpSimulation::simulate_switch_failure(SwitchId s) {
  ASPEN_REQUIRE(alive_.at(s.value()), "switch ", s.value(),
                " is already down");
  const TimedFault ev = TimedFault::switch_fail(s);
  return simulate_timed_events({&ev, 1});
}

FailureReport AnpSimulation::simulate_switch_recovery(SwitchId s) {
  ASPEN_REQUIRE(!alive_.at(s.value()), "switch ", s.value(),
                " is already up");
  const TimedFault ev = TimedFault::switch_recover(s);
  return simulate_timed_events({&ev, 1});
}

FailureReport AnpSimulation::simulate_timed_events(
    std::span<const TimedFault> events) {
  RunContext ctx;
  init_context(ctx);
  SimTime prev = 0.0;
  for (const TimedFault& ev : events) {
    ASPEN_REQUIRE(ev.at >= prev, "timed faults must be sorted by time");
    prev = ev.at;
    if (ev.at <= 0.0) {
      // Immediate application keeps single-event runs identical to the
      // pre-chaos code path (no extra scheduler events).
      apply_fault(ctx, ev);
    } else {
      ctx.sim.schedule_at(ev.at, [this, &ctx, ev] { apply_fault(ctx, ev); });
    }
  }
  return finish(ctx);
}

AuditReport AnpSimulation::audit() const {
  AuditReport report;
  for (std::uint32_t v = 0; v < topo_->num_switches(); ++v) {
    const SwitchId s{v};
    const SwitchState& st = state_[v];
    // Recovery detection replays and erases the per-link log, so a log
    // keyed by a live link means a replay never happened.
    for (const auto& [link_raw, log] : st.removed_by_link) {
      if (overlay_.is_up(LinkId{link_raw})) {
        std::ostringstream os;
        os << to_string(s) << " logs " << log.size()
           << " withdrawal(s) against " << to_string(LinkId{link_raw})
           << " which is up";
        report.add(AuditCode::kWithdrawalLogStale, os.str());
      }
    }
    for (DestIndex e = 0; e < tables_.num_dests(); ++e) {
      if (st.announced_lost[e] != 0 &&
          tables_.table(s).entry(e).hop_count != 0) {
        std::ostringstream os;
        os << to_string(s) << " announced dest " << e
           << " lost but still holds "
           << tables_.table(s).entry(e).hop_count << " next hop(s)";
        report.add(AuditCode::kAnnouncedLostMismatch, os.str());
      }
    }
  }
  report.merge(proto::audit_custody(*topo_, overlay_, alive_, crash_links_));
  return report;
}

FailureReport AnpSimulation::finish(RunContext& ctx) {
  const RunResult run = ctx.sim.run_bounded(delays_.max_run_events);
  ctx.report.events = run.events;
  ctx.report.quiesced = run.completed;
  ctx.report.detection_ms = delays_.detection;
  ctx.report.table_change_completed.assign(topo_->num_switches(),
                                           FailureReport::kNoChange);
  for (std::uint32_t s = 0; s < topo_->num_switches(); ++s) {
    if (ctx.reacted[s]) {
      ASPEN_ASSERT(ctx.informed[s],
                   "a reacting switch must first have been informed");
      ctx.report.table_change_completed[s] = ctx.react_time[s];
    }
  }
  for (std::uint32_t s = 0; s < topo_->num_switches(); ++s) {
    if (!ctx.reacted[s]) continue;
    ctx.report.convergence_time_ms =
        std::max(ctx.report.convergence_time_ms, ctx.react_time[s]);
    ctx.report.max_update_hops =
        std::max(ctx.report.max_update_hops, ctx.react_hops[s]);
  }
  const ChannelStats& ch = ctx.channel.stats();
  ctx.report.channel_dropped = ch.dropped;
  ctx.report.health_dropped = ch.health_dropped;
  ctx.report.channel_duplicated = ch.duplicated;
  if (ctx.transport) {
    const TransportStats& tr = ctx.transport->stats();
    ctx.report.retransmits = tr.retransmits;
    ctx.report.acks_sent = tr.acks_sent;
    ctx.report.duplicates_dropped = tr.duplicates_dropped;
    ctx.report.gave_up = tr.gave_up;
  }
  if (contracts::effective_audit_level(delays_.audit_level) >=
      contracts::AuditLevel::kParanoid) {
    AuditReport self_audit = proto::audit_channel(ch);
    if (ctx.transport) {
      self_audit.merge(proto::audit_transport(ctx.transport->stats(),
                                              delays_.retransmit.max_retries));
      if (run.completed) {
        self_audit.merge(proto::audit_transport_quiescence(*ctx.transport));
      }
    }
    self_audit.merge(sim::audit_queue(ctx.sim));
    // State invariants assume no detection is still queued.
    if (run.completed) self_audit.merge(audit());
    contracts::enforce(self_audit, "anp self-audit");
  }
  return ctx.report;
}

}  // namespace aspen
