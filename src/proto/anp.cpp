#include "src/proto/anp.h"

#include <algorithm>

#include "src/util/status.h"

namespace aspen {

namespace {

// Keeps ECMP sets sorted by link id (the order route computation emits), so
// fail-then-recover restores byte-identical tables.
void insert_sorted(std::vector<Topology::Neighbor>& hops,
                   const Topology::Neighbor& nb) {
  const auto pos = std::ranges::lower_bound(
      hops, nb.link.value(), {},
      [](const Topology::Neighbor& h) { return h.link.value(); });
  if (pos != hops.end() && pos->link == nb.link) return;  // already present
  hops.insert(pos, nb);
}

}  // namespace

AnpSimulation::AnpSimulation(const Topology& topo, DelayModel delays,
                             AnpOptions options, DestGranularity granularity)
    : topo_(&topo), delays_(delays), options_(options), overlay_(topo) {
  tables_ = compute_updown_routes(topo, overlay_, granularity);
  state_.resize(topo.num_switches());
  for (auto& s : state_) {
    s.announced_lost.assign(tables_.num_dests(), 0);
  }
}

AnpSimulation::RunContext AnpSimulation::make_context() const {
  RunContext ctx;
  ctx.cpus.resize(topo_->num_switches());
  ctx.informed.assign(topo_->num_switches(), 0);
  ctx.reacted.assign(topo_->num_switches(), 0);
  ctx.react_time.assign(topo_->num_switches(), 0.0);
  ctx.react_hops.assign(topo_->num_switches(), 0);
  return ctx;
}

void AnpSimulation::mark_informed(RunContext& ctx, SwitchId s) {
  if (!ctx.informed[s.value()]) {
    ctx.informed[s.value()] = 1;
    ++ctx.report.switches_informed;
  }
}

void AnpSimulation::mark_reaction(RunContext& ctx, SwitchId s, SimTime when,
                                  int hops) {
  if (!ctx.reacted[s.value()]) {
    ctx.reacted[s.value()] = 1;
    ++ctx.report.switches_reacted;
  }
  ctx.react_time[s.value()] = std::max(ctx.react_time[s.value()], when);
  ctx.react_hops[s.value()] = std::max(ctx.react_hops[s.value()], hops);
}

void AnpSimulation::send_notification(RunContext& ctx, SwitchId from,
                                      NodeId exclude,
                                      std::vector<DestIndex> dests, bool lost,
                                      int hops) {
  if (dests.empty()) return;

  const auto transmit = [&](const Topology::Neighbor& nb) {
    if (nb.node == exclude) return;
    if (!overlay_.is_up(nb.link)) return;
    if (!topo_->is_switch_node(nb.node)) return;  // hosts are mute
    const SwitchId peer = topo_->switch_of(nb.node);
    ++ctx.report.messages_sent;
    ctx.sim.schedule(delays_.propagation, [this, &ctx, peer, from, dests,
                                           lost, hops] {
      const SimTime done = ctx.cpus[peer.value()].occupy(
          ctx.sim.now(), delays_.anp_processing);
      ctx.sim.schedule_at(done, [this, &ctx, peer, from, dests, lost, hops] {
        handle_notification(ctx, peer, from, dests, lost, hops);
      });
    });
  };

  for (const Topology::Neighbor& nb : topo_->up_neighbors(from)) {
    transmit(nb);
  }
  if (options_.notify_children) {
    for (const Topology::Neighbor& nb : topo_->down_neighbors(from)) {
      transmit(nb);
    }
  }
}

void AnpSimulation::handle_notification(RunContext& ctx, SwitchId at,
                                        SwitchId neighbor,
                                        const std::vector<DestIndex>& dests,
                                        bool lost, int hops) {
  mark_informed(ctx, at);
  SwitchState& st = state_[at.value()];
  const NodeId neighbor_node = topo_->node_of(neighbor);
  bool changed = false;
  std::vector<DestIndex> to_forward;

  if (lost) {
    // The neighbor can no longer reach these destinations: every next hop
    // of ours that goes *through it* is dead for them, regardless of which
    // of our links to it carries the traffic.
    for (const DestIndex e : dests) {
      ForwardingTable::Entry& entry = tables_.table(at).entry(e);
      std::vector<Topology::Neighbor> removed;
      std::erase_if(entry.next_hops, [&](const Topology::Neighbor& nb) {
        if (nb.node != neighbor_node) return false;
        removed.push_back(nb);
        return true;
      });
      if (removed.empty()) continue;
      changed = true;
      auto& log = st.removed_by_neighbor[neighbor.value()][e];
      log.insert(log.end(), removed.begin(), removed.end());
      if (entry.next_hops.empty() && !st.announced_lost[e]) {
        st.announced_lost[e] = 1;
        to_forward.push_back(e);
      }
    }
  } else {
    // Recovery: restore exactly what this neighbor's loss notice removed.
    const auto nb_it = st.removed_by_neighbor.find(neighbor.value());
    for (const DestIndex e : dests) {
      if (nb_it == st.removed_by_neighbor.end()) break;
      const auto log_it = nb_it->second.find(e);
      if (log_it == nb_it->second.end()) continue;
      ForwardingTable::Entry& entry = tables_.table(at).entry(e);
      const bool was_empty = entry.next_hops.empty();
      for (const Topology::Neighbor& nb : log_it->second) {
        insert_sorted(entry.next_hops, nb);
      }
      nb_it->second.erase(log_it);
      changed = true;
      if (was_empty && st.announced_lost[e]) {
        st.announced_lost[e] = 0;
        to_forward.push_back(e);
      }
    }
    if (nb_it != st.removed_by_neighbor.end() && nb_it->second.empty()) {
      st.removed_by_neighbor.erase(nb_it);
    }
  }

  if (changed) mark_reaction(ctx, at, ctx.sim.now(), hops);
  send_notification(ctx, at, neighbor_node, std::move(to_forward), lost,
                    hops + 1);
}

void AnpSimulation::detect_failure(RunContext& ctx, SwitchId s, LinkId link) {
  mark_informed(ctx, s);
  SwitchState& st = state_[s.value()];
  bool changed = false;
  std::vector<DestIndex> lost;
  for (DestIndex e = 0; e < tables_.num_dests(); ++e) {
    ForwardingTable::Entry& entry = tables_.table(s).entry(e);
    const auto it = std::ranges::find_if(
        entry.next_hops,
        [&](const Topology::Neighbor& nb) { return nb.link == link; });
    if (it == entry.next_hops.end()) continue;
    st.removed_by_link[link.value()][e] = *it;
    entry.next_hops.erase(it);
    changed = true;
    if (entry.next_hops.empty() && !st.announced_lost[e]) {
      st.announced_lost[e] = 1;
      lost.push_back(e);
    }
  }
  if (changed) mark_reaction(ctx, s, ctx.sim.now(), 0);
  send_notification(ctx, s, NodeId::invalid(), std::move(lost),
                    /*lost=*/true, /*hops=*/1);
}

void AnpSimulation::detect_recovery(RunContext& ctx, SwitchId s, LinkId link) {
  mark_informed(ctx, s);
  SwitchState& st = state_[s.value()];
  const auto link_it = st.removed_by_link.find(link.value());
  if (link_it == st.removed_by_link.end()) return;
  bool changed = false;
  std::vector<DestIndex> restored;
  for (const auto& [e, nb] : link_it->second) {
    ForwardingTable::Entry& entry = tables_.table(s).entry(e);
    const bool was_empty = entry.next_hops.empty();
    insert_sorted(entry.next_hops, nb);
    changed = true;
    if (was_empty && st.announced_lost[e]) {
      st.announced_lost[e] = 0;
      restored.push_back(e);
    }
  }
  st.removed_by_link.erase(link_it);
  if (changed) mark_reaction(ctx, s, ctx.sim.now(), 0);
  send_notification(ctx, s, NodeId::invalid(), std::move(restored),
                    /*lost=*/false, /*hops=*/1);
}

FailureReport AnpSimulation::simulate_link_failure(LinkId link) {
  ASPEN_REQUIRE(overlay_.is_up(link), "link ", link.value(),
                " is already down");
  overlay_.fail(link);

  RunContext ctx = make_context();
  const Topology::LinkRec& rec = topo_->link(link);

  // Local detection and pruning at each endpoint.  Endpoints react at
  // detection time: disabling a dead port is a data-plane action, not a
  // routing-CPU computation (§6: the switch "simply forwards packets …
  // through h rather than f upon discovering the failure").
  for (const NodeId endpoint : {rec.upper, rec.lower}) {
    if (!topo_->is_switch_node(endpoint)) continue;  // hosts do not react
    const SwitchId s = topo_->switch_of(endpoint);
    ctx.sim.schedule(delays_.detection,
                     [this, &ctx, s, link] { detect_failure(ctx, s, link); });
  }
  return finish(ctx);
}

FailureReport AnpSimulation::simulate_link_recovery(LinkId link) {
  ASPEN_REQUIRE(!overlay_.is_up(link), "link ", link.value(),
                " is already up");
  overlay_.recover(link);

  RunContext ctx = make_context();
  const Topology::LinkRec& rec = topo_->link(link);
  for (const NodeId endpoint : {rec.upper, rec.lower}) {
    if (!topo_->is_switch_node(endpoint)) continue;
    const SwitchId s = topo_->switch_of(endpoint);
    ctx.sim.schedule(delays_.detection,
                     [this, &ctx, s, link] { detect_recovery(ctx, s, link); });
  }
  return finish(ctx);
}

FailureReport AnpSimulation::finish(RunContext& ctx) {
  ctx.report.events = ctx.sim.run();
  ctx.report.table_change_completed.assign(topo_->num_switches(),
                                           FailureReport::kNoChange);
  for (std::uint32_t s = 0; s < topo_->num_switches(); ++s) {
    if (ctx.reacted[s]) {
      ctx.report.table_change_completed[s] = ctx.react_time[s];
    }
  }
  for (std::uint32_t s = 0; s < topo_->num_switches(); ++s) {
    if (!ctx.reacted[s]) continue;
    ctx.report.convergence_time_ms =
        std::max(ctx.report.convergence_time_ms, ctx.react_time[s]);
    ctx.report.max_update_hops =
        std::max(ctx.report.max_update_hops, ctx.react_hops[s]);
  }
  return ctx.report;
}

}  // namespace aspen
