#include "src/proto/inflight.h"

#include "src/proto/experiment.h"
#include "src/util/contracts.h"
#include "src/util/status.h"

namespace aspen {

namespace {

// SplitMix64, matching the packet walker's ECMP hash.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

// Data-plane per-hop latency: propagation dominates (switching is ns).
constexpr SimTime kHopLatency = 0.001;  // 1 µs in ms

// Gray-drop verdict, identical keying to routing/packet_walk.cpp: per
// (seed, link, src, dst), never per hop, so both walkers agree on a flow's
// fate across the same gray link.
bool gray_drops(const LinkStateOverlay& actual, LinkId link, HostId src,
                HostId dst, const WalkOptions& options) {
  if (!options.apply_health) return false;
  const LinkHealthState h = actual.health(link);
  if (h.health != LinkHealth::kGray) return false;
  const std::uint64_t key =
      // aspen-lint: allow(seed-arith) -- per-(flow,link) gray-drop hash predating derive_stream_seed; the mixing is pinned by recorded goldens and EXPERIMENTS baselines
      mix64(options.health_seed ^
            (static_cast<std::uint64_t>(src.value()) << 40) ^
            (static_cast<std::uint64_t>(dst.value()) << 20) ^ link.value());
  const double u = static_cast<double>(key >> 11) * 0x1.0p-53;
  return u < h.loss_rate;
}

// Physically usable at the packet's *current* clock — the in-flight walker
// tracks real per-hop time, so a flapping link's phase is evaluated when
// the packet reaches it, not when it was injected.
bool link_live(const LinkStateOverlay& actual, LinkId link,
               const WalkOptions& options, SimTime now_ms) {
  if (!actual.is_up(link)) return false;
  return !options.apply_health || actual.phase_up(link, now_ms);
}

}  // namespace

WalkResult walk_during_convergence(const Topology& topo,
                                   const RoutingState& before,
                                   const RoutingState& after,
                                   const FailureReport& report,
                                   const LinkStateOverlay& actual,
                                   HostId src, HostId dst, SimTime inject_ms,
                                   const WalkOptions& options) {
  ASPEN_REQUIRE(report.table_change_completed.size() == topo.num_switches(),
                "report lacks per-switch change times");
  ASPEN_REQUIRE(before.num_dests() == after.num_dests(),
                "before/after tables have different granularity");

  WalkResult result;
  result.path.push_back(topo.node_of(src));
  const SwitchId dest_edge = topo.edge_switch_of(dst);
  SimTime now = inject_ms;

  const Topology::Neighbor ingress = topo.host_uplink(src);
  if (!link_live(actual, ingress.link, options, now)) {
    result.status = WalkStatus::kDropped;
    result.dropped_at = SwitchId::invalid();
    return result;
  }
  if (gray_drops(actual, ingress.link, src, dst, options)) {
    result.status = WalkStatus::kDropped;
    result.dropped_at = SwitchId::invalid();
    result.health_loss = true;
    return result;
  }
  SwitchId at = topo.switch_of(ingress.node);
  result.path.push_back(ingress.node);
  result.hops = 1;
  now += kHopLatency;

  while (result.hops < options.ttl) {
    if (at == dest_edge) {
      const Topology::Neighbor downlink = topo.host_uplink(dst);
      if (!link_live(actual, downlink.link, options, now)) {
        result.status = WalkStatus::kDropped;
        result.dropped_at = at;
        return result;
      }
      if (gray_drops(actual, downlink.link, src, dst, options)) {
        result.status = WalkStatus::kDropped;
        result.dropped_at = at;
        result.health_loss = true;
        return result;
      }
      result.path.push_back(topo.node_of(dst));
      ++result.hops;
      result.status = WalkStatus::kDelivered;
      return result;
    }

    ASPEN_ASSERT(now >= inject_ms,
                 "in-flight clock ran backwards during a walk");
    // The racing lookup: old entry before this switch's change completes.
    const SimTime flipped_at = report.table_change_completed[at.value()];
    const bool updated =
        flipped_at != FailureReport::kNoChange && now >= flipped_at;
    const RoutingState& view = updated ? after : before;
    const std::span<const Topology::Neighbor> hops =
        view.table(at).next_hops(view.dest_index(dst));
    if (hops.empty()) {
      result.status = WalkStatus::kNoRoute;
      result.dropped_at = at;
      return result;
    }

    const std::uint64_t key =
        // aspen-lint: allow(seed-arith) -- per-flow ECMP hash predating derive_stream_seed; the mixing is pinned by recorded goldens and EXPERIMENTS baselines
        mix64(options.flow_seed ^
              (static_cast<std::uint64_t>(src.value()) << 32) ^ dst.value() ^
              (static_cast<std::uint64_t>(at.value()) << 16));
    const std::size_t first_choice = key % hops.size();

    const Topology::Neighbor* chosen = nullptr;
    if (options.local_link_awareness) {
      for (std::size_t off = 0; off < hops.size(); ++off) {
        const Topology::Neighbor& cand =
            hops[(first_choice + off) % hops.size()];
        if (link_live(actual, cand.link, options, now)) {
          chosen = &cand;
          break;
        }
      }
    } else if (link_live(actual, hops[first_choice].link, options, now)) {
      chosen = &hops[first_choice];
    }
    if (chosen == nullptr) {
      result.status = WalkStatus::kDropped;
      result.dropped_at = at;
      return result;
    }
    if (gray_drops(actual, chosen->link, src, dst, options)) {
      result.status = WalkStatus::kDropped;
      result.dropped_at = at;
      result.health_loss = true;
      return result;
    }

    result.path.push_back(chosen->node);
    ++result.hops;
    now += kHopLatency;
    if (!topo.is_switch_node(chosen->node)) {
      ASPEN_CHECK(chosen->node == topo.node_of(dst),
                  "routed into a host that is not the destination");
      result.status = WalkStatus::kDelivered;
      return result;
    }
    at = topo.switch_of(chosen->node);
  }

  result.status = WalkStatus::kTtlExceeded;
  result.dropped_at = at;
  return result;
}

std::vector<WindowSample> measure_vulnerability_window(
    const Topology& topo, const RoutingState& before,
    const RoutingState& after, const FailureReport& report,
    const LinkStateOverlay& actual, const std::vector<Flow>& flows,
    const std::vector<SimTime>& sample_times_ms,
    const WalkOptions& options) {
  std::vector<WindowSample> curve;
  curve.reserve(sample_times_ms.size());
  for (const SimTime t : sample_times_ms) {
    WindowSample sample;
    sample.inject_ms = t;
    for (const Flow& flow : flows) {
      ASPEN_ASSERT(flow.src != flow.dst, "window flows must cross the fabric");
      ++sample.flows;
      const WalkResult walk =
          walk_during_convergence(topo, before, after, report, actual,
                                  flow.src, flow.dst, t, options);
      if (!walk.delivered()) ++sample.lost;
    }
    curve.push_back(sample);
  }
  return curve;
}

std::vector<WindowSample> run_window_experiment(
    ProtocolKind kind, const Topology& topo, LinkId link,
    const std::vector<Flow>& flows,
    const std::vector<SimTime>& sample_times_ms, DelayModel delays,
    AnpOptions anp_options) {
  auto proto = make_protocol(kind, topo, delays, anp_options);
  const RoutingState before = proto->tables();
  const FailureReport report = proto->simulate_link_failure(link);
  const auto curve = measure_vulnerability_window(
      topo, before, proto->tables(), report, proto->overlay(), flows,
      sample_times_ms);
  (void)proto->simulate_link_recovery(link);
  return curve;
}

}  // namespace aspen
