// LSP, the long way: a fully distributed link-state implementation.
//
// LspSimulation (lsp.h) computes the post-event routing state once and uses
// the DES only for timing — a sound shortcut because a single link event is
// fully described by one LSA.  This class keeps no such global knowledge:
// every switch owns
//   * an LSDB: highest sequence number seen per origin, plus its *believed*
//     link-state overlay assembled purely from received LSAs, and
//   * its own forwarding row, recomputed by running SPF on its believed
//     overlay whenever a new LSA is installed.
// Switch views are transiently inconsistent, exactly like a real IGP; the
// equivalence tests (tests/test_lsp_full.cpp) show the shortcut and the
// distributed protocol converge to identical tables with identical
// reaction sets and timing — the justification for using the fast model in
// the Figure 10 benchmarks.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "src/proto/protocol.h"
#include "src/proto/report.h"
#include "src/routing/updown.h"
#include "src/sim/simulator.h"
#include "src/topo/link_state.h"
#include "src/topo/topology.h"

namespace aspen {

class LspLsdbSimulation final : public ProtocolSimulation {
 public:
  explicit LspLsdbSimulation(
      const Topology& topo, DelayModel delays = {},
      DestGranularity granularity = DestGranularity::kEdge);

  FailureReport simulate_link_failure(LinkId link) override;
  FailureReport simulate_link_recovery(LinkId link) override;

  /// The fabric's forwarding state: each switch's self-computed row.
  [[nodiscard]] const RoutingState& tables() const override { return tables_; }
  [[nodiscard]] const LinkStateOverlay& overlay() const override {
    return overlay_;
  }
  [[nodiscard]] LinkStateOverlay& overlay_mut() override { return overlay_; }
  [[nodiscard]] const Topology& topology() const override { return *topo_; }

 private:
  struct Lsa {
    std::uint32_t origin;  ///< switch id
    std::uint64_t seq;
    std::uint32_t link;    ///< the link the update describes
    bool up;
    int hops;              ///< distance traveled, for metrics
  };

  /// Per-switch protocol state.
  struct SwitchState {
    std::map<std::uint32_t, std::uint64_t> highest_seq;  ///< per origin
    LinkStateOverlay believed;
    /// SPF result for `believed`, updated incrementally per installed LSA
    /// (each install flips at most one link).  Caching the whole state per
    /// switch trades memory for dropping the full SPF this class used to
    /// run on every install; it exists for fidelity on small trees, where
    /// the footprint is trivial.
    RoutingState view;

    explicit SwitchState(const Topology& topo) : believed(topo) {}
  };

  struct RunContext {
    Simulator sim;
    std::vector<CpuQueue> cpus;
    std::vector<char> informed;
    std::vector<char> reacted;
    std::vector<SimTime> react_time;
    std::vector<int> react_hops;
    FailureReport report;
  };

  FailureReport simulate_link_event(LinkId link, bool up);
  /// Refreshes `s`'s own forwarding row after its believed overlay may
  /// have flipped `changed`; returns true when the row changed.
  bool recompute_row(SwitchId s, LinkId changed);
  void install_and_flood(RunContext& ctx, SwitchId at, const Lsa& lsa,
                         LinkId arrival_link);
  void transmit(RunContext& ctx, SwitchId from, const Lsa& lsa,
                LinkId arrival_link);

  const Topology* topo_;
  DelayModel delays_;
  DestGranularity granularity_;
  LinkStateOverlay overlay_;   ///< ground truth
  RoutingState tables_;        ///< row s computed by switch s
  std::vector<SwitchState> state_;
  std::vector<std::uint64_t> own_seq_;  ///< per switch, as LSA origin
};

}  // namespace aspen
