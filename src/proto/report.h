// Result types shared by the LSP and ANP simulations.
#pragma once

#include <cstdint>
#include <vector>

#include "src/sim/simulator.h"

namespace aspen {

/// Outcome of simulating one link failure (or recovery) under a protocol.
struct FailureReport {
  /// Time from the failure until the last switch finished updating its
  /// forwarding table (ms).  0 when the reaction was entirely local.
  SimTime convergence_time_ms = 0.0;
  /// Switches whose forwarding tables changed — the paper's "switches that
  /// react to each failure" (Fig. 10(a)/(c); footnote 12: "our measurements
  /// only attribute an LSA to a switch that changes its forwarding table").
  std::uint64_t switches_reacted = 0;
  /// Switches that processed at least one protocol update (new LSA or ANP
  /// notification), whether or not their tables changed.  For LSP this is
  /// essentially every switch (flooding); for ANP only the endpoints and
  /// the notified ancestors.
  std::uint64_t switches_informed = 0;
  /// Protocol messages transmitted on links.
  std::uint64_t messages_sent = 0;
  /// Farthest hop distance a table-changing update traveled from the
  /// failure (0 = purely local reaction).
  int max_update_hops = 0;
  /// Simulator events processed.
  std::uint64_t events = 0;
  /// Per-switch completion time of its (last) table change this run;
  /// kNoChange for switches whose tables did not change.  Feeds the
  /// in-flight window-of-vulnerability experiments (src/proto/inflight.h).
  std::vector<SimTime> table_change_completed;
  static constexpr SimTime kNoChange = -1.0;
};

}  // namespace aspen
