#include "src/proto/audit.h"

#include <sstream>

namespace aspen::proto {

AuditReport audit_channel(const ChannelStats& stats) {
  AuditReport report;
  // Every transmit() schedules one copy, none (drop), or two (duplicate):
  // delivered + dropped must equal attempted + duplicated.
  if (stats.delivered + stats.dropped != stats.attempted + stats.duplicated) {
    std::ostringstream os;
    os << "channel copies unaccounted: delivered " << stats.delivered
       << " + dropped " << stats.dropped << " != attempted " << stats.attempted
       << " + duplicated " << stats.duplicated;
    report.add(AuditCode::kChannelAccounting, os.str());
  }
  return report;
}

AuditReport audit_transport(const TransportStats& stats, int max_retries) {
  AuditReport report;
  if (stats.gave_up > stats.sends) {
    std::ostringstream os;
    os << "transport gave up on " << stats.gave_up << " messages but only "
       << stats.sends << " were ever sent";
    report.add(AuditCode::kTransportAccounting, os.str());
  }
  const std::uint64_t retry_budget =
      stats.sends * static_cast<std::uint64_t>(max_retries < 0 ? 0
                                                               : max_retries);
  if (stats.retransmits > retry_budget) {
    std::ostringstream os;
    os << "transport retransmitted " << stats.retransmits
       << " times, exceeding the cap of " << max_retries << " per send over "
       << stats.sends << " sends";
    report.add(AuditCode::kTransportAccounting, os.str());
  }
  return report;
}

AuditReport audit_transport_quiescence(const ReliableTransport& transport) {
  AuditReport report;
  const std::size_t open = transport.in_flight();
  if (open != 0) {
    std::ostringstream os;
    os << open << " conversation(s) neither acked nor abandoned at "
       << "quiescence";
    report.add(AuditCode::kInflightAccounting, os.str());
  }
  return report;
}

AuditReport audit_custody(
    const Topology& topo, const LinkStateOverlay& overlay,
    const std::vector<char>& alive,
    const std::map<std::uint32_t, std::vector<LinkId>>& crash_links) {
  AuditReport report;
  for (const auto& [sw_raw, links] : crash_links) {
    const SwitchId s{sw_raw};
    if (alive[sw_raw] != 0) {
      std::ostringstream os;
      os << to_string(s) << " holds custody of " << links.size()
         << " link(s) but is alive";
      report.add(AuditCode::kCrashCustody, os.str());
    }
    for (const LinkId link : links) {
      const Topology::LinkRec& rec = topo.link(link);
      const bool incident =
          rec.upper == topo.node_of(s) || rec.lower == topo.node_of(s);
      if (!incident) {
        std::ostringstream os;
        os << to_string(s) << " holds custody of non-incident "
           << to_string(link);
        report.add(AuditCode::kCrashCustody, os.str());
      }
      if (overlay.is_up(link)) {
        std::ostringstream os;
        os << to_string(s) << " holds custody of " << to_string(link)
           << " which is up";
        report.add(AuditCode::kCustodyLinkUp, os.str());
      }
    }
  }
  return report;
}

AuditReport audit_resync_direction(const AnpSimulation& sim, SwitchId from,
                                   SwitchId to) {
  AuditReport report;
  const Topology& topo = sim.topology();
  const bool upward = topo.level_of(to) > topo.level_of(from);
  if (!upward && !sim.options().notify_children) {
    std::ostringstream os;
    os << "resync from " << to_string(from) << " (L" << topo.level_of(from)
       << ") down to " << to_string(to) << " (L" << topo.level_of(to)
       << ") without notify_children — the peer has no later notice to "
       << "retract it";
    report.add(AuditCode::kResyncDirection, os.str());
  }
  return report;
}

AuditReport audit_anp(const AnpSimulation& sim) { return sim.audit(); }

AuditReport audit_lsp(const LspSimulation& sim) { return sim.audit(); }

void AnpAuditPeer::set_announced_lost(AnpSimulation& sim, SwitchId s,
                                      std::uint64_t dest, bool lost) {
  sim.state_[s.value()].announced_lost[dest] = lost ? 1 : 0;
}

void AnpAuditPeer::log_removed_by_link(AnpSimulation& sim, SwitchId s,
                                       LinkId link, std::uint64_t dest,
                                       const Topology::Neighbor& hop) {
  sim.state_[s.value()].removed_by_link[link.value()][dest] = hop;
}

void AnpAuditPeer::add_crash_custody(AnpSimulation& sim, SwitchId s,
                                     LinkId link) {
  sim.crash_links_[s.value()].push_back(link);
}

void AnpAuditPeer::set_alive(AnpSimulation& sim, SwitchId s, bool alive) {
  sim.alive_[s.value()] = alive ? 1 : 0;
}

RoutingState& AnpAuditPeer::tables(AnpSimulation& sim) { return sim.tables_; }

LinkStateOverlay& AnpAuditPeer::overlay(AnpSimulation& sim) {
  return sim.overlay_;
}

void LspAuditPeer::add_crash_custody(LspSimulation& sim, SwitchId s,
                                     LinkId link) {
  sim.crash_links_[s.value()].push_back(link);
}

void LspAuditPeer::set_alive(LspSimulation& sim, SwitchId s, bool alive) {
  sim.alive_[s.value()] = alive ? 1 : 0;
}

RoutingState& LspAuditPeer::tables(LspSimulation& sim) { return sim.tables_; }

LinkStateOverlay& LspAuditPeer::overlay(LspSimulation& sim) {
  return sim.overlay_;
}

}  // namespace aspen::proto
