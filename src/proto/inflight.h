// In-flight packet loss during re-convergence — the §8.4 window of
// vulnerability, measured instead of estimated.
//
// "There is a window of vulnerability after a failure or recovery while
//  ANP notifications are sent and processed, and packet loss can occur
//  during this window."
//
// A protocol run yields three artifacts: the pre-failure tables, the
// post-reaction tables, and each switch's table-change completion time
// (FailureReport::table_change_completed).  A packet injected at time t is
// walked hop by hop with data-plane latency; at each switch it consults the
// *old* entry if it arrives before that switch's change completed and the
// *new* entry afterwards — exactly the mixed state real packets race
// against.  Sweeping t maps out the loss window.
//
// Approximation: a switch whose table changes more than once during one
// reaction (rare for single failures) is modeled as flipping once, at its
// final change time.
#pragma once

#include <cstdint>
#include <vector>

#include "src/proto/anp.h"
#include "src/proto/protocol.h"
#include "src/proto/report.h"
#include "src/routing/packet_walk.h"
#include "src/topo/link_state.h"
#include "src/topo/topology.h"
#include "src/traffic/patterns.h"

namespace aspen {

/// Walks one packet injected at `inject_ms` (relative to the failure's
/// detection instant) through the transitioning fabric.
[[nodiscard]] WalkResult walk_during_convergence(
    const Topology& topo, const RoutingState& before,
    const RoutingState& after, const FailureReport& report,
    const LinkStateOverlay& actual, HostId src, HostId dst,
    SimTime inject_ms, const WalkOptions& options = {});

/// One point of a loss-vs-time curve.
struct WindowSample {
  SimTime inject_ms = 0.0;
  std::uint64_t flows = 0;
  std::uint64_t lost = 0;

  [[nodiscard]] double loss_rate() const {
    return flows == 0 ? 0.0
                      : static_cast<double>(lost) /
                            static_cast<double>(flows);
  }
};

/// Injects every flow at each sample time and records losses — the window
/// of vulnerability profile.  Sample times are relative to detection.
[[nodiscard]] std::vector<WindowSample> measure_vulnerability_window(
    const Topology& topo, const RoutingState& before,
    const RoutingState& after, const FailureReport& report,
    const LinkStateOverlay& actual, const std::vector<Flow>& flows,
    const std::vector<SimTime>& sample_times_ms,
    const WalkOptions& options = {});

/// Convenience harness: runs `kind` against a failure of `link`, measures
/// the window with the given flows/sample times, rolls the failure back,
/// and returns the curve.
[[nodiscard]] std::vector<WindowSample> run_window_experiment(
    ProtocolKind kind, const Topology& topo, LinkId link,
    const std::vector<Flow>& flows,
    const std::vector<SimTime>& sample_times_ms, DelayModel delays = {},
    AnpOptions anp_options = {});

}  // namespace aspen
