#include "src/proto/lsp.h"

#include <algorithm>
#include <array>
#include <cstddef>
#include <functional>
#include <optional>
#include <utility>
#include <vector>

#include "src/obs/obs.h"
#include "src/proto/audit.h"
#include "src/sim/audit.h"
#include "src/sim/channel.h"
#include "src/util/contracts.h"
#include "src/util/status.h"

namespace aspen {

namespace {

/// Links whose overlay state one fault event actually changed.
struct FaultEffect {
  std::vector<LinkId> failed;
  std::vector<LinkId> recovered;
};

/// Pure state transition for one fault event, shared by the preview pass
/// (on copies) and the live application (on the protocol's real state), so
/// the two can never diverge.  Mirrors AnpSimulation::apply_fault's rules:
/// idempotent per event; a recovering link with a crashed endpoint is owed
/// to that switch's crash-links list instead of coming up; a crash fails
/// every incident live link; a revival restores the owed links, passing
/// custody onward for links whose far endpoint is still down.
FaultEffect apply_fault_state(
    const Topology& topo, LinkStateOverlay& overlay, std::vector<char>& alive,
    std::map<std::uint32_t, std::vector<LinkId>>& crash_links,
    const TimedFault& ev) {
  FaultEffect effect;
  switch (ev.kind) {
    case TimedFault::Kind::kLinkFail: {
      if (!overlay.is_up(ev.link)) break;  // idempotent
      overlay.fail(ev.link);
      effect.failed.push_back(ev.link);
      break;
    }

    case TimedFault::Kind::kLinkRecover: {
      if (overlay.is_up(ev.link)) break;  // idempotent
      const Topology::LinkRec& rec = topo.link(ev.link);
      bool owed = false;
      for (const NodeId endpoint : {rec.upper, rec.lower}) {
        if (!topo.is_switch_node(endpoint)) continue;
        const std::uint32_t s = topo.switch_of(endpoint).value();
        if (alive[s]) continue;
        auto& list = crash_links[s];
        if (std::ranges::find(list, ev.link) == list.end()) {
          list.push_back(ev.link);
        }
        owed = true;
        break;
      }
      if (owed) break;
      ASPEN_ASSERT(std::ranges::all_of(
                       std::array{rec.upper, rec.lower},
                       [&](NodeId n) {
                         return !topo.is_switch_node(n) ||
                                alive[topo.switch_of(n).value()];
                       }),
                   "recovering a link with a crashed endpoint");
      overlay.recover(ev.link);
      effect.recovered.push_back(ev.link);
      break;
    }

    case TimedFault::Kind::kSwitchFail: {
      if (!alive[ev.sw.value()]) break;  // idempotent
      alive[ev.sw.value()] = 0;
      auto& owed = crash_links[ev.sw.value()];
      const auto take = [&](const Topology::Neighbor& nb) {
        if (!overlay.is_up(nb.link)) return;  // was already down
        overlay.fail(nb.link);
        owed.push_back(nb.link);
        effect.failed.push_back(nb.link);
      };
      for (const Topology::Neighbor& nb : topo.up_neighbors(ev.sw)) take(nb);
      for (const Topology::Neighbor& nb : topo.down_neighbors(ev.sw)) {
        take(nb);
      }
      break;
    }

    case TimedFault::Kind::kSwitchRecover: {
      if (alive[ev.sw.value()]) break;  // idempotent
      alive[ev.sw.value()] = 1;
      std::vector<LinkId> owed;
      if (const auto it = crash_links.find(ev.sw.value());
          it != crash_links.end()) {
        owed = std::move(it->second);
        crash_links.erase(it);
      }
      const NodeId self = topo.node_of(ev.sw);
      for (const LinkId link : owed) {
        if (overlay.is_up(link)) continue;
        const Topology::LinkRec& rec = topo.link(link);
        const NodeId other = rec.upper == self ? rec.lower : rec.upper;
        if (topo.is_switch_node(other) &&
            !alive[topo.switch_of(other).value()]) {
          auto& peer = crash_links[topo.switch_of(other).value()];
          if (std::ranges::find(peer, link) == peer.end()) {
            peer.push_back(link);
          }
          continue;
        }
        overlay.recover(link);
        effect.recovered.push_back(link);
      }
      break;
    }
  }
  return effect;
}

}  // namespace

LspSimulation::LspSimulation(const Topology& topo, DelayModel delays,
                             DestGranularity granularity)
    : topo_(&topo),
      delays_(delays),
      granularity_(granularity),
      overlay_(topo) {
  tables_ = compute_updown_routes(topo, overlay_, granularity_);
  converged_ = tables_;
  converged_synced_ = true;
  alive_.assign(topo.num_switches(), 1);
}

FailureReport LspSimulation::simulate_link_failure(LinkId link) {
  ASPEN_REQUIRE(overlay_.is_up(link), "link ", link.value(),
                " is already down");
  const TimedFault ev = TimedFault::link_fail(link);
  return simulate_timed_events({&ev, 1});
}

FailureReport LspSimulation::simulate_link_recovery(LinkId link) {
  ASPEN_REQUIRE(!overlay_.is_up(link), "link ", link.value(),
                " is already up");
  const TimedFault ev = TimedFault::link_recover(link);
  return simulate_timed_events({&ev, 1});
}

FailureReport LspSimulation::simulate_switch_failure(SwitchId s) {
  ASPEN_REQUIRE(alive_.at(s.value()), "switch ", s.value(),
                " is already down");
  const TimedFault ev = TimedFault::switch_fail(s);
  return simulate_timed_events({&ev, 1});
}

FailureReport LspSimulation::simulate_switch_recovery(SwitchId s) {
  ASPEN_REQUIRE(!alive_.at(s.value()), "switch ", s.value(),
                " is already up");
  const TimedFault ev = TimedFault::switch_recover(s);
  return simulate_timed_events({&ev, 1});
}

FailureReport LspSimulation::simulate_timed_events(
    std::span<const TimedFault> events) {
  const Topology& topo = *topo_;

  // ---- Preview pass: replay the schedule on copies of the fault-plane
  // state to learn each event's effective link changes (its LSA origins)
  // and the final converged tables.
  struct Record {
    SimTime at = 0.0;
    std::vector<SwitchId> origins;  // upper endpoint first (slot order)
  };
  std::vector<Record> records;
  bool has_switch_event = false;
  const bool was_fully_alive =
      std::ranges::all_of(alive_, [](char a) { return a != 0; });
  RoutingState after;
  std::vector<char> changes(topo.num_switches(), 0);
  std::vector<LinkId> changed_links;
  {
    LinkStateOverlay future = overlay_;
    std::vector<char> future_alive = alive_;
    auto future_crash = crash_links_;
    SimTime prev = 0.0;
    for (const TimedFault& ev : events) {
      ASPEN_REQUIRE(ev.at >= prev, "timed faults must be sorted by time");
      prev = ev.at;
      if (ev.kind == TimedFault::Kind::kSwitchFail ||
          ev.kind == TimedFault::Kind::kSwitchRecover) {
        has_switch_event = true;
      }
      const FaultEffect effect =
          apply_fault_state(topo, future, future_alive, future_crash, ev);
      Record rec{ev.at, {}};
      const auto add_origin = [&](NodeId endpoint) {
        if (!topo.is_switch_node(endpoint)) return;  // hosts are mute
        const SwitchId s = topo.switch_of(endpoint);
        if (!future_alive[s.value()]) return;  // the dead flood nothing
        if (std::ranges::find(rec.origins, s) == rec.origins.end()) {
          rec.origins.push_back(s);
        }
      };
      for (const LinkId link : effect.failed) {
        add_origin(topo.link(link).upper);
        add_origin(topo.link(link).lower);
        changed_links.push_back(link);
      }
      for (const LinkId link : effect.recovered) {
        add_origin(topo.link(link).upper);
        add_origin(topo.link(link).lower);
        changed_links.push_back(link);
      }
      if (!effect.failed.empty() || !effect.recovered.empty()) {
        records.push_back(std::move(rec));
      }
    }
    // Exact set of switches whose converged tables differ across the run.
    // A switch dead at the end keeps its stale tables (it flips in a later
    // run, once revived — the diff is always against current tables_).
    //
    // The post-run routes derive incrementally from the maintained
    // converged ground truth (only rows the flipped links can affect are
    // recomputed); a previous incomplete bounded run invalidates that
    // cache, forcing a fresh full compute here.
    if (!converged_synced_) {
      converged_ = compute_updown_routes(topo, overlay_, granularity_);
      converged_synced_ = true;
    }
    after = converged_;
    recompute_updown_routes(topo, future, after, changed_links);
    const bool digest_cmp = tables_.has_digests() && after.has_digests();
    for (std::uint32_t s = 0; s < topo.num_switches(); ++s) {
      if (!future_alive[s]) continue;
      // Unequal digests prove the tables differ; equal digests are
      // confirmed with the deep compare, keeping the diff exact.
      if (digest_cmp && tables_.digests[s] != after.digests[s]) {
        changes[s] = 1;
      } else if (!(tables_.tables[s] == after.tables[s])) {
        changes[s] = 1;
      }
    }
  }
  // In the paper's regime — perfect channel, healthy links, no crashes —
  // every changed switch must hear an LSA, and failing to is a model bug,
  // not an outcome.  Degraded link health makes copies lossy even over a
  // perfect channel, so it demotes the check to a measured outcome too.
  const bool strict = delays_.channel.perfect() && !has_switch_event &&
                      was_fully_alive && overlay_.num_degraded() == 0;

  // ---- Flood simulation: per-switch highest sequence seen per origin
  // slot, serialized CPUs, hop counters on LSAs.  A changed switch flips to
  // the post-run routes once it has heard at least one origin of *every*
  // record (for a single link event: its first new LSA, as before).
  Simulator sim;
  ChannelModel channel(delays_.channel);
  std::optional<ReliableTransport> transport;
  if (delays_.channel.reliable) {
    transport.emplace(sim, channel, delays_.retransmit);
  }
  std::vector<CpuQueue> cpus(topo.num_switches());
  std::vector<std::size_t> slot_base(records.size(), 0);
  std::size_t num_slots = 0;
  std::size_t required = 0;
  for (std::size_t r = 0; r < records.size(); ++r) {
    slot_base[r] = num_slots;
    num_slots += records[r].origins.size();
    if (!records[r].origins.empty()) ++required;
  }
  std::vector<std::vector<char>> seen(topo.num_switches(),
                                      std::vector<char>(num_slots, 0));
  std::vector<std::vector<char>> record_heard(
      topo.num_switches(), std::vector<char>(records.size(), 0));
  std::vector<std::size_t> records_heard(topo.num_switches(), 0);
  std::vector<SimTime> table_change_time(topo.num_switches(), -1.0);
  std::vector<int> table_change_hops(topo.num_switches(), 0);
  FailureReport report;

  const auto install = [&](SwitchId at, std::size_t slot, std::size_t rec,
                           int hops) {
    ASPEN_ASSERT(slot < num_slots, "LSA slot out of range");
    ASPEN_ASSERT(alive_[at.value()], "a crashed switch cannot install LSAs");
    obs::count("lsp.lsa_installs");
    obs::trace_event(sim.now(), obs::TraceKind::kMsgRecv, at.value(), 0, slot,
                     "lsp");
    seen[at.value()][slot] = 1;
    if (!record_heard[at.value()][rec]) {
      record_heard[at.value()][rec] = 1;
      ++records_heard[at.value()];
    }
    if (changes[at.value()] && records_heard[at.value()] == required &&
        table_change_time[at.value()] < 0) {
      // Routes install only after the SPF hold-down; flooding is not held
      // (OSPF's fast-flood/slow-SPF split).
      table_change_time[at.value()] = sim.now() + delays_.spf_delay;
      table_change_hops[at.value()] = hops;
    }
  };

  // Flood `slot`'s LSA out of `from` on every live link except the one it
  // arrived on.
  const std::function<void(SwitchId, LinkId, std::size_t, std::size_t, int)>
      flood = [&](SwitchId from, LinkId arrival_link, std::size_t slot,
                  std::size_t rec, int hops) {
        const auto forward = [&](const Topology::Neighbor& nb) {
          if (nb.link == arrival_link) return;
          if (!overlay_.is_up(nb.link)) return;
          if (!topo.is_switch_node(nb.node)) return;  // hosts do not flood
          const SwitchId dst = topo.switch_of(nb.node);
          ++report.messages_sent;
          obs::count("lsp.msgs_sent");
          obs::trace_event(sim.now(), obs::TraceKind::kMsgSend, from.value(),
                           dst.value(), slot, "lsp");
          auto deliver = [&, dst, slot, rec, hops, via = nb.link] {
            if (!alive_[dst.value()]) return;  // crashed while in flight
            const bool is_new = !seen[dst.value()][slot];
            const SimTime cost = is_new ? delays_.lsa_processing
                                        : delays_.lsa_duplicate_processing;
            const SimTime done = cpus[dst.value()].occupy(sim.now(), cost);
            sim.schedule_at(done, [&, dst, slot, rec, hops, via] {
              // Re-check at processing completion: a copy that raced in
              // while this one sat on the CPU may have installed it first;
              // the switch may also have crashed while the copy queued.
              if (!alive_[dst.value()]) return;
              if (seen[dst.value()][slot]) return;
              install(dst, slot, rec, hops + 1);
              flood(dst, via, slot, rec, hops + 1);
            });
          };
          // LSAs ride the same physical links as data, so gray/flapping
          // health eats flood copies too (0 on healthy links, no Rng draw).
          if (transport) {
            transport->send(
                delays_.propagation, std::move(deliver),
                [&, link = nb.link, from] {
                  return overlay_.is_up(link) && alive_[from.value()];
                },
                [&, dst] { return alive_[dst.value()]; },
                [&, link = nb.link] {
                  return overlay_.loss_now(link, sim.now());
                });
          } else {
            channel.transmit(sim, delays_.propagation, std::move(deliver),
                             overlay_.loss_now(nb.link, sim.now()));
          }
        };
        for (const Topology::Neighbor& nb : topo.up_neighbors(from)) {
          forward(nb);
        }
        for (const Topology::Neighbor& nb : topo.down_neighbors(from)) {
          forward(nb);
        }
      };

  // ---- Apply the schedule.  State mutations land at event times (t=0
  // immediately, keeping single-event runs identical to the pre-chaos code
  // path); each origin's LSA follows detection + generation-throttle later,
  // costing one LSA processing interval (SPF on its own new view).
  // Live application, with fault traces for what actually flipped (the
  // preview pass above runs on copies and stays silent).
  const auto apply_live = [this, &topo](SimTime t_ms, const TimedFault& ev) {
    const bool crashing = ev.kind == TimedFault::Kind::kSwitchFail &&
                          alive_[ev.sw.value()] != 0;
    const bool reviving = ev.kind == TimedFault::Kind::kSwitchRecover &&
                          alive_[ev.sw.value()] == 0;
    const FaultEffect effect =
        apply_fault_state(topo, overlay_, alive_, crash_links_, ev);
    if (crashing) {
      obs::trace_event(t_ms, obs::TraceKind::kSwitchCrash, ev.sw.value(), 0,
                       0, "lsp");
    } else if (reviving) {
      obs::trace_event(t_ms, obs::TraceKind::kSwitchRevive, ev.sw.value(), 0,
                       0, "lsp");
    }
    for (const LinkId link : effect.failed) {
      obs::trace_event(t_ms, obs::TraceKind::kLinkFail, link.value(), 0, 0,
                       "lsp");
    }
    for (const LinkId link : effect.recovered) {
      obs::trace_event(t_ms, obs::TraceKind::kLinkRecover, link.value(), 0, 0,
                       "lsp");
    }
  };
  for (const TimedFault& ev : events) {
    if (ev.at <= 0.0) {
      apply_live(0.0, ev);
    } else {
      sim.schedule_at(ev.at,
                      [&sim, apply_live, ev] { apply_live(sim.now(), ev); });
    }
  }
  for (std::size_t r = 0; r < records.size(); ++r) {
    for (std::size_t j = 0; j < records[r].origins.size(); ++j) {
      const SwitchId origin = records[r].origins[j];
      const std::size_t slot = slot_base[r] + j;
      const SimTime when =
          records[r].at + delays_.detection + delays_.lsa_generation_delay;
      sim.schedule_at(when, [&, origin, slot, r] {
        if (!alive_[origin.value()]) return;  // crashed before detecting
        const SimTime done =
            cpus[origin.value()].occupy(sim.now(), delays_.lsa_processing);
        sim.schedule_at(done, [&, origin, slot, r] {
          if (!alive_[origin.value()]) return;  // crashed mid-origination
          if (seen[origin.value()][slot]) return;
          install(origin, slot, r, 0);
          flood(origin, LinkId::invalid(), slot, r, 0);
        });
      });
    }
  }

  const RunResult run = sim.run_bounded(delays_.max_run_events);
  report.events = run.events;
  report.quiesced = run.completed;
  report.detection_ms = delays_.detection;
  for (std::uint32_t s = 0; s < topo.num_switches(); ++s) {
    if (std::ranges::any_of(seen[s], [](char c) { return c != 0; })) {
      ++report.switches_informed;
    }
  }
  report.table_change_completed.assign(topo.num_switches(),
                                       FailureReport::kNoChange);
  for (std::uint32_t s = 0; s < topo.num_switches(); ++s) {
    if (!changes[s]) continue;
    if (table_change_time[s] >= 0.0) {
      ASPEN_ASSERT(records_heard[s] == required,
                   "switch flipped tables before hearing every record");
      tables_.tables[s] = after.tables[s];
      if (tables_.has_digests() && after.has_digests()) {
        tables_.digests[s] = after.digests[s];
      }
      report.table_change_completed[s] = table_change_time[s];
      ++report.switches_reacted;
      report.convergence_time_ms =
          std::max(report.convergence_time_ms, table_change_time[s]);
      report.max_update_hops =
          std::max(report.max_update_hops, table_change_hops[s]);
    } else {
      ASPEN_CHECK(!strict, "switch ", s,
                  " needs new routes but never heard an LSA");
      // Under a lossy channel (or with crashes in play) a switch can simply
      // miss the news.  Its tables stay stale; the next run's diff will
      // mark it changed again, so a later flood heals it.
      ++report.stale_switches;
      obs::count("lsp.stale_switches");
    }
  }
  // The preview's post-run routes become the next run's incremental base.
  // An incomplete bounded run can leave scheduled fault applications
  // unexecuted (overlay_ then lags the previewed future), so only a
  // completed run keeps the cache valid.
  converged_ = std::move(after);
  converged_synced_ = run.completed;
  const ChannelStats& ch = channel.stats();
  report.channel_dropped = ch.dropped;
  report.health_dropped = ch.health_dropped;
  report.channel_duplicated = ch.duplicated;
  if (transport) {
    const TransportStats& tr = transport->stats();
    report.retransmits = tr.retransmits;
    report.acks_sent = tr.acks_sent;
    report.duplicates_dropped = tr.duplicates_dropped;
    report.gave_up = tr.gave_up;
  }
  if (contracts::effective_audit_level(delays_.audit_level) >=
      contracts::AuditLevel::kParanoid) {
    AuditReport self_audit = proto::audit_channel(ch);
    if (transport) {
      self_audit.merge(proto::audit_transport(transport->stats(),
                                              delays_.retransmit.max_retries));
      if (run.completed) {
        self_audit.merge(proto::audit_transport_quiescence(*transport));
      }
    }
    self_audit.merge(sim::audit_queue(sim));
    self_audit.merge(audit());
    contracts::enforce(self_audit, "lsp self-audit");
  }
  return report;
}

AuditReport LspSimulation::audit() const {
  return proto::audit_custody(*topo_, overlay_, alive_, crash_links_);
}

}  // namespace aspen
