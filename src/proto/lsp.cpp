#include "src/proto/lsp.h"

#include <algorithm>
#include <array>
#include <functional>
#include <vector>

#include "src/util/status.h"

namespace aspen {

LspSimulation::LspSimulation(const Topology& topo, DelayModel delays,
                             DestGranularity granularity)
    : topo_(&topo),
      delays_(delays),
      granularity_(granularity),
      overlay_(topo) {
  tables_ = compute_updown_routes(topo, overlay_, granularity_);
}

FailureReport LspSimulation::simulate_link_failure(LinkId link) {
  ASPEN_REQUIRE(overlay_.is_up(link), "link ", link.value(),
                " is already down");
  overlay_.fail(link);
  return simulate_link_event(link, /*failure=*/true);
}

FailureReport LspSimulation::simulate_link_recovery(LinkId link) {
  ASPEN_REQUIRE(!overlay_.is_up(link), "link ", link.value(),
                " is already up");
  overlay_.recover(link);
  return simulate_link_event(link, /*failure=*/false);
}

FailureReport LspSimulation::simulate_link_event(LinkId link, bool) {
  const Topology& topo = *topo_;

  // Exact set of switches whose converged tables differ across the event.
  const RoutingState after =
      compute_updown_routes(topo, overlay_, granularity_);
  std::vector<char> changes(topo.num_switches(), 0);
  std::uint64_t reacted = 0;
  for (std::uint32_t s = 0; s < topo.num_switches(); ++s) {
    if (!(tables_.tables[s] == after.tables[s])) {
      changes[s] = 1;
      ++reacted;
    }
  }

  // Flood simulation: per-switch highest sequence seen per origin (two
  // origins per event), serialized CPUs, hop counters on LSAs.
  Simulator sim;
  std::vector<CpuQueue> cpus(topo.num_switches());
  // seen[s][origin_slot]: origin_slot 0 = upper endpoint, 1 = lower.
  std::vector<std::array<char, 2>> seen(topo.num_switches(),
                                        std::array<char, 2>{0, 0});
  std::vector<SimTime> table_change_time(topo.num_switches(), -1.0);
  std::vector<int> table_change_hops(topo.num_switches(), 0);
  FailureReport report;

  // Flood `origin_slot`'s LSA out of `from` on every live link except the
  // one it arrived on.
  const std::function<void(SwitchId, LinkId, int, int)> flood =
      [&](SwitchId from, LinkId arrival_link, int origin_slot, int hops) {
        const auto forward = [&](const Topology::Neighbor& nb) {
          if (nb.link == arrival_link) return;
          if (!overlay_.is_up(nb.link)) return;
          if (!topo.is_switch_node(nb.node)) return;  // hosts do not flood
          const SwitchId dst = topo.switch_of(nb.node);
          ++report.messages_sent;
          sim.schedule(delays_.propagation, [&, dst, origin_slot, hops,
                                             via = nb.link] {
            const bool is_new = !seen[dst.value()][static_cast<std::size_t>(
                origin_slot)];
            const SimTime cost = is_new ? delays_.lsa_processing
                                        : delays_.lsa_duplicate_processing;
            const SimTime done = cpus[dst.value()].occupy(sim.now(), cost);
            sim.schedule_at(done, [&, dst, origin_slot, hops, via] {
              // Re-check at processing completion: a copy that raced in
              // while this one sat on the CPU may have installed it first.
              if (seen[dst.value()][static_cast<std::size_t>(origin_slot)]) {
                return;
              }
              seen[dst.value()][static_cast<std::size_t>(origin_slot)] = 1;
              if (changes[dst.value()] && table_change_time[dst.value()] < 0) {
                // Routes install only after the SPF hold-down; flooding is
                // not held (OSPF's fast-flood/slow-SPF split).
                table_change_time[dst.value()] = sim.now() + delays_.spf_delay;
                table_change_hops[dst.value()] = hops + 1;
              }
              flood(dst, via, origin_slot, hops + 1);
            });
          });
        };
        for (const Topology::Neighbor& nb : topo.up_neighbors(from)) {
          forward(nb);
        }
        for (const Topology::Neighbor& nb : topo.down_neighbors(from)) {
          forward(nb);
        }
      };

  // Both endpoints detect the event and originate LSAs; origination itself
  // costs one LSA processing interval (SPF on the switch's own new view).
  const Topology::LinkRec& rec = topo.link(link);
  const auto originate = [&](NodeId endpoint, int origin_slot) {
    if (!topo.is_switch_node(endpoint)) return;  // host links: hosts are mute
    const SwitchId origin = topo.switch_of(endpoint);
    // Origination waits out the LSA-generation throttle before the CPU
    // builds and floods the update.
    sim.schedule(delays_.detection + delays_.lsa_generation_delay,
                 [&, origin, origin_slot] {
      const SimTime done =
          cpus[origin.value()].occupy(sim.now(), delays_.lsa_processing);
      sim.schedule_at(done, [&, origin, origin_slot] {
        seen[origin.value()][static_cast<std::size_t>(origin_slot)] = 1;
        if (changes[origin.value()] &&
            table_change_time[origin.value()] < 0) {
          table_change_time[origin.value()] = sim.now() + delays_.spf_delay;
          table_change_hops[origin.value()] = 0;
        }
        flood(origin, LinkId::invalid(), origin_slot, 0);
      });
    });
  };
  originate(rec.upper, 0);
  originate(rec.lower, 1);

  report.events = sim.run();
  report.switches_reacted = reacted;
  for (std::uint32_t s = 0; s < topo.num_switches(); ++s) {
    if (seen[s][0] || seen[s][1]) ++report.switches_informed;
  }
  report.table_change_completed.assign(topo.num_switches(),
                                       FailureReport::kNoChange);
  for (std::uint32_t s = 0; s < topo.num_switches(); ++s) {
    if (changes[s]) report.table_change_completed[s] = table_change_time[s];
  }
  for (std::uint32_t s = 0; s < topo.num_switches(); ++s) {
    if (!changes[s]) continue;
    ASPEN_CHECK(table_change_time[s] >= 0.0,
                "switch ", s, " needs new routes but never heard an LSA");
    report.convergence_time_ms =
        std::max(report.convergence_time_ms, table_change_time[s]);
    report.max_update_hops =
        std::max(report.max_update_hops, table_change_hops[s]);
  }

  tables_ = after;
  return report;
}

}  // namespace aspen
