// LSP — a link-state protocol in the style of OSPF/IS-IS (§9.2).
//
// The paper's baseline: "we implemented both ANP and a link-state protocol
// based on OSPF, which we call LSP."  On a link event both endpoints
// originate sequence-numbered LSAs and flood them over every live link.
// Each switch that receives a *new* LSA spends DelayModel::lsa_processing of
// serialized CPU (SPF recomputation is folded into that constant, per the
// paper's measurement model), installs the update, and re-floods; duplicate
// copies cost only a sequence-number check.
//
// Forwarding tables are the global up*/down* shortest-path routes for the
// switch's current view; since a single link event is fully described by
// either endpoint's LSA, a switch's table flips to the post-event routes
// the first time it processes a new LSA, which is when we timestamp its
// reaction.  Which switches' tables change at all is decided exactly, by
// diffing converged pre- and post-event routing states.
#pragma once

#include <vector>

#include "src/proto/protocol.h"
#include "src/proto/report.h"
#include "src/routing/updown.h"
#include "src/sim/simulator.h"
#include "src/topo/link_state.h"
#include "src/topo/topology.h"

namespace aspen {

class LspSimulation final : public ProtocolSimulation {
 public:
  explicit LspSimulation(const Topology& topo, DelayModel delays = {},
                         DestGranularity granularity = DestGranularity::kEdge);

  /// Fails the link and floods until quiescent.
  FailureReport simulate_link_failure(LinkId link) override;

  /// Recovers a previously failed link and floods until quiescent.
  FailureReport simulate_link_recovery(LinkId link) override;

  /// Converged forwarding tables for the current link state.
  [[nodiscard]] const RoutingState& tables() const override { return tables_; }
  [[nodiscard]] const LinkStateOverlay& overlay() const override {
    return overlay_;
  }
  [[nodiscard]] const Topology& topology() const override { return *topo_; }

 private:
  FailureReport simulate_link_event(LinkId link, bool failure);

  const Topology* topo_;
  DelayModel delays_;
  DestGranularity granularity_;
  LinkStateOverlay overlay_;
  RoutingState tables_;
};

}  // namespace aspen
