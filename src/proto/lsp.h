// LSP — a link-state protocol in the style of OSPF/IS-IS (§9.2).
//
// The paper's baseline: "we implemented both ANP and a link-state protocol
// based on OSPF, which we call LSP."  On a link event both endpoints
// originate sequence-numbered LSAs and flood them over every live link.
// Each switch that receives a *new* LSA spends DelayModel::lsa_processing of
// serialized CPU (SPF recomputation is folded into that constant, per the
// paper's measurement model), installs the update, and re-floods; duplicate
// copies cost only a sequence-number check.
//
// Forwarding tables are the global up*/down* shortest-path routes for the
// switch's current view.  Which switches' tables change at all is decided
// exactly, by diffing converged pre- and post-run routing states; a switch's
// table flips to the post-run routes once it has processed a new LSA for
// *every* fault event in the run (for a single link event — the paper's
// experiment — that is simply its first new LSA, which is when we timestamp
// its reaction).
//
// ## Unreliable control plane
//
// LSAs ride the same seeded lossy ChannelModel as ANP notifications
// (DelayModel::channel).  With `channel.reliable` set, each LSA transmission
// to a neighbor is acked and retransmitted on an exponential-backoff timer
// until acknowledged or the retry cap trips — OSPF's retransmission-list
// mechanism.  Without it, a dropped LSA can leave a switch that needed new
// routes permanently stale (FailureReport::stale_switches counts these; a
// later flood heals them, because the next run diffs against the stale
// tables).  Switch crashes discard the victim's queued work and fail its
// incident links atomically; the model is conservative for partial
// knowledge — a switch that heard about only some of a run's events keeps
// its old tables rather than computing a mixed view (the LSDB cross-check
// in lsp_full.h models per-switch views exactly, for single events).
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <vector>

#include "src/proto/protocol.h"
#include "src/proto/report.h"
#include "src/routing/updown.h"
#include "src/sim/simulator.h"
#include "src/topo/link_state.h"
#include "src/topo/topology.h"

namespace aspen {

namespace proto {
struct LspAuditPeer;  // test-only corruption hooks, src/proto/audit.h
}

class LspSimulation final : public ProtocolSimulation {
 public:
  explicit LspSimulation(const Topology& topo, DelayModel delays = {},
                         DestGranularity granularity = DestGranularity::kEdge);

  /// Fails the link and floods until quiescent.
  FailureReport simulate_link_failure(LinkId link) override;

  /// Recovers a previously failed link and floods until quiescent.
  FailureReport simulate_link_recovery(LinkId link) override;

  /// Crashes the switch: every incident live link fails atomically, each
  /// surviving peer originates an LSA; the victim floods nothing.
  FailureReport simulate_switch_failure(SwitchId s) override;

  /// Revives a crashed switch and the links its crash took down (links
  /// whose far endpoint is still crashed stay down, custody moving there).
  FailureReport simulate_switch_recovery(SwitchId s) override;

  /// One flood run over a compound, timed fault schedule.
  FailureReport simulate_timed_events(
      std::span<const TimedFault> events) override;

  /// Converged forwarding tables for the current link state.
  [[nodiscard]] const RoutingState& tables() const override { return tables_; }
  [[nodiscard]] const LinkStateOverlay& overlay() const override {
    return overlay_;
  }
  [[nodiscard]] LinkStateOverlay& overlay_mut() override { return overlay_; }
  [[nodiscard]] const Topology& topology() const override { return *topo_; }
  [[nodiscard]] bool is_alive(SwitchId s) const override {
    return alive_.at(s.value()) != 0;
  }

  /// Crash-custody invariants (see src/proto/audit.h).
  [[nodiscard]] AuditReport audit() const override;

 private:
  friend struct proto::LspAuditPeer;

  const Topology* topo_;
  DelayModel delays_;
  DestGranularity granularity_;
  LinkStateOverlay overlay_;
  RoutingState tables_;
  /// Ground-truth converged routes for overlay_, maintained incrementally
  /// across runs.  Distinct from tables_, which can hold stale rows
  /// (missed LSAs, crashed switches) and so is not a valid incremental
  /// base.  Valid only while converged_synced_; an incomplete bounded run
  /// may leave scheduled fault applications unexecuted, in which case the
  /// next run starts from a fresh full compute.
  RoutingState converged_;
  bool converged_synced_ = false;
  std::vector<char> alive_;  // per switch; 0 while crashed
  /// Links a crash took down, owed back on that switch's recovery.
  std::map<std::uint32_t, std::vector<LinkId>> crash_links_;
};

}  // namespace aspen
