// Protocol-state invariant auditors (§6, §9.2, docs/CHAOS.md).
//
// The failure-reaction protocols keep redundant bookkeeping — withdrawal
// logs, announced-lost flags, crash-links custody, transport conversations,
// channel counters — and each piece carries an invariant the replay logic
// depends on:
//
//   * a withdrawal log keyed by a link only exists while that link is down
//     (kWithdrawalLogStale) — recovery detection replays and erases it;
//   * a destination flagged announced-lost has an empty forwarding entry
//     (kAnnouncedLostMismatch) — any restoration clears the flag;
//   * crash-links custody is held only by crashed switches (kCrashCustody)
//     and only over links that are actually down (kCustodyLinkUp);
//   * adjacency resync flows only along directions notifications flow: up
//     always, down only under AnpOptions::notify_children
//     (kResyncDirection) — a resync the peer can never retract would wedge
//     its table permanently;
//   * at quiescence no reliable conversation is still open
//     (kInflightAccounting), transport counters are coherent
//     (kTransportAccounting), and every channel transmit() is accounted as
//     delivered or dropped, plus duplicates (kChannelAccounting).
//
// audit_anp()/audit_lsp() are valid at quiescent phase boundaries (between
// reaction runs); mid-run, detections still queued make a stale withdrawal
// log legitimate.  The stats auditors hold at any time.
//
// AnpAuditPeer / LspAuditPeer are test-only corruption hooks: the protocol
// APIs cannot produce these states (that is the point of the invariants),
// so tests plant them directly and prove each auditor fires.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "src/proto/anp.h"
#include "src/proto/lsp.h"
#include "src/sim/channel.h"
#include "src/util/contracts.h"

namespace aspen::proto {

/// Channel conservation: delivered + dropped == attempted + duplicated.
[[nodiscard]] AuditReport audit_channel(const ChannelStats& stats);

/// Transport counter coherence: gave_up <= sends and retransmits bounded by
/// sends·max_retries.
[[nodiscard]] AuditReport audit_transport(const TransportStats& stats,
                                          int max_retries);

/// At quiescence every conversation is acked or abandoned: in_flight() == 0.
[[nodiscard]] AuditReport audit_transport_quiescence(
    const ReliableTransport& transport);

/// Crash-custody invariants shared by ANP and LSP: every custody list
/// belongs to a crashed switch, and every link it holds is down.
[[nodiscard]] AuditReport audit_custody(
    const Topology& topo, const LinkStateOverlay& overlay,
    const std::vector<char>& alive,
    const std::map<std::uint32_t, std::vector<LinkId>>& crash_links);

/// The §6-extension direction rule for adjacency resync: legal upward
/// always, downward only under notify_children.
[[nodiscard]] AuditReport audit_resync_direction(const AnpSimulation& sim,
                                                 SwitchId from, SwitchId to);

/// Full protocol-state audits (equivalent to the sims' audit() overrides).
[[nodiscard]] AuditReport audit_anp(const AnpSimulation& sim);
[[nodiscard]] AuditReport audit_lsp(const LspSimulation& sim);

/// Test-only corruption hooks into AnpSimulation's private state.
struct AnpAuditPeer {
  /// Flags `dest` announced-lost (or not) without touching the entry.
  static void set_announced_lost(AnpSimulation& sim, SwitchId s,
                                 std::uint64_t dest, bool lost);
  /// Plants a withdrawal-log record against `link` at `s`.
  static void log_removed_by_link(AnpSimulation& sim, SwitchId s, LinkId link,
                                  std::uint64_t dest,
                                  const Topology::Neighbor& hop);
  /// Hands `s` custody of `link` without crashing anything.
  static void add_crash_custody(AnpSimulation& sim, SwitchId s, LinkId link);
  /// Rewrites liveness without running the crash/recovery machinery.
  static void set_alive(AnpSimulation& sim, SwitchId s, bool alive);
  static RoutingState& tables(AnpSimulation& sim);
  static LinkStateOverlay& overlay(AnpSimulation& sim);
};

/// Test-only corruption hooks into LspSimulation's private state.
struct LspAuditPeer {
  static void add_crash_custody(LspSimulation& sim, SwitchId s, LinkId link);
  static void set_alive(LspSimulation& sim, SwitchId s, bool alive);
  static RoutingState& tables(LspSimulation& sim);
  static LinkStateOverlay& overlay(LspSimulation& sim);
};

}  // namespace aspen::proto
