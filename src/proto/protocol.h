// Common interface over the two failure-reaction protocols, so experiment
// drivers and tests can run LSP and ANP through identical harnesses.
#pragma once

#include <span>

#include "src/proto/report.h"
#include "src/routing/fwd_table.h"
#include "src/topo/link_state.h"
#include "src/topo/topology.h"
#include "src/util/contracts.h"

namespace aspen {

enum class ProtocolKind { kLsp, kAnp };

[[nodiscard]] constexpr const char* to_cstring(ProtocolKind kind) {
  return kind == ProtocolKind::kLsp ? "LSP" : "ANP";
}

/// One fault-plane event inside a single protocol reaction run.  A list of
/// these describes a compound scenario — e.g. a link failing at t=0 and a
/// switch crashing at t=5ms, *while the protocol is still reacting* to the
/// first event (§8.3 treats a switch failure as all of its links failing).
struct TimedFault {
  enum class Kind {
    kLinkFail,
    kLinkRecover,
    kSwitchFail,     ///< atomically fails every incident live link
    kSwitchRecover,  ///< revives the switch and the links its crash took
  };

  Kind kind = Kind::kLinkFail;
  SimTime at = 0.0;        ///< offset into the run (>= 0, non-decreasing)
  LinkId link{};           ///< for the link kinds
  SwitchId sw{};           ///< for the switch kinds

  [[nodiscard]] static TimedFault link_fail(LinkId l, SimTime at = 0.0) {
    return {Kind::kLinkFail, at, l, SwitchId::invalid()};
  }
  [[nodiscard]] static TimedFault link_recover(LinkId l, SimTime at = 0.0) {
    return {Kind::kLinkRecover, at, l, SwitchId::invalid()};
  }
  [[nodiscard]] static TimedFault switch_fail(SwitchId s, SimTime at = 0.0) {
    return {Kind::kSwitchFail, at, LinkId::invalid(), s};
  }
  [[nodiscard]] static TimedFault switch_recover(SwitchId s,
                                                 SimTime at = 0.0) {
    return {Kind::kSwitchRecover, at, LinkId::invalid(), s};
  }
};

class ProtocolSimulation {
 public:
  virtual ~ProtocolSimulation() = default;

  virtual FailureReport simulate_link_failure(LinkId link) = 0;
  virtual FailureReport simulate_link_recovery(LinkId link) = 0;

  /// Crashes a switch: every incident live link fails atomically and the
  /// switch stops processing or emitting protocol messages (its queued
  /// work is discarded) until recovered.  The default throws — AnpSimulation
  /// and LspSimulation override; the LSDB cross-check implementation
  /// (lsp_full) does not model crashes.
  virtual FailureReport simulate_switch_failure(SwitchId s) {
    (void)s;
    throw PreconditionError("switch crashes not supported by this protocol");
  }
  virtual FailureReport simulate_switch_recovery(SwitchId s) {
    (void)s;
    throw PreconditionError("switch crashes not supported by this protocol");
  }

  /// Runs one reaction over a compound, timed fault schedule.  Events must
  /// be sorted by `at`; the run continues until the protocol quiesces (or
  /// the event budget trips — see FailureReport::quiesced).
  virtual FailureReport simulate_timed_events(
      std::span<const TimedFault> events) {
    (void)events;
    throw PreconditionError("timed fault events not supported");
  }

  /// False while the switch is crashed (all protocols start fully alive).
  [[nodiscard]] virtual bool is_alive(SwitchId s) const {
    (void)s;
    return true;
  }

  /// Audits the protocol's internal bookkeeping invariants (withdrawal
  /// logs, custody state — see src/proto/audit.h).  Valid at quiescent
  /// phase boundaries; an empty report means every invariant held.  The
  /// default has no state to audit.
  [[nodiscard]] virtual AuditReport audit() const { return {}; }

  [[nodiscard]] virtual const RoutingState& tables() const = 0;
  [[nodiscard]] virtual const LinkStateOverlay& overlay() const = 0;
  /// Mutable physical-state access for fault injectors: chaos campaigns set
  /// per-link health (gray loss, flapping) directly on the overlay, without
  /// protocol involvement — gray failures are exactly the faults the
  /// routing layer does not get told about.
  [[nodiscard]] virtual LinkStateOverlay& overlay_mut() = 0;
  [[nodiscard]] virtual const Topology& topology() const = 0;
};

}  // namespace aspen
