// Common interface over the two failure-reaction protocols, so experiment
// drivers and tests can run LSP and ANP through identical harnesses.
#pragma once

#include "src/proto/report.h"
#include "src/routing/fwd_table.h"
#include "src/topo/link_state.h"
#include "src/topo/topology.h"

namespace aspen {

enum class ProtocolKind { kLsp, kAnp };

[[nodiscard]] constexpr const char* to_cstring(ProtocolKind kind) {
  return kind == ProtocolKind::kLsp ? "LSP" : "ANP";
}

class ProtocolSimulation {
 public:
  virtual ~ProtocolSimulation() = default;

  virtual FailureReport simulate_link_failure(LinkId link) = 0;
  virtual FailureReport simulate_link_recovery(LinkId link) = 0;

  [[nodiscard]] virtual const RoutingState& tables() const = 0;
  [[nodiscard]] virtual const LinkStateOverlay& overlay() const = 0;
  [[nodiscard]] virtual const Topology& topology() const = 0;
};

}  // namespace aspen
