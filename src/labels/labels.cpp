#include "src/labels/labels.h"

#include <sstream>

#include "src/util/contracts.h"
#include "src/util/status.h"

namespace aspen {

namespace {

// edges_per_pod[i] = Π_{j=2..i} r_j: L_1 switches under each L_i pod.
std::vector<std::uint64_t> edges_per_pod(const TreeParams& params) {
  std::vector<std::uint64_t> result(static_cast<std::size_t>(params.n) + 1,
                                    1);
  for (Level i = 2; i <= params.n; ++i) {
    const auto ui = static_cast<std::size_t>(i);
    result[ui] = result[ui - 1] * params.r[ui];
  }
  return result;
}

}  // namespace

std::string HostLabel::to_string() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < digits.size(); ++i) {
    os << (i == 0 ? "" : ".") << digits[i];
  }
  return os.str();
}

HostLabel label_of(const Topology& topo, HostId host) {
  const TreeParams& params = topo.params();
  const auto half_k = static_cast<std::uint64_t>(params.k) / 2;
  const std::uint64_t edge = host.value() / half_k;
  const auto spans = edges_per_pod(params);

  HostLabel label;
  label.digits.reserve(static_cast<std::size_t>(params.n));
  // d_i for i = n−1 … 1: the level-i pod's ordinal within its parent pod.
  for (Level i = params.n - 1; i >= 1; --i) {
    const std::uint64_t pod = edge / spans[static_cast<std::size_t>(i)];
    const std::uint64_t ordinal =
        pod % params.r[static_cast<std::size_t>(i) + 1];
    label.digits.push_back(static_cast<std::uint32_t>(ordinal));
  }
  // d_0: the host's ordinal on its edge switch.
  label.digits.push_back(
      static_cast<std::uint32_t>(host.value() % half_k));
  ASPEN_ASSERT(label.digits.size() == static_cast<std::size_t>(params.n),
               "a §5.3 label has exactly n digits");
  return label;
}

HostId host_of_label(const Topology& topo, const HostLabel& label) {
  const TreeParams& params = topo.params();
  ASPEN_REQUIRE(label.digits.size() == static_cast<std::size_t>(params.n),
                "label must have n = ", params.n, " digits, got ",
                label.digits.size());
  const auto half_k = static_cast<std::uint64_t>(params.k) / 2;

  std::uint64_t pod = 0;  // pod ordinal walking down from the (single) top
  std::size_t digit = 0;
  for (Level i = params.n - 1; i >= 1; --i, ++digit) {
    const std::uint64_t r = params.r[static_cast<std::size_t>(i) + 1];
    const std::uint32_t d = label.digits[digit];
    ASPEN_REQUIRE(d < r, "digit ", digit, " out of range [0,", r, ")");
    pod = pod * r + d;
  }
  const std::uint32_t d0 = label.digits.back();
  ASPEN_REQUIRE(d0 < half_k, "host digit out of range");
  return HostId{static_cast<std::uint32_t>(pod * half_k + d0)};
}

std::vector<CompactTable> build_compact_tables(const Topology& topo) {
  const TreeParams& params = topo.params();
  std::vector<CompactTable> tables(topo.num_switches());
  for (std::uint32_t v = 0; v < topo.num_switches(); ++v) {
    const SwitchId s{v};
    CompactTable& table = tables[v];
    table.level = topo.level_of(s);
    table.up_ports.assign(topo.up_neighbors(s).begin(),
                          topo.up_neighbors(s).end());
    if (table.level == 1) {
      // Edge switches: one entry per attached host (d_0 match).
      table.child_pod_ports.resize(
          static_cast<std::size_t>(params.k) / 2);
      for (const Topology::Neighbor& nb : topo.down_neighbors(s)) {
        const HostId h = topo.host_of(nb.node);
        table.child_pod_ports[h.value() %
                              (static_cast<std::uint64_t>(params.k) / 2)]
            .push_back(nb);
      }
    } else {
      // One entry per child pod; ECMP over the c_i links into it.
      const std::uint64_t r =
          params.r[static_cast<std::size_t>(table.level)];
      table.child_pod_ports.resize(r);
      const std::uint64_t my_pod = topo.pod_of(s).value();
      for (const Topology::Neighbor& nb : topo.down_neighbors(s)) {
        const SwitchId below = topo.switch_of(nb.node);
        const std::uint64_t child_pod = topo.pod_of(below).value();
        const std::uint64_t ordinal = child_pod - my_pod * r;
        ASPEN_ASSERT(ordinal < r, "child pod ", child_pod,
                     " is not nested under pod ", my_pod, " (Eq. 3)");
        table.child_pod_ports[ordinal].push_back(nb);
      }
    }
  }
  return tables;
}

LabelRouter::LabelRouter(const Topology& topo)
    : topo_(&topo), tables_(build_compact_tables(topo)) {}

std::vector<Topology::Neighbor> LabelRouter::next_hops(SwitchId at,
                                                       HostId dst) const {
  const Topology& topo = *topo_;
  const TreeParams& params = topo.params();
  const CompactTable& table = tables_.at(at.value());
  const auto half_k = static_cast<std::uint64_t>(params.k) / 2;
  const std::uint64_t edge = dst.value() / half_k;

  if (table.level == 1) {
    if (topo.index_in_level(at) == edge) {
      // Own host: the d_0 entry.
      return table.child_pod_ports[dst.value() % half_k];
    }
    return table.up_ports;  // default route
  }

  // Longest-prefix match: is the destination under my pod?
  const auto spans = edges_per_pod(params);
  const std::uint64_t my_span = spans[static_cast<std::size_t>(table.level)];
  if (edge / my_span != topo.pod_of(at).value()) {
    return table.up_ports;  // default route
  }
  // Next label digit selects the child pod.
  const std::uint64_t child_span =
      spans[static_cast<std::size_t>(table.level) - 1];
  const std::uint64_t child_pod = edge / child_span;
  const std::uint64_t r = params.r[static_cast<std::size_t>(table.level)];
  return table.child_pod_ports[child_pod -
                               topo.pod_of(at).value() * r];
}

std::uint64_t LabelRouter::total_entries() const {
  std::uint64_t total = 0;
  for (const CompactTable& table : tables_) total += table.entries();
  return total;
}

ForwardingStateStats forwarding_state_stats(const Topology& topo) {
  const LabelRouter router(topo);
  ForwardingStateStats stats;
  stats.compact_entries = router.total_entries();
  stats.flat_edge_entries = topo.num_switches() * topo.params().S;
  stats.flat_host_entries = topo.num_switches() * topo.num_hosts();
  stats.mean_compact_per_switch =
      static_cast<double>(stats.compact_entries) /
      static_cast<double>(topo.num_switches());
  return stats;
}

}  // namespace aspen
