// Hierarchical host labels and compact prefix forwarding (§5.3).
//
// "[Hierarchical aggregation] contributes to the efficiency of
//  communication and labeling schemes that rely on shared label prefixes
//  for compact forwarding state [PortLand, ALIAS].  In these schemes, it is
//  desirable to group as many L_{i-1} switches together as possible under
//  each L_i switch."
//
// Because pods form a tree (Eq. 3), every host has a canonical positional
// label: reading from the top, the child-pod ordinal chosen at each level,
// then the member ordinal of its edge switch within its L_1 pod's parent…
// in our construction the digits are simply
//
//   label = <d_{n-1}, …, d_1, d_0>
//
// where d_i (i >= 1) is the ordinal of the level-i pod within its level-
// (i+1) parent pod (so d_i ∈ [0, r_{i+1})) and d_0 is the host's ordinal on
// its edge switch (d_0 ∈ [0, k/2)).  A switch then forwards downward with
// one table entry per child pod — r_i + 1 entries including the default-up
// route — instead of one entry per destination.  This module materializes
// the labels, the compact tables, and a Router that forwards by them.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/routing/packet_walk.h"
#include "src/topo/topology.h"

namespace aspen {

/// A host's positional label, most-significant (top-level) digit first.
struct HostLabel {
  std::vector<std::uint32_t> digits;  ///< n digits: d_{n-1} … d_1, d_0

  [[nodiscard]] std::string to_string() const;
  friend bool operator==(const HostLabel&, const HostLabel&) = default;
};

/// Canonical label of a host under the pod-tree numbering.
[[nodiscard]] HostLabel label_of(const Topology& topo, HostId host);

/// Inverse of label_of.  Throws on out-of-range digits.
[[nodiscard]] HostId host_of_label(const Topology& topo,
                                   const HostLabel& label);

/// Compact forwarding state of one switch: one entry per child pod plus a
/// default-up route, as a prefix-match structure over labels.
struct CompactTable {
  Level level = 0;
  /// entry b covers labels whose next digit equals b; holds the ECMP set
  /// of links into that child pod.
  std::vector<std::vector<Topology::Neighbor>> child_pod_ports;
  /// The default route: every upward port.
  std::vector<Topology::Neighbor> up_ports;

  /// Total entries a TCAM would hold (children + 1 default if any ups).
  [[nodiscard]] std::uint64_t entries() const {
    return child_pod_ports.size() + (up_ports.empty() ? 0 : 1);
  }
};

/// Builds every switch's compact table from the topology structure.
[[nodiscard]] std::vector<CompactTable> build_compact_tables(
    const Topology& topo);

/// Routes by label prefixes over compact tables — structurally equivalent
/// to StructuralRouter, but consulting r_i + 1 entries instead of shape
/// arithmetic.  Knowledge is the intact wiring (labels are static).
class LabelRouter final : public Router {
 public:
  explicit LabelRouter(const Topology& topo);

  [[nodiscard]] std::vector<Topology::Neighbor> next_hops(
      SwitchId at, HostId dst) const override;

  [[nodiscard]] const CompactTable& table(SwitchId s) const {
    return tables_.at(s.value());
  }

  /// Compact entries across all switches (the §5.3 "forwarding state").
  [[nodiscard]] std::uint64_t total_entries() const;

 private:
  const Topology* topo_;
  std::vector<CompactTable> tables_;
};

/// Forwarding-state accounting for a whole tree: compact (prefix) entries
/// versus flat per-edge and per-host entries.
struct ForwardingStateStats {
  std::uint64_t compact_entries = 0;    ///< Σ per-switch (r_i + 1)
  std::uint64_t flat_edge_entries = 0;  ///< switches × S
  std::uint64_t flat_host_entries = 0;  ///< switches × hosts
  double mean_compact_per_switch = 0.0;
};

[[nodiscard]] ForwardingStateStats forwarding_state_stats(
    const Topology& topo);

}  // namespace aspen
