// Reachability measurement over packet walks.
//
// Quantifies the paper's core complaint (§1, §2): during the window between
// a failure and re-convergence, stale routes doom packets to entire sets of
// destination hosts.  `measure_reachability` walks flows between host pairs
// and aggregates delivery statistics, including the number of *destination
// hosts* with at least one doomed flow — the "logically disconnected" host
// count of the paper's 1,024-host example.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "src/routing/packet_walk.h"
#include "src/topo/link_state.h"
#include "src/topo/topology.h"
#include "src/util/rng.h"

namespace aspen {

struct ReachabilityStats {
  std::uint64_t flows = 0;
  std::uint64_t delivered = 0;
  std::uint64_t dropped = 0;
  std::uint64_t no_route = 0;
  std::uint64_t looped = 0;
  double average_hops = 0.0;  ///< over delivered flows
  /// Destination hosts with at least one undelivered flow.
  std::uint64_t affected_destinations = 0;

  [[nodiscard]] std::uint64_t undelivered() const {
    return flows - delivered;
  }
  [[nodiscard]] double delivery_rate() const {
    return flows == 0 ? 1.0 : static_cast<double>(delivered) /
                                  static_cast<double>(flows);
  }
};

/// Walks every ordered host pair (src != dst).  Quadratic in host count —
/// intended for trees up to a few hundred hosts.
[[nodiscard]] ReachabilityStats measure_all_pairs(
    const Topology& topo, const Router& knowledge,
    const LinkStateOverlay& actual, const WalkOptions& options = {});

/// Walks `num_flows` uniformly random (src, dst) pairs; scales to large
/// trees.  Deterministic given the Rng seed.
[[nodiscard]] ReachabilityStats measure_sampled(
    const Topology& topo, const Router& knowledge,
    const LinkStateOverlay& actual, std::uint64_t num_flows, Rng& rng,
    const WalkOptions& options = {});

/// Walks all flows from every host to every host attached to edge switches
/// in [first_edge, last_edge] — used to probe a specific pod's destinations.
[[nodiscard]] ReachabilityStats measure_to_edge_range(
    const Topology& topo, const Router& knowledge,
    const LinkStateOverlay& actual, std::uint64_t first_edge,
    std::uint64_t last_edge, const WalkOptions& options = {});

}  // namespace aspen
