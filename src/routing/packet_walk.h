// Hop-by-hop packet walking.
//
// A packet is forwarded by consulting a Router (the switches' *knowledge*,
// which may be stale) while traversing links whose liveness comes from the
// network's *actual* state.  This separation reproduces the paper's §2
// scenario exactly: a packet is doomed the moment an upstream switch picks a
// next hop whose every downstream path crosses a failed link the switch has
// not yet heard about.
//
// Switches are aware of their own incident links (failure *detection* is
// local even when *notification* has not propagated), so by default a switch
// skips next hops whose first link is down and only drops when no offered
// next hop is actually usable.
#pragma once

#include <cstdint>
#include <vector>

#include "src/routing/fwd_table.h"
#include "src/topo/link_state.h"
#include "src/topo/topology.h"

namespace aspen {

/// Source of next-hop decisions at each switch.
class Router {
 public:
  virtual ~Router() = default;
  /// ECMP next-hop set at switch `at` for a packet destined to host `dst`.
  /// An empty set means "no route".  Never called at the destination's
  /// edge switch (delivery there is the walker's job).
  [[nodiscard]] virtual std::vector<Topology::Neighbor> next_hops(
      SwitchId at, HostId dst) const = 0;
};

/// Routes from explicit forwarding tables (e.g. what LSP converged to, or
/// what ANP patched after a failure).
class TableRouter final : public Router {
 public:
  explicit TableRouter(const RoutingState& state) : state_(&state) {}
  [[nodiscard]] std::vector<Topology::Neighbor> next_hops(
      SwitchId at, HostId dst) const override;

 private:
  const RoutingState* state_;
};

/// Structural router: next hops computed from the tree's shape assuming an
/// intact network — the canonical "stale tables" of a fabric that has not
/// re-converged.  O(k) per hop with no per-destination state, so it scales
/// to the 64-port trees of the §1 disconnection claim.
class StructuralRouter final : public Router {
 public:
  explicit StructuralRouter(const Topology& topo);
  [[nodiscard]] std::vector<Topology::Neighbor> next_hops(
      SwitchId at, HostId dst) const override;

  /// Number of L_1 switches underneath one pod at `level`.
  [[nodiscard]] std::uint64_t edges_per_pod(Level level) const {
    return edges_per_pod_.at(static_cast<std::size_t>(level));
  }

 private:
  const Topology* topo_;
  std::vector<std::uint64_t> edges_per_pod_;  // [1..n]
};

enum class WalkStatus {
  kDelivered,     ///< reached the destination host
  kDropped,       ///< switch had candidate hops but every one was dead
  kNoRoute,       ///< router returned an empty next-hop set
  kTtlExceeded,   ///< forwarding loop or pathologically long path
};

struct WalkResult {
  WalkStatus status = WalkStatus::kNoRoute;
  std::vector<NodeId> path;  ///< nodes visited, starting at the source host
  SwitchId dropped_at = SwitchId::invalid();  ///< where the packet died
  int hops = 0;  ///< links traversed (including the final host link)
  /// The packet died to degraded link health (a gray drop) rather than to a
  /// dead link or a missing route.
  bool health_loss = false;

  [[nodiscard]] bool delivered() const {
    return status == WalkStatus::kDelivered;
  }
};

struct WalkOptions {
  /// Per-flow seed mixed into the ECMP hash; vary to explore path diversity.
  std::uint64_t flow_seed = 0;
  /// Max links traversed before declaring a loop.
  int ttl = 64;
  /// Model local failure detection: skip offered next hops whose link is
  /// actually down, dropping only when all offered hops are dead (§6: "a
  /// switch … can simply select an alternate upward-facing output port").
  /// A flapping link in its down phase counts as dead here — the port is
  /// observably down; a gray link does not — gray loss is invisible.
  bool local_link_awareness = true;
  /// Honor gray/flapping link health on the walked path.  Chaos-campaign
  /// physics checks disable this to compare pure tables-vs-liveness.
  bool apply_health = true;
  /// Seed for the deterministic per-flow gray-drop decision.  The drop is a
  /// pure hash of (health_seed, link, src, dst), so two walkers taking the
  /// same flow across the same gray link agree on its fate.
  std::uint64_t health_seed = 0;
  /// Wall-clock instant of the walk, for flapping-link phase.
  double at_time_ms = 0.0;
};

/// Walks one packet from src to dst. `knowledge` decides, `actual` kills.
[[nodiscard]] WalkResult walk_packet(const Topology& topo,
                                     const Router& knowledge,
                                     const LinkStateOverlay& actual,
                                     HostId src, HostId dst,
                                     const WalkOptions& options = {});

}  // namespace aspen
