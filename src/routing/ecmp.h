// Shared deterministic ECMP primitives.
//
// The per-flow hash, the gray-drop verdict, and the link-liveness probe
// were born as statics inside the packet walker; the flow plane
// (src/traffic/flow_plane.h) must reach *byte-identical* per-flow fates
// while walking millions of flows, so the primitives live here once and
// both walkers delegate.  Any change to these functions invalidates the
// recorded goldens and EXPERIMENTS baselines — they pin the bit patterns.
//
// EcmpReadView is the allocation-free read path over the arena forwarding
// tables: one raw() snapshot plus the dest-index mapping, giving a
// span<const Neighbor> per (switch, destination) row with no virtual call
// and no vector copy — what a million-flow step loop can afford where the
// Router interface cannot.
#pragma once

#include <cstdint>
#include <span>

#include "src/routing/fwd_table.h"
#include "src/topo/link_state.h"
#include "src/topo/topology.h"
#include "src/util/ids.h"

namespace aspen::ecmp {

/// SplitMix64 finalizer: cheap, well-mixed hash for deterministic picks.
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

/// The per-(flow, switch) ECMP key both walkers reduce modulo the offered
/// next-hop count.  Bit pattern is pinned by recorded goldens.
[[nodiscard]] constexpr std::uint64_t flow_key(std::uint64_t flow_seed,
                                               HostId src, HostId dst,
                                               SwitchId at) {
  return
      // aspen-lint: allow(seed-arith) -- per-flow ECMP hash predating derive_stream_seed; the mixing is pinned by recorded goldens and EXPERIMENTS baselines
      mix64(flow_seed ^ (static_cast<std::uint64_t>(src.value()) << 32) ^
            dst.value() ^ (static_cast<std::uint64_t>(at.value()) << 16));
}

/// Is the link physically usable at the walk instant?  Down links never
/// are; a flapping link is usable only in its up phase (when health
/// applies).
[[nodiscard]] inline bool link_live(const LinkStateOverlay& actual,
                                    LinkId link, bool apply_health,
                                    double at_time_ms) {
  if (!actual.is_up(link)) return false;
  return !apply_health || actual.phase_up(link, at_time_ms);
}

/// Does a gray link drop this flow?  Keyed per (seed, link, src, dst) —
/// not per hop — so any walker crossing the same gray link with the same
/// flow reaches the same verdict, and repeated walks are deterministic.
[[nodiscard]] inline bool gray_drops(const LinkStateOverlay& actual,
                                     LinkId link, HostId src, HostId dst,
                                     bool apply_health,
                                     std::uint64_t health_seed) {
  if (!apply_health) return false;
  const LinkHealthState h = actual.health(link);
  if (h.health != LinkHealth::kGray) return false;
  const std::uint64_t key =
      // aspen-lint: allow(seed-arith) -- per-(flow,link) gray-drop hash predating derive_stream_seed; the mixing is pinned by recorded goldens and EXPERIMENTS baselines
      mix64(health_seed ^ (static_cast<std::uint64_t>(src.value()) << 40) ^
            (static_cast<std::uint64_t>(dst.value()) << 20) ^ link.value());
  // Top 53 bits → uniform double in [0, 1).
  const double u = static_cast<double>(key >> 11) * 0x1.0p-53;
  return u < h.loss_rate;
}

/// Allocation-free fan-out reads over a RoutingState's arena tables.
///
/// Snapshots raw() pointers; those are invalidated by RoutingTables slice
/// growth (serial protocol mutation, e.g. ANP detours) — construct a fresh
/// view per step against a possibly-mutated state, never cache one across
/// protocol reactions.
class EcmpReadView {
 public:
  explicit EcmpReadView(const RoutingState& state)
      : raw_(state.tables.raw()),
        hosts_per_edge_(state.hosts_per_edge),
        edge_granularity_(state.granularity == DestGranularity::kEdge) {}

  /// Table index for packets destined to `dst` (RoutingState::dest_index).
  [[nodiscard]] std::uint64_t dest_index(HostId dst) const {
    return edge_granularity_ ? dst.value() / hosts_per_edge_ : dst.value();
  }

  /// ECMP next-hop row of switch `at` for destination index `d`.  Empty
  /// span == no route.
  [[nodiscard]] std::span<const Topology::Neighbor> row(
      SwitchId at, std::uint64_t d) const {
    const RoutingTables::Entry& e =
        raw_.meta[d * raw_.num_tables + at.value()];
    return {raw_.pool + e.hop_begin, e.hop_count};
  }

  [[nodiscard]] std::uint64_t num_tables() const { return raw_.num_tables; }
  [[nodiscard]] std::uint64_t num_dests() const { return raw_.num_dests; }

 private:
  RoutingTables::ConstRaw raw_;
  std::uint32_t hosts_per_edge_;
  bool edge_granularity_;
};

}  // namespace aspen::ecmp
