#include "src/routing/packet_walk.h"

#include "src/routing/ecmp.h"
#include "src/util/contracts.h"
#include "src/util/status.h"

namespace aspen {

namespace {

// Thin adapters over the shared ECMP primitives (src/routing/ecmp.h): the
// walker and the flow plane must reach byte-identical verdicts, so the
// hashes and liveness probes live there once.

bool gray_drops(const LinkStateOverlay& actual, LinkId link, HostId src,
                HostId dst, const WalkOptions& options) {
  return ecmp::gray_drops(actual, link, src, dst, options.apply_health,
                          options.health_seed);
}

bool link_live(const LinkStateOverlay& actual, LinkId link,
               const WalkOptions& options) {
  return ecmp::link_live(actual, link, options.apply_health,
                         options.at_time_ms);
}

}  // namespace

std::vector<Topology::Neighbor> TableRouter::next_hops(SwitchId at,
                                                       HostId dst) const {
  const std::span<const Topology::Neighbor> hops =
      state_->table(at).next_hops(state_->dest_index(dst));
  return {hops.begin(), hops.end()};
}

StructuralRouter::StructuralRouter(const Topology& topo) : topo_(&topo) {
  const TreeParams& params = topo.params();
  // edges_per_pod[i] = Π_{j=2..i} r_j — how many L_1 switches live under
  // each L_i pod.  Child pod ids are blocked (Eq. 3), so "is this edge under
  // that pod" is a range test.
  edges_per_pod_.assign(static_cast<std::size_t>(params.n) + 1, 1);
  for (Level i = 2; i <= params.n; ++i) {
    const auto ui = static_cast<std::size_t>(i);
    edges_per_pod_[ui] = edges_per_pod_[ui - 1] * params.r[ui];
  }
  // With p_n = 1 (Eq. 3), the top-level pod spans every edge switch.
  ASPEN_ASSERT(edges_per_pod_[static_cast<std::size_t>(params.n)] == params.S,
               "top pod spans ",
               edges_per_pod_[static_cast<std::size_t>(params.n)],
               " edges, expected ", params.S);
}

std::vector<Topology::Neighbor> StructuralRouter::next_hops(
    SwitchId at, HostId dst) const {
  const Topology& topo = *topo_;
  const std::uint64_t dest_edge_index =
      dst.value() / (static_cast<std::uint64_t>(topo.ports()) / 2);
  const Level level = topo.level_of(at);
  ASPEN_REQUIRE(level >= 1, "packets are routed at switches");

  if (level == 1) {
    // Wrong edge switch: the destination is elsewhere, climb.
    ASPEN_REQUIRE(topo.index_in_level(at) != dest_edge_index,
                  "next_hops called at the destination edge switch");
    return {topo.up_neighbors(at).begin(), topo.up_neighbors(at).end()};
  }

  const std::uint64_t span_here = edges_per_pod_[static_cast<std::size_t>(level)];
  const std::uint64_t my_pod = topo.pod_of(at).value();
  const bool descendant = dest_edge_index / span_here == my_pod;
  if (!descendant) {
    return {topo.up_neighbors(at).begin(), topo.up_neighbors(at).end()};
  }

  // Descend toward the child pod that owns the destination edge.
  const std::uint64_t span_below =
      edges_per_pod_[static_cast<std::size_t>(level) - 1];
  const std::uint64_t target_child_pod = dest_edge_index / span_below;
  std::vector<Topology::Neighbor> hops;
  for (const Topology::Neighbor& nb : topo.down_neighbors(at)) {
    const SwitchId below = topo.switch_of(nb.node);
    if (topo.pod_of(below).value() == target_child_pod) hops.push_back(nb);
  }
  // Striping regularity (Eq. 2): c_i >= 1 links reach every child pod.
  ASPEN_ASSERT(!hops.empty(), "no structural link into child pod ",
               target_child_pod, " from switch ", at.value());
  return hops;
}

WalkResult walk_packet(const Topology& topo, const Router& knowledge,
                       const LinkStateOverlay& actual, HostId src, HostId dst,
                       const WalkOptions& options) {
  WalkResult result;
  result.path.push_back(topo.node_of(src));

  const SwitchId dest_edge = topo.edge_switch_of(dst);

  // First hop: host to its edge switch.
  const Topology::Neighbor ingress = topo.host_uplink(src);
  if (!link_live(actual, ingress.link, options)) {
    result.status = WalkStatus::kDropped;
    result.dropped_at = SwitchId::invalid();  // died on the host link
    return result;
  }
  if (gray_drops(actual, ingress.link, src, dst, options)) {
    result.status = WalkStatus::kDropped;
    result.dropped_at = SwitchId::invalid();
    result.health_loss = true;
    return result;
  }
  SwitchId at = topo.switch_of(ingress.node);
  result.path.push_back(ingress.node);
  result.hops = 1;

  while (result.hops < options.ttl) {
    if (at == dest_edge) {
      // Final hop: edge switch to host.
      const Topology::Neighbor downlink = topo.host_uplink(dst);
      if (!link_live(actual, downlink.link, options)) {
        result.status = WalkStatus::kDropped;
        result.dropped_at = at;
        return result;
      }
      if (gray_drops(actual, downlink.link, src, dst, options)) {
        result.status = WalkStatus::kDropped;
        result.dropped_at = at;
        result.health_loss = true;
        return result;
      }
      result.path.push_back(topo.node_of(dst));
      ++result.hops;
      ASPEN_ASSERT(result.path.size() ==
                       static_cast<std::size_t>(result.hops) + 1,
                   "walk path length disagrees with hop count");
      result.status = WalkStatus::kDelivered;
      return result;
    }

    const std::vector<Topology::Neighbor> hops = knowledge.next_hops(at, dst);
    if (hops.empty()) {
      result.status = WalkStatus::kNoRoute;
      result.dropped_at = at;
      return result;
    }

    // Deterministic ECMP pick over the offered set.
    const std::uint64_t key = ecmp::flow_key(options.flow_seed, src, dst, at);
    const std::size_t first_choice = key % hops.size();

    const Topology::Neighbor* chosen = nullptr;
    if (options.local_link_awareness) {
      // The switch sees its own dead ports: rotate from the hashed choice
      // to the first live one.  Gray links look live here — their loss is
      // silent — but a flapping link's down phase is an observably dead
      // port, so link_live() skips it.
      for (std::size_t off = 0; off < hops.size(); ++off) {
        const Topology::Neighbor& cand =
            hops[(first_choice + off) % hops.size()];
        if (link_live(actual, cand.link, options)) {
          chosen = &cand;
          break;
        }
      }
      if (chosen == nullptr) {
        result.status = WalkStatus::kDropped;
        result.dropped_at = at;
        return result;
      }
    } else {
      chosen = &hops[first_choice];
      if (!link_live(actual, chosen->link, options)) {
        result.status = WalkStatus::kDropped;
        result.dropped_at = at;
        return result;
      }
    }
    if (gray_drops(actual, chosen->link, src, dst, options)) {
      result.status = WalkStatus::kDropped;
      result.dropped_at = at;
      result.health_loss = true;
      return result;
    }

    result.path.push_back(chosen->node);
    ++result.hops;
    if (!topo.is_switch_node(chosen->node)) {
      // Host-granularity tables can hand us the host link directly.
      ASPEN_CHECK(chosen->node == topo.node_of(dst),
                  "router forwarded into a host that is not the destination");
      result.status = WalkStatus::kDelivered;
      return result;
    }
    at = topo.switch_of(chosen->node);
  }

  result.status = WalkStatus::kTtlExceeded;
  result.dropped_at = at;
  return result;
}

}  // namespace aspen
