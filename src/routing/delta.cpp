#include "src/routing/delta.h"

#include <utility>

#include "src/util/contracts.h"

namespace aspen::routing {

DeltaSession::DeltaSession(const Topology& topo, DestGranularity granularity,
                           int threads)
    : topo_(&topo),
      granularity_(granularity),
      threads_(threads),
      overlay_(topo),
      state_(compute_updown_routes(topo, overlay_, granularity, threads)),
      baseline_(state_) {
  ASPEN_ASSERT(baseline_.has_digests(),
               "engine states must carry digests for rollback checks");
}

void DeltaSession::absorb(const RecomputeStats& stats) {
  cumulative_.total_dests = stats.total_dests;
  cumulative_.full_rows += stats.full_rows;
  cumulative_.escalated_rows += stats.escalated_rows;
  cumulative_.patched_switches += stats.patched_switches;
}

RecomputeStats DeltaSession::apply(std::span<const LinkId> links) {
  std::vector<LinkId> changed;
  changed.reserve(links.size());
  for (const LinkId link : links) {
    if (overlay_.fail(link)) {
      changed.push_back(link);
      failed_.push_back(link);
    }
  }
  RecomputeStats stats{};
  if (!changed.empty()) {
    stats = recompute_updown_routes(*topo_, overlay_, state_, changed,
                                    threads_);
  }
  absorb(stats);
  return stats;
}

bool DeltaSession::rollback() {
  if (!failed_.empty()) {
    for (const LinkId link : failed_) overlay_.recover(link);
    absorb(
        recompute_updown_routes(*topo_, overlay_, state_, failed_, threads_));
    failed_.clear();
  }
  if (tables_match_by_digest(baseline_, state_)) return true;
  ++rebuilds_;
  rebuild();
  return false;
}

void DeltaSession::rebuild() {
  overlay_.recover_all();
  failed_.clear();
  state_ = compute_updown_routes(*topo_, overlay_, granularity_, threads_);
}

RecomputeStats DeltaSession::sync_to(const LinkStateOverlay& live) {
  std::vector<LinkId> changed;
  for (std::uint32_t id = 0; id < topo_->num_links(); ++id) {
    const LinkId link{id};
    const bool want_up = live.is_up(link);
    if (overlay_.is_up(link) == want_up) continue;
    if (want_up) {
      overlay_.recover(link);
    } else {
      overlay_.fail(link);
    }
    changed.push_back(link);
  }
  RecomputeStats stats{};
  if (!changed.empty()) {
    stats = recompute_updown_routes(*topo_, overlay_, state_, changed,
                                    threads_);
    // failed_links() enumerates in link-id order — deterministic, and the
    // order rollback()/restore paths replay the set in.
    failed_ = overlay_.failed_links();
  }
  absorb(stats);
  return stats;
}

std::shared_ptr<const PinnedState> DeltaSession::pin() {
  ASPEN_ASSERT(state_.has_digests(),
               "pin() needs engine digests for the fingerprint");
  const std::uint64_t fp = state_fingerprint(state_);
  if (pinned_ && pinned_->fingerprint == fp) return pinned_;
  auto snap = std::make_shared<PinnedState>();
  snap->state = state_;
  snap->failed = failed_;
  snap->fingerprint = fp;
  pinned_ = std::move(snap);
  return pinned_;
}

void DeltaSession::corrupt_for_test() {
  ASPEN_REQUIRE(!state_.tables.empty() && state_.num_dests() > 0,
                "nothing to corrupt");
  RoutingTables::Entry& entry = state_.tables.front().entry(0);
  entry.cost = entry.cost == 7 ? 8 : 7;
  state_.tables.clear_hops(entry);
}

}  // namespace aspen::routing
