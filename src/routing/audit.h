// Forwarding-state invariant auditor (§3, §6).
//
// audit_tables() checks everything the routing layer promises the rest of
// the stack about a RoutingState:
//
//   * shape — one table per switch, one entry per destination, consistent
//     hosts_per_edge (kTableShape);
//   * entry coherence — an unreachable cost never carries next hops
//     (kCostInconsistency), and every next hop's link actually joins this
//     switch to the named neighbor (kNextHopLink);
//   * liveness — no next hop rides a failed link (kDeadNextHop).  Only
//     meaningful when the tables are *supposed* to reflect `overlay`; after
//     crashes or lost notifications a stale-but-internally-consistent table
//     is expected, so callers gate this (see ChaosOptions handling);
//   * walk safety — following any chain of table entries toward any
//     destination never climbs after descending (kUpAfterDown, the up*/down*
//     rule of §3/§6) and never revisits a switch (kRoutingLoop).  Because
//     every Aspen link joins adjacent levels, loop-freedom is in fact
//     implied by the up-after-down check; auditing both keeps the oracle
//     valid for corrupted tables that break the level discipline too;
//   * completeness — under `expect_full_reachability`, every live switch
//     has a route to every destination (kDefaultRouteGap).
//
// The expensive walk checks memoize over (switch, has-descended) states, so
// one audit costs O(switches · dests), not O(paths).
#pragma once

#include <vector>

#include "src/routing/fwd_table.h"
#include "src/topo/link_state.h"
#include "src/topo/topology.h"
#include "src/util/contracts.h"

namespace aspen::routing {

struct TableAuditOptions {
  /// Run the memoized table walks (kUpAfterDown / kRoutingLoop).
  bool check_walks = true;
  /// Flag next hops over links that are down in the overlay.  Gate this
  /// off when auditing deliberately-stale tables (crashed switches, lost
  /// notifications).
  bool check_dead_next_hops = true;
  /// Require every live switch to reach every destination
  /// (kDefaultRouteGap).  Only sensible on an intact fabric.
  bool expect_full_reachability = false;
  /// Per-switch liveness (indexed by SwitchId); crashed switches' tables
  /// are skipped entirely.  nullptr means all switches are live.
  const std::vector<char>* alive = nullptr;
};

[[nodiscard]] AuditReport audit_tables(const Topology& topo,
                                       const RoutingState& state,
                                       const LinkStateOverlay& overlay,
                                       const TableAuditOptions& options = {});

/// Paranoid-mode oracle for the incremental routing engine: recomputes the
/// routes for `overlay` from scratch and reports kIncrementalDrift when the
/// maintained `state` differs anywhere — a table row diverging from the
/// fresh computation, or a maintained digest out of sync with the very
/// tables it fingerprints (which would silently break every digest
/// short-circuit downstream).  Costs a full route computation; gate it
/// behind AuditLevel::kParanoid.
[[nodiscard]] AuditReport audit_incremental(const Topology& topo,
                                            const LinkStateOverlay& overlay,
                                            const RoutingState& state,
                                            int threads = 0);

}  // namespace aspen::routing
