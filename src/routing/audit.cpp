#include "src/routing/audit.h"

#include <cstddef>
#include <sstream>

#include "src/routing/updown.h"

namespace aspen::routing {

namespace {

bool is_alive(const TableAuditOptions& options, SwitchId s) {
  return options.alive == nullptr || (*options.alive)[s.value()] != 0;
}

void check_shape(const Topology& topo, const RoutingState& state,
                 AuditReport& report) {
  if (state.tables.size() != topo.num_switches()) {
    std::ostringstream os;
    os << "routing state holds " << state.tables.size()
       << " tables for a topology with " << topo.num_switches()
       << " switches";
    report.add(AuditCode::kTableShape, os.str());
    return;
  }
  const std::uint64_t expected_dests =
      state.granularity == DestGranularity::kEdge ? topo.params().S
                                                  : topo.num_hosts();
  for (std::uint32_t v = 0; v < topo.num_switches(); ++v) {
    if (state.tables[v].size() != expected_dests) {
      std::ostringstream os;
      os << to_string(SwitchId{v}) << " table has " << state.tables[v].size()
         << " entries, expected " << expected_dests;
      report.add(AuditCode::kTableShape, os.str());
    }
  }
  const auto expected_hpe = static_cast<std::uint32_t>(topo.ports()) / 2;
  if (state.hosts_per_edge != expected_hpe) {
    std::ostringstream os;
    os << "hosts_per_edge = " << state.hosts_per_edge << ", expected k/2 = "
       << expected_hpe;
    report.add(AuditCode::kTableShape, os.str());
  }
}

void check_entries(const Topology& topo, const RoutingState& state,
                   const LinkStateOverlay& overlay,
                   const TableAuditOptions& options, AuditReport& report) {
  for (std::uint32_t v = 0; v < topo.num_switches(); ++v) {
    const SwitchId s{v};
    if (!is_alive(options, s)) continue;
    const NodeId self = topo.node_of(s);
    const RoutingTables::TableView table = state.table(s);
    for (std::uint64_t d = 0; d < table.size(); ++d) {
      const RoutingTables::Entry& entry = table.entry(d);
      // ANP withdraws hops without recomputing costs, so a non-empty hop
      // set with a stale cost is legal; hops surviving on an entry already
      // marked unreachable are not.
      if (entry.cost == RoutingTables::kUnreachable && entry.hop_count != 0) {
        std::ostringstream os;
        os << to_string(s) << " dest " << d << ": cost says unreachable but "
           << entry.hop_count << " next hop(s) remain";
        report.add(AuditCode::kCostInconsistency, os.str());
      }
      for (const Topology::Neighbor& nb : table.next_hops(d)) {
        if (!nb.link.valid() || nb.link.value() >= topo.num_links()) {
          std::ostringstream os;
          os << to_string(s) << " dest " << d << ": next hop carries invalid "
             << to_string(nb.link);
          report.add(AuditCode::kNextHopLink, os.str());
          continue;
        }
        const Topology::LinkRec rec = topo.link(nb.link);
        const bool joins = (rec.upper == self && rec.lower == nb.node) ||
                           (rec.lower == self && rec.upper == nb.node);
        if (!joins) {
          std::ostringstream os;
          os << to_string(s) << " dest " << d << ": " << to_string(nb.link)
             << " does not join this switch to the named neighbor";
          report.add(AuditCode::kNextHopLink, os.str());
          continue;
        }
        if (options.check_dead_next_hops && !overlay.is_up(nb.link)) {
          std::ostringstream os;
          os << to_string(s) << " dest " << d << ": next hop rides "
             << to_string(nb.link) << " which is down";
          report.add(AuditCode::kDeadNextHop, os.str());
        }
      }
    }
  }
}

/// Memoized walk state per (switch, has-descended) pair for one destination.
enum class WalkMark : unsigned char { kUnvisited, kVisiting, kClean, kDirty };

class DestWalker {
 public:
  /// `marks` is caller-owned scratch (reset here, reused across walkers)
  /// and `levels` a per-switch level cache, so the per-destination loop in
  /// audit_tables allocates nothing and skips the level_of bounds checks.
  DestWalker(const Topology& topo, const RoutingState& state,
             const TableAuditOptions& options, std::uint64_t dest,
             AuditReport& report, std::vector<WalkMark>& marks,
             const std::vector<Level>& levels)
      : topo_(topo),
        state_(state),
        options_(options),
        dest_(dest),
        report_(report),
        marks_(marks),
        levels_(levels) {
    marks_.assign(topo.num_switches() * 2, WalkMark::kUnvisited);
    if (state_.granularity == DestGranularity::kEdge) {
      target_ = topo.switch_at(1, dest);
      dest_node_ = NodeId::invalid();
    } else {
      const HostId host{static_cast<std::uint32_t>(dest)};
      target_ = topo.edge_switch_of(host);
      dest_node_ = topo.node_of(host);
    }
  }

  void run() {
    for (std::uint32_t v = 0; v < topo_.num_switches(); ++v) {
      const SwitchId s{v};
      if (!is_alive(options_, s)) continue;
      walk(s, /*descended=*/false);
    }
  }

 private:
  bool walk(SwitchId s, bool descended) {  // NOLINT(misc-no-recursion)
    // Local delivery: at the target edge switch the kEdge entry is empty
    // and the kHost entry's hop goes straight to the host.
    if (s == target_ && state_.granularity == DestGranularity::kEdge) {
      return true;
    }
    const std::size_t slot = s.value() * 2ULL + (descended ? 1 : 0);
    switch (marks_[slot]) {
      case WalkMark::kClean: return true;
      case WalkMark::kDirty: return false;
      case WalkMark::kVisiting: {
        std::ostringstream os;
        os << "dest " << dest_ << ": walk revisits " << to_string(s)
           << (descended ? " while descending" : " while climbing");
        report_.add(AuditCode::kRoutingLoop, os.str());
        marks_[slot] = WalkMark::kDirty;
        return false;
      }
      case WalkMark::kUnvisited: break;
    }
    marks_[slot] = WalkMark::kVisiting;

    bool clean = true;
    const Level here = levels_[s.value()];
    for (const Topology::Neighbor& nb : state_.table(s).next_hops(dest_)) {
      if (nb.node == dest_node_) continue;  // delivered to the host itself
      if (!topo_.is_switch_node(nb.node)) {
        std::ostringstream os;
        os << "dest " << dest_ << ": " << to_string(s)
           << " forwards to a host that is not the destination";
        report_.add(AuditCode::kRoutingLoop, os.str());
        clean = false;
        continue;
      }
      const SwitchId next = topo_.switch_of(nb.node);
      const bool hop_up = levels_[next.value()] > here;
      if (hop_up && descended) {
        std::ostringstream os;
        os << "dest " << dest_ << ": " << to_string(s) << " climbs to "
           << to_string(next) << " after descending (up*/down* violated)";
        report_.add(AuditCode::kUpAfterDown, os.str());
        clean = false;
        continue;
      }
      if (!walk(next, descended || !hop_up)) clean = false;
    }

    marks_[slot] = clean ? WalkMark::kClean : WalkMark::kDirty;
    return clean;
  }

  const Topology& topo_;
  const RoutingState& state_;
  const TableAuditOptions& options_;
  std::uint64_t dest_;
  AuditReport& report_;
  std::vector<WalkMark>& marks_;
  const std::vector<Level>& levels_;
  SwitchId target_ = SwitchId::invalid();
  NodeId dest_node_ = NodeId::invalid();
};

void check_reachability(const Topology& topo, const RoutingState& state,
                        const TableAuditOptions& options,
                        AuditReport& report) {
  for (std::uint32_t v = 0; v < topo.num_switches(); ++v) {
    const SwitchId s{v};
    if (!is_alive(options, s)) continue;
    const RoutingTables::TableView table = state.table(s);
    for (std::uint64_t d = 0; d < table.size(); ++d) {
      const RoutingTables::Entry& entry = table.entry(d);
      if (entry.reachable()) continue;
      // The kEdge self-entry legitimately has no hops (local delivery).
      if (state.granularity == DestGranularity::kEdge &&
          topo.level_of(s) == 1 && topo.switch_at(1, d) == s) {
        continue;
      }
      std::ostringstream os;
      os << to_string(s) << " has no route to dest " << d
         << " in a fully-live fabric";
      report.add(AuditCode::kDefaultRouteGap, os.str());
    }
  }
}

}  // namespace

AuditReport audit_tables(const Topology& topo, const RoutingState& state,
                         const LinkStateOverlay& overlay,
                         const TableAuditOptions& options) {
  AuditReport report;
  check_shape(topo, state, report);
  if (!report.ok()) return report;  // downstream checks assume sane shape
  check_entries(topo, state, overlay, options, report);
  if (options.expect_full_reachability) {
    check_reachability(topo, state, options, report);
  }
  if (options.check_walks) {
    const std::uint64_t num_dests = state.num_dests();
    std::vector<WalkMark> marks;
    std::vector<Level> levels(topo.num_switches());
    for (std::uint32_t v = 0; v < topo.num_switches(); ++v) {
      levels[v] = topo.level_of(SwitchId{v});
    }
    for (std::uint64_t d = 0; d < num_dests; ++d) {
      DestWalker walker(topo, state, options, d, report, marks, levels);
      walker.run();
    }
  }
  return report;
}

AuditReport audit_incremental(const Topology& topo,
                              const LinkStateOverlay& overlay,
                              const RoutingState& state, int threads) {
  AuditReport report;
  const RoutingState fresh =
      compute_updown_routes(topo, overlay, state.granularity, threads);
  if (state.tables.size() != fresh.tables.size()) {
    std::ostringstream os;
    os << "maintained state holds " << state.tables.size()
       << " tables, a fresh computation " << fresh.tables.size();
    report.add(AuditCode::kIncrementalDrift, os.str());
    return report;
  }
  constexpr std::uint64_t kMaxDetailed = 4;
  std::uint64_t drifted = 0;
  std::uint64_t stale_digests = 0;
  for (std::uint32_t v = 0; v < topo.num_switches(); ++v) {
    const bool rows_equal = state.tables[v] == fresh.tables[v];
    if (!rows_equal) {
      if (++drifted <= kMaxDetailed) {
        std::ostringstream os;
        os << to_string(SwitchId{v})
           << " table diverges from a fresh route computation";
        report.add(AuditCode::kIncrementalDrift, os.str());
      }
      continue;
    }
    // Equal tables must carry equal digests (same hash of same contents);
    // a mismatch means some mutation bypassed digest maintenance, which
    // would corrupt every digest short-circuit downstream.
    if (state.has_digests() && state.digests[v] != fresh.digests[v]) {
      if (++stale_digests <= kMaxDetailed) {
        std::ostringstream os;
        os << to_string(SwitchId{v})
           << " digest is out of sync with the table it fingerprints";
        report.add(AuditCode::kIncrementalDrift, os.str());
      }
    }
  }
  if (drifted > kMaxDetailed || stale_digests > kMaxDetailed) {
    std::ostringstream os;
    os << drifted << " drifted table(s), " << stale_digests
       << " stale digest(s) in total";
    report.add(AuditCode::kIncrementalDrift, os.str());
  }
  return report;
}

}  // namespace aspen::routing
