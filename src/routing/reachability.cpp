#include "src/routing/reachability.h"

#include <cstdint>
#include <vector>

#include "src/util/contracts.h"
#include "src/util/status.h"

namespace aspen {

namespace {

// Accumulates walk outcomes into ReachabilityStats.  Destinations are dense
// host indices, so "distinct affected destinations" is a flat bitmap plus a
// counter — no hash container, no iteration-order dependence anywhere near
// an exported statistic, and O(1) per record with no rehashing.
class StatsAccumulator {
 public:
  explicit StatsAccumulator(std::uint64_t num_hosts)
      : affected_(num_hosts, 0) {}

  void record(HostId dst, const WalkResult& walk) {
    ++stats_.flows;
    switch (walk.status) {
      case WalkStatus::kDelivered:
        ++stats_.delivered;
        total_hops_ += static_cast<std::uint64_t>(walk.hops);
        return;
      case WalkStatus::kDropped:
        ++stats_.dropped;
        break;
      case WalkStatus::kNoRoute:
        ++stats_.no_route;
        break;
      case WalkStatus::kTtlExceeded:
        ++stats_.looped;
        break;
    }
    if (affected_[dst.value()] == 0) {
      affected_[dst.value()] = 1;
      ++distinct_affected_;
    }
  }

  [[nodiscard]] ReachabilityStats finish() {
    ASPEN_ASSERT(stats_.delivered + stats_.dropped + stats_.no_route +
                         stats_.looped ==
                     stats_.flows,
                 "per-status counts must partition the walked flows");
    stats_.affected_destinations = distinct_affected_;
    stats_.average_hops =
        stats_.delivered == 0
            ? 0.0
            : static_cast<double>(total_hops_) /
                  static_cast<double>(stats_.delivered);
    return stats_;
  }

 private:
  ReachabilityStats stats_;
  std::uint64_t total_hops_ = 0;
  std::vector<std::uint8_t> affected_;  ///< indexed by host id
  std::uint64_t distinct_affected_ = 0;
};

}  // namespace

ReachabilityStats measure_all_pairs(const Topology& topo,
                                    const Router& knowledge,
                                    const LinkStateOverlay& actual,
                                    const WalkOptions& options) {
  StatsAccumulator acc(topo.num_hosts());
  const auto hosts = static_cast<std::uint32_t>(topo.num_hosts());
  for (std::uint32_t s = 0; s < hosts; ++s) {
    for (std::uint32_t d = 0; d < hosts; ++d) {
      if (s == d) continue;
      const HostId src{s};
      const HostId dst{d};
      acc.record(dst, walk_packet(topo, knowledge, actual, src, dst, options));
    }
  }
  return acc.finish();
}

ReachabilityStats measure_sampled(const Topology& topo,
                                  const Router& knowledge,
                                  const LinkStateOverlay& actual,
                                  std::uint64_t num_flows, Rng& rng,
                                  const WalkOptions& options) {
  ASPEN_REQUIRE(topo.num_hosts() >= 2, "sampling needs at least two hosts");
  StatsAccumulator acc(topo.num_hosts());
  for (std::uint64_t i = 0; i < num_flows; ++i) {
    const auto s = static_cast<std::uint32_t>(rng.index(topo.num_hosts()));
    auto d = static_cast<std::uint32_t>(rng.index(topo.num_hosts() - 1));
    if (d >= s) ++d;  // uniform over dst != src
    const HostId src{s};
    const HostId dst{d};
    acc.record(dst, walk_packet(topo, knowledge, actual, src, dst, options));
  }
  return acc.finish();
}

ReachabilityStats measure_to_edge_range(const Topology& topo,
                                        const Router& knowledge,
                                        const LinkStateOverlay& actual,
                                        std::uint64_t first_edge,
                                        std::uint64_t last_edge,
                                        const WalkOptions& options) {
  ASPEN_REQUIRE(first_edge <= last_edge && last_edge < topo.params().S,
                "edge range out of bounds");
  StatsAccumulator acc(topo.num_hosts());
  const auto hosts = static_cast<std::uint32_t>(topo.num_hosts());
  for (std::uint64_t e = first_edge; e <= last_edge; ++e) {
    for (HostId dst : topo.hosts_of_edge(topo.switch_at(1, e))) {
      for (std::uint32_t s = 0; s < hosts; ++s) {
        const HostId src{s};
        if (src == dst) continue;
        acc.record(dst,
                   walk_packet(topo, knowledge, actual, src, dst, options));
      }
    }
  }
  return acc.finish();
}

}  // namespace aspen
