// Global-knowledge up*/down* shortest-path route computation.
//
// This is the routing function a converged link-state protocol (OSPF/IS-IS,
// or our LSP) computes: for every switch and every destination edge switch,
// the ECMP set of next hops on shortest *valid* paths — paths that climb
// zero or more levels and then descend, never turning upward again (§3, §6).
//
// The computation respects a LinkStateOverlay, so the same function yields
// pre-failure routes (intact overlay) and post-convergence routes (overlay
// with failures applied); diffing the two identifies exactly which switches
// a failure forces to update — the paper's "switches that react" metric.
#pragma once

#include "src/routing/fwd_table.h"
#include "src/topo/link_state.h"
#include "src/topo/topology.h"

namespace aspen {

/// Computes up*/down* shortest-path forwarding tables for every switch,
/// using only links that are up in `overlay`.  `granularity` keys the
/// tables by edge switch (compact prefixes, the default) or by individual
/// host (making host-link failures routing-visible).
[[nodiscard]] RoutingState compute_updown_routes(const Topology& topo,
                                                 const LinkStateOverlay& overlay,
                                                 DestGranularity granularity);
[[nodiscard]] RoutingState compute_updown_routes(const Topology& topo,
                                                 const LinkStateOverlay& overlay);

/// Convenience: routes over the intact topology, edge granularity.
[[nodiscard]] RoutingState compute_updown_routes(const Topology& topo);

/// Number of switches whose forwarding table differs between two states.
[[nodiscard]] std::uint64_t switches_with_changed_tables(
    const RoutingState& before, const RoutingState& after);

}  // namespace aspen
