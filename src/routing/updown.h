// Global-knowledge up*/down* shortest-path route computation.
//
// This is the routing function a converged link-state protocol (OSPF/IS-IS,
// or our LSP) computes: for every switch and every destination edge switch,
// the ECMP set of next hops on shortest *valid* paths — paths that climb
// zero or more levels and then descend, never turning upward again (§3, §6).
//
// The computation respects a LinkStateOverlay, so the same function yields
// pre-failure routes (intact overlay) and post-convergence routes (overlay
// with failures applied); diffing the two identifies exactly which switches
// a failure forces to update — the paper's "switches that react" metric.
//
// Engine properties (see DESIGN.md "routing engine"):
//  - Destinations are independent, so full computation fans out across a
//    work pool; output is byte-identical to the serial engine at any thread
//    count (static index partition, index-addressed writes only).
//  - Every produced RoutingState carries per-switch digests (fwd_table.h)
//    maintained through incremental updates, letting table diffs
//    short-circuit without full deep compares.
//  - recompute_updown_routes patches a previous state in place given the
//    set of links that changed, recomputing only affected rows.
#pragma once

#include <span>

#include "src/routing/fwd_table.h"
#include "src/topo/link_state.h"
#include "src/topo/topology.h"

namespace aspen {

/// Computes up*/down* shortest-path forwarding tables for every switch,
/// using only links that are up in `overlay`.  `granularity` keys the
/// tables by edge switch (compact prefixes, the default) or by individual
/// host (making host-link failures routing-visible).  `threads` is the
/// worker count for the per-destination fan-out (0 = auto, see
/// parallel::effective_num_threads); the result is byte-identical at every
/// thread count.
[[nodiscard]] RoutingState compute_updown_routes(const Topology& topo,
                                                 const LinkStateOverlay& overlay,
                                                 DestGranularity granularity,
                                                 int threads);
[[nodiscard]] RoutingState compute_updown_routes(const Topology& topo,
                                                 const LinkStateOverlay& overlay,
                                                 DestGranularity granularity);
[[nodiscard]] RoutingState compute_updown_routes(const Topology& topo,
                                                 const LinkStateOverlay& overlay);

/// Convenience: routes over the intact topology, edge granularity.
[[nodiscard]] RoutingState compute_updown_routes(const Topology& topo);

/// What an incremental recompute actually did, per destination row class.
struct RecomputeStats {
  std::uint64_t total_dests = 0;      ///< rows per table in the state
  std::uint64_t full_rows = 0;        ///< rows recomputed end-to-end
  std::uint64_t escalated_rows = 0;   ///< of full_rows: promoted because a
                                      ///< patched switch's cost changed
  std::uint64_t patched_switches = 0; ///< single-switch row patches applied

  /// Rows the incremental path skipped entirely.
  [[nodiscard]] std::uint64_t untouched_rows() const {
    return total_dests - full_rows;
  }
};

/// Updates `state` in place to the routes implied by `overlay`, given that
/// exactly the links in `changed_links` may have flipped since `state` was
/// computed (links listed but unchanged are harmless).  Only affected
/// destination rows are recomputed: for a changed inter-switch link with
/// lower endpoint v, destinations in v's structural subtree get a full row
/// recompute, while every other destination needs at most v's own row
/// patched (its up-phase ECMP set) — unless v's cost changes, which
/// escalates that destination to a full row recompute.  Byte-identical to
/// a fresh compute_updown_routes at every thread count.
RecomputeStats recompute_updown_routes(const Topology& topo,
                                       const LinkStateOverlay& overlay,
                                       RoutingState& state,
                                       std::span<const LinkId> changed_links,
                                       int threads = 0);

/// Number of switches whose forwarding table differs between two states.
/// Exact: engine digests short-circuit the per-switch deep compare (unequal
/// digests prove inequality; equal digests are confirmed byte-for-byte).
[[nodiscard]] std::uint64_t switches_with_changed_tables(
    const RoutingState& before, const RoutingState& after);

/// O(switches) digest-only equality: true iff every per-switch digest
/// matches.  Probabilistic in one direction — unequal digests prove the
/// tables differ, equal digests admit a 2^-64-per-table hash collision —
/// which is what chaos-campaign restoration checks accept in exchange for
/// skipping the full deep compare.  Requires both states to carry digests.
[[nodiscard]] bool tables_match_by_digest(const RoutingState& before,
                                          const RoutingState& after);

}  // namespace aspen
