#include "src/routing/paths.h"

#include <functional>
#include <unordered_map>

#include "src/util/contracts.h"
#include "src/util/status.h"

namespace aspen {

namespace {

std::uint64_t count_down_paths_memo(
    const Topology& topo, const LinkStateOverlay& overlay, SwitchId from,
    SwitchId to_edge, std::unordered_map<std::uint32_t, std::uint64_t>& memo) {
  if (from == to_edge) return 1;
  if (topo.level_of(from) == 1) return 0;
  if (const auto it = memo.find(from.value()); it != memo.end()) {
    return it->second;
  }
  std::uint64_t total = 0;
  for (const Topology::Neighbor& nb : topo.down_neighbors(from)) {
    if (!overlay.is_up(nb.link)) continue;
    if (!topo.is_switch_node(nb.node)) continue;
    total += count_down_paths_memo(topo, overlay, topo.switch_of(nb.node),
                                   to_edge, memo);
  }
  memo[from.value()] = total;
  return total;
}

}  // namespace

std::uint64_t count_down_paths(const Topology& topo,
                               const LinkStateOverlay& overlay, SwitchId from,
                               SwitchId to_edge) {
  ASPEN_REQUIRE(topo.level_of(to_edge) == 1,
                "to_edge must be an L1 switch");
  std::unordered_map<std::uint32_t, std::uint64_t> memo;
  return count_down_paths_memo(topo, overlay, from, to_edge, memo);
}

std::vector<std::vector<NodeId>> enumerate_shortest_paths(
    const Topology& topo, const RoutingState& routes, HostId src,
    HostId dst) {
  const SwitchId dest_edge = topo.edge_switch_of(dst);
  const std::uint64_t dest_index = topo.index_in_level(dest_edge);

  std::vector<std::vector<NodeId>> paths;
  std::vector<NodeId> current{topo.node_of(src)};

  // DFS over the ECMP DAG; the routing state is loop-free by construction
  // (shortest-path costs strictly decrease along next hops), but we cap the
  // depth defensively.
  const int max_depth = 2 * topo.levels() + 2;

  const std::function<void(SwitchId)> dfs = [&](SwitchId at) {
    if (static_cast<int>(current.size()) > max_depth) {
      throw AspenError("shortest-path DAG deeper than any valid path");
    }
    current.push_back(topo.node_of(at));
    if (at == dest_edge) {
      current.push_back(topo.node_of(dst));
      ASPEN_ASSERT(current.size() >= 3,
                   "a host-to-host path has at least src, edge, dst");
      paths.push_back(current);
      current.pop_back();
    } else {
      for (const Topology::Neighbor& nb :
           routes.table(at).entry(dest_index).next_hops) {
        dfs(topo.switch_of(nb.node));
      }
    }
    current.pop_back();
  };

  dfs(topo.switch_of(topo.host_uplink(src).node));
  return paths;
}

std::uint64_t count_shortest_paths(const Topology& topo,
                                   const RoutingState& routes, HostId src,
                                   HostId dst) {
  const SwitchId dest_edge = topo.edge_switch_of(dst);
  const std::uint64_t dest_index = topo.index_in_level(dest_edge);

  std::unordered_map<std::uint32_t, std::uint64_t> memo;
  const std::function<std::uint64_t(SwitchId)> count =
      [&](SwitchId at) -> std::uint64_t {
    if (at == dest_edge) return 1;
    if (const auto it = memo.find(at.value()); it != memo.end()) {
      return it->second;
    }
    std::uint64_t total = 0;
    for (const Topology::Neighbor& nb :
         routes.table(at).entry(dest_index).next_hops) {
      total += count(topo.switch_of(nb.node));
    }
    memo[at.value()] = total;
    return total;
  };

  return count(topo.switch_of(topo.host_uplink(src).node));
}

}  // namespace aspen
