#include "src/routing/paths.h"

#include <cstdint>
#include <functional>
#include <limits>
#include <vector>

#include "src/util/contracts.h"
#include "src/util/status.h"

namespace aspen {

namespace {

// Switch ids are dense, so path-count memo tables are flat vectors indexed
// by switch id with a sentinel for "not yet computed" — deterministic by
// construction (no hash container in any counting path) and faster than a
// node-allocating map for the dense DAG walks below.
constexpr std::uint64_t kUncounted = std::numeric_limits<std::uint64_t>::max();

std::uint64_t count_down_paths_memo(const Topology& topo,
                                    const LinkStateOverlay& overlay,
                                    SwitchId from, SwitchId to_edge,
                                    std::vector<std::uint64_t>& memo) {
  if (from == to_edge) return 1;
  if (topo.level_of(from) == 1) return 0;
  if (memo[from.value()] != kUncounted) return memo[from.value()];
  std::uint64_t total = 0;
  for (const Topology::Neighbor& nb : topo.down_neighbors(from)) {
    if (!overlay.is_up(nb.link)) continue;
    if (!topo.is_switch_node(nb.node)) continue;
    total += count_down_paths_memo(topo, overlay, topo.switch_of(nb.node),
                                   to_edge, memo);
  }
  memo[from.value()] = total;
  return total;
}

}  // namespace

std::uint64_t count_down_paths(const Topology& topo,
                               const LinkStateOverlay& overlay, SwitchId from,
                               SwitchId to_edge) {
  ASPEN_REQUIRE(topo.level_of(to_edge) == 1,
                "to_edge must be an L1 switch");
  std::vector<std::uint64_t> memo(topo.num_switches(), kUncounted);
  return count_down_paths_memo(topo, overlay, from, to_edge, memo);
}

std::vector<std::vector<NodeId>> enumerate_shortest_paths(
    const Topology& topo, const RoutingState& routes, HostId src,
    HostId dst) {
  const SwitchId dest_edge = topo.edge_switch_of(dst);
  const std::uint64_t dest_index = topo.index_in_level(dest_edge);

  std::vector<std::vector<NodeId>> paths;
  std::vector<NodeId> current{topo.node_of(src)};

  // DFS over the ECMP DAG; the routing state is loop-free by construction
  // (shortest-path costs strictly decrease along next hops), but we cap the
  // depth defensively.
  const int max_depth = 2 * topo.levels() + 2;

  const std::function<void(SwitchId)> dfs = [&](SwitchId at) {
    if (static_cast<int>(current.size()) > max_depth) {
      throw AspenError("shortest-path DAG deeper than any valid path");
    }
    current.push_back(topo.node_of(at));
    if (at == dest_edge) {
      current.push_back(topo.node_of(dst));
      ASPEN_ASSERT(current.size() >= 3,
                   "a host-to-host path has at least src, edge, dst");
      paths.push_back(current);
      current.pop_back();
    } else {
      for (const Topology::Neighbor& nb :
           routes.table(at).next_hops(dest_index)) {
        dfs(topo.switch_of(nb.node));
      }
    }
    current.pop_back();
  };

  dfs(topo.switch_of(topo.host_uplink(src).node));
  return paths;
}

std::uint64_t count_shortest_paths(const Topology& topo,
                                   const RoutingState& routes, HostId src,
                                   HostId dst) {
  const SwitchId dest_edge = topo.edge_switch_of(dst);
  const std::uint64_t dest_index = topo.index_in_level(dest_edge);

  std::vector<std::uint64_t> memo(topo.num_switches(), kUncounted);
  const std::function<std::uint64_t(SwitchId)> count =
      [&](SwitchId at) -> std::uint64_t {
    if (at == dest_edge) return 1;
    if (memo[at.value()] != kUncounted) return memo[at.value()];
    std::uint64_t total = 0;
    for (const Topology::Neighbor& nb :
         routes.table(at).next_hops(dest_index)) {
      total += count(topo.switch_of(nb.node));
    }
    memo[at.value()] = total;
    return total;
  };

  return count(topo.switch_of(topo.host_uplink(src).node));
}

}  // namespace aspen
