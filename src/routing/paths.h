// Path counting and enumeration.
//
// The DCC "counts distinct paths from an L_n switch to an L_1 switch" (§5.2
// footnote 8); this module verifies that property on built graphs and
// enumerates the ECMP shortest-path DAG between host pairs — the paper's
// "diverse yet short paths" (§1).
#pragma once

#include <cstdint>
#include <vector>

#include "src/routing/fwd_table.h"
#include "src/topo/link_state.h"
#include "src/topo/topology.h"

namespace aspen {

/// Number of distinct all-downward link paths from `from` to the edge
/// switch `to_edge` over live links.  A descent from L_i to L_1 multiplies
/// one factor of c_j per level crossed, so for an intact tree and any
/// (L_n switch, descendant edge switch) pair the count is Π_{j=2..n} c_j —
/// exactly the DCC.
[[nodiscard]] std::uint64_t count_down_paths(const Topology& topo,
                                             const LinkStateOverlay& overlay,
                                             SwitchId from, SwitchId to_edge);

/// All distinct switch-level paths from src to dst host along the shortest
/// up*/down* DAG encoded in `routes`.  Paths are returned as node
/// sequences including the two hosts.  Exponential in path diversity —
/// intended for small trees and tests.
// aspen-lint: allow(hot-path-nested-container) -- cold-path query result built once per call for small trees and tests; never probed per packet
[[nodiscard]] std::vector<std::vector<NodeId>> enumerate_shortest_paths(
    const Topology& topo, const RoutingState& routes, HostId src, HostId dst);

/// Number of such paths without materializing them (DP over the DAG).
[[nodiscard]] std::uint64_t count_shortest_paths(const Topology& topo,
                                                 const RoutingState& routes,
                                                 HostId src, HostId dst);

}  // namespace aspen
