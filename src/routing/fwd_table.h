// Forwarding state for up*/down* routing.
//
// Destinations are keyed by *edge switch* (the L_1 switch a host attaches
// to), mirroring the prefix-based aggregation real fabrics use (§5.3): all
// hosts under one edge switch share forwarding entries.  Each entry is the
// ECMP set of next hops on shortest valid up*/down* paths.
//
// Storage is arena-backed (see DESIGN.md "memory layout"): one contiguous
// next-hop pool per RoutingTables plus a dest-major array of 12-byte
// (offset, count, capacity, cost) entry records, replacing a heap-owning
// vector per entry.  At mega scale (n=5, k=48: 15k switches × 3456
// destinations = 54M entries) the per-entry vectors cost one allocation
// and one pointer chase each; the arena is two allocations total, and the
// dest-major order matches the engine's write pattern (all switches for
// one destination) so a row recompute streams one contiguous region.
//
// Every entry's pool slice has a fixed capacity — the switch's max
// up/down degree, computed from the topology alone — so slice offsets are
// a pure function of (topology, num_dests): identical across thread
// counts, across full vs. incremental computation, and stable across
// DeltaSession apply/rollback.  Serial protocol code (ANP detours) may
// exceed a capacity; those rows relocate to a tail region of the pool.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "src/topo/topology.h"
#include "src/util/contracts.h"
#include "src/util/ids.h"

namespace aspen {

/// What a forwarding-table destination key denotes.
///
/// kEdge aggregates all hosts under one L_1 switch into a single prefix —
/// the compact state real fabrics use (§5.3).  kHost gives every host its
/// own entry; host ("1st hop") link failures then become visible to the
/// routing layer, which is what the paper's "failed each link in each
/// tree" sweeps assume.
enum class DestGranularity { kEdge, kHost };

/// Arena-backed forwarding tables for every switch in a topology: a
/// dest-major entry array over one shared next-hop pool.  Per-switch views
/// (TableView / TableRef) give the familiar "table of switch s, entry of
/// destination d" access; all next-hop reads and writes go through the
/// owning RoutingTables because an Entry only names a pool slice.
class RoutingTables {
 public:
  using Neighbor = Topology::Neighbor;

  static constexpr int kUnreachable = -1;

  /// One (switch, destination) row: a pool slice plus the path cost.
  /// `cost` is hops to the destination edge switch via the slice's hops;
  /// kUnreachable when the slice is empty.  Mutate hops only through the
  /// owning RoutingTables (the record does not own the pool storage).
  struct Entry {
    std::uint32_t hop_begin = 0;  ///< pool offset of this row's slice
    std::uint16_t hop_count = 0;  ///< hops in use
    std::uint16_t hop_cap = 0;    ///< slice capacity
    int cost = kUnreachable;

    [[nodiscard]] bool reachable() const { return hop_count != 0; }
  };
  static_assert(sizeof(Entry) == 12, "Entry is the hot-path record; "
                                     "keep it at 12 bytes");

  RoutingTables() = default;

  /// Shapes the arena: `caps[s]` is switch s's per-row slice capacity.
  /// All entries start unreachable.
  void reset(std::uint64_t num_dests, std::span<const std::uint32_t> caps) {
    num_tables_ = caps.size();
    num_dests_ = num_dests;
    std::uint64_t stride = 0;
    row_begin_.assign(num_tables_, 0);
    cap_.assign(caps.begin(), caps.end());
    for (std::uint64_t s = 0; s < num_tables_; ++s) {
      row_begin_[s] = static_cast<std::uint32_t>(stride);
      stride += caps[s];
    }
    const std::uint64_t pool_size = stride * num_dests;
    ASPEN_CHECK(pool_size < std::uint64_t{1} << 32,
                "next-hop pool exceeds 32-bit offsets (", pool_size,
                " slots)");
    row_stride_ = static_cast<std::uint32_t>(stride);
    meta_.assign(num_tables_ * num_dests, Entry{});
    for (std::uint64_t d = 0; d < num_dests; ++d) {
      Entry* row = meta_.data() + d * num_tables_;
      const std::uint32_t base = static_cast<std::uint32_t>(d * stride);
      for (std::uint64_t s = 0; s < num_tables_; ++s) {
        row[s].hop_begin = base + row_begin_[s];
        row[s].hop_cap = static_cast<std::uint16_t>(caps[s]);
      }
    }
    pool_.assign(pool_size, Neighbor{});
  }

  [[nodiscard]] std::uint64_t size() const { return num_tables_; }
  [[nodiscard]] bool empty() const { return num_tables_ == 0; }
  [[nodiscard]] std::uint64_t num_dests() const { return num_dests_; }

  // ---- entry access ----------------------------------------------------

  [[nodiscard]] const Entry& entry_at(std::uint64_t s, std::uint64_t d) const {
    ASPEN_REQUIRE(s < num_tables_ && d < num_dests_,
                  "table entry out of range");
    return meta_[d * num_tables_ + s];
  }
  [[nodiscard]] Entry& entry_at(std::uint64_t s, std::uint64_t d) {
    ASPEN_REQUIRE(s < num_tables_ && d < num_dests_,
                  "table entry out of range");
    return meta_[d * num_tables_ + s];
  }

  [[nodiscard]] std::span<const Neighbor> hops(const Entry& e) const {
    return {pool_.data() + e.hop_begin, e.hop_count};
  }
  /// In-place element mutation only; use the ops below to resize a slice.
  [[nodiscard]] std::span<Neighbor> hops_mut(Entry& e) {
    return {pool_.data() + e.hop_begin, e.hop_count};
  }

  // ---- slice mutation (keeps hop_count/cap coherent) -------------------

  void clear_hops(Entry& e) { e.hop_count = 0; }

  void push_hop(Entry& e, Neighbor nb) {
    if (e.hop_count == e.hop_cap) grow(e);
    pool_[e.hop_begin + e.hop_count] = nb;
    ++e.hop_count;
  }

  void assign_hops(Entry& e, std::span<const Neighbor> hops) {
    while (e.hop_cap < hops.size()) grow(e);
    for (std::uint64_t i = 0; i < hops.size(); ++i) {
      pool_[e.hop_begin + i] = hops[i];
    }
    e.hop_count = static_cast<std::uint16_t>(hops.size());
  }

  /// Inserts keeping the slice sorted by link id (the order the route
  /// engine emits), so withdraw-then-restore yields byte-identical rows.
  /// A hop already present (same link) is left alone.
  void insert_hop_by_link(Entry& e, Neighbor nb) {
    {
      const Neighbor* base = pool_.data() + e.hop_begin;
      std::uint32_t pos = 0;
      while (pos < e.hop_count && base[pos].link.value() < nb.link.value()) {
        ++pos;
      }
      if (pos < e.hop_count && base[pos].link == nb.link) return;
    }
    if (e.hop_count == e.hop_cap) grow(e);
    Neighbor* base = pool_.data() + e.hop_begin;
    std::uint32_t pos = 0;
    while (pos < e.hop_count && base[pos].link.value() < nb.link.value()) {
      ++pos;
    }
    for (std::uint32_t i = e.hop_count; i > pos; --i) base[i] = base[i - 1];
    base[pos] = nb;
    ++e.hop_count;
  }

  void erase_hop_at(Entry& e, std::uint64_t index) {
    ASPEN_REQUIRE(index < e.hop_count, "hop index out of range");
    Neighbor* base = pool_.data() + e.hop_begin;
    for (std::uint64_t i = index + 1; i < e.hop_count; ++i) {
      base[i - 1] = base[i];
    }
    --e.hop_count;
  }

  /// Removes every hop matching `pred`; returns how many were removed.
  template <typename Pred>
  std::uint64_t erase_hops_if(Entry& e, Pred pred) {
    Neighbor* base = pool_.data() + e.hop_begin;
    std::uint32_t kept = 0;
    for (std::uint32_t i = 0; i < e.hop_count; ++i) {
      if (!pred(static_cast<const Neighbor&>(base[i]))) {
        base[kept++] = base[i];
      }
    }
    const std::uint64_t removed = e.hop_count - kept;
    e.hop_count = static_cast<std::uint16_t>(kept);
    return removed;
  }

  // ---- per-switch views ------------------------------------------------

  class TableView {
   public:
    TableView(const RoutingTables* t, std::uint64_t s) : t_(t), s_(s) {}

    [[nodiscard]] const Entry& entry(std::uint64_t d) const {
      return t_->entry_at(s_, d);
    }
    [[nodiscard]] std::span<const Neighbor> next_hops(std::uint64_t d) const {
      return t_->hops(entry(d));
    }
    [[nodiscard]] std::uint64_t size() const { return t_->num_dests(); }

    /// Number of destinations currently reachable.
    [[nodiscard]] std::uint64_t reachable_count() const {
      std::uint64_t count = 0;
      for (std::uint64_t d = 0; d < t_->num_dests(); ++d) {
        if (entry(d).reachable()) ++count;
      }
      return count;
    }

    [[nodiscard]] const RoutingTables& owner() const { return *t_; }

    /// Logical content equality: costs and hop sequences, not offsets.
    friend bool operator==(const TableView& a, const TableView& b) {
      if (a.size() != b.size()) return false;
      for (std::uint64_t d = 0; d < a.size(); ++d) {
        if (!rows_equal(*a.t_, a.entry(d), *b.t_, b.entry(d))) return false;
      }
      return true;
    }

   private:
    const RoutingTables* t_;
    std::uint64_t s_;
  };

  class TableRef {
   public:
    TableRef(RoutingTables* t, std::uint64_t s) : t_(t), s_(s) {}

    [[nodiscard]] Entry& entry(std::uint64_t d) const {
      return t_->entry_at(s_, d);
    }
    [[nodiscard]] std::span<const Neighbor> next_hops(std::uint64_t d) const {
      return t_->hops(entry(d));
    }
    [[nodiscard]] std::uint64_t size() const { return t_->num_dests(); }
    [[nodiscard]] std::uint64_t reachable_count() const {
      return TableView(*this).reachable_count();
    }
    [[nodiscard]] RoutingTables& owner() const { return *t_; }

    // A TableRef is a view; converting to the const view is free.
    operator TableView() const { return {t_, s_}; }  // NOLINT(google-explicit-constructor)

    TableRef(const TableRef&) = default;
    /// Proxy deep-assignment (vector<bool>::reference-style): copies the
    /// source table's row contents — costs and hop slices — into this
    /// switch's rows, the semantics element assignment had when tables
    /// were a vector of per-switch objects.  Without this, `a[s] = b[s]`
    /// would silently rebind the proxy and copy nothing.
    const TableRef& operator=(const TableView& src) const {
      copy_rows_from(src);
      return *this;
    }
    const TableRef& operator=(const TableRef& src) const {
      copy_rows_from(TableView(src));
      return *this;
    }

    /// Deep row-content copy from another state's table for the same
    /// switch of the same topology (LSP's per-switch convergence model).
    void copy_rows_from(const TableView& src) const {
      ASPEN_REQUIRE(src.size() == size(),
                    "row copy between different table shapes");
      for (std::uint64_t d = 0; d < size(); ++d) {
        Entry& dst = entry(d);
        dst.cost = src.entry(d).cost;
        t_->assign_hops(dst, src.owner().hops(src.entry(d)));
      }
    }

    friend bool operator==(const TableRef& a, const TableView& b) {
      return TableView(a) == b;
    }

   private:
    RoutingTables* t_;
    std::uint64_t s_;
  };

  [[nodiscard]] TableView operator[](std::uint64_t s) const {
    return {this, s};
  }
  [[nodiscard]] TableRef operator[](std::uint64_t s) { return {this, s}; }
  [[nodiscard]] TableView at(std::uint64_t s) const {
    ASPEN_REQUIRE(s < num_tables_, "table index out of range");
    return {this, s};
  }
  [[nodiscard]] TableRef at(std::uint64_t s) {
    ASPEN_REQUIRE(s < num_tables_, "table index out of range");
    return {this, s};
  }
  [[nodiscard]] TableView front() const { return at(0); }
  [[nodiscard]] TableRef front() { return at(0); }

  /// Test hook for shape-corruption checks: forget the last table.
  void pop_back() {
    ASPEN_REQUIRE(num_tables_ > 0, "pop_back on empty tables");
    --num_tables_;
  }

  /// Logical content equality across whole states (dest-major scan).
  friend bool operator==(const RoutingTables& a, const RoutingTables& b) {
    if (a.num_tables_ != b.num_tables_ || a.num_dests_ != b.num_dests_) {
      return false;
    }
    for (std::uint64_t d = 0; d < a.num_dests_; ++d) {
      const Entry* ra = a.meta_.data() + d * a.num_tables_;
      const Entry* rb = b.meta_.data() + d * b.num_tables_;
      for (std::uint64_t s = 0; s < a.num_tables_; ++s) {
        if (!rows_equal(a, ra[s], b, rb[s])) return false;
      }
    }
    return true;
  }

  // ---- raw engine access ----------------------------------------------

  /// Hot-loop pointers for the routing engine.  meta is dest-major:
  /// meta[d * num_tables + s].  Invalidated by reset() and by any slice
  /// growth (serial protocol mutation) — the engine never grows slices.
  struct Raw {
    Entry* meta = nullptr;
    Neighbor* pool = nullptr;
    std::uint64_t num_tables = 0;
    std::uint64_t num_dests = 0;
  };
  [[nodiscard]] Raw raw() {
    return {meta_.data(), pool_.data(), num_tables_, num_dests_};
  }
  struct ConstRaw {
    const Entry* meta = nullptr;
    const Neighbor* pool = nullptr;
    std::uint64_t num_tables = 0;
    std::uint64_t num_dests = 0;
  };
  [[nodiscard]] ConstRaw raw() const {
    return {meta_.data(), pool_.data(), num_tables_, num_dests_};
  }

  /// Logical equality of two rows (possibly from different arenas).
  static bool rows_equal(const RoutingTables& ta, const Entry& ea,
                         const RoutingTables& tb, const Entry& eb) {
    if (ea.cost != eb.cost || ea.hop_count != eb.hop_count) return false;
    const Neighbor* ha = ta.pool_.data() + ea.hop_begin;
    const Neighbor* hb = tb.pool_.data() + eb.hop_begin;
    for (std::uint32_t i = 0; i < ea.hop_count; ++i) {
      if (!(ha[i] == hb[i])) return false;
    }
    return true;
  }

 private:
  /// Relocates a full slice to a doubled-capacity region appended at the
  /// pool tail.  Serial-protocol-only: growth invalidates raw() pointers
  /// and is never reached by the engine (engine rows fit their caps by
  /// construction: every hop set is a subset of one adjacency direction).
  void grow(Entry& e) {
    const std::uint32_t new_cap = e.hop_cap == 0 ? 2 : e.hop_cap * 2;
    ASPEN_CHECK(new_cap <= std::uint16_t(-1), "row capacity overflow");
    ASPEN_CHECK(pool_.size() + new_cap < std::uint64_t{1} << 32,
                "next-hop pool exceeds 32-bit offsets");
    const auto new_begin = static_cast<std::uint32_t>(pool_.size());
    pool_.resize(pool_.size() + new_cap);
    for (std::uint32_t i = 0; i < e.hop_count; ++i) {
      pool_[new_begin + i] = pool_[e.hop_begin + i];
    }
    e.hop_begin = new_begin;
    e.hop_cap = static_cast<std::uint16_t>(new_cap);
  }

  std::uint64_t num_tables_ = 0;
  std::uint64_t num_dests_ = 0;
  std::uint32_t row_stride_ = 0;             ///< pool slots per destination
  std::vector<std::uint32_t> row_begin_;     ///< per switch, within a row
  std::vector<std::uint32_t> cap_;           ///< per switch slice capacity
  std::vector<Entry> meta_;                  ///< dest-major entry records
  std::vector<Neighbor> pool_;               ///< all next-hop slices
};

/// Per-row slice capacities for a topology: a switch's row is either an
/// ECMP set of uplinks or a set of live downlinks, never both, so its max
/// up/down degree bounds every row the engine can write.
[[nodiscard]] inline std::vector<std::uint32_t> switch_row_caps(
    const Topology& topo) {
  std::vector<std::uint32_t> caps(topo.num_switches());
  for (std::uint64_t s = 0; s < topo.num_switches(); ++s) {
    const SwitchId id{static_cast<std::uint32_t>(s)};
    caps[s] = static_cast<std::uint32_t>(std::max(
        topo.up_neighbors(id).size(), topo.down_neighbors(id).size()));
  }
  return caps;
}

/// Order-independent fingerprint of one forwarding row, keyed by its
/// destination index.  Per-table digests are the XOR of all row hashes, so
/// an engine rewriting rows in any order (or in parallel) accumulates the
/// same digest, and a point mutation updates it in O(1):
///   digest ^= hash_fwd_row(d, old...) ^ hash_fwd_row(d, new...).
/// The bit pattern matches the pre-arena layout exactly, keeping recorded
/// fingerprints (serve goldens, checkpoints) valid across the refactor.
[[nodiscard]] inline std::uint64_t hash_fwd_row(
    std::uint64_t dest_index, int cost,
    std::span<const Topology::Neighbor> hops) {
  // FNV-1a over the row contents, seeded by the destination key so that
  // swapping two rows' contents never cancels out under XOR.
  std::uint64_t h = 0xcbf29ce484222325ull ^ (dest_index * 0x9e3779b97f4a7c15ull);
  const auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 0x100000001b3ull;
    h ^= h >> 29;
  };
  mix(static_cast<std::uint64_t>(static_cast<std::int64_t>(cost)));
  mix(hops.size());
  for (const Topology::Neighbor& nb : hops) {
    mix(nb.node.value());
    mix(nb.link.value());
  }
  return h;
}

[[nodiscard]] inline std::uint64_t hash_fwd_entry(
    std::uint64_t dest_index, const RoutingTables& tables,
    const RoutingTables::Entry& e) {
  return hash_fwd_row(dest_index, e.cost, tables.hops(e));
}

/// Forwarding tables for every switch in a topology.
struct RoutingState {
  DestGranularity granularity = DestGranularity::kEdge;
  /// k/2 — maps a HostId to its edge-switch prefix index under kEdge.
  std::uint32_t hosts_per_edge = 1;
  RoutingTables tables;  ///< per-switch views indexed by SwitchId
  /// Per-switch XOR-of-row-hashes fingerprints (see hash_fwd_row),
  /// maintained by the routing engine.  Empty on states built by hand;
  /// digest-aware code falls back to deep compares then.
  std::vector<std::uint64_t> digests;  ///< indexed by SwitchId

  /// True when the engine-maintained digests cover every table.
  [[nodiscard]] bool has_digests() const {
    return !tables.empty() && digests.size() == tables.size();
  }

  /// Table index for packets destined to `dst`.
  [[nodiscard]] std::uint64_t dest_index(HostId dst) const {
    return granularity == DestGranularity::kEdge
               ? dst.value() / hosts_per_edge
               : dst.value();
  }

  [[nodiscard]] RoutingTables::TableView table(SwitchId s) const {
    return tables.at(s.value());
  }
  [[nodiscard]] RoutingTables::TableRef table(SwitchId s) {
    return tables.at(s.value());
  }

  /// Destinations per table (S for kEdge, host count for kHost).
  [[nodiscard]] std::uint64_t num_dests() const { return tables.num_dests(); }
};

/// Whole-state fingerprint: a position-aware fold of the per-switch digests
/// (plus the granularity parameters), so two states differ in the
/// fingerprint iff any switch's table content differs.  Requires
/// has_digests(); the position multiplier keeps a swap of two switches'
/// tables from cancelling the way a plain XOR would.
[[nodiscard]] inline std::uint64_t state_fingerprint(const RoutingState& s) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  const auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 0x100000001b3ull;
    h ^= h >> 29;
  };
  mix(s.granularity == DestGranularity::kEdge ? 1u : 2u);
  mix(s.hosts_per_edge);
  mix(s.digests.size());
  for (std::size_t i = 0; i < s.digests.size(); ++i) {
    mix((i + 1) * 0x9e3779b97f4a7c15ull);
    mix(s.digests[i]);
  }
  return h;
}

}  // namespace aspen
