// Forwarding state for up*/down* routing.
//
// Destinations are keyed by *edge switch* (the L_1 switch a host attaches
// to), mirroring the prefix-based aggregation real fabrics use (§5.3): all
// hosts under one edge switch share forwarding entries.  Each entry is the
// ECMP set of next hops on shortest valid up*/down* paths.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "src/topo/topology.h"
#include "src/util/ids.h"

namespace aspen {

/// What a forwarding-table destination key denotes.
///
/// kEdge aggregates all hosts under one L_1 switch into a single prefix —
/// the compact state real fabrics use (§5.3).  kHost gives every host its
/// own entry; host ("1st hop") link failures then become visible to the
/// routing layer, which is what the paper's "failed each link in each
/// tree" sweeps assume.
enum class DestGranularity { kEdge, kHost };

/// Forwarding entries of a single switch: per destination edge switch, the
/// set of usable next hops (and the path cost backing them, for protocol
/// code that needs to compare alternatives).
class ForwardingTable {
 public:
  ForwardingTable() = default;
  explicit ForwardingTable(std::uint64_t num_edge_switches)
      : entries_(num_edge_switches) {}

  struct Entry {
    std::vector<Topology::Neighbor> next_hops;
    /// Hops to the destination edge switch via those next hops;
    /// kUnreachable when next_hops is empty.
    int cost = kUnreachable;
    static constexpr int kUnreachable = -1;

    [[nodiscard]] bool reachable() const { return !next_hops.empty(); }
  };

  [[nodiscard]] const Entry& entry(std::uint64_t dest_edge_index) const {
    return entries_.at(dest_edge_index);
  }
  [[nodiscard]] Entry& entry(std::uint64_t dest_edge_index) {
    return entries_.at(dest_edge_index);
  }

  [[nodiscard]] std::uint64_t size() const { return entries_.size(); }

  /// Number of destinations currently reachable.
  [[nodiscard]] std::uint64_t reachable_count() const {
    std::uint64_t count = 0;
    for (const Entry& e : entries_) {
      if (e.reachable()) ++count;
    }
    return count;
  }

  friend bool operator==(const ForwardingTable&,
                         const ForwardingTable&) = default;

 private:
  std::vector<Entry> entries_;
};

inline bool operator==(const ForwardingTable::Entry& a,
                       const ForwardingTable::Entry& b) {
  return a.next_hops == b.next_hops && a.cost == b.cost;
}

/// Order-independent fingerprint of one forwarding entry, keyed by its
/// destination index.  Per-table digests are the XOR of all row hashes, so
/// an engine rewriting rows in any order (or in parallel) accumulates the
/// same digest, and a point mutation updates it in O(1):
///   digest ^= hash_fwd_entry(d, old) ^ hash_fwd_entry(d, new).
[[nodiscard]] inline std::uint64_t hash_fwd_entry(
    std::uint64_t dest_index, const ForwardingTable::Entry& e) {
  // FNV-1a over the row contents, seeded by the destination key so that
  // swapping two rows' contents never cancels out under XOR.
  std::uint64_t h = 0xcbf29ce484222325ull ^ (dest_index * 0x9e3779b97f4a7c15ull);
  const auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 0x100000001b3ull;
    h ^= h >> 29;
  };
  mix(static_cast<std::uint64_t>(static_cast<std::int64_t>(e.cost)));
  mix(e.next_hops.size());
  for (const Topology::Neighbor& nb : e.next_hops) {
    mix(nb.node.value());
    mix(nb.link.value());
  }
  return h;
}

/// Forwarding tables for every switch in a topology.
struct RoutingState {
  DestGranularity granularity = DestGranularity::kEdge;
  /// k/2 — maps a HostId to its edge-switch prefix index under kEdge.
  std::uint32_t hosts_per_edge = 1;
  std::vector<ForwardingTable> tables;  ///< indexed by SwitchId
  /// Per-switch XOR-of-row-hashes fingerprints (see hash_fwd_entry),
  /// maintained by the routing engine.  Empty on states built by hand;
  /// digest-aware code falls back to deep compares then.
  std::vector<std::uint64_t> digests;  ///< indexed by SwitchId

  /// True when the engine-maintained digests cover every table.
  [[nodiscard]] bool has_digests() const {
    return !tables.empty() && digests.size() == tables.size();
  }

  /// Table index for packets destined to `dst`.
  [[nodiscard]] std::uint64_t dest_index(HostId dst) const {
    return granularity == DestGranularity::kEdge
               ? dst.value() / hosts_per_edge
               : dst.value();
  }

  [[nodiscard]] const ForwardingTable& table(SwitchId s) const {
    return tables.at(s.value());
  }
  [[nodiscard]] ForwardingTable& table(SwitchId s) {
    return tables.at(s.value());
  }

  /// Destinations per table (S for kEdge, host count for kHost).
  [[nodiscard]] std::uint64_t num_dests() const {
    return tables.empty() ? 0 : tables.front().size();
  }
};

/// Whole-state fingerprint: a position-aware fold of the per-switch digests
/// (plus the granularity parameters), so two states differ in the
/// fingerprint iff any switch's table content differs.  Requires
/// has_digests(); the position multiplier keeps a swap of two switches'
/// tables from cancelling the way a plain XOR would.
[[nodiscard]] inline std::uint64_t state_fingerprint(const RoutingState& s) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  const auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 0x100000001b3ull;
    h ^= h >> 29;
  };
  mix(s.granularity == DestGranularity::kEdge ? 1u : 2u);
  mix(s.hosts_per_edge);
  mix(s.digests.size());
  for (std::size_t i = 0; i < s.digests.size(); ++i) {
    mix((i + 1) * 0x9e3779b97f4a7c15ull);
    mix(s.digests[i]);
  }
  return h;
}

}  // namespace aspen
