#include "src/routing/updown.h"

#include <algorithm>
#include <atomic>
#include <limits>
#include <vector>

#include "src/obs/obs.h"
#include "src/util/contracts.h"
#include "src/util/parallel.h"
#include "src/util/status.h"

namespace aspen {

namespace {

constexpr int kInf = std::numeric_limits<int>::max() / 2;
constexpr int kUnreachable = ForwardingTable::Entry::kUnreachable;

inline SwitchId switch_id(std::uint64_t s) {
  return SwitchId{static_cast<std::uint32_t>(s)};
}

// Contiguous switch-id range [begin, end) per level, precomputed once so
// the per-destination loops iterate raw ids instead of calling
// switch_at/switches_at_level (and their bounds checks) per switch.
struct LevelRange {
  std::uint64_t begin = 0;
  std::uint64_t end = 0;
};

std::vector<LevelRange> make_level_ranges(const Topology& topo) {
  std::vector<LevelRange> ranges(static_cast<std::size_t>(topo.levels()) + 1);
  for (Level i = 1; i <= topo.levels(); ++i) {
    const std::uint64_t begin = topo.switch_at(i, 0).value();
    ranges[static_cast<std::size_t>(i)] = {
        begin, begin + topo.params().switches_at_level(i)};
  }
  return ranges;
}

// Per-worker scratch arena: both buffers are allocated once (per worker,
// per topology size) and reused across every destination row, replacing
// the two full-size vector allocations the old engine made per row.
struct Scratch {
  std::vector<char> down_reach;
  std::vector<int> best;
};

// XOR-updates a per-switch digest.  Atomic because destination jobs on
// different threads land deltas on the same switch concurrently; XOR
// commutes, so the result is independent of interleaving and thread count.
inline void apply_digest_delta(std::uint64_t& digest, std::uint64_t delta) {
  std::atomic_ref<std::uint64_t>(digest).fetch_xor(delta,
                                                   std::memory_order_relaxed);
}

// Fills (or rewrites, under incremental recompute) the row of every switch
// for one destination, keeping the per-switch digests in sync via
// old^new row-hash deltas.  For edge granularity the destination is the
// edge switch itself (base cost 0 at the edge); for host granularity it is
// one host, whose (possibly failed) host link adds a final hop below the
// edge switch.
void route_one_destination(const Topology& topo,
                           std::span<const LevelRange> ranges,
                           const LinkStateOverlay& overlay,
                           SwitchId dest_edge, std::uint64_t dest_index,
                           const Topology::Neighbor* host_link,
                           RoutingState& state, Scratch& scratch) {
  const std::uint64_t num_switches = topo.num_switches();
  const bool host_reachable =
      host_link == nullptr || overlay.is_up(host_link->link);

  // Phase 1 — downward reachability.  Any all-downward path from level i to
  // the destination edge (level 1) has exactly i−1 hops, so we only track
  // *whether* a switch reaches the destination going strictly down.
  std::vector<char>& down_reach = scratch.down_reach;
  down_reach.assign(num_switches, 0);
  if (host_reachable) down_reach[dest_edge.value()] = 1;
  for (Level i = 2; i <= topo.levels(); ++i) {
    const LevelRange range = ranges[static_cast<std::size_t>(i)];
    for (std::uint64_t s = range.begin; s < range.end; ++s) {
      for (const Topology::Neighbor& nb : topo.down_neighbors(switch_id(s))) {
        if (!overlay.is_up(nb.link)) continue;
        if (!topo.is_switch_node(nb.node)) continue;
        if (down_reach[nb.node.value()]) {
          down_reach[s] = 1;
          break;
        }
      }
    }
  }

  // Extra hop for the host link in host granularity.
  const int base = host_link != nullptr ? 1 : 0;

  // Phase 2 — best valid up*/down* cost, processed top level first so each
  // switch can consult its parents' already-final costs.
  std::vector<int>& best = scratch.best;
  best.assign(num_switches, kInf);
  for (Level i = topo.levels(); i >= 1; --i) {
    const LevelRange range = ranges[static_cast<std::size_t>(i)];
    for (std::uint64_t s = range.begin; s < range.end; ++s) {
      ForwardingTable::Entry& entry = state.tables[s].entry(dest_index);
      const std::uint64_t old_hash = hash_fwd_entry(dest_index, entry);
      entry.next_hops.clear();
      entry.cost = kUnreachable;

      if (down_reach[s]) {
        best[s] = i - 1 + base;
        if (s == dest_edge.value()) {
          if (host_link != nullptr) {
            // Host granularity: the final hop is the host link itself.
            entry.next_hops.push_back(*host_link);
            entry.cost = 1;
          } else {
            // Edge granularity: local delivery, no switch next hop.
            entry.cost = 0;
          }
        } else {
          for (const Topology::Neighbor& nb :
               topo.down_neighbors(switch_id(s))) {
            if (!overlay.is_up(nb.link)) continue;
            if (!topo.is_switch_node(nb.node)) continue;
            if (down_reach[nb.node.value()]) entry.next_hops.push_back(nb);
          }
          // Down-reachability above L1 came from some live downward edge.
          ASPEN_ASSERT(!entry.next_hops.empty(),
                       "down-reachable switch has no live downward hop");
          entry.cost = best[s];
        }
      } else {
        // Must climb: ECMP over parents with the minimal best cost.
        int min_parent = kInf;
        for (const Topology::Neighbor& nb : topo.up_neighbors(switch_id(s))) {
          if (!overlay.is_up(nb.link)) continue;
          min_parent = std::min(min_parent, best[nb.node.value()]);
        }
        if (min_parent < kInf) {  // else: destination unreachable from s
          best[s] = 1 + min_parent;
          for (const Topology::Neighbor& nb :
               topo.up_neighbors(switch_id(s))) {
            if (!overlay.is_up(nb.link)) continue;
            if (best[nb.node.value()] == min_parent) {
              entry.next_hops.push_back(nb);
            }
          }
          ASPEN_ASSERT(!entry.next_hops.empty(),
                       "a finite parent cost implies at least one ECMP uplink");
          entry.cost = best[s];
        }
      }

      const std::uint64_t new_hash = hash_fwd_entry(dest_index, entry);
      if (old_hash != new_hash) {
        apply_digest_delta(state.digests[s], old_hash ^ new_hash);
      }
    }
  }
}

// Granularity dispatch for one destination row.
void route_dest(const Topology& topo, std::span<const LevelRange> ranges,
                const LinkStateOverlay& overlay, std::uint64_t dest,
                RoutingState& state, Scratch& scratch) {
  if (state.granularity == DestGranularity::kEdge) {
    route_one_destination(topo, ranges, overlay,
                          switch_id(ranges[1].begin + dest), dest, nullptr,
                          state, scratch);
  } else {
    const HostId host{static_cast<std::uint32_t>(dest)};
    const Topology::Neighbor uplink = topo.host_uplink(host);
    ASPEN_ASSERT(uplink.link.valid(), "every host has a wired uplink");
    // The host's entry is keyed on the *downlink* direction: the same
    // physical link, seen from the edge switch.
    const Topology::Neighbor downlink{topo.node_of(host), uplink.link};
    route_one_destination(topo, ranges, overlay, topo.edge_switch_of(host),
                          dest, &downlink, state, scratch);
  }
}

// Parent costs feed the up-climb patch below.  A switch's entry cost is
// exactly its phase-2 `best` value, with kUnreachable standing in for kInf
// (the engine writes entry.cost = best whenever best is finite).
inline int cost_as_best(const ForwardingTable::Entry& e) {
  return e.cost == kUnreachable ? kInf : e.cost;
}

}  // namespace

RoutingState compute_updown_routes(const Topology& topo,
                                   const LinkStateOverlay& overlay,
                                   DestGranularity granularity, int threads) {
  RoutingState state;
  state.granularity = granularity;
  state.hosts_per_edge = static_cast<std::uint32_t>(topo.ports()) / 2;
  const std::uint64_t num_dests = granularity == DestGranularity::kEdge
                                      ? topo.params().S
                                      : topo.num_hosts();
  state.tables.assign(topo.num_switches(), ForwardingTable(num_dests));

  // Seed every digest with the all-default-rows fingerprint, so the uniform
  // old^new deltas in route_one_destination land on the true table digest.
  std::uint64_t empty_digest = 0;
  const ForwardingTable::Entry default_entry{};
  for (std::uint64_t d = 0; d < num_dests; ++d) {
    empty_digest ^= hash_fwd_entry(d, default_entry);
  }
  state.digests.assign(topo.num_switches(), empty_digest);

  const std::vector<LevelRange> ranges = make_level_ranges(topo);
  const int workers = parallel::effective_num_threads(threads);
  std::vector<Scratch> scratch(static_cast<std::size_t>(workers));
  parallel::parallel_for_blocks(
      num_dests, workers,
      [&](std::uint64_t begin, std::uint64_t end, int worker) {
        Scratch& sc = scratch[static_cast<std::size_t>(worker)];
        for (std::uint64_t dest = begin; dest < end; ++dest) {
          route_dest(topo, ranges, overlay, dest, state, sc);
        }
      });
  // Emitted once per computation, after the worker pool joins — never from
  // inside the parallel loop — so traces stay byte-identical across thread
  // counts (the golden-trace determinism contract).
  obs::count("routing.full_recomputes");
  obs::count("routing.rows_full_recompute", num_dests);
  obs::trace_event(0.0, obs::TraceKind::kRouteFull,
                   static_cast<std::uint32_t>(topo.num_switches()), 0,
                   num_dests,
                   granularity == DestGranularity::kEdge ? "edge" : "host");
  return state;
}

RoutingState compute_updown_routes(const Topology& topo,
                                   const LinkStateOverlay& overlay,
                                   DestGranularity granularity) {
  return compute_updown_routes(topo, overlay, granularity, /*threads=*/0);
}

RoutingState compute_updown_routes(const Topology& topo,
                                   const LinkStateOverlay& overlay) {
  return compute_updown_routes(topo, overlay, DestGranularity::kEdge);
}

RoutingState compute_updown_routes(const Topology& topo) {
  return compute_updown_routes(topo, LinkStateOverlay(topo),
                               DestGranularity::kEdge);
}

RecomputeStats recompute_updown_routes(const Topology& topo,
                                       const LinkStateOverlay& overlay,
                                       RoutingState& state,
                                       std::span<const LinkId> changed_links,
                                       int threads) {
  const std::uint64_t num_switches = topo.num_switches();
  ASPEN_REQUIRE(state.tables.size() == num_switches,
                "incremental recompute needs a state built for this topology");
  const std::uint64_t num_dests = state.num_dests();
  const std::uint64_t expected_dests =
      state.granularity == DestGranularity::kEdge ? topo.params().S
                                                  : topo.num_hosts();
  ASPEN_REQUIRE(num_dests == expected_dests,
                "routing state granularity does not match the topology");

  RecomputeStats stats;
  stats.total_dests = num_dests;
  // Aggregate instrumentation only (after any worker pool joins): one
  // metric bump and one trace record per recompute call, keeping the event
  // stream independent of the thread count.
  const auto note_patch = [&] {
    obs::count("routing.incremental_patches");
    obs::count("routing.rows_full_recompute", stats.full_rows);
    obs::count("routing.rows_escalated", stats.escalated_rows);
    obs::count("routing.rows_patched", stats.patched_switches);
    obs::trace_event(0.0, obs::TraceKind::kRoutePatch,
                     static_cast<std::uint32_t>(changed_links.size()),
                     static_cast<std::uint32_t>(stats.patched_switches),
                     stats.full_rows, "incremental");
  };
  if (changed_links.empty()) {
    note_patch();
    return stats;
  }

  if (!state.has_digests()) {
    // Hand-built base state: derive the digests once so maintenance works.
    state.digests.assign(num_switches, 0);
    for (std::uint64_t s = 0; s < num_switches; ++s) {
      std::uint64_t h = 0;
      for (std::uint64_t d = 0; d < num_dests; ++d) {
        h ^= hash_fwd_entry(d, state.tables[s].entry(d));
      }
      state.digests[s] = h;
    }
  }

  const std::vector<LevelRange> ranges = make_level_ranges(topo);
  const bool host_gran = state.granularity == DestGranularity::kHost;
  const std::uint64_t hosts_per_edge = state.hosts_per_edge;

  // ---- Dirty-set derivation (see DESIGN.md "routing engine") ----
  //
  // For a changed inter-switch link with lower endpoint v, only two kinds
  // of rows can differ from a fresh full compute:
  //  - destinations in v's *structural* subtree: anything about their rows
  //    may change (down-reachability shifts) — recompute those rows fully;
  //  - every other destination: a strictly-down path to it can never cross
  //    the changed link, so the only affected row is v's own up-climb.  If
  //    v's cost is preserved no other switch notices; if it changes, the
  //    destination escalates to a full row recompute.
  // A changed host link is invisible at edge granularity and dirties just
  // the attached host's row at host granularity.
  std::vector<char> dirty(num_dests, 0);
  std::uint64_t num_dirty = 0;
  const auto mark_dest = [&](std::uint64_t d) {
    if (!dirty[d]) {
      dirty[d] = 1;
      ++num_dirty;
    }
  };

  std::vector<char> visited(num_switches, 0);
  std::vector<std::uint64_t> stack;
  const auto mark_subtree = [&](SwitchId v) {
    if (visited[v.value()]) return;
    visited[v.value()] = 1;
    stack.clear();
    stack.push_back(v.value());
    while (!stack.empty()) {
      const std::uint64_t s = stack.back();
      stack.pop_back();
      if (s >= ranges[1].begin && s < ranges[1].end) {
        const std::uint64_t edge_index = s - ranges[1].begin;
        if (host_gran) {
          for (std::uint64_t h = 0; h < hosts_per_edge; ++h) {
            mark_dest(edge_index * hosts_per_edge + h);
          }
        } else {
          mark_dest(edge_index);
        }
        continue;
      }
      for (const Topology::Neighbor& nb : topo.down_neighbors(switch_id(s))) {
        if (!topo.is_switch_node(nb.node)) continue;
        if (!visited[nb.node.value()]) {
          visited[nb.node.value()] = 1;
          stack.push_back(nb.node.value());
        }
      }
    }
  };

  std::vector<char> in_patch(num_switches, 0);
  std::vector<SwitchId> patch_vs;
  for (const LinkId l : changed_links) {
    const Topology::LinkRec& rec = topo.link(l);
    if (rec.upper_level == 1) {
      if (host_gran) mark_dest(topo.host_of(rec.lower).value());
      continue;
    }
    const SwitchId v = topo.switch_of(rec.lower);
    if (!in_patch[v.value()]) {
      in_patch[v.value()] = 1;
      patch_vs.push_back(v);
    }
    mark_subtree(v);
  }
  if (num_dirty == 0 && patch_vs.empty()) {
    note_patch();
    return stats;
  }

  // ---- Row recompute / patch fan-out ----
  //
  // Each destination is handled end-to-end by one worker, so every write
  // for a row happens on the thread that owns it; digests are the only
  // shared writes (atomic XOR).
  const int workers = parallel::effective_num_threads(threads);
  struct WorkerStats {
    std::uint64_t full = 0;
    std::uint64_t escalated = 0;
    std::uint64_t patched = 0;
  };
  std::vector<WorkerStats> wstats(static_cast<std::size_t>(workers));
  std::vector<Scratch> scratch(static_cast<std::size_t>(workers));

  parallel::parallel_for_blocks(
      num_dests, workers,
      [&](std::uint64_t begin, std::uint64_t end, int worker) {
        Scratch& sc = scratch[static_cast<std::size_t>(worker)];
        WorkerStats& ws = wstats[static_cast<std::size_t>(worker)];
        std::vector<Topology::Neighbor> hops;
        for (std::uint64_t d = begin; d < end; ++d) {
          if (dirty[d]) {
            route_dest(topo, ranges, overlay, d, state, sc);
            ++ws.full;
            continue;
          }
          // Patch pass 1 (read-only): would any patched switch's cost
          // change for this destination?  Its parents' rows are final —
          // nothing for this destination has been written yet.
          bool escalate = false;
          for (const SwitchId v : patch_vs) {
            const ForwardingTable::Entry& cur =
                state.tables[v.value()].entry(d);
            int min_parent = kInf;
            for (const Topology::Neighbor& nb : topo.up_neighbors(v)) {
              if (!overlay.is_up(nb.link)) continue;
              min_parent = std::min(
                  min_parent,
                  cost_as_best(state.tables[nb.node.value()].entry(d)));
            }
            const int new_cost =
                min_parent >= kInf ? kUnreachable : 1 + min_parent;
            if (new_cost != cur.cost) {
              escalate = true;
              break;
            }
          }
          if (escalate) {
            route_dest(topo, ranges, overlay, d, state, sc);
            ++ws.full;
            ++ws.escalated;
            continue;
          }
          // Patch pass 2: costs are all preserved, so only the patched
          // switches' ECMP uplink sets can differ — rebuild them in place
          // (same up_neighbors enumeration order as the full engine).
          for (const SwitchId v : patch_vs) {
            ForwardingTable::Entry& cur = state.tables[v.value()].entry(d);
            hops.clear();
            if (cur.cost != kUnreachable) {
              const int want = cur.cost - 1;
              for (const Topology::Neighbor& nb : topo.up_neighbors(v)) {
                if (!overlay.is_up(nb.link)) continue;
                if (cost_as_best(state.tables[nb.node.value()].entry(d)) ==
                    want) {
                  hops.push_back(nb);
                }
              }
            }
            if (hops != cur.next_hops) {
              const std::uint64_t old_hash = hash_fwd_entry(d, cur);
              cur.next_hops = hops;
              apply_digest_delta(state.digests[v.value()],
                                 old_hash ^ hash_fwd_entry(d, cur));
              ++ws.patched;
            }
          }
        }
      });

  for (const WorkerStats& ws : wstats) {
    stats.full_rows += ws.full;
    stats.escalated_rows += ws.escalated;
    stats.patched_switches += ws.patched;
  }
  note_patch();
  return stats;
}

std::uint64_t switches_with_changed_tables(const RoutingState& before,
                                           const RoutingState& after) {
  ASPEN_REQUIRE(before.tables.size() == after.tables.size(),
                "routing states describe different topologies");
  // Digest mismatch proves inequality (equal tables hash equal), so the
  // per-switch deep compare only runs to confirm digest-equal tables.
  const bool use_digests = before.has_digests() && after.has_digests();
  std::uint64_t changed = 0;
  for (std::size_t s = 0; s < before.tables.size(); ++s) {
    if (use_digests && before.digests[s] != after.digests[s]) {
      ++changed;
      continue;
    }
    if (!(before.tables[s] == after.tables[s])) ++changed;
  }
  return changed;
}

bool tables_match_by_digest(const RoutingState& before,
                            const RoutingState& after) {
  ASPEN_REQUIRE(before.has_digests() && after.has_digests(),
                "digest matching needs engine-built states");
  ASPEN_REQUIRE(before.tables.size() == after.tables.size(),
                "routing states describe different topologies");
  return before.digests == after.digests;
}

}  // namespace aspen
