#include "src/routing/updown.h"

#include <limits>

#include "src/util/contracts.h"
#include "src/util/status.h"

namespace aspen {

namespace {

constexpr int kInf = std::numeric_limits<int>::max() / 2;

// Fills the tables of every switch for one destination.  For edge
// granularity the destination is the edge switch itself (base cost 0 at the
// edge); for host granularity it is one host, whose (possibly failed) host
// link adds a final hop below the edge switch.
void route_one_destination(const Topology& topo,
                           const LinkStateOverlay& overlay,
                           SwitchId dest_edge, std::uint64_t dest_index,
                           const Topology::Neighbor* host_link,
                           RoutingState& state) {
  const std::uint64_t num_switches = topo.num_switches();
  const bool host_reachable =
      host_link == nullptr || overlay.is_up(host_link->link);

  // Phase 1 — downward reachability.  Any all-downward path from level i to
  // the destination edge (level 1) has exactly i−1 hops, so we only track
  // *whether* a switch reaches the destination going strictly down.
  std::vector<char> down_reach(num_switches, 0);
  if (host_reachable) down_reach[dest_edge.value()] = 1;
  for (Level i = 2; i <= topo.levels(); ++i) {
    for (std::uint64_t idx = 0; idx < topo.params().switches_at_level(i);
         ++idx) {
      const SwitchId s = topo.switch_at(i, idx);
      for (const Topology::Neighbor& nb : topo.down_neighbors(s)) {
        if (!overlay.is_up(nb.link)) continue;
        if (!topo.is_switch_node(nb.node)) continue;
        if (down_reach[nb.node.value()]) {
          down_reach[s.value()] = 1;
          break;
        }
      }
    }
  }

  // Extra hop for the host link in host granularity.
  const int base = host_link != nullptr ? 1 : 0;

  // Phase 2 — best valid up*/down* cost, processed top level first so each
  // switch can consult its parents' already-final costs.
  std::vector<int> best(num_switches, kInf);
  for (Level i = topo.levels(); i >= 1; --i) {
    for (std::uint64_t idx = 0; idx < topo.params().switches_at_level(i);
         ++idx) {
      const SwitchId s = topo.switch_at(i, idx);
      ForwardingTable::Entry& entry = state.table(s).entry(dest_index);
      entry.next_hops.clear();
      entry.cost = ForwardingTable::Entry::kUnreachable;

      if (down_reach[s.value()]) {
        best[s.value()] = i - 1 + base;
        if (s == dest_edge) {
          if (host_link != nullptr) {
            // Host granularity: the final hop is the host link itself.
            entry.next_hops.push_back(*host_link);
            entry.cost = 1;
          } else {
            // Edge granularity: local delivery, no switch next hop.
            entry.cost = 0;
          }
          continue;
        }
        for (const Topology::Neighbor& nb : topo.down_neighbors(s)) {
          if (!overlay.is_up(nb.link)) continue;
          if (!topo.is_switch_node(nb.node)) continue;
          if (down_reach[nb.node.value()]) entry.next_hops.push_back(nb);
        }
        // Down-reachability above L1 came from some live downward edge.
        ASPEN_ASSERT(!entry.next_hops.empty(),
                     "down-reachable switch has no live downward hop");
        entry.cost = best[s.value()];
        continue;
      }

      // Must climb: ECMP over parents with the minimal best cost.
      int min_parent = kInf;
      for (const Topology::Neighbor& nb : topo.up_neighbors(s)) {
        if (!overlay.is_up(nb.link)) continue;
        min_parent = std::min(min_parent, best[nb.node.value()]);
      }
      if (min_parent >= kInf) continue;  // destination unreachable from s
      best[s.value()] = 1 + min_parent;
      for (const Topology::Neighbor& nb : topo.up_neighbors(s)) {
        if (!overlay.is_up(nb.link)) continue;
        if (best[nb.node.value()] == min_parent) entry.next_hops.push_back(nb);
      }
      ASPEN_ASSERT(!entry.next_hops.empty(),
                   "a finite parent cost implies at least one ECMP uplink");
      entry.cost = best[s.value()];
    }
  }
}

}  // namespace

RoutingState compute_updown_routes(const Topology& topo,
                                   const LinkStateOverlay& overlay,
                                   DestGranularity granularity) {
  RoutingState state;
  state.granularity = granularity;
  state.hosts_per_edge = static_cast<std::uint32_t>(topo.ports()) / 2;
  const std::uint64_t num_dests = granularity == DestGranularity::kEdge
                                      ? topo.params().S
                                      : topo.num_hosts();
  state.tables.assign(topo.num_switches(), ForwardingTable(num_dests));
  for (std::uint64_t dest = 0; dest < num_dests; ++dest) {
    if (granularity == DestGranularity::kEdge) {
      route_one_destination(topo, overlay, topo.switch_at(1, dest), dest,
                            nullptr, state);
    } else {
      const HostId host{static_cast<std::uint32_t>(dest)};
      const Topology::Neighbor uplink = topo.host_uplink(host);
      ASPEN_ASSERT(uplink.link.valid(), "every host has a wired uplink");
      // The host's entry is keyed on the *downlink* direction: the same
      // physical link, seen from the edge switch.
      const Topology::Neighbor downlink{topo.node_of(host), uplink.link};
      route_one_destination(topo, overlay, topo.edge_switch_of(host), dest,
                            &downlink, state);
    }
  }
  return state;
}

RoutingState compute_updown_routes(const Topology& topo,
                                   const LinkStateOverlay& overlay) {
  return compute_updown_routes(topo, overlay, DestGranularity::kEdge);
}

RoutingState compute_updown_routes(const Topology& topo) {
  return compute_updown_routes(topo, LinkStateOverlay(topo),
                               DestGranularity::kEdge);
}

std::uint64_t switches_with_changed_tables(const RoutingState& before,
                                           const RoutingState& after) {
  ASPEN_REQUIRE(before.tables.size() == after.tables.size(),
                "routing states describe different topologies");
  std::uint64_t changed = 0;
  for (std::size_t s = 0; s < before.tables.size(); ++s) {
    if (!(before.tables[s] == after.tables[s])) ++changed;
  }
  return changed;
}

}  // namespace aspen
