#include "src/routing/updown.h"

#include <algorithm>
#include <limits>
#include <numeric>
#include <vector>

#include "src/obs/obs.h"
#include "src/util/contracts.h"
#include "src/util/parallel.h"
#include "src/util/status.h"

namespace aspen {

namespace {

constexpr int kInf = std::numeric_limits<int>::max() / 2;
constexpr int kUnreachable = RoutingTables::kUnreachable;

using Entry = RoutingTables::Entry;
using Neighbor = Topology::Neighbor;

inline SwitchId switch_id(std::uint64_t s) {
  return SwitchId{static_cast<std::uint32_t>(s)};
}

// Unchecked liveness probe over the overlay's word bitset — the engine
// touches every link per destination row, so the per-call bounds check of
// LinkStateOverlay::is_up would dominate.
inline bool link_up(const std::uint64_t* up, std::uint32_t link) {
  return (up[link >> 6] >> (link & 63)) & 1u;
}

// Contiguous switch-id range [begin, end) per level, precomputed once so
// the per-destination loops iterate raw ids instead of calling
// switch_at/switches_at_level (and their bounds checks) per switch.
struct LevelRange {
  std::uint64_t begin = 0;
  std::uint64_t end = 0;
};

std::vector<LevelRange> make_level_ranges(const Topology& topo) {
  std::vector<LevelRange> ranges(static_cast<std::size_t>(topo.levels()) + 1);
  for (Level i = 1; i <= topo.levels(); ++i) {
    const std::uint64_t begin = topo.switch_at(i, 0).value();
    ranges[static_cast<std::size_t>(i)] = {
        begin, begin + topo.params().switches_at_level(i)};
  }
  return ranges;
}

// Per-worker scratch arena: every buffer is allocated once per worker and
// reused across all that worker's destination rows.  digest_delta
// accumulates this worker's old^new row-hash XORs per switch; deltas merge
// into the shared digests only after the pool joins, so workers never write
// shared memory (the atomic XOR per row this replaced was the one remaining
// cross-thread write in the hot loop).  XOR commutes, so the merged digests
// are independent of the chunk→worker deal and the thread count.
struct Scratch {
  std::vector<char> down_reach;
  std::vector<int> best;
  std::vector<std::uint64_t> digest_delta;
};

// Destinations per scheduling chunk: size chunks so one chunk's writes —
// its dest-major meta rows plus their next-hop pool slices — stay within a
// cache-friendly footprint (~1 MiB), while the round-robin chunk deal in
// parallel_for_chunks load-balances the ragged tail.
std::uint64_t chunk_for(std::uint64_t num_switches,
                        std::uint64_t pool_slots_per_dest) {
  constexpr std::uint64_t kTargetBytes = std::uint64_t{1} << 20;
  const std::uint64_t row_bytes = num_switches * sizeof(Entry) +
                                  pool_slots_per_dest * sizeof(Neighbor);
  return std::max<std::uint64_t>(1, kTargetBytes / std::max<std::uint64_t>(
                                                       1, row_bytes));
}

// Fills (or rewrites, under incremental recompute) the row of every switch
// for one destination, accumulating old^new row-hash deltas in the worker's
// digest_delta.  For edge granularity the destination is the edge switch
// itself (base cost 0 at the edge); for host granularity it is one host,
// whose (possibly failed) host link adds a final hop below the edge switch.
//
// All table access is raw arena pointers (RoutingTables::Raw) and raw CSR
// adjacency (Topology::AdjacencyView): the row for destination d is the
// contiguous meta slice raw.meta[d * num_tables ..], written in one
// streaming pass per level.  Hop writes go straight into each entry's pool
// slice; a row is always a subset of one adjacency direction, so it fits
// its fixed capacity and the engine never grows a slice.
void route_one_destination(const Topology& topo,
                           std::span<const LevelRange> ranges,
                           const std::uint64_t* up,
                           const Topology::AdjacencyView av,
                           const RoutingTables::Raw raw, SwitchId dest_edge,
                           std::uint64_t dest_index,
                           const Neighbor* host_link, Scratch& scratch) {
  const std::uint64_t num_switches = raw.num_tables;
  const bool host_reachable =
      host_link == nullptr || link_up(up, host_link->link.value());

  // Phase 1 — downward reachability.  Any all-downward path from level i to
  // the destination edge (level 1) has exactly i−1 hops, so we only track
  // *whether* a switch reaches the destination going strictly down.
  std::vector<char>& down_reach = scratch.down_reach;
  down_reach.assign(num_switches, 0);
  if (host_reachable) down_reach[dest_edge.value()] = 1;
  for (Level i = 2; i <= topo.levels(); ++i) {
    const LevelRange range = ranges[static_cast<std::size_t>(i)];
    for (std::uint64_t s = range.begin; s < range.end; ++s) {
      const Neighbor* nb = av.adj + av.split[s];
      const Neighbor* const down_end = av.adj + av.begin[s + 1];
      for (; nb != down_end; ++nb) {
        if (!link_up(up, nb->link.value())) continue;
        if (nb->node.value() >= num_switches) continue;  // host downlink
        if (down_reach[nb->node.value()]) {
          down_reach[s] = 1;
          break;
        }
      }
    }
  }

  // Extra hop for the host link in host granularity.
  const int base = host_link != nullptr ? 1 : 0;

  // Phase 2 — best valid up*/down* cost, processed top level first so each
  // switch can consult its parents' already-final costs.
  std::vector<int>& best = scratch.best;
  best.assign(num_switches, kInf);
  Entry* const row = raw.meta + dest_index * raw.num_tables;
  for (Level i = topo.levels(); i >= 1; --i) {
    const LevelRange range = ranges[static_cast<std::size_t>(i)];
    for (std::uint64_t s = range.begin; s < range.end; ++s) {
      Entry& entry = row[s];
      Neighbor* const slice = raw.pool + entry.hop_begin;
      const std::uint64_t old_hash = hash_fwd_row(
          dest_index, entry.cost, {slice, entry.hop_count});
      std::uint32_t count = 0;
      int cost = kUnreachable;

      if (down_reach[s]) {
        best[s] = i - 1 + base;
        if (s == dest_edge.value()) {
          if (host_link != nullptr) {
            // Host granularity: the final hop is the host link itself.
            slice[count++] = *host_link;
            cost = 1;
          } else {
            // Edge granularity: local delivery, no switch next hop.
            cost = 0;
          }
        } else {
          const Neighbor* nb = av.adj + av.split[s];
          const Neighbor* const down_end = av.adj + av.begin[s + 1];
          for (; nb != down_end; ++nb) {
            if (!link_up(up, nb->link.value())) continue;
            if (nb->node.value() >= num_switches) continue;
            if (down_reach[nb->node.value()]) slice[count++] = *nb;
          }
          // Down-reachability above L1 came from some live downward edge.
          ASPEN_ASSERT(count != 0,
                       "down-reachable switch has no live downward hop");
          cost = best[s];
        }
      } else {
        // Must climb: ECMP over parents with the minimal best cost.
        int min_parent = kInf;
        const Neighbor* const up_begin = av.adj + av.begin[s];
        const Neighbor* const up_end = av.adj + av.split[s];
        for (const Neighbor* nb = up_begin; nb != up_end; ++nb) {
          if (!link_up(up, nb->link.value())) continue;
          min_parent = std::min(min_parent, best[nb->node.value()]);
        }
        if (min_parent < kInf) {  // else: destination unreachable from s
          best[s] = 1 + min_parent;
          for (const Neighbor* nb = up_begin; nb != up_end; ++nb) {
            if (!link_up(up, nb->link.value())) continue;
            if (best[nb->node.value()] == min_parent) slice[count++] = *nb;
          }
          ASPEN_ASSERT(count != 0,
                       "a finite parent cost implies at least one ECMP uplink");
          cost = best[s];
        }
      }

      entry.hop_count = static_cast<std::uint16_t>(count);
      entry.cost = cost;
      const std::uint64_t new_hash =
          hash_fwd_row(dest_index, cost, {slice, count});
      if (old_hash != new_hash) {
        scratch.digest_delta[s] ^= old_hash ^ new_hash;
      }
    }
  }
}

// Granularity dispatch for one destination row.
void route_dest(const Topology& topo, std::span<const LevelRange> ranges,
                const std::uint64_t* up, const Topology::AdjacencyView av,
                const RoutingTables::Raw raw, DestGranularity granularity,
                std::uint64_t dest, Scratch& scratch) {
  if (granularity == DestGranularity::kEdge) {
    route_one_destination(topo, ranges, up, av, raw,
                          switch_id(ranges[1].begin + dest), dest, nullptr,
                          scratch);
  } else {
    const HostId host{static_cast<std::uint32_t>(dest)};
    const Neighbor uplink = topo.host_uplink(host);
    ASPEN_ASSERT(uplink.link.valid(), "every host has a wired uplink");
    // The host's entry is keyed on the *downlink* direction: the same
    // physical link, seen from the edge switch.
    const Neighbor downlink{topo.node_of(host), uplink.link};
    route_one_destination(topo, ranges, up, av, raw,
                          topo.edge_switch_of(host), dest, &downlink,
                          scratch);
  }
}

// Parent costs feed the up-climb patch below.  A switch's entry cost is
// exactly its phase-2 `best` value, with kUnreachable standing in for kInf
// (the engine writes entry.cost = best whenever best is finite).
inline int cost_as_best(const Entry& e) {
  return e.cost == kUnreachable ? kInf : e.cost;
}

// Merges the workers' private digest deltas into the shared per-switch
// digests, after the pool has joined.  XOR is order-free, so the result is
// identical at every thread count.
void merge_digest_deltas(std::span<Scratch> scratch,
                         std::vector<std::uint64_t>& digests) {
  for (const Scratch& sc : scratch) {
    for (std::uint64_t s = 0; s < sc.digest_delta.size(); ++s) {
      digests[s] ^= sc.digest_delta[s];
    }
  }
}

std::vector<Scratch> make_scratch(int workers, std::uint64_t num_switches) {
  std::vector<Scratch> scratch(static_cast<std::size_t>(workers));
  for (Scratch& sc : scratch) sc.digest_delta.assign(num_switches, 0);
  return scratch;
}

}  // namespace

RoutingState compute_updown_routes(const Topology& topo,
                                   const LinkStateOverlay& overlay,
                                   DestGranularity granularity, int threads) {
  RoutingState state;
  state.granularity = granularity;
  state.hosts_per_edge = static_cast<std::uint32_t>(topo.ports()) / 2;
  const std::uint64_t num_dests = granularity == DestGranularity::kEdge
                                      ? topo.params().S
                                      : topo.num_hosts();
  const std::vector<std::uint32_t> caps = switch_row_caps(topo);
  state.tables.reset(num_dests, caps);

  // Seed every digest with the all-default-rows fingerprint, so the uniform
  // old^new deltas in route_one_destination land on the true table digest.
  std::uint64_t empty_digest = 0;
  for (std::uint64_t d = 0; d < num_dests; ++d) {
    empty_digest ^= hash_fwd_row(d, kUnreachable, {});
  }
  state.digests.assign(topo.num_switches(), empty_digest);

  const std::vector<LevelRange> ranges = make_level_ranges(topo);
  const int workers = parallel::effective_num_threads(threads);
  std::vector<Scratch> scratch = make_scratch(workers, topo.num_switches());
  const RoutingTables::Raw raw = state.tables.raw();
  const Topology::AdjacencyView av = topo.adjacency_view();
  const std::uint64_t* up = overlay.up_words().data();
  const std::uint64_t pool_per_dest =
      std::accumulate(caps.begin(), caps.end(), std::uint64_t{0});
  parallel::parallel_for_chunks(
      num_dests, chunk_for(topo.num_switches(), pool_per_dest), workers,
      [&](std::uint64_t begin, std::uint64_t end, int worker) {
        Scratch& sc = scratch[static_cast<std::size_t>(worker)];
        for (std::uint64_t dest = begin; dest < end; ++dest) {
          route_dest(topo, ranges, up, av, raw, granularity, dest, sc);
        }
      });
  merge_digest_deltas(scratch, state.digests);
  // Emitted once per computation, after the worker pool joins — never from
  // inside the parallel loop — so traces stay byte-identical across thread
  // counts (the golden-trace determinism contract).
  obs::count("routing.full_recomputes");
  obs::count("routing.rows_full_recompute", num_dests);
  obs::trace_event(0.0, obs::TraceKind::kRouteFull,
                   static_cast<std::uint32_t>(topo.num_switches()), 0,
                   num_dests,
                   granularity == DestGranularity::kEdge ? "edge" : "host");
  return state;
}

RoutingState compute_updown_routes(const Topology& topo,
                                   const LinkStateOverlay& overlay,
                                   DestGranularity granularity) {
  return compute_updown_routes(topo, overlay, granularity, /*threads=*/0);
}

RoutingState compute_updown_routes(const Topology& topo,
                                   const LinkStateOverlay& overlay) {
  return compute_updown_routes(topo, overlay, DestGranularity::kEdge);
}

RoutingState compute_updown_routes(const Topology& topo) {
  return compute_updown_routes(topo, LinkStateOverlay(topo),
                               DestGranularity::kEdge);
}

RecomputeStats recompute_updown_routes(const Topology& topo,
                                       const LinkStateOverlay& overlay,
                                       RoutingState& state,
                                       std::span<const LinkId> changed_links,
                                       int threads) {
  const std::uint64_t num_switches = topo.num_switches();
  ASPEN_REQUIRE(state.tables.size() == num_switches,
                "incremental recompute needs a state built for this topology");
  const std::uint64_t num_dests = state.num_dests();
  const std::uint64_t expected_dests =
      state.granularity == DestGranularity::kEdge ? topo.params().S
                                                  : topo.num_hosts();
  ASPEN_REQUIRE(num_dests == expected_dests,
                "routing state granularity does not match the topology");

  RecomputeStats stats;
  stats.total_dests = num_dests;
  // Aggregate instrumentation only (after any worker pool joins): one
  // metric bump and one trace record per recompute call, keeping the event
  // stream independent of the thread count.
  const auto note_patch = [&] {
    obs::count("routing.incremental_patches");
    obs::count("routing.rows_full_recompute", stats.full_rows);
    obs::count("routing.rows_escalated", stats.escalated_rows);
    obs::count("routing.rows_patched", stats.patched_switches);
    obs::trace_event(0.0, obs::TraceKind::kRoutePatch,
                     static_cast<std::uint32_t>(changed_links.size()),
                     static_cast<std::uint32_t>(stats.patched_switches),
                     stats.full_rows, "incremental");
  };
  if (changed_links.empty()) {
    note_patch();
    return stats;
  }

  if (!state.has_digests()) {
    // Hand-built base state: derive the digests once so maintenance works.
    state.digests.assign(num_switches, 0);
    for (std::uint64_t s = 0; s < num_switches; ++s) {
      std::uint64_t h = 0;
      for (std::uint64_t d = 0; d < num_dests; ++d) {
        const Entry& e = state.tables.entry_at(s, d);
        h ^= hash_fwd_row(d, e.cost, state.tables.hops(e));
      }
      state.digests[s] = h;
    }
  }

  const std::vector<LevelRange> ranges = make_level_ranges(topo);
  const bool host_gran = state.granularity == DestGranularity::kHost;
  const std::uint64_t hosts_per_edge = state.hosts_per_edge;

  // ---- Dirty-set derivation (see DESIGN.md "routing engine") ----
  //
  // For a changed inter-switch link with lower endpoint v, only two kinds
  // of rows can differ from a fresh full compute:
  //  - destinations in v's *structural* subtree: anything about their rows
  //    may change (down-reachability shifts) — recompute those rows fully;
  //  - every other destination: a strictly-down path to it can never cross
  //    the changed link, so the only affected row is v's own up-climb.  If
  //    v's cost is preserved no other switch notices; if it changes, the
  //    destination escalates to a full row recompute.
  // A changed host link is invisible at edge granularity and dirties just
  // the attached host's row at host granularity.
  std::vector<char> dirty(num_dests, 0);
  std::uint64_t num_dirty = 0;
  const auto mark_dest = [&](std::uint64_t d) {
    if (!dirty[d]) {
      dirty[d] = 1;
      ++num_dirty;
    }
  };

  std::vector<char> visited(num_switches, 0);
  std::vector<std::uint64_t> stack;
  const auto mark_subtree = [&](SwitchId v) {
    if (visited[v.value()]) return;
    visited[v.value()] = 1;
    stack.clear();
    stack.push_back(v.value());
    while (!stack.empty()) {
      const std::uint64_t s = stack.back();
      stack.pop_back();
      if (s >= ranges[1].begin && s < ranges[1].end) {
        const std::uint64_t edge_index = s - ranges[1].begin;
        if (host_gran) {
          for (std::uint64_t h = 0; h < hosts_per_edge; ++h) {
            mark_dest(edge_index * hosts_per_edge + h);
          }
        } else {
          mark_dest(edge_index);
        }
        continue;
      }
      for (const Neighbor& nb : topo.down_neighbors(switch_id(s))) {
        if (!topo.is_switch_node(nb.node)) continue;
        if (!visited[nb.node.value()]) {
          visited[nb.node.value()] = 1;
          stack.push_back(nb.node.value());
        }
      }
    }
  };

  std::vector<char> in_patch(num_switches, 0);
  std::vector<SwitchId> patch_vs;
  for (const LinkId l : changed_links) {
    const Topology::LinkRec rec = topo.link(l);
    if (rec.upper_level == 1) {
      if (host_gran) mark_dest(topo.host_of(rec.lower).value());
      continue;
    }
    const SwitchId v = topo.switch_of(rec.lower);
    if (!in_patch[v.value()]) {
      in_patch[v.value()] = 1;
      patch_vs.push_back(v);
    }
    mark_subtree(v);
  }
  if (num_dirty == 0 && patch_vs.empty()) {
    note_patch();
    return stats;
  }

  // ---- Row recompute / patch fan-out ----
  //
  // Each destination is handled end-to-end by one worker, so every write
  // for a row happens on the thread that owns it; the per-worker digest
  // deltas merge after the pool joins, leaving no shared writes at all.
  const int workers = parallel::effective_num_threads(threads);
  struct WorkerStats {
    std::uint64_t full = 0;
    std::uint64_t escalated = 0;
    std::uint64_t patched = 0;
  };
  std::vector<WorkerStats> wstats(static_cast<std::size_t>(workers));
  std::vector<Scratch> scratch = make_scratch(workers, num_switches);
  RoutingTables& tables = state.tables;
  const RoutingTables::Raw raw = tables.raw();
  const Topology::AdjacencyView av = topo.adjacency_view();
  const std::uint64_t* up = overlay.up_words().data();
  const std::uint64_t pool_per_dest = [&] {
    std::uint64_t total = 0;
    for (std::uint64_t s = 0; s < num_switches; ++s) {
      total += raw.meta[s].hop_cap;
    }
    return total;
  }();

  parallel::parallel_for_chunks(
      num_dests, chunk_for(num_switches, pool_per_dest), workers,
      [&](std::uint64_t begin, std::uint64_t end, int worker) {
        Scratch& sc = scratch[static_cast<std::size_t>(worker)];
        WorkerStats& ws = wstats[static_cast<std::size_t>(worker)];
        std::vector<Neighbor> hops;
        for (std::uint64_t d = begin; d < end; ++d) {
          if (dirty[d]) {
            route_dest(topo, ranges, up, av, raw, state.granularity, d, sc);
            ++ws.full;
            continue;
          }
          Entry* const row = raw.meta + d * raw.num_tables;
          // Patch pass 1 (read-only): would any patched switch's cost
          // change for this destination?  Its parents' rows are final —
          // nothing for this destination has been written yet.
          bool escalate = false;
          for (const SwitchId v : patch_vs) {
            const Entry& cur = row[v.value()];
            int min_parent = kInf;
            for (const Neighbor& nb : topo.up_neighbors(v)) {
              if (!link_up(up, nb.link.value())) continue;
              min_parent =
                  std::min(min_parent, cost_as_best(row[nb.node.value()]));
            }
            const int new_cost =
                min_parent >= kInf ? kUnreachable : 1 + min_parent;
            if (new_cost != cur.cost) {
              escalate = true;
              break;
            }
          }
          if (escalate) {
            route_dest(topo, ranges, up, av, raw, state.granularity, d, sc);
            ++ws.full;
            ++ws.escalated;
            continue;
          }
          // Patch pass 2: costs are all preserved, so only the patched
          // switches' ECMP uplink sets can differ — rebuild them in place
          // (same up_neighbors enumeration order as the full engine).
          for (const SwitchId v : patch_vs) {
            Entry& cur = row[v.value()];
            hops.clear();
            if (cur.cost != kUnreachable) {
              const int want = cur.cost - 1;
              for (const Neighbor& nb : topo.up_neighbors(v)) {
                if (!link_up(up, nb.link.value())) continue;
                if (cost_as_best(row[nb.node.value()]) == want) {
                  hops.push_back(nb);
                }
              }
            }
            Neighbor* const slice = raw.pool + cur.hop_begin;
            const bool same =
                hops.size() == cur.hop_count &&
                std::equal(hops.begin(), hops.end(), slice);
            if (!same) {
              const std::uint64_t old_hash = hash_fwd_row(
                  d, cur.cost, {slice, cur.hop_count});
              for (std::size_t i = 0; i < hops.size(); ++i) {
                slice[i] = hops[i];
              }
              cur.hop_count = static_cast<std::uint16_t>(hops.size());
              sc.digest_delta[v.value()] ^=
                  old_hash ^
                  hash_fwd_row(d, cur.cost, {slice, cur.hop_count});
              ++ws.patched;
            }
          }
        }
      });

  merge_digest_deltas(scratch, state.digests);
  for (const WorkerStats& ws : wstats) {
    stats.full_rows += ws.full;
    stats.escalated_rows += ws.escalated;
    stats.patched_switches += ws.patched;
  }
  note_patch();
  return stats;
}

std::uint64_t switches_with_changed_tables(const RoutingState& before,
                                           const RoutingState& after) {
  ASPEN_REQUIRE(before.tables.size() == after.tables.size(),
                "routing states describe different topologies");
  // Digest mismatch proves inequality (equal tables hash equal), so the
  // per-switch deep compare only runs to confirm digest-equal tables.
  const bool use_digests = before.has_digests() && after.has_digests();
  std::uint64_t changed = 0;
  for (std::uint64_t s = 0; s < before.tables.size(); ++s) {
    if (use_digests && before.digests[s] != after.digests[s]) {
      ++changed;
      continue;
    }
    if (!(before.tables[s] == after.tables[s])) ++changed;
  }
  return changed;
}

bool tables_match_by_digest(const RoutingState& before,
                            const RoutingState& after) {
  ASPEN_REQUIRE(before.has_digests() && after.has_digests(),
                "digest matching needs engine-built states");
  ASPEN_REQUIRE(before.tables.size() == after.tables.size(),
                "routing states describe different topologies");
  return before.digests == after.digests;
}

}  // namespace aspen
