// Warm-state fault deltas: apply / rollback on a long-lived RoutingState.
//
// Monte Carlo campaigns (src/analysis/survivability.h) and fault-sweep
// benches apply thousands to millions of fault sets against one topology.
// Recomputing routes from scratch per sample throws away the dominant
// optimization the engine already has — recompute_updown_routes patches
// only the rows a changed link dirties.  A DeltaSession owns the pieces
// that make the warm pattern safe:
//
//   * a private LinkStateOverlay and RoutingState, initialized from the
//     intact topology once;
//   * apply(links) — fail a set of links and patch the state incrementally;
//   * rollback() — recover every applied link, patch back, and *prove* the
//     state returned to baseline via the per-switch digests (O(switches)
//     word compares).  A digest mismatch means incremental maintenance
//     drifted; the session then rebuilds from scratch and reports it, so a
//     campaign degrades to a slower-but-correct mode instead of silently
//     accumulating error.
//
// The baseline digests are captured at construction; rollback never deep-
// compares tables on the happy path.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "src/routing/fwd_table.h"
#include "src/routing/updown.h"
#include "src/topo/link_state.h"
#include "src/topo/topology.h"

namespace aspen::routing {

/// An immutable snapshot of a session's routing state at a seal point.
/// The serving layer hands shared_ptrs to these out to query executors and
/// result caches; the fingerprint (state_fingerprint) is the identity every
/// response is labeled with, and `failed` is what a restarted server needs
/// to re-derive the same state from the intact topology.
struct PinnedState {
  RoutingState state;
  std::vector<LinkId> failed;     ///< links down when the state was sealed
  std::uint64_t fingerprint = 0;  ///< state_fingerprint(state)
};

class DeltaSession {
 public:
  DeltaSession(const Topology& topo, DestGranularity granularity,
               int threads = 1);

  /// Fails every link in `links` (ignoring ones already down) and patches
  /// the routing state incrementally.  Returns the engine's row accounting.
  RecomputeStats apply(std::span<const LinkId> links);

  /// Recovers every currently failed link, patches the state back, and
  /// checks the per-switch digests against the baseline.  On a digest
  /// mismatch the state is rebuilt from scratch (and the rebuild counter
  /// bumps); returns true when the digests matched, i.e. the incremental
  /// path round-tripped exactly.
  bool rollback();

  /// Discards the warm state and recomputes everything from the intact
  /// topology — the quarantine path after an audit finding.
  void rebuild();

  /// Makes this session's up/down view match `live` exactly — fails links
  /// `live` has down, recovers links it has up — and patches the routing
  /// state incrementally over the combined change set.  Degraded health
  /// (gray/flapping) is ignored: routing never sees it.  Returns the
  /// engine's row accounting for the patch (all-zero when already in sync).
  RecomputeStats sync_to(const LinkStateOverlay& live);

  /// Seals the current state into an immutable PinnedState and returns a
  /// shared handle.  Consecutive calls with unchanged state return the
  /// *same* object (copy-on-write: the deep copy happens only when the
  /// fingerprint moved), so holding many pins of a stable state is cheap.
  [[nodiscard]] std::shared_ptr<const PinnedState> pin();

  [[nodiscard]] const RoutingState& state() const { return state_; }
  [[nodiscard]] const LinkStateOverlay& overlay() const { return overlay_; }
  [[nodiscard]] const RoutingState& baseline() const { return baseline_; }
  [[nodiscard]] std::span<const LinkId> failed() const { return failed_; }

  /// Times rollback() found drifted digests and had to rebuild.
  [[nodiscard]] std::uint64_t rebuilds() const { return rebuilds_; }

  /// Cumulative incremental-engine row accounting across apply/rollback.
  [[nodiscard]] const RecomputeStats& cumulative_stats() const {
    return cumulative_;
  }

  /// Test hook: corrupts one forwarding entry (and deliberately not its
  /// digest) so audits and rollback digest checks have something to catch.
  void corrupt_for_test();

 private:
  void absorb(const RecomputeStats& stats);

  const Topology* topo_;
  DestGranularity granularity_;
  int threads_;
  LinkStateOverlay overlay_;
  RoutingState state_;
  RoutingState baseline_;  ///< intact-topology tables + digests
  std::vector<LinkId> failed_;
  std::uint64_t rebuilds_ = 0;
  RecomputeStats cumulative_{};
  std::shared_ptr<const PinnedState> pinned_;  ///< last pin() result
};

}  // namespace aspen::routing
