// C++ tokenizer for aspen-lint (src/lint/).
//
// A real lexer, not a grep: it understands // and /* */ comments, string
// and character literals (including u8/u/U/L prefixes and raw strings with
// arbitrary delimiters), digit separators, line continuations, and
// preprocessor directives.  That is the minimum needed for the rule engine
// (rules.h) to reason about *code* — an identifier inside a string literal
// or a comment is never a finding, and a suppression annotation is parsed
// from comment tokens, never from code.
//
// The token stream is lossy in ways a compiler's cannot be (no keyword
// classification, no literal decoding) and lossless in the one way a linter
// needs: every token carries the 1-based physical line it starts on, with
// line continuations counted so findings land on the line an editor shows.
#pragma once

#include <string>
#include <vector>

namespace aspen::lint {

enum class TokKind {
  kIdentifier,  ///< [A-Za-z_][A-Za-z0-9_]* (keywords included)
  kNumber,      ///< pp-number: digits, digit separators, exponents, suffixes
  kString,      ///< "..." (any prefix) or raw string R"delim(...)delim"
  kChar,        ///< '...' with escapes
  kPunct,       ///< operators and punctuation, longest-match
  kComment,     ///< // to end of logical line, or /* ... */
};

struct Token {
  TokKind kind = TokKind::kPunct;
  std::string text;          ///< exact source lexeme (comments keep markers)
  int line = 0;              ///< 1-based physical line of the first char
  int column = 0;            ///< 1-based column of the first char
  bool preprocessor = false; ///< token sits on a #-directive logical line
};

/// Tokenizes one translation unit's source text.  Never throws on malformed
/// input (an unterminated literal or comment is consumed to end of file) —
/// a linter must degrade, not die, on the code it inspects.
[[nodiscard]] std::vector<Token> tokenize(const std::string& source);

[[nodiscard]] const char* to_cstring(TokKind kind);

}  // namespace aspen::lint
