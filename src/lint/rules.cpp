#include "src/lint/rules.h"

#include <algorithm>
#include <array>
#include <cctype>
#include <set>
#include <string>

namespace aspen::lint {

namespace {

// ---------------------------------------------------------------------
// Catalogue.  Order is the stable presentation order for --list-rules,
// the JSON rule table, and docs/LINT.md.
// ---------------------------------------------------------------------
const std::vector<RuleInfo>& catalogue() {
  static const std::vector<RuleInfo> kRules = {
      {"wall-clock", Severity::kError,
       "wall-clock reads (system_clock/steady_clock/time/...) outside the "
       "src/sim virtual-time layer"},
      {"random-device", Severity::kError,
       "std::random_device — entropy that cannot be replayed from a seed"},
      {"unseeded-rand", Severity::kError,
       "C rand/srand/random/drand48 — global-state RNGs outside the seeded "
       "Rng discipline"},
      {"unseeded-engine", Severity::kError,
       "default-constructed std <random> engine or default_random_engine — "
       "stream is not a function of an explicit seed"},
      {"thread-id", Severity::kError,
       "thread identity (this_thread::get_id/pthread_self) — varies run to "
       "run and must never reach an output path"},
      {"sleep", Severity::kError,
       "wall-clock sleeps — simulated time must advance via the event "
       "queue, never the host scheduler"},
      {"getenv", Severity::kWarning,
       "environment reads make outputs depend on ambient process state; "
       "each sanctioned read carries an allow() rationale"},
      {"unordered-iteration", Severity::kError,
       "iteration over an unordered container — hash order is not part of "
       "any determinism contract and must not feed digests or exporters"},
      {"pointer-key", Severity::kError,
       "associative container keyed by pointer — both hash order and "
       "comparison order follow allocation addresses"},
      {"seed-arith", Severity::kError,
       "raw seed arithmetic (^, *) outside fault::derive_stream_seed — "
       "ad-hoc mixing breaks stream independence"},
      {"assert-side-effect", Severity::kError,
       "mutation inside ASPEN_ASSERT/ASPEN_INVARIANT — the expression "
       "vanishes when the audit level elides the macro"},
      {"emit-outside-orchestrator", Severity::kError,
       "obs emission inside a parallel_for_blocks body — emission is "
       "orchestrator-thread-only (src/obs/obs.h thread model)"},
      {"float-accum", Severity::kError,
       "floating-point accumulation in an integer-accumulator file — "
       "merge order would change the result"},
      {"serve-bounded-retry", Severity::kError,
       "a serve-layer backoff without same-file retry-cap and deadline "
       "evidence — an unbounded retry loop against a shedding server is a "
       "retry-storm generator"},
      {"hot-path-nested-container", Severity::kError,
       "vector<vector<...>> or a node-based associative-container member "
       "in a src/topo/, src/routing/ or src/traffic/ header — hot-path "
       "rows live in flat arenas (DESIGN.md \"memory layout\")"},
      // Meta findings (emitted by lint.cpp, not the token rules):
      {"bad-suppression", Severity::kError,
       "aspen-lint: allow(...) annotation without a '-- reason' rationale "
       "or naming an unknown rule"},
      {"io-error", Severity::kError,
       "a file passed to the linter could not be read"},
  };
  return kRules;
}

Severity severity_of(const std::string& id) {
  for (const RuleInfo& r : catalogue()) {
    if (id == r.id) return r.severity;
  }
  return Severity::kError;
}

// ---------------------------------------------------------------------
// Shared scanning helpers.  `code` is the token stream with comments
// removed; indices below are into that vector.
// ---------------------------------------------------------------------
struct Ctx {
  const std::string& path;
  const std::vector<Token>& code;
  std::vector<Finding>* out;

  void add(const char* rule, int line, std::string message) const {
    Finding f;
    f.rule = rule;
    f.severity = severity_of(rule);
    f.file = path;
    f.line = line;
    f.message = std::move(message);
    out->push_back(std::move(f));
  }

  [[nodiscard]] bool is(std::size_t i, const char* text) const {
    return i < code.size() && code[i].text == text;
  }
  [[nodiscard]] bool ident(std::size_t i, const char* text) const {
    return i < code.size() && code[i].kind == TokKind::kIdentifier &&
           code[i].text == text;
  }
  /// Token i is reached through member access: `x.f` or `p->f`.
  [[nodiscard]] bool member_access(std::size_t i) const {
    if (i >= 1 && is(i - 1, ".")) return true;
    return i >= 2 && is(i - 1, ">") && is(i - 2, "-");
  }
  [[nodiscard]] bool call_like(std::size_t i) const {
    return is(i + 1, "(");
  }
  /// Index just past the bracket-balanced range opened at `open` (which
  /// must hold the opening bracket), or code.size() if unbalanced.
  [[nodiscard]] std::size_t match(std::size_t open, const char* lhs,
                                  const char* rhs) const {
    int depth = 0;
    for (std::size_t i = open; i < code.size(); ++i) {
      if (code[i].kind != TokKind::kPunct) continue;
      if (code[i].text == lhs) ++depth;
      if (code[i].text == rhs && --depth == 0) return i + 1;
    }
    return code.size();
  }
};

bool path_has_prefix(const std::string& path, const char* prefix) {
  return path.rfind(prefix, 0) == 0;
}

bool contains_ci(const std::string& text, const char* needle) {
  std::string lower(text);
  std::transform(lower.begin(), lower.end(), lower.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return lower.find(needle) != std::string::npos;
}

template <std::size_t N>
bool any_of_idents(const Token& t, const std::array<const char*, N>& names) {
  if (t.kind != TokKind::kIdentifier) return false;
  return std::any_of(names.begin(), names.end(),
                     [&](const char* n) { return t.text == n; });
}

// ---------------------------------------------------------------------
// wall-clock / random-device / unseeded-rand / thread-id / sleep / getenv
// — identifier bans with small call-shape refinements.
// ---------------------------------------------------------------------
void rule_banned_identifiers(const Ctx& ctx) {
  static constexpr std::array<const char*, 10> kClockIdents = {
      "system_clock",  "steady_clock", "high_resolution_clock",
      "gettimeofday",  "timespec_get", "localtime",
      "gmtime",        "strftime",     "asctime",
      "ctime"};
  static constexpr std::array<const char*, 2> kClockCalls = {"time", "clock"};
  static constexpr std::array<const char*, 7> kRandCalls = {
      "rand", "srand", "random", "srandom", "drand48", "srand48", "lrand48"};
  static constexpr std::array<const char*, 3> kThreadIdents = {
      "get_id", "pthread_self", "gettid"};
  static constexpr std::array<const char*, 4> kSleepIdents = {
      "sleep_for", "sleep_until", "usleep", "nanosleep"};

  const bool in_sim = path_has_prefix(ctx.path, "src/sim/");
  for (std::size_t i = 0; i < ctx.code.size(); ++i) {
    const Token& t = ctx.code[i];
    if (t.kind != TokKind::kIdentifier) continue;
    // `#include <ctime>` is not a clock read; bans apply to code tokens.
    if (t.preprocessor) continue;

    if (!in_sim) {
      if (any_of_idents(t, kClockIdents)) {
        ctx.add("wall-clock", t.line,
                "'" + t.text + "' reads the host clock; outputs must be a "
                "pure function of (topology, seed, schedule)");
        continue;
      }
      if (any_of_idents(t, kClockCalls) && ctx.call_like(i) &&
          !ctx.member_access(i)) {
        ctx.add("wall-clock", t.line,
                "call to '" + t.text + "()' reads the host clock");
        continue;
      }
    }
    if (t.text == "random_device") {
      ctx.add("random-device", t.line,
              "std::random_device draws real entropy; derive seeds via "
              "fault::derive_stream_seed instead");
      continue;
    }
    if (any_of_idents(t, kRandCalls) && ctx.call_like(i) &&
        !ctx.member_access(i)) {
      ctx.add("unseeded-rand", t.line,
              "'" + t.text + "()' uses hidden global RNG state; use the "
              "explicitly seeded aspen::Rng");
      continue;
    }
    if (any_of_idents(t, kThreadIdents)) {
      ctx.add("thread-id", t.line,
              "'" + t.text + "' exposes scheduler-dependent thread "
              "identity");
      continue;
    }
    if (any_of_idents(t, kSleepIdents) ||
        (t.text == "sleep" && ctx.call_like(i) && !ctx.member_access(i))) {
      ctx.add("sleep", t.line,
              "'" + t.text + "' blocks on the host scheduler; advance "
              "simulated time through the event queue");
      continue;
    }
    if (t.text == "getenv" || t.text == "secure_getenv") {
      ctx.add("getenv", t.line,
              "'" + t.text + "' makes behavior depend on ambient process "
              "environment");
      continue;
    }
  }
}

// ---------------------------------------------------------------------
// unseeded-engine: a std <random> engine declared without constructor
// arguments, or any use of default_random_engine (implementation-defined
// stream even when seeded).  Members named with the repo's trailing-'_'
// convention are skipped: they are seeded in a constructor init list,
// which is a different declaration site.
// ---------------------------------------------------------------------
void rule_unseeded_engine(const Ctx& ctx) {
  static constexpr std::array<const char*, 8> kEngines = {
      "mt19937",      "mt19937_64", "minstd_rand", "minstd_rand0",
      "ranlux24",     "ranlux48",   "knuth_b",     "subtract_with_carry_engine"};
  for (std::size_t i = 0; i < ctx.code.size(); ++i) {
    const Token& t = ctx.code[i];
    if (t.kind != TokKind::kIdentifier) continue;
    if (t.text == "default_random_engine") {
      ctx.add("unseeded-engine", t.line,
              "default_random_engine's stream is implementation-defined; "
              "name a concrete engine (aspen::Rng wraps mt19937_64)");
      continue;
    }
    if (!any_of_idents(t, kEngines)) continue;
    // Engine type followed by a declarator: flag `engine name;` and
    // `engine name{}` (default seed 5489u — looks deterministic, but is a
    // constant shared by every accidental user, and not derived from the
    // campaign seed).  `engine name(args)` / `engine& name` are fine.
    std::size_t j = i + 1;
    if (ctx.is(j, "&") || ctx.is(j, "*")) continue;  // alias of an existing
    if (j < ctx.code.size() && ctx.code[j].kind == TokKind::kIdentifier) {
      const Token& name = ctx.code[j];
      if (!name.text.empty() && name.text.back() == '_') continue;
      if (ctx.is(j + 1, ";") ||
          (ctx.is(j + 1, "{") && ctx.is(j + 2, "}"))) {
        ctx.add("unseeded-engine", t.line,
                "'" + name.text + "' is a default-constructed " + t.text +
                "; seed it explicitly from the campaign seed");
      }
    }
  }
}

// ---------------------------------------------------------------------
// unordered-iteration + pointer-key.  First pass records the names of
// variables declared with an unordered container type in this TU; second
// pass flags range-for loops whose sequence mentions one of them and
// explicit .begin()/.cbegin() calls on them.
// ---------------------------------------------------------------------
void rule_unordered_containers(const Ctx& ctx) {
  static constexpr std::array<const char*, 4> kUnordered = {
      "unordered_map", "unordered_set", "unordered_multimap",
      "unordered_multiset"};
  static constexpr std::array<const char*, 6> kAssociative = {
      "map", "set", "multimap", "multiset", "unordered_map",
      "unordered_set"};

  std::set<std::string> unordered_names;

  for (std::size_t i = 0; i < ctx.code.size(); ++i) {
    const Token& t = ctx.code[i];
    const bool is_unordered = any_of_idents(t, kUnordered);
    if (!is_unordered && !any_of_idents(t, kAssociative)) continue;
    if (ctx.member_access(i)) continue;  // e.g. x.map(...)
    if (!ctx.is(i + 1, "<")) continue;

    // Walk the template argument list; remember where the first argument
    // (the key type) ends, and where the whole list closes.
    int depth = 0;
    std::size_t first_arg_end = 0;  // token index just past the key type
    std::size_t close = ctx.code.size();
    for (std::size_t j = i + 1; j < ctx.code.size(); ++j) {
      const std::string& s = ctx.code[j].text;
      if (ctx.code[j].kind == TokKind::kPunct) {
        if (s == "<") ++depth;
        if (s == "(" || s == "[") {  // skip nested brackets wholesale
          j = ctx.match(j, s == "(" ? "(" : "[", s == "(" ? ")" : "]") - 1;
          continue;
        }
        if (s == "," && depth == 1 && first_arg_end == 0) first_arg_end = j;
        if (s == ">" && --depth == 0) {
          close = j;
          break;
        }
      }
    }
    if (close == ctx.code.size()) continue;  // unbalanced; not a decl
    if (first_arg_end == 0) first_arg_end = close;

    // pointer-key: key type's last token is '*'.
    if (first_arg_end > 0 && ctx.is(first_arg_end - 1, "*")) {
      ctx.add("pointer-key", t.line,
              "'" + t.text + "' keyed by a pointer orders entries by "
              "allocation address; key by a stable id instead");
    }

    if (!is_unordered) continue;
    // Declarator after the closing '>': record the variable name.
    std::size_t j = close + 1;
    while (ctx.is(j, "&") || ctx.is(j, "*") || ctx.ident(j, "const")) ++j;
    if (j < ctx.code.size() && ctx.code[j].kind == TokKind::kIdentifier) {
      unordered_names.insert(ctx.code[j].text);
    }
  }

  if (unordered_names.empty()) return;

  const auto flag_iteration = [&](const Token& at, const std::string& name) {
    ctx.add("unordered-iteration", at.line,
            "iterating '" + name + "' (declared as an unordered container "
            "in this TU) visits elements in hash order");
  };

  for (std::size_t i = 0; i < ctx.code.size(); ++i) {
    // Range-for: for ( decl : sequence )
    if (ctx.ident(i, "for") && ctx.is(i + 1, "(")) {
      const std::size_t end = ctx.match(i + 1, "(", ")");
      for (std::size_t j = i + 2; j + 1 < end; ++j) {
        if (!ctx.is(j, ":") || ctx.is(j + 1, ":") || ctx.is(j - 1, ":")) {
          continue;  // skip '::'
        }
        for (std::size_t k = j + 1; k + 1 < end; ++k) {
          if (ctx.code[k].kind == TokKind::kIdentifier &&
              unordered_names.count(ctx.code[k].text) != 0) {
            flag_iteration(ctx.code[k], ctx.code[k].text);
            break;
          }
        }
        break;  // only the first top-level ':' splits decl from sequence
      }
    }
    // Explicit iterator walk: name.begin() / name.cbegin() / name.rbegin()
    if (ctx.code[i].kind == TokKind::kIdentifier &&
        unordered_names.count(ctx.code[i].text) != 0 && ctx.is(i + 1, ".")) {
      static constexpr std::array<const char*, 4> kBegins = {
          "begin", "cbegin", "rbegin", "crbegin"};
      if (i + 2 < ctx.code.size() &&
          any_of_idents(ctx.code[i + 2], kBegins) &&
          ctx.is(i + 3, "(")) {
        flag_iteration(ctx.code[i], ctx.code[i].text);
      }
    }
  }
}

// ---------------------------------------------------------------------
// seed-arith: an identifier containing "seed" directly combined with ^ or
// * is ad-hoc stream mixing; fault::derive_stream_seed (src/fault/seed.h)
// is the one sanctioned home for that arithmetic.
// ---------------------------------------------------------------------
void rule_seed_arith(const Ctx& ctx) {
  if (ctx.path == "src/fault/seed.h") return;
  for (std::size_t i = 0; i < ctx.code.size(); ++i) {
    const Token& t = ctx.code[i];
    if (t.kind != TokKind::kIdentifier || !contains_ci(t.text, "seed")) {
      continue;
    }
    const bool mixed_right =
        ctx.is(i + 1, "^") || (ctx.is(i + 1, "*") &&
                               i + 2 < ctx.code.size() &&
                               ctx.code[i + 2].kind != TokKind::kPunct);
    // `* seed`: require an operand on the left so unary deref doesn't trip
    // it, and no '=' on the right so pointer declarators with initializers
    // (`const char* kSeedFlag = ...`) don't parse as multiplication.
    const bool mixed_left =
        (i >= 1 && ctx.is(i - 1, "^")) ||
        (i >= 2 && ctx.is(i - 1, "*") && !ctx.is(i + 1, "=") &&
         (ctx.code[i - 2].kind == TokKind::kIdentifier ||
          ctx.code[i - 2].kind == TokKind::kNumber ||
          ctx.is(i - 2, ")")));
    if (mixed_right || mixed_left) {
      ctx.add("seed-arith", t.line,
              "raw arithmetic on '" + t.text + "'; derive per-stream seeds "
              "via fault::derive_stream_seed(base, tag)");
    }
  }
}

// ---------------------------------------------------------------------
// assert-side-effect: mutation inside ASPEN_ASSERT / ASPEN_INVARIANT.
// At ASPEN_AUDIT_LEVEL=0 the argument expression is parsed but never
// evaluated, so any side effect silently disappears from release builds.
// ---------------------------------------------------------------------
void rule_assert_side_effect(const Ctx& ctx) {
  static constexpr std::array<const char*, 10> kCompound = {
      "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>="};
  static constexpr std::array<const char*, 16> kMutators = {
      "insert",  "erase",        "push_back",  "pop_back",
      "emplace", "emplace_back", "emplace_front", "push_front",
      "pop_front", "clear",      "resize",     "reserve",
      "assign",  "swap",         "reset",      "release"};

  for (std::size_t i = 0; i < ctx.code.size(); ++i) {
    if (!(ctx.ident(i, "ASPEN_ASSERT") || ctx.ident(i, "ASPEN_INVARIANT")) ||
        !ctx.is(i + 1, "(")) {
      continue;
    }
    const char* macro = ctx.code[i].text.c_str();
    const std::size_t end = ctx.match(i + 1, "(", ")");
    for (std::size_t j = i + 2; j + 1 < end; ++j) {
      const Token& t = ctx.code[j];
      if (t.kind == TokKind::kPunct) {
        const bool compound = std::any_of(
            kCompound.begin(), kCompound.end(),
            [&](const char* op) { return t.text == op; });
        // Plain '=' is assignment (== / <= / ... are single tokens); the
        // one non-mutating shape is a lambda init-capture `[x = y]`.
        const bool assign =
            t.text == "=" &&
            !(j >= 1 && ctx.is(j - 1, "[")) &&
            !(j >= 2 && ctx.is(j - 2, "[") &&
              ctx.code[j - 1].kind == TokKind::kIdentifier);
        if (t.text == "++" || t.text == "--" || compound || assign) {
          ctx.add("assert-side-effect", t.line,
                  std::string("'") + t.text + "' inside " + macro +
                  " mutates state the elided build never sees");
        }
        continue;
      }
      if (t.kind == TokKind::kIdentifier && ctx.member_access(j) &&
          ctx.call_like(j) && any_of_idents(t, kMutators)) {
        ctx.add("assert-side-effect", t.line,
                "call to '." + t.text + "(...)' inside " + macro +
                " mutates its receiver; hoist it out of the contract");
      }
    }
    i = end > i ? end - 1 : i;
  }
}

// ---------------------------------------------------------------------
// emit-outside-orchestrator: obs::count / gauge_set / observe /
// trace_event lexically inside a parallel_for_blocks(...) call — i.e.
// inside the worker lambda.  The obs singletons are lock-free because
// emission is orchestrator-thread-only (src/obs/obs.h).
// ---------------------------------------------------------------------
void rule_emit_in_parallel(const Ctx& ctx) {
  static constexpr std::array<const char*, 4> kEmits = {
      "count", "gauge_set", "observe", "trace_event"};
  for (std::size_t i = 0; i < ctx.code.size(); ++i) {
    if (!ctx.ident(i, "parallel_for_blocks") || !ctx.is(i + 1, "(")) {
      continue;
    }
    const std::size_t end = ctx.match(i + 1, "(", ")");
    for (std::size_t j = i + 2; j + 2 < end; ++j) {
      if (ctx.ident(j, "obs") && ctx.is(j + 1, "::") &&
          any_of_idents(ctx.code[j + 2], kEmits)) {
        ctx.add("emit-outside-orchestrator", ctx.code[j].line,
                "obs::" + ctx.code[j + 2].text + " inside a "
                "parallel_for_blocks body; aggregate into per-worker "
                "stats and emit after the join");
      }
    }
    i = end > i ? end - 1 : i;
  }
}

// ---------------------------------------------------------------------
// float-accum: files whose results merge across chunk/worker boundaries
// keep integer accumulators (survivability's Wilson intervals are computed
// from integer tallies at the end).  A `double x; ... x += ...` in such a
// file reintroduces merge-order sensitivity.
// ---------------------------------------------------------------------
void rule_float_accum(const Ctx& ctx) {
  if (!contains_ci(ctx.path, "survivability")) return;
  std::set<std::string> float_names;
  for (std::size_t i = 0; i + 1 < ctx.code.size(); ++i) {
    if (!(ctx.ident(i, "double") || ctx.ident(i, "float"))) continue;
    std::size_t j = i + 1;
    while (ctx.ident(j, "const") || ctx.is(j, "&") || ctx.is(j, "*")) ++j;
    if (j < ctx.code.size() && ctx.code[j].kind == TokKind::kIdentifier) {
      float_names.insert(ctx.code[j].text);
    }
  }
  if (float_names.empty()) return;
  for (std::size_t i = 0; i + 1 < ctx.code.size(); ++i) {
    const Token& t = ctx.code[i];
    if (t.kind != TokKind::kIdentifier || float_names.count(t.text) == 0) {
      continue;
    }
    if (ctx.is(i + 1, "+=") || ctx.is(i + 1, "-=")) {
      ctx.add("float-accum", t.line,
              "'" + t.text + " " + ctx.code[i + 1].text + "' accumulates "
              "in floating point; keep integer tallies and divide once at "
              "report time");
    }
  }
}

// ---------------------------------------------------------------------
// serve-bounded-retry: in the query-service layer, any file that grows a
// retry wait (an identifier containing "backoff") must show, in the same
// file, both halves of the bound that keeps retries finite: a retry cap
// (an identifier naming "max" and "retr" — kMaxClientRetries,
// max_retries, ...) and a deadline check (an identifier containing
// "deadline").  One finding per file, anchored at the first backoff
// token: the file-level evidence either exists or it does not.
// ---------------------------------------------------------------------
void rule_serve_bounded_retry(const Ctx& ctx) {
  if (!path_has_prefix(ctx.path, "src/serve/") &&
      !contains_ci(ctx.path, "serve_bounded_retry")) {
    return;
  }
  const Token* first_backoff = nullptr;
  bool has_cap = false;
  bool has_deadline = false;
  for (const Token& t : ctx.code) {
    if (t.kind != TokKind::kIdentifier) continue;
    if (first_backoff == nullptr && contains_ci(t.text, "backoff")) {
      first_backoff = &t;
    }
    if (contains_ci(t.text, "max") && contains_ci(t.text, "retr")) {
      has_cap = true;
    }
    if (contains_ci(t.text, "deadline")) has_deadline = true;
  }
  if (first_backoff == nullptr || (has_cap && has_deadline)) return;
  std::string missing;
  if (!has_cap) missing += "a retry cap (an identifier naming max+retr)";
  if (!has_deadline) {
    if (!missing.empty()) missing += " or ";
    missing += "a deadline check";
  }
  ctx.add("serve-bounded-retry", first_backoff->line,
          "'" + first_backoff->text + "' grows a retry wait but this file "
          "shows no " + missing + "; bound every backoff loop by "
          "kMaxClientRetries and the query's deadline");
}

// ---------------------------------------------------------------------
// hot-path-nested-container: the topology, routing and traffic headers
// declare the memory-layout hot path (DESIGN.md "memory layout") —
// adjacency is CSR, forwarding rows live in one arena, per-flow state is
// struct-of-arrays.  A vector<vector<...>> anywhere in
// such a header, or an associative-container *member* (trailing-'_'
// declarator), reintroduces an allocation per row and a pointer chase per
// probe — exactly the layout the arena refactor removed.  Scoped to
// headers: persistent state shapes are declared there; .cpp-local scratch
// maps are fine.
// ---------------------------------------------------------------------
void rule_hot_path_nested_container(const Ctx& ctx) {
  const bool corpus = contains_ci(ctx.path, "hot_path_nested_container");
  if (!corpus) {
    const bool hot_header =
        (path_has_prefix(ctx.path, "src/topo/") ||
         path_has_prefix(ctx.path, "src/routing/") ||
         path_has_prefix(ctx.path, "src/traffic/")) &&
        ctx.path.size() > 2 &&
        ctx.path.compare(ctx.path.size() - 2, 2, ".h") == 0;
    if (!hot_header) return;
  }
  static constexpr std::array<const char*, 4> kAssociative = {
      "map", "unordered_map", "multimap", "unordered_multimap"};
  for (std::size_t i = 0; i + 1 < ctx.code.size(); ++i) {
    const Token& t = ctx.code[i];
    if (t.kind != TokKind::kIdentifier || ctx.member_access(i)) continue;

    if (t.text == "vector" && ctx.is(i + 1, "<")) {
      std::size_t j = i + 2;
      if (ctx.ident(j, "std") && ctx.is(j + 1, "::")) j += 2;
      if (ctx.ident(j, "vector") && ctx.is(j + 1, "<")) {
        ctx.add("hot-path-nested-container", t.line,
                "vector<vector<...>> stores each row behind its own "
                "allocation; use a flat pool with (offset, count) rows");
      }
      continue;
    }

    if (!any_of_idents(t, kAssociative) || !ctx.is(i + 1, "<")) continue;
    // Find the close of the template argument list, then the declarator.
    int depth = 0;
    std::size_t close = ctx.code.size();
    for (std::size_t j = i + 1; j < ctx.code.size(); ++j) {
      const std::string& s = ctx.code[j].text;
      if (ctx.code[j].kind != TokKind::kPunct) continue;
      if (s == "<") ++depth;
      if (s == "(" || s == "[") {  // skip nested brackets wholesale
        j = ctx.match(j, s == "(" ? "(" : "[", s == "(" ? ")" : "]") - 1;
        continue;
      }
      if (s == ">" && --depth == 0) {
        close = j;
        break;
      }
    }
    if (close == ctx.code.size()) continue;  // unbalanced; not a decl
    std::size_t j = close + 1;
    while (ctx.is(j, "&") || ctx.is(j, "*") || ctx.ident(j, "const")) ++j;
    if (j < ctx.code.size() && ctx.code[j].kind == TokKind::kIdentifier &&
        !ctx.code[j].text.empty() && ctx.code[j].text.back() == '_') {
      ctx.add("hot-path-nested-container", t.line,
              "member '" + ctx.code[j].text + "' is a node-based " + t.text +
              "; use a membership bitset plus sorted parallel vectors "
              "(the LinkStateOverlay degraded-set layout)");
    }
  }
}

}  // namespace

const std::vector<RuleInfo>& rule_catalogue() { return catalogue(); }

bool is_known_rule(const std::string& id) {
  return std::any_of(catalogue().begin(), catalogue().end(),
                     [&](const RuleInfo& r) { return id == r.id; });
}

const char* to_cstring(Severity severity) {
  return severity == Severity::kError ? "error" : "warning";
}

void run_rules(const std::string& path, const std::vector<Token>& tokens,
               std::vector<Finding>& out) {
  std::vector<Token> code;
  code.reserve(tokens.size());
  for (const Token& t : tokens) {
    if (t.kind != TokKind::kComment) code.push_back(t);
  }
  Ctx ctx{path, code, &out};
  rule_banned_identifiers(ctx);
  rule_unseeded_engine(ctx);
  rule_unordered_containers(ctx);
  rule_seed_arith(ctx);
  rule_assert_side_effect(ctx);
  rule_emit_in_parallel(ctx);
  rule_float_accum(ctx);
  rule_serve_bounded_retry(ctx);
  rule_hot_path_nested_container(ctx);
}

}  // namespace aspen::lint
