// aspen-lint — determinism & contracts static analyzer (front door).
//
// The repo's headline guarantee — routing tables, traces, and
// survivability results that are byte-identical across thread counts and
// kill/resume — is a *determinism* property: every output is a pure
// function of (topology, seed, fault schedule).  The dynamic layers
// (golden traces, digest diffs, TSan) can only catch a violation on a
// schedule that happens to trigger it.  This analyzer makes the property
// checkable on every commit by banning the ways nondeterminism enters a
// codebase at the source level: wall clocks, unseeded RNGs, hash-order
// iteration, ad-hoc seed arithmetic, and contracts that stop being
// side-effect-free when the build elides them.
//
// Pipeline: tokenize (token.h) -> run rules (rules.h) -> apply suppression
// annotations -> report.  Suppressions are explicit and audited — a comment
// of the form
//
//   <tool marker> allow(rule-id) -- reason the violation is intentional
//
// where the marker is the tool's name followed by a colon (spelled out in
// docs/LINT.md; writing it literally here would register this header's own
// documentation as an annotation), on the finding's line (trailing) or
// alone on the line above.  An
// annotation without a reason, or naming an unknown rule, is itself a
// finding (bad-suppression) — the zero-findings CI gate therefore proves
// both "no violations" and "every exception has a written rationale".
// Annotations that suppress nothing are reported (unused_suppressions) so
// stale exceptions surface when the code they excused is fixed.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/lint/rules.h"

namespace aspen::lint {

/// One `allow(...)` annotation that matched no finding.
struct UnusedSuppression {
  std::string file;
  int line = 0;
  std::string rules;  ///< comma-joined rule ids the annotation named
};

/// Aggregated result of linting one or more sources.
struct LintReport {
  std::vector<Finding> findings;  ///< every finding, suppressed or not
  std::vector<UnusedSuppression> unused_suppressions;
  std::uint64_t files_scanned = 0;

  [[nodiscard]] std::uint64_t unsuppressed_count() const;
  [[nodiscard]] std::uint64_t suppressed_count() const;
  /// The CI gate: true iff no unsuppressed finding exists.
  [[nodiscard]] bool clean() const { return unsuppressed_count() == 0; }
};

/// Lints one in-memory source.  `path` is the repo-relative path used for
/// per-path rule scoping (rules.h) and reporting.
[[nodiscard]] LintReport lint_source(const std::string& path,
                                     const std::string& source);

/// Lints files on disk (paths resolved against `root` when relative),
/// merging per-file reports.  A missing/unreadable file produces an
/// `io-error` finding rather than aborting the run.
[[nodiscard]] LintReport lint_files(const std::string& root,
                                    const std::vector<std::string>& paths);

/// Machine-readable report: findings (with suppression state and reasons),
/// per-rule counts, and unused suppressions.  Key order is fixed and
/// containers are emitted in deterministic (input/id) order — the linter
/// holds itself to the rules it enforces.
[[nodiscard]] std::string report_to_json(const LintReport& report);

/// Human-readable findings, one per line: file:line: severity [rule] msg.
[[nodiscard]] std::string report_to_text(const LintReport& report);

}  // namespace aspen::lint
