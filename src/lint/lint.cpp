#include "src/lint/lint.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>

namespace aspen::lint {

namespace {

constexpr const char* kMarker = "aspen-lint:";

std::string trim(const std::string& s) {
  std::size_t b = s.find_first_not_of(" \t");
  std::size_t e = s.find_last_not_of(" \t");
  if (b == std::string::npos) return "";
  return s.substr(b, e - b + 1);
}

/// One parsed `allow(...)` annotation, anchored to the line it governs.
struct Suppression {
  int target_line = 0;
  int comment_line = 0;
  std::vector<std::string> rules;
  std::string reason;
  bool used = false;
};

void add_meta(std::vector<Finding>& out, const char* rule,
              const std::string& file, int line, std::string message) {
  Finding f;
  f.rule = rule;
  f.severity = Severity::kError;
  f.file = file;
  f.line = line;
  f.message = std::move(message);
  out.push_back(std::move(f));
}

/// Parses annotations out of comment tokens.  Malformed annotations (no
/// allow(...), empty rule list, unknown rule, missing `-- reason`) become
/// bad-suppression findings — the gate proves every exception is both
/// well-formed and justified in writing.
std::vector<Suppression> collect_suppressions(
    const std::string& path, const std::vector<Token>& tokens,
    std::vector<Finding>& findings) {
  std::vector<Suppression> result;
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    const Token& t = tokens[i];
    if (t.kind != TokKind::kComment) continue;
    const std::size_t at = t.text.find(kMarker);
    if (at == std::string::npos) continue;

    const std::string body = t.text.substr(at + std::string(kMarker).size());
    const std::size_t open = body.find("allow(");
    const std::size_t close =
        open == std::string::npos ? std::string::npos : body.find(')', open);
    if (open == std::string::npos || close == std::string::npos ||
        trim(body.substr(0, open)) != "") {
      add_meta(findings, "bad-suppression", path, t.line,
               "malformed annotation; expected 'aspen-lint: allow(rule) -- "
               "reason'");
      continue;
    }

    Suppression sup;
    sup.comment_line = t.line;
    std::stringstream rules(body.substr(open + 6, close - open - 6));
    std::string id;
    bool ok = true;
    while (std::getline(rules, id, ',')) {
      id = trim(id);
      if (id.empty() || !is_known_rule(id)) {
        add_meta(findings, "bad-suppression", path, t.line,
                 "allow() names unknown rule '" + id + "'");
        ok = false;
        continue;
      }
      if (id == "bad-suppression") {
        add_meta(findings, "bad-suppression", path, t.line,
                 "bad-suppression cannot be suppressed");
        ok = false;
        continue;
      }
      sup.rules.push_back(id);
    }
    const std::size_t dash = body.find("--", close);
    sup.reason =
        dash == std::string::npos ? "" : trim(body.substr(dash + 2));
    if (sup.reason.empty()) {
      add_meta(findings, "bad-suppression", path, t.line,
               "allow() without a written rationale; append '-- reason'");
      ok = false;
    }
    if (!ok || sup.rules.empty()) continue;

    // Trailing comment governs its own line; a standalone comment governs
    // the next line.  "Standalone" = no code token shares the line.
    const bool standalone = std::none_of(
        tokens.begin(), tokens.end(), [&](const Token& other) {
          return other.kind != TokKind::kComment && other.line == t.line;
        });
    sup.target_line = standalone ? t.line + 1 : t.line;
    result.push_back(std::move(sup));
  }
  return result;
}

void apply_suppressions(std::vector<Suppression>& sups,
                        std::vector<Finding>& findings) {
  for (Finding& f : findings) {
    if (f.rule == "bad-suppression") continue;  // never suppressible
    for (Suppression& s : sups) {
      if (s.target_line != f.line) continue;
      if (std::find(s.rules.begin(), s.rules.end(), f.rule) ==
          s.rules.end()) {
        continue;
      }
      f.suppressed = true;
      f.suppress_reason = s.reason;
      s.used = true;
      break;
    }
  }
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::uint64_t LintReport::unsuppressed_count() const {
  return static_cast<std::uint64_t>(
      std::count_if(findings.begin(), findings.end(),
                    [](const Finding& f) { return !f.suppressed; }));
}

std::uint64_t LintReport::suppressed_count() const {
  return static_cast<std::uint64_t>(findings.size()) - unsuppressed_count();
}

LintReport lint_source(const std::string& path, const std::string& source) {
  LintReport report;
  report.files_scanned = 1;
  const std::vector<Token> tokens = tokenize(source);
  run_rules(path, tokens, report.findings);
  std::vector<Suppression> sups =
      collect_suppressions(path, tokens, report.findings);
  apply_suppressions(sups, report.findings);
  for (const Suppression& s : sups) {
    if (s.used) continue;
    std::string ids;
    for (const std::string& id : s.rules) {
      if (!ids.empty()) ids += ",";
      ids += id;
    }
    report.unused_suppressions.push_back(
        UnusedSuppression{path, s.comment_line, ids});
  }
  // Deterministic presentation order regardless of rule execution order.
  std::sort(report.findings.begin(), report.findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.line != b.line) return a.line < b.line;
              if (a.rule != b.rule) return a.rule < b.rule;
              return a.message < b.message;
            });
  return report;
}

LintReport lint_files(const std::string& root,
                      const std::vector<std::string>& paths) {
  LintReport merged;
  for (const std::string& path : paths) {
    const bool absolute = !path.empty() && path.front() == '/';
    const std::string full = absolute || root.empty() ? path
                                                      : root + "/" + path;
    std::ifstream in(full, std::ios::binary);
    if (!in) {
      add_meta(merged.findings, "io-error", path, 0, "cannot read file");
      ++merged.files_scanned;
      continue;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    LintReport one = lint_source(path, buffer.str());
    merged.files_scanned += one.files_scanned;
    for (Finding& f : one.findings) merged.findings.push_back(std::move(f));
    for (UnusedSuppression& u : one.unused_suppressions) {
      merged.unused_suppressions.push_back(std::move(u));
    }
  }
  return merged;
}

std::string report_to_json(const LintReport& report) {
  std::map<std::string, std::uint64_t> per_rule;
  std::uint64_t errors = 0;
  std::uint64_t warnings = 0;
  for (const Finding& f : report.findings) {
    if (f.suppressed) continue;
    ++per_rule[f.rule];
    (f.severity == Severity::kError ? errors : warnings) += 1;
  }

  std::ostringstream os;
  os << "{\n";
  os << "  \"tool\": \"aspen-lint\",\n";
  os << "  \"format_version\": 1,\n";
  os << "  \"files_scanned\": " << report.files_scanned << ",\n";
  os << "  \"unsuppressed\": " << report.unsuppressed_count() << ",\n";
  os << "  \"suppressed\": " << report.suppressed_count() << ",\n";
  os << "  \"errors\": " << errors << ",\n";
  os << "  \"warnings\": " << warnings << ",\n";

  os << "  \"rules\": {";
  bool first = true;
  for (const RuleInfo& r : rule_catalogue()) {
    os << (first ? "" : ",") << "\n    \"" << r.id << "\": "
       << (per_rule.count(r.id) != 0 ? per_rule.at(r.id) : 0);
    first = false;
  }
  os << "\n  },\n";

  os << "  \"findings\": [";
  first = true;
  for (const Finding& f : report.findings) {
    os << (first ? "" : ",") << "\n    {\"rule\": \"" << f.rule
       << "\", \"severity\": \"" << to_cstring(f.severity)
       << "\", \"file\": \"" << json_escape(f.file)
       << "\", \"line\": " << f.line << ", \"message\": \""
       << json_escape(f.message) << "\", \"suppressed\": "
       << (f.suppressed ? "true" : "false");
    if (f.suppressed) {
      os << ", \"reason\": \"" << json_escape(f.suppress_reason) << "\"";
    }
    os << "}";
    first = false;
  }
  os << "\n  ],\n";

  os << "  \"unused_suppressions\": [";
  first = true;
  for (const UnusedSuppression& u : report.unused_suppressions) {
    os << (first ? "" : ",") << "\n    {\"file\": \"" << json_escape(u.file)
       << "\", \"line\": " << u.line << ", \"rules\": \""
       << json_escape(u.rules) << "\"}";
    first = false;
  }
  os << "\n  ]\n}\n";
  return os.str();
}

std::string report_to_text(const LintReport& report) {
  std::ostringstream os;
  for (const Finding& f : report.findings) {
    if (f.suppressed) continue;
    os << f.file << ":" << f.line << ": " << to_cstring(f.severity) << " ["
       << f.rule << "] " << f.message << "\n";
  }
  for (const UnusedSuppression& u : report.unused_suppressions) {
    os << u.file << ":" << u.line << ": note [unused-suppression] allow("
       << u.rules << ") matched no finding; delete the stale annotation\n";
  }
  return os.str();
}

}  // namespace aspen::lint
