#include "src/lint/token.h"

#include <array>
#include <cstddef>

namespace aspen::lint {

namespace {

[[nodiscard]] bool is_ident_start(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_';
}

[[nodiscard]] bool is_ident_char(char c) {
  return is_ident_start(c) || (c >= '0' && c <= '9');
}

[[nodiscard]] bool is_digit(char c) { return c >= '0' && c <= '9'; }

// Multi-character operators, longest first within each leading character
// (the scanner tries them in order and takes the first prefix match).
constexpr std::array<const char*, 21> kMultiPunct = {
    "<<=", ">>=", "...", "->*", "::", "++", "--", "+=", "-=", "*=", "/=",
    "%=",  "&=",  "|=",  "^=",  "==", "!=", "<=", ">=", "&&", "||",
};
// "<<", ">>", and "->" are deliberately absent: the rule engine matches
// template argument lists by bracket depth, and a ">>" token would hide
// the two closing angles it contains.  "->" still arrives as '-' '>' and
// rules that care test the pair.

/// Cursor over raw source text with physical line/column tracking.  Line
/// continuations (backslash-newline) are spliced *by the consumers that
/// the standard splices them for* — identifiers and operators never contain
/// them in practice, and raw string literals must see them verbatim.
class Scanner {
 public:
  explicit Scanner(const std::string& src) : src_(src) {}

  [[nodiscard]] bool done() const { return pos_ >= src_.size(); }
  [[nodiscard]] char peek(std::size_t ahead = 0) const {
    return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
  }
  [[nodiscard]] int line() const { return line_; }
  [[nodiscard]] int column() const { return column_; }

  char take() {
    const char c = src_[pos_++];
    if (c == '\n') {
      ++line_;
      column_ = 1;
      at_line_start_ = true;
    } else {
      ++column_;
      if (c != ' ' && c != '\t' && c != '\r') at_line_start_ = false;
    }
    return c;
  }

  /// True while only whitespace has been consumed on the current physical
  /// line — the condition under which '#' opens a directive.
  [[nodiscard]] bool at_line_start() const { return at_line_start_; }

  /// Consumes a backslash-newline splice if one starts here.
  bool splice() {
    if (peek() == '\\' && (peek(1) == '\n' ||
                           (peek(1) == '\r' && peek(2) == '\n'))) {
      take();                    // backslash
      if (peek() == '\r') take();
      take();                    // newline
      return true;
    }
    return false;
  }

 private:
  const std::string& src_;
  std::size_t pos_ = 0;
  int line_ = 1;
  int column_ = 1;
  bool at_line_start_ = true;
};

class Lexer {
 public:
  explicit Lexer(const std::string& src) : s_(src) {}

  std::vector<Token> run() {
    while (!s_.done()) {
      if (s_.splice()) continue;  // splice outside any token: invisible
      const char c = s_.peek();
      if (c == ' ' || c == '\t' || c == '\r') {
        s_.take();
        continue;
      }
      if (c == '\n') {
        s_.take();
        in_directive_ = false;
        continue;
      }
      if (c == '#' && s_.at_line_start()) {
        in_directive_ = true;
        begin();
        text_ += s_.take();
        emit(TokKind::kPunct);
        continue;
      }
      if (c == '/' && s_.peek(1) == '/') {
        line_comment();
        continue;
      }
      if (c == '/' && s_.peek(1) == '*') {
        block_comment();
        continue;
      }
      if (is_ident_start(c)) {
        identifier_or_literal_prefix();
        continue;
      }
      if (is_digit(c) || (c == '.' && is_digit(s_.peek(1)))) {
        number();
        continue;
      }
      if (c == '"') {
        string_literal();
        continue;
      }
      if (c == '\'') {
        char_literal();
        continue;
      }
      punct();
    }
    return out_;
  }

 private:
  void begin() {
    text_.clear();
    tok_line_ = s_.line();
    tok_column_ = s_.column();
  }

  void emit(TokKind kind) {
    Token t;
    t.kind = kind;
    t.text = text_;
    t.line = tok_line_;
    t.column = tok_column_;
    t.preprocessor = in_directive_;
    out_.push_back(std::move(t));
  }

  void line_comment() {
    begin();
    text_ += s_.take();  // '/'
    text_ += s_.take();  // '/'
    // A // comment extends across line continuations (the splice happens
    // before comment recognition in real translation).
    while (!s_.done()) {
      if (s_.splice()) {
        text_ += '\n';
        continue;
      }
      if (s_.peek() == '\n') break;
      text_ += s_.take();
    }
    emit(TokKind::kComment);
  }

  void block_comment() {
    begin();
    text_ += s_.take();  // '/'
    text_ += s_.take();  // '*'
    while (!s_.done()) {
      if (s_.peek() == '*' && s_.peek(1) == '/') {
        text_ += s_.take();
        text_ += s_.take();
        break;
      }
      text_ += s_.take();
    }
    emit(TokKind::kComment);
  }

  void identifier_or_literal_prefix() {
    begin();
    while (!s_.done() && is_ident_char(s_.peek())) text_ += s_.take();
    // An encoding prefix glued to a quote is part of the literal:
    // u8R"(..)", LR"(..)", u"..", L'x', ...
    const bool raw = !text_.empty() && text_.back() == 'R';
    const std::string prefix = raw ? text_.substr(0, text_.size() - 1) : text_;
    const bool enc = prefix.empty() || prefix == "u8" || prefix == "u" ||
                     prefix == "U" || prefix == "L";
    if (enc && s_.peek() == '"') {
      if (raw) {
        raw_string_tail();
      } else {
        string_tail();
      }
      emit(TokKind::kString);
      return;
    }
    if (enc && !raw && !prefix.empty() && s_.peek() == '\'') {
      char_tail();
      emit(TokKind::kChar);
      return;
    }
    emit(TokKind::kIdentifier);
  }

  /// Consumes "..." with escapes; the opening quote is next.
  void string_tail() {
    text_ += s_.take();  // '"'
    while (!s_.done()) {
      if (s_.splice()) continue;
      const char c = s_.take();
      text_ += c;
      if (c == '\\' && !s_.done()) {
        text_ += s_.take();  // escaped char (quote, backslash, ...)
        continue;
      }
      if (c == '"' || c == '\n') break;  // newline: unterminated, recover
    }
  }

  /// Consumes R"delim( ... )delim"; the opening quote is next.  No splicing
  /// and no escapes: raw strings see source text verbatim.
  void raw_string_tail() {
    text_ += s_.take();  // '"'
    std::string delim;
    while (!s_.done() && s_.peek() != '(' && s_.peek() != '\n' &&
           delim.size() < 16) {
      delim += s_.take();
    }
    text_ += delim;
    if (s_.done() || s_.peek() != '(') return;  // malformed; give up quietly
    text_ += s_.take();                         // '('
    const std::string closer = ")" + delim + "\"";
    std::string window;
    while (!s_.done()) {
      const char c = s_.take();
      text_ += c;
      window += c;
      if (window.size() > closer.size()) window.erase(window.begin());
      if (window == closer) return;
    }
  }

  void char_tail() {
    text_ += s_.take();  // '\''
    while (!s_.done()) {
      if (s_.splice()) continue;
      const char c = s_.take();
      text_ += c;
      if (c == '\\' && !s_.done()) {
        text_ += s_.take();
        continue;
      }
      if (c == '\'' || c == '\n') break;
    }
  }

  void string_literal() {
    begin();
    string_tail();
    emit(TokKind::kString);
  }

  void char_literal() {
    begin();
    char_tail();
    emit(TokKind::kChar);
  }

  void number() {
    begin();
    // pp-number: digits, identifier chars, digit separators, '.'; a sign
    // directly after an exponent marker stays inside the token.
    text_ += s_.take();
    while (!s_.done()) {
      const char c = s_.peek();
      if (is_ident_char(c) || c == '.') {
        text_ += s_.take();
        continue;
      }
      if (c == '\'' && is_ident_char(s_.peek(1))) {  // digit separator
        text_ += s_.take();
        text_ += s_.take();
        continue;
      }
      if ((c == '+' || c == '-') && !text_.empty()) {
        const char e = text_.back();
        if (e == 'e' || e == 'E' || e == 'p' || e == 'P') {
          text_ += s_.take();
          continue;
        }
      }
      break;
    }
    emit(TokKind::kNumber);
  }

  void punct() {
    begin();
    for (const char* op : kMultiPunct) {
      std::size_t n = 0;
      while (op[n] != '\0' && s_.peek(n) == op[n]) ++n;
      if (op[n] == '\0') {
        for (std::size_t i = 0; i < n; ++i) text_ += s_.take();
        emit(TokKind::kPunct);
        return;
      }
    }
    text_ += s_.take();
    emit(TokKind::kPunct);
  }

  Scanner s_;
  std::vector<Token> out_;
  std::string text_;
  int tok_line_ = 1;
  int tok_column_ = 1;
  bool in_directive_ = false;
};

}  // namespace

std::vector<Token> tokenize(const std::string& source) {
  return Lexer(source).run();
}

const char* to_cstring(TokKind kind) {
  switch (kind) {
    case TokKind::kIdentifier: return "identifier";
    case TokKind::kNumber: return "number";
    case TokKind::kString: return "string";
    case TokKind::kChar: return "char";
    case TokKind::kPunct: return "punct";
    case TokKind::kComment: return "comment";
  }
  return "unknown";
}

}  // namespace aspen::lint
