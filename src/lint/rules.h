// aspen-lint rule engine: the catalogue of repo-specific contracts and the
// token-stream checks that enforce them (docs/LINT.md is the prose
// catalogue; this header is the machine one).
//
// These are deliberately rules clang-tidy cannot express — they encode
// *this repo's* determinism architecture: virtual time lives in src/sim,
// seed mixing lives in fault::derive_stream_seed, obs emission is
// orchestrator-thread-only, contracts must survive elision.  Each rule is
// a pure function over one translation unit's token stream; path-scoped
// rules (wall-clock, seed-arith, float-accum) take the repo-relative path.
#pragma once

#include <string>
#include <vector>

#include "src/lint/token.h"

namespace aspen::lint {

enum class Severity { kError, kWarning };

[[nodiscard]] const char* to_cstring(Severity severity);

/// One rule violation at a source location.  `suppressed` flips to true
/// when an `allow(rule)` annotation with a written rationale
/// covers the line (lint.h applies annotations after the rules run).
struct Finding {
  std::string rule;
  Severity severity = Severity::kError;
  std::string file;
  int line = 0;
  std::string message;
  bool suppressed = false;
  std::string suppress_reason;
};

/// Catalogue entry for one rule (docs/LINT.md mirrors this table).
struct RuleInfo {
  const char* id;
  Severity severity;
  const char* summary;
};

/// Every rule the engine runs, in stable id order.  The meta finding
/// `bad-suppression` (emitted by the suppression parser, lint.cpp) is
/// listed here too so `--list-rules` and the JSON rule table are complete.
[[nodiscard]] const std::vector<RuleInfo>& rule_catalogue();

/// True iff `id` names a rule in the catalogue.
[[nodiscard]] bool is_known_rule(const std::string& id);

/// Runs every token-stream rule over one translation unit, appending
/// findings (suppression not yet applied).  `path` must be repo-relative
/// with forward slashes — rule scoping matches on path prefixes.
void run_rules(const std::string& path, const std::vector<Token>& tokens,
               std::vector<Finding>& out);

}  // namespace aspen::lint
