#include "src/aspen/fixed_hosts.h"

#include <algorithm>

#include "src/aspen/generator.h"
#include "src/util/contracts.h"
#include "src/util/status.h"

namespace aspen {

FaultToleranceVector fixed_host_ftv(int n_fat, int k, int extra_levels,
                                    RedundancyPlacement placement) {
  ASPEN_REQUIRE(n_fat >= 2, "base fat tree depth must be >= 2, got ", n_fat);
  ASPEN_REQUIRE(k >= 4 && k % 2 == 0,
                "fixed-host designs need even k >= 4, got ", k);
  ASPEN_REQUIRE(extra_levels >= 1, "extra_levels must be >= 1, got ",
                extra_levels);

  const int n = n_fat + extra_levels;
  const int ft = k / 2 - 1;  // c = k/2 at each fault-tolerant level
  std::vector<int> entries(static_cast<std::size_t>(n - 1), 0);

  switch (placement) {
    case RedundancyPlacement::kTop:
      // Levels n, n-1, …, n-x+1 carry redundancy: leftmost x entries.
      for (int j = 0; j < extra_levels; ++j) {
        entries[static_cast<std::size_t>(j)] = ft;
      }
      break;
    case RedundancyPlacement::kBottom:
      // Levels x+1, …, 2 carry redundancy: rightmost x entries.
      for (int j = 0; j < extra_levels; ++j) {
        entries[entries.size() - 1 - static_cast<std::size_t>(j)] = ft;
      }
      break;
    case RedundancyPlacement::kSpread: {
      // §8.1: cluster non-zero entries leftward while minimizing runs of
      // contiguous zeros: split the vector into x contiguous segments of
      // near-equal length, each starting with a non-zero entry.
      const auto len = entries.size();
      const auto x = static_cast<std::size_t>(extra_levels);
      std::size_t start = 0;
      for (std::size_t seg = 0; seg < x; ++seg) {
        const std::size_t seg_len = len / x + (seg < len % x ? 1 : 0);
        ASPEN_CHECK(seg_len >= 1, "more redundant levels than entries");
        entries[start] = ft;
        start += seg_len;
      }
      break;
    }
  }
  ASPEN_ASSERT(std::ranges::count_if(entries,
                                     [](int e) { return e != 0; }) ==
                   extra_levels,
               "each added level carries exactly one redundancy entry");
  return FaultToleranceVector(std::move(entries));
}

TreeParams design_fixed_host_tree(int n_fat, int k, int extra_levels,
                                  RedundancyPlacement placement) {
  const auto ftv = fixed_host_ftv(n_fat, k, extra_levels, placement);
  TreeParams aspen = generate_tree(n_fat + extra_levels, k, ftv);

  // Invariant promised by the design: host count matches the base fat tree.
  const TreeParams base = fat_tree(n_fat, k);
  ASPEN_CHECK(aspen.num_hosts() == base.num_hosts(),
              "fixed-host design changed the host count: ", aspen.num_hosts(),
              " vs ", base.num_hosts());
  return aspen;
}

std::uint64_t switches_added(int n_fat, int k, int extra_levels) {
  const TreeParams base = fat_tree(n_fat, k);
  const TreeParams aspen = design_fixed_host_tree(n_fat, k, extra_levels);
  return aspen.total_switches() - base.total_switches();
}

}  // namespace aspen
