#include "src/aspen/recommend.h"

#include <algorithm>
#include <functional>

#include "src/aspen/generator.h"
#include "src/util/contracts.h"
#include "src/util/status.h"

namespace aspen {

FaultToleranceVector recommend_ftv_placement(int n, int budget, int ft) {
  ASPEN_REQUIRE(n >= 2, "tree depth must be >= 2, got ", n);
  ASPEN_REQUIRE(budget >= 1 && budget <= n - 1, "budget ", budget,
                " out of range [1,", n - 1, "]");
  ASPEN_REQUIRE(ft >= 1, "fault tolerance value must be >= 1, got ", ft);

  const auto len = static_cast<std::size_t>(n - 1);
  const auto b = static_cast<std::size_t>(budget);
  std::vector<int> entries(len, 0);
  // Contiguous segments of near-equal length, longer segments first, each
  // led by a non-zero entry; yields <x,0,0,x,0,0> for len=6, budget=2.
  std::size_t start = 0;
  for (std::size_t seg = 0; seg < b; ++seg) {
    const std::size_t seg_len = len / b + (seg < len % b ? 1 : 0);
    entries[start] = ft;
    start += seg_len;
  }
  ASPEN_ASSERT(static_cast<std::size_t>(std::ranges::count_if(
                   entries, [](int e) { return e != 0; })) == b,
               "placement must spend exactly the budget");
  return FaultToleranceVector(std::move(entries));
}

TreeParams top_level_redundant_tree(int n, int k) {
  std::vector<int> entries(static_cast<std::size_t>(n - 1), 0);
  entries[0] = 1;
  return generate_tree(n, k, FaultToleranceVector(std::move(entries)));
}

PlacementQuality evaluate_placement(const FaultToleranceVector& ftv) {
  const int n = ftv.levels();
  PlacementQuality q;

  // Longest run of zeros in top-down entry order.
  int run = 0;
  for (int e : ftv.entries()) {
    run = (e == 0) ? run + 1 : 0;
    q.longest_zero_run = std::max(q.longest_zero_run, run);
  }

  // A zero entry at level i is covered when some level f > i has ft > 0;
  // in top-down entry order that means a non-zero entry to its left.
  q.covered = true;
  bool seen_nonzero = false;
  for (int e : ftv.entries()) {
    if (e != 0) {
      seen_nonzero = true;
    } else if (!seen_nonzero) {
      q.covered = false;
    }
  }

  // Mean propagation distance over failure levels 2..n (§9.1 model).
  double total = 0.0;
  for (Level i = 2; i <= n; ++i) {
    const Level f = ftv.nearest_fault_tolerant_level_at_or_above(i);
    total += (f != 0) ? (f - i) : (n - i) + (n - 1);
  }
  q.average_hops = total / static_cast<double>(n - 1);
  return q;
}

std::vector<FaultToleranceVector> rank_placements(int n, int k, int budget,
                                                  int ft) {
  ASPEN_REQUIRE(budget >= 1 && budget <= n - 1, "budget ", budget,
                " out of range [1,", n - 1, "]");
  const auto len = static_cast<std::size_t>(n - 1);

  // Enumerate all C(len, budget) placements of `ft` into a zero vector,
  // keeping only placements that form valid (n, k) trees.
  std::vector<FaultToleranceVector> placements;
  std::vector<int> entries(len, 0);
  const std::function<void(std::size_t, int)> recurse = [&](std::size_t pos,
                                                            int remaining) {
    if (remaining == 0) {
      FaultToleranceVector ftv{entries};
      if (is_valid_tree(n, k, ftv)) placements.push_back(std::move(ftv));
      return;
    }
    if (pos + static_cast<std::size_t>(remaining) > len) return;
    entries[pos] = ft;
    recurse(pos + 1, remaining - 1);
    entries[pos] = 0;
    recurse(pos + 1, remaining);
  };
  recurse(0, budget);

  std::ranges::stable_sort(placements, [](const FaultToleranceVector& a,
                                          const FaultToleranceVector& b) {
    const PlacementQuality qa = evaluate_placement(a);
    const PlacementQuality qb = evaluate_placement(b);
    if (qa.covered != qb.covered) return qa.covered;  // covered first
    if (qa.average_hops != qb.average_hops) {
      return qa.average_hops < qb.average_hops;
    }
    return qa.longest_zero_run < qb.longest_zero_run;
  });
  return placements;
}

}  // namespace aspen
