// TreeParams — the formal definition of an Aspen tree (§4.1.1).
//
// An n-level, k-port Aspen tree is defined by per-level values p_i (pods at
// L_i), m_i (switches per L_i pod), r_i (L_{i-1} pods each L_i switch
// connects to) and c_i (links from an L_i switch to each such pod), subject
// to the paper's constraint equations:
//
//   (1)  p_i·m_i = S for 1 <= i < n,  p_n·m_n = S/2
//   (2)  r_i·c_i = k/2 for 1 < i < n,  r_n·c_n = k
//   (3)  p_i·r_i = p_{i-1} for 1 < i <= n,  with p_n = 1
//
// All vectors here are 1-indexed by level (index 0 is unused) so code reads
// exactly like the paper's math.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "src/aspen/ftv.h"
#include "src/util/ids.h"

namespace aspen {

struct TreeParams {
  int n = 0;  ///< number of switch levels
  int k = 0;  ///< ports per switch (even)

  /// Switches per level: S at L_1..L_{n-1}, S/2 at L_n.
  std::uint64_t S = 0;

  std::vector<std::uint64_t> p;  ///< p[1..n]: pods per level
  std::vector<std::uint64_t> m;  ///< m[1..n]: switches per pod
  std::vector<std::uint64_t> r;  ///< r[2..n]: pods-below per switch
  std::vector<std::uint64_t> c;  ///< c[2..n]: links per pod-below per switch

  /// Number of switches at level i (S for i < n, S/2 for i == n).
  [[nodiscard]] std::uint64_t switches_at_level(Level i) const;

  /// Total switch count: (n − 1/2)·S (§5.2).
  [[nodiscard]] std::uint64_t total_switches() const;

  /// Host count: (k/2)·S = k^n / 2^{n-1} / DCC (Eq. 6).
  [[nodiscard]] std::uint64_t num_hosts() const;

  /// Total number of links, including host links: each of L_1..L_{n-1}
  /// contributes S·k/2 uplinks and hosts contribute S·k/2 links, i.e.
  /// n·S·k/2 in total (matches §1 footnote 1: 196,608 for n=3, k=64).
  [[nodiscard]] std::uint64_t total_links() const;

  /// Links between switch levels only (no host links): (n−1)·S·k/2.
  [[nodiscard]] std::uint64_t inter_switch_links() const;

  /// Duplicate Connection Count: Π c_i (§5.2).
  [[nodiscard]] std::uint64_t dcc() const;

  /// The tree's Fault Tolerance Vector <c_n−1, …, c_2−1>.
  [[nodiscard]] FaultToleranceVector ftv() const;

  /// Fault tolerance (c_i − 1) between L_i and L_{i-1}, i in [2, n].
  [[nodiscard]] int fault_tolerance_at_level(Level i) const;

  /// Hierarchical aggregation at level i: m_i / m_{i-1} (§5.3).
  [[nodiscard]] double aggregation_at_level(Level i) const;

  /// Overall hierarchical aggregation: m_n / m_1 = S/2 / m_1 (§5.3).
  [[nodiscard]] double overall_aggregation() const;

  /// Throws InvalidTreeError unless Eq. 1–3 and integrality all hold.
  void validate() const;

  /// Human-readable one-liner, e.g. "Aspen(n=4,k=6,FTV=<0,2,0>)".
  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const TreeParams&, const TreeParams&) = default;
};

std::ostream& operator<<(std::ostream& os, const TreeParams& params);

}  // namespace aspen
