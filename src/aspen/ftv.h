// Fault Tolerance Vector (FTV) — the paper's taxonomy for Aspen trees (§5.1).
//
// An n-level Aspen tree's FTV lists, from the top of the tree down, the
// per-level fault tolerance values <c_n − 1, …, c_2 − 1>.  Entry j (0-based
// from the left) therefore describes the links between level n−j and the
// level beneath it.  A traditional fat tree is <0, …, 0>.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <iosfwd>
#include <string>
#include <vector>

#include "src/util/ids.h"

namespace aspen {

class FaultToleranceVector {
 public:
  /// An empty FTV (valid only for degenerate 1-level trees).
  FaultToleranceVector() = default;

  /// Constructs from top-down entries <ft_n, …, ft_2>; each entry >= 0.
  explicit FaultToleranceVector(std::vector<int> top_down_entries);
  FaultToleranceVector(std::initializer_list<int> top_down_entries);

  /// The all-zero FTV of a traditional fat tree with `levels` levels.
  [[nodiscard]] static FaultToleranceVector fat_tree(int levels);

  /// Uniform FTV (same fault tolerance between every pair of levels).
  [[nodiscard]] static FaultToleranceVector uniform(int levels, int ft);

  /// Parses strings like "<1,0,0>" or "1,0,0".
  [[nodiscard]] static FaultToleranceVector parse(const std::string& text);

  /// Number of levels n in a tree described by this FTV (entries + 1).
  [[nodiscard]] int levels() const { return static_cast<int>(entries_.size()) + 1; }

  /// Entries, top-down, as given at construction.
  [[nodiscard]] const std::vector<int>& entries() const { return entries_; }

  /// Fault tolerance between L_i and L_{i-1}, for i in [2, n].
  [[nodiscard]] int at_level(Level i) const;

  /// Connection count c_i = fault tolerance + 1, for i in [2, n].
  [[nodiscard]] int connections_at_level(Level i) const {
    return at_level(i) + 1;
  }

  /// Duplicate Connection Count: Π c_i — the number of distinct paths from
  /// an L_n switch to any given L_1 switch (§5.2 footnote 8).
  [[nodiscard]] std::uint64_t dcc() const;

  /// True iff every entry is zero (a traditional fat tree).
  [[nodiscard]] bool is_fat_tree() const;

  /// True iff every entry is non-zero (instant local reaction everywhere).
  [[nodiscard]] bool is_fully_fault_tolerant() const;

  /// Highest level i with non-zero fault tolerance at or above `from`
  /// (i >= from), or 0 if no such level exists.  This is the level whose
  /// redundancy absorbs a failure at `from` (§6).
  [[nodiscard]] Level nearest_fault_tolerant_level_at_or_above(
      Level from) const;

  /// Renders as "<a,b,c>".
  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const FaultToleranceVector&,
                         const FaultToleranceVector&) = default;

 private:
  std::vector<int> entries_;  // top-down: entries_[0] is between L_n, L_{n-1}
};

std::ostream& operator<<(std::ostream& os, const FaultToleranceVector& ftv);

}  // namespace aspen
