// Exhaustive enumeration of Aspen trees (§4.1.2, last paragraph).
//
// "Instead of making decisions for the values of r_i and c_i at each level,
//  we can choose to enumerate all possibilities … this generates an
//  exhaustive listing of all possible Aspen trees given k and n."
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "src/aspen/tree_params.h"

namespace aspen {

/// Optional filters applied during enumeration.
struct EnumerationFilter {
  /// Keep only trees supporting at least this many hosts.
  std::optional<std::uint64_t> min_hosts;
  /// Keep only trees with at most this many total switches.
  std::optional<std::uint64_t> max_switches;
  /// Keep only trees whose every level's fault tolerance is at most this.
  std::optional<int> max_fault_tolerance;
  /// Keep only trees whose worst-case update propagation distance is at
  /// most this many hops (uses the §9.1 distance model).
  std::optional<int> max_propagation_hops;

  [[nodiscard]] bool accepts(const TreeParams& t) const;
};

/// All valid n-level, k-port Aspen trees, in lexicographic FTV order
/// (top level varies slowest).  The traditional fat tree is always first.
[[nodiscard]] std::vector<TreeParams> enumerate_trees(
    int n, int k, const EnumerationFilter& filter = {});

/// Streaming variant: invokes `visit` for each valid tree; `visit` may
/// return false to stop early.  Useful for very large (n, k).
void for_each_tree(int n, int k,
                   const std::function<bool(const TreeParams&)>& visit);

/// Number of valid n-level, k-port Aspen trees.
[[nodiscard]] std::size_t count_trees(int n, int k);

}  // namespace aspen
