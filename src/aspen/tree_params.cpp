#include "src/aspen/tree_params.h"

#include <ostream>
#include <sstream>

#include "src/util/contracts.h"
#include "src/util/status.h"

namespace aspen {

std::uint64_t TreeParams::switches_at_level(Level i) const {
  ASPEN_REQUIRE(i >= 1 && i <= n, "level ", i, " out of range [1,", n, "]");
  return i == n ? S / 2 : S;
}

std::uint64_t TreeParams::total_switches() const {
  return static_cast<std::uint64_t>(n - 1) * S + S / 2;
}

std::uint64_t TreeParams::num_hosts() const {
  return S * static_cast<std::uint64_t>(k) / 2;
}

std::uint64_t TreeParams::total_links() const {
  return static_cast<std::uint64_t>(n) * S * static_cast<std::uint64_t>(k) / 2;
}

std::uint64_t TreeParams::inter_switch_links() const {
  return static_cast<std::uint64_t>(n - 1) * S *
         static_cast<std::uint64_t>(k) / 2;
}

std::uint64_t TreeParams::dcc() const {
  std::uint64_t product = 1;
  for (Level i = 2; i <= n; ++i) product *= c[static_cast<std::size_t>(i)];
  return product;
}

FaultToleranceVector TreeParams::ftv() const {
  std::vector<int> entries;
  entries.reserve(static_cast<std::size_t>(n - 1));
  for (Level i = n; i >= 2; --i) {
    ASPEN_ASSERT(c[static_cast<std::size_t>(i)] >= 1,
                 "c_i must be positive to express a fault tolerance");
    entries.push_back(static_cast<int>(c[static_cast<std::size_t>(i)]) - 1);
  }
  return FaultToleranceVector(std::move(entries));
}

int TreeParams::fault_tolerance_at_level(Level i) const {
  ASPEN_REQUIRE(i >= 2 && i <= n, "level ", i, " out of range [2,", n, "]");
  return static_cast<int>(c[static_cast<std::size_t>(i)]) - 1;
}

double TreeParams::aggregation_at_level(Level i) const {
  ASPEN_REQUIRE(i >= 2 && i <= n, "level ", i, " out of range [2,", n, "]");
  return static_cast<double>(m[static_cast<std::size_t>(i)]) /
         static_cast<double>(m[static_cast<std::size_t>(i - 1)]);
}

double TreeParams::overall_aggregation() const {
  return static_cast<double>(m[static_cast<std::size_t>(n)]) /
         static_cast<double>(m[1]);
}

void TreeParams::validate() const {
  ASPEN_REQUIRE(n >= 2, "tree depth must be >= 2, got ", n);
  ASPEN_REQUIRE(k >= 2 && k % 2 == 0, "switch size must be even and >= 2, got ",
                k);
  const auto sz = static_cast<std::size_t>(n) + 1;
  if (p.size() != sz || m.size() != sz || r.size() != sz || c.size() != sz) {
    throw InvalidTreeError("TreeParams vectors must all have size n+1");
  }
  if (S == 0 || S % 2 != 0) {
    throw InvalidTreeError("S must be positive and even, got " +
                           std::to_string(S));
  }
  const auto K = static_cast<std::uint64_t>(k);
  if (p[static_cast<std::size_t>(n)] != 1) {
    throw InvalidTreeError("p_n must be 1 (all top switches form one pod)");
  }
  for (Level i = 1; i <= n; ++i) {
    const auto ui = static_cast<std::size_t>(i);
    const std::uint64_t level_switches = (i == n) ? S / 2 : S;
    if (p[ui] == 0 || m[ui] == 0) {
      throw InvalidTreeError("p_i and m_i must be positive at level " +
                             std::to_string(i));
    }
    if (p[ui] * m[ui] != level_switches) {  // Eq. 1
      throw InvalidTreeError("Eq.1 violated at level " + std::to_string(i));
    }
  }
  for (Level i = 2; i <= n; ++i) {
    const auto ui = static_cast<std::size_t>(i);
    const std::uint64_t downlinks = (i == n) ? K : K / 2;
    if (r[ui] == 0 || c[ui] == 0 || r[ui] * c[ui] != downlinks) {  // Eq. 2
      throw InvalidTreeError("Eq.2 violated at level " + std::to_string(i));
    }
    if (p[ui] * r[ui] != p[ui - 1]) {  // Eq. 3
      throw InvalidTreeError("Eq.3 violated at level " + std::to_string(i));
    }
  }
  if (p[1] != S) {
    throw InvalidTreeError("each L1 switch must form its own pod (p_1 = S)");
  }
}

std::string TreeParams::to_string() const {
  std::ostringstream os;
  os << "Aspen(n=" << n << ",k=" << k << ",FTV=" << ftv().to_string() << ")";
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const TreeParams& params) {
  return os << params.to_string();
}

}  // namespace aspen
