#include "src/aspen/generator.h"

#include <string>

#include "src/util/contracts.h"
#include "src/util/math.h"
#include "src/util/status.h"

namespace aspen {

namespace {

void check_inputs(int n, int k, const FaultToleranceVector& ftv) {
  ASPEN_REQUIRE(n >= 2, "tree depth must be >= 2, got ", n);
  ASPEN_REQUIRE(k >= 2 && k % 2 == 0, "switch size must be even and >= 2, got ",
                k);
  ASPEN_REQUIRE(ftv.levels() == n, "FTV ", ftv.to_string(), " describes a ",
                ftv.levels(), "-level tree, expected ", n);
}

}  // namespace

TreeParams generate_tree(int n, int k, const FaultToleranceVector& ftv) {
  check_inputs(n, k, ftv);

  TreeParams t;
  t.n = n;
  t.k = k;
  const auto sz = static_cast<std::size_t>(n) + 1;
  t.p.assign(sz, 0);
  t.m.assign(sz, 0);
  t.r.assign(sz, 0);
  t.c.assign(sz, 0);

  const auto K = static_cast<std::uint64_t>(k);

  // Listing 1, lines 8-14: top-down choice of c_i, derivation of r_i, p_{i-1}.
  t.p[static_cast<std::size_t>(n)] = 1;
  std::uint64_t downlinks = K;  // L_n switches have k downward ports
  for (Level i = n; i >= 2; --i) {
    const auto ui = static_cast<std::size_t>(i);
    const auto ci = static_cast<std::uint64_t>(ftv.connections_at_level(i));
    if (!divides(ci, downlinks)) {
      throw InvalidTreeError(
          "c_" + std::to_string(i) + " = " + std::to_string(ci) +
          " is not a factor of the downlink budget " +
          std::to_string(downlinks) + " (n=" + std::to_string(n) +
          ", k=" + std::to_string(k) + ", FTV=" + ftv.to_string() + ")");
    }
    t.c[ui] = ci;
    t.r[ui] = downlinks / ci;
    ASPEN_ASSERT(t.r[ui] * t.c[ui] == downlinks,
                 "Eq. 2 broken during generation at level ", i);
    t.p[ui - 1] = t.p[ui] * t.r[ui];
    downlinks = K / 2;
  }

  // Listing 1, lines 15-20: S = p_1, pod sizes m_i, integrality checks.
  t.S = t.p[1];
  if (t.S % 2 != 0) {
    throw InvalidTreeError("m_n = S/2 is not an integer for " +
                           ftv.to_string() + " (S=" + std::to_string(t.S) +
                           ")");
  }
  t.m[static_cast<std::size_t>(n)] = t.S / 2;
  for (Level i = 1; i <= n - 1; ++i) {
    const auto ui = static_cast<std::size_t>(i);
    if (!divides(t.p[ui], t.S)) {
      throw InvalidTreeError("m_" + std::to_string(i) +
                             " is not an integer for FTV " + ftv.to_string());
    }
    t.m[ui] = t.S / t.p[ui];
  }

  // Listing 1's derivation must agree with the FTV it started from.
  ASPEN_ASSERT(t.ftv() == ftv, "generated tree's FTV ", t.ftv().to_string(),
               " differs from the requested ", ftv.to_string());
  ASPEN_ASSERT(t.dcc() == ftv.dcc(),
               "tree DCC disagrees with the FTV's DCC");
  t.validate();
  return t;
}

std::optional<TreeParams> try_generate_tree(int n, int k,
                                            const FaultToleranceVector& ftv) {
  try {
    return generate_tree(n, k, ftv);
  } catch (const InvalidTreeError&) {
    return std::nullopt;
  }
}

TreeParams fat_tree(int n, int k) {
  return generate_tree(n, k, FaultToleranceVector::fat_tree(n));
}

bool is_valid_tree(int n, int k, const FaultToleranceVector& ftv) {
  return try_generate_tree(n, k, ftv).has_value();
}

}  // namespace aspen
