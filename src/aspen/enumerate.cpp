#include "src/aspen/enumerate.h"

#include <algorithm>

#include "src/aspen/generator.h"
#include "src/util/contracts.h"
#include "src/util/math.h"
#include "src/util/status.h"

namespace aspen {

namespace {

// Update-propagation distance used by the max_propagation_hops filter; the
// full model lives in src/analysis/convergence.h but enumeration must not
// depend on the analysis library (it is a lower layer).
int worst_case_propagation_hops(const TreeParams& t) {
  int worst = 0;
  const FaultToleranceVector ftv = t.ftv();
  for (Level i = 2; i <= t.n; ++i) {
    const Level f = ftv.nearest_fault_tolerant_level_at_or_above(i);
    const int hops = (f != 0) ? (f - i) : (t.n - i) + (t.n - 1);
    worst = std::max(worst, hops);
  }
  return worst;
}

}  // namespace

bool EnumerationFilter::accepts(const TreeParams& t) const {
  if (min_hosts && t.num_hosts() < *min_hosts) return false;
  if (max_switches && t.total_switches() > *max_switches) return false;
  if (max_fault_tolerance) {
    for (Level i = 2; i <= t.n; ++i) {
      if (t.fault_tolerance_at_level(i) > *max_fault_tolerance) return false;
    }
  }
  if (max_propagation_hops &&
      worst_case_propagation_hops(t) > *max_propagation_hops) {
    return false;
  }
  return true;
}

void for_each_tree(int n, int k,
                   const std::function<bool(const TreeParams&)>& visit) {
  ASPEN_REQUIRE(n >= 2, "tree depth must be >= 2, got ", n);
  ASPEN_REQUIRE(k >= 2 && k % 2 == 0, "switch size must be even and >= 2, got ",
                k);

  // Candidate c_i values: factors of k at the top level, of k/2 elsewhere.
  const auto top_choices = divisors(static_cast<std::uint64_t>(k));
  const auto mid_choices = divisors(static_cast<std::uint64_t>(k) / 2);

  // Depth-first sweep over all (c_n, …, c_2) combinations, in ascending
  // order at each level so the fat tree <0,…,0> comes first.
  std::vector<int> entries(static_cast<std::size_t>(n - 1), 0);
  bool keep_going = true;

  const std::function<void(std::size_t)> recurse = [&](std::size_t depth) {
    if (!keep_going) return;
    if (depth == entries.size()) {
      const FaultToleranceVector ftv{entries};
      if (auto t = try_generate_tree(n, k, ftv)) {
        ASPEN_ASSERT(t->ftv() == ftv,
                     "enumerated tree drifted from its candidate FTV");
        keep_going = visit(*t);
      }
      return;
    }
    // entries[0] is the top level (c_n): its choices come from `top_choices`.
    const auto& choices = (depth == 0) ? top_choices : mid_choices;
    for (std::uint64_t ci : choices) {
      entries[depth] = static_cast<int>(ci) - 1;
      recurse(depth + 1);
      if (!keep_going) return;
    }
  };
  recurse(0);
}

std::vector<TreeParams> enumerate_trees(int n, int k,
                                        const EnumerationFilter& filter) {
  std::vector<TreeParams> result;
  for_each_tree(n, k, [&](const TreeParams& t) {
    if (filter.accepts(t)) result.push_back(t);
    return true;
  });
  return result;
}

std::size_t count_trees(int n, int k) {
  std::size_t count = 0;
  for_each_tree(n, k, [&](const TreeParams&) {
    ++count;
    return true;
  });
  return count;
}

}  // namespace aspen
