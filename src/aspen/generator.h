// Aspen tree generation — the paper's Listing 1 (§4.1.2).
//
// Starting from the top of the tree (p_n = 1), the algorithm walks downward
// choosing c_i (links per pod below) at each level, deriving r_i from the
// downlink budget, and p_{i-1} from Eq. 3.  Reaching L_1 fixes S = p_1, after
// which pod sizes m_i follow from Eq. 1; any non-integer m_i means the
// requested tree does not exist.
#pragma once

#include <cstdint>
#include <optional>

#include "src/aspen/ftv.h"
#include "src/aspen/tree_params.h"

namespace aspen {

/// Generates the n-level, k-port Aspen tree whose per-level connection
/// counts are given by `ftv` (entry e at level i means c_i = e + 1).
///
/// Throws PreconditionError on malformed inputs (odd k, ftv length != n−1)
/// and InvalidTreeError when the FTV admits no valid tree (c_i does not
/// divide the downlink budget, or some m_i is not an integer — Listing 1
/// lines 19-20).
[[nodiscard]] TreeParams generate_tree(int n, int k,
                                       const FaultToleranceVector& ftv);

/// Like generate_tree but returns std::nullopt instead of throwing
/// InvalidTreeError.  Precondition violations still throw.
[[nodiscard]] std::optional<TreeParams> try_generate_tree(
    int n, int k, const FaultToleranceVector& ftv);

/// The traditional n-level, k-port fat tree: FTV <0, …, 0>.
[[nodiscard]] TreeParams fat_tree(int n, int k);

/// True iff the FTV yields a valid n-level, k-port Aspen tree.
[[nodiscard]] bool is_valid_tree(int n, int k, const FaultToleranceVector& ftv);

}  // namespace aspen
