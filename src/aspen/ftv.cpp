#include "src/aspen/ftv.h"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "src/util/contracts.h"
#include "src/util/status.h"

namespace aspen {

FaultToleranceVector::FaultToleranceVector(std::vector<int> top_down_entries)
    : entries_(std::move(top_down_entries)) {
  for (int e : entries_) {
    ASPEN_REQUIRE(e >= 0, "FTV entries must be non-negative, got ", e);
  }
}

FaultToleranceVector::FaultToleranceVector(
    std::initializer_list<int> top_down_entries)
    : FaultToleranceVector(std::vector<int>(top_down_entries)) {}

FaultToleranceVector FaultToleranceVector::fat_tree(int levels) {
  ASPEN_REQUIRE(levels >= 2, "a tree needs at least 2 levels, got ", levels);
  return FaultToleranceVector(
      std::vector<int>(static_cast<std::size_t>(levels - 1), 0));
}

FaultToleranceVector FaultToleranceVector::uniform(int levels, int ft) {
  ASPEN_REQUIRE(levels >= 2, "a tree needs at least 2 levels, got ", levels);
  return FaultToleranceVector(
      std::vector<int>(static_cast<std::size_t>(levels - 1), ft));
}

FaultToleranceVector FaultToleranceVector::parse(const std::string& text) {
  std::string body = text;
  // Strip optional angle brackets and whitespace.
  std::erase_if(body, [](char c) { return c == '<' || c == '>' || c == ' '; });
  ASPEN_REQUIRE(!body.empty(), "cannot parse empty FTV string");
  std::vector<int> entries;
  std::istringstream is(body);
  std::string cell;
  while (std::getline(is, cell, ',')) {
    ASPEN_REQUIRE(!cell.empty(), "malformed FTV string: '", text, "'");
    std::size_t pos = 0;
    const int value = std::stoi(cell, &pos);
    ASPEN_REQUIRE(pos == cell.size(), "malformed FTV entry: '", cell, "'");
    entries.push_back(value);
  }
  return FaultToleranceVector(std::move(entries));
}

int FaultToleranceVector::at_level(Level i) const {
  const int n = levels();
  ASPEN_REQUIRE(i >= 2 && i <= n, "FTV level ", i, " out of range [2,", n, "]");
  return entries_[static_cast<std::size_t>(n - i)];
}

std::uint64_t FaultToleranceVector::dcc() const {
  std::uint64_t product = 1;
  for (int e : entries_) product *= static_cast<std::uint64_t>(e) + 1;
  ASPEN_ASSERT(product >= 1, "DCC is a product of positive terms");
  return product;
}

bool FaultToleranceVector::is_fat_tree() const {
  return std::ranges::all_of(entries_, [](int e) { return e == 0; });
}

bool FaultToleranceVector::is_fully_fault_tolerant() const {
  return std::ranges::all_of(entries_, [](int e) { return e > 0; });
}

Level FaultToleranceVector::nearest_fault_tolerant_level_at_or_above(
    Level from) const {
  const int n = levels();
  ASPEN_REQUIRE(from >= 2 && from <= n, "level ", from, " out of range [2,", n,
                "]");
  for (Level i = from; i <= n; ++i) {
    if (at_level(i) > 0) return i;
  }
  ASPEN_ASSERT(!is_fully_fault_tolerant(),
               "a fully fault-tolerant FTV always has a level at or above");
  return 0;
}

std::string FaultToleranceVector::to_string() const {
  std::ostringstream os;
  os << '<';
  for (std::size_t j = 0; j < entries_.size(); ++j) {
    if (j > 0) os << ',';
    os << entries_[j];
  }
  os << '>';
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const FaultToleranceVector& ftv) {
  return os << ftv.to_string();
}

}  // namespace aspen
