// Fixed-host-count Aspen trees (§4.2, §8.2).
//
// Instead of trading hosts for fault tolerance at fixed network size, a data
// center operator can keep the host count of an n-level fat tree and *grow*
// the network: an Aspen tree with x levels of redundant links has n + x
// total levels.  Host count is preserved exactly when the added redundancy
// multiplies to DCC = (k/2)^x, since hosts = k^{n+x}/2^{n+x-1}/DCC.
//
// The paper's construction for x = 1 (§9.2) raises L_n from S/2 to S
// switches and adds a new L_{n+1} of S/2 switches, i.e. FTV <k/2−1, 0, …, 0>.
// We generalize to x added levels, with a placement knob used by the
// ablation benchmarks.
#pragma once

#include <vector>

#include "src/aspen/tree_params.h"

namespace aspen {

/// Where the x fault-tolerant levels sit in the (n+x)-level tree.
enum class RedundancyPlacement {
  /// Redundancy in the x added *top* levels (the paper's construction;
  /// per §8.1 this is the most useful placement).
  kTop,
  /// Redundancy at the x *bottom-most* eligible levels (L_2..L_{x+1}).
  /// Pathological for convergence; used for the placement ablation.
  kBottom,
  /// Redundancy spread as evenly as possible across levels, clustering
  /// non-zero entries leftward per the §8.1 guidance.
  kSpread,
};

/// Designs the (n_fat + extra_levels)-level, k-port Aspen tree that supports
/// exactly the same number of hosts as the n_fat-level, k-port fat tree.
///
/// Each fault-tolerant level carries c = k/2 (fault tolerance k/2 − 1), so
/// extra_levels must satisfy 1 <= extra_levels and k >= 4.
/// Throws InvalidTreeError if the resulting design is not a valid tree.
[[nodiscard]] TreeParams design_fixed_host_tree(
    int n_fat, int k, int extra_levels,
    RedundancyPlacement placement = RedundancyPlacement::kTop);

/// The FTV used by design_fixed_host_tree (exposed for analysis code that
/// needs the vector without constructing the whole tree).
[[nodiscard]] FaultToleranceVector fixed_host_ftv(
    int n_fat, int k, int extra_levels,
    RedundancyPlacement placement = RedundancyPlacement::kTop);

/// Switches added relative to the base fat tree (e.g. S for x = 1, per
/// §9.2: "we add S new switches to the tree").
[[nodiscard]] std::uint64_t switches_added(int n_fat, int k, int extra_levels);

}  // namespace aspen
