// Practical Aspen tree recommendations (§8.1).
//
// "…in FTVs with non-maximal entries it is best to cluster non-zero values
//  towards the left while simultaneously minimizing the lengths of series of
//  contiguous zeros.  For instance, if an FTV of length 6 can include only
//  two non-zero entries, the ideal placement would be <x,0,0,x,0,0>."
//
// This module encodes that guidance: FTV placement for a budget of
// fault-tolerant levels, plus the §8.1 "special mention" tree <1,0,0,…>.
#pragma once

#include <cstdint>
#include <vector>

#include "src/aspen/tree_params.h"

namespace aspen {

/// Places `budget` non-zero entries (value `ft`) in an FTV of an n-level
/// tree per the §8.1 guidance: contiguous near-equal segments, each led by
/// a non-zero entry, longest segments first.  budget in [1, n−1].
[[nodiscard]] FaultToleranceVector recommend_ftv_placement(int n, int budget,
                                                           int ft = 1);

/// The §8.1 "special mention" tree: fault tolerance only at the top level,
/// FTV <1,0,…,0>.  Halves host count versus the fat tree of equal depth and
/// guarantees every update travels only upward.  (The VL2 topology is an
/// instance of this family.)
[[nodiscard]] TreeParams top_level_redundant_tree(int n, int k);

/// Quality metrics the §8.1 discussion ranks placements by.
struct PlacementQuality {
  /// Longest run of contiguous zeros in the FTV (max hops an update must
  /// travel, as long as some non-zero entry exists to the left).
  int longest_zero_run = 0;
  /// True iff every zero entry has a non-zero entry somewhere to its left
  /// (i.e. no failure ever triggers global re-convergence).
  bool covered = false;
  /// Mean update-propagation distance over failure levels 2..n (§9.1).
  double average_hops = 0.0;
};

[[nodiscard]] PlacementQuality evaluate_placement(
    const FaultToleranceVector& ftv);

/// All FTVs for (n, k) with exactly `budget` non-zero entries of value `ft`,
/// ranked best-first by (covered, average_hops, longest_zero_run).  Used by
/// tests to confirm the §8.1 heuristic actually wins.
[[nodiscard]] std::vector<FaultToleranceVector> rank_placements(int n, int k,
                                                                int budget,
                                                                int ft = 1);

}  // namespace aspen
