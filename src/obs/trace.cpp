#include "src/obs/trace.h"

#include <cstdio>
#include <cstring>
#include <map>

#include "src/util/contracts.h"

namespace aspen::obs {
namespace {

constexpr char kBinaryMagic[8] = {'A', 'S', 'P', 'N', 'T', 'R', 'C', '1'};

void append_u32(std::string& out, std::uint32_t v) {
  char buf[4];
  std::memcpy(buf, &v, sizeof(v));
  out.append(buf, sizeof(buf));
}

void append_u64(std::string& out, std::uint64_t v) {
  char buf[8];
  std::memcpy(buf, &v, sizeof(v));
  out.append(buf, sizeof(buf));
}

void append_f64(std::string& out, double v) {
  char buf[8];
  std::memcpy(buf, &v, sizeof(v));
  out.append(buf, sizeof(buf));
}

/// Cursor over a binary blob; every read_* checks bounds and fails sticky.
struct Reader {
  const std::string& data;
  std::size_t at = 0;
  bool ok = true;

  bool take(void* dst, std::size_t n) {
    if (!ok || data.size() - at < n) {
      ok = false;
      return false;
    }
    std::memcpy(dst, data.data() + at, n);
    at += n;
    return true;
  }
  std::uint32_t u32() {
    std::uint32_t v = 0;
    take(&v, sizeof(v));
    return v;
  }
  std::uint64_t u64() {
    std::uint64_t v = 0;
    take(&v, sizeof(v));
    return v;
  }
  double f64() {
    double v = 0.0;
    take(&v, sizeof(v));
    return v;
  }
};

void append_jsonl_record(std::string& out, const TraceRecord& r) {
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "{\"seq\":%llu,\"t_ms\":%.6f,\"kind\":\"%s\",\"a\":%lu,"
                "\"b\":%lu,\"value\":%llu,\"detail\":\"%s\"}\n",
                static_cast<unsigned long long>(r.seq), r.t_ms,
                trace_kind_name(r.kind), static_cast<unsigned long>(r.a),
                static_cast<unsigned long>(r.b),
                static_cast<unsigned long long>(r.value), r.detail);
  out += buf;
}

}  // namespace

const char* trace_kind_name(TraceKind kind) {
  switch (kind) {
    case TraceKind::kRun: return "run";
    case TraceKind::kMsgSend: return "msg_send";
    case TraceKind::kMsgRecv: return "msg_recv";
    case TraceKind::kMsgDrop: return "msg_drop";
    case TraceKind::kMsgDup: return "msg_dup";
    case TraceKind::kMsgRetransmit: return "msg_retransmit";
    case TraceKind::kMsgAck: return "msg_ack";
    case TraceKind::kMsgGiveUp: return "msg_give_up";
    case TraceKind::kLinkFail: return "link_fail";
    case TraceKind::kLinkRecover: return "link_recover";
    case TraceKind::kLinkDegrade: return "link_degrade";
    case TraceKind::kLinkRestore: return "link_restore";
    case TraceKind::kSwitchCrash: return "switch_crash";
    case TraceKind::kSwitchRevive: return "switch_revive";
    case TraceKind::kDetect: return "detect";
    case TraceKind::kRouteFull: return "route_full";
    case TraceKind::kRoutePatch: return "route_patch";
    case TraceKind::kChaosPhase: return "chaos_phase";
    case TraceKind::kChaosCheck: return "chaos_check";
    case TraceKind::kSurviveChunk: return "survive_chunk";
    case TraceKind::kSurviveCheckpoint: return "survive_checkpoint";
    case TraceKind::kServeRequest: return "serve_request";
    case TraceKind::kServeResponse: return "serve_response";
    case TraceKind::kServeSeal: return "serve_seal";
    case TraceKind::kServeCheckpoint: return "serve_checkpoint";
    case TraceKind::kFlowAdmit: return "flow_admit";
    case TraceKind::kFlowStep: return "flow_step";
    case TraceKind::kFlowDrop: return "flow_drop";
  }
  ASPEN_UNREACHABLE("unknown TraceKind ",
                    static_cast<int>(kind));
}

Tracer::Tracer(std::size_t capacity) : capacity_(capacity) {
  ASPEN_ASSERT(capacity_ > 0, "tracer capacity must be positive");
  ring_.reserve(capacity_);
}

void Tracer::emit(double t_ms, TraceKind kind, std::uint32_t a,
                  std::uint32_t b, std::uint64_t value, const char* detail) {
  TraceRecord r;
  r.seq = next_seq_++;
  r.t_ms = t_ms;
  r.kind = kind;
  r.a = a;
  r.b = b;
  r.value = value;
  r.detail = detail == nullptr ? "" : detail;
  if (ring_.size() < capacity_) {
    ring_.push_back(r);
  } else {
    ring_[head_] = r;
    head_ = (head_ + 1) % capacity_;
    ++dropped_;
  }
}

std::vector<TraceRecord> Tracer::records() const {
  std::vector<TraceRecord> out;
  out.reserve(ring_.size());
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(head_ + i) % ring_.size()]);
  }
  return out;
}

std::size_t Tracer::size() const { return ring_.size(); }

void Tracer::clear() {
  ring_.clear();
  head_ = 0;
  next_seq_ = 0;
  dropped_ = 0;
}

std::string Tracer::to_jsonl() const { return records_to_jsonl(records()); }

std::string records_to_jsonl(const std::vector<TraceRecord>& records) {
  std::string out;
  out.reserve(records.size() * 96);
  for (const TraceRecord& r : records) append_jsonl_record(out, r);
  return out;
}

std::string Tracer::to_binary() const {
  const std::vector<TraceRecord> recs = records();

  // Intern detail strings: traces repeat a handful of literals thousands of
  // times, so the table plus a u32 index per record beats inline strings by
  // an order of magnitude.
  std::map<std::string, std::uint32_t> intern;
  std::vector<std::string> strings;
  for (const TraceRecord& r : recs) {
    const auto [it, inserted] =
        intern.try_emplace(r.detail, static_cast<std::uint32_t>(strings.size()));
    if (inserted) strings.push_back(r.detail);
  }

  std::string out;
  out.append(kBinaryMagic, sizeof(kBinaryMagic));
  append_u32(out, static_cast<std::uint32_t>(strings.size()));
  for (const std::string& s : strings) {
    append_u32(out, static_cast<std::uint32_t>(s.size()));
    out += s;
  }
  append_u64(out, static_cast<std::uint64_t>(recs.size()));
  for (const TraceRecord& r : recs) {
    append_u64(out, r.seq);
    append_f64(out, r.t_ms);
    append_u32(out, static_cast<std::uint32_t>(r.kind));
    append_u32(out, r.a);
    append_u32(out, r.b);
    append_u64(out, r.value);
    append_u32(out, intern.at(r.detail));
  }
  return out;
}

bool read_binary(const std::string& data, std::vector<OwnedTraceRecord>& out) {
  out.clear();
  Reader in{data};
  char magic[sizeof(kBinaryMagic)];
  if (!in.take(magic, sizeof(magic)) ||
      std::memcmp(magic, kBinaryMagic, sizeof(magic)) != 0) {
    return false;
  }

  const std::uint32_t num_strings = in.u32();
  std::vector<std::string> strings;
  strings.reserve(num_strings);
  for (std::uint32_t i = 0; i < num_strings && in.ok; ++i) {
    const std::uint32_t len = in.u32();
    if (!in.ok || in.data.size() - in.at < len) return false;
    strings.emplace_back(in.data.data() + in.at, len);
    in.at += len;
  }

  const std::uint64_t num_records = in.u64();
  for (std::uint64_t i = 0; i < num_records && in.ok; ++i) {
    OwnedTraceRecord r;
    r.seq = in.u64();
    r.t_ms = in.f64();
    const std::uint32_t kind = in.u32();
    r.a = in.u32();
    r.b = in.u32();
    r.value = in.u64();
    const std::uint32_t detail_index = in.u32();
    if (!in.ok || kind >= kNumTraceKinds || detail_index >= strings.size()) {
      out.clear();
      return false;
    }
    r.kind = static_cast<TraceKind>(kind);
    r.detail = strings[detail_index];
    out.push_back(std::move(r));
  }
  if (!in.ok || out.size() != num_records) {
    out.clear();
    return false;
  }
  return true;
}

}  // namespace aspen::obs
