#include "src/obs/obs.h"

namespace aspen::obs {

namespace detail {
bool g_metrics_enabled = false;
bool g_trace_enabled = false;
}  // namespace detail

namespace {

ObsConfig& stored_config() {
  static ObsConfig config;
  return config;
}

Tracer& stored_tracer() {
  static Tracer tracer(ObsConfig{}.trace_capacity);
  return tracer;
}

MetricsRegistry& stored_metrics() {
  static MetricsRegistry registry;
  return registry;
}

/// Rebuilds the tracer ring when the requested capacity changes.  The
/// tracer lives behind a pointer-to-static so the hot path never pays for
/// an indirection — only configure() swaps it.
void rebuild_tracer(std::size_t capacity) {
  stored_tracer() = Tracer(capacity == 0 ? 1 : capacity);
}

}  // namespace

void configure(const ObsConfig& config) {
  const bool capacity_changed =
      config.trace_capacity != stored_config().trace_capacity;
  stored_config() = config;
  detail::g_metrics_enabled = config.metrics;
  detail::g_trace_enabled = config.trace;
  if (capacity_changed) {
    rebuild_tracer(config.trace_capacity);
  }
  reset_collected();
}

ObsConfig config() { return stored_config(); }

void reset_collected() {
  stored_metrics().reset();
  stored_tracer().clear();
}

MetricsRegistry& metrics() { return stored_metrics(); }

Tracer& tracer() { return stored_tracer(); }

}  // namespace aspen::obs
