#include "src/obs/metrics.h"

#include <algorithm>
#include <cstdio>

#include "src/util/contracts.h"

namespace aspen::obs {
namespace {

/// Formats a double the way every exporter in this module does: fixed six
/// decimal places, locale-independent.  Deterministic output is the whole
/// point of the obs layer, so no stream formatting anywhere.
std::string format_double(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6f", value);
  return buf;
}

std::string quote(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

}  // namespace

const std::vector<double>& default_histogram_bounds() {
  static const std::vector<double> kBounds{0.5,  1.0,   2.5,   5.0,
                                           10.0, 25.0,  50.0,  100.0,
                                           250.0, 500.0, 1000.0};
  return kBounds;
}

void MetricsRegistry::add(const std::string& name, std::uint64_t delta) {
  counters_[name] += delta;
}

void MetricsRegistry::set_gauge(const std::string& name, double value) {
  gauges_[name] = value;
}

void MetricsRegistry::register_histogram(const std::string& name,
                                         std::vector<double> bounds) {
  ASPEN_ASSERT(std::is_sorted(bounds.begin(), bounds.end()),
               "histogram bounds must be ascending: ", name);
  auto [it, inserted] = histograms_.try_emplace(name);
  if (!inserted) return;
  it->second.bounds = std::move(bounds);
  it->second.counts.assign(it->second.bounds.size() + 1, 0);
}

void MetricsRegistry::observe(const std::string& name, double value) {
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    register_histogram(name, default_histogram_bounds());
    it = histograms_.find(name);
  }
  HistogramData& h = it->second;
  // Bounds are inclusive upper bounds (Prometheus "le" semantics): the
  // bucket for `value` is the first bound >= value.
  const auto bucket = static_cast<std::size_t>(
      std::lower_bound(h.bounds.begin(), h.bounds.end(), value) -
      h.bounds.begin());
  ++h.counts[bucket];
  ++h.count;
  h.sum += value;
}

std::uint64_t MetricsRegistry::counter(const std::string& name) const {
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

double MetricsRegistry::gauge(const std::string& name) const {
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? 0.0 : it->second;
}

const HistogramData* MetricsRegistry::histogram(
    const std::string& name) const {
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

bool MetricsRegistry::empty() const {
  return counters_.empty() && gauges_.empty() && histograms_.empty();
}

void MetricsRegistry::reset() {
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

std::string MetricsRegistry::to_json(int indent) const {
  const std::string pad(static_cast<std::size_t>(indent), ' ');
  std::string out;
  out += pad + "{\n";

  out += pad + "  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : counters_) {
    out += first ? "\n" : ",\n";
    out += pad + "    " + quote(name) + ": " + std::to_string(value);
    first = false;
  }
  out += first ? "},\n" : "\n" + pad + "  },\n";

  out += pad + "  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : gauges_) {
    out += first ? "\n" : ",\n";
    out += pad + "    " + quote(name) + ": " + format_double(value);
    first = false;
  }
  out += first ? "},\n" : "\n" + pad + "  },\n";

  out += pad + "  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    out += first ? "\n" : ",\n";
    out += pad + "    " + quote(name) + ": {\"count\": " +
           std::to_string(h.count) + ", \"sum\": " + format_double(h.sum) +
           ", \"buckets\": [";
    for (std::size_t i = 0; i < h.counts.size(); ++i) {
      if (i > 0) out += ", ";
      out += "{\"le\": ";
      out += i < h.bounds.size() ? format_double(h.bounds[i]) : "\"inf\"";
      out += ", \"count\": " + std::to_string(h.counts[i]) + "}";
    }
    out += "]}";
    first = false;
  }
  out += first ? "}\n" : "\n" + pad + "  }\n";

  out += pad + "}";
  return out;
}

}  // namespace aspen::obs
