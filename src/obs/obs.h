// Observability front door: ObsConfig, the process-wide registry/tracer
// singletons, and the inline emit helpers every instrumented hot path uses.
//
// Cost model (the acceptance bar is bench_routing_scale within noise with
// obs compiled in but disabled): each helper is a single load of a plain
// global bool plus a predicted-not-taken branch — the same discipline as
// ASPEN_LOG in src/util/log.h.  Nothing else happens until the user opts in
// via configure(), the CLI's --metrics=/--trace= flags, or ScopedObs.
//
// Thread model: configuration and emission are orchestrator-thread only.
// Parallel code (the routing worker pool) must never call these helpers;
// it aggregates into stats structs and the orchestration level emits once
// after the join.  That keeps traces byte-identical across --threads=N and
// keeps the singletons lock-free.
#pragma once

#include <cstdint>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace aspen::obs {

struct ObsConfig {
  bool metrics = false;            ///< enable the metrics registry
  bool trace = false;              ///< enable the event tracer
  std::size_t trace_capacity = 1u << 16;  ///< ring size in records
};

/// Installs `config`, clearing any previously collected data.  Changing
/// trace_capacity rebuilds the ring.
void configure(const ObsConfig& config);

/// The configuration most recently installed (all-off at startup).
[[nodiscard]] ObsConfig config();

/// Clears collected metrics and trace records without touching the enable
/// flags — call between scenarios that must not see each other's data.
void reset_collected();

namespace detail {
extern bool g_metrics_enabled;
extern bool g_trace_enabled;
}  // namespace detail

[[nodiscard]] inline bool metrics_enabled() {
  return detail::g_metrics_enabled;
}
[[nodiscard]] inline bool trace_enabled() { return detail::g_trace_enabled; }

/// The process-wide registry/tracer.  Valid to call regardless of the
/// enable flags (tests read snapshots after disabling emission).
[[nodiscard]] MetricsRegistry& metrics();
[[nodiscard]] Tracer& tracer();

// ---- emit helpers (the only API instrumented code should touch) --------

inline void count(const char* name, std::uint64_t delta = 1) {
  if (metrics_enabled()) metrics().add(name, delta);
}

inline void gauge_set(const char* name, double value) {
  if (metrics_enabled()) metrics().set_gauge(name, value);
}

inline void observe(const char* name, double value) {
  if (metrics_enabled()) metrics().observe(name, value);
}

inline void trace_event(double t_ms, TraceKind kind, std::uint32_t a = 0,
                        std::uint32_t b = 0, std::uint64_t value = 0,
                        const char* detail = "") {
  if (trace_enabled()) tracer().emit(t_ms, kind, a, b, value, detail);
}

/// RAII emission pause: clears the enable flags for the scope and restores
/// them on exit, leaving collected data untouched.  Benchmarks wrap their
/// timed regions in this so they measure the obs-disabled cost of the code
/// under test while the untimed surroundings keep populating the registry.
class PauseObs {
 public:
  PauseObs()
      : metrics_(detail::g_metrics_enabled),
        trace_(detail::g_trace_enabled) {
    detail::g_metrics_enabled = false;
    detail::g_trace_enabled = false;
  }
  ~PauseObs() {
    detail::g_metrics_enabled = metrics_;
    detail::g_trace_enabled = trace_;
  }
  PauseObs(const PauseObs&) = delete;
  PauseObs& operator=(const PauseObs&) = delete;

 private:
  bool metrics_;
  bool trace_;
};

/// RAII enable/restore for tests and scoped CLI runs: installs `config` on
/// construction and restores the previous configuration (clearing data
/// collected inside the scope) on destruction.
class ScopedObs {
 public:
  explicit ScopedObs(const ObsConfig& config) : previous_(obs::config()) {
    configure(config);
  }
  ~ScopedObs() { configure(previous_); }
  ScopedObs(const ScopedObs&) = delete;
  ScopedObs& operator=(const ScopedObs&) = delete;

 private:
  ObsConfig previous_;
};

}  // namespace aspen::obs
