// Structured event tracer: a per-run ring buffer of typed, timestamped
// records with JSON Lines and compact-binary exporters.
//
// Determinism contract: a trace is a pure function of (topology, seed,
// schedule) — timestamps are *simulated* milliseconds, sequence numbers are
// assigned at emit time on the orchestrating thread, and no wall-clock or
// thread identity ever enters a record.  Parallel code must aggregate and
// emit from the orchestration level after its workers join (the routing
// engine records one route_full/route_patch record per call, never one per
// destination row).  That is what lets tests/golden/ snapshot traces and
// diff them byte-for-byte across thread counts.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace aspen::obs {

/// Every event class the instrumented layers emit.  Values are part of the
/// compact-binary format; append only, never reorder.
enum class TraceKind : std::uint8_t {
  kRun = 0,          ///< run marker (scenario start/finish); detail names it
  kMsgSend,          ///< protocol message handed to the channel; a→b switches
  kMsgRecv,          ///< protocol message dispatched at its destination
  kMsgDrop,          ///< channel or health model dropped a copy
  kMsgDup,           ///< channel duplicated a copy
  kMsgRetransmit,    ///< reliable transport re-sent an unacked message
  kMsgAck,           ///< reliable transport acknowledged a delivery
  kMsgGiveUp,        ///< reliable transport exhausted its retry budget
  kLinkFail,         ///< link hard-failed; a=link id
  kLinkRecover,      ///< link recovered; a=link id
  kLinkDegrade,      ///< link entered gray/flapping health; a=link id
  kLinkRestore,      ///< link health cleared back to Up; a=link id
  kSwitchCrash,      ///< switch crashed; a=switch id
  kSwitchRevive,     ///< switch revived; a=switch id
  kDetect,           ///< detector state machine event; value=DetectionKind
  kRouteFull,        ///< full route computation; value=destinations computed
  kRoutePatch,       ///< incremental recompute; value=rows fully recomputed
  kChaosPhase,       ///< campaign phase boundary; detail names the phase
  kChaosCheck,       ///< campaign consistency check; value=1 pass, 0 fail
  kSurviveChunk,     ///< survivability chunk done; a:b=next sample, value=n
  kSurviveCheckpoint,  ///< survivability checkpoint cut; value=next sample
  kServeRequest,     ///< query frame admitted/rejected; a=id lo32, b=kind,
                     ///< detail names the admission verdict
  kServeResponse,    ///< response completed; a=id lo32, value=snapshot digest
  kServeSeal,        ///< serving snapshot sealed; value=digest, a=staleness
  kServeCheckpoint,  ///< server checkpoint cut; value=completed responses
  kFlowAdmit,        ///< flow batch admitted; a=epoch, value=flows admitted
  kFlowStep,         ///< flow-plane epoch done; a=epoch, b=flows attempted,
                     ///< value=flows delivered this epoch
  kFlowDrop,         ///< flows declared lost; a=epoch, value=count,
                     ///< detail names the cause (blackhole/loop/no_route)
};

/// Stable snake_case name for JSONL export ("msg_send", "route_patch", ...).
[[nodiscard]] const char* trace_kind_name(TraceKind kind);

/// Number of distinct TraceKind values (for iteration / validation).
inline constexpr std::size_t kNumTraceKinds =
    static_cast<std::size_t>(TraceKind::kFlowDrop) + 1;

/// One fixed-size trace record.  `detail` must point at a string literal
/// (or other storage outliving the tracer); the tracer never copies it.
struct TraceRecord {
  std::uint64_t seq = 0;     ///< emission order, 0-based, gap-free
  double t_ms = 0.0;         ///< simulated time of the event
  TraceKind kind = TraceKind::kRun;
  std::uint32_t a = 0;       ///< primary subject id (switch/link/source)
  std::uint32_t b = 0;       ///< secondary subject id (destination/observer)
  std::uint64_t value = 0;   ///< kind-specific payload
  const char* detail = "";   ///< static annotation, e.g. protocol name
};

/// A record read back from the compact-binary format; owns its detail.
struct OwnedTraceRecord {
  std::uint64_t seq = 0;
  double t_ms = 0.0;
  TraceKind kind = TraceKind::kRun;
  std::uint32_t a = 0;
  std::uint32_t b = 0;
  std::uint64_t value = 0;
  std::string detail;
};

class Tracer {
 public:
  explicit Tracer(std::size_t capacity);

  /// Appends one record, assigning the next sequence number.  When the ring
  /// is full the oldest record is evicted and `dropped()` grows.
  void emit(double t_ms, TraceKind kind, std::uint32_t a, std::uint32_t b,
            std::uint64_t value, const char* detail);

  /// Records currently retained, oldest first.
  [[nodiscard]] std::vector<TraceRecord> records() const;

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] std::uint64_t total_emitted() const { return next_seq_; }
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }

  /// Drops every record and restarts sequence numbering.
  void clear();

  /// One JSON object per line, fields in fixed order, doubles at %.6f.
  [[nodiscard]] std::string to_jsonl() const;

  /// Compact binary: magic + interned detail-string table + packed records
  /// (little-endian).  Round-trips through read_binary().
  [[nodiscard]] std::string to_binary() const;

 private:
  std::size_t capacity_;
  std::vector<TraceRecord> ring_;
  std::size_t head_ = 0;  ///< index of the oldest retained record
  std::uint64_t next_seq_ = 0;
  std::uint64_t dropped_ = 0;
};

/// Serializes arbitrary records as JSON Lines (same format as
/// Tracer::to_jsonl); exposed for the golden-trace harness.
[[nodiscard]] std::string records_to_jsonl(
    const std::vector<TraceRecord>& records);

/// Parses a compact-binary trace produced by Tracer::to_binary().  Returns
/// false (leaving `out` empty) on any framing error.
[[nodiscard]] bool read_binary(const std::string& data,
                               std::vector<OwnedTraceRecord>& out);

}  // namespace aspen::obs
