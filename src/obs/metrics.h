// Process-wide metrics registry: counters, gauges, fixed-bucket histograms.
//
// The registry is deliberately simple — an ordered map per metric family —
// because observability is off by default and every caller goes through the
// enabled-flag fast path in obs.h.  Ordered storage buys deterministic
// export order for free, which the golden-trace tests and bench JSON
// summaries rely on.
//
// Thread model: all mutation happens on the orchestrating thread (the
// simulator loop, protocol drivers and chaos campaigns are single-threaded;
// the routing engine records aggregate stats only after its worker pool has
// joined).  The registry therefore carries no locks.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace aspen::obs {

/// A fixed-bucket histogram: `bounds` are ascending inclusive upper bounds
/// with an implicit +inf bucket at the end, so `counts` always has
/// `bounds.size() + 1` entries.
struct HistogramData {
  std::vector<double> bounds;
  std::vector<std::uint64_t> counts;
  std::uint64_t count = 0;
  double sum = 0.0;
};

/// Default latency-ish bounds (milliseconds) used when a histogram is first
/// observed without an explicit registration.
[[nodiscard]] const std::vector<double>& default_histogram_bounds();

class MetricsRegistry {
 public:
  /// Adds `delta` to the named counter, creating it at zero first.
  void add(const std::string& name, std::uint64_t delta = 1);

  /// Sets the named gauge to `value` (last write wins).
  void set_gauge(const std::string& name, double value);

  /// Records `value` into the named histogram, registering it with
  /// default_histogram_bounds() on first use.
  void observe(const std::string& name, double value);

  /// Pre-registers a histogram with explicit bucket bounds (ascending).
  /// No-op if the histogram already exists.
  void register_histogram(const std::string& name, std::vector<double> bounds);

  [[nodiscard]] std::uint64_t counter(const std::string& name) const;
  [[nodiscard]] double gauge(const std::string& name) const;
  [[nodiscard]] const HistogramData* histogram(const std::string& name) const;
  [[nodiscard]] bool empty() const;

  [[nodiscard]] const std::map<std::string, std::uint64_t>& counters() const {
    return counters_;
  }
  [[nodiscard]] const std::map<std::string, double>& gauges() const {
    return gauges_;
  }
  [[nodiscard]] const std::map<std::string, HistogramData>& histograms()
      const {
    return histograms_;
  }

  /// Drops every metric (names included).
  void reset();

  /// Serializes the registry as one JSON object with "counters", "gauges"
  /// and "histograms" sections, keys sorted.  `indent` spaces prefix every
  /// line so the block can be spliced into an enclosing document.
  [[nodiscard]] std::string to_json(int indent = 0) const;

 private:
  std::map<std::string, std::uint64_t> counters_;
  std::map<std::string, double> gauges_;
  std::map<std::string, HistogramData> histograms_;
};

}  // namespace aspen::obs
