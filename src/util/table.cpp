#include "src/util/table.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "src/util/status.h"

namespace aspen {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  ASPEN_REQUIRE(!headers_.empty(), "table needs at least one column");
}

void TextTable::add_row(std::vector<std::string> cells) {
  ASPEN_REQUIRE(cells.size() == headers_.size(), "row has ", cells.size(),
                " cells, table has ", headers_.size(), " columns");
  rows_.push_back(std::move(cells));
}

std::string TextTable::to_string() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "| " : " | ") << std::left
         << std::setw(static_cast<int>(widths[c])) << row[c];
    }
    os << " |\n";
  };
  emit_row(headers_);
  os << "|";
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << std::string(widths[c] + 2, '-') << "|";
  }
  os << "\n";
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

std::string format_double(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  std::string s = os.str();
  if (s.find('.') != std::string::npos) {
    while (!s.empty() && s.back() == '0') s.pop_back();
    if (!s.empty() && s.back() == '.') s.pop_back();
  }
  return s;
}

std::string format_percent(double part, double whole, int precision) {
  if (whole == 0.0) return "n/a";
  return format_double(100.0 * part / whole, precision) + "%";
}

std::string ascii_bar(double value, double max_value, int width) {
  if (max_value <= 0.0 || value < 0.0) return "";
  const int filled = static_cast<int>(
      (value / max_value) * width + 0.5);
  return std::string(static_cast<std::size_t>(std::min(filled, width)), '#');
}

}  // namespace aspen
