#include "src/util/log.h"

#include <atomic>
#include <cstdio>

namespace aspen {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF  ";
  }
  return "?????";
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }

LogLevel log_level() { return g_level.load(); }

bool log_enabled(LogLevel level) {
  return static_cast<int>(level) >= static_cast<int>(g_level.load()) &&
         level != LogLevel::kOff;
}

void log_line(LogLevel level, const std::string& message) {
  std::fprintf(stderr, "[%s] %s\n", level_name(level), message.c_str());
}

}  // namespace aspen
