// Strongly-typed identifiers used throughout the Aspen tree library.
//
// Raw integers are error-prone when a function juggles switch indices, host
// indices, link indices, pod indices and tree levels at once.  Each entity
// gets its own thin wrapper type so the compiler rejects accidental mixes.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <limits>
#include <string>

namespace aspen {

/// Tree level. Hosts live at level 0; switches at levels 1..n (L1..Ln).
using Level = int;

namespace detail {

/// CRTP-free tagged index. `Tag` makes distinct instantiations incompatible.
template <typename Tag>
class TypedId {
 public:
  using value_type = std::uint32_t;

  static constexpr value_type kInvalidValue =
      std::numeric_limits<value_type>::max();

  constexpr TypedId() = default;
  constexpr explicit TypedId(value_type v) : value_(v) {}

  [[nodiscard]] constexpr value_type value() const { return value_; }
  [[nodiscard]] constexpr bool valid() const { return value_ != kInvalidValue; }

  friend constexpr auto operator<=>(TypedId, TypedId) = default;

  /// Sentinel id meaning "no such entity".
  [[nodiscard]] static constexpr TypedId invalid() {
    return TypedId{kInvalidValue};
  }

 private:
  value_type value_ = kInvalidValue;
};

}  // namespace detail

/// A contiguous run of typed ids [first, first+count) — pods, the hosts of
/// an edge switch, and pod members are all index arithmetic in this
/// codebase, so "all members of X" is two integers, not an allocated
/// vector.  Iterators materialize ids on the fly (reference == value).
template <typename Id>
class IdRange {
 public:
  class iterator {
   public:
    using value_type = Id;
    using reference = Id;
    using pointer = void;
    using difference_type = std::ptrdiff_t;
    using iterator_category = std::forward_iterator_tag;

    constexpr iterator() = default;
    constexpr explicit iterator(std::uint64_t v) : v_(v) {}
    constexpr Id operator*() const {
      return Id{static_cast<typename Id::value_type>(v_)};
    }
    constexpr iterator& operator++() {
      ++v_;
      return *this;
    }
    constexpr iterator operator++(int) {
      iterator old = *this;
      ++v_;
      return old;
    }
    friend constexpr bool operator==(iterator, iterator) = default;

   private:
    std::uint64_t v_ = 0;
  };

  constexpr IdRange() = default;
  constexpr IdRange(std::uint64_t first, std::uint64_t count)
      : first_(first), count_(count) {}

  [[nodiscard]] constexpr iterator begin() const { return iterator{first_}; }
  [[nodiscard]] constexpr iterator end() const {
    return iterator{first_ + count_};
  }
  [[nodiscard]] constexpr std::uint64_t size() const { return count_; }
  [[nodiscard]] constexpr bool empty() const { return count_ == 0; }
  [[nodiscard]] constexpr Id operator[](std::uint64_t i) const {
    return Id{static_cast<typename Id::value_type>(first_ + i)};
  }
  [[nodiscard]] constexpr Id front() const { return (*this)[0]; }
  [[nodiscard]] constexpr Id back() const { return (*this)[count_ - 1]; }

 private:
  std::uint64_t first_ = 0;
  std::uint64_t count_ = 0;
};

struct SwitchTag {};
struct HostTag {};
struct NodeTag {};
struct LinkTag {};
struct PodTag {};

/// Index of a switch within a Topology (dense, 0-based).
using SwitchId = detail::TypedId<SwitchTag>;
/// Index of a host within a Topology (dense, 0-based).
using HostId = detail::TypedId<HostTag>;
/// Index of any node (switches first, then hosts) within a Topology.
using NodeId = detail::TypedId<NodeTag>;
/// Index of a link within a Topology (dense, 0-based).
using LinkId = detail::TypedId<LinkTag>;
/// Index of a pod within a level of a Topology (dense, 0-based per level).
using PodId = detail::TypedId<PodTag>;

using SwitchRange = IdRange<SwitchId>;
using HostRange = IdRange<HostId>;
using PodRange = IdRange<PodId>;

[[nodiscard]] inline std::string to_string(SwitchId id) {
  return id.valid() ? "s" + std::to_string(id.value()) : "s<invalid>";
}
[[nodiscard]] inline std::string to_string(HostId id) {
  return id.valid() ? "h" + std::to_string(id.value()) : "h<invalid>";
}
[[nodiscard]] inline std::string to_string(LinkId id) {
  return id.valid() ? "e" + std::to_string(id.value()) : "e<invalid>";
}

}  // namespace aspen

namespace std {
template <typename Tag>
struct hash<aspen::detail::TypedId<Tag>> {
  size_t operator()(aspen::detail::TypedId<Tag> id) const noexcept {
    return std::hash<std::uint32_t>{}(id.value());
  }
};
}  // namespace std
