// Small exact-integer helpers used by the analytical models.
//
// Tree sizes grow as k^n; with k up to 128 and n up to 7 the counts exceed
// 2^32 but fit comfortably in 64 bits (128^7 ≈ 2^49), so everything here is
// std::uint64_t / std::int64_t with overflow checks where products can grow.
#pragma once

#include <cstdint>
#include <vector>

#include "src/util/status.h"

namespace aspen {

/// Exact integer power; checks against overflow.
[[nodiscard]] constexpr std::uint64_t ipow(std::uint64_t base,
                                           unsigned exp) {
  std::uint64_t result = 1;
  for (unsigned i = 0; i < exp; ++i) {
    ASPEN_CHECK(base == 0 || result <= UINT64_MAX / (base ? base : 1),
                "integer overflow in ipow");
    result *= base;
  }
  return result;
}

/// True iff `a` divides `b` exactly (a > 0).
[[nodiscard]] constexpr bool divides(std::uint64_t a, std::uint64_t b) {
  return a != 0 && b % a == 0;
}

/// All positive divisors of `v`, ascending.
[[nodiscard]] inline std::vector<std::uint64_t> divisors(std::uint64_t v) {
  ASPEN_REQUIRE(v > 0, "divisors() requires a positive value");
  std::vector<std::uint64_t> lo;
  std::vector<std::uint64_t> hi;
  for (std::uint64_t d = 1; d * d <= v; ++d) {
    if (v % d == 0) {
      lo.push_back(d);
      if (d != v / d) hi.push_back(v / d);
    }
  }
  lo.insert(lo.end(), hi.rbegin(), hi.rend());
  return lo;
}

/// Ceil division for non-negative integers.
[[nodiscard]] constexpr std::uint64_t ceil_div(std::uint64_t a,
                                               std::uint64_t b) {
  return b == 0 ? 0 : (a + b - 1) / b;
}

}  // namespace aspen
