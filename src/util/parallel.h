// Small deterministic work pool for data-parallel loops.
//
// The routing engine fans independent per-destination computations out
// across threads.  Determinism is the contract that makes that safe to use
// everywhere: `parallel_for_blocks` always hands worker w the same
// contiguous index block for a given (n, threads) pair, so any computation
// whose writes are addressed by index produces byte-identical output at
// every thread count — including 1, which runs inline with no pool at all.
//
// Threads are parked `std::jthread`s reused across calls (spawning per call
// would dominate the sub-millisecond incremental recomputes this serves).
// The pool is lazily created and sized to the largest request seen.
#pragma once

#include <cstdint>
#include <functional>

namespace aspen::parallel {

/// Body of a parallel loop: process indices [begin, end).  `worker` is the
/// stable worker slot in [0, threads) executing the block — use it to index
/// per-worker scratch arenas.
using BlockBody =
    std::function<void(std::uint64_t begin, std::uint64_t end, int worker)>;

/// Threads a `threads = 0` (auto) request resolves to: the explicit
/// set_num_threads() override if any, else the ASPEN_THREADS environment
/// variable, else std::thread::hardware_concurrency().  Always >= 1.
/// A positive `request` is returned unchanged (capped at kMaxThreads).
[[nodiscard]] int effective_num_threads(int request = 0);

/// Process-wide override for auto thread requests (CLI --threads= plumbing).
/// 0 restores the env/hardware default.  Not thread-safe against concurrent
/// parallel_for_blocks calls; set it during startup/flag parsing.
void set_num_threads(int n);

/// Upper bound on workers per loop; requests above it are clamped.
inline constexpr int kMaxThreads = 256;

/// Runs body(begin, end, worker) over a static partition of [0, n) on
/// `threads` workers (0 = auto via effective_num_threads).  Blocks until
/// every block has finished; the first exception thrown by any block is
/// rethrown here.  Nested calls from inside a body run serially inline.
void parallel_for_blocks(std::uint64_t n, int threads, const BlockBody& body);

/// Cache-blocked variant: splits [0, n) into fixed-size chunks of `chunk`
/// indices (the last one ragged) and deals chunk c to worker c % workers,
/// each worker processing its chunks in increasing order.  The chunk→worker
/// map depends only on (n, chunk, workers), so index-addressed output stays
/// deterministic; body is invoked once per chunk with that chunk's
/// [begin, end).  Pick `chunk` so one chunk's working set fits in cache —
/// the round-robin deal then also load-balances ragged work better than one
/// contiguous block per worker.
void parallel_for_chunks(std::uint64_t n, std::uint64_t chunk, int threads,
                         const BlockBody& body);

}  // namespace aspen::parallel
