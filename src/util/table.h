// Plain-text table rendering for benchmark/report output.
//
// The benchmark binaries regenerate the paper's tables and figure series as
// aligned text tables; this tiny formatter keeps that output consistent.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace aspen {

class TextTable {
 public:
  /// Creates a table with the given column headers.
  explicit TextTable(std::vector<std::string> headers);

  /// Appends one row; must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  /// Number of data rows added so far.
  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }

  /// Renders the table with a header rule and column alignment.
  [[nodiscard]] std::string to_string() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with the given precision, trimming trailing zeros.
[[nodiscard]] std::string format_double(double v, int precision = 2);

/// Formats `part/whole` as a percentage string such as "37.5%".
[[nodiscard]] std::string format_percent(double part, double whole,
                                         int precision = 1);

/// Renders a horizontal ASCII bar of width proportional to value/max.
[[nodiscard]] std::string ascii_bar(double value, double max_value,
                                    int width = 40);

}  // namespace aspen
