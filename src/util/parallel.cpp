#include "src/util/parallel.h"

#include <algorithm>
#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "src/util/contracts.h"

namespace aspen::parallel {

namespace {

int g_thread_override = 0;  // set_num_threads(); 0 = auto

// True while the current thread is executing a pool block; nested
// parallel_for_blocks calls then degrade to serial instead of deadlocking
// on the (single) pool.
thread_local bool t_inside_pool = false;

int hardware_threads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

int env_threads() {
  // aspen-lint: allow(getenv) -- sanctioned knob: thread count changes wall time only; outputs are byte-identical at any value
  const char* raw = std::getenv("ASPEN_THREADS");
  if (raw == nullptr || *raw == '\0') return 0;
  char* end = nullptr;
  const long parsed = std::strtol(raw, &end, 10);
  // Reject trailing garbage and out-of-range values instead of silently
  // truncating (and keep cert-err34-c happy: strtol reports its errors).
  if (end == raw || *end != '\0' || parsed <= 0 || parsed > 4096) return 0;
  return static_cast<int>(parsed);
}

// Fixed partition: worker w gets [w*n/W, (w+1)*n/W) — depends only on
// (n, W), never on scheduling, so index-addressed output is deterministic.
struct Block {
  std::uint64_t begin;
  std::uint64_t end;
};

Block block_of(std::uint64_t n, int workers, int w) {
  const auto uw = static_cast<std::uint64_t>(w);
  const auto uworkers = static_cast<std::uint64_t>(workers);
  return Block{n * uw / uworkers, n * (uw + 1) / uworkers};
}

// Parked helper threads, reused across loops.  Helper i always executes
// worker slot i+1 of the active job; the calling thread executes slot 0.
class WorkPool {
 public:
  static WorkPool& instance() {
    static WorkPool pool;
    return pool;
  }

  void run(std::uint64_t n, int workers, const BlockBody& body) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      ensure_helpers(workers - 1);
      job_n_ = n;
      job_workers_ = workers;
      job_body_ = &body;
      job_error_ = nullptr;
      // Every parked helper acknowledges each generation exactly once
      // (helpers beyond this job's worker count just skip the work), so
      // completion counts helpers, not workers.
      remaining_ = static_cast<int>(helpers_.size());
      ++generation_;
    }
    work_cv_.notify_all();

    // Run slot 0 here; on failure still drain the helpers first — they hold
    // a pointer to the caller-owned body.
    std::exception_ptr main_error;
    try {
      run_block(n, workers, 0, body);
    } catch (...) {
      main_error = std::current_exception();
    }

    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [this] { return remaining_ == 0; });
    job_body_ = nullptr;
    if (main_error != nullptr) std::rethrow_exception(main_error);
    if (job_error_ != nullptr) std::rethrow_exception(job_error_);
  }

 private:
  WorkPool() = default;

  ~WorkPool() {
    for (std::jthread& t : helpers_) t.request_stop();
    work_cv_.notify_all();
    // jthread joins on destruction.
  }

  void ensure_helpers(int count) {
    while (static_cast<int>(helpers_.size()) < count) {
      const int slot = static_cast<int>(helpers_.size()) + 1;
      // A helper born mid-sequence must treat the *current* generation as
      // already handled — it only answers for generations published after
      // its creation (the caller bumps generation_ under this same lock).
      helpers_.emplace_back(
          [this, slot, seen = generation_](std::stop_token stop) {
            helper_loop(stop, slot, seen);
          });
    }
  }

  void run_block(std::uint64_t n, int workers, int w, const BlockBody& body) {
    const Block b = block_of(n, workers, w);
    if (b.begin >= b.end) return;
    t_inside_pool = true;
    try {
      body(b.begin, b.end, w);
    } catch (...) {
      t_inside_pool = false;
      throw;
    }
    t_inside_pool = false;
  }

  void helper_loop(const std::stop_token& stop, int slot, std::uint64_t seen) {
    while (true) {
      std::uint64_t n = 0;
      int workers = 0;
      const BlockBody* body = nullptr;
      {
        std::unique_lock<std::mutex> lock(mutex_);
        work_cv_.wait(lock, [&] {
          return stop.stop_requested() || generation_ != seen;
        });
        if (stop.stop_requested()) return;
        seen = generation_;
        n = job_n_;
        workers = job_workers_;
        body = job_body_;
      }
      std::exception_ptr error;
      if (slot < workers) {
        try {
          run_block(n, workers, slot, *body);
        } catch (...) {
          error = std::current_exception();
        }
      }
      {
        std::unique_lock<std::mutex> lock(mutex_);
        if (error != nullptr && job_error_ == nullptr) job_error_ = error;
        --remaining_;
      }
      done_cv_.notify_one();
    }
  }

  std::mutex mutex_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::vector<std::jthread> helpers_;

  // Active job, guarded by mutex_ (helpers copy it out before running).
  std::uint64_t job_n_ = 0;
  int job_workers_ = 0;
  const BlockBody* job_body_ = nullptr;
  std::exception_ptr job_error_;
  int remaining_ = 0;
  std::uint64_t generation_ = 0;
};

}  // namespace

int effective_num_threads(int request) {
  int n = request;
  if (n <= 0) n = g_thread_override;
  if (n <= 0) n = env_threads();
  if (n <= 0) n = hardware_threads();
  return std::clamp(n, 1, kMaxThreads);
}

void set_num_threads(int n) { g_thread_override = n > 0 ? n : 0; }

void parallel_for_blocks(std::uint64_t n, int threads, const BlockBody& body) {
  ASPEN_REQUIRE(body != nullptr, "parallel loop needs a body");
  if (n == 0) return;
  int workers = effective_num_threads(threads);
  if (n < static_cast<std::uint64_t>(workers)) {
    workers = static_cast<int>(n);
  }
  if (workers == 1 || t_inside_pool) {
    // Serial / nested: run the same partition inline (worker slot 0 only —
    // with one worker the partition is the whole range).
    for (int w = 0; w < workers; ++w) {
      const Block b = block_of(n, workers, w);
      if (b.begin < b.end) body(b.begin, b.end, w);
    }
    return;
  }
  WorkPool::instance().run(n, workers, body);
}

void parallel_for_chunks(std::uint64_t n, std::uint64_t chunk, int threads,
                         const BlockBody& body) {
  ASPEN_REQUIRE(body != nullptr, "parallel loop needs a body");
  ASPEN_REQUIRE(chunk > 0, "chunk size must be positive");
  if (n == 0) return;
  const std::uint64_t num_chunks = (n + chunk - 1) / chunk;
  int workers = effective_num_threads(threads);
  if (num_chunks < static_cast<std::uint64_t>(workers)) {
    workers = static_cast<int>(num_chunks);
  }
  const auto run_worker = [&](int w) {
    for (std::uint64_t c = static_cast<std::uint64_t>(w); c < num_chunks;
         c += static_cast<std::uint64_t>(workers)) {
      const std::uint64_t begin = c * chunk;
      body(begin, std::min(n, begin + chunk), w);
    }
  };
  if (workers == 1 || t_inside_pool) {
    for (int w = 0; w < workers; ++w) run_worker(w);
    return;
  }
  // One pool index per worker slot: slot w walks its own chunk sequence.
  const BlockBody outer = [&](std::uint64_t begin, std::uint64_t /*end*/,
                              int /*worker*/) {
    run_worker(static_cast<int>(begin));
  };
  WorkPool::instance().run(static_cast<std::uint64_t>(workers), workers,
                           outer);
}

}  // namespace aspen::parallel
