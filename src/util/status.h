// Error handling helpers.
//
// Following the C++ Core Guidelines (E.2, E.3) we use exceptions for error
// reporting.  `AspenError` is the library's root exception; ASPEN_CHECK /
// ASPEN_REQUIRE provide compact precondition and invariant enforcement with
// formatted messages.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>

namespace aspen {

/// Root exception for all errors raised by this library.
class AspenError : public std::runtime_error {
 public:
  explicit AspenError(const std::string& what) : std::runtime_error(what) {}
};

/// Raised when requested tree parameters admit no valid Aspen tree
/// (e.g. a non-integer pod size m_i — Listing 1 lines 19-20).
class InvalidTreeError : public AspenError {
 public:
  using AspenError::AspenError;
};

/// Raised when a caller violates a documented precondition.
class PreconditionError : public AspenError {
 public:
  using AspenError::AspenError;
};

namespace detail {

template <typename Err, typename... Parts>
[[noreturn]] void throw_formatted(const char* expr, const char* file, int line,
                                  Parts&&... parts) {
  std::ostringstream os;
  os << file << ":" << line << ": check failed: " << expr;
  if constexpr (sizeof...(parts) > 0) {
    os << " — ";
    (os << ... << std::forward<Parts>(parts));
  }
  throw Err(os.str());
}

}  // namespace detail

/// Internal-invariant check: failure indicates a library bug.
#define ASPEN_CHECK(cond, ...)                                           \
  do {                                                                   \
    if (!(cond)) {                                                       \
      ::aspen::detail::throw_formatted<::aspen::AspenError>(             \
          #cond, __FILE__, __LINE__ __VA_OPT__(, ) __VA_ARGS__);         \
    }                                                                    \
  } while (false)

/// Precondition check: failure indicates caller error.
#define ASPEN_REQUIRE(cond, ...)                                         \
  do {                                                                   \
    if (!(cond)) {                                                       \
      ::aspen::detail::throw_formatted<::aspen::PreconditionError>(      \
          #cond, __FILE__, __LINE__ __VA_OPT__(, ) __VA_ARGS__);         \
    }                                                                    \
  } while (false)

}  // namespace aspen
