// Deterministic random-number utilities.
//
// All stochastic pieces of the library (random striping, randomized failure
// schedules, workload generators) draw from an explicitly-seeded Rng so that
// every experiment is reproducible from its printed seed.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

#include "src/util/status.h"

namespace aspen {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed), seed_(seed) {}

  [[nodiscard]] std::uint64_t seed() const { return seed_; }

  /// Uniform integer in [lo, hi] inclusive.
  [[nodiscard]] std::int64_t uniform(std::int64_t lo, std::int64_t hi) {
    ASPEN_REQUIRE(lo <= hi, "uniform(): empty range");
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  /// Uniform index in [0, n) — n must be positive.
  [[nodiscard]] std::size_t index(std::size_t n) {
    ASPEN_REQUIRE(n > 0, "index(): empty range");
    return std::uniform_int_distribution<std::size_t>(0, n - 1)(engine_);
  }

  /// Uniform real in [0, 1).
  [[nodiscard]] double real() {
    return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
  }

  /// Bernoulli trial.
  [[nodiscard]] bool chance(double p) {
    return std::bernoulli_distribution(p)(engine_);
  }

  /// Exponentially distributed value with the given mean (> 0).
  [[nodiscard]] double exponential(double mean) {
    ASPEN_REQUIRE(mean > 0.0, "exponential(): mean must be positive");
    return std::exponential_distribution<double>(1.0 / mean)(engine_);
  }

  /// In-place Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::swap(v[i - 1], v[index(i)]);
    }
  }

  /// Access the underlying engine for std distributions.
  [[nodiscard]] std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
  std::uint64_t seed_;
};

}  // namespace aspen
