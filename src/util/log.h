// Minimal leveled logger.
//
// The simulator and protocol agents emit trace output through this logger;
// tests keep it at kWarn, example binaries turn on kInfo/kDebug to show the
// protocols at work.  A global level keeps the hot path to a single branch.
#pragma once

#include <sstream>
#include <string>

namespace aspen {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Sets the process-wide minimum level that will be emitted.
void set_log_level(LogLevel level);
[[nodiscard]] LogLevel log_level();

/// True when a message at `level` would be emitted.
[[nodiscard]] bool log_enabled(LogLevel level);

/// Emits a single formatted line to stderr. Prefer the ASPEN_LOG macro.
void log_line(LogLevel level, const std::string& message);

#define ASPEN_LOG(level, ...)                                     \
  do {                                                            \
    if (::aspen::log_enabled(level)) {                            \
      std::ostringstream aspen_log_os_;                           \
      aspen_log_os_ << __VA_ARGS__;                               \
      ::aspen::log_line(level, aspen_log_os_.str());              \
    }                                                             \
  } while (false)

#define ASPEN_DEBUG(...) ASPEN_LOG(::aspen::LogLevel::kDebug, __VA_ARGS__)
#define ASPEN_INFO(...) ASPEN_LOG(::aspen::LogLevel::kInfo, __VA_ARGS__)
#define ASPEN_WARN(...) ASPEN_LOG(::aspen::LogLevel::kWarn, __VA_ARGS__)

}  // namespace aspen
