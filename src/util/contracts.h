// Contracts & invariant-audit core (the machine-checked baseline every
// structural claim in this repo rests on — see docs/INVARIANTS.md).
//
// Three macro families enforce invariants at different costs:
//
//   * ASPEN_ASSERT(cond, ...)    — cheap internal invariant; compiled in at
//     ASPEN_AUDIT_LEVEL >= 1 (the default everywhere except Release).
//   * ASPEN_INVARIANT(cond, ...) — expensive invariant (walks a table, scans
//     a queue); compiled in only at ASPEN_AUDIT_LEVEL >= 2.
//   * ASPEN_UNREACHABLE(...)     — marks control flow that must never
//     execute; always active (cold path), never elided.
//
// At ASPEN_AUDIT_LEVEL 0 the gated macros compile to nothing — the condition
// is parsed (so it cannot rot) but never evaluated, giving release builds
// the seed repo's exact instruction stream.
//
// What happens on violation is a *runtime* choice (ViolationPolicy): throw
// ContractViolation (default — tests catch it), abort with a diagnostic
// (crash-early production style), or count-and-log (fuzz/chaos campaigns
// that want to keep running and tally how often an invariant broke).
//
// On top of the macros sit the per-layer auditors (topo::audit_tree,
// routing::audit_tables, proto::audit_anp/audit_lsp, sim::audit_queue).
// They return structured AuditReports — a list of (AuditCode, message)
// findings — so tests can assert *which* invariant fired, and chaos
// campaigns get a sharper failure oracle than end-state comparison alone.
#pragma once

#include <cstdint>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "src/util/status.h"

/// Compile-time audit level: 0 = elided, 1 = cheap asserts, 2 = expensive
/// invariants too.  CMake sets this per build type (Release → 0, Debug → 2,
/// everything else → 1); it can be overridden on the command line.
#ifndef ASPEN_AUDIT_LEVEL
#define ASPEN_AUDIT_LEVEL 1
#endif

namespace aspen {

/// Raised (under ViolationPolicy::kThrow) when a contract or audited
/// invariant is violated.  Deriving from AspenError keeps existing
/// catch-sites working.
class ContractViolation : public AspenError {
 public:
  using AspenError::AspenError;
};

/// Every invariant the audit layer can report, one code per distinct
/// failure mode.  docs/INVARIANTS.md maps each code to the paper equation
/// or section it protects.
enum class AuditCode {
  // ---- topo::audit_tree -----------------------------------------------
  kEq1Conservation,     ///< p_i·m_i != S (S/2 at L_n) — Eq. 1
  kEq2PortBudget,       ///< r_i·c_i != k/2 (k at L_n) — Eq. 2
  kEq3PodNesting,       ///< p_i·r_i != p_{i-1} — Eq. 3
  kDccConsistency,      ///< Π c_i != params.dcc() — §5.2
  kPortCount,           ///< a switch uses != k ports (a host != 1)
  kStripingRegularity,  ///< per-child-pod link count != c_i (§3)
  kTopLevelCoverage,    ///< an L_n switch misses an L_{n-1} pod (§4)
  kAnpStriping,         ///< §7 shared-ancestor requirement violated
  kLinkRecord,          ///< link endpoints not at adjacent levels / bad ids

  // ---- routing::audit_tables ------------------------------------------
  kTableShape,          ///< table/destination counts inconsistent
  kCostInconsistency,   ///< entry cost disagrees with its next-hop set
  kNextHopLink,         ///< next hop's link does not join the two nodes
  kDeadNextHop,         ///< next hop rides a link that is down
  kUpAfterDown,         ///< a table walk climbs after descending (§3, §6)
  kRoutingLoop,         ///< a table walk revisits a switch for one dest
  kDefaultRouteGap,     ///< unreachable destination in a fully-live fabric
  kIncrementalDrift,    ///< maintained state or digest diverges from a
                        ///< fresh full route computation

  // ---- proto::audit_anp / audit_lsp -----------------------------------
  kWithdrawalLogStale,    ///< removal logged against a link that is up
  kAnnouncedLostMismatch, ///< announced-lost flag set but entry non-empty
  kCrashCustody,          ///< crash-links custody held by a live switch
  kCustodyLinkUp,         ///< custody claims a link that is actually up
  kResyncDirection,       ///< resync sent along a direction ANP never uses
  kInflightAccounting,    ///< conversations still open at quiescence
  kTransportAccounting,   ///< ack/retransmit counters incoherent
  kChannelAccounting,     ///< copies delivered+dropped != attempted+dup

  // ---- sim::audit_queue -----------------------------------------------
  kTimeMonotonicity,    ///< a queued event precedes the simulator's now()
  kQueueAccounting,     ///< event sequence numbers / counters incoherent

  // ---- fault::audit_detector ------------------------------------------
  kDetectorSuppression, ///< damping suppression disagrees with its penalty
  kDetectorOscillation, ///< notifications exceed the damping bound
  kDetectorSession,     ///< reported link state diverges from confirmed
};

[[nodiscard]] const char* to_cstring(AuditCode code);

/// One violated invariant, with enough context to act on it.
struct AuditFinding {
  AuditCode code{};
  std::string message;  ///< subject plus expected/actual values
};

/// Outcome of one auditor pass: empty means every invariant held.
struct AuditReport {
  std::vector<AuditFinding> findings;

  [[nodiscard]] bool ok() const { return findings.empty(); }
  [[nodiscard]] bool has(AuditCode code) const;
  [[nodiscard]] std::uint64_t count(AuditCode code) const;
  /// One line per finding: "<code>: <message>".
  [[nodiscard]] std::string to_string() const;

  void add(AuditCode code, std::string message) {
    findings.push_back(AuditFinding{code, std::move(message)});
  }
  void merge(AuditReport other) {
    for (AuditFinding& f : other.findings) findings.push_back(std::move(f));
  }
};

namespace contracts {

/// What a violated contract does at runtime.
enum class ViolationPolicy {
  kThrow,        ///< throw ContractViolation (default)
  kAbort,        ///< print to stderr and std::abort()
  kCountAndLog,  ///< tally it, keep the first few messages, continue
};

/// How much auditing runs at runtime (the compile-time ASPEN_AUDIT_LEVEL
/// bounds what *can* run; this picks what *does*).
enum class AuditLevel : int { kOff = 0, kBasic = 1, kParanoid = 2 };

[[nodiscard]] ViolationPolicy policy();
void set_policy(ViolationPolicy policy);

/// Runtime audit level: the max of set_audit_level() and the
/// ASPEN_AUDIT_LEVEL environment variable ("off"/"basic"/"paranoid" or
/// 0/1/2), read once at first use.
[[nodiscard]] AuditLevel audit_level();
void set_audit_level(AuditLevel level);
/// max(audit_level(), configured) — lets the env promote any run.
[[nodiscard]] AuditLevel effective_audit_level(AuditLevel configured);
/// Parses "off"/"basic"/"paranoid"/"0"/"1"/"2"; throws PreconditionError
/// on anything else.
[[nodiscard]] AuditLevel parse_audit_level(const std::string& text);
[[nodiscard]] const char* to_cstring(AuditLevel level);

/// Violations swallowed so far under kCountAndLog (reset_violations()
/// zeroes it; the first few messages are retained for inspection).
[[nodiscard]] std::uint64_t violation_count();
[[nodiscard]] std::vector<std::string> recent_violations();
void reset_violations();

/// Routes one formatted violation through the active policy.  Returns
/// normally only under kCountAndLog.
void report_violation(const std::string& message);

/// Applies the policy to a failed audit: no-op when `report.ok()`,
/// otherwise one violation per finding, prefixed with `where`.
void enforce(const AuditReport& report, const char* where);

/// RAII: swap policy (and optionally audit level) for a scope — tests and
/// chaos campaigns use this instead of mutating process-global state.
class ScopedPolicy {
 public:
  explicit ScopedPolicy(ViolationPolicy policy);
  ScopedPolicy(ViolationPolicy policy, AuditLevel level);
  ~ScopedPolicy();
  ScopedPolicy(const ScopedPolicy&) = delete;
  ScopedPolicy& operator=(const ScopedPolicy&) = delete;

 private:
  ViolationPolicy saved_policy_;
  AuditLevel saved_level_;
};

namespace detail {

template <typename... Parts>
void handle_failure(const char* expr, const char* file, int line,
                    Parts&&... parts) {
  std::ostringstream os;
  os << file << ":" << line << ": contract violated: " << expr;
  if constexpr (sizeof...(parts) > 0) {
    os << " — ";
    (os << ... << std::forward<Parts>(parts));
  }
  report_violation(os.str());
}

[[noreturn]] void unreachable(const char* file, int line,
                              const std::string& note);

template <typename... Parts>
[[noreturn]] void unreachable_fmt(const char* file, int line,
                                  Parts&&... parts) {
  std::ostringstream os;
  (os << ... << std::forward<Parts>(parts));
  unreachable(file, line, os.str());
}

}  // namespace detail
}  // namespace contracts
}  // namespace aspen

/// Parses but never evaluates `cond`; keeps elided checks from rotting and
/// silences unused-variable warnings for names only the check mentions.
#define ASPEN_CONTRACT_NOOP(cond) \
  do {                            \
    (void)sizeof((cond) ? 1 : 0); \
  } while (false)

#if ASPEN_AUDIT_LEVEL >= 1
#define ASPEN_ASSERT(cond, ...)                                       \
  do {                                                                \
    if (!(cond)) {                                                    \
      ::aspen::contracts::detail::handle_failure(                     \
          #cond, __FILE__, __LINE__ __VA_OPT__(, ) __VA_ARGS__);      \
    }                                                                 \
  } while (false)
#else
#define ASPEN_ASSERT(cond, ...) ASPEN_CONTRACT_NOOP(cond)
#endif

#if ASPEN_AUDIT_LEVEL >= 2
#define ASPEN_INVARIANT(cond, ...)                                    \
  do {                                                                \
    if (!(cond)) {                                                    \
      ::aspen::contracts::detail::handle_failure(                     \
          #cond, __FILE__, __LINE__ __VA_OPT__(, ) __VA_ARGS__);      \
    }                                                                 \
  } while (false)
#else
#define ASPEN_INVARIANT(cond, ...) ASPEN_CONTRACT_NOOP(cond)
#endif

#define ASPEN_UNREACHABLE(...)                                           \
  ::aspen::contracts::detail::unreachable_fmt(                           \
      __FILE__, __LINE__ __VA_OPT__(, ) __VA_ARGS__)
