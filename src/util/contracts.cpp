#include "src/util/contracts.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace aspen {

const char* to_cstring(AuditCode code) {
  switch (code) {
    case AuditCode::kEq1Conservation: return "eq1-conservation";
    case AuditCode::kEq2PortBudget: return "eq2-port-budget";
    case AuditCode::kEq3PodNesting: return "eq3-pod-nesting";
    case AuditCode::kDccConsistency: return "dcc-consistency";
    case AuditCode::kPortCount: return "port-count";
    case AuditCode::kStripingRegularity: return "striping-regularity";
    case AuditCode::kTopLevelCoverage: return "top-level-coverage";
    case AuditCode::kAnpStriping: return "anp-striping";
    case AuditCode::kLinkRecord: return "link-record";
    case AuditCode::kTableShape: return "table-shape";
    case AuditCode::kCostInconsistency: return "cost-inconsistency";
    case AuditCode::kNextHopLink: return "next-hop-link";
    case AuditCode::kDeadNextHop: return "dead-next-hop";
    case AuditCode::kUpAfterDown: return "up-after-down";
    case AuditCode::kRoutingLoop: return "routing-loop";
    case AuditCode::kDefaultRouteGap: return "default-route-gap";
    case AuditCode::kIncrementalDrift: return "incremental-drift";
    case AuditCode::kWithdrawalLogStale: return "withdrawal-log-stale";
    case AuditCode::kAnnouncedLostMismatch: return "announced-lost-mismatch";
    case AuditCode::kCrashCustody: return "crash-custody";
    case AuditCode::kCustodyLinkUp: return "custody-link-up";
    case AuditCode::kResyncDirection: return "resync-direction";
    case AuditCode::kInflightAccounting: return "inflight-accounting";
    case AuditCode::kTransportAccounting: return "transport-accounting";
    case AuditCode::kChannelAccounting: return "channel-accounting";
    case AuditCode::kTimeMonotonicity: return "time-monotonicity";
    case AuditCode::kQueueAccounting: return "queue-accounting";
    case AuditCode::kDetectorSuppression: return "detector-suppression";
    case AuditCode::kDetectorOscillation: return "detector-oscillation";
    case AuditCode::kDetectorSession: return "detector-session";
  }
  ASPEN_UNREACHABLE("unknown AuditCode ", static_cast<int>(code));
}

bool AuditReport::has(AuditCode code) const {
  for (const AuditFinding& f : findings) {
    if (f.code == code) return true;
  }
  return false;
}

std::uint64_t AuditReport::count(AuditCode code) const {
  std::uint64_t n = 0;
  for (const AuditFinding& f : findings) {
    if (f.code == code) ++n;
  }
  return n;
}

std::string AuditReport::to_string() const {
  std::string out;
  for (const AuditFinding& f : findings) {
    out += aspen::to_cstring(f.code);
    out += ": ";
    out += f.message;
    out += '\n';
  }
  return out;
}

namespace contracts {

namespace {

/// Messages kept under kCountAndLog, so a chaos run's first violations can
/// be inspected after the fact without unbounded growth.
constexpr std::size_t kMaxRetainedMessages = 16;

struct State {
  std::mutex mu;
  ViolationPolicy policy = ViolationPolicy::kThrow;
  AuditLevel level = AuditLevel::kOff;  // env folds in via audit_level()
  std::uint64_t violations = 0;
  std::vector<std::string> messages;
};

State& state() {
  static State s;
  return s;
}

AuditLevel env_audit_level() {
  static const AuditLevel level = [] {
    // aspen-lint: allow(getenv) -- sanctioned knob: promotes audit strictness only; never changes computed results
    const char* env = std::getenv("ASPEN_AUDIT_LEVEL");
    if (env == nullptr || *env == '\0') return AuditLevel::kOff;
    try {
      return parse_audit_level(env);
    } catch (const AspenError&) {
      std::fprintf(stderr,
                   "aspen: ignoring unrecognized ASPEN_AUDIT_LEVEL=%s\n", env);
      return AuditLevel::kOff;
    }
  }();
  return level;
}

}  // namespace

ViolationPolicy policy() {
  State& s = state();
  const std::lock_guard<std::mutex> lock(s.mu);
  return s.policy;
}

void set_policy(ViolationPolicy policy) {
  State& s = state();
  const std::lock_guard<std::mutex> lock(s.mu);
  s.policy = policy;
}

AuditLevel audit_level() {
  State& s = state();
  const std::lock_guard<std::mutex> lock(s.mu);
  return std::max(s.level, env_audit_level());
}

void set_audit_level(AuditLevel level) {
  State& s = state();
  const std::lock_guard<std::mutex> lock(s.mu);
  s.level = level;
}

AuditLevel effective_audit_level(AuditLevel configured) {
  return std::max(configured, audit_level());
}

AuditLevel parse_audit_level(const std::string& text) {
  if (text == "off" || text == "0") return AuditLevel::kOff;
  if (text == "basic" || text == "1") return AuditLevel::kBasic;
  if (text == "paranoid" || text == "2") return AuditLevel::kParanoid;
  throw PreconditionError("unknown audit level: " + text +
                          " (expected off|basic|paranoid)");
}

const char* to_cstring(AuditLevel level) {
  switch (level) {
    case AuditLevel::kOff: return "off";
    case AuditLevel::kBasic: return "basic";
    case AuditLevel::kParanoid: return "paranoid";
  }
  ASPEN_UNREACHABLE("unknown AuditLevel ", static_cast<int>(level));
}

std::uint64_t violation_count() {
  State& s = state();
  const std::lock_guard<std::mutex> lock(s.mu);
  return s.violations;
}

std::vector<std::string> recent_violations() {
  State& s = state();
  const std::lock_guard<std::mutex> lock(s.mu);
  return s.messages;
}

void reset_violations() {
  State& s = state();
  const std::lock_guard<std::mutex> lock(s.mu);
  s.violations = 0;
  s.messages.clear();
}

void report_violation(const std::string& message) {
  State& s = state();
  ViolationPolicy active;
  {
    const std::lock_guard<std::mutex> lock(s.mu);
    active = s.policy;
    if (active == ViolationPolicy::kCountAndLog) {
      ++s.violations;
      if (s.messages.size() < kMaxRetainedMessages) {
        s.messages.push_back(message);
      }
    }
  }
  switch (active) {
    case ViolationPolicy::kThrow:
      throw ContractViolation(message);
    case ViolationPolicy::kAbort:
      std::fprintf(stderr, "aspen: contract violation: %s\n", message.c_str());
      std::abort();
    case ViolationPolicy::kCountAndLog:
      return;
  }
}

void enforce(const AuditReport& report, const char* where) {
  if (report.ok()) return;
  if (policy() == ViolationPolicy::kCountAndLog) {
    // One violation per finding, so the tally reflects audit granularity.
    for (const AuditFinding& f : report.findings) {
      report_violation(std::string(where) + ": " +
                       std::string(aspen::to_cstring(f.code)) + ": " +
                       f.message);
    }
    return;
  }
  report_violation(std::string(where) + ": " +
                   std::to_string(report.findings.size()) +
                   " invariant violation(s)\n" + report.to_string());
}

ScopedPolicy::ScopedPolicy(ViolationPolicy policy)
    : saved_policy_(contracts::policy()), saved_level_(state().level) {
  set_policy(policy);
}

ScopedPolicy::ScopedPolicy(ViolationPolicy policy, AuditLevel level)
    : ScopedPolicy(policy) {
  set_audit_level(level);
}

ScopedPolicy::~ScopedPolicy() {
  set_policy(saved_policy_);
  set_audit_level(saved_level_);
}

namespace detail {

void unreachable(const char* file, int line, const std::string& note) {
  std::ostringstream os;
  os << file << ":" << line << ": reached unreachable code";
  if (!note.empty()) os << " — " << note;
  // Unreachable code is unconditionally fatal under every policy except
  // kCountAndLog, where execution genuinely cannot continue either — so it
  // escalates to a throw after tallying.
  const std::string message = os.str();
  if (policy() == ViolationPolicy::kCountAndLog) {
    report_violation(message);  // tallies and returns
    throw ContractViolation(message);
  }
  report_violation(message);  // throws or aborts
  throw ContractViolation(message);  // not reached; satisfies [[noreturn]]
}

}  // namespace detail
}  // namespace contracts
}  // namespace aspen
