#include "src/traffic/load.h"

#include <algorithm>
#include <limits>

#include "src/obs/obs.h"
#include "src/util/contracts.h"
#include "src/util/status.h"

namespace aspen {

LoadResult assign_load(const Topology& topo, const Router& knowledge,
                       const LinkStateOverlay& actual,
                       const std::vector<Flow>& flows,
                       const LoadOptions& options) {
  LoadResult result;

  // 1. Pin each flow to a path via the packet walker.  Links are full
  // duplex: each physical link contributes two unit-capacity channels, one
  // per direction, keyed as 2·link + (0 = upward, 1 = downward).
  std::vector<std::vector<std::uint32_t>> flow_links;
  flow_links.reserve(flows.size());
  double total_path_links = 0.0;
  for (const Flow& flow : flows) {
    WalkOptions walk_options;
    walk_options.flow_seed = options.flow_seed;
    walk_options.ttl = options.ttl;
    const WalkResult walk =
        walk_packet(topo, knowledge, actual, flow.src, flow.dst,
                    walk_options);
    if (!walk.delivered()) {
      ++result.flows_unroutable;
      obs::count("traffic.flows_unroutable");
      continue;
    }
    // Recover the directed channel sequence from the node path.
    std::vector<std::uint32_t> links;
    links.reserve(walk.path.size());
    for (std::size_t i = 0; i + 1 < walk.path.size(); ++i) {
      const NodeId a = walk.path[i];
      const NodeId b = walk.path[i + 1];
      LinkId link = LinkId::invalid();
      bool upward = false;
      if (topo.is_switch_node(a) && topo.is_switch_node(b)) {
        const SwitchId sa = topo.switch_of(a);
        const SwitchId sb = topo.switch_of(b);
        upward = topo.level_of(sa) < topo.level_of(sb);
        link = upward ? topo.find_link(sb, sa) : topo.find_link(sa, sb);
      } else {
        // Host hop: climbing when the host comes first.
        upward = !topo.is_switch_node(a);
        const HostId h = topo.host_of(upward ? a : b);
        link = topo.host_uplink(h).link;
      }
      ASPEN_CHECK(link.valid(), "walked across a non-existent link");
      links.push_back(link.value() * 2 + (upward ? 0u : 1u));
    }
    flow_links.push_back(std::move(links));
    total_path_links += static_cast<double>(flow_links.back().size());
    ++result.flows_routed;
    obs::count("traffic.flows_routed");
  }

  // Explicit loss accounting: the max-min fold below only sees routed
  // flows, so the unroutable share must be reported, not implied.  The
  // identity is always asserted; paranoid audits keep the check in
  // builds that compile ASPEN_ASSERT out.
  if (contracts::effective_audit_level(contracts::AuditLevel::kOff) >=
      contracts::AuditLevel::kParanoid) {
    ASPEN_CHECK(result.flows_routed + result.flows_unroutable == flows.size(),
                "every flow is either routed or unroutable: ",
                result.flows_routed, " + ", result.flows_unroutable,
                " != ", flows.size());
  }
  if (!flows.empty()) {
    result.lost_rate = static_cast<double>(result.flows_unroutable) /
                       static_cast<double>(flows.size());
  }

  // 2. Progressive-filling max-min fair allocation, unit capacities.
  const std::size_t nf = flow_links.size();
  result.rates.assign(nf, 0.0);
  if (nf == 0) return result;

  const std::uint64_t channels = topo.num_links() * 2;
  std::vector<double> link_capacity(channels, 1.0);
  std::vector<std::uint64_t> link_flows(channels, 0);
  for (const auto& links : flow_links) {
    for (const std::uint32_t l : links) ++link_flows[l];
  }
  std::vector<char> physical_used(topo.num_links(), 0);
  for (std::uint64_t l = 0; l < channels; ++l) {
    if (link_flows[l] > 0) physical_used[l / 2] = 1;
    result.max_link_flows = std::max(result.max_link_flows, link_flows[l]);
  }
  for (std::uint64_t l = 0; l < topo.num_links(); ++l) {
    if (physical_used[l]) ++result.links_used;
  }

  std::vector<char> frozen(nf, 0);
  std::size_t remaining = nf;
  while (remaining > 0) {
    // Bottleneck link: minimal capacity / active-flow ratio.
    double bottleneck_share = std::numeric_limits<double>::infinity();
    for (std::uint64_t l = 0; l < channels; ++l) {
      if (link_flows[l] == 0) continue;
      bottleneck_share = std::min(
          bottleneck_share,
          link_capacity[l] / static_cast<double>(link_flows[l]));
    }
    ASPEN_CHECK(bottleneck_share <
                    std::numeric_limits<double>::infinity(),
                "active flows with no links");

    // Raise every active flow by the share; freeze flows on saturated
    // links.
    for (std::size_t f = 0; f < nf; ++f) {
      if (frozen[f]) continue;
      result.rates[f] += bottleneck_share;
      for (const std::uint32_t l : flow_links[f]) {
        link_capacity[l] -= bottleneck_share;
      }
    }
    constexpr double kEps = 1e-12;
    for (std::size_t f = 0; f < nf; ++f) {
      if (frozen[f]) continue;
      for (const std::uint32_t l : flow_links[f]) {
        if (link_capacity[l] <= kEps) {
          frozen[f] = 1;
          break;
        }
      }
      if (frozen[f]) {
        --remaining;
        for (const std::uint32_t l : flow_links[f]) {
          --link_flows[l];
        }
      }
    }
  }

  ASPEN_ASSERT(result.flows_routed + result.flows_unroutable == flows.size(),
               "every flow is either routed or unroutable");
  result.min_rate = *std::ranges::min_element(result.rates);
  for (const double r : result.rates) result.aggregate_throughput += r;
  result.mean_rate =
      result.aggregate_throughput / static_cast<double>(nf);
  result.mean_path_links = total_path_links / static_cast<double>(nf);
  return result;
}

}  // namespace aspen
