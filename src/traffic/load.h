// Flow-level load model: ECMP path assignment plus max-min fair rates.
//
// Each flow is pinned to one path by the same deterministic ECMP hash the
// packet walker uses; links are full duplex (one unit-capacity channel
// per direction); rates are assigned by
// progressive filling (the classic max-min fair allocation: repeatedly
// saturate the most-contended link, freezing its flows at the fair share).
// This is the standard flow-level approximation used to evaluate topology
// bisection bandwidth.
#pragma once

#include <cstdint>
#include <vector>

#include "src/routing/packet_walk.h"
#include "src/topo/link_state.h"
#include "src/topo/topology.h"
#include "src/traffic/patterns.h"

namespace aspen {

struct LoadResult {
  std::uint64_t flows_routed = 0;
  std::uint64_t flows_unroutable = 0;
  /// Max-min fair rate per routed flow (same order as the routed subset).
  std::vector<double> rates;
  /// Links carrying at least one flow.
  std::uint64_t links_used = 0;
  /// Highest number of flows sharing one directed channel.
  std::uint64_t max_link_flows = 0;
  double aggregate_throughput = 0.0;  ///< Σ rates
  double min_rate = 0.0;
  double mean_rate = 0.0;
  double mean_path_links = 0.0;  ///< links per routed flow
  /// Fraction of the *offered* pattern that was unroutable.  Reported
  /// explicitly because normalized_throughput() divides by routed flows
  /// only — a fabric that black-holes half its flows and gives the
  /// survivors line rate still scores 1.0 there.
  double lost_rate = 0.0;

  /// Throughput normalized by *routed* flow count — 1.0 means every routed
  /// flow got full line rate (the "full bisection bandwidth" ideal).
  /// Pair with lost_rate: unroutable flows are absent from this ratio.
  [[nodiscard]] double normalized_throughput() const {
    return flows_routed == 0 ? 0.0
                             : aggregate_throughput /
                                   static_cast<double>(flows_routed);
  }
};

struct LoadOptions {
  /// Seed mixed into the ECMP hash (selects one path per flow).
  std::uint64_t flow_seed = 0;
  int ttl = 64;
};

/// Routes every flow with `knowledge` over the `actual` link state and
/// computes max-min fair rates over the resulting link loads.
[[nodiscard]] LoadResult assign_load(const Topology& topo,
                                     const Router& knowledge,
                                     const LinkStateOverlay& actual,
                                     const std::vector<Flow>& flows,
                                     const LoadOptions& options = {});

}  // namespace aspen
