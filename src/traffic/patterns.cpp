#include "src/traffic/patterns.h"

#include <numeric>

#include "src/util/contracts.h"
#include "src/util/status.h"

namespace aspen {

std::vector<Flow> permutation_traffic(const Topology& topo, Rng& rng) {
  const auto hosts = static_cast<std::uint32_t>(topo.num_hosts());
  ASPEN_REQUIRE(hosts >= 2, "permutation needs at least two hosts");
  std::vector<std::uint32_t> targets(hosts);
  std::iota(targets.begin(), targets.end(), 0);
  // Shuffle until derangement-ish: re-draw self-loops by swapping with a
  // neighbor (bounded, deterministic fixup).
  rng.shuffle(targets);
  for (std::uint32_t i = 0; i < hosts; ++i) {
    if (targets[i] == i) {
      const std::uint32_t j = (i + 1) % hosts;
      std::swap(targets[i], targets[j]);
    }
  }
  std::vector<Flow> flows;
  flows.reserve(hosts);
  for (std::uint32_t i = 0; i < hosts; ++i) {
    if (targets[i] == i) continue;  // possible residual single fixed point
    flows.push_back(Flow{HostId{i}, HostId{targets[i]}});
  }
  ASPEN_ASSERT(flows.size() + 1 >= hosts,
               "fixup leaves at most one fixed point");
  return flows;
}

std::vector<Flow> uniform_random_traffic(const Topology& topo,
                                         std::uint64_t count, Rng& rng) {
  ASPEN_REQUIRE(topo.num_hosts() >= 2, "need at least two hosts");
  std::vector<Flow> flows;
  flows.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    const auto src = static_cast<std::uint32_t>(rng.index(topo.num_hosts()));
    auto dst = static_cast<std::uint32_t>(rng.index(topo.num_hosts() - 1));
    if (dst >= src) ++dst;
    ASPEN_ASSERT(dst != src, "uniform draw must avoid self-flows");
    flows.push_back(Flow{HostId{src}, HostId{dst}});
  }
  return flows;
}

std::vector<Flow> hotspot_traffic(const Topology& topo,
                                  std::uint64_t hot_edge, Rng& rng) {
  ASPEN_REQUIRE(hot_edge < topo.params().S, "hot edge out of range");
  const auto hot_hosts = topo.hosts_of_edge(
      topo.switch_at(1, hot_edge));
  std::vector<Flow> flows;
  for (std::uint32_t s = 0; s < topo.num_hosts(); ++s) {
    const HostId src{s};
    if (topo.edge_switch_of(src) == topo.switch_at(1, hot_edge)) continue;
    flows.push_back(Flow{src, hot_hosts[rng.index(hot_hosts.size())]});
  }
  return flows;
}

std::vector<Flow> stride_traffic(const Topology& topo, std::uint64_t stride) {
  const std::uint64_t hosts = topo.num_hosts();
  ASPEN_REQUIRE(stride > 0 && stride < hosts, "stride must be in (0, hosts)");
  std::vector<Flow> flows;
  flows.reserve(hosts);
  for (std::uint64_t i = 0; i < hosts; ++i) {
    flows.push_back(Flow{HostId{static_cast<std::uint32_t>(i)},
                         HostId{static_cast<std::uint32_t>(
                             (i + stride) % hosts)}});
  }
  return flows;
}

std::vector<Flow> pod_local_traffic(const Topology& topo, Rng& rng) {
  const TreeParams& params = topo.params();
  // Edges under the same L2 pod form contiguous blocks of r_2.
  const std::uint64_t block = params.n >= 2 ? params.r[2] : 1;
  const auto half_k = static_cast<std::uint64_t>(params.k) / 2;
  const std::uint64_t hosts_per_block = block * half_k;

  std::vector<Flow> flows;
  flows.reserve(topo.num_hosts());
  for (std::uint32_t s = 0; s < topo.num_hosts(); ++s) {
    if (hosts_per_block < 2) break;  // no local peer exists
    const std::uint64_t base = (s / hosts_per_block) * hosts_per_block;
    auto offset = rng.index(hosts_per_block - 1);
    auto dst = static_cast<std::uint32_t>(base + offset);
    if (dst >= s) ++dst;  // skip self
    flows.push_back(Flow{HostId{s}, HostId{dst}});
  }
  return flows;
}

}  // namespace aspen
