// Traffic patterns for load experiments.
//
// The paper motivates fat trees with "full bisection bandwidth" and
// "diverse yet short paths" (§1); the traffic substrate lets experiments
// quantify what the Aspen modifications do (and don't do) to those
// properties.  Patterns are plain (src, dst) flow lists; the load model in
// load.h turns them into per-link utilization and max-min fair rates.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/topo/topology.h"
#include "src/util/ids.h"
#include "src/util/rng.h"

namespace aspen {

struct Flow {
  HostId src;
  HostId dst;

  friend bool operator==(const Flow&, const Flow&) = default;
};

/// A random permutation: every host sends to exactly one other host and
/// receives from exactly one — the canonical bisection-bandwidth workload.
[[nodiscard]] std::vector<Flow> permutation_traffic(const Topology& topo,
                                                    Rng& rng);

/// `count` flows with independently uniform src and dst (src != dst).
[[nodiscard]] std::vector<Flow> uniform_random_traffic(const Topology& topo,
                                                       std::uint64_t count,
                                                       Rng& rng);

/// All hosts send to hosts in a single "hot" edge-switch range — an incast
/// pattern that stresses the links above the hot pod.
[[nodiscard]] std::vector<Flow> hotspot_traffic(const Topology& topo,
                                                std::uint64_t hot_edge,
                                                Rng& rng);

/// Every host sends to the host `stride` positions away (mod host count);
/// stride = hosts/2 crosses the bisection for every flow.
[[nodiscard]] std::vector<Flow> stride_traffic(const Topology& topo,
                                               std::uint64_t stride);

/// Pod-local shuffle: each host sends to a random host under the same
/// L2-pod subtree (never crosses the core) — the baseline that any
/// top-level damage should leave untouched.
[[nodiscard]] std::vector<Flow> pod_local_traffic(const Topology& topo,
                                                  Rng& rng);

}  // namespace aspen
