// Flow-scale traffic plane: millions of concurrent flows walked through
// the vulnerability window.
//
// The packet walker (src/routing/packet_walk.h) prices one packet at a
// time through virtual-call routers and per-walk path vectors; that caps
// realistic load far below the north star.  The FlowPlane keeps every
// admitted flow in flat struct-of-arrays state (no node-based containers —
// see the hot-path-nested-container lint rule) and re-walks all still
// inflight flows per epoch over the arena forwarding tables via
// ecmp::EcmpReadView, with zero allocations on the per-flow path.
//
// Loss accounting is integer and exact by construction: a flow is admitted
// once, attempts delivery every epoch, and ends as exactly one of
// delivered, lost (after `patience` consecutive failed epochs, classified
// by the last failure), or still inflight — so at any instant
//   admitted == delivered + lost + inflight.
//
// Determinism contract: per-flow ECMP seeds come from
// fault::derive_stream_seed(base_seed, kStreamFlowEcmp + flow); the epoch
// step fans out over parallel_for_blocks with index-addressed writes and
// aggregates counters after the join, so flow fates — and the order-aware
// fate_fingerprint() — are byte-identical at any thread count.  The
// kSeededHash policy reproduces the packet walker's hash/rotation
// decisions bit-for-bit (tests/test_flow_plane.cpp diffs every path).
#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "src/fault/chaos.h"
#include "src/routing/ecmp.h"
#include "src/routing/fwd_table.h"
#include "src/topo/link_state.h"
#include "src/topo/topology.h"
#include "src/traffic/patterns.h"
#include "src/util/rng.h"

namespace aspen {

/// How a switch picks one next hop from its ECMP row for a flow
/// (mirroring the NextHopSelectionPolicy idiom of flat-DCN routers).
enum class NextHopPolicy : std::uint8_t {
  /// The packet walker's pick: hash-select over the full offered row, then
  /// rotate to the first live hop (local link awareness).  The policy the
  /// differential harness byte-matches against walk_packet.
  kSeededHash,
  /// Lowest live link id — provably independent of every seed.
  kLowest,
  /// Hash-weighted over live hops, weight = the candidate node's physical
  /// degree, so fatter subtrees draw proportionally more flows.
  kWeighted,
};

[[nodiscard]] const char* to_cstring(NextHopPolicy policy);
/// Parses "hash" / "lowest" / "weighted"; returns false on anything else.
[[nodiscard]] bool parse_next_hop_policy(std::string_view text,
                                         NextHopPolicy& out);

/// Terminal (or not-yet-terminal) state of one admitted flow.
enum class FlowFate : std::uint8_t {
  kInflight = 0,  ///< admitted, not yet delivered or declared lost
  kDelivered,     ///< reached its destination host
  kBlackholed,    ///< patience exhausted on dead-link / dead-row drops
  kLooped,        ///< patience exhausted on TTL walks (forwarding loop)
  kNoRoute,       ///< patience exhausted on empty forwarding rows
};

[[nodiscard]] const char* to_cstring(FlowFate fate);

struct FlowPlaneOptions {
  /// Base seed; per-flow ECMP seeds and the admission pattern generator
  /// derive their independent streams from it.
  std::uint64_t base_seed = 1;
  NextHopPolicy policy = NextHopPolicy::kSeededHash;
  /// Max links per attempt before declaring a forwarding loop.
  int ttl = 64;
  /// Consecutive failed epochs before a flow is declared lost.  1 makes
  /// every failure immediately fatal (the paper's instantaneous-loss
  /// reading); larger values model retry patience across convergence.
  int patience = 3;
  /// Worker threads for step() (0 = auto).  Output is byte-identical at
  /// every value; this only buys wall-clock.
  int threads = 0;
  /// Honor gray/flapping link health on walked paths (same keying as the
  /// packet walker's health model).
  bool apply_health = false;
  std::uint64_t health_seed = 0;
};

/// What one epoch did.  All integers; lost() folds the three causes.
struct FlowStepStats {
  std::uint64_t epoch = 0;      ///< 0-based epoch index just executed
  std::uint64_t attempted = 0;  ///< inflight flows walked this epoch
  std::uint64_t delivered = 0;
  std::uint64_t blackholed = 0;
  std::uint64_t looped = 0;
  std::uint64_t no_route = 0;
  std::uint64_t reroutes = 0;  ///< flows whose path changed between attempts

  [[nodiscard]] std::uint64_t lost() const {
    return blackholed + looped + no_route;
  }
};

class FlowPlane {
 public:
  explicit FlowPlane(const Topology& topo,
                     const FlowPlaneOptions& options = {});

  /// Admits a batch of flows (each starts inflight with 0 attempts).
  /// Returns the number admitted.
  std::uint64_t admit(std::span<const Flow> flows);

  /// Admits `count` uniform-random flows (src != dst) from the plane's own
  /// admission stream.  Successive calls continue the stream, so splitting
  /// one admission into batches never changes the flows generated.
  std::uint64_t admit_uniform(std::uint64_t count);

  /// Walks every inflight flow once against `knowledge` tables over the
  /// `actual` link state.  Parallel (options.threads) but byte-identical
  /// at any thread count.  Reads the tables through a fresh EcmpReadView —
  /// safe against arena slice growth between calls.
  FlowStepStats step(const RoutingState& knowledge,
                     const LinkStateOverlay& actual, double at_time_ms = 0.0);

  // ---- accounting (admitted == delivered + lost + inflight, always) ----

  [[nodiscard]] std::uint64_t admitted() const { return src_.size(); }
  [[nodiscard]] std::uint64_t delivered() const { return delivered_; }
  [[nodiscard]] std::uint64_t lost() const {
    return blackholed_ + looped_ + no_route_;
  }
  [[nodiscard]] std::uint64_t inflight() const { return active_.size(); }
  [[nodiscard]] std::uint64_t blackholed() const { return blackholed_; }
  [[nodiscard]] std::uint64_t looped() const { return looped_; }
  [[nodiscard]] std::uint64_t no_route() const { return no_route_; }
  [[nodiscard]] std::uint64_t reroutes() const { return reroutes_; }
  [[nodiscard]] std::uint64_t epochs() const { return epoch_; }

  // ---- per-flow inspection ---------------------------------------------

  [[nodiscard]] Flow flow(std::uint64_t i) const {
    return {HostId{src_[i]}, HostId{dst_[i]}};
  }
  /// The flow's private ECMP seed (derive_stream_seed, kStreamFlowEcmp+i).
  [[nodiscard]] std::uint64_t flow_seed(std::uint64_t i) const;
  [[nodiscard]] FlowFate fate(std::uint64_t i) const {
    return static_cast<FlowFate>(fate_[i]);
  }
  /// FNV-1a over the node sequence of the flow's last attempt (exactly the
  /// node path walk_packet would record), 0 before any attempt.
  [[nodiscard]] std::uint64_t path_hash(std::uint64_t i) const {
    return path_hash_[i];
  }
  [[nodiscard]] std::uint32_t attempts(std::uint64_t i) const {
    return attempts_[i];
  }
  [[nodiscard]] std::uint16_t hops(std::uint64_t i) const { return hops_[i]; }

  /// Order-aware fold over every flow's (fate, path hash, hop count,
  /// attempts) — the byte-identity witness the determinism tests and
  /// bench_flow_plane compare across thread counts.
  [[nodiscard]] std::uint64_t fate_fingerprint() const;

  // ---- single-flow oracle hook -----------------------------------------

  /// Outcome of one walk attempt.  `outcome` is never kInflight.
  struct Attempt {
    FlowFate outcome = FlowFate::kBlackholed;
    std::uint64_t path_hash = 0;
    std::uint16_t hops = 0;
  };

  /// Serially re-walks flow `i` against `view`/`actual` with the same
  /// decisions step() makes, optionally materializing the node path into
  /// `path_out` (cleared first).  The differential test compares this —
  /// and therefore step() — node-for-node against walk_packet.
  [[nodiscard]] Attempt walk_one(std::uint64_t i,
                                 const ecmp::EcmpReadView& view,
                                 const LinkStateOverlay& actual,
                                 double at_time_ms,
                                 std::vector<NodeId>* path_out = nullptr) const;

 private:
  const Topology* topo_;
  FlowPlaneOptions options_;
  Rng admit_rng_;  ///< kStreamFlowAdmit stream for admit_uniform

  // Per-flow state, struct-of-arrays, indexed by admission order.
  std::vector<std::uint32_t> src_;
  std::vector<std::uint32_t> dst_;
  std::vector<std::uint8_t> fate_;        ///< FlowFate
  std::vector<std::uint8_t> fails_;       ///< consecutive failed epochs
  std::vector<std::uint32_t> attempts_;   ///< walks taken
  std::vector<std::uint64_t> path_hash_;  ///< last attempt's path hash
  std::vector<std::uint16_t> hops_;       ///< last attempt's hop count

  /// Per-node physical degree (switch adjacency size; 1 for hosts) for the
  /// kWeighted policy, precomputed once.
  std::vector<std::uint32_t> node_weight_;

  std::vector<std::uint32_t> active_;  ///< inflight flow indices, ordered

  // Scratch reused across step() calls (sized to the active set).
  std::vector<Attempt> attempt_scratch_;

  std::uint64_t delivered_ = 0;
  std::uint64_t blackholed_ = 0;
  std::uint64_t looped_ = 0;
  std::uint64_t no_route_ = 0;
  std::uint64_t reroutes_ = 0;
  std::uint64_t epoch_ = 0;
};

// ---- chaos-campaign traffic runs ---------------------------------------

struct FlowChaosOptions {
  /// The fault/heal schedule (seed, event count, probabilities).
  ChaosOptions chaos;
  FlowPlaneOptions plane;
  /// Flows admitted over the campaign, spread evenly across the schedule
  /// (one batch before each fault-plane action, remainder up front).
  std::uint64_t total_flows = 1 << 17;
  /// Epochs run after the final unwind so healed tables can deliver the
  /// backlog; flows still inflight after these count as `inflight`.
  int drain_epochs = 8;
};

/// End-of-campaign traffic verdict.  The identity
/// admitted == delivered + lost + inflight holds exactly.
struct FlowChaosReport {
  std::uint64_t admitted = 0;
  std::uint64_t delivered = 0;
  std::uint64_t lost = 0;
  std::uint64_t inflight = 0;
  std::uint64_t blackholed = 0;
  std::uint64_t looped = 0;
  std::uint64_t no_route = 0;
  std::uint64_t reroutes = 0;
  std::uint64_t epochs = 0;
  std::uint64_t fate_fingerprint = 0;
  /// The underlying fault schedule's own accounting.
  ChaosOutcome chaos;

  /// Fraction of admitted traffic lost during convergence — the paper's
  /// headline claim measured as flows, not analytics.
  [[nodiscard]] double lost_rate() const {
    return admitted == 0
               ? 0.0
               : static_cast<double>(lost) / static_cast<double>(admitted);
  }
};

/// Drives one ChaosCampaign action-by-action (the PR-8 advance() API),
/// interleaving flow admission and a FlowPlane epoch against the
/// protocol's live tables after every action, then unwinds and drains.
/// Same (seed, schedule) against kAnp vs kLsp isolates the protocols'
/// traffic-lost difference.
[[nodiscard]] FlowChaosReport run_flow_chaos(ProtocolKind kind,
                                             const Topology& topo,
                                             const FlowChaosOptions& options);

}  // namespace aspen
