#include "src/traffic/flow_plane.h"

#include <algorithm>

#include "src/fault/seed.h"
#include "src/obs/obs.h"
#include "src/util/contracts.h"
#include "src/util/parallel.h"
#include "src/util/status.h"

namespace aspen {

namespace {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ull;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

// FNV-1a over a node sequence; the hash of walk_packet's WalkResult::path.
std::uint64_t fold_node(std::uint64_t h, NodeId node) {
  h ^= node.value();
  h *= kFnvPrime;
  return h;
}

struct WalkScratch {
  std::uint64_t path_hash = kFnvOffset;
  std::uint16_t hops = 0;
  std::vector<NodeId>* path_out = nullptr;

  void visit(NodeId node) {
    path_hash = fold_node(path_hash, node);
    if (path_out != nullptr) path_out->push_back(node);
  }
};

}  // namespace

const char* to_cstring(NextHopPolicy policy) {
  switch (policy) {
    case NextHopPolicy::kSeededHash: return "hash";
    case NextHopPolicy::kLowest: return "lowest";
    case NextHopPolicy::kWeighted: return "weighted";
  }
  return "?";
}

bool parse_next_hop_policy(std::string_view text, NextHopPolicy& out) {
  if (text == "hash") {
    out = NextHopPolicy::kSeededHash;
  } else if (text == "lowest") {
    out = NextHopPolicy::kLowest;
  } else if (text == "weighted") {
    out = NextHopPolicy::kWeighted;
  } else {
    return false;
  }
  return true;
}

const char* to_cstring(FlowFate fate) {
  switch (fate) {
    case FlowFate::kInflight: return "inflight";
    case FlowFate::kDelivered: return "delivered";
    case FlowFate::kBlackholed: return "blackholed";
    case FlowFate::kLooped: return "looped";
    case FlowFate::kNoRoute: return "no_route";
  }
  return "?";
}

FlowPlane::FlowPlane(const Topology& topo, const FlowPlaneOptions& options)
    : topo_(&topo),
      options_(options),
      admit_rng_(fault::derive_stream_seed(options.base_seed,
                                           fault::kStreamFlowAdmit)) {
  ASPEN_REQUIRE(options_.ttl >= 2, "flow ttl must allow at least two links");
  ASPEN_REQUIRE(options_.patience >= 1 && options_.patience <= 255,
                "flow patience must be in [1, 255]");
  // Physical degree per node, for the weighted policy: a switch's CSR
  // adjacency size (up + down), 1 for hosts.
  node_weight_.assign(topo.num_nodes(), 1);
  const Topology::AdjacencyView adj = topo.adjacency_view();
  for (std::uint64_t s = 0; s < topo.num_switches(); ++s) {
    node_weight_[s] = adj.begin[s + 1] - adj.begin[s];
  }
}

std::uint64_t FlowPlane::flow_seed(std::uint64_t i) const {
  return fault::derive_stream_seed(options_.base_seed,
                                   fault::kStreamFlowEcmp + i);
}

std::uint64_t FlowPlane::admit(std::span<const Flow> flows) {
  src_.reserve(src_.size() + flows.size());
  dst_.reserve(dst_.size() + flows.size());
  for (const Flow& f : flows) {
    const auto index = static_cast<std::uint32_t>(src_.size());
    src_.push_back(f.src.value());
    dst_.push_back(f.dst.value());
    fate_.push_back(static_cast<std::uint8_t>(FlowFate::kInflight));
    fails_.push_back(0);
    attempts_.push_back(0);
    path_hash_.push_back(0);
    hops_.push_back(0);
    active_.push_back(index);
  }
  obs::count("flow.admitted", flows.size());
  obs::trace_event(static_cast<double>(epoch_), obs::TraceKind::kFlowAdmit,
                   static_cast<std::uint32_t>(epoch_), 0, flows.size(),
                   "admit");
  return flows.size();
}

std::uint64_t FlowPlane::admit_uniform(std::uint64_t count) {
  const std::uint64_t hosts = topo_->num_hosts();
  ASPEN_REQUIRE(hosts >= 2, "uniform admission needs at least two hosts");
  std::vector<Flow> flows;
  flows.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    const auto src = static_cast<std::uint32_t>(admit_rng_.index(hosts));
    auto dst = static_cast<std::uint32_t>(admit_rng_.index(hosts - 1));
    if (dst >= src) ++dst;
    flows.push_back(Flow{HostId{src}, HostId{dst}});
  }
  return admit(flows);
}

FlowPlane::Attempt FlowPlane::walk_one(std::uint64_t i,
                                       const ecmp::EcmpReadView& view,
                                       const LinkStateOverlay& actual,
                                       double at_time_ms,
                                       std::vector<NodeId>* path_out) const {
  const Topology& topo = *topo_;
  const HostId src{src_[i]};
  const HostId dst{dst_[i]};
  const std::uint64_t seed = flow_seed(i);
  const bool health = options_.apply_health;
  const std::uint64_t health_seed = options_.health_seed;

  if (path_out != nullptr) path_out->clear();
  WalkScratch walk;
  walk.path_out = path_out;
  walk.visit(topo.node_of(src));

  Attempt attempt;
  const auto fail = [&](FlowFate outcome) {
    attempt.outcome = outcome;
    attempt.path_hash = walk.path_hash;
    attempt.hops = walk.hops;
    return attempt;
  };

  const SwitchId dest_edge = topo.edge_switch_of(dst);
  const std::uint64_t dest_index = view.dest_index(dst);

  // First hop: host to its edge switch (same fate order as walk_packet:
  // liveness, then the gray verdict).
  const Topology::Neighbor ingress = topo.host_uplink(src);
  if (!ecmp::link_live(actual, ingress.link, health, at_time_ms)) {
    return fail(FlowFate::kBlackholed);
  }
  if (ecmp::gray_drops(actual, ingress.link, src, dst, health, health_seed)) {
    return fail(FlowFate::kBlackholed);
  }
  SwitchId at = topo.switch_of(ingress.node);
  walk.visit(ingress.node);
  walk.hops = 1;

  while (walk.hops < options_.ttl) {
    if (at == dest_edge) {
      // Final hop: edge switch to host.
      const Topology::Neighbor downlink = topo.host_uplink(dst);
      if (!ecmp::link_live(actual, downlink.link, health, at_time_ms) ||
          ecmp::gray_drops(actual, downlink.link, src, dst, health,
                           health_seed)) {
        return fail(FlowFate::kBlackholed);
      }
      walk.visit(topo.node_of(dst));
      ++walk.hops;
      return fail(FlowFate::kDelivered);
    }

    const std::span<const Topology::Neighbor> row = view.row(at, dest_index);
    if (row.empty()) return fail(FlowFate::kNoRoute);

    const Topology::Neighbor* chosen = nullptr;
    switch (options_.policy) {
      case NextHopPolicy::kSeededHash: {
        // The packet walker's exact pick: hash over the full offered row,
        // then rotate to the first live hop (a switch sees its own dead
        // ports; gray links look live here — their loss is silent).
        const std::uint64_t key = ecmp::flow_key(seed, src, dst, at);
        const std::size_t first_choice = key % row.size();
        for (std::size_t off = 0; off < row.size(); ++off) {
          const Topology::Neighbor& cand =
              row[(first_choice + off) % row.size()];
          if (ecmp::link_live(actual, cand.link, health, at_time_ms)) {
            chosen = &cand;
            break;
          }
        }
        break;
      }
      case NextHopPolicy::kLowest: {
        // Lowest live link id: no hash involved, so the pick is the same
        // under every seed.
        for (const Topology::Neighbor& cand : row) {
          if (!ecmp::link_live(actual, cand.link, health, at_time_ms)) {
            continue;
          }
          if (chosen == nullptr ||
              cand.link.value() < chosen->link.value()) {
            chosen = &cand;
          }
        }
        break;
      }
      case NextHopPolicy::kWeighted: {
        // Hash-weighted over live hops only; weight = candidate's physical
        // degree, so fatter subtrees attract proportionally more flows.
        std::uint64_t total_weight = 0;
        for (const Topology::Neighbor& cand : row) {
          if (ecmp::link_live(actual, cand.link, health, at_time_ms)) {
            total_weight += node_weight_[cand.node.value()];
          }
        }
        if (total_weight > 0) {
          const std::uint64_t key = ecmp::flow_key(seed, src, dst, at);
          std::uint64_t r = key % total_weight;
          for (const Topology::Neighbor& cand : row) {
            if (!ecmp::link_live(actual, cand.link, health, at_time_ms)) {
              continue;
            }
            const std::uint64_t w = node_weight_[cand.node.value()];
            if (r < w) {
              chosen = &cand;
              break;
            }
            r -= w;
          }
        }
        break;
      }
    }
    if (chosen == nullptr) return fail(FlowFate::kBlackholed);
    if (ecmp::gray_drops(actual, chosen->link, src, dst, health,
                         health_seed)) {
      return fail(FlowFate::kBlackholed);
    }

    walk.visit(chosen->node);
    ++walk.hops;
    if (!topo.is_switch_node(chosen->node)) {
      // Host-granularity tables can hand us the host link directly.
      ASPEN_CHECK(chosen->node == topo.node_of(dst),
                  "flow plane forwarded into a host that is not the "
                  "destination");
      return fail(FlowFate::kDelivered);
    }
    at = topo.switch_of(chosen->node);
  }

  return fail(FlowFate::kLooped);
}

FlowStepStats FlowPlane::step(const RoutingState& knowledge,
                              const LinkStateOverlay& actual,
                              double at_time_ms) {
  FlowStepStats stats;
  stats.epoch = epoch_;
  stats.attempted = active_.size();

  const ecmp::EcmpReadView view(knowledge);
  attempt_scratch_.resize(active_.size());

  // Fan out: every write is addressed by the active-list position, so the
  // partition (and thread count) never shows in the output.  No obs
  // emission inside the workers — counters aggregate after the join.
  parallel::parallel_for_blocks(
      active_.size(), options_.threads,
      [&](std::uint64_t begin, std::uint64_t end, int /*worker*/) {
        for (std::uint64_t pos = begin; pos < end; ++pos) {
          attempt_scratch_[pos] =
              walk_one(active_[pos], view, actual, at_time_ms, nullptr);
        }
      });

  // Serial fold, in admission order: update fates, detect reroutes,
  // compact the active list in place.
  std::uint64_t kept = 0;
  for (std::uint64_t pos = 0; pos < active_.size(); ++pos) {
    const std::uint32_t f = active_[pos];
    const Attempt& attempt = attempt_scratch_[pos];
    ++attempts_[f];
    if (path_hash_[f] != 0 && attempt.path_hash != path_hash_[f]) {
      ++stats.reroutes;
    }
    path_hash_[f] = attempt.path_hash;
    hops_[f] = attempt.hops;
    if (attempt.outcome == FlowFate::kDelivered) {
      fate_[f] = static_cast<std::uint8_t>(FlowFate::kDelivered);
      ++stats.delivered;
      continue;
    }
    if (++fails_[f] >= options_.patience) {
      fate_[f] = static_cast<std::uint8_t>(attempt.outcome);
      switch (attempt.outcome) {
        case FlowFate::kBlackholed: ++stats.blackholed; break;
        case FlowFate::kLooped: ++stats.looped; break;
        case FlowFate::kNoRoute: ++stats.no_route; break;
        default:
          ASPEN_UNREACHABLE("walk_one returned a non-terminal outcome");
      }
      continue;
    }
    active_[kept++] = f;
  }
  active_.resize(kept);

  delivered_ += stats.delivered;
  blackholed_ += stats.blackholed;
  looped_ += stats.looped;
  no_route_ += stats.no_route;
  reroutes_ += stats.reroutes;

  obs::count("flow.attempted", stats.attempted);
  obs::count("flow.delivered", stats.delivered);
  obs::count("flow.lost", stats.lost());
  obs::count("flow.rerouted", stats.reroutes);
  obs::trace_event(static_cast<double>(epoch_), obs::TraceKind::kFlowStep,
                   static_cast<std::uint32_t>(epoch_),
                   static_cast<std::uint32_t>(stats.attempted),
                   stats.delivered, "step");
  if (stats.blackholed > 0) {
    obs::trace_event(static_cast<double>(epoch_), obs::TraceKind::kFlowDrop,
                     static_cast<std::uint32_t>(epoch_), 0, stats.blackholed,
                     "blackhole");
  }
  if (stats.looped > 0) {
    obs::trace_event(static_cast<double>(epoch_), obs::TraceKind::kFlowDrop,
                     static_cast<std::uint32_t>(epoch_), 0, stats.looped,
                     "loop");
  }
  if (stats.no_route > 0) {
    obs::trace_event(static_cast<double>(epoch_), obs::TraceKind::kFlowDrop,
                     static_cast<std::uint32_t>(epoch_), 0, stats.no_route,
                     "no_route");
  }
  ++epoch_;

  // The loss-accounting identity is structural; paranoid audits recount it
  // from the per-flow fates to catch any future drift.
  if (contracts::effective_audit_level(contracts::AuditLevel::kOff) >=
      contracts::AuditLevel::kParanoid) {
    std::uint64_t by_fate[5] = {0, 0, 0, 0, 0};
    for (const std::uint8_t f : fate_) ++by_fate[f];
    ASPEN_CHECK(by_fate[static_cast<int>(FlowFate::kInflight)] == inflight() &&
                    by_fate[static_cast<int>(FlowFate::kDelivered)] ==
                        delivered_ &&
                    by_fate[static_cast<int>(FlowFate::kBlackholed)] ==
                        blackholed_ &&
                    by_fate[static_cast<int>(FlowFate::kLooped)] == looped_ &&
                    by_fate[static_cast<int>(FlowFate::kNoRoute)] == no_route_,
                "flow fate counters disagree with per-flow fates");
  }
  ASPEN_ASSERT(admitted() == delivered() + lost() + inflight(),
               "flow accounting identity violated: ", admitted(), " != ",
               delivered(), " + ", lost(), " + ", inflight());
  return stats;
}

std::uint64_t FlowPlane::fate_fingerprint() const {
  std::uint64_t h = kFnvOffset;
  const auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= kFnvPrime;
    h ^= h >> 29;
  };
  mix(admitted());
  for (std::uint64_t i = 0; i < admitted(); ++i) {
    mix(fate_[i]);
    mix(path_hash_[i]);
    mix(hops_[i]);
    mix(attempts_[i]);
  }
  return h;
}

FlowChaosReport run_flow_chaos(ProtocolKind kind, const Topology& topo,
                               const FlowChaosOptions& options) {
  fault::ChaosCampaign campaign(kind, topo, options.chaos);
  FlowPlane plane(topo, options.plane);

  const auto events =
      static_cast<std::uint64_t>(std::max(options.chaos.num_events, 0));
  const std::uint64_t batches = events + 1;
  const std::uint64_t per_batch = options.total_flows / batches;

  const auto step_now = [&]() {
    plane.step(campaign.protocol().tables(), campaign.overlay(),
               static_cast<double>(plane.epochs()));
  };

  // Up-front batch (plus the division remainder), walked against the
  // freshly converged tables; then one batch + epoch per fault action.
  plane.admit_uniform(per_batch + options.total_flows % batches);
  step_now();
  while (campaign.advance()) {
    plane.admit_uniform(per_batch);
    step_now();
  }
  campaign.finish();
  // Healed fabric: drain the backlog for a bounded number of epochs.
  for (int i = 0; i < options.drain_epochs && plane.inflight() > 0; ++i) {
    step_now();
  }

  FlowChaosReport report;
  report.admitted = plane.admitted();
  report.delivered = plane.delivered();
  report.lost = plane.lost();
  report.inflight = plane.inflight();
  report.blackholed = plane.blackholed();
  report.looped = plane.looped();
  report.no_route = plane.no_route();
  report.reroutes = plane.reroutes();
  report.epochs = plane.epochs();
  report.fate_fingerprint = plane.fate_fingerprint();
  report.chaos = campaign.outcome();
  ASPEN_ASSERT(report.admitted ==
                   report.delivered + report.lost + report.inflight,
               "campaign flow accounting identity violated");
  return report;
}

}  // namespace aspen
