# Empty dependencies file for aspen_cli.
# This may be replaced when dependencies are built.
