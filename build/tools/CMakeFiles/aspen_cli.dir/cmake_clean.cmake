file(REMOVE_RECURSE
  "CMakeFiles/aspen_cli.dir/aspen_cli.cpp.o"
  "CMakeFiles/aspen_cli.dir/aspen_cli.cpp.o.d"
  "aspen"
  "aspen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aspen_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
