file(REMOVE_RECURSE
  "CMakeFiles/bench_compound_failures.dir/bench_compound_failures.cpp.o"
  "CMakeFiles/bench_compound_failures.dir/bench_compound_failures.cpp.o.d"
  "bench_compound_failures"
  "bench_compound_failures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_compound_failures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
