# Empty dependencies file for bench_compound_failures.
# This may be replaced when dependencies are built.
