file(REMOVE_RECURSE
  "CMakeFiles/bench_flapping.dir/bench_flapping.cpp.o"
  "CMakeFiles/bench_flapping.dir/bench_flapping.cpp.o.d"
  "bench_flapping"
  "bench_flapping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_flapping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
