# Empty dependencies file for bench_flapping.
# This may be replaced when dependencies are built.
