file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_simulation.dir/bench_fig10_simulation.cpp.o"
  "CMakeFiles/bench_fig10_simulation.dir/bench_fig10_simulation.cpp.o.d"
  "bench_fig10_simulation"
  "bench_fig10_simulation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_simulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
