file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_table.dir/bench_fig3_table.cpp.o"
  "CMakeFiles/bench_fig3_table.dir/bench_fig3_table.cpp.o.d"
  "bench_fig3_table"
  "bench_fig3_table.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
