# Empty dependencies file for bench_fig3_table.
# This may be replaced when dependencies are built.
