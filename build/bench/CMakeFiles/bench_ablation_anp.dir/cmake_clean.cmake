file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_anp.dir/bench_ablation_anp.cpp.o"
  "CMakeFiles/bench_ablation_anp.dir/bench_ablation_anp.cpp.o.d"
  "bench_ablation_anp"
  "bench_ablation_anp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_anp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
