# Empty dependencies file for bench_ablation_anp.
# This may be replaced when dependencies are built.
