# Empty dependencies file for bench_practical_tree.
# This may be replaced when dependencies are built.
