file(REMOVE_RECURSE
  "CMakeFiles/bench_practical_tree.dir/bench_practical_tree.cpp.o"
  "CMakeFiles/bench_practical_tree.dir/bench_practical_tree.cpp.o.d"
  "bench_practical_tree"
  "bench_practical_tree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_practical_tree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
