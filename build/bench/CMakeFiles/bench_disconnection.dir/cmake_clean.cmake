file(REMOVE_RECURSE
  "CMakeFiles/bench_disconnection.dir/bench_disconnection.cpp.o"
  "CMakeFiles/bench_disconnection.dir/bench_disconnection.cpp.o.d"
  "bench_disconnection"
  "bench_disconnection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_disconnection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
