# Empty compiler generated dependencies file for bench_timers.
# This may be replaced when dependencies are built.
