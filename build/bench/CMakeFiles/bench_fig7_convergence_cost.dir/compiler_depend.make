# Empty compiler generated dependencies file for bench_fig7_convergence_cost.
# This may be replaced when dependencies are built.
