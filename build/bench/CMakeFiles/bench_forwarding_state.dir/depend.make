# Empty dependencies file for bench_forwarding_state.
# This may be replaced when dependencies are built.
