file(REMOVE_RECURSE
  "CMakeFiles/bench_forwarding_state.dir/bench_forwarding_state.cpp.o"
  "CMakeFiles/bench_forwarding_state.dir/bench_forwarding_state.cpp.o.d"
  "bench_forwarding_state"
  "bench_forwarding_state.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_forwarding_state.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
