file(REMOVE_RECURSE
  "CMakeFiles/test_inflight.dir/test_inflight.cpp.o"
  "CMakeFiles/test_inflight.dir/test_inflight.cpp.o.d"
  "test_inflight"
  "test_inflight.pdb"
  "test_inflight[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_inflight.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
