# Empty dependencies file for test_inflight.
# This may be replaced when dependencies are built.
