file(REMOVE_RECURSE
  "CMakeFiles/test_packet_walk.dir/test_packet_walk.cpp.o"
  "CMakeFiles/test_packet_walk.dir/test_packet_walk.cpp.o.d"
  "test_packet_walk"
  "test_packet_walk.pdb"
  "test_packet_walk[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_packet_walk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
