# Empty dependencies file for test_packet_walk.
# This may be replaced when dependencies are built.
