# Empty compiler generated dependencies file for test_react_model.
# This may be replaced when dependencies are built.
