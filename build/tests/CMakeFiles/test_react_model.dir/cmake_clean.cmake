file(REMOVE_RECURSE
  "CMakeFiles/test_react_model.dir/test_react_model.cpp.o"
  "CMakeFiles/test_react_model.dir/test_react_model.cpp.o.d"
  "test_react_model"
  "test_react_model.pdb"
  "test_react_model[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_react_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
