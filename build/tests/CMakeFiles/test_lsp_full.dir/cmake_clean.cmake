file(REMOVE_RECURSE
  "CMakeFiles/test_lsp_full.dir/test_lsp_full.cpp.o"
  "CMakeFiles/test_lsp_full.dir/test_lsp_full.cpp.o.d"
  "test_lsp_full"
  "test_lsp_full.pdb"
  "test_lsp_full[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lsp_full.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
