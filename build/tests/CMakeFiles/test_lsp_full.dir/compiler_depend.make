# Empty compiler generated dependencies file for test_lsp_full.
# This may be replaced when dependencies are built.
