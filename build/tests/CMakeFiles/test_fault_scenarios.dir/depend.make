# Empty dependencies file for test_fault_scenarios.
# This may be replaced when dependencies are built.
