file(REMOVE_RECURSE
  "CMakeFiles/test_fault_scenarios.dir/test_fault_scenarios.cpp.o"
  "CMakeFiles/test_fault_scenarios.dir/test_fault_scenarios.cpp.o.d"
  "test_fault_scenarios"
  "test_fault_scenarios.pdb"
  "test_fault_scenarios[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fault_scenarios.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
