# Empty compiler generated dependencies file for test_ftv.
# This may be replaced when dependencies are built.
