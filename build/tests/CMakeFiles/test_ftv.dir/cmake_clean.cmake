file(REMOVE_RECURSE
  "CMakeFiles/test_ftv.dir/test_ftv.cpp.o"
  "CMakeFiles/test_ftv.dir/test_ftv.cpp.o.d"
  "test_ftv"
  "test_ftv.pdb"
  "test_ftv[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ftv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
