# Empty dependencies file for test_import.
# This may be replaced when dependencies are built.
