# Empty dependencies file for test_fixed_hosts.
# This may be replaced when dependencies are built.
