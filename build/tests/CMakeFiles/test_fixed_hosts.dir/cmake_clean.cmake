file(REMOVE_RECURSE
  "CMakeFiles/test_fixed_hosts.dir/test_fixed_hosts.cpp.o"
  "CMakeFiles/test_fixed_hosts.dir/test_fixed_hosts.cpp.o.d"
  "test_fixed_hosts"
  "test_fixed_hosts.pdb"
  "test_fixed_hosts[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fixed_hosts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
