# Empty compiler generated dependencies file for test_lsp.
# This may be replaced when dependencies are built.
