file(REMOVE_RECURSE
  "CMakeFiles/test_lsp.dir/test_lsp.cpp.o"
  "CMakeFiles/test_lsp.dir/test_lsp.cpp.o.d"
  "test_lsp"
  "test_lsp.pdb"
  "test_lsp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lsp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
