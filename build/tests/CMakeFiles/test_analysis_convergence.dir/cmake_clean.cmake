file(REMOVE_RECURSE
  "CMakeFiles/test_analysis_convergence.dir/test_analysis_convergence.cpp.o"
  "CMakeFiles/test_analysis_convergence.dir/test_analysis_convergence.cpp.o.d"
  "test_analysis_convergence"
  "test_analysis_convergence.pdb"
  "test_analysis_convergence[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_analysis_convergence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
