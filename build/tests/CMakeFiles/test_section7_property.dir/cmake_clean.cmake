file(REMOVE_RECURSE
  "CMakeFiles/test_section7_property.dir/test_section7_property.cpp.o"
  "CMakeFiles/test_section7_property.dir/test_section7_property.cpp.o.d"
  "test_section7_property"
  "test_section7_property.pdb"
  "test_section7_property[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_section7_property.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
