# Empty compiler generated dependencies file for test_section7_property.
# This may be replaced when dependencies are built.
