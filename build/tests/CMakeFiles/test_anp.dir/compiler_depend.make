# Empty compiler generated dependencies file for test_anp.
# This may be replaced when dependencies are built.
