file(REMOVE_RECURSE
  "CMakeFiles/test_anp.dir/test_anp.cpp.o"
  "CMakeFiles/test_anp.dir/test_anp.cpp.o.d"
  "test_anp"
  "test_anp.pdb"
  "test_anp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_anp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
