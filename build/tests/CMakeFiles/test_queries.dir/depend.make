# Empty dependencies file for test_queries.
# This may be replaced when dependencies are built.
