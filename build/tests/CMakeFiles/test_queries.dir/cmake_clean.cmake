file(REMOVE_RECURSE
  "CMakeFiles/test_queries.dir/test_queries.cpp.o"
  "CMakeFiles/test_queries.dir/test_queries.cpp.o.d"
  "test_queries"
  "test_queries.pdb"
  "test_queries[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_queries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
