file(REMOVE_RECURSE
  "CMakeFiles/test_host_granularity.dir/test_host_granularity.cpp.o"
  "CMakeFiles/test_host_granularity.dir/test_host_granularity.cpp.o.d"
  "test_host_granularity"
  "test_host_granularity.pdb"
  "test_host_granularity[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_host_granularity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
