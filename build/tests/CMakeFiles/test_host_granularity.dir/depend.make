# Empty dependencies file for test_host_granularity.
# This may be replaced when dependencies are built.
