# Empty dependencies file for aspen_proto.
# This may be replaced when dependencies are built.
