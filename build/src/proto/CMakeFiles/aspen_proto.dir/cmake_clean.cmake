file(REMOVE_RECURSE
  "CMakeFiles/aspen_proto.dir/anp.cpp.o"
  "CMakeFiles/aspen_proto.dir/anp.cpp.o.d"
  "CMakeFiles/aspen_proto.dir/experiment.cpp.o"
  "CMakeFiles/aspen_proto.dir/experiment.cpp.o.d"
  "CMakeFiles/aspen_proto.dir/inflight.cpp.o"
  "CMakeFiles/aspen_proto.dir/inflight.cpp.o.d"
  "CMakeFiles/aspen_proto.dir/lsp.cpp.o"
  "CMakeFiles/aspen_proto.dir/lsp.cpp.o.d"
  "CMakeFiles/aspen_proto.dir/lsp_full.cpp.o"
  "CMakeFiles/aspen_proto.dir/lsp_full.cpp.o.d"
  "libaspen_proto.a"
  "libaspen_proto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aspen_proto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
