file(REMOVE_RECURSE
  "libaspen_proto.a"
)
