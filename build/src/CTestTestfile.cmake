# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("aspen")
subdirs("topo")
subdirs("routing")
subdirs("traffic")
subdirs("labels")
subdirs("sim")
subdirs("proto")
subdirs("fault")
subdirs("analysis")
