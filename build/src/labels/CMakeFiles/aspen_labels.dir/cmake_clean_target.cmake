file(REMOVE_RECURSE
  "libaspen_labels.a"
)
