
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/labels/labels.cpp" "src/labels/CMakeFiles/aspen_labels.dir/labels.cpp.o" "gcc" "src/labels/CMakeFiles/aspen_labels.dir/labels.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/routing/CMakeFiles/aspen_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/topo/CMakeFiles/aspen_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/aspen/CMakeFiles/aspen_core.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/aspen_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
