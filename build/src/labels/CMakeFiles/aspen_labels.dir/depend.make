# Empty dependencies file for aspen_labels.
# This may be replaced when dependencies are built.
