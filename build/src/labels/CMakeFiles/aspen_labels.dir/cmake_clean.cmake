file(REMOVE_RECURSE
  "CMakeFiles/aspen_labels.dir/labels.cpp.o"
  "CMakeFiles/aspen_labels.dir/labels.cpp.o.d"
  "libaspen_labels.a"
  "libaspen_labels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aspen_labels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
