file(REMOVE_RECURSE
  "CMakeFiles/aspen_sim.dir/simulator.cpp.o"
  "CMakeFiles/aspen_sim.dir/simulator.cpp.o.d"
  "libaspen_sim.a"
  "libaspen_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aspen_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
