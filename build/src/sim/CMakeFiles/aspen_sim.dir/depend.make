# Empty dependencies file for aspen_sim.
# This may be replaced when dependencies are built.
