file(REMOVE_RECURSE
  "libaspen_sim.a"
)
