file(REMOVE_RECURSE
  "CMakeFiles/aspen_analysis.dir/availability.cpp.o"
  "CMakeFiles/aspen_analysis.dir/availability.cpp.o.d"
  "CMakeFiles/aspen_analysis.dir/convergence.cpp.o"
  "CMakeFiles/aspen_analysis.dir/convergence.cpp.o.d"
  "CMakeFiles/aspen_analysis.dir/cost.cpp.o"
  "CMakeFiles/aspen_analysis.dir/cost.cpp.o.d"
  "CMakeFiles/aspen_analysis.dir/react.cpp.o"
  "CMakeFiles/aspen_analysis.dir/react.cpp.o.d"
  "CMakeFiles/aspen_analysis.dir/scalability.cpp.o"
  "CMakeFiles/aspen_analysis.dir/scalability.cpp.o.d"
  "CMakeFiles/aspen_analysis.dir/series.cpp.o"
  "CMakeFiles/aspen_analysis.dir/series.cpp.o.d"
  "libaspen_analysis.a"
  "libaspen_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aspen_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
