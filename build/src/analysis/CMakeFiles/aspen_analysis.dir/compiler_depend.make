# Empty compiler generated dependencies file for aspen_analysis.
# This may be replaced when dependencies are built.
