
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/availability.cpp" "src/analysis/CMakeFiles/aspen_analysis.dir/availability.cpp.o" "gcc" "src/analysis/CMakeFiles/aspen_analysis.dir/availability.cpp.o.d"
  "/root/repo/src/analysis/convergence.cpp" "src/analysis/CMakeFiles/aspen_analysis.dir/convergence.cpp.o" "gcc" "src/analysis/CMakeFiles/aspen_analysis.dir/convergence.cpp.o.d"
  "/root/repo/src/analysis/cost.cpp" "src/analysis/CMakeFiles/aspen_analysis.dir/cost.cpp.o" "gcc" "src/analysis/CMakeFiles/aspen_analysis.dir/cost.cpp.o.d"
  "/root/repo/src/analysis/react.cpp" "src/analysis/CMakeFiles/aspen_analysis.dir/react.cpp.o" "gcc" "src/analysis/CMakeFiles/aspen_analysis.dir/react.cpp.o.d"
  "/root/repo/src/analysis/scalability.cpp" "src/analysis/CMakeFiles/aspen_analysis.dir/scalability.cpp.o" "gcc" "src/analysis/CMakeFiles/aspen_analysis.dir/scalability.cpp.o.d"
  "/root/repo/src/analysis/series.cpp" "src/analysis/CMakeFiles/aspen_analysis.dir/series.cpp.o" "gcc" "src/analysis/CMakeFiles/aspen_analysis.dir/series.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/aspen/CMakeFiles/aspen_core.dir/DependInfo.cmake"
  "/root/repo/build/src/proto/CMakeFiles/aspen_proto.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/aspen_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/traffic/CMakeFiles/aspen_traffic.dir/DependInfo.cmake"
  "/root/repo/build/src/routing/CMakeFiles/aspen_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/topo/CMakeFiles/aspen_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/aspen_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
