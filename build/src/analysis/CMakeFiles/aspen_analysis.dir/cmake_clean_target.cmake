file(REMOVE_RECURSE
  "libaspen_analysis.a"
)
