file(REMOVE_RECURSE
  "CMakeFiles/aspen_routing.dir/packet_walk.cpp.o"
  "CMakeFiles/aspen_routing.dir/packet_walk.cpp.o.d"
  "CMakeFiles/aspen_routing.dir/paths.cpp.o"
  "CMakeFiles/aspen_routing.dir/paths.cpp.o.d"
  "CMakeFiles/aspen_routing.dir/reachability.cpp.o"
  "CMakeFiles/aspen_routing.dir/reachability.cpp.o.d"
  "CMakeFiles/aspen_routing.dir/updown.cpp.o"
  "CMakeFiles/aspen_routing.dir/updown.cpp.o.d"
  "libaspen_routing.a"
  "libaspen_routing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aspen_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
