# Empty dependencies file for aspen_routing.
# This may be replaced when dependencies are built.
