file(REMOVE_RECURSE
  "libaspen_routing.a"
)
