file(REMOVE_RECURSE
  "libaspen_fault.a"
)
