# Empty compiler generated dependencies file for aspen_fault.
# This may be replaced when dependencies are built.
