file(REMOVE_RECURSE
  "CMakeFiles/aspen_fault.dir/scenarios.cpp.o"
  "CMakeFiles/aspen_fault.dir/scenarios.cpp.o.d"
  "libaspen_fault.a"
  "libaspen_fault.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aspen_fault.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
