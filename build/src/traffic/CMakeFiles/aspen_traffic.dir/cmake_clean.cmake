file(REMOVE_RECURSE
  "CMakeFiles/aspen_traffic.dir/load.cpp.o"
  "CMakeFiles/aspen_traffic.dir/load.cpp.o.d"
  "CMakeFiles/aspen_traffic.dir/patterns.cpp.o"
  "CMakeFiles/aspen_traffic.dir/patterns.cpp.o.d"
  "libaspen_traffic.a"
  "libaspen_traffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aspen_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
