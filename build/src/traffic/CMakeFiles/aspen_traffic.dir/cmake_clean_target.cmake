file(REMOVE_RECURSE
  "libaspen_traffic.a"
)
