# Empty compiler generated dependencies file for aspen_traffic.
# This may be replaced when dependencies are built.
