file(REMOVE_RECURSE
  "CMakeFiles/aspen_core.dir/enumerate.cpp.o"
  "CMakeFiles/aspen_core.dir/enumerate.cpp.o.d"
  "CMakeFiles/aspen_core.dir/fixed_hosts.cpp.o"
  "CMakeFiles/aspen_core.dir/fixed_hosts.cpp.o.d"
  "CMakeFiles/aspen_core.dir/ftv.cpp.o"
  "CMakeFiles/aspen_core.dir/ftv.cpp.o.d"
  "CMakeFiles/aspen_core.dir/generator.cpp.o"
  "CMakeFiles/aspen_core.dir/generator.cpp.o.d"
  "CMakeFiles/aspen_core.dir/recommend.cpp.o"
  "CMakeFiles/aspen_core.dir/recommend.cpp.o.d"
  "CMakeFiles/aspen_core.dir/tree_params.cpp.o"
  "CMakeFiles/aspen_core.dir/tree_params.cpp.o.d"
  "libaspen_core.a"
  "libaspen_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aspen_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
