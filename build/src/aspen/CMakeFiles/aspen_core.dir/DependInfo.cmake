
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/aspen/enumerate.cpp" "src/aspen/CMakeFiles/aspen_core.dir/enumerate.cpp.o" "gcc" "src/aspen/CMakeFiles/aspen_core.dir/enumerate.cpp.o.d"
  "/root/repo/src/aspen/fixed_hosts.cpp" "src/aspen/CMakeFiles/aspen_core.dir/fixed_hosts.cpp.o" "gcc" "src/aspen/CMakeFiles/aspen_core.dir/fixed_hosts.cpp.o.d"
  "/root/repo/src/aspen/ftv.cpp" "src/aspen/CMakeFiles/aspen_core.dir/ftv.cpp.o" "gcc" "src/aspen/CMakeFiles/aspen_core.dir/ftv.cpp.o.d"
  "/root/repo/src/aspen/generator.cpp" "src/aspen/CMakeFiles/aspen_core.dir/generator.cpp.o" "gcc" "src/aspen/CMakeFiles/aspen_core.dir/generator.cpp.o.d"
  "/root/repo/src/aspen/recommend.cpp" "src/aspen/CMakeFiles/aspen_core.dir/recommend.cpp.o" "gcc" "src/aspen/CMakeFiles/aspen_core.dir/recommend.cpp.o.d"
  "/root/repo/src/aspen/tree_params.cpp" "src/aspen/CMakeFiles/aspen_core.dir/tree_params.cpp.o" "gcc" "src/aspen/CMakeFiles/aspen_core.dir/tree_params.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/aspen_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
