# Empty compiler generated dependencies file for aspen_core.
# This may be replaced when dependencies are built.
