file(REMOVE_RECURSE
  "libaspen_util.a"
)
