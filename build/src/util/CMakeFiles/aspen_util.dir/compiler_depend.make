# Empty compiler generated dependencies file for aspen_util.
# This may be replaced when dependencies are built.
