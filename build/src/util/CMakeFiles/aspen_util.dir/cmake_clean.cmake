file(REMOVE_RECURSE
  "CMakeFiles/aspen_util.dir/log.cpp.o"
  "CMakeFiles/aspen_util.dir/log.cpp.o.d"
  "CMakeFiles/aspen_util.dir/table.cpp.o"
  "CMakeFiles/aspen_util.dir/table.cpp.o.d"
  "libaspen_util.a"
  "libaspen_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aspen_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
