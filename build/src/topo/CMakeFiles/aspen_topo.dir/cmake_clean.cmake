file(REMOVE_RECURSE
  "CMakeFiles/aspen_topo.dir/export.cpp.o"
  "CMakeFiles/aspen_topo.dir/export.cpp.o.d"
  "CMakeFiles/aspen_topo.dir/import.cpp.o"
  "CMakeFiles/aspen_topo.dir/import.cpp.o.d"
  "CMakeFiles/aspen_topo.dir/queries.cpp.o"
  "CMakeFiles/aspen_topo.dir/queries.cpp.o.d"
  "CMakeFiles/aspen_topo.dir/striping.cpp.o"
  "CMakeFiles/aspen_topo.dir/striping.cpp.o.d"
  "CMakeFiles/aspen_topo.dir/topology.cpp.o"
  "CMakeFiles/aspen_topo.dir/topology.cpp.o.d"
  "CMakeFiles/aspen_topo.dir/validate.cpp.o"
  "CMakeFiles/aspen_topo.dir/validate.cpp.o.d"
  "libaspen_topo.a"
  "libaspen_topo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aspen_topo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
