
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/topo/export.cpp" "src/topo/CMakeFiles/aspen_topo.dir/export.cpp.o" "gcc" "src/topo/CMakeFiles/aspen_topo.dir/export.cpp.o.d"
  "/root/repo/src/topo/import.cpp" "src/topo/CMakeFiles/aspen_topo.dir/import.cpp.o" "gcc" "src/topo/CMakeFiles/aspen_topo.dir/import.cpp.o.d"
  "/root/repo/src/topo/queries.cpp" "src/topo/CMakeFiles/aspen_topo.dir/queries.cpp.o" "gcc" "src/topo/CMakeFiles/aspen_topo.dir/queries.cpp.o.d"
  "/root/repo/src/topo/striping.cpp" "src/topo/CMakeFiles/aspen_topo.dir/striping.cpp.o" "gcc" "src/topo/CMakeFiles/aspen_topo.dir/striping.cpp.o.d"
  "/root/repo/src/topo/topology.cpp" "src/topo/CMakeFiles/aspen_topo.dir/topology.cpp.o" "gcc" "src/topo/CMakeFiles/aspen_topo.dir/topology.cpp.o.d"
  "/root/repo/src/topo/validate.cpp" "src/topo/CMakeFiles/aspen_topo.dir/validate.cpp.o" "gcc" "src/topo/CMakeFiles/aspen_topo.dir/validate.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/aspen/CMakeFiles/aspen_core.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/aspen_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
