# Empty dependencies file for aspen_topo.
# This may be replaced when dependencies are built.
