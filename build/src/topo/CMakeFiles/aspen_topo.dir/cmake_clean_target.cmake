file(REMOVE_RECURSE
  "libaspen_topo.a"
)
