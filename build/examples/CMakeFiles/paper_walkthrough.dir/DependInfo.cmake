
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/paper_walkthrough.cpp" "examples/CMakeFiles/paper_walkthrough.dir/paper_walkthrough.cpp.o" "gcc" "examples/CMakeFiles/paper_walkthrough.dir/paper_walkthrough.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/aspen_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/fault/CMakeFiles/aspen_fault.dir/DependInfo.cmake"
  "/root/repo/build/src/proto/CMakeFiles/aspen_proto.dir/DependInfo.cmake"
  "/root/repo/build/src/traffic/CMakeFiles/aspen_traffic.dir/DependInfo.cmake"
  "/root/repo/build/src/labels/CMakeFiles/aspen_labels.dir/DependInfo.cmake"
  "/root/repo/build/src/routing/CMakeFiles/aspen_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/aspen_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/topo/CMakeFiles/aspen_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/aspen/CMakeFiles/aspen_core.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/aspen_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
