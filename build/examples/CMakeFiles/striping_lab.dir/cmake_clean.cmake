file(REMOVE_RECURSE
  "CMakeFiles/striping_lab.dir/striping_lab.cpp.o"
  "CMakeFiles/striping_lab.dir/striping_lab.cpp.o.d"
  "striping_lab"
  "striping_lab.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/striping_lab.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
