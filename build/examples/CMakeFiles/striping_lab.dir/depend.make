# Empty dependencies file for striping_lab.
# This may be replaced when dependencies are built.
