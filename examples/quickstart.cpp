// Quickstart — the library in one file.
//
// Builds an Aspen tree from command-line parameters, prints its §5
// properties, constructs and validates the concrete topology, computes
// routes, and walks a packet.
//
//   ./quickstart [n] [k] [ftv]         e.g.  ./quickstart 4 6 "<0,2,0>"
//   ./quickstart --dot 3 4 "<1,0>"     emit Graphviz instead
#include <cstdio>
#include <cstring>
#include <string>

#include "src/analysis/convergence.h"
#include "src/aspen/generator.h"
#include "src/routing/packet_walk.h"
#include "src/routing/updown.h"
#include "src/topo/export.h"
#include "src/topo/topology.h"
#include "src/topo/validate.h"

int main(int argc, char** argv) {
  using namespace aspen;

  bool emit_dot = false;
  int arg = 1;
  if (arg < argc && std::strcmp(argv[arg], "--dot") == 0) {
    emit_dot = true;
    ++arg;
  }
  const int n = arg < argc ? std::stoi(argv[arg++]) : 4;
  const int k = arg < argc ? std::stoi(argv[arg++]) : 6;
  const FaultToleranceVector ftv =
      arg < argc ? FaultToleranceVector::parse(argv[arg++])
                 : FaultToleranceVector{0, 2, 0};

  // 1. Generate the tree definition (Listing 1 of the paper).
  const TreeParams tree = generate_tree(n, k, ftv);
  std::printf("%s\n", tree.to_string().c_str());
  std::printf("  switches per level (S) : %lu\n",
              static_cast<unsigned long>(tree.S));
  std::printf("  total switches         : %lu\n",
              static_cast<unsigned long>(tree.total_switches()));
  std::printf("  hosts supported        : %lu\n",
              static_cast<unsigned long>(tree.num_hosts()));
  std::printf("  total links            : %lu\n",
              static_cast<unsigned long>(tree.total_links()));
  std::printf("  duplicate conn. count  : %lu\n",
              static_cast<unsigned long>(tree.dcc()));
  std::printf("  overall aggregation    : %.0f\n", tree.overall_aggregation());
  std::printf("  avg convergence (hops) : %.2f  (fat tree of same size: %.2f)\n",
              average_update_propagation(ftv),
              average_update_propagation(FaultToleranceVector::fat_tree(n)));

  // 2. Build the physical topology and validate the wiring (§7).
  const Topology topo = Topology::build(tree);
  if (emit_dot) {
    std::printf("%s", to_dot(topo).c_str());
    return 0;
  }
  const ValidationReport report = validate_topology(topo);
  std::printf("  wiring valid           : %s\n",
              report.all_ok() ? "yes" : "NO");
  for (const std::string& problem : report.problems) {
    std::printf("    problem: %s\n", problem.c_str());
  }

  // 3. Compute up*/down* routes and walk a cross-fabric packet.
  const RoutingState routes = compute_updown_routes(topo);
  const TableRouter router(routes);
  const LinkStateOverlay intact(topo);
  const HostId src{0};
  const HostId dst{static_cast<std::uint32_t>(topo.num_hosts() - 1)};
  const WalkResult walk = walk_packet(topo, router, intact, src, dst);
  std::printf("  packet %s -> %s        : %s in %d hops, path:",
              to_string(src).c_str(), to_string(dst).c_str(),
              walk.delivered() ? "delivered" : "LOST", walk.hops);
  for (const NodeId node : walk.path) {
    std::printf(" %s", topo.is_switch_node(node)
                           ? to_string(topo.switch_of(node)).c_str()
                           : to_string(topo.host_of(node)).c_str());
  }
  std::printf("\n");
  return 0;
}
