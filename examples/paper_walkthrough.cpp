// Paper walkthrough — re-enacts the paper's narrative figures with the
// library's APIs:
//
//   Figure 1: a packet from x to y is doomed by the f−g failure the moment
//             switch a picks b.
//   Figure 2: turning a 3-level, 4-port fat tree into a 1-fault-tolerant
//             Aspen tree by freeing, repurposing and reconnecting links.
//   Figure 4: ANP cases 1 and 2 on the FTV <0,1,0> tree.
//   Figure 5: ANP case 3 on the FTV <1,0,0> tree.
#include <cstdio>
#include <vector>

#include "src/aspen/generator.h"
#include "src/proto/anp.h"
#include "src/routing/packet_walk.h"
#include "src/topo/import.h"
#include "src/topo/validate.h"

namespace {

using namespace aspen;

void print_walk(const Topology& topo, const WalkResult& walk) {
  std::printf("   ");
  for (const NodeId node : walk.path) {
    std::printf(" %s", topo.is_switch_node(node)
                           ? to_string(topo.switch_of(node)).c_str()
                           : to_string(topo.host_of(node)).c_str());
  }
  switch (walk.status) {
    case WalkStatus::kDelivered: std::printf("  [delivered]\n"); break;
    case WalkStatus::kDropped: std::printf("  [DROPPED]\n"); break;
    case WalkStatus::kNoRoute: std::printf("  [NO ROUTE]\n"); break;
    case WalkStatus::kTtlExceeded: std::printf("  [LOOP]\n"); break;
  }
}

void figure1() {
  std::printf(
      "== Figure 1: a doomed packet in the 4-level, 4-port fat tree ==\n");
  const Topology topo = Topology::build(fat_tree(4, 4));
  const StructuralRouter stale(topo);

  // Fail the single link from an L2 switch down to the destination edge —
  // the paper's f−g — after routing state was computed.
  const HostId x{0};
  const HostId y{static_cast<std::uint32_t>(topo.num_hosts() - 1)};
  const SwitchId g = topo.edge_switch_of(y);
  const SwitchId f = topo.switch_of(topo.up_neighbors(g)[0].node);
  LinkStateOverlay actual(topo);
  actual.fail(topo.find_link(f, g));
  std::printf(" failed %s-%s; every shortest path from x's second hop to y\n"
              " crosses it for half the ECMP choices:\n",
              to_string(f).c_str(), to_string(g).c_str());
  int shown = 0;
  for (std::uint64_t seed = 0; seed < 8 && shown < 3; ++seed) {
    WalkOptions options;
    options.flow_seed = seed;
    const WalkResult walk = walk_packet(topo, stale, actual, x, y, options);
    if (!walk.delivered()) {
      print_walk(topo, walk);
      ++shown;
    }
  }
  std::printf("\n");
}

void figure2() {
  std::printf(
      "== Figure 2: repurposing links to build 1-fault tolerance at L3 ==\n");
  const TreeParams fat = fat_tree(3, 4);
  const Topology fat_topo = Topology::build(fat);
  // Survivors: cores s,w (L3 idx 0,1), L2 pods q,r (idx 0,1 → switches
  // 8..11), their edges (0..3) and hosts (0..7).
  const TreeParams aspen = generate_tree(3, 4, FaultToleranceVector{1, 0});

  // Old→new switch renumbering: keep the left half of every level.
  const auto renumber = [&](SwitchId old) {
    const Level level = fat_topo.level_of(old);
    const std::uint64_t idx = fat_topo.index_in_level(old);
    std::uint64_t base = 0;
    for (Level i = 1; i < level; ++i) base += aspen.switches_at_level(i);
    return SwitchId{static_cast<std::uint32_t>(base + idx)};
  };
  const auto survives = [&](SwitchId old) {
    return fat_topo.index_in_level(old) <
           aspen.switches_at_level(fat_topo.level_of(old));
  };

  std::vector<LinkSpec> links;
  std::uint64_t freed = 0;
  std::uint64_t repurposed = 0;
  for (std::uint32_t id = 0; id < fat_topo.num_links(); ++id) {
    const Topology::LinkRec& rec = fat_topo.link(LinkId{id});
    const SwitchId upper = fat_topo.switch_of(rec.upper);
    if (!fat_topo.is_switch_node(rec.lower)) {
      // Host link: survives iff its edge survives.
      const HostId h = fat_topo.host_of(rec.lower);
      if (!survives(upper)) continue;
      links.push_back(LinkSpec{renumber(upper), h.value(), true});
      continue;
    }
    const SwitchId lower = fat_topo.switch_of(rec.lower);
    if (!survives(lower)) {
      // A downlink into the doomed right half: repurpose it if its upper
      // endpoint survives (the dotted links of Fig. 2(b)), else drop it.
      if (survives(upper)) ++repurposed;
      continue;
    }
    if (!survives(upper)) {
      // An uplink from a survivor into a doomed core: freed (Fig. 2(a)).
      ++freed;
      continue;
    }
    links.push_back(
        LinkSpec{renumber(upper), renumber(lower).value(), false});
  }
  std::printf(" freed %lu uplinks, repurposing %lu core downlinks…\n",
              static_cast<unsigned long>(freed),
              static_cast<unsigned long>(repurposed));

  // Reconnect: each surviving core doubles up on each surviving L2 pod,
  // landing its second link on the member whose uplink was freed.
  for (std::uint64_t core = 0; core < aspen.switches_at_level(3); ++core) {
    const SwitchId new_core{static_cast<std::uint32_t>(
        aspen.S + aspen.S + core)};  // L3 ids follow L1 and L2 blocks
    for (std::uint64_t pod = 0; pod < aspen.p[2]; ++pod) {
      // The freed port lives on the member the core did NOT already reach:
      // standard striping sent core c to member c mod 2, so attach to the
      // other member.
      const std::uint64_t member = 1 - core % 2;
      const SwitchId target{static_cast<std::uint32_t>(
          aspen.S + pod * aspen.m[2] + member)};
      links.push_back(LinkSpec{new_core, target.value(), false});
    }
  }

  const Topology rebuilt = build_custom_topology(aspen, links);
  const ValidationReport report = validate_topology(rebuilt);
  std::printf(" rebuilt: %s\n", rebuilt.describe().c_str());
  std::printf(" validation: %s — every L3 switch now reaches each L2 pod "
              "twice\n\n",
              report.all_ok() ? "all checks pass" : "FAILED");
}

void figures4and5() {
  std::printf("== Figures 4 and 5: the three ANP cases ==\n");
  // Case 1 and 2 on FTV <0,1,0>.
  {
    const Topology topo =
        Topology::build(generate_tree(4, 4, FaultToleranceVector{0, 1, 0}));
    AnpSimulation anp(topo);
    const SwitchId e = topo.switch_at(3, 0);
    const FailureReport case1 =
        anp.simulate_link_failure(topo.down_neighbors(e)[0].link);
    std::printf(
        " case 1 (failure at the fault-tolerant level): %lu switches react "
        "locally, %lu messages, %.0f ms\n",
        static_cast<unsigned long>(case1.switches_reacted),
        static_cast<unsigned long>(case1.messages_sent),
        case1.convergence_time_ms);
    (void)anp.simulate_link_recovery(topo.down_neighbors(e)[0].link);

    const SwitchId f = topo.switch_at(2, 0);
    const FailureReport case2 =
        anp.simulate_link_failure(topo.down_neighbors(f)[0].link);
    std::printf(
        " case 2 (fault tolerance one level up): notification travels %d "
        "hop, %.0f ms\n",
        case2.max_update_hops, case2.convergence_time_ms);
  }
  // Case 3 on FTV <1,0,0>.
  {
    const Topology topo =
        Topology::build(generate_tree(4, 4, FaultToleranceVector{1, 0, 0}));
    AnpSimulation anp(topo);
    const SwitchId f = topo.switch_at(2, 0);
    const FailureReport case3 =
        anp.simulate_link_failure(topo.down_neighbors(f)[0].link);
    std::printf(
        " case 3 (fault tolerance two levels up): notification travels %d "
        "hops, %.0f ms, %lu switches react\n",
        case3.max_update_hops, case3.convergence_time_ms,
        static_cast<unsigned long>(case3.switches_reacted));
  }
  std::printf("\n");
}

}  // namespace

int main() {
  figure1();
  figure2();
  figures4and5();
  return 0;
}
