// Design explorer — the workflow §1 promises data center architects:
// "enabling them to design networks that balance their requirements for
//  scale, cost and fault tolerance."
//
// Given operator constraints — hosts to support, a switch budget, and a
// worst-case failure-reaction SLA in milliseconds — enumerate every Aspen
// tree for a set of candidate shapes, filter by the constraints, and rank
// the survivors.
//
//   ./design_explorer [min_hosts] [max_switches] [sla_ms]
//   defaults: 500 hosts, 3000 switches, 100 ms
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "src/analysis/convergence.h"
#include "src/aspen/enumerate.h"
#include "src/aspen/recommend.h"
#include "src/util/table.h"

namespace {

struct Candidate {
  aspen::TreeParams tree;
  double worst_ms;
  double avg_ms;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace aspen;

  const std::uint64_t min_hosts =
      argc > 1 ? std::stoull(argv[1]) : 500;
  const std::uint64_t max_switches =
      argc > 2 ? std::stoull(argv[2]) : 3000;
  const double sla_ms = argc > 3 ? std::stod(argv[3]) : 100.0;

  std::printf(
      "operator requirements: >= %lu hosts, <= %lu switches, every failure "
      "reaction <= %.0f ms\n\n",
      static_cast<unsigned long>(min_hosts),
      static_cast<unsigned long>(max_switches), sla_ms);

  // Candidate shapes an operator would realistically consider (§9.1: "we
  // expect trees with 3<=n<=7 levels and 16<=k<=128 ports per switch").
  const std::vector<std::pair<int, int>> shapes{
      {3, 16}, {3, 24}, {3, 32}, {4, 16}, {4, 24}, {5, 16}};

  std::vector<Candidate> candidates;
  for (const auto& [n, k] : shapes) {
    EnumerationFilter filter;
    filter.min_hosts = min_hosts;
    filter.max_switches = max_switches;
    for (const TreeParams& tree : enumerate_trees(n, k, filter)) {
      // Worst single failure: the §9.1 propagation distance, converted to
      // time under ANP constants (global fallback still pays LSP rates).
      const FaultToleranceVector ftv = tree.ftv();
      double worst = 0.0;
      for (Level i = 2; i <= n; ++i) {
        const bool covered =
            ftv.nearest_fault_tolerant_level_at_or_above(i) != 0;
        const double hops = update_propagation_distance(ftv, i);
        worst = std::max(
            worst, estimate_convergence_ms(
                       hops, covered ? ProtocolKind::kAnp
                                     : ProtocolKind::kLsp));
      }
      if (worst > sla_ms) continue;
      const double avg =
          estimate_convergence_ms(average_update_propagation(ftv),
                                  ProtocolKind::kAnp);
      candidates.push_back({tree, worst, avg});
    }
  }

  if (candidates.empty()) {
    std::printf("no Aspen tree satisfies these constraints; relax one.\n");
    return 1;
  }

  // Rank: most hosts first, then fewest switches, then fastest reaction.
  std::ranges::sort(candidates, [](const Candidate& a, const Candidate& b) {
    if (a.tree.num_hosts() != b.tree.num_hosts()) {
      return a.tree.num_hosts() > b.tree.num_hosts();
    }
    if (a.tree.total_switches() != b.tree.total_switches()) {
      return a.tree.total_switches() < b.tree.total_switches();
    }
    return a.worst_ms < b.worst_ms;
  });

  TextTable table({"rank", "tree", "hosts", "switches", "links",
                   "worst reaction", "avg reaction"});
  const std::size_t shown = std::min<std::size_t>(candidates.size(), 15);
  for (std::size_t i = 0; i < shown; ++i) {
    const Candidate& c = candidates[i];
    table.add_row({std::to_string(i + 1), c.tree.to_string(),
                   std::to_string(c.tree.num_hosts()),
                   std::to_string(c.tree.total_switches()),
                   std::to_string(c.tree.total_links()),
                   format_double(c.worst_ms, 1) + " ms",
                   format_double(c.avg_ms, 1) + " ms"});
  }
  std::printf("%zu candidates satisfy the constraints; top %zu:\n\n%s\n",
              candidates.size(), shown, table.to_string().c_str());

  const Candidate& best = candidates.front();
  std::printf("recommended: %s — %lu hosts on %lu switches, every single-"
              "link failure masked within %.1f ms\n",
              best.tree.to_string().c_str(),
              static_cast<unsigned long>(best.tree.num_hosts()),
              static_cast<unsigned long>(best.tree.total_switches()),
              best.worst_ms);
  return 0;
}
