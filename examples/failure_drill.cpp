// Failure drill — the paper's §1 availability story, end to end.
//
// Runs the same failure sequence against an OSPF-style fabric (LSP on a
// fat tree) and an Aspen fabric (ANP on the fixed-host Aspen tree), and
// estimates the packet-loss exposure of each reaction: flows that the
// stale tables doom, multiplied by the measured re-convergence window.
//
//   ./failure_drill [k] [n_fat] [failures] [seed]
#include <cstdio>
#include <memory>
#include <string>

#include "src/aspen/fixed_hosts.h"
#include "src/aspen/generator.h"
#include "src/proto/experiment.h"
#include "src/routing/packet_walk.h"
#include "src/routing/reachability.h"
#include "src/util/rng.h"
#include "src/util/table.h"

namespace {

using namespace aspen;

struct DrillResult {
  double total_window_ms = 0;
  double worst_window_ms = 0;
  std::uint64_t doomed_flows = 0;  // flows undeliverable pre-reaction
  std::uint64_t residual_flows = 0;  // still undeliverable post-reaction
  std::uint64_t messages = 0;
};

DrillResult drill(const Topology& topo, ProtocolKind kind,
                  const std::vector<LinkId>& failures, bool extended) {
  DrillResult result;
  AnpOptions anp;
  anp.notify_children = extended;
  auto proto = make_protocol(kind, topo, DelayModel{}, anp);

  for (const LinkId link : failures) {
    // Exposure before the protocol reacts: walk flows against the *stale*
    // tables with the link already dead.
    const RoutingState stale = proto->tables();
    LinkStateOverlay degraded(topo);
    for (const LinkId failed : proto->overlay().failed_links()) {
      degraded.fail(failed);
    }
    degraded.fail(link);
    const TableRouter stale_router(stale);
    const ReachabilityStats before =
        measure_all_pairs(topo, stale_router, degraded);

    const FailureReport report = proto->simulate_link_failure(link);
    result.total_window_ms += report.convergence_time_ms;
    result.worst_window_ms =
        std::max(result.worst_window_ms, report.convergence_time_ms);
    result.doomed_flows += before.undelivered();
    result.messages += report.messages_sent;

    const TableRouter patched(proto->tables());
    result.residual_flows +=
        measure_all_pairs(topo, patched, proto->overlay()).undelivered();

    (void)proto->simulate_link_recovery(link);
  }
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const int k = argc > 1 ? std::stoi(argv[1]) : 6;
  const int n = argc > 2 ? std::stoi(argv[2]) : 3;
  const std::size_t failures = argc > 3 ? std::stoul(argv[3]) : 12;
  const std::uint64_t seed = argc > 4 ? std::stoull(argv[4]) : 7;

  const Topology fat = Topology::build(fat_tree(n, k));
  const Topology aspen =
      Topology::build(design_fixed_host_tree(n, k, /*extra_levels=*/1));
  std::printf("fat tree : %s\n", fat.describe().c_str());
  std::printf("aspen    : %s\n\n", aspen.describe().c_str());

  // One shared failure *schedule*: pick random inter-switch levels/offsets
  // and map them to concrete links in each tree.
  Rng rng(seed);
  std::vector<LinkId> fat_failures;
  std::vector<LinkId> aspen_failures;
  for (std::size_t i = 0; i < failures; ++i) {
    const Level level = static_cast<Level>(rng.uniform(2, n));
    const double position = rng.real();
    const auto pick = [&](const Topology& topo) {
      const auto links = topo.links_at_level(level);
      return links[static_cast<std::size_t>(
          position * static_cast<double>(links.size()))];
    };
    fat_failures.push_back(pick(fat));
    aspen_failures.push_back(pick(aspen));
  }

  const DrillResult lsp =
      drill(fat, ProtocolKind::kLsp, fat_failures, /*extended=*/false);
  const DrillResult anp =
      drill(aspen, ProtocolKind::kAnp, aspen_failures, /*extended=*/true);

  aspen::TextTable table({"fabric", "failures", "total window (ms)",
                          "worst window (ms)", "doomed flows (pre)",
                          "residual flows (post)", "messages"});
  const auto row = [&](const char* name, const DrillResult& r) {
    table.add_row({name, std::to_string(failures),
                   aspen::format_double(r.total_window_ms, 1),
                   aspen::format_double(r.worst_window_ms, 1),
                   std::to_string(r.doomed_flows),
                   std::to_string(r.residual_flows),
                   std::to_string(r.messages)});
  };
  row("fat tree + LSP", lsp);
  row("aspen + ANP", anp);
  std::printf("%s\n", table.to_string().c_str());

  std::printf(
      "interpretation: both fabrics doom roughly the same flows the instant\n"
      "a link dies, but the Aspen fabric closes its window %.0fx faster\n"
      "(%.1f ms vs %.1f ms cumulative downtime across the drill) with far\n"
      "fewer control messages — the §1 availability argument.\n",
      anp.total_window_ms > 0 ? lsp.total_window_ms / anp.total_window_ms
                              : 0.0,
      anp.total_window_ms, lsp.total_window_ms);
  return 0;
}
