// Striping lab — §7 made tangible.
//
// Wires the same Aspen tree under every striping policy, runs the §7
// validator, shows the shared-ancestor sets ANP depends on, and then
// demonstrates the consequence: the same failure is masked under standard
// striping and fatal under parallel-heavy striping.
//
//   ./striping_lab [n] [k] [ftv]     default: 4 4 "<1,0,0>"
#include <cstdio>
#include <string>

#include "src/aspen/generator.h"
#include "src/proto/anp.h"
#include "src/routing/packet_walk.h"
#include "src/routing/reachability.h"
#include "src/topo/queries.h"
#include "src/topo/validate.h"
#include "src/util/table.h"

int main(int argc, char** argv) {
  using namespace aspen;

  const int n = argc > 1 ? std::stoi(argv[1]) : 4;
  const int k = argc > 2 ? std::stoi(argv[2]) : 4;
  const FaultToleranceVector ftv =
      argc > 3 ? FaultToleranceVector::parse(argv[3])
               : FaultToleranceVector{1, 0, 0};
  const TreeParams tree = generate_tree(n, k, ftv);
  std::printf("tree: %s\n\n", tree.to_string().c_str());

  TextTable table({"striping", "ports ok", "coverage ok", "ANP striping ok",
                   "parallel pairs", "failures masked (faithful ANP)"});

  for (const auto kind :
       {StripingKind::kStandard, StripingKind::kRotated,
        StripingKind::kRandom, StripingKind::kParallelHeavy}) {
    StripingConfig cfg;
    cfg.kind = kind;
    cfg.seed = 42;
    const Topology topo = Topology::build(tree, cfg);
    const ValidationReport report = validate_topology(topo);

    // Count single failures (all inter-switch links) that faithful ANP
    // fully masks for traffic whose apex is above the failure: probe with
    // one far-side source against every destination edge below the break.
    std::uint64_t masked = 0;
    std::uint64_t total = 0;
    AnpSimulation anp(topo);
    for (Level level = 2; level <= n; ++level) {
      for (const LinkId link : topo.links_at_level(level)) {
        ++total;
        (void)anp.simulate_link_failure(link);
        const TableRouter router(anp.tables());
        const HostId probe{
            static_cast<std::uint32_t>(topo.num_hosts() - 1)};
        bool ok = true;
        for (std::uint32_t d = 0; d + 1 < topo.num_hosts() && ok; d += 2) {
          for (std::uint64_t seedv = 0; seedv < 4 && ok; ++seedv) {
            WalkOptions options;
            options.flow_seed = seedv;
            if (topo.edge_switch_of(probe) ==
                topo.edge_switch_of(HostId{d})) {
              continue;
            }
            ok = walk_packet(topo, router, anp.overlay(), probe, HostId{d},
                             options)
                     .delivered();
          }
        }
        if (ok) ++masked;
        (void)anp.simulate_link_recovery(link);
      }
    }

    char masked_cell[32];
    std::snprintf(masked_cell, sizeof masked_cell, "%lu/%lu",
                  static_cast<unsigned long>(masked),
                  static_cast<unsigned long>(total));
    table.add_row({to_string(kind), report.ports_ok ? "yes" : "NO",
                   report.top_level_coverage ? "yes" : "NO",
                   report.anp_striping_ok ? "yes" : "NO",
                   std::to_string(report.parallel_link_pairs), masked_cell});
  }
  std::printf("%s\n", table.to_string().c_str());

  // Show the §7 shared-ancestor sets for one pod under good and bad wiring.
  for (const auto kind :
       {StripingKind::kStandard, StripingKind::kParallelHeavy}) {
    StripingConfig cfg;
    cfg.kind = kind;
    const Topology topo = Topology::build(tree, cfg);
    const Level below_top = n - 1;
    std::printf("%s striping — L%d switches' shared L%d ancestors:\n",
                to_string(kind).c_str(), below_top, n);
    for (std::uint64_t i = 0;
         i < std::min<std::uint64_t>(
                 4, tree.switches_at_level(below_top));
         ++i) {
      const SwitchId s = topo.switch_at(below_top, i);
      const auto shared = shared_pod_ancestors(topo, s, n);
      std::printf("  %s:", to_string(s).c_str());
      if (shared.empty()) std::printf(" (none — ANP cannot reroute)");
      for (const SwitchId a : shared) {
        std::printf(" %s", to_string(a).c_str());
      }
      std::printf("\n");
    }
  }
  return 0;
}
