// Tests for hierarchical labels and compact prefix forwarding (§5.3).
#include <gtest/gtest.h>

#include <algorithm>

#include "src/aspen/enumerate.h"
#include "src/aspen/generator.h"
#include "src/labels/labels.h"
#include "src/routing/reachability.h"
#include "src/util/status.h"

namespace aspen {
namespace {

TEST(Labels, RoundTripEveryHost) {
  for (const auto& ftv : std::vector<std::vector<int>>{
           {0, 0}, {0, 0, 0}, {1, 0, 0}, {0, 2, 0}}) {
    const int n = static_cast<int>(ftv.size()) + 1;
    const int k = ftv.size() == 2 && ftv[1] == 2 ? 6 : 4;
    const auto params = try_generate_tree(n, k, FaultToleranceVector(ftv));
    if (!params) continue;
    const Topology topo = Topology::build(*params);
    SCOPED_TRACE(topo.describe());
    for (std::uint32_t h = 0; h < topo.num_hosts(); ++h) {
      const HostLabel label = label_of(topo, HostId{h});
      EXPECT_EQ(label.digits.size(), static_cast<std::size_t>(params->n));
      EXPECT_EQ(host_of_label(topo, label), HostId{h});
    }
  }
}

TEST(Labels, DigitsRespectRadixes) {
  const Topology topo = Topology::build(fat_tree(3, 4));
  const TreeParams& params = topo.params();
  for (std::uint32_t h = 0; h < topo.num_hosts(); ++h) {
    const HostLabel label = label_of(topo, HostId{h});
    // d_{n-1} ∈ [0, r_n), d_1 ∈ [0, r_2), d_0 ∈ [0, k/2).
    EXPECT_LT(label.digits[0], params.r[3]);
    EXPECT_LT(label.digits[1], params.r[2]);
    EXPECT_LT(label.digits[2], 2u);
  }
}

TEST(Labels, KnownValues) {
  const Topology topo = Topology::build(fat_tree(3, 4));
  // Host 0: first pod, first edge, first host → 0.0.0.
  EXPECT_EQ(label_of(topo, HostId{0}).to_string(), "0.0.0");
  // Host 15: last pod (3), second edge (1), second host (1).
  EXPECT_EQ(label_of(topo, HostId{15}).to_string(), "3.1.1");
  // Hosts on the same edge share all but the last digit.
  const HostLabel a = label_of(topo, HostId{4});
  const HostLabel b = label_of(topo, HostId{5});
  EXPECT_EQ(a.digits[0], b.digits[0]);
  EXPECT_EQ(a.digits[1], b.digits[1]);
  EXPECT_NE(a.digits[2], b.digits[2]);
}

TEST(Labels, HostOfLabelValidatesDigits) {
  const Topology topo = Topology::build(fat_tree(3, 4));
  HostLabel label = label_of(topo, HostId{0});
  label.digits[0] = 99;
  EXPECT_THROW((void)host_of_label(topo, label), PreconditionError);
  label.digits.resize(2);
  EXPECT_THROW((void)host_of_label(topo, label), PreconditionError);
}

TEST(Labels, CompactTableShapes) {
  const Topology topo =
      Topology::build(generate_tree(4, 6, FaultToleranceVector{0, 2, 0}));
  const auto tables = build_compact_tables(topo);
  const TreeParams& params = topo.params();
  for (std::uint32_t v = 0; v < topo.num_switches(); ++v) {
    const CompactTable& table = tables[v];
    const SwitchId s{v};
    if (table.level == 1) {
      EXPECT_EQ(table.child_pod_ports.size(), 3u);  // k/2 hosts
      EXPECT_EQ(table.entries(), 4u);
    } else {
      const std::uint64_t r = params.r[static_cast<std::size_t>(
          table.level)];
      EXPECT_EQ(table.child_pod_ports.size(), r);
      // Each child-pod entry holds exactly c_i ECMP ports.
      for (const auto& ports : table.child_pod_ports) {
        EXPECT_EQ(ports.size(),
                  params.c[static_cast<std::size_t>(table.level)])
            << to_string(s);
      }
    }
    if (table.level == topo.levels()) {
      EXPECT_TRUE(table.up_ports.empty());
    } else {
      EXPECT_EQ(table.up_ports.size(), 3u);  // k/2 uplinks
    }
  }
}

TEST(Labels, LabelRouterDeliversAllPairs) {
  for (const auto& ftv :
       std::vector<std::vector<int>>{{0, 0, 0}, {1, 0, 0}, {0, 1, 0}}) {
    const Topology topo =
        Topology::build(generate_tree(4, 4, FaultToleranceVector(ftv)));
    SCOPED_TRACE(topo.describe());
    const LabelRouter router(topo);
    const LinkStateOverlay intact(topo);
    const ReachabilityStats stats = measure_all_pairs(topo, router, intact);
    EXPECT_EQ(stats.undelivered(), 0u);
    EXPECT_EQ(stats.looped, 0u);
  }
}

TEST(Labels, LabelRouterMatchesStructuralRouter) {
  const Topology topo =
      Topology::build(generate_tree(4, 4, FaultToleranceVector{0, 1, 0}));
  const LabelRouter labels(topo);
  const StructuralRouter structural(topo);
  for (std::uint32_t v = 0; v < topo.num_switches(); ++v) {
    const SwitchId s{v};
    for (std::uint32_t d = 0; d < topo.num_hosts(); d += 3) {
      const HostId dst{d};
      if (topo.level_of(s) == 1 &&
          topo.edge_switch_of(dst) == s) {
        continue;  // structural router refuses the destination edge
      }
      auto a = labels.next_hops(s, dst);
      auto b = structural.next_hops(s, dst);
      const auto key = [](const Topology::Neighbor& nb) {
        return nb.link.value();
      };
      std::ranges::sort(a, {}, key);
      std::ranges::sort(b, {}, key);
      EXPECT_EQ(a, b) << to_string(s) << " → " << to_string(dst);
    }
  }
}

TEST(Labels, CompactStateBeatsFlatStateByOrders) {
  const Topology topo = Topology::build(fat_tree(3, 16));
  const ForwardingStateStats stats = forwarding_state_stats(topo);
  EXPECT_LT(stats.compact_entries * 10, stats.flat_edge_entries);
  EXPECT_LT(stats.flat_edge_entries, stats.flat_host_entries);
  EXPECT_GT(stats.mean_compact_per_switch, 1.0);
  // Edge: k/2+1, agg: r_2+1 = 9, core: r_3 = 16 (no up default).
  EXPECT_EQ(stats.compact_entries,
            128u * 9 + 128u * 9 + 64u * 16);
}

TEST(Labels, FaultToleranceShrinksCompactTables) {
  // Higher c_i means fewer child pods per switch (r_i = (k/2)/c_i): the
  // same §5.3 tradeoff seen from the TCAM's perspective.
  const Topology fat = Topology::build(fat_tree(4, 6));
  const Topology aspen =
      Topology::build(generate_tree(4, 6, FaultToleranceVector{0, 2, 0}));
  const ForwardingStateStats a = forwarding_state_stats(fat);
  const ForwardingStateStats b = forwarding_state_stats(aspen);
  EXPECT_GT(a.mean_compact_per_switch, b.mean_compact_per_switch);
}

TEST(Labels, TotalEntriesAccounting) {
  const Topology topo = Topology::build(fat_tree(3, 4));
  const LabelRouter router(topo);
  // 8 edges × (2+1) + 8 aggs × (2+1) + 4 cores × 4 = 24 + 24 + 16.
  EXPECT_EQ(router.total_entries(), 64u);
}

}  // namespace
}  // namespace aspen
