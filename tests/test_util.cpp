// Unit tests for the utility substrate: ids, status, math, rng, table, log.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <unordered_set>

#include "src/util/ids.h"
#include "src/util/log.h"
#include "src/util/math.h"
#include "src/util/rng.h"
#include "src/util/status.h"
#include "src/util/table.h"

namespace aspen {
namespace {

TEST(TypedId, DefaultIsInvalid) {
  SwitchId id;
  EXPECT_FALSE(id.valid());
  EXPECT_EQ(id, SwitchId::invalid());
}

TEST(TypedId, ValueRoundTrip) {
  SwitchId id{42};
  EXPECT_TRUE(id.valid());
  EXPECT_EQ(id.value(), 42u);
}

TEST(TypedId, Ordering) {
  EXPECT_LT(SwitchId{1}, SwitchId{2});
  EXPECT_EQ(SwitchId{7}, SwitchId{7});
  EXPECT_NE(SwitchId{7}, SwitchId{8});
}

TEST(TypedId, DistinctTagsAreDistinctTypes) {
  static_assert(!std::is_same_v<SwitchId, HostId>);
  static_assert(!std::is_same_v<LinkId, PodId>);
}

TEST(TypedId, Hashable) {
  std::unordered_set<SwitchId> set;
  set.insert(SwitchId{1});
  set.insert(SwitchId{1});
  set.insert(SwitchId{2});
  EXPECT_EQ(set.size(), 2u);
}

TEST(TypedId, ToString) {
  EXPECT_EQ(to_string(SwitchId{3}), "s3");
  EXPECT_EQ(to_string(HostId{9}), "h9");
  EXPECT_EQ(to_string(LinkId{0}), "e0");
  EXPECT_EQ(to_string(SwitchId::invalid()), "s<invalid>");
}

TEST(Status, CheckThrowsAspenError) {
  EXPECT_THROW(ASPEN_CHECK(false, "boom ", 42), AspenError);
}

TEST(Status, RequireThrowsPreconditionError) {
  EXPECT_THROW(ASPEN_REQUIRE(1 == 2, "mismatch"), PreconditionError);
}

TEST(Status, PassingChecksDoNotThrow) {
  EXPECT_NO_THROW(ASPEN_CHECK(true));
  EXPECT_NO_THROW(ASPEN_REQUIRE(true, "fine"));
}

TEST(Status, MessageContainsDetail) {
  try {
    ASPEN_REQUIRE(false, "value was ", 17);
    FAIL() << "should have thrown";
  } catch (const PreconditionError& e) {
    EXPECT_NE(std::string(e.what()).find("value was 17"), std::string::npos);
  }
}

TEST(Math, Ipow) {
  EXPECT_EQ(ipow(2, 0), 1u);
  EXPECT_EQ(ipow(2, 10), 1024u);
  EXPECT_EQ(ipow(10, 3), 1000u);
  EXPECT_EQ(ipow(1, 63), 1u);
  EXPECT_EQ(ipow(128, 7), 562949953421312u);  // 2^49
}

TEST(Math, IpowOverflowDetected) {
  EXPECT_THROW((void)ipow(2, 64), AspenError);
}

TEST(Math, Divides) {
  EXPECT_TRUE(divides(4, 16));
  EXPECT_FALSE(divides(3, 16));
  EXPECT_FALSE(divides(0, 16));
  EXPECT_TRUE(divides(16, 16));
  EXPECT_TRUE(divides(5, 0));  // 0 is divisible by everything
}

TEST(Math, Divisors) {
  EXPECT_EQ(divisors(1), (std::vector<std::uint64_t>{1}));
  EXPECT_EQ(divisors(12), (std::vector<std::uint64_t>{1, 2, 3, 4, 6, 12}));
  EXPECT_EQ(divisors(16), (std::vector<std::uint64_t>{1, 2, 4, 8, 16}));
  EXPECT_EQ(divisors(7), (std::vector<std::uint64_t>{1, 7}));
  EXPECT_THROW(divisors(0), PreconditionError);
}

TEST(Math, CeilDiv) {
  EXPECT_EQ(ceil_div(10, 3), 4u);
  EXPECT_EQ(ceil_div(9, 3), 3u);
  EXPECT_EQ(ceil_div(0, 3), 0u);
  EXPECT_EQ(ceil_div(5, 0), 0u);
}

TEST(Rng, Deterministic) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.uniform(0, 1000), b.uniform(0, 1000));
  }
}

TEST(Rng, SeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.uniform(0, 1'000'000) == b.uniform(0, 1'000'000)) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(Rng, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
  }
}

TEST(Rng, IndexCoversRange) {
  Rng rng(9);
  std::set<std::size_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.index(5));
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_THROW((void)rng.index(0), PreconditionError);
}

TEST(Rng, RealInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 100; ++i) {
    const double v = rng.real();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(13);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  std::ranges::sort(v);
  EXPECT_EQ(v, sorted);
}

TEST(Rng, ExponentialMeanRoughlyCorrect) {
  Rng rng(17);
  double total = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) total += rng.exponential(5.0);
  EXPECT_NEAR(total / n, 5.0, 0.25);
  EXPECT_THROW((void)rng.exponential(0.0), PreconditionError);
}

TEST(Table, RendersAlignedColumns) {
  TextTable t({"a", "long-header", "c"});
  t.add_row({"1", "2", "3"});
  t.add_row({"wide-cell", "x", "y"});
  const std::string out = t.to_string();
  EXPECT_NE(out.find("| a "), std::string::npos);
  EXPECT_NE(out.find("long-header"), std::string::npos);
  EXPECT_NE(out.find("wide-cell"), std::string::npos);
  // Header separator row present.
  EXPECT_NE(out.find("|---"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(Table, RejectsMismatchedRow) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), PreconditionError);
  EXPECT_THROW(TextTable({}), PreconditionError);
}

TEST(Table, FormatDouble) {
  EXPECT_EQ(format_double(1.5), "1.5");
  EXPECT_EQ(format_double(2.0), "2");
  EXPECT_EQ(format_double(0.333333, 2), "0.33");
  EXPECT_EQ(format_double(100.0, 0), "100");
}

TEST(Table, FormatPercent) {
  EXPECT_EQ(format_percent(1, 2), "50%");
  EXPECT_EQ(format_percent(1, 3), "33.3%");
  EXPECT_EQ(format_percent(1, 0), "n/a");
}

TEST(Table, AsciiBar) {
  EXPECT_EQ(ascii_bar(10, 10, 4), "####");
  EXPECT_EQ(ascii_bar(5, 10, 4), "##");
  EXPECT_EQ(ascii_bar(0, 10, 4), "");
  EXPECT_EQ(ascii_bar(-1, 10, 4), "");
  EXPECT_EQ(ascii_bar(1, 0, 4), "");
}

TEST(Log, LevelGating) {
  const LogLevel saved = log_level();
  set_log_level(LogLevel::kWarn);
  EXPECT_FALSE(log_enabled(LogLevel::kDebug));
  EXPECT_FALSE(log_enabled(LogLevel::kInfo));
  EXPECT_TRUE(log_enabled(LogLevel::kWarn));
  EXPECT_TRUE(log_enabled(LogLevel::kError));
  set_log_level(LogLevel::kOff);
  EXPECT_FALSE(log_enabled(LogLevel::kError));
  EXPECT_FALSE(log_enabled(LogLevel::kOff));
  set_log_level(saved);
}

}  // namespace
}  // namespace aspen
