// Tests for the LSP (link-state, OSPF-style) baseline protocol.
#include <gtest/gtest.h>

#include "src/aspen/generator.h"
#include "src/proto/lsp.h"
#include "src/routing/packet_walk.h"
#include "src/routing/reachability.h"
#include "src/util/status.h"

namespace aspen {
namespace {

LinkId core_downlink(const Topology& topo) {
  return topo.down_neighbors(topo.switch_at(topo.levels(), 0))[0].link;
}

TEST(Lsp, InitialTablesAreConverged) {
  const Topology topo = Topology::build(fat_tree(3, 4));
  const LspSimulation lsp(topo);
  const RoutingState expected = compute_updown_routes(topo);
  EXPECT_EQ(switches_with_changed_tables(lsp.tables(), expected), 0u);
}

TEST(Lsp, FailureConvergesToGlobalRecomputation) {
  const Topology topo = Topology::build(fat_tree(3, 4));
  LspSimulation lsp(topo);
  const LinkId link = core_downlink(topo);
  const FailureReport report = lsp.simulate_link_failure(link);

  LinkStateOverlay failed(topo);
  failed.fail(link);
  const RoutingState expected = compute_updown_routes(topo, failed);
  EXPECT_EQ(switches_with_changed_tables(lsp.tables(), expected), 0u);
  EXPECT_FALSE(lsp.overlay().is_up(link));
  EXPECT_GT(report.switches_reacted, 0u);
}

TEST(Lsp, FloodingInformsEverySwitch) {
  const Topology topo = Topology::build(fat_tree(3, 4));
  LspSimulation lsp(topo);
  const FailureReport report = lsp.simulate_link_failure(core_downlink(topo));
  EXPECT_EQ(report.switches_informed, topo.num_switches());
  // LSAs cross (nearly) every link from both origins.
  EXPECT_GT(report.messages_sent, topo.num_links() / 2);
}

TEST(Lsp, ConvergenceTimeDominatedByLsaProcessing) {
  const Topology topo = Topology::build(fat_tree(3, 4));
  LspSimulation lsp(topo);
  const FailureReport report = lsp.simulate_link_failure(core_downlink(topo));
  const DelayModel delays;
  // At least one serialized LSA processing interval; bounded by a few.
  EXPECT_GE(report.convergence_time_ms, delays.lsa_processing);
  EXPECT_LE(report.convergence_time_ms, 12 * delays.lsa_processing);
  EXPECT_GT(report.events, 0u);
}

TEST(Lsp, RecoveryRestoresInitialTables) {
  const Topology topo = Topology::build(fat_tree(3, 4));
  LspSimulation lsp(topo);
  const RoutingState initial = lsp.tables();
  const LinkId link = core_downlink(topo);
  (void)lsp.simulate_link_failure(link);
  const FailureReport recovery = lsp.simulate_link_recovery(link);
  EXPECT_EQ(switches_with_changed_tables(initial, lsp.tables()), 0u);
  EXPECT_TRUE(lsp.overlay().is_up(link));
  EXPECT_GT(recovery.switches_informed, 0u);
}

TEST(Lsp, PostConvergenceDeliveryIsComplete) {
  // After LSP converges on a single failure, every host pair that remains
  // physically connected is deliverable.
  const Topology topo = Topology::build(fat_tree(3, 4));
  LspSimulation lsp(topo);
  (void)lsp.simulate_link_failure(core_downlink(topo));
  const TableRouter router(lsp.tables());
  const ReachabilityStats stats =
      measure_all_pairs(topo, router, lsp.overlay());
  EXPECT_EQ(stats.undelivered(), 0u);
}

TEST(Lsp, DoubleFailureRejected) {
  const Topology topo = Topology::build(fat_tree(3, 4));
  LspSimulation lsp(topo);
  const LinkId link = core_downlink(topo);
  (void)lsp.simulate_link_failure(link);
  EXPECT_THROW(lsp.simulate_link_failure(link), PreconditionError);
  (void)lsp.simulate_link_recovery(link);
  EXPECT_THROW(lsp.simulate_link_recovery(link), PreconditionError);
}

TEST(Lsp, HostLinkFailureFloodsButChangesNothing) {
  // Host links are invisible at edge-switch granularity: flooding happens,
  // but no forwarding table (keyed by edge switch) changes.
  const Topology topo = Topology::build(fat_tree(3, 4));
  LspSimulation lsp(topo);
  const LinkId host_link = topo.host_uplink(HostId{0}).link;
  const FailureReport report = lsp.simulate_link_failure(host_link);
  EXPECT_EQ(report.switches_reacted, 0u);
  EXPECT_EQ(report.switches_informed, topo.num_switches());
}

TEST(Lsp, MultipleSequentialFailures) {
  const Topology topo = Topology::build(fat_tree(3, 6));
  LspSimulation lsp(topo);
  const RoutingState initial = lsp.tables();
  std::vector<LinkId> links;
  links.push_back(topo.links_at_level(3)[0]);
  links.push_back(topo.links_at_level(2)[5]);
  links.push_back(topo.links_at_level(3)[7]);
  for (const LinkId link : links) (void)lsp.simulate_link_failure(link);

  LinkStateOverlay failed(topo);
  for (const LinkId link : links) failed.fail(link);
  EXPECT_EQ(switches_with_changed_tables(
                lsp.tables(), compute_updown_routes(topo, failed)),
            0u);

  for (auto it = links.rbegin(); it != links.rend(); ++it) {
    (void)lsp.simulate_link_recovery(*it);
  }
  EXPECT_EQ(switches_with_changed_tables(initial, lsp.tables()), 0u);
}

TEST(Lsp, ReactionSubsetOfInformed) {
  const Topology topo =
      Topology::build(generate_tree(4, 4, FaultToleranceVector{1, 0, 0}));
  LspSimulation lsp(topo);
  for (Level lvl = 2; lvl <= topo.levels(); ++lvl) {
    const LinkId link = topo.links_at_level(lvl)[1];
    const FailureReport report = lsp.simulate_link_failure(link);
    EXPECT_LE(report.switches_reacted, report.switches_informed);
    (void)lsp.simulate_link_recovery(link);
  }
}

TEST(Lsp, FasterCpusConvergeFaster) {
  const Topology topo = Topology::build(fat_tree(3, 4));
  DelayModel slow;
  DelayModel fast;
  fast.lsa_processing = 10.0;
  LspSimulation a(topo, slow);
  LspSimulation b(topo, fast);
  const LinkId link = core_downlink(topo);
  const auto ra = a.simulate_link_failure(link);
  const auto rb = b.simulate_link_failure(link);
  EXPECT_GT(ra.convergence_time_ms, rb.convergence_time_ms);
}

}  // namespace
}  // namespace aspen
