// Tests for the BFD-style failure detector, flap damping, and the
// detection → damping → notification → repair pipeline (src/fault).
#include <gtest/gtest.h>

#include <algorithm>

#include "src/aspen/generator.h"
#include "src/fault/detector.h"
#include "src/proto/experiment.h"
#include "src/routing/updown.h"
#include "src/util/status.h"

namespace aspen {
namespace {

Topology make_tree(std::vector<int> ftv, int k = 4) {
  const int n = static_cast<int>(ftv.size()) + 1;
  return Topology::build(generate_tree(n, k, FaultToleranceVector(ftv)));
}

LinkHealthState gray(double loss) {
  LinkHealthState h;
  h.health = LinkHealth::kGray;
  h.loss_rate = loss;
  return h;
}

LinkHealthState hard_down() {
  LinkHealthState h;
  h.health = LinkHealth::kDown;
  return h;
}

// ---- Confirm latency ---------------------------------------------------

TEST(Detector, HardDownConfirmedWithinBound) {
  const Topology topo = make_tree({1, 0});
  const fault::DetectorOptions options;
  const fault::DetectionOutcome det = fault::measure_detection(
      topo, topo.links_at_level(2)[0], hard_down(), options);
  ASSERT_TRUE(det.confirmed());
  // Every probe on a dead link is lost, so the Nth probe confirms: at most
  // one interval of start offset plus (N-1) further intervals.
  EXPECT_LE(det.confirm_latency_ms, options.confirm_bound_ms());
  EXPECT_GE(det.confirm_latency_ms,
            static_cast<SimTime>(options.loss_threshold - 1) *
                options.probe_interval_ms);
  EXPECT_GE(det.stats.probes_lost, 3u);
  EXPECT_EQ(det.stats.false_confirms, 0u);
}

TEST(Detector, CleanLinkNeverConfirms) {
  const Topology topo = make_tree({1, 0});
  LinkHealthState clean;  // kUp: a false-alarm horizon run
  const fault::DetectionOutcome det = fault::measure_detection(
      topo, topo.links_at_level(2)[0], clean, fault::DetectorOptions{},
      /*horizon_ms=*/30'000.0);
  EXPECT_FALSE(det.confirmed());
  EXPECT_EQ(det.stats.confirms_down, 0u);
  EXPECT_EQ(det.stats.suspects, 0u);
  EXPECT_EQ(det.stats.probes_lost, 0u);
  EXPECT_GT(det.stats.probes_sent, 0u);
}

TEST(Detector, GrayLinkConfirmedWithRealLatency) {
  const Topology topo = make_tree({1, 0});
  const fault::DetectorOptions options;  // pinned default seed
  const fault::DetectionOutcome det = fault::measure_detection(
      topo, topo.links_at_level(2)[0], gray(0.3), options);
  ASSERT_TRUE(det.confirmed());
  // Confirmation needs loss_threshold lost probes, so at least
  // (loss_threshold - 1) intervals elapse; on a 30% gray link it takes
  // longer than a hard cut but must land well inside the horizon.
  EXPECT_GE(det.confirm_latency_ms,
            static_cast<SimTime>(options.loss_threshold - 1) *
                options.probe_interval_ms);
  EXPECT_GT(det.confirm_latency_ms, 0.0);
  EXPECT_LT(det.confirm_latency_ms, 10'000.0);
  EXPECT_GE(det.suspect_latency_ms, 0.0);
  EXPECT_LE(det.suspect_latency_ms, det.confirm_latency_ms);
}

TEST(Detector, SameSeedIsDeterministic) {
  const Topology topo = make_tree({1, 0});
  const fault::DetectorOptions options;
  const fault::DetectionOutcome a = fault::measure_detection(
      topo, topo.links_at_level(2)[1], gray(0.4), options);
  const fault::DetectionOutcome b = fault::measure_detection(
      topo, topo.links_at_level(2)[1], gray(0.4), options);
  EXPECT_EQ(a.confirm_latency_ms, b.confirm_latency_ms);
  EXPECT_EQ(a.suspect_latency_ms, b.suspect_latency_ms);
  EXPECT_EQ(a.stats.probes_sent, b.stats.probes_sent);
  EXPECT_EQ(a.stats.probes_lost, b.stats.probes_lost);
}

TEST(Detector, FasterProbesConfirmSooner) {
  const Topology topo = make_tree({1, 0});
  fault::DetectorOptions fast;
  fast.probe_interval_ms = 2.0;
  fault::DetectorOptions slow;
  slow.probe_interval_ms = 50.0;
  const fault::DetectionOutcome f = fault::measure_detection(
      topo, topo.links_at_level(2)[0], hard_down(), fast);
  const fault::DetectionOutcome s = fault::measure_detection(
      topo, topo.links_at_level(2)[0], hard_down(), slow);
  ASSERT_TRUE(f.confirmed());
  ASSERT_TRUE(s.confirmed());
  EXPECT_LT(f.confirm_latency_ms, s.confirm_latency_ms);
}

// ---- Detection latency in the reaction pipeline ------------------------

TEST(Detector, DetectionLatencyEntersVulnerabilityWindow) {
  const Topology topo = make_tree({1, 0});
  const LinkId link = topo.links_at_level(2)[0];
  const fault::DetectedFailureResult run = fault::run_detected_failure(
      ProtocolKind::kAnp, topo, link, gray(0.3), fault::DetectorOptions{});
  // The measured confirm latency is charged as DelayModel::detection …
  EXPECT_GT(run.reaction.detection_ms, 0.0);
  EXPECT_EQ(run.reaction.detection_ms, run.detection.confirm_latency_ms);
  // … so convergence and every table change include it: the clock starts
  // at the fault, not the verdict.
  EXPECT_GE(run.reaction.convergence_time_ms, run.reaction.detection_ms);
  for (const SimTime t : run.reaction.table_change_completed) {
    if (t == FailureReport::kNoChange) continue;
    EXPECT_GE(t, run.reaction.detection_ms);
  }
  // The reaction really happened: tables moved off the pre-failure state.
  EXPECT_GT(switches_with_changed_tables(run.before, run.proto->tables()),
            0u);
}

TEST(Detector, LspPipelineAlsoChargesDetection) {
  const Topology topo = make_tree({1, 0});
  const fault::DetectedFailureResult run = fault::run_detected_failure(
      ProtocolKind::kLsp, topo, topo.links_at_level(2)[0], gray(0.5),
      fault::DetectorOptions{});
  EXPECT_GT(run.reaction.detection_ms, 0.0);
  EXPECT_GE(run.reaction.convergence_time_ms, run.reaction.detection_ms);
}

// ---- Flap damping ------------------------------------------------------

TEST(Detector, FlapDampingBoundsReactions) {
  const Topology topo = make_tree({1, 0});
  const LinkId link = topo.links_at_level(2)[0];
  const int cycles = 10;

  fault::DetectorOptions damped;
  damped.damping.enabled = true;
  const fault::FlapScenarioResult with_damping = fault::run_flap_scenario(
      ProtocolKind::kAnp, topo, link, /*period_ms=*/400.0, /*duty=*/0.5,
      cycles, damped);

  fault::DetectorOptions undamped;
  undamped.damping.enabled = false;
  const fault::FlapScenarioResult without = fault::run_flap_scenario(
      ProtocolKind::kAnp, topo, link, /*period_ms=*/400.0, /*duty=*/0.5,
      cycles, undamped);

  // Undamped, every confirmed transition is reported, so reports (and the
  // table churn they cause) grow with the flap count.
  EXPECT_EQ(without.notifications, without.confirmed_transitions);
  EXPECT_GE(without.notifications, static_cast<std::uint64_t>(2 * cycles));
  EXPECT_EQ(without.suppressed_transitions, 0u);

  // Damped, the report count is capped by the analytic bound regardless of
  // how long the flapping lasts, and the eaten transitions are accounted.
  EXPECT_LE(with_damping.notifications,
            static_cast<std::uint64_t>(with_damping.notification_bound));
  EXPECT_LT(with_damping.notifications, without.notifications);
  EXPECT_GT(with_damping.suppressed_transitions, 0u);
  EXPECT_LT(with_damping.table_changes, without.table_changes);

  // Both end reconciled and clean under audit.
  EXPECT_TRUE(with_damping.tables_restored);
  EXPECT_TRUE(without.tables_restored);
  EXPECT_TRUE(with_damping.audit.findings.empty())
      << with_damping.audit.to_string();
  EXPECT_TRUE(without.audit.findings.empty()) << without.audit.to_string();
}

TEST(Detector, DampedLspFlapAlsoBounded) {
  const Topology topo = make_tree({1, 0});
  const fault::FlapScenarioResult flap = fault::run_flap_scenario(
      ProtocolKind::kLsp, topo, topo.links_at_level(2)[0],
      /*period_ms=*/400.0, /*duty=*/0.5, /*cycles=*/8,
      fault::DetectorOptions{});
  EXPECT_LE(flap.notifications,
            static_cast<std::uint64_t>(flap.notification_bound));
  EXPECT_TRUE(flap.tables_restored);
  EXPECT_TRUE(flap.audit.findings.empty()) << flap.audit.to_string();
}

// ---- Auditor -----------------------------------------------------------

class DetectorAuditTest : public ::testing::Test {
 protected:
  DetectorAuditTest()
      : topo_(make_tree({1, 0})),
        overlay_(topo_),
        link_(topo_.links_at_level(2)[0]) {
    overlay_.fail(link_);
    detector_ = std::make_unique<fault::FailureDetector>(
        topo_, overlay_, sim_, fault::DetectorOptions{});
    detector_->set_horizon(500.0);
    detector_->monitor(link_);
    sim_.run();
  }

  [[nodiscard]] bool has_code(const AuditReport& report,
                              AuditCode code) const {
    return std::any_of(
        report.findings.begin(), report.findings.end(),
        [code](const AuditFinding& f) { return f.code == code; });
  }

  Topology topo_;
  LinkStateOverlay overlay_;
  Simulator sim_;
  LinkId link_;
  std::unique_ptr<fault::FailureDetector> detector_;
};

TEST_F(DetectorAuditTest, CleanDetectorPassesAudit) {
  const AuditReport report = fault::audit_detector(*detector_);
  EXPECT_TRUE(report.findings.empty()) << report.to_string();
}

TEST_F(DetectorAuditTest, CorruptSuppressionFlagged) {
  fault::DetectorAuditPeer::corrupt_suppression(*detector_, link_);
  const AuditReport report = fault::audit_detector(*detector_);
  EXPECT_TRUE(has_code(report, AuditCode::kDetectorSuppression))
      << report.to_string();
}

TEST_F(DetectorAuditTest, CorruptNotificationCountFlagged) {
  fault::DetectorAuditPeer::corrupt_notification_count(*detector_, link_);
  const AuditReport report = fault::audit_detector(*detector_);
  EXPECT_TRUE(has_code(report, AuditCode::kDetectorOscillation))
      << report.to_string();
}

TEST_F(DetectorAuditTest, CorruptReportedStateFlagged) {
  fault::DetectorAuditPeer::corrupt_reported_state(*detector_, link_);
  const AuditReport report = fault::audit_detector(*detector_);
  EXPECT_TRUE(has_code(report, AuditCode::kDetectorSession))
      << report.to_string();
}

// ---- Option validation -------------------------------------------------

TEST(Detector, RejectsIncoherentOptions) {
  const Topology topo = make_tree({1, 0});
  LinkStateOverlay overlay(topo);
  Simulator sim;
  fault::DetectorOptions bad;
  bad.loss_threshold = 10;  // cannot exceed the window
  bad.window = 5;
  EXPECT_THROW(fault::FailureDetector(topo, overlay, sim, bad),
               PreconditionError);
  fault::DetectorOptions bad_damping;
  bad_damping.damping.reuse_threshold = 5000.0;  // reuse above suppress
  bad_damping.damping.suppress_threshold = 3000.0;
  EXPECT_THROW(fault::FailureDetector(topo, overlay, sim, bad_damping),
               PreconditionError);
}

}  // namespace
}  // namespace aspen
