// Unit tests for the Fault Tolerance Vector (§5.1).
#include <gtest/gtest.h>

#include <sstream>

#include "src/aspen/ftv.h"
#include "src/util/status.h"

namespace aspen {
namespace {

TEST(Ftv, ConstructionAndLevels) {
  const FaultToleranceVector ftv{1, 0, 2};
  EXPECT_EQ(ftv.levels(), 4);
  EXPECT_EQ(ftv.entries(), (std::vector<int>{1, 0, 2}));
}

TEST(Ftv, RejectsNegativeEntries) {
  EXPECT_THROW(FaultToleranceVector({1, -1}), PreconditionError);
}

TEST(Ftv, AtLevelReadsTopDown) {
  // <c_n−1, …, c_2−1>: entry 0 is the top level.
  const FaultToleranceVector ftv{3, 0, 1, 0};  // 5-level tree
  EXPECT_EQ(ftv.at_level(5), 3);
  EXPECT_EQ(ftv.at_level(4), 0);
  EXPECT_EQ(ftv.at_level(3), 1);
  EXPECT_EQ(ftv.at_level(2), 0);
  EXPECT_THROW((void)ftv.at_level(1), PreconditionError);
  EXPECT_THROW((void)ftv.at_level(6), PreconditionError);
}

TEST(Ftv, ConnectionsAtLevel) {
  const FaultToleranceVector ftv{2, 0};
  EXPECT_EQ(ftv.connections_at_level(3), 3);
  EXPECT_EQ(ftv.connections_at_level(2), 1);
}

TEST(Ftv, PaperExampleFtvDescription) {
  // §5.1: "an FTV of <3,0,1,0> describes a five level tree, with four links
  // between every L5 switch and each neighboring L4 pod, two links between
  // an L3 switch and each neighboring L2 pod."
  const FaultToleranceVector ftv{3, 0, 1, 0};
  EXPECT_EQ(ftv.levels(), 5);
  EXPECT_EQ(ftv.connections_at_level(5), 4);
  EXPECT_EQ(ftv.connections_at_level(3), 2);
  EXPECT_EQ(ftv.connections_at_level(4), 1);
  EXPECT_EQ(ftv.connections_at_level(2), 1);
}

TEST(Ftv, FatTreeFactory) {
  const auto ftv = FaultToleranceVector::fat_tree(4);
  EXPECT_EQ(ftv.levels(), 4);
  EXPECT_TRUE(ftv.is_fat_tree());
  EXPECT_FALSE(ftv.is_fully_fault_tolerant());
  EXPECT_EQ(ftv.dcc(), 1u);
  EXPECT_THROW(FaultToleranceVector::fat_tree(1), PreconditionError);
}

TEST(Ftv, UniformFactory) {
  const auto ftv = FaultToleranceVector::uniform(4, 2);
  EXPECT_EQ(ftv.entries(), (std::vector<int>{2, 2, 2}));
  EXPECT_TRUE(ftv.is_fully_fault_tolerant());
}

TEST(Ftv, DccMultipliesIncrementedEntries) {
  // §5.2: "the DCC of an Aspen tree with FTV <1,2,3> is 2×3×4 = 24."
  EXPECT_EQ((FaultToleranceVector{1, 2, 3}).dcc(), 24u);
  EXPECT_EQ((FaultToleranceVector{0, 0, 0}).dcc(), 1u);
  EXPECT_EQ((FaultToleranceVector{2, 2, 2}).dcc(), 27u);
}

TEST(Ftv, NearestFaultTolerantLevel) {
  const FaultToleranceVector ftv{1, 0, 0};  // 4 levels, FT at L4 only
  EXPECT_EQ(ftv.nearest_fault_tolerant_level_at_or_above(2), 4);
  EXPECT_EQ(ftv.nearest_fault_tolerant_level_at_or_above(4), 4);

  const FaultToleranceVector mid{0, 1, 0};  // FT at L3
  EXPECT_EQ(mid.nearest_fault_tolerant_level_at_or_above(2), 3);
  EXPECT_EQ(mid.nearest_fault_tolerant_level_at_or_above(3), 3);
  EXPECT_EQ(mid.nearest_fault_tolerant_level_at_or_above(4), 0);  // none

  const auto fat = FaultToleranceVector::fat_tree(4);
  EXPECT_EQ(fat.nearest_fault_tolerant_level_at_or_above(2), 0);
}

TEST(Ftv, ToStringAndStream) {
  const FaultToleranceVector ftv{1, 0, 2};
  EXPECT_EQ(ftv.to_string(), "<1,0,2>");
  std::ostringstream os;
  os << ftv;
  EXPECT_EQ(os.str(), "<1,0,2>");
}

TEST(Ftv, ParseRoundTrip) {
  EXPECT_EQ(FaultToleranceVector::parse("<1,0,2>"),
            (FaultToleranceVector{1, 0, 2}));
  EXPECT_EQ(FaultToleranceVector::parse("3, 0, 1, 0"),
            (FaultToleranceVector{3, 0, 1, 0}));
  EXPECT_EQ(FaultToleranceVector::parse("0"), (FaultToleranceVector{0}));
}

TEST(Ftv, ParseRejectsGarbage) {
  EXPECT_THROW(FaultToleranceVector::parse(""), PreconditionError);
  EXPECT_THROW(FaultToleranceVector::parse("<>"), PreconditionError);
  EXPECT_THROW(FaultToleranceVector::parse("1,,2"), PreconditionError);
  EXPECT_THROW(FaultToleranceVector::parse("1,x"), std::exception);
  EXPECT_THROW(FaultToleranceVector::parse("<1,-2>"), PreconditionError);
}

TEST(Ftv, Equality) {
  EXPECT_EQ((FaultToleranceVector{1, 0}), (FaultToleranceVector{1, 0}));
  EXPECT_NE((FaultToleranceVector{1, 0}), (FaultToleranceVector{0, 1}));
  EXPECT_NE((FaultToleranceVector{1, 0}), (FaultToleranceVector{1, 0, 0}));
}

}  // namespace
}  // namespace aspen
