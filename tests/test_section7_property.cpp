// A precise test of the §7 sufficiency claim:
//
//   "In general, any striping policy that yields the appropriate common
//    ancestors discussed in §6 is acceptable for Aspen trees … For every
//    level L_i with minimal connectivity to L_{i-1}, if L_f is the closest
//    fault tolerant level above L_i, each L_i switch s shares at least one
//    L_f ancestor a with another member of s's pod."
//
// Concretely: after a single failure of a downlink of s at a minimally
// connected level, faithful (upward-only) ANP must restore every flow
// whose up*/down* apex reaches the *absorbing level* L_f (only switches at
// L_f get patched; dead switches between the failure and L_f remain black
// holes that blind up-choices below can still enter) — provided the
// striping gives s the §7 shared ancestors.  We verify both directions on
// good and bad stripings.  Writing this test is what surfaced the exact
// guarantee: apex above the *failure* is not sufficient, apex at or above
// the *absorber* is.
#include <gtest/gtest.h>

#include "src/aspen/generator.h"
#include "src/proto/anp.h"
#include "src/routing/packet_walk.h"
#include "src/topo/queries.h"
#include "src/topo/validate.h"

namespace aspen {
namespace {

// All flows with apex >= `absorber` delivered after faithful ANP reacted
// to the failure of `link`?
bool apex_above_flows_restored(const Topology& topo, AnpSimulation& anp,
                               LinkId link, Level absorber) {
  (void)anp.simulate_link_failure(link);
  const TableRouter router(anp.tables());
  bool all_ok = true;
  const auto hosts = static_cast<std::uint32_t>(topo.num_hosts());
  for (std::uint32_t s = 0; s < hosts && all_ok; ++s) {
    for (std::uint32_t d = 0; d < hosts && all_ok; ++d) {
      if (s == d) continue;
      const HostId src{s};
      const HostId dst{d};
      if (apex_level(topo, src, dst) < absorber) continue;
      for (std::uint64_t seed = 0; seed < 4 && all_ok; ++seed) {
        WalkOptions options;
        options.flow_seed = seed;
        all_ok =
            walk_packet(topo, router, anp.overlay(), src, dst, options)
                .delivered();
      }
    }
  }
  (void)anp.simulate_link_recovery(link);
  return all_ok;
}

TEST(Section7, GoodStripingMeansApexAboveFlowsAlwaysRestored) {
  for (const auto kind : {StripingKind::kStandard, StripingKind::kRotated}) {
    StripingConfig cfg;
    cfg.kind = kind;
    for (const auto& entries :
         std::vector<std::vector<int>>{{1, 0, 0}, {0, 1, 0}}) {
      const Topology topo = Topology::build(
          generate_tree(4, 4, FaultToleranceVector(entries)), cfg);
      SCOPED_TRACE(topo.describe());
      ASSERT_TRUE(validate_topology(topo).anp_striping_ok);
      AnpSimulation anp(topo);
      const FaultToleranceVector ftv = topo.params().ftv();
      for (Level level = 2; level <= topo.levels(); ++level) {
        const Level f = ftv.nearest_fault_tolerant_level_at_or_above(level);
        if (f == 0) continue;  // uncovered level: §7 makes no promise
        for (const LinkId link : topo.links_at_level(level)) {
          EXPECT_TRUE(apex_above_flows_restored(topo, anp, link, f))
              << to_string(kind) << " level " << level << " link "
              << link.value();
        }
      }
    }
  }
}

TEST(Section7, ParallelStripingBreaksThePromise) {
  // Fig. 6(d)-style wiring violates the shared-ancestor requirement; the
  // validator says so, and some covered failure indeed strands apex-above
  // flows under faithful ANP.
  StripingConfig cfg;
  cfg.kind = StripingKind::kParallelHeavy;
  const Topology topo = Topology::build(
      generate_tree(4, 4, FaultToleranceVector{1, 0, 0}), cfg);
  ASSERT_FALSE(validate_topology(topo).anp_striping_ok);

  AnpSimulation anp(topo);
  const FaultToleranceVector ftv = topo.params().ftv();
  bool some_failure_unmasked = false;
  for (Level level = 2; level < topo.levels(); ++level) {
    const Level f = ftv.nearest_fault_tolerant_level_at_or_above(level);
    if (f == 0) continue;
    for (const LinkId link : topo.links_at_level(level)) {
      if (!apex_above_flows_restored(topo, anp, link, f)) {
        some_failure_unmasked = true;
      }
    }
  }
  EXPECT_TRUE(some_failure_unmasked);
}

TEST(Section7, ApexLevelBasics) {
  const Topology topo = Topology::build(fat_tree(3, 4));
  EXPECT_EQ(apex_level(topo, HostId{0}, HostId{1}), 1);   // same edge
  EXPECT_EQ(apex_level(topo, HostId{0}, HostId{2}), 2);   // same pod
  EXPECT_EQ(apex_level(topo, HostId{0}, HostId{15}), 3);  // cross-core
  EXPECT_EQ(apex_level(topo, HostId{5}, HostId{4}), 1);
}

TEST(Section7, ApexLevelMatchesWalkedPathHeight) {
  const Topology topo =
      Topology::build(generate_tree(4, 4, FaultToleranceVector{0, 1, 0}));
  const StructuralRouter router(topo);
  const LinkStateOverlay intact(topo);
  for (std::uint32_t s = 0; s < topo.num_hosts(); s += 3) {
    for (std::uint32_t d = 1; d < topo.num_hosts(); d += 4) {
      if (s == d) continue;
      const WalkResult walk =
          walk_packet(topo, router, intact, HostId{s}, HostId{d});
      ASSERT_TRUE(walk.delivered());
      Level highest = 0;
      for (const NodeId node : walk.path) {
        if (!topo.is_switch_node(node)) continue;
        highest = std::max(highest, topo.level_of(topo.switch_of(node)));
      }
      EXPECT_EQ(highest, apex_level(topo, HostId{s}, HostId{d}));
    }
  }
}

}  // namespace
}  // namespace aspen
