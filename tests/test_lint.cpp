// aspen-lint test suite: tokenizer edge cases, suppression mechanics, and
// one true-positive + one suppressed fixture per rule from
// tests/lint_corpus/ (the fixtures are lint inputs, never compiled).
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "src/lint/lint.h"
#include "src/lint/rules.h"
#include "src/lint/token.h"

namespace aspen::lint {
namespace {

std::string read_corpus(const std::string& name) {
  const std::string path = std::string(ASPEN_LINT_CORPUS_DIR) + "/" + name;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing corpus fixture " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::uint64_t count_rule(const LintReport& report, const std::string& rule,
                         bool suppressed) {
  std::uint64_t n = 0;
  for (const Finding& f : report.findings) {
    if (f.rule == rule && f.suppressed == suppressed) ++n;
  }
  return n;
}

// ---- tokenizer ---------------------------------------------------------

TEST(LintTokenizer, IdentifiersNumbersPunct) {
  const auto toks = tokenize("int x = 42 + y_2;");
  ASSERT_EQ(toks.size(), 7u);
  EXPECT_EQ(toks[0].kind, TokKind::kIdentifier);
  EXPECT_EQ(toks[3].kind, TokKind::kNumber);
  EXPECT_EQ(toks[5].text, "y_2");
  EXPECT_EQ(toks[6].text, ";");
}

TEST(LintTokenizer, CommentMarkersInsideStringAreNotComments) {
  const auto toks = tokenize("const char* s = \"// not a comment\";");
  for (const Token& t : toks) EXPECT_NE(t.kind, TokKind::kComment);
  // const(0) char(1) *(2) s(3) =(4) string(5) ;(6)
  ASSERT_GE(toks.size(), 6u);
  ASSERT_EQ(toks[5].kind, TokKind::kString);
  EXPECT_EQ(toks[5].text, "\"// not a comment\"");
}

TEST(LintTokenizer, StringEscapesDoNotEndLiteral) {
  const auto toks = tokenize(R"(auto s = "quote \" slash \\ done";)");
  ASSERT_EQ(toks.size(), 5u);
  EXPECT_EQ(toks[3].kind, TokKind::kString);
}

TEST(LintTokenizer, RawStringSwallowsQuotesAndComments) {
  const auto toks =
      tokenize("auto s = R\"x(line1 \" // /* )\" still)x\"; int after;");
  ASSERT_GE(toks.size(), 5u);
  EXPECT_EQ(toks[3].kind, TokKind::kString);
  EXPECT_NE(toks[3].text.find("still"), std::string::npos);
  // Identifiers inside the raw string never surface as tokens.
  for (const Token& t : toks) {
    if (t.kind == TokKind::kIdentifier) {
      EXPECT_NE(t.text, "line1");
    }
  }
}

TEST(LintTokenizer, RawStringSpanningLinesCountsThem) {
  const auto toks = tokenize("auto s = R\"(a\nb\nc)\";\nint z;");
  ASSERT_GE(toks.size(), 7u);
  const Token& z_decl = toks[toks.size() - 3];
  EXPECT_EQ(z_decl.text, "int");
  EXPECT_EQ(z_decl.line, 4);
}

TEST(LintTokenizer, LineContinuationExtendsLineComment) {
  // The backslash-newline splices the comment across two physical lines,
  // so `hidden` is commented out; `visible` is real code.
  const auto toks = tokenize("// comment \\\nint hidden = 1;\nint visible;");
  bool saw_hidden = false;
  bool saw_visible = false;
  for (const Token& t : toks) {
    if (t.kind != TokKind::kIdentifier) continue;
    saw_hidden |= t.text == "hidden";
    saw_visible |= t.text == "visible";
  }
  EXPECT_FALSE(saw_hidden);
  EXPECT_TRUE(saw_visible);
  // Physical line numbers keep counting across the splice.
  EXPECT_EQ(toks.back().line, 3);
}

TEST(LintTokenizer, DigitSeparatorsStayOneNumber) {
  const auto toks = tokenize("auto n = 1'000'000;");
  ASSERT_EQ(toks.size(), 5u);
  EXPECT_EQ(toks[3].kind, TokKind::kNumber);
  EXPECT_EQ(toks[3].text, "1'000'000");
}

TEST(LintTokenizer, CharLiteralWithEscape) {
  const auto toks = tokenize(R"(char c = '\''; char d = 'x';)");
  ASSERT_GE(toks.size(), 10u);
  EXPECT_EQ(toks[3].kind, TokKind::kChar);
  EXPECT_EQ(toks[3].text, "'\\''");
}

TEST(LintTokenizer, PreprocessorTokensAreFlagged) {
  const auto toks = tokenize("#include <random>\nint x;");
  ASSERT_GE(toks.size(), 6u);
  EXPECT_TRUE(toks[0].preprocessor);   // '#'
  EXPECT_TRUE(toks[1].preprocessor);   // include
  EXPECT_FALSE(toks.back().preprocessor);
}

TEST(LintTokenizer, BlockCommentSpansLines) {
  const auto toks = tokenize("/* a\nb */ int x;");
  ASSERT_GE(toks.size(), 4u);
  EXPECT_EQ(toks[0].kind, TokKind::kComment);
  EXPECT_EQ(toks[1].text, "int");
  EXPECT_EQ(toks[1].line, 2);
}

// ---- rule fixtures: one true positive + one suppressed per rule --------

struct RuleFixture {
  const char* rule;
  const char* bad_file;
  const char* allowed_file;
};

class LintRuleCorpus : public ::testing::TestWithParam<RuleFixture> {};

TEST_P(LintRuleCorpus, TruePositiveFires) {
  const RuleFixture& fx = GetParam();
  const LintReport report =
      lint_source(std::string("tests/lint_corpus/") + fx.bad_file,
                  read_corpus(fx.bad_file));
  EXPECT_GE(count_rule(report, fx.rule, /*suppressed=*/false), 1u)
      << fx.bad_file << " must produce an unsuppressed " << fx.rule;
  EXPECT_FALSE(report.clean());
}

TEST_P(LintRuleCorpus, AnnotationSuppresses) {
  const RuleFixture& fx = GetParam();
  const LintReport report =
      lint_source(std::string("tests/lint_corpus/") + fx.allowed_file,
                  read_corpus(fx.allowed_file));
  EXPECT_GE(count_rule(report, fx.rule, /*suppressed=*/true), 1u)
      << fx.allowed_file << " must produce a suppressed " << fx.rule;
  EXPECT_TRUE(report.clean())
      << fx.allowed_file << " must gate clean; got:\n"
      << report_to_text(report);
  EXPECT_TRUE(report.unused_suppressions.empty());
}

INSTANTIATE_TEST_SUITE_P(
    AllRules, LintRuleCorpus,
    ::testing::Values(
        RuleFixture{"wall-clock", "wall_clock_bad.cpp",
                    "wall_clock_allowed.cpp"},
        RuleFixture{"random-device", "random_device_bad.cpp",
                    "random_device_allowed.cpp"},
        RuleFixture{"unseeded-rand", "unseeded_rand_bad.cpp",
                    "unseeded_rand_allowed.cpp"},
        RuleFixture{"unseeded-engine", "unseeded_engine_bad.cpp",
                    "unseeded_engine_allowed.cpp"},
        RuleFixture{"thread-id", "thread_id_bad.cpp",
                    "thread_id_allowed.cpp"},
        RuleFixture{"sleep", "sleep_bad.cpp", "sleep_allowed.cpp"},
        RuleFixture{"getenv", "getenv_bad.cpp", "getenv_allowed.cpp"},
        RuleFixture{"unordered-iteration", "unordered_iteration_bad.cpp",
                    "unordered_iteration_allowed.cpp"},
        RuleFixture{"pointer-key", "pointer_key_bad.cpp",
                    "pointer_key_allowed.cpp"},
        RuleFixture{"seed-arith", "seed_arith_bad.cpp",
                    "seed_arith_allowed.cpp"},
        RuleFixture{"assert-side-effect", "assert_side_effect_bad.cpp",
                    "assert_side_effect_allowed.cpp"},
        RuleFixture{"emit-outside-orchestrator",
                    "emit_outside_orchestrator_bad.cpp",
                    "emit_outside_orchestrator_allowed.cpp"},
        RuleFixture{"float-accum", "survivability_float_accum_bad.cpp",
                    "survivability_float_accum_allowed.cpp"},
        RuleFixture{"serve-bounded-retry", "serve_bounded_retry_bad.cpp",
                    "serve_bounded_retry_allowed.cpp"},
        RuleFixture{"hot-path-nested-container",
                    "hot_path_nested_container_bad.cpp",
                    "hot_path_nested_container_allowed.cpp"}),
    [](const ::testing::TestParamInfo<RuleFixture>& param_info) {
      std::string name = param_info.param.rule;
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

// bad-suppression is meta (emitted by the annotation parser), so its pair
// is asymmetric: the bad fixture produces the finding, the allowed fixture
// shows a well-formed annotation producing none.
TEST(LintSuppression, MalformedAnnotationsAreFindings) {
  const LintReport report = lint_source(
      "tests/lint_corpus/bad_suppression_bad.cpp",
      read_corpus("bad_suppression_bad.cpp"));
  EXPECT_GE(count_rule(report, "bad-suppression", false), 2u)
      << "missing reason and unknown rule are both findings";
  // The malformed annotations do not suppress the getenv findings.
  EXPECT_GE(count_rule(report, "getenv", false), 2u);
}

TEST(LintSuppression, WellFormedAnnotationIsNotAFinding) {
  const LintReport report = lint_source(
      "tests/lint_corpus/bad_suppression_allowed.cpp",
      read_corpus("bad_suppression_allowed.cpp"));
  EXPECT_EQ(count_rule(report, "bad-suppression", false), 0u);
  EXPECT_TRUE(report.clean());
}

// ---- suppression mechanics ---------------------------------------------

TEST(LintSuppression, TrailingCommentGovernsItsOwnLine) {
  const LintReport report = lint_source(
      "x.cpp",
      "#include <cstdlib>\n"
      "const char* p = std::getenv(\"A\");  "
      "// aspen-lint: allow(getenv) -- reason here\n");
  EXPECT_EQ(report.unsuppressed_count(), 0u);
  EXPECT_EQ(report.suppressed_count(), 1u);
}

TEST(LintSuppression, StandaloneCommentGovernsNextLine) {
  const LintReport report = lint_source(
      "x.cpp",
      "// aspen-lint: allow(getenv) -- reason here\n"
      "const char* p = std::getenv(\"A\");\n");
  EXPECT_EQ(report.unsuppressed_count(), 0u);
  EXPECT_EQ(report.suppressed_count(), 1u);
  EXPECT_EQ(report.findings.at(0).suppress_reason, "reason here");
}

TEST(LintSuppression, AnnotationDoesNotReachPastItsLine) {
  const LintReport report = lint_source(
      "x.cpp",
      "// aspen-lint: allow(getenv) -- reason here\n"
      "int unrelated = 0;\n"
      "const char* p = std::getenv(\"A\");\n");
  EXPECT_EQ(report.unsuppressed_count(), 1u);
  ASSERT_EQ(report.unused_suppressions.size(), 1u);
  EXPECT_EQ(report.unused_suppressions.at(0).line, 1);
}

TEST(LintSuppression, OneAnnotationCanNameSeveralRules) {
  const LintReport report = lint_source(
      "x.cpp",
      "// aspen-lint: allow(getenv, wall-clock) -- both intentional\n"
      "const char* p = std::getenv(ctime(0) ? \"A\" : \"B\");\n");
  EXPECT_EQ(report.unsuppressed_count(), 0u);
  EXPECT_EQ(report.suppressed_count(), 2u);
}

TEST(LintSuppression, BadSuppressionCannotBeSuppressed) {
  const LintReport report = lint_source(
      "x.cpp",
      "// aspen-lint: allow(bad-suppression) -- nice try\n"
      "int x = 0;\n");
  EXPECT_EQ(count_rule(report, "bad-suppression", false), 1u);
}

// ---- path scoping ------------------------------------------------------

TEST(LintScoping, SimVirtualTimeLayerMayTouchClocks) {
  const std::string source = read_corpus("wall_clock_bad.cpp");
  EXPECT_FALSE(lint_source("src/topo/x.cpp", source).clean());
  EXPECT_TRUE(lint_source("src/sim/simulator.cpp", source).clean());
}

TEST(LintScoping, SeedHelperIsTheOneHomeForSeedArithmetic) {
  const std::string source = read_corpus("seed_arith_bad.cpp");
  EXPECT_FALSE(lint_source("src/fault/chaos.cpp", source).clean());
  EXPECT_TRUE(lint_source("src/fault/seed.h", source).clean());
}

TEST(LintScoping, FloatAccumOnlyGuardsIntegerAccumulatorFiles) {
  const std::string source = read_corpus("survivability_float_accum_bad.cpp");
  EXPECT_FALSE(lint_source("src/analysis/survivability.cpp", source).clean());
  EXPECT_TRUE(lint_source("src/analysis/availability.cpp", source).clean());
}

TEST(LintScoping, BoundedRetryOnlyGuardsTheServeLayer) {
  const std::string source = read_corpus("serve_bounded_retry_bad.cpp");
  EXPECT_FALSE(lint_source("src/serve/client.cpp", source).clean());
  // The sim-layer ReliableTransport has its own backoff; it predates the
  // serve contract and is out of this rule's scope.
  EXPECT_TRUE(lint_source("src/sim/channel.cpp", source).clean());
}

TEST(LintRules, BoundedRetryEvidenceInTheSameFilePasses) {
  const LintReport report = lint_source(
      "src/serve/retry.cpp",
      "inline constexpr int kMaxRetries = 5;\n"
      "bool should_retry(int attempts, double now_ms, double deadline_ms,\n"
      "                  double backoff_ms) {\n"
      "  if (attempts >= kMaxRetries) return false;\n"
      "  return deadline_ms <= 0.0 || now_ms + backoff_ms < deadline_ms;\n"
      "}\n");
  EXPECT_TRUE(report.clean()) << report_to_text(report);
}

// ---- engine odds and ends ----------------------------------------------

TEST(LintRules, CatalogueHasAtLeastTenRulesWithUniqueIds) {
  const auto& rules = rule_catalogue();
  EXPECT_GE(rules.size(), 10u);
  for (std::size_t i = 0; i < rules.size(); ++i) {
    for (std::size_t j = i + 1; j < rules.size(); ++j) {
      EXPECT_STRNE(rules[i].id, rules[j].id);
    }
  }
  EXPECT_TRUE(is_known_rule("wall-clock"));
  EXPECT_FALSE(is_known_rule("no-such-rule"));
}

TEST(LintRules, SeededEngineAndMemberDeclarationsPass) {
  const LintReport report = lint_source(
      "x.cpp",
      "#include <random>\n"
      "struct Rng {\n"
      "  explicit Rng(unsigned long long seed) : engine_(seed) {}\n"
      "  std::mt19937_64& engine() { return engine_; }\n"
      "  std::mt19937_64 engine_;\n"
      "};\n");
  EXPECT_TRUE(report.clean()) << report_to_text(report);
}

TEST(LintRules, BannedWordsInsideStringsAndCommentsAreIgnored) {
  const LintReport report = lint_source(
      "x.cpp",
      "// mentions steady_clock and rand() freely\n"
      "const char* kDoc = \"std::random_device, getenv, sleep_for\";\n");
  EXPECT_TRUE(report.clean()) << report_to_text(report);
}

TEST(LintRules, OrderedContainerIterationPasses) {
  const LintReport report = lint_source(
      "x.cpp",
      "#include <map>\n"
      "int total(const std::map<int, int>& m) {\n"
      "  int t = 0;\n"
      "  for (const auto& kv : m) t += kv.second;\n"
      "  return t;\n"
      "}\n");
  EXPECT_TRUE(report.clean()) << report_to_text(report);
}

TEST(LintRules, UnorderedLookupWithoutIterationPasses) {
  const LintReport report = lint_source(
      "x.cpp",
      "#include <unordered_map>\n"
      "int lookup(const std::unordered_map<int, int>& m, int k) {\n"
      "  const auto it = m.find(k);\n"
      "  return it == m.end() ? -1 : it->second;\n"
      "}\n");
  EXPECT_TRUE(report.clean()) << report_to_text(report);
}

TEST(LintRules, ExplicitBeginOnUnorderedContainerIsFlagged) {
  const LintReport report = lint_source(
      "x.cpp",
      "#include <unordered_set>\n"
      "int first(const std::unordered_set<int>& s) {\n"
      "  return s.empty() ? -1 : *s.begin();\n"
      "}\n");
  EXPECT_EQ(count_rule(report, "unordered-iteration", false), 1u);
}

// ---- report formats ----------------------------------------------------

TEST(LintReportFormat, JsonCarriesCountsFindingsAndReasons) {
  const LintReport report = lint_source(
      "a.cpp",
      "#include <cstdlib>\n"
      "const char* p = std::getenv(\"A\");\n"
      "const char* q = std::getenv(\"B\");  "
      "// aspen-lint: allow(getenv) -- documented knob\n");
  const std::string json = report_to_json(report);
  EXPECT_NE(json.find("\"tool\": \"aspen-lint\""), std::string::npos);
  EXPECT_NE(json.find("\"unsuppressed\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"suppressed\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"getenv\": 1"), std::string::npos);
  EXPECT_NE(json.find("documented knob"), std::string::npos);
  EXPECT_NE(json.find("\"warnings\": 1"), std::string::npos);
}

TEST(LintReportFormat, TextListsOnlyUnsuppressedPlusUnusedNotes) {
  const LintReport report = lint_source(
      "a.cpp",
      "// aspen-lint: allow(sleep) -- stale\n"
      "int x = 0;\n"
      "const char* p = std::getenv(\"A\");\n");
  const std::string text = report_to_text(report);
  EXPECT_NE(text.find("a.cpp:3: warning [getenv]"), std::string::npos);
  EXPECT_NE(text.find("unused-suppression"), std::string::npos);
}

TEST(LintReportFormat, MissingFileIsAnIoErrorFinding) {
  const LintReport report = lint_files("", {"/nonexistent/nope.cpp"});
  EXPECT_EQ(count_rule(report, "io-error", false), 1u);
  EXPECT_FALSE(report.clean());
}

TEST(LintReportFormat, LintFilesMergesAcrossFiles) {
  const std::string dir = ASPEN_LINT_CORPUS_DIR;
  const LintReport report = lint_files(
      dir, {"getenv_bad.cpp", "getenv_allowed.cpp"});
  EXPECT_EQ(report.files_scanned, 2u);
  EXPECT_EQ(report.unsuppressed_count(), 1u);
  EXPECT_EQ(report.suppressed_count(), 1u);
}

}  // namespace
}  // namespace aspen::lint
