// Tests for ANP — the §6 failure scenarios (cases 1–3, Figures 4 and 5),
// recovery, and the intra-pod gap of the faithful protocol.
#include <gtest/gtest.h>

#include "src/aspen/generator.h"
#include "src/proto/anp.h"
#include "src/routing/packet_walk.h"
#include "src/routing/reachability.h"
#include "src/util/status.h"

namespace aspen {
namespace {

Topology make_tree(std::vector<int> ftv, int k = 4) {
  const int n = static_cast<int>(ftv.size()) + 1;
  return Topology::build(generate_tree(n, k, FaultToleranceVector(ftv)));
}

TEST(Anp, Case1LocalRerouteNoNotifications) {
  // Fig. 4, failure of e−f at the fault-tolerant level (c_3 = 2): "e does
  // not need to send any notifications … it simply forwards packets
  // destined for y through h rather than f."
  const Topology topo = make_tree({0, 1, 0});
  AnpSimulation anp(topo);
  const SwitchId e = topo.switch_at(3, 0);
  const FailureReport report =
      anp.simulate_link_failure(topo.down_neighbors(e)[0].link);
  EXPECT_EQ(report.messages_sent, 0u);
  EXPECT_EQ(report.max_update_hops, 0);
  EXPECT_DOUBLE_EQ(report.convergence_time_ms, 0.0);
  // Exactly the two endpoints react.
  EXPECT_EQ(report.switches_reacted, 2u);

  // All flows still deliverable with ANP's tables.
  const TableRouter router(anp.tables());
  EXPECT_EQ(measure_all_pairs(topo, router, anp.overlay()).undelivered(), 0u);
}

TEST(Anp, Case2NotifyOneHop) {
  // Fig. 4, failure of f−g one level below the fault tolerance: f notifies
  // its parents, which have second connections to f's pod.
  const Topology topo = make_tree({0, 1, 0});
  AnpSimulation anp(topo);
  const SwitchId f = topo.switch_at(2, 0);
  // f's downlink to an edge switch (c_2 = 1).
  const FailureReport report =
      anp.simulate_link_failure(topo.down_neighbors(f)[0].link);
  EXPECT_GT(report.messages_sent, 0u);
  EXPECT_EQ(report.max_update_hops, 1);
  const DelayModel delays;
  EXPECT_NEAR(report.convergence_time_ms,
              delays.anp_processing + delays.propagation, 1e-9);
}

TEST(Anp, Case3NotifyTwoHops) {
  // Fig. 5 (FTV <1,0,0>): failure at L2; the nearest fault tolerance is at
  // L4, two hops above.
  const Topology topo = make_tree({1, 0, 0});
  AnpSimulation anp(topo);
  const SwitchId f = topo.switch_at(2, 0);
  const FailureReport report =
      anp.simulate_link_failure(topo.down_neighbors(f)[0].link);
  EXPECT_EQ(report.max_update_hops, 2);
  const DelayModel delays;
  EXPECT_NEAR(report.convergence_time_ms,
              2 * (delays.anp_processing + delays.propagation), 1e-9);
}

TEST(Anp, UpwardFailureIsSilent) {
  // §6: upward-segment failures require no notifications at all — but here
  // the *upper* endpoint of the same physical link may need to notify.
  // Pick a top-level link in a tree with top fault tolerance: the top
  // switch has c = 2 links to the pod, so even it stays silent.
  const Topology topo = make_tree({1, 0, 0});
  AnpSimulation anp(topo);
  const SwitchId top = topo.switch_at(4, 0);
  const FailureReport report =
      anp.simulate_link_failure(topo.down_neighbors(top)[0].link);
  EXPECT_EQ(report.messages_sent, 0u);
  EXPECT_EQ(report.switches_reacted, 2u);  // both endpoints, locally
}

TEST(Anp, InterSubtreeTrafficRestoredFaithful) {
  // Faithful (upward-only) ANP: flows whose apex is above the failure are
  // repaired.  Fail f−g at L2 in the Fig. 4 tree and check flows from a
  // remote pod to the affected edge.
  const Topology topo = make_tree({0, 1, 0});
  AnpSimulation anp(topo);
  const SwitchId f = topo.switch_at(2, 0);
  const auto& dead = topo.down_neighbors(f)[0];
  const SwitchId g = topo.switch_of(dead.node);
  ASSERT_EQ(topo.level_of(g), 1);
  (void)anp.simulate_link_failure(dead.link);

  const TableRouter router(anp.tables());
  const auto hosts = topo.hosts_of_edge(g);
  // Sources from the other half of the tree (different L3 pod subtree).
  const auto far_host =
      HostId{static_cast<std::uint32_t>(topo.num_hosts() - 1)};
  for (const HostId dst : hosts) {
    for (std::uint64_t seed = 0; seed < 4; ++seed) {
      WalkOptions options;
      options.flow_seed = seed;
      EXPECT_TRUE(
          walk_packet(topo, router, anp.overlay(), far_host, dst, options)
              .delivered())
          << "seed " << seed;
    }
  }
}

TEST(Anp, IntraPodGapExistsFaithfulAndClosesExtended) {
  // The documented §6 gap: with upward-only notifications some intra-pod
  // flows stay broken; the notify_children extension repairs them.
  const Topology topo = make_tree({0, 1, 0});

  AnpSimulation faithful(topo);
  const SwitchId f = topo.switch_at(2, 0);
  const LinkId dead = topo.down_neighbors(f)[0].link;
  (void)faithful.simulate_link_failure(dead);
  const TableRouter faithful_router(faithful.tables());
  const auto broken =
      measure_all_pairs(topo, faithful_router, faithful.overlay());
  EXPECT_GT(broken.undelivered(), 0u);

  AnpOptions extended;
  extended.notify_children = true;
  AnpSimulation fixed(topo, DelayModel{}, extended);
  (void)fixed.simulate_link_failure(dead);
  const TableRouter fixed_router(fixed.tables());
  EXPECT_EQ(measure_all_pairs(topo, fixed_router, fixed.overlay())
                .undelivered(),
            0u);
}

TEST(Anp, FatTreeCannotMaskFailures) {
  // With FTV <0,…,0> there is no redundancy to exploit: packets to the cut
  // subtree are lost until global re-convergence (which ANP never does).
  const Topology topo = make_tree({0, 0});
  AnpSimulation anp(topo);
  const SwitchId agg = topo.switch_at(2, 0);
  (void)anp.simulate_link_failure(topo.down_neighbors(agg)[0].link);
  const TableRouter router(anp.tables());
  EXPECT_GT(measure_all_pairs(topo, router, anp.overlay()).undelivered(), 0u);
}

TEST(Anp, RecoveryRestoresTablesExactly) {
  const Topology topo = make_tree({1, 0, 0});
  AnpSimulation anp(topo);
  const RoutingState initial = anp.tables();
  for (Level lvl = 2; lvl <= topo.levels(); ++lvl) {
    for (const LinkId link : topo.links_at_level(lvl)) {
      (void)anp.simulate_link_failure(link);
      (void)anp.simulate_link_recovery(link);
    }
  }
  EXPECT_EQ(switches_with_changed_tables(initial, anp.tables()), 0u);
}

TEST(Anp, RecoveryRestoresTablesExtendedMode) {
  const Topology topo = make_tree({0, 1, 0});
  AnpOptions extended;
  extended.notify_children = true;
  AnpSimulation anp(topo, DelayModel{}, extended);
  const RoutingState initial = anp.tables();
  for (Level lvl = 2; lvl <= topo.levels(); ++lvl) {
    for (const LinkId link : topo.links_at_level(lvl)) {
      (void)anp.simulate_link_failure(link);
      (void)anp.simulate_link_recovery(link);
    }
  }
  EXPECT_EQ(switches_with_changed_tables(initial, anp.tables()), 0u);
}

TEST(Anp, OverlappingFailuresThenRecoveries) {
  const Topology topo = make_tree({1, 0, 0});
  AnpSimulation anp(topo);
  const RoutingState initial = anp.tables();
  const LinkId a = topo.links_at_level(2)[0];
  const LinkId b = topo.links_at_level(3)[3];
  (void)anp.simulate_link_failure(a);
  (void)anp.simulate_link_failure(b);
  (void)anp.simulate_link_recovery(b);
  (void)anp.simulate_link_recovery(a);
  EXPECT_EQ(switches_with_changed_tables(initial, anp.tables()), 0u);
}

TEST(Anp, ReactionCountsStayLocal) {
  // The headline claim: ANP involves a small subset of switches, not the
  // whole tree.
  const Topology topo = make_tree({1, 0, 0});
  AnpSimulation anp(topo);
  for (Level lvl = 2; lvl <= topo.levels(); ++lvl) {
    for (const LinkId link : topo.links_at_level(lvl)) {
      const FailureReport report = anp.simulate_link_failure(link);
      EXPECT_LT(report.switches_reacted, topo.num_switches() / 2)
          << "level " << lvl;
      (void)anp.simulate_link_recovery(link);
    }
  }
}

TEST(Anp, ConvergenceScalesWithDistanceToFaultTolerance) {
  const Topology topo = make_tree({1, 0, 0});
  AnpSimulation anp(topo);
  SimTime previous = 1e18;
  for (Level lvl = 2; lvl <= topo.levels(); ++lvl) {
    const FailureReport report =
        anp.simulate_link_failure(topo.links_at_level(lvl)[0]);
    EXPECT_LT(report.convergence_time_ms, previous);
    previous = report.convergence_time_ms;
    (void)anp.simulate_link_recovery(topo.links_at_level(lvl)[0]);
  }
}

TEST(Anp, DoubleFailureRejected) {
  const Topology topo = make_tree({0, 0});
  AnpSimulation anp(topo);
  const LinkId link = topo.links_at_level(2)[0];
  (void)anp.simulate_link_failure(link);
  EXPECT_THROW(anp.simulate_link_failure(link), PreconditionError);
  (void)anp.simulate_link_recovery(link);
  EXPECT_THROW(anp.simulate_link_recovery(link), PreconditionError);
}

TEST(Anp, InformedIncludesAbsorbers) {
  const Topology topo = make_tree({0, 1, 0});
  AnpSimulation anp(topo);
  const SwitchId f = topo.switch_at(2, 0);
  const FailureReport report =
      anp.simulate_link_failure(topo.down_neighbors(f)[0].link);
  // Endpoints plus f's parents (all of which absorb).
  EXPECT_GE(report.switches_informed, report.switches_reacted);
  EXPECT_LE(report.switches_informed, 6u);
}

}  // namespace
}  // namespace aspen
