// Odds and ends: API surface not central enough for its own suite but
// still worth locking down.
#include <gtest/gtest.h>

#include "src/aspen/generator.h"
#include "src/routing/updown.h"
#include "src/topo/export.h"
#include "src/topo/topology.h"
#include "src/util/contracts.h"
#include "src/util/parallel.h"
#include "src/util/status.h"

namespace aspen {
namespace {

TEST(MiscCoverage, DotWithoutRanking) {
  const Topology topo = Topology::build(fat_tree(3, 4));
  DotOptions options;
  options.rank_by_level = false;
  const std::string dot = to_dot(topo, options);
  EXPECT_EQ(dot.find("rank=same"), std::string::npos);
  EXPECT_NE(dot.find("s0 -- "), std::string::npos);

  options.rank_by_level = true;
  EXPECT_NE(to_dot(topo, options).find("rank=same"), std::string::npos);
}

TEST(MiscCoverage, ForwardingTableReachableCount) {
  const Topology topo = Topology::build(fat_tree(3, 4));
  const RoutingState routes = compute_updown_routes(topo);
  const SwitchId core = topo.switch_at(3, 0);
  EXPECT_EQ(routes.table(core).reachable_count(), topo.params().S);

  LinkStateOverlay overlay(topo);
  const SwitchId edge0 = topo.switch_at(1, 0);
  for (const auto& nb : topo.up_neighbors(edge0)) overlay.fail(nb.link);
  const RoutingState degraded = compute_updown_routes(topo, overlay);
  EXPECT_EQ(degraded.table(core).reachable_count(), topo.params().S - 1);
}

TEST(MiscCoverage, DescribeStringsAreInformative) {
  const Topology topo =
      Topology::build(generate_tree(4, 6, FaultToleranceVector{0, 2, 0}),
                      StripingConfig{StripingKind::kRotated, 0});
  const std::string desc = topo.describe();
  EXPECT_NE(desc.find("n=4"), std::string::npos);
  EXPECT_NE(desc.find("rotated"), std::string::npos);
  EXPECT_NE(desc.find("hosts=54"), std::string::npos);
}

TEST(MiscCoverage, SwitchesAtLevelBounds) {
  const TreeParams t = fat_tree(4, 4);
  EXPECT_EQ(t.switches_at_level(1), t.S);
  EXPECT_EQ(t.switches_at_level(4), t.S / 2);
  EXPECT_THROW((void)t.switches_at_level(0), PreconditionError);
  EXPECT_THROW((void)t.switches_at_level(5), PreconditionError);
}

TEST(MiscCoverage, AggregationLevelBounds) {
  const TreeParams t = fat_tree(3, 4);
  EXPECT_THROW((void)t.aggregation_at_level(1), PreconditionError);
  EXPECT_THROW((void)t.fault_tolerance_at_level(4), PreconditionError);
}

TEST(MiscCoverage, PodQueryBounds) {
  const Topology topo = Topology::build(fat_tree(3, 4));
  EXPECT_THROW((void)topo.pod_members(2, PodId{99}), PreconditionError);
  EXPECT_THROW((void)topo.parent_pod(3, PodId{0}), PreconditionError);
  EXPECT_THROW((void)topo.child_pods(1, PodId{0}), PreconditionError);
  EXPECT_THROW((void)topo.pods_at_level(0), PreconditionError);
  EXPECT_THROW((void)topo.links_at_level(9), PreconditionError);
  EXPECT_THROW((void)topo.hosts_of_edge(topo.switch_at(2, 0)),
               PreconditionError);
}

TEST(MiscCoverage, NodeRangeChecks) {
  const Topology topo = Topology::build(fat_tree(3, 4));
  EXPECT_THROW((void)topo.node_of(SwitchId{999}), PreconditionError);
  EXPECT_THROW((void)topo.node_of(HostId{999}), PreconditionError);
  EXPECT_THROW((void)topo.link(LinkId{9999}), PreconditionError);
  EXPECT_THROW((void)topo.level_of(SwitchId{999}), PreconditionError);
  EXPECT_THROW((void)topo.host_uplink(HostId{999}), PreconditionError);
}

TEST(MiscCoverage, FindLinkReturnsInvalidForStrangers) {
  const Topology topo = Topology::build(fat_tree(3, 4));
  // An agg and an edge switch in a different pod share no link.
  EXPECT_FALSE(
      topo.find_link(topo.switch_at(2, 0), topo.switch_at(1, 7)).valid());
  std::vector<LinkId> between;
  topo.links_between(topo.switch_at(2, 0), topo.switch_at(1, 7), between);
  EXPECT_TRUE(between.empty());
}

// Paranoid audits combined with a multi-threaded routing pool: every other
// routing test here runs at the default (single orchestrator) thread count
// or the default audit level, leaving the paranoid × threads>1 cell of the
// matrix untested before this case existed.
TEST(MiscCoverage, ParanoidThreadedRecomputeMatchesFresh) {
  const contracts::ScopedPolicy paranoid(contracts::policy(),
                                         contracts::AuditLevel::kParanoid);
  const Topology topo =
      Topology::build(generate_tree(4, 6, FaultToleranceVector{0, 2, 0}));
  LinkStateOverlay overlay(topo);
  for (const int threads : {2, 4}) {
    parallel::set_num_threads(threads);
    RoutingState state =
        compute_updown_routes(topo, overlay, DestGranularity::kEdge);
    const LinkId link = topo.links_at_level(2)[1];
    overlay.fail(link);
    const LinkId changed[] = {link};
    (void)recompute_updown_routes(topo, overlay, state, changed);
    const RoutingState fresh =
        compute_updown_routes(topo, overlay, DestGranularity::kEdge);
    for (std::size_t s = 0; s < fresh.tables.size(); ++s) {
      ASSERT_TRUE(fresh.tables[s] == state.tables[s])
          << "threads=" << threads << " sw " << s;
    }
    overlay.recover(link);
  }
  parallel::set_num_threads(0);
}

}  // namespace
}  // namespace aspen
