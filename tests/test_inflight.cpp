// Tests for the in-flight window-of-vulnerability measurement (§8.4).
#include <gtest/gtest.h>

#include "src/aspen/fixed_hosts.h"
#include "src/aspen/generator.h"
#include "src/proto/experiment.h"
#include "src/proto/inflight.h"
#include "src/routing/updown.h"
#include "src/util/rng.h"
#include "src/util/status.h"

namespace aspen {
namespace {

std::vector<Flow> all_cross_flows(const Topology& topo) {
  // One flow from every host to a host in the "opposite" half.
  std::vector<Flow> flows;
  const auto hosts = static_cast<std::uint32_t>(topo.num_hosts());
  for (std::uint32_t s = 0; s < hosts; ++s) {
    flows.push_back(Flow{HostId{s}, HostId{(s + hosts / 2) % hosts}});
  }
  return flows;
}

TEST(Inflight, NoFailureMeansNoLoss) {
  const Topology topo = Topology::build(fat_tree(3, 4));
  AnpSimulation anp(topo);
  const RoutingState before = anp.tables();
  FailureReport empty_report;
  empty_report.table_change_completed.assign(
      topo.num_switches(), FailureReport::kNoChange);
  const LinkStateOverlay intact(topo);
  for (const Flow& flow : all_cross_flows(topo)) {
    const WalkResult walk = walk_during_convergence(
        topo, before, before, empty_report, intact, flow.src, flow.dst, 0.0);
    EXPECT_TRUE(walk.delivered());
  }
}

TEST(Inflight, LossStopsAfterConvergence) {
  // Packets injected after every switch has updated see only new tables:
  // on a coverable failure under extended ANP, zero loss.
  const Topology topo =
      Topology::build(generate_tree(4, 4, FaultToleranceVector{1, 0, 0}));
  AnpOptions extended;
  extended.notify_children = true;
  const LinkId link = topo.links_at_level(2)[0];
  const auto curve = run_window_experiment(
      ProtocolKind::kAnp, topo, link, all_cross_flows(topo),
      {0.0, 10.0, 1000.0}, DelayModel{}, extended);
  ASSERT_EQ(curve.size(), 3u);
  // Long after convergence: no loss.
  EXPECT_EQ(curve[2].lost, 0u);
  // At t=0 some flows race into the dead region.
  EXPECT_GE(curve[0].lost, curve[2].lost);
}

TEST(Inflight, AnpWindowShorterThanLsp) {
  const int k = 4;
  const int n = 3;
  const Topology fat = Topology::build(fat_tree(n, k));
  const Topology aspen =
      Topology::build(design_fixed_host_tree(n, k, /*extra_levels=*/1));

  // Sweep injection times; the window length is the last sample with loss.
  std::vector<SimTime> times;
  for (SimTime t = 0.0; t <= 1500.0; t += 25.0) times.push_back(t);

  const auto window_end = [&](const std::vector<WindowSample>& curve) {
    SimTime end = 0.0;
    for (const WindowSample& s : curve) {
      if (s.lost > 0) end = s.inject_ms;
    }
    return end;
  };

  AnpOptions extended;
  extended.notify_children = true;
  // Pick the same structural failure in both trees: an L2 downlink.
  const auto lsp_curve = run_window_experiment(
      ProtocolKind::kLsp, fat, fat.links_at_level(2)[0],
      all_cross_flows(fat), times);
  const auto anp_curve = run_window_experiment(
      ProtocolKind::kAnp, aspen, aspen.links_at_level(2)[0],
      all_cross_flows(aspen), times, DelayModel{}, extended);

  const SimTime lsp_window = window_end(lsp_curve);
  const SimTime anp_window = window_end(anp_curve);
  EXPECT_GT(lsp_window, 250.0);   // LSA-rate reaction
  EXPECT_LT(anp_window, 100.0);   // notification-rate reaction
  EXPECT_GT(lsp_window, 3 * anp_window);
}

TEST(Inflight, UncoveredFailureLeaksForever) {
  // Fat tree + faithful ANP: the loss never stops (no redundancy and no
  // global re-convergence).
  const Topology topo = Topology::build(fat_tree(3, 4));
  const LinkId link = topo.links_at_level(2)[0];
  const auto curve =
      run_window_experiment(ProtocolKind::kAnp, topo, link,
                            all_cross_flows(topo), {0.0, 10'000.0});
  EXPECT_GT(curve[1].lost, 0u);
}

TEST(Inflight, CurveIsMonotoneOnceConverged) {
  const Topology topo =
      Topology::build(generate_tree(4, 4, FaultToleranceVector{0, 1, 0}));
  const LinkId link = topo.links_at_level(2)[0];
  AnpOptions extended;
  extended.notify_children = true;
  std::vector<SimTime> times{0.0, 20.0, 40.0, 80.0, 160.0, 320.0};
  const auto curve = run_window_experiment(ProtocolKind::kAnp, topo, link,
                                           all_cross_flows(topo), times,
                                           DelayModel{}, extended);
  // After the final change time (<= convergence), loss is zero and stays.
  EXPECT_EQ(curve.back().lost, 0u);
}

TEST(Inflight, ReportWithoutChangeTimesRejected) {
  const Topology topo = Topology::build(fat_tree(3, 4));
  AnpSimulation anp(topo);
  const FailureReport bogus;  // empty table_change_completed
  const LinkStateOverlay intact(topo);
  EXPECT_THROW((void)walk_during_convergence(topo, anp.tables(),
                                             anp.tables(), bogus, intact,
                                             HostId{0}, HostId{8}, 0.0),
               PreconditionError);
}

TEST(Inflight, RecoveryTransitionNeverDropsPackets) {
  // The recovery-side window: tables move from avoid-the-link back to
  // use-the-link while the link is already up.  Both generations of
  // routes are valid on the healed fabric, so packets injected at any
  // instant of the transition must get through.
  const Topology topo =
      Topology::build(generate_tree(4, 4, FaultToleranceVector{1, 0, 0}));
  const LinkId link = topo.links_at_level(2)[0];
  AnpOptions extended;
  extended.notify_children = true;
  AnpSimulation anp(topo, DelayModel{}, extended);
  (void)anp.simulate_link_failure(link);
  const RoutingState during_failure = anp.tables();
  const FailureReport recovery = anp.simulate_link_recovery(link);
  const RoutingState healed = anp.tables();
  ASSERT_GT(switches_with_changed_tables(during_failure, healed), 0u);

  for (const SimTime inject :
       {0.0, 1.0, 5.0, 10.0, 20.0, 50.0, recovery.convergence_time_ms,
        recovery.convergence_time_ms + 100.0}) {
    for (const Flow& flow : all_cross_flows(topo)) {
      const WalkResult walk = walk_during_convergence(
          topo, during_failure, healed, recovery, anp.overlay(), flow.src,
          flow.dst, inject);
      EXPECT_TRUE(walk.delivered())
          << "flow " << flow.src.value() << "->" << flow.dst.value()
          << " lost at t=" << inject;
    }
  }
}

TEST(Inflight, GrayWalkDeterministicAndConsistentWithPacketWalk) {
  // The in-flight walker and the plain packet walker key their gray-drop
  // hash identically, so the same pinned seed gives the same fate.
  const Topology topo = Topology::build(fat_tree(3, 4));
  AnpSimulation anp(topo);
  LinkStateOverlay actual(topo);
  actual.set_gray(topo.host_uplink(HostId{5}).link, 0.5);
  FailureReport empty_report;
  empty_report.table_change_completed.assign(topo.num_switches(),
                                             FailureReport::kNoChange);
  const TableRouter router(anp.tables());
  WalkOptions options;
  options.health_seed = 7;
  for (std::uint32_t s = 0; s < topo.num_hosts(); ++s) {
    if (s == 5) continue;
    const WalkResult inflight = walk_during_convergence(
        topo, anp.tables(), anp.tables(), empty_report, actual, HostId{s},
        HostId{5}, 0.0, options);
    const WalkResult again = walk_during_convergence(
        topo, anp.tables(), anp.tables(), empty_report, actual, HostId{s},
        HostId{5}, 0.0, options);
    const WalkResult plain =
        walk_packet(topo, router, actual, HostId{s}, HostId{5}, options);
    EXPECT_EQ(inflight.delivered(), again.delivered());
    EXPECT_EQ(inflight.delivered(), plain.delivered());
  }
}

}  // namespace
}  // namespace aspen
