// Tests for packet walking — including the paper's §2 doomed-packet story.
#include <gtest/gtest.h>

#include "src/aspen/generator.h"
#include "src/routing/packet_walk.h"
#include "src/routing/reachability.h"
#include "src/routing/updown.h"
#include "src/util/rng.h"
#include "src/util/status.h"

namespace aspen {
namespace {

TEST(PacketWalk, DeliversOnIntactFatTree) {
  const Topology topo = Topology::build(fat_tree(3, 4));
  const LinkStateOverlay actual(topo);
  const StructuralRouter router(topo);
  const WalkResult r =
      walk_packet(topo, router, actual, HostId{0}, HostId{15});
  EXPECT_TRUE(r.delivered());
  EXPECT_EQ(r.hops, 6);  // host-edge, up, up, down, down, edge-host
  EXPECT_EQ(r.path.size(), 7u);
  EXPECT_EQ(r.path.front(), topo.node_of(HostId{0}));
  EXPECT_EQ(r.path.back(), topo.node_of(HostId{15}));
}

TEST(PacketWalk, IntraPodPathIsShort) {
  const Topology topo = Topology::build(fat_tree(3, 4));
  const LinkStateOverlay actual(topo);
  const StructuralRouter router(topo);
  // Hosts 0 and 2 are on edges 0 and 1 — both in pod 0: 4 links.
  const WalkResult r = walk_packet(topo, router, actual, HostId{0}, HostId{2});
  EXPECT_TRUE(r.delivered());
  EXPECT_EQ(r.hops, 4);
}

TEST(PacketWalk, SameEdgePathIsTwoHops) {
  const Topology topo = Topology::build(fat_tree(3, 4));
  const LinkStateOverlay actual(topo);
  const StructuralRouter router(topo);
  const WalkResult r = walk_packet(topo, router, actual, HostId{0}, HostId{1});
  EXPECT_TRUE(r.delivered());
  EXPECT_EQ(r.hops, 2);
}

TEST(PacketWalk, StructuralMatchesComputedRoutesWhenIntact) {
  const Topology topo =
      Topology::build(generate_tree(4, 4, FaultToleranceVector{0, 1, 0}));
  const LinkStateOverlay actual(topo);
  const StructuralRouter structural(topo);
  const RoutingState routes = compute_updown_routes(topo);
  const TableRouter tables(routes);
  for (std::uint32_t s = 0; s < topo.num_hosts(); s += 3) {
    for (std::uint32_t d = 0; d < topo.num_hosts(); d += 5) {
      if (s == d) continue;
      const WalkResult a =
          walk_packet(topo, structural, actual, HostId{s}, HostId{d});
      const WalkResult b =
          walk_packet(topo, tables, actual, HostId{s}, HostId{d});
      EXPECT_TRUE(a.delivered());
      EXPECT_TRUE(b.delivered());
      EXPECT_EQ(a.hops, b.hops);
    }
  }
}

TEST(PacketWalk, StaleKnowledgeDoomsPacket) {
  // §2: a packet from x to y is doomed the moment an upstream switch picks
  // a next hop whose every downstream path crosses the failed link.
  const Topology topo = Topology::build(fat_tree(3, 4));
  const StructuralRouter stale(topo);  // believes the network is intact

  // Fail the single link from agg (pod 3, member 0) down to edge 6 and
  // walk packets to a host on edge 6 from a remote pod, trying all flow
  // seeds so ECMP explores both cores: some flow must die at the agg.
  const SwitchId agg = topo.switch_at(2, 6);
  const SwitchId edge = topo.switch_at(1, 6);
  LinkStateOverlay actual(topo);
  actual.fail(topo.find_link(agg, edge));

  int dropped = 0;
  int delivered = 0;
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    WalkOptions options;
    options.flow_seed = seed;
    const WalkResult r =
        walk_packet(topo, stale, actual, HostId{0}, HostId{12}, options);
    if (r.delivered()) {
      ++delivered;
    } else {
      EXPECT_EQ(r.status, WalkStatus::kDropped);
      EXPECT_EQ(r.dropped_at, agg);
      ++dropped;
    }
  }
  EXPECT_GT(dropped, 0);   // the doomed paths exist
  EXPECT_GT(delivered, 0); // so do healthy ones (other agg)
}

TEST(PacketWalk, LocalAwarenessSavesUpwardFailures) {
  // §6: "a packet can travel upward towards any Ln switch, and a switch at
  // the bottom of a failed link can simply select an alternate upward-
  // facing output port."
  const Topology topo = Topology::build(fat_tree(3, 4));
  const StructuralRouter stale(topo);
  const SwitchId edge0 = topo.switch_at(1, 0);
  LinkStateOverlay actual(topo);
  actual.fail(topo.up_neighbors(edge0)[0].link);

  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    WalkOptions options;
    options.flow_seed = seed;
    EXPECT_TRUE(walk_packet(topo, stale, actual, HostId{0}, HostId{15},
                            options)
                    .delivered());
  }

  // Without local awareness the hashed-to-dead-port flows die.
  WalkOptions blind;
  blind.local_link_awareness = false;
  int dropped = 0;
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    blind.flow_seed = seed;
    if (!walk_packet(topo, stale, actual, HostId{0}, HostId{15}, blind)
             .delivered()) {
      ++dropped;
    }
  }
  EXPECT_GT(dropped, 0);
}

TEST(PacketWalk, AspenCase1LocalReroute) {
  // Fig. 4, case 1 (failure at the fault-tolerant level): the switch above
  // the failure still has a second link into the pod; stale knowledge plus
  // local awareness delivers every flow with no notifications at all.
  const Topology topo =
      Topology::build(generate_tree(4, 4, FaultToleranceVector{0, 1, 0}));
  const StructuralRouter stale(topo);
  // Fail one of the two links from an L3 switch into its child pod.
  const SwitchId l3 = topo.switch_at(3, 0);
  LinkStateOverlay actual(topo);
  actual.fail(topo.down_neighbors(l3)[0].link);

  Rng rng(3);
  const ReachabilityStats stats =
      measure_sampled(topo, stale, actual, 2000, rng);
  EXPECT_EQ(stats.undelivered(), 0u);
}

TEST(PacketWalk, HostLinkFailureDropsAtEdge) {
  const Topology topo = Topology::build(fat_tree(3, 4));
  const StructuralRouter router(topo);
  LinkStateOverlay actual(topo);
  actual.fail(topo.host_uplink(HostId{5}).link);
  // Packets to host 5 die at its edge switch.
  const WalkResult to = walk_packet(topo, router, actual, HostId{0}, HostId{5});
  EXPECT_EQ(to.status, WalkStatus::kDropped);
  EXPECT_EQ(to.dropped_at, topo.edge_switch_of(HostId{5}));
  // Packets from host 5 die immediately (source link).
  const WalkResult from =
      walk_packet(topo, router, actual, HostId{5}, HostId{0});
  EXPECT_EQ(from.status, WalkStatus::kDropped);
  EXPECT_FALSE(from.dropped_at.valid());
}

TEST(PacketWalk, NoRouteWhenTablesEmpty) {
  const Topology topo = Topology::build(fat_tree(3, 4));
  LinkStateOverlay failed(topo);
  const SwitchId edge0 = topo.switch_at(1, 0);
  for (const auto& nb : topo.up_neighbors(edge0)) failed.fail(nb.link);
  // Tables computed on the degraded network have no route to edge 0.
  const RoutingState routes = compute_updown_routes(topo, failed);
  const TableRouter router(routes);
  const WalkResult r = walk_packet(topo, router, failed, HostId{4}, HostId{0});
  EXPECT_EQ(r.status, WalkStatus::kNoRoute);
}

TEST(PacketWalk, MeasureAllPairsIntact) {
  const Topology topo = Topology::build(fat_tree(3, 4));
  const LinkStateOverlay actual(topo);
  const StructuralRouter router(topo);
  const ReachabilityStats stats = measure_all_pairs(topo, router, actual);
  EXPECT_EQ(stats.flows, 16u * 15u);
  EXPECT_EQ(stats.delivered, stats.flows);
  EXPECT_EQ(stats.affected_destinations, 0u);
  EXPECT_DOUBLE_EQ(stats.delivery_rate(), 1.0);
  EXPECT_GT(stats.average_hops, 2.0);
  EXPECT_LT(stats.average_hops, 6.0);
}

TEST(PacketWalk, MeasureSampledDeterministic) {
  const Topology topo = Topology::build(fat_tree(3, 4));
  const LinkStateOverlay actual(topo);
  const StructuralRouter router(topo);
  Rng rng1(5);
  Rng rng2(5);
  const auto a = measure_sampled(topo, router, actual, 500, rng1);
  const auto b = measure_sampled(topo, router, actual, 500, rng2);
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_EQ(a.flows, 500u);
}

TEST(PacketWalk, MeasureToEdgeRange) {
  const Topology topo = Topology::build(fat_tree(3, 4));
  const LinkStateOverlay actual(topo);
  const StructuralRouter router(topo);
  const auto stats = measure_to_edge_range(topo, router, actual, 0, 1);
  // Destinations: 4 hosts on edges 0..1; sources: all other hosts.
  EXPECT_EQ(stats.flows, 4u * 15u);
  EXPECT_EQ(stats.undelivered(), 0u);
  EXPECT_THROW((void)measure_to_edge_range(topo, router, actual, 5, 99),
               PreconditionError);
}

// ---- Gray and flapping link health ------------------------------------

TEST(PacketWalk, GrayDropIsDeterministicPerFlow) {
  const Topology topo = Topology::build(fat_tree(3, 4));
  const StructuralRouter router(topo);
  LinkStateOverlay actual(topo);
  actual.set_gray(topo.host_uplink(HostId{5}).link, 0.5);

  WalkOptions options;
  options.health_seed = 42;
  std::uint64_t delivered = 0;
  for (std::uint32_t s = 0; s < topo.num_hosts(); ++s) {
    if (s == 5) continue;
    const WalkResult first =
        walk_packet(topo, router, actual, HostId{s}, HostId{5}, options);
    const WalkResult again =
        walk_packet(topo, router, actual, HostId{s}, HostId{5}, options);
    // The gray-drop decision is a pure hash of (seed, link, src, dst):
    // re-walking the same flow under the same pinned seed must agree.
    EXPECT_EQ(first.status, again.status);
    EXPECT_EQ(first.hops, again.hops);
    if (first.delivered()) ++delivered;
  }
  // At 50% loss some flows die and some survive.
  EXPECT_GT(delivered, 0u);
  EXPECT_LT(delivered, static_cast<std::uint64_t>(topo.num_hosts() - 1));
}

TEST(PacketWalk, ApplyHealthFalseIgnoresGray) {
  const Topology topo = Topology::build(fat_tree(3, 4));
  const StructuralRouter router(topo);
  LinkStateOverlay actual(topo);
  actual.set_gray(topo.host_uplink(HostId{5}).link, 1.0);  // drops everything
  WalkOptions pure;
  pure.apply_health = false;
  const WalkResult r =
      walk_packet(topo, router, actual, HostId{0}, HostId{5}, pure);
  EXPECT_TRUE(r.delivered());
  // With health honored, the certain-loss gray link eats the packet.
  const WalkResult lossy =
      walk_packet(topo, router, actual, HostId{0}, HostId{5}, WalkOptions{});
  EXPECT_FALSE(lossy.delivered());
}

TEST(PacketWalk, FlappingPhaseGatesTheWalk) {
  const Topology topo = Topology::build(fat_tree(3, 4));
  const StructuralRouter router(topo);
  LinkStateOverlay actual(topo);
  // The host uplink has no alternate port, so the flap phase decides.
  actual.set_flapping(topo.host_uplink(HostId{5}).link,
                      /*period_ms=*/100.0, /*duty=*/0.5);
  WalkOptions up_phase;
  up_phase.at_time_ms = 10.0;  // fmod(10, 100) = 10 < 50: port up
  EXPECT_TRUE(walk_packet(topo, router, actual, HostId{0}, HostId{5},
                          up_phase)
                  .delivered());
  WalkOptions down_phase;
  down_phase.at_time_ms = 60.0;  // fmod(60, 100) = 60 >= 50: port down
  EXPECT_FALSE(walk_packet(topo, router, actual, HostId{0}, HostId{5},
                           down_phase)
                   .delivered());
  // A full period later the phase repeats.
  WalkOptions next_period;
  next_period.at_time_ms = 110.0;
  EXPECT_TRUE(walk_packet(topo, router, actual, HostId{0}, HostId{5},
                          next_period)
                  .delivered());
}

TEST(PacketWalk, FailingALinkClearsItsDegradation) {
  const Topology topo = Topology::build(fat_tree(3, 4));
  LinkStateOverlay actual(topo);
  const LinkId link = topo.links_at_level(2)[0];
  actual.set_gray(link, 0.4);
  EXPECT_EQ(actual.health(link).health, LinkHealth::kGray);
  EXPECT_EQ(actual.num_degraded(), 1u);
  actual.fail(link);
  EXPECT_EQ(actual.health(link).health, LinkHealth::kDown);
  EXPECT_EQ(actual.loss_now(link, 0.0), 1.0);
  actual.recover(link);
  // The gray spell does not survive a real down/up cycle.
  EXPECT_EQ(actual.health(link).health, LinkHealth::kUp);
  EXPECT_EQ(actual.num_degraded(), 0u);
  EXPECT_EQ(actual.loss_now(link, 0.0), 0.0);
}

}  // namespace
}  // namespace aspen
