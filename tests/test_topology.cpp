// Tests for concrete topology construction (§3).
#include <gtest/gtest.h>

#include <set>

#include "src/aspen/generator.h"
#include "src/topo/export.h"
#include "src/topo/link_state.h"
#include "src/topo/topology.h"
#include "src/util/status.h"

namespace aspen {
namespace {

TEST(Topology, CountsMatchParams) {
  for (const auto& [n, k] :
       std::vector<std::pair<int, int>>{{3, 4}, {4, 4}, {3, 8}, {4, 6}}) {
    const TreeParams params = fat_tree(n, k);
    const Topology topo = Topology::build(params);
    SCOPED_TRACE(topo.describe());
    EXPECT_EQ(topo.num_switches(), params.total_switches());
    EXPECT_EQ(topo.num_hosts(), params.num_hosts());
    EXPECT_EQ(topo.num_links(), params.total_links());
    EXPECT_EQ(topo.num_nodes(), topo.num_switches() + topo.num_hosts());
  }
}

TEST(Topology, EveryPortIsUsedExactlyOnce) {
  const Topology topo = Topology::build(fat_tree(3, 4));
  for (std::uint32_t v = 0; v < topo.num_switches(); ++v) {
    const SwitchId s{v};
    EXPECT_EQ(topo.up_neighbors(s).size() + topo.down_neighbors(s).size(),
              4u)
        << to_string(s);
  }
}

TEST(Topology, LevelStructure) {
  const Topology topo = Topology::build(fat_tree(3, 4));
  // S = 8: L1 ids 0..7, L2 ids 8..15, L3 ids 16..19.
  EXPECT_EQ(topo.level_of(SwitchId{0}), 1);
  EXPECT_EQ(topo.level_of(SwitchId{7}), 1);
  EXPECT_EQ(topo.level_of(SwitchId{8}), 2);
  EXPECT_EQ(topo.level_of(SwitchId{15}), 2);
  EXPECT_EQ(topo.level_of(SwitchId{16}), 3);
  EXPECT_EQ(topo.level_of(SwitchId{19}), 3);
  EXPECT_EQ(topo.switch_at(2, 0), SwitchId{8});
  EXPECT_EQ(topo.index_in_level(SwitchId{9}), 1u);
  EXPECT_THROW((void)topo.switch_at(3, 4), PreconditionError);
}

TEST(Topology, TopLevelSwitchesHaveNoUplinksAndKDownlinks) {
  const Topology topo = Topology::build(fat_tree(3, 4));
  for (std::uint64_t i = 0; i < 4; ++i) {
    const SwitchId s = topo.switch_at(3, i);
    EXPECT_TRUE(topo.up_neighbors(s).empty());
    EXPECT_EQ(topo.down_neighbors(s).size(), 4u);
  }
}

TEST(Topology, EdgeSwitchesServeHalfPortsOfHosts) {
  const Topology topo = Topology::build(fat_tree(3, 4));
  for (std::uint64_t i = 0; i < topo.params().S; ++i) {
    const SwitchId edge = topo.switch_at(1, i);
    const auto hosts = topo.hosts_of_edge(edge);
    EXPECT_EQ(hosts.size(), 2u);
    for (const HostId h : hosts) {
      EXPECT_EQ(topo.edge_switch_of(h), edge);
      EXPECT_EQ(topo.host_uplink(h).node, topo.node_of(edge));
    }
    std::uint64_t host_neighbors = 0;
    for (const auto& nb : topo.down_neighbors(edge)) {
      if (!topo.is_switch_node(nb.node)) ++host_neighbors;
    }
    EXPECT_EQ(host_neighbors, 2u);
  }
}

TEST(Topology, PodStructure) {
  const Topology topo = Topology::build(fat_tree(3, 4));
  // p_2 = 4 pods of m_2 = 2; p_3 = 1 pod of m_3 = 4.
  EXPECT_EQ(topo.pods_at_level(1), 8u);
  EXPECT_EQ(topo.pods_at_level(2), 4u);
  EXPECT_EQ(topo.pods_at_level(3), 1u);
  const auto pod = topo.pod_members(2, PodId{1});
  ASSERT_EQ(pod.size(), 2u);
  for (const SwitchId s : pod) {
    EXPECT_EQ(topo.pod_of(s), PodId{1});
    EXPECT_EQ(topo.level_of(s), 2);
  }
  EXPECT_EQ(topo.member_index(pod[0]), 0u);
  EXPECT_EQ(topo.member_index(pod[1]), 1u);
}

TEST(Topology, PodsFormATree) {
  const Topology topo = Topology::build(fat_tree(4, 4));
  for (Level level = 2; level <= topo.levels(); ++level) {
    for (std::uint64_t p = 0; p < topo.pods_at_level(level); ++p) {
      for (const PodId child : topo.child_pods(level, PodId{
               static_cast<std::uint32_t>(p)})) {
        EXPECT_EQ(topo.parent_pod(level - 1, child).value(), p);
      }
    }
  }
}

TEST(Topology, PodMembersConnectToSameChildPods) {
  // The defining property of a pod (§3): all members connect to the same
  // set of pods below.
  const Topology topo =
      Topology::build(generate_tree(4, 6, FaultToleranceVector{0, 2, 0}));
  for (Level level = 2; level <= topo.levels(); ++level) {
    for (std::uint64_t p = 0; p < topo.pods_at_level(level); ++p) {
      std::set<std::uint32_t> reference;
      bool first = true;
      for (const SwitchId s : topo.pod_members(level, PodId{
               static_cast<std::uint32_t>(p)})) {
        std::set<std::uint32_t> pods;
        for (const auto& nb : topo.down_neighbors(s)) {
          if (!topo.is_switch_node(nb.node)) continue;
          pods.insert(topo.pod_of(topo.switch_of(nb.node)).value());
        }
        if (first) {
          reference = pods;
          first = false;
        } else {
          EXPECT_EQ(pods, reference);
        }
      }
    }
  }
}

TEST(Topology, NodeIdMapping) {
  const Topology topo = Topology::build(fat_tree(3, 4));
  const NodeId sn = topo.node_of(SwitchId{5});
  EXPECT_TRUE(topo.is_switch_node(sn));
  EXPECT_EQ(topo.switch_of(sn), SwitchId{5});
  const NodeId hn = topo.node_of(HostId{3});
  EXPECT_FALSE(topo.is_switch_node(hn));
  EXPECT_EQ(topo.host_of(hn), HostId{3});
  EXPECT_THROW((void)topo.host_of(sn), PreconditionError);
  EXPECT_THROW((void)topo.switch_of(hn), PreconditionError);
}

TEST(Topology, LinksAreConsistent) {
  const Topology topo = Topology::build(fat_tree(3, 4));
  for (std::uint32_t id = 0; id < topo.num_links(); ++id) {
    const Topology::LinkRec& rec = topo.link(LinkId{id});
    ASSERT_TRUE(topo.is_switch_node(rec.upper));
    const SwitchId upper = topo.switch_of(rec.upper);
    EXPECT_EQ(topo.level_of(upper), rec.upper_level);
    if (topo.is_switch_node(rec.lower)) {
      EXPECT_EQ(topo.level_of(topo.switch_of(rec.lower)),
                rec.upper_level - 1);
    } else {
      EXPECT_EQ(rec.upper_level, 1);
    }
  }
}

TEST(Topology, LinksAtLevelPartitionAllLinks) {
  const Topology topo = Topology::build(fat_tree(4, 4));
  std::uint64_t total = 0;
  for (Level level = 1; level <= topo.levels(); ++level) {
    const auto links = topo.links_at_level(level);
    EXPECT_EQ(links.size(), topo.params().S * 2u);  // S·k/2 per level
    total += links.size();
  }
  EXPECT_EQ(total, topo.num_links());
}

TEST(Topology, FindLinkAndLinksBetween) {
  const Topology topo = Topology::build(fat_tree(3, 4));
  const SwitchId agg = topo.switch_at(2, 0);
  const auto downs = topo.down_neighbors(agg);
  ASSERT_FALSE(downs.empty());
  const SwitchId edge = topo.switch_of(downs[0].node);
  EXPECT_EQ(topo.find_link(agg, edge), downs[0].link);
  std::vector<LinkId> between;
  topo.links_between(agg, edge, between);
  EXPECT_EQ(between.size(), 1u);
  // No link between two edge switches.
  EXPECT_FALSE(topo.find_link(agg, topo.switch_at(1, 7)).valid() &&
               topo.level_of(topo.switch_at(1, 7)) == 2);
}

TEST(Topology, UpDownSymmetry) {
  const Topology topo = Topology::build(fat_tree(4, 4));
  for (std::uint32_t v = 0; v < topo.num_switches(); ++v) {
    const SwitchId s{v};
    for (const auto& nb : topo.up_neighbors(s)) {
      const SwitchId parent = topo.switch_of(nb.node);
      bool found = false;
      for (const auto& back : topo.down_neighbors(parent)) {
        if (back.link == nb.link) {
          EXPECT_EQ(back.node, topo.node_of(s));
          found = true;
        }
      }
      EXPECT_TRUE(found);
    }
  }
}

TEST(Topology, FaultTolerantTreeHasDenserInterconnect) {
  const Topology topo =
      Topology::build(generate_tree(4, 4, FaultToleranceVector{0, 1, 0}));
  // Each L3 switch connects twice to its single child pod (c_3 = 2).
  const SwitchId l3 = topo.switch_at(3, 0);
  std::set<std::uint32_t> pods;
  for (const auto& nb : topo.down_neighbors(l3)) {
    pods.insert(topo.pod_of(topo.switch_of(nb.node)).value());
  }
  EXPECT_EQ(pods.size(), 1u);  // r_3 = 1
  EXPECT_EQ(topo.down_neighbors(l3).size(), 2u);
}

TEST(Topology, LinkStateOverlay) {
  const Topology topo = Topology::build(fat_tree(3, 4));
  LinkStateOverlay overlay(topo);
  EXPECT_EQ(overlay.num_failed(), 0u);
  EXPECT_TRUE(overlay.is_up(LinkId{0}));
  EXPECT_TRUE(overlay.fail(LinkId{0}));
  EXPECT_FALSE(overlay.fail(LinkId{0}));  // idempotent
  EXPECT_FALSE(overlay.is_up(LinkId{0}));
  EXPECT_EQ(overlay.num_failed(), 1u);
  EXPECT_EQ(overlay.failed_links(), (std::vector<LinkId>{LinkId{0}}));
  EXPECT_TRUE(overlay.recover(LinkId{0}));
  EXPECT_FALSE(overlay.recover(LinkId{0}));
  overlay.fail(LinkId{3});
  overlay.fail(LinkId{5});
  overlay.recover_all();
  EXPECT_EQ(overlay.num_failed(), 0u);
}

TEST(TopologyExport, DotContainsAllNodes) {
  const Topology topo = Topology::build(fat_tree(3, 4));
  const std::string dot = to_dot(topo);
  EXPECT_NE(dot.find("graph aspen {"), std::string::npos);
  EXPECT_NE(dot.find("s0 -- "), std::string::npos);
  EXPECT_NE(dot.find("h15"), std::string::npos);

  DotOptions no_hosts;
  no_hosts.include_hosts = false;
  EXPECT_EQ(to_dot(topo, no_hosts).find("h0"), std::string::npos);
}

TEST(TopologyExport, CsvHasOneRowPerLink) {
  const Topology topo = Topology::build(fat_tree(3, 4));
  const std::string csv = to_csv(topo);
  const auto rows = std::count(csv.begin(), csv.end(), '\n');
  EXPECT_EQ(static_cast<std::uint64_t>(rows), topo.num_links() + 1);  // header
  EXPECT_NE(csv.find("link_id,upper,lower,level"), std::string::npos);
}

}  // namespace
}  // namespace aspen
