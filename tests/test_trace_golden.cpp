// Golden-trace regression tests (ISSUE 5): the canonical traced scenarios
// from src/analysis/trace_scenarios.h are snapshotted under tests/golden/
// and any behavioral drift in protocols, detection, or incremental routing
// shows up as a unified diff.  Also pins the determinism contract: traces
// are byte-identical at every worker-thread count.
#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/analysis/trace_scenarios.h"
#include "src/aspen/generator.h"
#include "src/obs/trace.h"
#include "src/topo/topology.h"
#include "src/util/parallel.h"
#include "tests/trace_golden.h"

namespace aspen {
namespace {

Topology fig3_topology(const char* ftv) {
  return Topology::build(
      generate_tree(4, 6, FaultToleranceVector::parse(ftv)));
}

TraceScenarioResult run_scenario(ProtocolKind kind, TraceScenario scenario,
                                 const Topology& topo) {
  TraceScenarioOptions options;
  options.scenario = scenario;
  options.seed = 1;
  options.chaos_events = 6;
  // Bound the ring so LSP's flood-heavy scenarios produce goldens of
  // reviewable size; eviction keeps the newest records and stays
  // deterministic.
  options.trace_capacity = 2048;
  return run_traced_scenario(kind, topo, options);
}

TEST(TraceGolden, AnpSingleFault) {
  const Topology topo = fig3_topology("<0,2,0>");
  const TraceScenarioResult result =
      run_scenario(ProtocolKind::kAnp, TraceScenario::kSingleFault, topo);
  EXPECT_TRUE(golden::matches_golden("anp_single.jsonl", result.jsonl));
}

TEST(TraceGolden, LspSingleFault) {
  const Topology topo = fig3_topology("<0,2,0>");
  const TraceScenarioResult result =
      run_scenario(ProtocolKind::kLsp, TraceScenario::kSingleFault, topo);
  EXPECT_TRUE(golden::matches_golden("lsp_single.jsonl", result.jsonl));
}

TEST(TraceGolden, AnpChaosCampaign) {
  const Topology topo = fig3_topology("<0,2,0>");
  const TraceScenarioResult result =
      run_scenario(ProtocolKind::kAnp, TraceScenario::kChaosCampaign, topo);
  EXPECT_TRUE(golden::matches_golden("anp_chaos.jsonl", result.jsonl));
}

TEST(TraceGolden, LspChaosCampaign) {
  const Topology topo = fig3_topology("<0,2,0>");
  const TraceScenarioResult result =
      run_scenario(ProtocolKind::kLsp, TraceScenario::kChaosCampaign, topo);
  EXPECT_TRUE(golden::matches_golden("lsp_chaos.jsonl", result.jsonl));
}

// The metrics registry snapshot is just as deterministic as the trace.
TEST(TraceGolden, AnpSingleFaultMetrics) {
  const Topology topo = fig3_topology("<0,2,0>");
  const TraceScenarioResult result =
      run_scenario(ProtocolKind::kAnp, TraceScenario::kSingleFault, topo);
  EXPECT_TRUE(
      golden::matches_golden("anp_single_metrics.json", result.metrics_json));
}

// The compact-binary export decodes back to the same records the JSONL
// export printed — for every golden scenario.
TEST(TraceGolden, BinaryRoundTripsToJsonl) {
  const Topology topo = fig3_topology("<0,2,0>");
  for (const ProtocolKind kind : {ProtocolKind::kAnp, ProtocolKind::kLsp}) {
    for (const TraceScenario scenario :
         {TraceScenario::kSingleFault, TraceScenario::kChaosCampaign}) {
      const TraceScenarioResult result = run_scenario(kind, scenario, topo);
      std::vector<obs::OwnedTraceRecord> decoded;
      ASSERT_TRUE(obs::read_binary(result.binary, decoded));
      std::vector<obs::TraceRecord> view;
      view.reserve(decoded.size());
      for (const obs::OwnedTraceRecord& r : decoded) {
        view.push_back({r.seq, r.t_ms, r.kind, r.a, r.b, r.value,
                        r.detail.c_str()});
      }
      EXPECT_EQ(obs::records_to_jsonl(view), result.jsonl)
          << to_cstring(kind) << "/" << to_cstring(scenario);
    }
  }
}

// Satellite: extends test_routing_parallel's thread-identity guarantee to
// the event stream — the trace (both export formats) is a pure function of
// (topology, seed, scenario), not of the worker-thread count.
TEST(TraceDeterminism, ByteIdenticalAcrossThreadCounts) {
  for (const char* ftv : {"<0,2,0>", "<2,0,0>", "<0,2,2>"}) {
    const Topology topo = fig3_topology(ftv);
    for (const TraceScenario scenario :
         {TraceScenario::kSingleFault, TraceScenario::kChaosCampaign}) {
      parallel::set_num_threads(1);
      const TraceScenarioResult base =
          run_scenario(ProtocolKind::kAnp, scenario, topo);
      for (const int threads : {2, 4}) {
        parallel::set_num_threads(threads);
        const TraceScenarioResult other =
            run_scenario(ProtocolKind::kAnp, scenario, topo);
        EXPECT_EQ(base.jsonl, other.jsonl)
            << ftv << "/" << to_cstring(scenario) << " at " << threads
            << " threads";
        EXPECT_EQ(base.binary, other.binary)
            << ftv << "/" << to_cstring(scenario) << " at " << threads
            << " threads";
        EXPECT_EQ(base.metrics_json, other.metrics_json)
            << ftv << "/" << to_cstring(scenario) << " at " << threads
            << " threads";
      }
      parallel::set_num_threads(0);
    }
  }
}

}  // namespace
}  // namespace aspen

// Custom main: strip `--regen-goldens` before gtest parses the command
// line, so `./test_trace_golden --regen-goldens` refreshes tests/golden/.
int main(int argc, char** argv) {
  std::vector<char*> kept;
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--regen-goldens") == 0) {
      aspen::golden::regen_flag() = true;
      continue;
    }
    kept.push_back(argv[i]);
  }
  int kept_argc = static_cast<int>(kept.size());
  kept.push_back(nullptr);
  ::testing::InitGoogleTest(&kept_argc, kept.data());
  return RUN_ALL_TESTS();
}
