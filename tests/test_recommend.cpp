// Tests for the §8.1 practical-tree guidance.
#include <gtest/gtest.h>

#include "src/aspen/generator.h"
#include "src/aspen/recommend.h"
#include "src/util/status.h"

namespace aspen {
namespace {

TEST(Recommend, PaperLength6Budget2Example) {
  // "if an FTV of length 6 can include only two non-zero entries, the ideal
  // placement would be <x,0,0,x,0,0>."
  const auto ftv = recommend_ftv_placement(/*n=*/7, /*budget=*/2, /*ft=*/1);
  EXPECT_EQ(ftv, (FaultToleranceVector{1, 0, 0, 1, 0, 0}));
}

TEST(Recommend, SingleBudgetGoesToTop) {
  EXPECT_EQ(recommend_ftv_placement(4, 1), (FaultToleranceVector{1, 0, 0}));
  EXPECT_EQ(recommend_ftv_placement(6, 1),
            (FaultToleranceVector{1, 0, 0, 0, 0}));
}

TEST(Recommend, FullBudgetIsUniform) {
  EXPECT_EQ(recommend_ftv_placement(4, 3), (FaultToleranceVector{1, 1, 1}));
}

TEST(Recommend, UnevenSegmentsPutLongerFirst) {
  // 5 entries, budget 2: segments of 3 and 2.
  EXPECT_EQ(recommend_ftv_placement(6, 2),
            (FaultToleranceVector{1, 0, 0, 1, 0}));
}

TEST(Recommend, CustomFtValue) {
  EXPECT_EQ(recommend_ftv_placement(4, 2, 3), (FaultToleranceVector{3, 0, 3}));
}

TEST(Recommend, PreconditionsThrow) {
  EXPECT_THROW(recommend_ftv_placement(4, 0), PreconditionError);
  EXPECT_THROW(recommend_ftv_placement(4, 4), PreconditionError);
  EXPECT_THROW(recommend_ftv_placement(4, 1, 0), PreconditionError);
}

TEST(Recommend, TopLevelRedundantTreeHalvesHosts) {
  // §8.1: "A tree with only Ln fault tolerance and an FTV of <1,0,0,…>
  // supports half as many hosts as does a traditional fat tree."
  const TreeParams t = top_level_redundant_tree(4, 16);
  EXPECT_EQ(t.ftv(), (FaultToleranceVector{1, 0, 0}));
  EXPECT_EQ(t.num_hosts(), fat_tree(4, 16).num_hosts() / 2);
}

TEST(Recommend, EvaluatePlacementCoverage) {
  const PlacementQuality top = evaluate_placement({1, 0, 0});
  EXPECT_TRUE(top.covered);
  EXPECT_EQ(top.longest_zero_run, 2);

  const PlacementQuality bottom = evaluate_placement({0, 0, 1});
  EXPECT_FALSE(bottom.covered);  // zeros left of the non-zero entry

  const PlacementQuality fat = evaluate_placement({0, 0, 0});
  EXPECT_FALSE(fat.covered);
  EXPECT_EQ(fat.longest_zero_run, 3);
}

TEST(Recommend, EvaluatePlacementAverageHops) {
  // n=4: <1,0,0> → distances (2,1,0) for i=2..4 → mean 1.
  EXPECT_DOUBLE_EQ(evaluate_placement({1, 0, 0}).average_hops, 1.0);
  // <0,1,0> → (1,0,global=3) → mean 4/3.
  EXPECT_NEAR(evaluate_placement({0, 1, 0}).average_hops, 4.0 / 3.0, 1e-12);
}

TEST(Recommend, RecommendedPlacementIsAlwaysCovered) {
  for (int n = 3; n <= 8; ++n) {
    for (int budget = 1; budget < n - 1; ++budget) {
      const auto ftv = recommend_ftv_placement(n, budget);
      EXPECT_TRUE(evaluate_placement(ftv).covered)
          << "n=" << n << " budget=" << budget << " → " << ftv.to_string();
    }
  }
}

TEST(Recommend, RankPlacementsPrefersTheHeuristic) {
  // Among all valid single-non-zero placements for n=4, k=4, the top-level
  // placement must rank first (it is the only covered one).
  const auto ranked = rank_placements(4, 4, /*budget=*/1);
  ASSERT_FALSE(ranked.empty());
  EXPECT_EQ(ranked.front(), (FaultToleranceVector{1, 0, 0}));
}

TEST(Recommend, RankPlacementsBudget2MatchesHeuristic) {
  const auto ranked = rank_placements(5, 4, /*budget=*/2);
  ASSERT_FALSE(ranked.empty());
  const auto heuristic = recommend_ftv_placement(5, 2);
  // The heuristic placement must be at least as good as the ranked winner.
  const auto best = evaluate_placement(ranked.front());
  const auto ours = evaluate_placement(heuristic);
  EXPECT_TRUE(ours.covered);
  EXPECT_LE(best.average_hops, ours.average_hops + 1e-12);
  EXPECT_DOUBLE_EQ(ours.average_hops, best.average_hops);
}

TEST(Recommend, RankPlacementsOnlyReturnsValidTrees) {
  // n=4, k=6: FTV <1,0,0> is invalid (odd S); ranking must skip it.
  for (const auto& ftv : rank_placements(4, 6, 1)) {
    EXPECT_NE(ftv, (FaultToleranceVector{1, 0, 0}));
  }
}

}  // namespace
}  // namespace aspen
